// NN — nearest neighbors (Rodinia nn): distance of every GIS record to a
// target coordinate.
//
// Table III: 20 M records, MRE metric, 2 approximated regions (the location
// array and the distance output array). The host-side top-k scan is not part
// of the measured kernel.
#include <cmath>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

class NnWorkload final : public Workload {
 public:
  explicit NnWorkload(WorkloadScale scale) : Workload(scale) {}

  std::string name() const override { return "NN"; }
  std::string description() const override { return "Nearest neighbors (GIS records)"; }
  ErrorMetric metric() const override { return ErrorMetric::kMre; }

  void init(ApproxMemory& mem) override {
    n_ = scaled(1u << 20, 1u << 14);
    std::vector<float> lat, lon;
    make_gis_records(n_, /*seed=*/0x4E4E5F534C43ull, &lat, &lon);
    // Rodinia packs (lat, lng) as float2; one interleaved safe region.
    loc_ = mem.alloc("locations", n_ * 2 * sizeof(float), /*safe=*/true);
    dist_ = mem.alloc("distances", n_ * sizeof(float), /*safe=*/true);
    auto l = mem.span<float>(loc_);
    for (size_t i = 0; i < n_; ++i) {
      l[2 * i] = lat[i];
      l[2 * i + 1] = lon[i];
    }
  }

  void run(ApproxMemory& mem) override {
    constexpr float kTargetLat = 30.0f;
    constexpr float kTargetLon = 90.0f;
    mem.begin_kernel("euclid", /*compute_per_access=*/0.7, /*accesses_per_cta=*/3);
    const RegionId reads[] = {loc_};
    const RegionId writes[] = {dist_};
    mem.trace_zip(reads, writes);

    const auto l = mem.span<const float>(loc_);
    auto d = mem.span<float>(dist_);
    for (size_t i = 0; i < n_; ++i) {
      const float dlat = l[2 * i] - kTargetLat;
      const float dlon = l[2 * i + 1] - kTargetLon;
      d[i] = std::sqrt(dlat * dlat + dlon * dlon);
    }
    mem.commit_async(dist_);
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto d = mem.span<const float>(dist_);
    return std::vector<float>(d.begin(), d.begin() + static_cast<long>(n_));
  }

 private:
  size_t n_ = 0;
  RegionId loc_ = 0, dist_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_nn(WorkloadScale scale) {
  return std::make_unique<NnWorkload>(scale);
}

}  // namespace slc

// BP — perceptron training (Rodinia backprop).
//
// Table III: 64 K input units, MRE metric, 6 approximated regions. One
// training step of a two-layer perceptron: forward pass (input->hidden,
// hidden->output), error back-propagation, and weight adjustment with
// momentum. Safe regions (#AR = 6): input units, input->hidden weights and
// their momentum array, hidden units, hidden->output weights and their
// momentum array. The error metric is the MRE over the updated
// input->hidden weight matrix (the kernel's main output).
#include <cmath>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

constexpr size_t kHidden = 16;
constexpr float kEta = 0.3f;
constexpr float kMomentum = 0.3f;

float squash(float x) { return 1.0f / (1.0f + std::exp(-x)); }

class BackpropWorkload final : public Workload {
 public:
  explicit BackpropWorkload(WorkloadScale scale) : Workload(scale) {}

  std::string name() const override { return "BP"; }
  std::string description() const override { return "Perceptron training (backprop)"; }
  ErrorMetric metric() const override { return ErrorMetric::kMre; }

  void init(ApproxMemory& mem) override {
    n_in_ = scaled(65536, 4096);
    Rng rng(0x42505F534C43ull);
    input_ = mem.alloc("input_units", n_in_ * sizeof(float), /*safe=*/true);
    w_ih_ = mem.alloc("input_weights", n_in_ * kHidden * sizeof(float), /*safe=*/true);
    dw_ih_ = mem.alloc("input_prev_weights", n_in_ * kHidden * sizeof(float), /*safe=*/true);
    hidden_ = mem.alloc("hidden_units", kHidden * sizeof(float), /*safe=*/true);
    w_ho_ = mem.alloc("hidden_weights", kHidden * sizeof(float), /*safe=*/true);
    dw_ho_ = mem.alloc("hidden_prev_weights", kHidden * sizeof(float), /*safe=*/true);
    target_ = mem.alloc("target", sizeof(float), /*safe=*/false);

    // Perceptron inputs are normalized 8-bit features (pixels); weights are
    // initialized on a small fixed grid, as fixed-point initializers do.
    auto in = mem.span<float>(input_);
    for (size_t i = 0; i < n_in_; ++i)
      in[i] = static_cast<float>(rng.next_below(256)) / 255.0f;
    auto wih = mem.span<float>(w_ih_);
    for (auto& w : wih)
      w = static_cast<float>(static_cast<int32_t>(rng.next_below(1024)) - 512) / 1024.0f;
    auto who = mem.span<float>(w_ho_);
    for (auto& w : who)
      w = static_cast<float>(static_cast<int32_t>(rng.next_below(1024)) - 512) / 1024.0f;
    mem.span<float>(target_)[0] = 0.7f;
  }

  void run(ApproxMemory& mem) override {
    const auto in = mem.span<const float>(input_);
    auto wih = mem.span<float>(w_ih_);
    auto dwih = mem.span<float>(dw_ih_);
    auto hid = mem.span<float>(hidden_);
    auto who = mem.span<float>(w_ho_);
    auto dwho = mem.span<float>(dw_ho_);
    const float target = mem.span<const float>(target_)[0];

    // Kernel 1: bpnn_layerforward (input -> hidden). Streams the weight
    // matrix once; dominated by memory.
    mem.begin_kernel("bpnn_layerforward", /*compute_per_access=*/2.2, /*accesses_per_cta=*/2);
    {
      const RegionId reads[] = {input_, w_ih_};
      mem.trace_zip(reads, {});
    }
    for (size_t j = 0; j < kHidden; ++j) {
      float sum = 0.0f;
      for (size_t i = 0; i < n_in_; ++i) sum += in[i] * wih[i * kHidden + j];
      hid[j] = squash(sum / static_cast<float>(n_in_));
    }
    mem.commit_async(hidden_);
    // The host-side output layer reads the *committed* hidden units —
    // re-acquire the span to settle the in-flight commit.
    hid = mem.span<float>(hidden_);

    // Output layer + deltas (small, host-side in Rodinia).
    float out = 0.0f;
    for (size_t j = 0; j < kHidden; ++j) out += hid[j] * who[j];
    out = squash(out);
    const float delta_o = out * (1.0f - out) * (target - out);
    float delta_h[kHidden];
    for (size_t j = 0; j < kHidden; ++j)
      delta_h[j] = hid[j] * (1.0f - hid[j]) * delta_o * who[j];

    // Kernel 2: bpnn_adjust_weights (hidden -> output and input -> hidden).
    mem.begin_kernel("bpnn_adjust_weights", /*compute_per_access=*/2.0, /*accesses_per_cta=*/4);
    {
      const RegionId reads[] = {input_, w_ih_, dw_ih_};
      const RegionId writes[] = {w_ih_, dw_ih_};
      mem.trace_zip(reads, writes);
    }
    for (size_t j = 0; j < kHidden; ++j) {
      const float dw = kEta * delta_o * hid[j] + kMomentum * dwho[j];
      who[j] += dw;
      dwho[j] = dw;
    }
    for (size_t i = 0; i < n_in_; ++i) {
      for (size_t j = 0; j < kHidden; ++j) {
        const float dw = kEta * delta_h[j] * in[i] + kMomentum * dwih[i * kHidden + j];
        wih[i * kHidden + j] += dw;
        dwih[i * kHidden + j] = dw;
      }
    }
    // Terminal commits: all four queue back-to-back on the engine; the
    // harness flush (or the next span/stats observation) settles them.
    mem.commit_async(w_ih_);
    mem.commit_async(dw_ih_);
    mem.commit_async(w_ho_);
    mem.commit_async(dw_ho_);
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto w = mem.span<const float>(w_ih_);
    return std::vector<float>(w.begin(), w.begin() + static_cast<long>(n_in_ * kHidden));
  }

 private:
  size_t n_in_ = 0;
  RegionId input_ = 0, w_ih_ = 0, dw_ih_ = 0, hidden_ = 0, w_ho_ = 0, dw_ho_ = 0, target_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_backprop(WorkloadScale scale) {
  return std::make_unique<BackpropWorkload>(scale);
}

}  // namespace slc

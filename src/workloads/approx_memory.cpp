#include "workloads/approx_memory.h"

#include <algorithm>
#include <cassert>

#include "sim/trace_stream.h"

namespace slc {

namespace {

/// The commit kernel, shared by the inline and the engine paths. Works on
/// raw buffer pointers (stable across regions_ reallocation, so an in-flight
/// job survives a concurrent alloc()); every write (burst slot, lossy
/// mutation) is block-disjoint and each block's outcome depends only on its
/// own pre-commit contents, so sharding cannot change results. The whole
/// [begin, end) range goes through the policy's process_batch kernel —
/// policies with a batched override (SLC's staged mode decision, the
/// lossless schemes' vectorized size probes) get the shard at once, and the
/// default is the per-block scalar loop, byte-identical either way.
void process_blocks(const BlockCodec& codec, uint8_t* data, uint32_t* bursts, bool safe,
                    size_t threshold_bytes, size_t begin, size_t end, CommitStats& ws) {
  const size_t n = end - begin;
  std::vector<BlockView> views;
  views.reserve(n);
  for (size_t b = begin; b < end; ++b)
    views.push_back(BlockView(std::span<const uint8_t>(data + b * kBlockBytes, kBlockBytes)));
  std::vector<BlockCodecResult> results(n);
  codec.process_batch(views, safe, threshold_bytes, results.data());
  for (size_t i = 0; i < n; ++i) {
    const BlockCodecResult& res = results[i];
    const size_t b = begin + i;
    bursts[b] = static_cast<uint32_t>(res.bursts);
    ++ws.blocks;
    ws.lossy_blocks += res.lossy ? 1 : 0;
    ws.uncompressed_blocks += res.stored_uncompressed ? 1 : 0;
    ws.bursts += res.bursts;
    ws.truncated_symbols += res.truncated_symbols;
    ws.original_bits += kBlockBytes * 8;
    ws.lossless_bits += res.lossless_bits;
    ws.final_bits += res.final_bits;
    ws.cache.record(res.cache_probed, res.cache_hit, res.cache_evicted, res.cache_collision);
    if (res.lossy) {
      const auto src = res.decoded.bytes();
      std::copy(src.begin(), src.end(), data + b * kBlockBytes);
    }
  }
}

}  // namespace

ApproxMemory::~ApproxMemory() {
  // A forgotten sink is closed but NOT published: push() may block on
  // backpressure, and a destructor must not hang on a consumer that
  // stopped popping. The consumer sees a clean (if short) end of stream.
  if (trace_sink_) trace_sink_->close();
  for (RegionId r = 0; r < regions_.size(); ++r) {
    try {
      settle(r);
    } catch (...) {
      // Job exceptions are reportable via flush(); during teardown the only
      // obligation is to drain jobs targeting our buffers before they free.
    }
  }
}

RegionId ApproxMemory::alloc(std::string name, size_t bytes, bool safe_to_approx,
                             size_t threshold_bytes) {
  // Pad to whole blocks (cudaMalloc returns 256 B-aligned sizes anyway).
  const size_t padded = (bytes + kBlockBytes - 1) / kBlockBytes * kBlockBytes;
  Region reg;
  reg.name = std::move(name);
  reg.data.assign(padded, 0);
  reg.safe = safe_to_approx;
  reg.threshold_bytes = threshold_bytes;
  reg.base_addr = next_addr_;
  reg.bursts.assign(padded / kBlockBytes, kUncommittedBursts);
  next_addr_ += padded;
  regions_.push_back(std::move(reg));
  return static_cast<RegionId>(regions_.size() - 1);
}

size_t ApproxMemory::safe_region_count() const {
  return static_cast<size_t>(
      std::count_if(regions_.begin(), regions_.end(), [](const Region& r) { return r.safe; }));
}

uint32_t ApproxMemory::current_bursts(const Region& reg, size_t block) const {
  if (reg.bursts[block] != kUncommittedBursts) return reg.bursts[block];
  // Never committed (exact/golden run): full cost.
  const size_t mag = codec_ ? codec_->mag_bytes() : kDefaultMagBytes;
  return static_cast<uint32_t>(kBlockBytes / mag);
}

void ApproxMemory::settle(RegionId r) {
  Region& reg = regions_[r];
  if (!reg.pending.valid()) return;
  const CommitStats s = reg.pending.wait();  // one-shot: clears pending
  stats_.merge(s);
  reg.stats.merge(s);
}

void ApproxMemory::commit(RegionId r) {
  commit_async(r);
  settle(r);
}

void ApproxMemory::commit_async(RegionId r) {
  settle(r);  // commits of the same region serialize
  Region& reg = regions_[r];
  const size_t n_blocks = reg.data.size() / kBlockBytes;
  if (!codec_) {
    // Exact memory: all blocks cost max bursts, contents untouched.
    const auto maxb = static_cast<uint32_t>(kBlockBytes / kDefaultMagBytes);
    std::fill(reg.bursts.begin(), reg.bursts.end(), maxb);
    return;
  }
  if (!engine_) {
    // Inline path: run the commit on the caller thread.
    CommitStats ws;
    process_blocks(*codec_, reg.data.data(), reg.bursts.data(), reg.safe, reg.threshold_bytes, 0,
                   n_blocks, ws);
    stats_.merge(ws);
    reg.stats.merge(ws);
    return;
  }
  // Queue one engine job for the whole region. The body captures raw buffer
  // pointers and a codec reference-count, never `this` or a Region& — both
  // survive regions_ growth and an ApproxMemory move while the job runs.
  auto per_worker = std::make_shared<std::vector<CommitStats>>(engine_->num_threads());
  uint8_t* data = reg.data.data();
  uint32_t* bursts = reg.bursts.data();
  const bool safe = reg.safe;
  const size_t threshold = reg.threshold_bytes;
  std::shared_ptr<const BlockCodec> codec = codec_;
  reg.pending = engine_->submit_job<CommitStats>(
      n_blocks,
      [per_worker, data, bursts, safe, threshold, codec](size_t begin, size_t end,
                                                         unsigned worker) {
        process_blocks(*codec, data, bursts, safe, threshold, begin, end, (*per_worker)[worker]);
      },
      [per_worker]() {
        // Per-worker integer counters merge exactly in any order, so the
        // settled stats match the inline path for every thread count.
        CommitStats total;
        for (const CommitStats& ws : *per_worker) total.merge(ws);
        return total;
      });
}

void ApproxMemory::flush() {
  // Settle everything even when a commit failed: the barrier guarantee
  // (no region left in flight, completed stats merged) must hold for
  // callers that catch the rethrown codec exception.
  std::exception_ptr first;
  for (RegionId r = 0; r < regions_.size(); ++r) {
    try {
      settle(r);
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ApproxMemory::commit_all() {
  for (RegionId r = 0; r < regions_.size(); ++r) commit_async(r);
}

void ApproxMemory::set_trace_sink(std::shared_ptr<TraceStream> sink) {
  if (trace_sink_) end_trace();
  trace_sink_ = std::move(sink);
}

void ApproxMemory::publish_completed_kernels() {
  while (!trace_.empty() && trace_sink_) {
    auto chunk = std::make_shared<const KernelTrace>(std::move(trace_.front()));
    trace_.erase(trace_.begin());
    if (!trace_sink_->push(std::move(chunk))) {
      // Consumer cancelled mid-stream: detach and stop publishing. Later
      // kernels materialize into trace_ as if no sink were installed.
      trace_sink_.reset();
    }
  }
}

void ApproxMemory::end_trace() {
  if (!trace_sink_) return;
  publish_completed_kernels();
  if (trace_sink_) {
    trace_sink_->close();
    trace_sink_.reset();
  }
}

void ApproxMemory::begin_kernel(std::string name, double compute_per_access,
                                uint32_t accesses_per_cta) {
  // Streaming: everything captured so far is complete — publish it before
  // opening the next kernel (blocking here is the backpressure that bounds
  // the trace footprint to the stream's chunk budget).
  if (trace_sink_) publish_completed_kernels();
  KernelTrace k;
  k.name = std::move(name);
  k.compute_per_access = compute_per_access;
  k.accesses_per_cta = accesses_per_cta;
  trace_.push_back(std::move(k));
}

void ApproxMemory::trace_block(RegionId r, size_t block, bool write) {
  assert(!trace_.empty() && "begin_kernel() must precede trace calls");
  settle(r);  // bursts must reflect the latest commit, async or not
  const Region& reg = regions_[r];
  TraceAccess a;
  a.addr = reg.base_addr + block * kBlockBytes;
  a.bursts = current_bursts(reg, block);
  a.write = write;
  trace_.back().accesses.push_back(a);
}

void ApproxMemory::trace_read(RegionId r) {
  const size_t n = region_blocks(r);
  for (size_t b = 0; b < n; ++b) trace_block(r, b, false);
}

void ApproxMemory::trace_write(RegionId r) {
  const size_t n = region_blocks(r);
  for (size_t b = 0; b < n; ++b) trace_block(r, b, true);
}

void ApproxMemory::trace_zip(std::span<const RegionId> reads, std::span<const RegionId> writes) {
  size_t max_blocks = 0;
  for (RegionId r : reads) max_blocks = std::max(max_blocks, region_blocks(r));
  for (RegionId r : writes) max_blocks = std::max(max_blocks, region_blocks(r));
  for (size_t b = 0; b < max_blocks; ++b) {
    for (RegionId r : reads)
      if (b < region_blocks(r)) trace_block(r, b, false);
    for (RegionId r : writes)
      if (b < region_blocks(r)) trace_block(r, b, true);
  }
}

const CommitStats& ApproxMemory::stats() {
  flush();
  return stats_;
}

CommitStats ApproxMemory::region_stats(RegionId r) const {
  // Settling materializes lazily-deferred state; logically const.
  const_cast<ApproxMemory*>(this)->settle(r);
  return regions_[r].stats;
}

}  // namespace slc

#include "workloads/approx_memory.h"

#include <algorithm>
#include <cassert>

namespace slc {

RegionId ApproxMemory::alloc(std::string name, size_t bytes, bool safe_to_approx,
                             size_t threshold_bytes) {
  // Pad to whole blocks (cudaMalloc returns 256 B-aligned sizes anyway).
  const size_t padded = (bytes + kBlockBytes - 1) / kBlockBytes * kBlockBytes;
  Region reg;
  reg.name = std::move(name);
  reg.data.assign(padded, 0);
  reg.safe = safe_to_approx;
  reg.threshold_bytes = threshold_bytes;
  reg.base_addr = next_addr_;
  reg.bursts.assign(padded / kBlockBytes, 0);
  next_addr_ += padded;
  regions_.push_back(std::move(reg));
  return static_cast<RegionId>(regions_.size() - 1);
}

size_t ApproxMemory::safe_region_count() const {
  return static_cast<size_t>(
      std::count_if(regions_.begin(), regions_.end(), [](const Region& r) { return r.safe; }));
}

uint8_t ApproxMemory::current_bursts(const Region& reg, size_t block) const {
  if (reg.bursts[block] != 0) return reg.bursts[block];
  // Never committed (exact/golden run): full cost.
  const size_t mag = codec_ ? codec_->mag_bytes() : kDefaultMagBytes;
  return static_cast<uint8_t>(kBlockBytes / mag);
}

void ApproxMemory::commit(RegionId r) {
  Region& reg = regions_[r];
  const size_t n_blocks = reg.data.size() / kBlockBytes;
  if (!codec_) {
    // Exact memory: all blocks cost max bursts, contents untouched.
    const auto maxb = static_cast<uint8_t>(kBlockBytes / kDefaultMagBytes);
    std::fill(reg.bursts.begin(), reg.bursts.end(), maxb);
    return;
  }
  // Shard the region across the engine's workers. Each block's outcome
  // depends only on its own pre-commit contents and all writes (burst slot,
  // lossy mutation) are block-disjoint, so the result is identical for any
  // worker count; per-worker stats merge exactly (integer counters).
  const unsigned n_workers = engine_ ? engine_->num_threads() : 1;
  std::vector<CommitStats> worker_stats(n_workers);
  const auto process_range = [&](size_t begin, size_t end, unsigned worker) {
    CommitStats& ws = worker_stats[worker];
    for (size_t b = begin; b < end; ++b) {
      const BlockView view(
          std::span<const uint8_t>(reg.data).subspan(b * kBlockBytes, kBlockBytes));
      const BlockCodecResult res = codec_->process(view, reg.safe, reg.threshold_bytes);
      reg.bursts[b] = static_cast<uint8_t>(res.bursts);
      ++ws.blocks;
      ws.lossy_blocks += res.lossy ? 1 : 0;
      ws.uncompressed_blocks += res.stored_uncompressed ? 1 : 0;
      ws.bursts += res.bursts;
      ws.truncated_symbols += res.truncated_symbols;
      ws.original_bits += kBlockBytes * 8;
      ws.lossless_bits += res.lossless_bits;
      ws.final_bits += res.final_bits;
      if (res.lossy) {
        auto dst = std::span<uint8_t>(reg.data).subspan(b * kBlockBytes, kBlockBytes);
        const auto src = res.decoded.bytes();
        std::copy(src.begin(), src.end(), dst.begin());
      }
    }
  };
  if (engine_) {
    engine_->parallel_for(n_blocks, process_range);
  } else {
    process_range(0, n_blocks, 0);
  }
  for (const CommitStats& ws : worker_stats) {
    stats_.merge(ws);
    reg.stats.merge(ws);
  }
}

void ApproxMemory::commit_all() {
  for (RegionId r = 0; r < regions_.size(); ++r) commit(r);
}

void ApproxMemory::begin_kernel(std::string name, double compute_per_access,
                                uint32_t accesses_per_cta) {
  KernelTrace k;
  k.name = std::move(name);
  k.compute_per_access = compute_per_access;
  k.accesses_per_cta = accesses_per_cta;
  trace_.push_back(std::move(k));
}

void ApproxMemory::trace_block(RegionId r, size_t block, bool write) {
  assert(!trace_.empty() && "begin_kernel() must precede trace calls");
  const Region& reg = regions_[r];
  TraceAccess a;
  a.addr = reg.base_addr + block * kBlockBytes;
  a.bursts = current_bursts(reg, block);
  a.write = write;
  trace_.back().accesses.push_back(a);
}

void ApproxMemory::trace_read(RegionId r) {
  const size_t n = region_blocks(r);
  for (size_t b = 0; b < n; ++b) trace_block(r, b, false);
}

void ApproxMemory::trace_write(RegionId r) {
  const size_t n = region_blocks(r);
  for (size_t b = 0; b < n; ++b) trace_block(r, b, true);
}

void ApproxMemory::trace_zip(std::span<const RegionId> reads, std::span<const RegionId> writes) {
  size_t max_blocks = 0;
  for (RegionId r : reads) max_blocks = std::max(max_blocks, region_blocks(r));
  for (RegionId r : writes) max_blocks = std::max(max_blocks, region_blocks(r));
  for (size_t b = 0; b < max_blocks; ++b) {
    for (RegionId r : reads)
      if (b < region_blocks(r)) trace_block(r, b, false);
    for (RegionId r : writes)
      if (b < region_blocks(r)) trace_block(r, b, true);
  }
}

CommitStats ApproxMemory::region_stats(RegionId r) const { return regions_[r].stats; }

}  // namespace slc

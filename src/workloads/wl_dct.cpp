// DCT — 8x8 block discrete cosine transform (CUDA SDK DCT8x8).
//
// Table III: 1024x1024 image, image-diff metric, 2 approximated regions
// (input image and coefficient output).
#include <array>
#include <cmath>
#include <numbers>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

constexpr size_t kTile = 8;

// 8x8 DCT-II basis matrix, computed once.
std::array<float, kTile * kTile> dct_basis() {
  std::array<float, kTile * kTile> a{};
  for (size_t k = 0; k < kTile; ++k) {
    const double scale = k == 0 ? std::sqrt(1.0 / kTile) : std::sqrt(2.0 / kTile);
    for (size_t n = 0; n < kTile; ++n) {
      a[k * kTile + n] = static_cast<float>(
          scale * std::cos(std::numbers::pi * (static_cast<double>(n) + 0.5) *
                           static_cast<double>(k) / kTile));
    }
  }
  return a;
}

class DctWorkload final : public Workload {
 public:
  explicit DctWorkload(WorkloadScale scale) : Workload(scale) {}

  std::string name() const override { return "DCT"; }
  std::string description() const override { return "8x8 block discrete cosine transform"; }
  ErrorMetric metric() const override { return ErrorMetric::kImageDiff; }

  void init(ApproxMemory& mem) override {
    dim_ = scaled(512, 64);
    // 12-bit capture: the SDK's DCT example runs on high-precision sensor
    // images; the extra grey levels spread block entropy the way the
    // paper's Fig. 2 distribution for DCT shows.
    const auto img = make_smooth_image(dim_, dim_, /*seed=*/0x4443545F534Cull,
                                       /*bit_depth=*/12);
    const size_t bytes = dim_ * dim_ * sizeof(float);
    src_ = mem.alloc("srcImage", bytes, /*safe=*/true);
    dst_ = mem.alloc("dctCoeffs", bytes, /*safe=*/true);
    std::copy(img.begin(), img.end(), mem.span<float>(src_).begin());
  }

  void run(ApproxMemory& mem) override {
    mem.begin_kernel("CUDAkernel1DCT", /*compute_per_access=*/0.8, /*accesses_per_cta=*/2);
    const RegionId reads[] = {src_};
    const RegionId writes[] = {dst_};
    mem.trace_zip(reads, writes);

    static const auto kA = dct_basis();
    const auto in = mem.span<const float>(src_);
    auto out = mem.span<float>(dst_);
    std::array<float, kTile * kTile> tile{}, tmp{};
    for (size_t by = 0; by < dim_; by += kTile) {
      for (size_t bx = 0; bx < dim_; bx += kTile) {
        for (size_t y = 0; y < kTile; ++y)
          for (size_t x = 0; x < kTile; ++x) tile[y * kTile + x] = in[(by + y) * dim_ + bx + x];
        // tmp = A * tile
        for (size_t i = 0; i < kTile; ++i)
          for (size_t j = 0; j < kTile; ++j) {
            float acc = 0;
            for (size_t k = 0; k < kTile; ++k) acc += kA[i * kTile + k] * tile[k * kTile + j];
            tmp[i * kTile + j] = acc;
          }
        // out = tmp * A^T
        for (size_t i = 0; i < kTile; ++i)
          for (size_t j = 0; j < kTile; ++j) {
            float acc = 0;
            for (size_t k = 0; k < kTile; ++k) acc += tmp[i * kTile + k] * kA[j * kTile + k];
            out[(by + i) * dim_ + bx + j] = acc;
          }
      }
    }
    mem.commit_async(dst_);
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto c = mem.span<const float>(dst_);
    return std::vector<float>(c.begin(), c.begin() + static_cast<long>(dim_ * dim_));
  }

 private:
  size_t dim_ = 0;
  RegionId src_ = 0, dst_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_dct(WorkloadScale scale) {
  return std::make_unique<DctWorkload>(scale);
}

}  // namespace slc

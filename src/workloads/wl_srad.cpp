// SRAD1 / SRAD2 — speckle-reducing anisotropic diffusion (Rodinia srad_v1
// and srad_v2).
//
// Table III: 1024x1024 image, image-diff metric, 8 (SRAD1) and 6 (SRAD2)
// approximated regions. Both variants run the same Yu-Acton SRAD update:
//   kernel 1: directional derivatives dN/dS/dW/dE, instantaneous coefficient
//             of variation q^2, diffusion coefficient c (clamped to [0,1])
//   kernel 2: divergence of c * grad(J); J += lambda/4 * div
// srad_v1 additionally stages the image through log-compress / expand
// kernels and a two-array ROI statistics reduction (its extra safe regions);
// srad_v2 keeps everything in the five main arrays plus the coefficient
// array.
#include <algorithm>
#include <cmath>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

constexpr float kLambda = 0.5f;
// Two diffusion iterations: the standard setting in GPU approximation
// studies (each iteration re-commits all six arrays, so error compounds
// linearly in the iteration count).
constexpr int kIterations = 2;

/// Shared SRAD core. `variant1` adds the extract/compress staging kernels
/// and the reduction arrays that distinguish srad_v1.
class SradWorkload final : public Workload {
 public:
  SradWorkload(WorkloadScale scale, bool variant1) : Workload(scale), v1_(variant1) {}

  std::string name() const override { return v1_ ? "SRAD1" : "SRAD2"; }
  std::string description() const override {
    return v1_ ? "Anisotropic diffusion (srad_v1)" : "Anisotropic diffusion (srad_v2)";
  }
  ErrorMetric metric() const override { return ErrorMetric::kImageDiff; }

  void init(ApproxMemory& mem) override {
    dim_ = scaled(512, 64);
    const size_t bytes = dim_ * dim_ * sizeof(float);
    const auto img = make_speckle_image(dim_, dim_, v1_ ? 0x535231ull : 0x535232ull);

    j_ = mem.alloc("J", bytes, /*safe=*/true);
    dn_ = mem.alloc("dN", bytes, /*safe=*/true);
    ds_ = mem.alloc("dS", bytes, /*safe=*/true);
    dw_ = mem.alloc("dW", bytes, /*safe=*/true);
    de_ = mem.alloc("dE", bytes, /*safe=*/true);
    c_ = mem.alloc("C", bytes, /*safe=*/true);
    if (v1_) {
      // srad_v1's ROI statistics partial-sum arrays (#AR = 8 total).
      sums_ = mem.alloc("sums", bytes, /*safe=*/true);
      sums2_ = mem.alloc("sums2", bytes, /*safe=*/true);
    }

    auto jj = mem.span<float>(j_);
    for (size_t i = 0; i < dim_ * dim_; ++i)
      jj[i] = std::exp(img[i] / 255.0f);  // Rodinia's input scaling
  }

  void run(ApproxMemory& mem) override {
    auto J = mem.span<float>(j_);
    auto dN = mem.span<float>(dn_);
    auto dS = mem.span<float>(ds_);
    auto dW = mem.span<float>(dw_);
    auto dE = mem.span<float>(de_);
    auto C = mem.span<float>(c_);
    const size_t d = dim_;

    for (int it = 0; it < kIterations; ++it) {
      // The previous iteration's commit_async(j_) may still be in flight;
      // re-acquiring the span settles it before J is read again.
      J = mem.span<float>(j_);
      // ROI statistics (srad_v1 materializes the partial sums in DRAM).
      double sum = 0.0, sum2 = 0.0;
      if (v1_) {
        mem.begin_kernel("srad_reduce", /*compute_per_access=*/0.7, /*accesses_per_cta=*/3);
        const RegionId reads[] = {j_};
        const RegionId writes[] = {sums_, sums2_};
        mem.trace_zip(reads, writes);
        auto s1 = mem.span<float>(sums_);
        auto s2 = mem.span<float>(sums2_);
        for (size_t i = 0; i < d * d; ++i) {
          s1[i] = J[i];
          s2[i] = J[i] * J[i];
        }
        mem.commit_async(sums_);
        mem.commit_async(sums2_);
        // The host reduction reads the *committed* (possibly approximated)
        // partial sums — re-acquire to settle both in-flight commits.
        const auto s1c = mem.span<const float>(sums_);
        const auto s2c = mem.span<const float>(sums2_);
        for (size_t i = 0; i < d * d; ++i) {
          sum += s1c[i];
          sum2 += s2c[i];
        }
      } else {
        for (size_t i = 0; i < d * d; ++i) {
          sum += J[i];
          sum2 += J[i] * J[i];
        }
      }
      const double mean = sum / static_cast<double>(d * d);
      const double var = sum2 / static_cast<double>(d * d) - mean * mean;
      const float q0sqr = static_cast<float>(var / (mean * mean));

      // Kernel 1: gradients + diffusion coefficient.
      mem.begin_kernel(v1_ ? "srad" : "srad_cuda_1", /*compute_per_access=*/0.8,
                       /*accesses_per_cta=*/6);
      {
        const RegionId reads[] = {j_};
        const RegionId writes[] = {dn_, ds_, dw_, de_, c_};
        mem.trace_zip(reads, writes);
      }
      for (size_t y = 0; y < d; ++y) {
        const size_t yn = y == 0 ? 0 : y - 1;
        const size_t ys = y == d - 1 ? d - 1 : y + 1;
        for (size_t x = 0; x < d; ++x) {
          const size_t xw = x == 0 ? 0 : x - 1;
          const size_t xe = x == d - 1 ? d - 1 : x + 1;
          const size_t i = y * d + x;
          const float jc = J[i];
          dN[i] = J[yn * d + x] - jc;
          dS[i] = J[ys * d + x] - jc;
          dW[i] = J[y * d + xw] - jc;
          dE[i] = J[y * d + xe] - jc;
          // The coefficient pipeline runs in double: with approximated J a
          // float intermediate can overflow to inf (1/jc^2 for a denormal
          // jc) and poison the image with NaNs; double keeps it finite and
          // the clamp below recovers, matching the bounded SRAD errors the
          // paper reports.
          const double jcd = jc;
          const double g2 = (static_cast<double>(dN[i]) * dN[i] +
                             static_cast<double>(dS[i]) * dS[i] +
                             static_cast<double>(dW[i]) * dW[i] +
                             static_cast<double>(dE[i]) * dE[i]) /
                            (jcd * jcd);
          const double l =
              (static_cast<double>(dN[i]) + dS[i] + dW[i] + dE[i]) / jcd;
          const double num = 0.5 * g2 - (1.0 / 16.0) * l * l;
          const double den1 = 1.0 + 0.25 * l;
          const double qsqr = num / (den1 * den1);
          const double den2 =
              (qsqr - q0sqr) / (static_cast<double>(q0sqr) * (1.0 + q0sqr));
          const double c = 1.0 / (1.0 + den2);
          C[i] = std::isfinite(c) ? static_cast<float>(std::clamp(c, 0.0, 1.0)) : 0.0f;
        }
      }
      // All five commits queue back-to-back on the engine and overlap the
      // next kernel's trace capture; trace_zip settles each region before
      // recording its bursts, so kernel 2's compute reads committed data.
      mem.commit_async(dn_);
      mem.commit_async(ds_);
      mem.commit_async(dw_);
      mem.commit_async(de_);
      mem.commit_async(c_);

      // Kernel 2: divergence + image update.
      mem.begin_kernel(v1_ ? "srad2" : "srad_cuda_2", /*compute_per_access=*/0.8,
                       /*accesses_per_cta=*/7);
      {
        const RegionId reads[] = {dn_, ds_, dw_, de_, c_};
        const RegionId writes[] = {j_};
        mem.trace_zip(reads, writes);
      }
      for (size_t y = 0; y < d; ++y) {
        const size_t ys = y == d - 1 ? d - 1 : y + 1;
        for (size_t x = 0; x < d; ++x) {
          const size_t xe = x == d - 1 ? d - 1 : x + 1;
          const size_t i = y * d + x;
          const float cn = C[i];
          const float cs = C[ys * d + x];
          const float cw = C[i];
          const float ce = C[y * d + xe];
          const float div = cn * dN[i] + cs * dS[i] + cw * dW[i] + ce * dE[i];
          J[i] += 0.25f * kLambda * div;
        }
      }
      // Settled at the top of the next iteration (or by the harness flush).
      mem.commit_async(j_);
    }
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto jj = mem.span<const float>(j_);
    return std::vector<float>(jj.begin(), jj.begin() + static_cast<long>(dim_ * dim_));
  }

 private:
  bool v1_;
  size_t dim_ = 0;
  RegionId j_ = 0, dn_ = 0, ds_ = 0, dw_ = 0, de_ = 0, c_ = 0, sums_ = 0, sums2_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_srad1(WorkloadScale scale) {
  return std::make_unique<SradWorkload>(scale, /*variant1=*/true);
}

std::unique_ptr<Workload> make_srad2(WorkloadScale scale) {
  return std::make_unique<SradWorkload>(scale, /*variant1=*/false);
}

}  // namespace slc

#include "workloads/workload.h"

#include <map>
#include <stdexcept>

#include "common/thread_safety.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

// Golden outputs depend only on (name, scale) — every codec comparison
// reuses them, so cache the exact run.
struct GoldenResult {
  std::vector<float> output;
  std::vector<uint8_t> bool_output;
};

const GoldenResult& golden_run(const std::string& name, WorkloadScale scale) {
  // The returned reference stays valid past the lock: entries are never
  // erased and std::map nodes are pointer-stable across later inserts.
  static std::map<std::string, GoldenResult> cache;
  static Mutex mutex;
  MutexLock lock(mutex);
  const std::string key = name + (scale == WorkloadScale::kDefault ? "/d" : "/t");
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  auto wl = make_workload(name, scale);
  ApproxMemory mem;
  wl->init(mem);
  mem.commit_all();
  wl->run(mem);
  GoldenResult g;
  g.output = wl->output(mem);
  g.bool_output = wl->bool_output(mem);
  return cache.emplace(key, std::move(g)).first->second;
}

}  // namespace

std::vector<std::string> workload_names() {
  return {"JM", "BS", "DCT", "FWT", "TP", "BP", "NN", "SRAD1", "SRAD2"};
}

std::unique_ptr<Workload> make_workload(const std::string& name, WorkloadScale scale) {
  if (name == "JM") return make_jmeint(scale);
  if (name == "BS") return make_blackscholes(scale);
  if (name == "DCT") return make_dct(scale);
  if (name == "FWT") return make_fwt(scale);
  if (name == "TP") return make_transpose(scale);
  if (name == "BP") return make_backprop(scale);
  if (name == "NN") return make_nn(scale);
  if (name == "SRAD1") return make_srad1(scale);
  if (name == "SRAD2") return make_srad2(scale);
  throw std::invalid_argument("unknown workload: " + name);
}

WorkloadRunResult run_workload(const std::string& name,
                               std::shared_ptr<const BlockCodec> codec, WorkloadScale scale) {
  WorkloadRunResult result;

  // Golden run: exact memory (cached per benchmark/scale).
  const GoldenResult& g = golden_run(name, scale);
  const std::vector<float>& golden = g.output;
  const std::vector<uint8_t>& golden_bool = g.bool_output;

  // Approximate run: identical inputs, codec installed. commit_all() models
  // the host upload (cudaMemcpy) compressing inputs on the way to DRAM; the
  // upload commits queue asynchronously and overlap the first kernel's trace
  // capture — every read settles the region it observes, so results are
  // byte-identical to the serial path. flush() is the end-of-run barrier:
  // after it, the trace's burst counts and the commit stats are final.
  auto approx_wl = make_workload(name, scale);
  ApproxMemory approx_mem;
  approx_mem.set_codec(codec);
  approx_wl->init(approx_mem);
  approx_mem.commit_all();
  approx_wl->run(approx_mem);
  approx_mem.flush();
  const std::vector<float> approx = approx_wl->output(approx_mem);

  result.metric = approx_wl->metric();
  switch (result.metric) {
    case ErrorMetric::kMissRate: {
      const std::vector<uint8_t> approx_bool = approx_wl->bool_output(approx_mem);
      result.error_pct = miss_rate_pct(golden_bool, approx_bool);
      break;
    }
    case ErrorMetric::kMre:
      result.error_pct = mean_relative_error_pct(golden, approx);
      break;
    case ErrorMetric::kImageDiff:
      result.error_pct = image_diff_pct(golden, approx);
      break;
    case ErrorMetric::kNrmse:
      result.error_pct = nrmse_pct(golden, approx);
      break;
  }
  result.trace = approx_mem.take_trace();
  result.stats = approx_mem.stats();
  return result;
}

std::vector<uint8_t> workload_memory_image(const std::string& name, WorkloadScale scale) {
  // The compression-ratio studies weigh blocks the way execution moves them:
  // traffic includes the freshly uploaded inputs (and zero-initialized
  // outputs) early on and the computed data later, so the image concatenates
  // the post-init and post-run snapshots of every safe region.
  auto wl = make_workload(name, scale);
  ApproxMemory mem;
  wl->init(mem);
  std::vector<uint8_t> image;
  auto append_safe_regions = [&] {
    for (RegionId r = 0; r < mem.num_regions(); ++r) {
      if (!mem.region_safe(r)) continue;
      const auto bytes = mem.span<const uint8_t>(r);
      image.insert(image.end(), bytes.begin(), bytes.end());
    }
  };
  append_safe_regions();  // host upload: inputs + zeroed outputs
  wl->run(mem);
  append_safe_regions();  // steady state: computed outputs
  return image;
}

}  // namespace slc

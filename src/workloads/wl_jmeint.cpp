// JM — jmeint (AxBench): triangle-triangle intersection tests.
//
// Table III: 400 K triangle pairs, miss-rate metric, 6 approximated regions.
// The kernel is Möller's 1997 interval-overlap test; each pair's 18 vertex
// coordinates live in six safe arrays (one per vertex, xyz interleaved), the
// boolean results in an unsafe output array (a flipped bit is the miss the
// metric counts; the array itself must stay intact to avoid catastrophic
// failures, Sec. IV-C).
#include <array>
#include <cmath>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

using Vec3 = std::array<float, 3>;

Vec3 sub(const Vec3& a, const Vec3& b) { return {a[0] - b[0], a[1] - b[1], a[2] - b[2]}; }
Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]};
}
float dot(const Vec3& a, const Vec3& b) { return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]; }

// Computes the parametric interval of triangle/plane-line intersection
// (helper of Möller's test). Returns false when a projection degenerates.
bool compute_intervals(float vv0, float vv1, float vv2, float d0, float d1, float d2,
                       float d0d1, float d0d2, float* isect0, float* isect1) {
  if (d0d1 > 0.0f) {
    // d0, d1 on the same side, d2 on the other.
    *isect0 = vv2 + (vv0 - vv2) * d2 / (d2 - d0);
    *isect1 = vv2 + (vv1 - vv2) * d2 / (d2 - d1);
  } else if (d0d2 > 0.0f) {
    *isect0 = vv1 + (vv0 - vv1) * d1 / (d1 - d0);
    *isect1 = vv1 + (vv2 - vv1) * d1 / (d1 - d2);
  } else if (d1 * d2 > 0.0f || d0 != 0.0f) {
    *isect0 = vv0 + (vv1 - vv0) * d0 / (d0 - d1);
    *isect1 = vv0 + (vv2 - vv0) * d0 / (d0 - d2);
  } else if (d1 != 0.0f) {
    *isect0 = vv1 + (vv0 - vv1) * d1 / (d1 - d0);
    *isect1 = vv1 + (vv2 - vv1) * d1 / (d1 - d2);
  } else if (d2 != 0.0f) {
    *isect0 = vv2 + (vv0 - vv2) * d2 / (d2 - d0);
    *isect1 = vv2 + (vv1 - vv2) * d2 / (d2 - d1);
  } else {
    return false;  // coplanar
  }
  return true;
}

// Coplanar case: edge-against-edge and point-in-triangle tests projected on
// the dominant axis plane.
bool edge_against_edge(const float* v0, const float* u0, const float* u1, float ax, float ay,
                       int i0, int i1) {
  const float bx = u0[i0] - u1[i0];
  const float by = u0[i1] - u1[i1];
  const float cx = v0[i0] - u0[i0];
  const float cy = v0[i1] - u0[i1];
  const float f = ay * bx - ax * by;
  const float d = by * cx - bx * cy;
  if ((f > 0 && d >= 0 && d <= f) || (f < 0 && d <= 0 && d >= f)) {
    const float e = ax * cy - ay * cx;
    if (f > 0) {
      if (e >= 0 && e <= f) return true;
    } else {
      if (e <= 0 && e >= f) return true;
    }
  }
  return false;
}

bool edge_against_tri(const float* v0, const float* v1, const float* u0, const float* u1,
                      const float* u2, int i0, int i1) {
  const float ax = v1[i0] - v0[i0];
  const float ay = v1[i1] - v0[i1];
  return edge_against_edge(v0, u0, u1, ax, ay, i0, i1) ||
         edge_against_edge(v0, u1, u2, ax, ay, i0, i1) ||
         edge_against_edge(v0, u2, u0, ax, ay, i0, i1);
}

bool point_in_tri(const float* v0, const float* u0, const float* u1, const float* u2, int i0,
                  int i1) {
  float a = u1[i1] - u0[i1];
  float b = -(u1[i0] - u0[i0]);
  float c = -a * u0[i0] - b * u0[i1];
  const float d0 = a * v0[i0] + b * v0[i1] + c;

  a = u2[i1] - u1[i1];
  b = -(u2[i0] - u1[i0]);
  c = -a * u1[i0] - b * u1[i1];
  const float d1 = a * v0[i0] + b * v0[i1] + c;

  a = u0[i1] - u2[i1];
  b = -(u0[i0] - u2[i0]);
  c = -a * u2[i0] - b * u2[i1];
  const float d2 = a * v0[i0] + b * v0[i1] + c;

  return d0 * d1 > 0.0f && d0 * d2 > 0.0f;
}

bool coplanar_tri_tri(const Vec3& n, const float* v0, const float* v1, const float* v2,
                      const float* u0, const float* u1, const float* u2) {
  const float ax = std::fabs(n[0]);
  const float ay = std::fabs(n[1]);
  const float az = std::fabs(n[2]);
  int i0, i1;
  if (ax > ay) {
    if (ax > az) { i0 = 1; i1 = 2; }
    else { i0 = 0; i1 = 1; }
  } else {
    if (az > ay) { i0 = 0; i1 = 1; }
    else { i0 = 0; i1 = 2; }
  }
  return edge_against_tri(v0, v1, u0, u1, u2, i0, i1) ||
         edge_against_tri(v1, v2, u0, u1, u2, i0, i1) ||
         edge_against_tri(v2, v0, u0, u1, u2, i0, i1) ||
         point_in_tri(v0, u0, u1, u2, i0, i1) || point_in_tri(u0, v0, v1, v2, i0, i1);
}

/// Möller's fast triangle-triangle intersection test.
bool tri_tri_intersect(const Vec3& v0, const Vec3& v1, const Vec3& v2, const Vec3& u0,
                       const Vec3& u1, const Vec3& u2) {
  // Plane of triangle 1: n1 . x + d1 = 0.
  const Vec3 e1 = sub(v1, v0);
  const Vec3 e2 = sub(v2, v0);
  const Vec3 n1 = cross(e1, e2);
  const float d1 = -dot(n1, v0);
  float du0 = dot(n1, u0) + d1;
  float du1 = dot(n1, u1) + d1;
  float du2 = dot(n1, u2) + d1;
  constexpr float kEps = 1e-6f;
  if (std::fabs(du0) < kEps) du0 = 0;
  if (std::fabs(du1) < kEps) du1 = 0;
  if (std::fabs(du2) < kEps) du2 = 0;
  const float du0du1 = du0 * du1;
  const float du0du2 = du0 * du2;
  if (du0du1 > 0.0f && du0du2 > 0.0f) return false;  // all on one side

  // Plane of triangle 2.
  const Vec3 e3 = sub(u1, u0);
  const Vec3 e4 = sub(u2, u0);
  const Vec3 n2 = cross(e3, e4);
  const float d2 = -dot(n2, u0);
  float dv0 = dot(n2, v0) + d2;
  float dv1 = dot(n2, v1) + d2;
  float dv2 = dot(n2, v2) + d2;
  if (std::fabs(dv0) < kEps) dv0 = 0;
  if (std::fabs(dv1) < kEps) dv1 = 0;
  if (std::fabs(dv2) < kEps) dv2 = 0;
  const float dv0dv1 = dv0 * dv1;
  const float dv0dv2 = dv0 * dv2;
  if (dv0dv1 > 0.0f && dv0dv2 > 0.0f) return false;

  // Direction of the intersection line.
  const Vec3 dir = cross(n1, n2);
  // Largest component of dir for the simplified projection.
  float mx = std::fabs(dir[0]);
  int index = 0;
  if (std::fabs(dir[1]) > mx) { mx = std::fabs(dir[1]); index = 1; }
  if (std::fabs(dir[2]) > mx) { index = 2; }
  const float vp0 = v0[static_cast<size_t>(index)];
  const float vp1 = v1[static_cast<size_t>(index)];
  const float vp2 = v2[static_cast<size_t>(index)];
  const float up0 = u0[static_cast<size_t>(index)];
  const float up1 = u1[static_cast<size_t>(index)];
  const float up2 = u2[static_cast<size_t>(index)];

  float isect1[2], isect2[2];
  if (!compute_intervals(vp0, vp1, vp2, dv0, dv1, dv2, dv0dv1, dv0dv2, &isect1[0], &isect1[1]))
    return coplanar_tri_tri(n1, v0.data(), v1.data(), v2.data(), u0.data(), u1.data(),
                            u2.data());
  if (!compute_intervals(up0, up1, up2, du0, du1, du2, du0du1, du0du2, &isect2[0], &isect2[1]))
    return coplanar_tri_tri(n1, v0.data(), v1.data(), v2.data(), u0.data(), u1.data(),
                            u2.data());

  if (isect1[0] > isect1[1]) std::swap(isect1[0], isect1[1]);
  if (isect2[0] > isect2[1]) std::swap(isect2[0], isect2[1]);
  return !(isect1[1] < isect2[0] || isect2[1] < isect1[0]);
}

class JmeintWorkload final : public Workload {
 public:
  explicit JmeintWorkload(WorkloadScale scale) : Workload(scale) {}

  std::string name() const override { return "JM"; }
  std::string description() const override { return "Intersection of triangles (jmeint)"; }
  ErrorMetric metric() const override { return ErrorMetric::kMissRate; }

  void init(ApproxMemory& mem) override {
    n_pairs_ = scaled(65536, 2048);
    std::vector<float> tri_a, tri_b;
    make_triangle_pairs(n_pairs_, /*seed=*/0x4A4D5F534C43ull, &tri_a, &tri_b);
    // Six safe regions: one per vertex of each triangle (#AR = 6).
    const size_t vbytes = n_pairs_ * 3 * sizeof(float);
    for (int t = 0; t < 2; ++t) {
      for (int v = 0; v < 3; ++v) {
        const std::string rn = std::string("tri") + (t == 0 ? "A" : "B") + "_v" +
                               std::to_string(v);
        const RegionId r = mem.alloc(rn, vbytes, /*safe=*/true);
        vert_[static_cast<size_t>(t * 3 + v)] = r;
        auto dst = mem.span<float>(r);
        const auto& src = t == 0 ? tri_a : tri_b;
        for (size_t i = 0; i < n_pairs_; ++i)
          for (int c = 0; c < 3; ++c)
            dst[i * 3 + static_cast<size_t>(c)] =
                src[i * 9 + static_cast<size_t>(v) * 3 + static_cast<size_t>(c)];
      }
    }
    out_ = mem.alloc("intersects", n_pairs_, /*safe=*/false);
  }

  void run(ApproxMemory& mem) override {
    mem.begin_kernel("jmeint", /*compute_per_access=*/2.0, /*accesses_per_cta=*/7);
    std::array<RegionId, 7> zip_reads{};
    for (size_t i = 0; i < 6; ++i) zip_reads[i] = vert_[i];
    mem.trace_zip(std::span<const RegionId>(zip_reads.data(), 6),
                  std::span<const RegionId>(&out_, 1));

    auto res = mem.span<uint8_t>(out_);
    std::array<std::span<const float>, 6> v;
    for (size_t i = 0; i < 6; ++i) v[i] = mem.span<const float>(vert_[i]);
    for (size_t i = 0; i < n_pairs_; ++i) {
      auto vec = [&](size_t which) -> Vec3 {
        return {v[which][i * 3], v[which][i * 3 + 1], v[which][i * 3 + 2]};
      };
      res[i] = tri_tri_intersect(vec(0), vec(1), vec(2), vec(3), vec(4), vec(5)) ? 1 : 0;
    }
    mem.commit_async(out_);
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto b = mem.span<const uint8_t>(out_);
    return std::vector<float>(b.begin(), b.end());
  }

  std::vector<uint8_t> bool_output(const ApproxMemory& mem) const override {
    const auto b = mem.span<const uint8_t>(out_);
    return std::vector<uint8_t>(b.begin(), b.begin() + static_cast<long>(n_pairs_));
  }

 private:
  size_t n_pairs_ = 0;
  std::array<RegionId, 6> vert_{};
  RegionId out_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_jmeint(WorkloadScale scale) {
  return std::make_unique<JmeintWorkload>(scale);
}

}  // namespace slc

// Internal factory declarations for the nine Table III workloads.
#pragma once

#include <memory>

#include "workloads/workload.h"

namespace slc {

std::unique_ptr<Workload> make_jmeint(WorkloadScale scale);
std::unique_ptr<Workload> make_blackscholes(WorkloadScale scale);
std::unique_ptr<Workload> make_dct(WorkloadScale scale);
std::unique_ptr<Workload> make_fwt(WorkloadScale scale);
std::unique_ptr<Workload> make_transpose(WorkloadScale scale);
std::unique_ptr<Workload> make_backprop(WorkloadScale scale);
std::unique_ptr<Workload> make_nn(WorkloadScale scale);
std::unique_ptr<Workload> make_srad1(WorkloadScale scale);
std::unique_ptr<Workload> make_srad2(WorkloadScale scale);

}  // namespace slc

// Workload framework: C++ reimplementations of the paper's nine benchmarks
// (Table III) with deterministic synthetic inputs, extended-cudaMalloc
// annotations, kernel-granular block traces, and application error metrics.
//
// Each workload implements:
//   init(mem)  — allocate regions (with safe-to-approximate annotations
//                matching Table III's #AR column) and fill inputs
//   run(mem)   — execute the kernels functionally on the current (possibly
//                approximated) contents; open one begin_kernel() record per
//                launch, emit the block trace, and commit() written regions
//                at kernel end (DRAM writeback is where compression happens)
//   output()   — the buffer the paper's error metric is computed on
//
// The harness (run_workload) performs the golden run (exact memory) and the
// approximate run (codec installed) on identical inputs and reports the
// application error plus the captured timing trace.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metrics/error_metrics.h"
#include "workloads/approx_memory.h"

namespace slc {

/// Input-size scaling. The paper's inputs (Table III) are sized for hours of
/// GPGPU-Sim time; kDefault keeps every footprint well above the 768 KB L2
/// (preserving memory-boundedness) while keeping runs interactive. kTiny is
/// for unit tests.
enum class WorkloadScale : uint8_t { kTiny, kDefault };

class Workload {
 public:
  explicit Workload(WorkloadScale scale) : scale_(scale) {}
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual ErrorMetric metric() const = 0;

  virtual void init(ApproxMemory& mem) = 0;
  virtual void run(ApproxMemory& mem) = 0;

  /// Float outputs for MRE/NRMSE/image-diff metrics.
  virtual std::vector<float> output(const ApproxMemory& mem) const = 0;
  /// Boolean outputs for the miss-rate metric (JM). Default: none.
  virtual std::vector<uint8_t> bool_output(const ApproxMemory&) const { return {}; }

  WorkloadScale scale() const { return scale_; }

 protected:
  WorkloadScale scale_;
  size_t scaled(size_t dflt, size_t tiny) const {
    return scale_ == WorkloadScale::kDefault ? dflt : tiny;
  }
};

/// Factory by paper short name: JM, BS, DCT, FWT, TP, BP, NN, SRAD1, SRAD2.
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        WorkloadScale scale = WorkloadScale::kDefault);

/// All nine in Table III order.
std::vector<std::string> workload_names();

/// Result of one golden+approximate execution pair.
struct WorkloadRunResult {
  double error_pct = 0.0;            ///< Table III metric, in percent
  std::vector<KernelTrace> trace;    ///< timing trace of the approximate run
  CommitStats stats;                 ///< codec statistics of the approximate run
  ErrorMetric metric = ErrorMetric::kMre;
};

/// Runs `name` twice — exact memory, then with `codec` installed — and
/// computes the application error between the two outputs.
WorkloadRunResult run_workload(const std::string& name,
                               std::shared_ptr<const BlockCodec> codec,
                               WorkloadScale scale = WorkloadScale::kDefault);

/// Concatenates every safe region's bytes (current contents) — the memory
/// image used by the compression-ratio studies (Fig. 1 / Fig. 2), standing in
/// for the blocks the kernels move through DRAM.
std::vector<uint8_t> workload_memory_image(const std::string& name,
                                           WorkloadScale scale = WorkloadScale::kDefault);

}  // namespace slc

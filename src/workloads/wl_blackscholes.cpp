// BS — BlackScholes (CUDA SDK): European option pricing.
//
// Table III: 4 M options, MRE metric, 4 approximated regions. Inputs are the
// stock price, strike and time arrays; outputs the call and put premium
// arrays. Price/strike/years/call are safe (#AR = 4); put stays exact.
#include <cmath>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

// Polynomial approximation of the cumulative normal distribution, identical
// to the CUDA SDK kernel's.
float cnd(float d) {
  constexpr float a1 = 0.31938153f;
  constexpr float a2 = -0.356563782f;
  constexpr float a3 = 1.781477937f;
  constexpr float a4 = -1.821255978f;
  constexpr float a5 = 1.330274429f;
  constexpr float rsqrt2pi = 0.39894228040143267794f;
  const float k = 1.0f / (1.0f + 0.2316419f * std::fabs(d));
  float v = rsqrt2pi * std::exp(-0.5f * d * d) *
            (k * (a1 + k * (a2 + k * (a3 + k * (a4 + k * a5)))));
  if (d > 0) v = 1.0f - v;
  return v;
}

class BlackScholesWorkload final : public Workload {
 public:
  explicit BlackScholesWorkload(WorkloadScale scale) : Workload(scale) {}

  std::string name() const override { return "BS"; }
  std::string description() const override { return "BlackScholes option pricing"; }
  ErrorMetric metric() const override { return ErrorMetric::kMre; }

  void init(ApproxMemory& mem) override {
    n_ = scaled(262144, 8192);
    std::vector<float> s, x, t;
    make_option_params(n_, /*seed=*/0x42535F534C43ull, &s, &x, &t);
    const size_t bytes = n_ * sizeof(float);
    price_ = mem.alloc("stockPrice", bytes, /*safe=*/true);
    strike_ = mem.alloc("optionStrike", bytes, /*safe=*/true);
    years_ = mem.alloc("optionYears", bytes, /*safe=*/true);
    call_ = mem.alloc("callResult", bytes, /*safe=*/true);
    put_ = mem.alloc("putResult", bytes, /*safe=*/false);
    std::copy(s.begin(), s.end(), mem.span<float>(price_).begin());
    std::copy(x.begin(), x.end(), mem.span<float>(strike_).begin());
    std::copy(t.begin(), t.end(), mem.span<float>(years_).begin());
  }

  void run(ApproxMemory& mem) override {
    constexpr float kRiskFree = 0.02f;
    constexpr float kVolatility = 0.30f;
    mem.begin_kernel("BlackScholesGPU", /*compute_per_access=*/1.2, /*accesses_per_cta=*/5);
    const RegionId reads[] = {price_, strike_, years_};
    const RegionId writes[] = {call_, put_};
    mem.trace_zip(reads, writes);

    const auto s = mem.span<const float>(price_);
    const auto x = mem.span<const float>(strike_);
    const auto t = mem.span<const float>(years_);
    auto call = mem.span<float>(call_);
    auto put = mem.span<float>(put_);
    for (size_t i = 0; i < n_; ++i) {
      const float sqrt_t = std::sqrt(t[i]);
      const float d1 =
          (std::log(s[i] / x[i]) + (kRiskFree + 0.5f * kVolatility * kVolatility) * t[i]) /
          (kVolatility * sqrt_t);
      const float d2 = d1 - kVolatility * sqrt_t;
      const float cnd_d1 = cnd(d1);
      const float cnd_d2 = cnd(d2);
      const float exp_rt = std::exp(-kRiskFree * t[i]);
      call[i] = s[i] * cnd_d1 - x[i] * exp_rt * cnd_d2;
      put[i] = x[i] * exp_rt * (1.0f - cnd_d2) - s[i] * (1.0f - cnd_d1);
    }
    mem.commit_async(call_);
    mem.commit_async(put_);
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto c = mem.span<const float>(call_);
    return std::vector<float>(c.begin(), c.begin() + static_cast<long>(n_));
  }

 private:
  size_t n_ = 0;
  RegionId price_ = 0, strike_ = 0, years_ = 0, call_ = 0, put_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_blackscholes(WorkloadScale scale) {
  return std::make_unique<BlackScholesWorkload>(scale);
}

}  // namespace slc

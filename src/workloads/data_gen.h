// Synthetic input generators with the value-locality characteristics of the
// paper's real inputs: smooth grayscale images (DCT), speckled ultrasound
// images (SRAD), clustered GIS coordinates (NN), bounded option-pricing
// parameters (BS, CUDA SDK ranges), and triangle soups (JM).
//
// Compressibility of GPU data comes from adjacent-thread value similarity
// (Sec. III-E cites [7], [11]); these generators produce exactly that:
// neighbouring elements share exponents and high-order mantissa bits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace slc {

/// Synthetic grayscale scene in [0, 255]: low-frequency sinusoid base with a
/// patchwork of flat, weakly and strongly textured tiles plus edges — the
/// spatially varying entropy natural images show (flat sky compresses to a
/// few bits per pixel, texture needs many). `bit_depth` sets the capture
/// quantization: 8 for classic byte images, 12 for sensor/medical data
/// (values land on a 1/16 grey-level grid).
std::vector<float> make_smooth_image(size_t width, size_t height, uint64_t seed,
                                     unsigned bit_depth = 8);

/// Speckled image: smooth anatomy base with multiplicative exponential
/// speckle noise, the standard SRAD input model (ultrasound).
std::vector<float> make_speckle_image(size_t width, size_t height, uint64_t seed);

/// Clustered 2-D coordinates (lat in [0,90], lon in [0,180]) around a few
/// dozen hurricane-track cluster centres, matching Rodinia nn's data shape.
void make_gis_records(size_t n, uint64_t seed, std::vector<float>* lat,
                      std::vector<float>* lon);

/// CUDA SDK BlackScholes parameter ranges: S in [5,30], X in [1,100],
/// T in [0.25,10].
void make_option_params(size_t n, uint64_t seed, std::vector<float>* price,
                        std::vector<float>* strike, std::vector<float>* years);

/// Triangle-pair soup for jmeint: vertices of pair i are drawn inside a
/// shared local cell so roughly half the pairs intersect.
void make_triangle_pairs(size_t n_pairs, uint64_t seed, std::vector<float>* tri_a,
                         std::vector<float>* tri_b);

}  // namespace slc

// FWT — fast Walsh-Hadamard transform (CUDA SDK fastWalshTransform).
//
// Table III: 8 M elements, NRMSE metric, 2 approximated regions. The SDK
// version ping-pongs between global passes (fwtBatch1/fwtBatch2); we model
// the data array plus the kernel workspace as the two safe regions and run
// the standard log2(N) butterfly passes.
#include <cmath>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

class FwtWorkload final : public Workload {
 public:
  explicit FwtWorkload(WorkloadScale scale) : Workload(scale) {}

  std::string name() const override { return "FWT"; }
  std::string description() const override { return "Fast Walsh-Hadamard transform"; }
  ErrorMetric metric() const override { return ErrorMetric::kNrmse; }

  void init(ApproxMemory& mem) override {
    n_ = scaled(size_t{1} << 20, size_t{1} << 13);
    const size_t bytes = n_ * sizeof(float);
    data_ = mem.alloc("fwtData", bytes, /*safe=*/true);
    work_ = mem.alloc("fwtWorkspace", bytes, /*safe=*/true);
    Rng rng(0x4657545F534Cull);
    auto d = mem.span<float>(data_);
    // Walsh transforms run on sampled signals; 16-bit PCM quantization is
    // the natural input grid (and keeps the float mantissa tail zero).
    for (size_t i = 0; i < n_; ++i) {
      const auto pcm = static_cast<int32_t>(rng.next_below(65536)) - 32768;
      d[i] = static_cast<float>(pcm) / 32768.0f;
    }
  }

  void run(ApproxMemory& mem) override {
    // The SDK runs ceil(log2(N)/11) global kernels (each covers 11 butterfly
    // levels in shared memory); we model three global passes and ping-pong
    // through the workspace region to expose the write-read roundtrip.
    size_t levels = 0;
    while ((size_t{1} << levels) < n_) ++levels;
    const size_t passes = 3;
    const size_t levels_per_pass = (levels + passes - 1) / passes;

    RegionId cur = data_;
    RegionId nxt = work_;
    size_t done = 0;
    for (size_t p = 0; p < passes && done < levels; ++p) {
      mem.begin_kernel("fwtBatch" + std::to_string(p + 1), /*compute_per_access=*/2.5,
                       /*accesses_per_cta=*/2);
      const RegionId reads[] = {cur};
      const RegionId writes[] = {nxt};
      mem.trace_zip(reads, writes);

      const auto in = mem.span<const float>(cur);
      auto out = mem.span<float>(nxt);
      std::copy(in.begin(), in.end(), out.begin());
      const size_t todo = std::min(levels_per_pass, levels - done);
      for (size_t l = 0; l < todo; ++l) {
        const size_t stride = size_t{1} << (done + l);
        for (size_t base = 0; base < n_; base += 2 * stride) {
          for (size_t k = 0; k < stride; ++k) {
            const float a = out[base + k];
            const float b = out[base + k + stride];
            out[base + k] = a + b;
            out[base + k + stride] = a - b;
          }
        }
      }
      done += todo;
      mem.commit_async(nxt);
      std::swap(cur, nxt);
    }
    result_ = cur;
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto c = mem.span<const float>(result_);
    return std::vector<float>(c.begin(), c.begin() + static_cast<long>(n_));
  }

 private:
  size_t n_ = 0;
  RegionId data_ = 0, work_ = 0, result_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_fwt(WorkloadScale scale) {
  return std::make_unique<FwtWorkload>(scale);
}

}  // namespace slc

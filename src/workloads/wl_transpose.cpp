// TP — matrix transpose (CUDA SDK transpose).
//
// Table III: 1024x1024 matrix, NRMSE metric, 2 approximated regions (input
// and output matrices). Error can only come from the memory approximation
// itself — the kernel just moves data — which is why the paper's TP error is
// tiny (0.05%).
#include <cmath>

#include "workloads/data_gen.h"
#include "workloads/workload_factories.h"

namespace slc {

namespace {

class TransposeWorkload final : public Workload {
 public:
  explicit TransposeWorkload(WorkloadScale scale) : Workload(scale) {}

  std::string name() const override { return "TP"; }
  std::string description() const override { return "Matrix transpose"; }
  ErrorMetric metric() const override { return ErrorMetric::kNrmse; }

  void init(ApproxMemory& mem) override {
    dim_ = scaled(512, 64);
    const size_t bytes = dim_ * dim_ * sizeof(float);
    in_ = mem.alloc("idata", bytes, /*safe=*/true);
    out_ = mem.alloc("odata", bytes, /*safe=*/true);
    // A 12-bit sensor field: transpose inputs in the paper come from numeric
    // pipelines (sensor grids, matrices exported at fixed precision), not
    // white noise. The textured-image generator supplies the moderate, mixed
    // compressibility Sec. V-C describes for TP (most blocks above 64 B).
    const auto img = make_smooth_image(dim_, dim_, /*seed=*/0x54505F534C43ull,
                                       /*bit_depth=*/12);
    auto d = mem.span<float>(in_);
    std::copy(img.begin(), img.end(), d.begin());
  }

  void run(ApproxMemory& mem) override {
    mem.begin_kernel("transposeCoalesced", /*compute_per_access=*/0.8, /*accesses_per_cta=*/2);
    // Tiled transpose: reads stream row-major; writes land column-major.
    // At block granularity: read block i sequentially, write blocks in
    // transposed-tile order.
    const size_t blocks_per_row = dim_ * sizeof(float) / kBlockBytes;  // 32 floats/block
    const size_t n_blocks = mem.region_blocks(in_);
    for (size_t b = 0; b < n_blocks; ++b) {
      mem.trace_block(in_, b, false);
      // The write block this tile lands in: swap (row, col-block) roles.
      const size_t row = b / blocks_per_row;
      const size_t colb = b % blocks_per_row;
      const size_t wrow = (colb * 32) % dim_;  // first row of the transposed tile
      const size_t wb = (wrow * blocks_per_row + row / (kBlockBytes / sizeof(float))) % n_blocks;
      mem.trace_block(out_, wb, true);
    }

    const auto in = mem.span<const float>(in_);
    auto out = mem.span<float>(out_);
    for (size_t y = 0; y < dim_; ++y)
      for (size_t x = 0; x < dim_; ++x) out[x * dim_ + y] = in[y * dim_ + x];
    mem.commit_async(out_);
  }

  std::vector<float> output(const ApproxMemory& mem) const override {
    const auto c = mem.span<const float>(out_);
    return std::vector<float>(c.begin(), c.begin() + static_cast<long>(dim_ * dim_));
  }

 private:
  size_t dim_ = 0;
  RegionId in_ = 0, out_ = 0;
};

}  // namespace

std::unique_ptr<Workload> make_transpose(WorkloadScale scale) {
  return std::make_unique<TransposeWorkload>(scale);
}

}  // namespace slc

#include "workloads/data_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace slc {

std::vector<float> make_smooth_image(size_t width, size_t height, uint64_t seed,
                                     unsigned bit_depth) {
  Rng rng(seed);
  // Random low-frequency basis: 6 sinusoid components.
  struct Wave {
    double fx, fy, phase, amp;
  };
  std::vector<Wave> waves;
  for (int i = 0; i < 6; ++i) {
    waves.push_back({rng.uniform(0.5, 4.0), rng.uniform(0.5, 4.0),
                     rng.uniform(0.0, 2.0 * std::numbers::pi), rng.uniform(10.0, 40.0)});
  }
  // Texture patchwork: 16x16-pixel tiles carry a per-tile detail amplitude
  // (many flat, some weak, a few strong) and occasional hard edges, giving
  // the broad per-block entropy spread of natural scenes.
  constexpr size_t kTile = 16;
  const size_t tiles_x = (width + kTile - 1) / kTile;
  const size_t tiles_y = (height + kTile - 1) / kTile;
  std::vector<double> tile_noise(tiles_x * tiles_y);
  std::vector<double> tile_edge(tiles_x * tiles_y);
  for (size_t t = 0; t < tile_noise.size(); ++t) {
    const double r = rng.uniform();
    tile_noise[t] = r < 0.45 ? 0.7 : (r < 0.8 ? 6.0 : 24.0);
    tile_edge[t] = rng.chance(0.15) ? rng.uniform(20.0, 70.0) : 0.0;
  }

  // Capture quantization: 2^(bit_depth-8) grey levels per 8-bit step.
  const double q = static_cast<double>(1u << (bit_depth > 8 ? bit_depth - 8 : 0));

  std::vector<float> img(width * height);
  for (size_t y = 0; y < height; ++y) {
    for (size_t x = 0; x < width; ++x) {
      double v = 128.0;
      for (const Wave& w : waves) {
        v += w.amp * std::sin(w.fx * 2.0 * std::numbers::pi * static_cast<double>(x) /
                                  static_cast<double>(width) +
                              w.fy * 2.0 * std::numbers::pi * static_cast<double>(y) /
                                  static_cast<double>(height) +
                              w.phase);
      }
      const size_t tile = (y / kTile) * tiles_x + x / kTile;
      v += tile_noise[tile] * rng.normal();
      if (tile_edge[tile] != 0.0 && (x % kTile) >= kTile / 2) v += tile_edge[tile];
      img[y * width + x] =
          static_cast<float>(std::round(std::clamp(v, 0.0, 255.0) * q) / q);
    }
  }
  return img;
}

std::vector<float> make_speckle_image(size_t width, size_t height, uint64_t seed) {
  std::vector<float> base = make_smooth_image(width, height, seed);
  Rng rng(seed ^ 0xABCDEF0123456789ull);
  for (float& p : base) {
    // Multiplicative exponential speckle (unit mean), the ultrasound model
    // SRAD is designed to remove.
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    const double speckle = -std::log(u);
    // Rounded like the smooth image: ultrasound frames are 8-bit captures.
    p = static_cast<float>(std::round(std::clamp(static_cast<double>(p) * speckle, 0.0, 255.0)));
  }
  return base;
}

void make_gis_records(size_t n, uint64_t seed, std::vector<float>* lat,
                      std::vector<float>* lon) {
  Rng rng(seed);
  lat->resize(n);
  lon->resize(n);
  // Hurricane records are stored track by track: consecutive records are
  // consecutive positions of the same storm, a fraction of a degree apart —
  // that file order is exactly the adjacent-value similarity GPU threads
  // see. Coordinates carry two decimal digits (parsed from text).
  size_t i = 0;
  while (i < n) {
    double la = rng.uniform(5.0, 85.0);
    double lo = rng.uniform(5.0, 175.0);
    double heading = rng.uniform(0.0, 2.0 * 3.14159265358979);
    const size_t track_len = 64 + rng.next_below(192);
    for (size_t k = 0; k < track_len && i < n; ++k, ++i) {
      heading += rng.uniform(-0.2, 0.2);
      la = std::clamp(la + 0.12 * std::sin(heading), 0.0, 90.0);
      lo = std::clamp(lo + 0.12 * std::cos(heading), 0.0, 180.0);
      (*lat)[i] = static_cast<float>(std::round(la * 100.0) / 100.0);
      (*lon)[i] = static_cast<float>(std::round(lo * 100.0) / 100.0);
    }
  }
}

void make_option_params(size_t n, uint64_t seed, std::vector<float>* price,
                        std::vector<float>* strike, std::vector<float>* years) {
  Rng rng(seed);
  price->resize(n);
  strike->resize(n);
  years->resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Market data is discrete: quotes tick on a 0.05 grid (nickel ticks),
    // exchange-listed strikes sit on a 0.50 grid, and expiries land on the
    // quarterly calendar.
    (*price)[i] = static_cast<float>(std::round(rng.uniform(5.0, 30.0) * 20.0) / 20.0);
    (*strike)[i] = static_cast<float>(std::round(rng.uniform(1.0, 100.0) * 2.0) / 2.0);
    (*years)[i] = static_cast<float>(std::round(rng.uniform(0.25, 10.0) * 4.0) / 4.0);
  }
}

void make_triangle_pairs(size_t n_pairs, uint64_t seed, std::vector<float>* tri_a,
                         std::vector<float>* tri_b) {
  Rng rng(seed);
  tri_a->resize(n_pairs * 9);
  tri_b->resize(n_pairs * 9);
  for (size_t i = 0; i < n_pairs; ++i) {
    // Shared unit cell positioned on a coarse grid: vertices of both
    // triangles are local, so intersections are common but not certain.
    const double cx = rng.uniform(0.0, 100.0);
    const double cy = rng.uniform(0.0, 100.0);
    const double cz = rng.uniform(0.0, 100.0);
    // Mesh vertices come from model files with per-model fixed-point
    // precision: coarse game assets, mid-resolution scans, finely tessellated
    // CAD parts, and some full-precision exports. The mix gives the broad
    // per-block entropy spread real triangle soups show.
    const double r = rng.uniform();
    const double g = r < 0.4 ? 64.0 : (r < 0.7 ? 256.0 : (r < 0.9 ? 2048.0 : 0.0));
    auto grid = [g](double v) {
      return static_cast<float>(g == 0.0 ? v : std::round(v * g) / g);
    };
    for (int v = 0; v < 3; ++v) {
      (*tri_a)[i * 9 + static_cast<size_t>(v) * 3 + 0] = grid(cx + rng.uniform(-1.0, 1.0));
      (*tri_a)[i * 9 + static_cast<size_t>(v) * 3 + 1] = grid(cy + rng.uniform(-1.0, 1.0));
      (*tri_a)[i * 9 + static_cast<size_t>(v) * 3 + 2] = grid(cz + rng.uniform(-1.0, 1.0));
      (*tri_b)[i * 9 + static_cast<size_t>(v) * 3 + 0] = grid(cx + rng.uniform(-1.0, 1.0));
      (*tri_b)[i * 9 + static_cast<size_t>(v) * 3 + 1] = grid(cy + rng.uniform(-1.0, 1.0));
      (*tri_b)[i * 9 + static_cast<size_t>(v) * 3 + 2] = grid(cz + rng.uniform(-1.0, 1.0));
    }
  }
}

}  // namespace slc

// ApproxMemory: the device-memory model with the paper's extended
// cudaMalloc() annotation (Sec. IV-C) plus block-level trace capture.
//
//   cudaMalloc(void** p, size_t size, bool safeToApprox, size_t threshold)
//
// maps to alloc(name, bytes, safe, threshold). Regions live at contiguous
// 128 B-aligned device addresses. Whenever a region's contents cross the DRAM
// boundary (host upload at init, kernel writeback), the harness calls
// commit(): every block is pushed through the installed BlockCodec, which
// yields the burst count for the timing trace and — for SLC lossy blocks in
// safe regions — the approximated contents later reads observe.
//
// Kernel-level tracing: begin_kernel() opens a kernel record; trace_read()/
// trace_write() append block-granular accesses carrying the burst count in
// effect (from the region's latest commit). The timing simulator replays the
// trace; the functional run uses the mutated arrays. Both derive from the
// same codec decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/block.h"
#include "compress/block_codec.h"
#include "engine/codec_engine.h"

namespace slc {

using RegionId = uint32_t;

/// One block-level memory access in the timing trace.
struct TraceAccess {
  uint64_t addr = 0;       ///< device address (128 B aligned)
  uint8_t bursts = 0;      ///< DRAM bursts if this access misses all caches
  bool write = false;
};

/// One kernel launch in the trace.
struct KernelTrace {
  std::string name;
  /// SM compute cycles consumed per block access — the workload's
  /// compute-to-memory calibration knob (higher = less memory-bound).
  double compute_per_access = 1.0;
  /// Accesses issued by consecutive CTAs; the simulator distributes them
  /// round-robin over SMs in groups of `accesses_per_cta`.
  uint32_t accesses_per_cta = 8;
  std::vector<TraceAccess> accesses;
};

/// Aggregate compression statistics over the commits of a run.
struct CommitStats {
  uint64_t blocks = 0;
  uint64_t lossy_blocks = 0;
  uint64_t uncompressed_blocks = 0;
  uint64_t bursts = 0;
  uint64_t truncated_symbols = 0;
  uint64_t original_bits = 0;
  uint64_t lossless_bits = 0;
  uint64_t final_bits = 0;

  double avg_bursts() const {
    return blocks ? static_cast<double>(bursts) / static_cast<double>(blocks) : 0.0;
  }
  double lossy_fraction() const {
    return blocks ? static_cast<double>(lossy_blocks) / static_cast<double>(blocks) : 0.0;
  }

  /// Folds another accumulator into this one (integer counters, so merging
  /// is exact in any order — commit() merges per-worker stats with this).
  void merge(const CommitStats& o) {
    blocks += o.blocks;
    lossy_blocks += o.lossy_blocks;
    uncompressed_blocks += o.uncompressed_blocks;
    bursts += o.bursts;
    truncated_symbols += o.truncated_symbols;
    original_bits += o.original_bits;
    lossless_bits += o.lossless_bits;
    final_bits += o.final_bits;
  }
};

class ApproxMemory {
 public:
  ApproxMemory() = default;

  /// Installs the memory-controller codec. Null reverts to exact memory
  /// (golden run): commits neither mutate nor record bursts below max.
  void set_codec(std::shared_ptr<const BlockCodec> codec) { codec_ = std::move(codec); }
  const BlockCodec* codec() const { return codec_.get(); }

  /// Installs the engine commits shard their block work across. Defaults to
  /// the process-wide shared engine; results are identical for any thread
  /// count. Null forces the single-threaded inline path.
  void set_engine(std::shared_ptr<CodecEngine> engine) { engine_ = std::move(engine); }
  CodecEngine* engine() const { return engine_.get(); }

  /// Extended cudaMalloc (Sec. IV-C). Threshold is the per-region lossy
  /// threshold in bytes; ignored when safe_to_approx is false.
  RegionId alloc(std::string name, size_t bytes, bool safe_to_approx,
                 size_t threshold_bytes = 16);

  size_t num_regions() const { return regions_.size(); }
  const std::string& region_name(RegionId r) const { return regions_[r].name; }
  size_t region_bytes(RegionId r) const { return regions_[r].data.size(); }
  size_t region_blocks(RegionId r) const { return regions_[r].data.size() / kBlockBytes; }
  bool region_safe(RegionId r) const { return regions_[r].safe; }
  uint64_t region_addr(RegionId r) const { return regions_[r].base_addr; }
  size_t safe_region_count() const;

  /// Typed view of a region's current contents.
  template <typename T>
  std::span<T> span(RegionId r) {
    auto& d = regions_[r].data;
    return {reinterpret_cast<T*>(d.data()), d.size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> span(RegionId r) const {
    const auto& d = regions_[r].data;
    return {reinterpret_cast<const T*>(d.data()), d.size() / sizeof(T)};
  }

  /// Pushes the region through the codec block-by-block: updates per-block
  /// burst counts, accumulates stats, and (SLC lossy blocks only) mutates the
  /// contents in place.
  void commit(RegionId r);

  /// Commits every region (host upload after init).
  void commit_all();

  // --- trace capture -------------------------------------------------------
  void begin_kernel(std::string name, double compute_per_access,
                    uint32_t accesses_per_cta = 8);
  /// Appends one read/write access per block of the region.
  void trace_read(RegionId r);
  void trace_write(RegionId r);
  /// Interleaves same-index blocks of several regions (streaming kernels
  /// touching multiple arrays in lockstep).
  void trace_zip(std::span<const RegionId> reads, std::span<const RegionId> writes);
  /// Appends a single block access.
  void trace_block(RegionId r, size_t block, bool write);

  const std::vector<KernelTrace>& trace() const { return trace_; }
  std::vector<KernelTrace> take_trace() { return std::move(trace_); }

  const CommitStats& stats() const { return stats_; }
  CommitStats region_stats(RegionId r) const;

 private:
  struct Region {
    std::string name;
    std::vector<uint8_t> data;
    bool safe = false;
    size_t threshold_bytes = 16;
    uint64_t base_addr = 0;
    std::vector<uint8_t> bursts;  ///< per-block bursts from the last commit
    CommitStats stats;
  };

  uint8_t current_bursts(const Region& reg, size_t block) const;

  std::vector<Region> regions_;
  std::shared_ptr<const BlockCodec> codec_;
  std::shared_ptr<CodecEngine> engine_ = CodecEngine::shared_default();
  uint64_t next_addr_ = 0x1000'0000;  ///< device heap base
  std::vector<KernelTrace> trace_;
  CommitStats stats_;
};

}  // namespace slc

// ApproxMemory: the device-memory model with the paper's extended
// cudaMalloc() annotation (Sec. IV-C) plus block-level trace capture.
//
//   cudaMalloc(void** p, size_t size, bool safeToApprox, size_t threshold)
//
// maps to alloc(name, bytes, safe, threshold). Regions live at contiguous
// 128 B-aligned device addresses. Whenever a region's contents cross the DRAM
// boundary (host upload at init, kernel writeback), the harness calls
// commit() or commit_async(): every block is pushed through the installed
// BlockCodec, which yields the burst count for the timing trace and — for SLC
// lossy blocks in safe regions — the approximated contents later reads
// observe.
//
// Async commits: commit_async(r) queues the region's block work as one
// CodecEngine job and returns immediately, so the harness thread can capture
// the next kernel's trace or generate data for other regions while the
// engine compresses. Every observation of a region — span(), trace_*(),
// region_stats(), stats(), flush() — first *settles* that region (waits its
// pending commit and folds its stats in), so any-thread-count results stay
// byte-identical to the serial commit() path; the only code that may touch a
// region's bytes without settling is a span taken BEFORE the async commit
// and dereferenced before the next settle point — don't do that; re-acquire
// spans after a commit_async of the same region.
//
// Kernel-level tracing: begin_kernel() opens a kernel record; trace_read()/
// trace_write() append block-granular accesses carrying the burst count in
// effect (from the region's latest settled commit). The timing simulator
// replays the trace; the functional run uses the mutated arrays. Both derive
// from the same codec decisions.
//
// Threading model: one ApproxMemory belongs to one harness thread. The
// *engine workers* run its queued commits concurrently, but all member
// calls — including the const observers, which settle (and therefore
// mutate lazily-deferred state) — must come from a single thread or be
// externally synchronized. Distinct ApproxMemory instances may share an
// engine freely.
//
// Deliberately mutex-free, so it carries none of the thread-safety
// annotations the locked subsystems use (common/thread_safety.h): the only
// cross-thread sharing is engine workers writing block-disjoint slices of a
// committing region, and the settle-on-access path synchronizes with them
// through CodecFuture::wait() (the job's mutex + the completed-count
// handoff) before any harness-side read. There is no lock hierarchy to
// annotate; the TSan CI tier is this file's race watchdog.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/block.h"
#include "common/stats.h"
#include "compress/block_codec.h"
#include "engine/codec_engine.h"

namespace slc {

class TraceStream;

using RegionId = uint32_t;

/// One block-level memory access in the timing trace.
struct TraceAccess {
  uint64_t addr = 0;       ///< device address (128 B aligned)
  /// DRAM bursts if this access misses all caches. Wide on purpose: a
  /// geometry with block_bytes / mag_bytes > 255 (or a codec reporting
  /// outsized burst counts) must not silently wrap.
  uint32_t bursts = 0;
  bool write = false;
};

/// One kernel launch in the trace.
struct KernelTrace {
  std::string name;
  /// SM compute cycles consumed per block access — the workload's
  /// compute-to-memory calibration knob (higher = less memory-bound).
  double compute_per_access = 1.0;
  /// Accesses issued by consecutive CTAs; the simulator distributes them
  /// round-robin over SMs in groups of `accesses_per_cta`.
  uint32_t accesses_per_cta = 8;
  std::vector<TraceAccess> accesses;
};

/// Aggregate compression statistics over the commits of a run.
struct CommitStats {
  uint64_t blocks = 0;
  uint64_t lossy_blocks = 0;
  uint64_t uncompressed_blocks = 0;
  uint64_t bursts = 0;
  uint64_t truncated_symbols = 0;
  uint64_t original_bits = 0;
  uint64_t lossless_bits = 0;
  uint64_t final_bits = 0;
  /// Fingerprint-memo outcomes over the committed blocks (all zero for
  /// codecs without a cache). Unlike every field above, these counters are
  /// NOT thread-count invariant when a cache is shared across workers —
  /// compare cached runs with same_decisions(), not operator==.
  CacheCounters cache;

  double avg_bursts() const {
    return blocks ? static_cast<double>(bursts) / static_cast<double>(blocks) : 0.0;
  }
  double lossy_fraction() const {
    return blocks ? static_cast<double>(lossy_blocks) / static_cast<double>(blocks) : 0.0;
  }

  /// All-field equality — the determinism checks compare whole accumulators
  /// so a new counter can never silently escape them. For runs with a
  /// fingerprint cache enabled this is stricter than the determinism
  /// contract (hit/miss tallies race); those compare same_decisions().
  bool operator==(const CommitStats&) const = default;

  /// Every decision-derived counter equal, cache tallies ignored — the
  /// equality a cached run is guaranteed to share with an uncached (or
  /// differently-threaded) run of the same stream.
  bool same_decisions(const CommitStats& o) const {
    return blocks == o.blocks && lossy_blocks == o.lossy_blocks &&
           uncompressed_blocks == o.uncompressed_blocks && bursts == o.bursts &&
           truncated_symbols == o.truncated_symbols && original_bits == o.original_bits &&
           lossless_bits == o.lossless_bits && final_bits == o.final_bits;
  }

  /// Folds another accumulator into this one (integer counters, so merging
  /// is exact in any order — settle() merges per-commit stats with this).
  void merge(const CommitStats& o) {
    blocks += o.blocks;
    lossy_blocks += o.lossy_blocks;
    uncompressed_blocks += o.uncompressed_blocks;
    bursts += o.bursts;
    truncated_symbols += o.truncated_symbols;
    original_bits += o.original_bits;
    lossless_bits += o.lossless_bits;
    final_bits += o.final_bits;
    cache.merge(o.cache);
  }
};

class ApproxMemory {
 public:
  ApproxMemory() = default;
  /// Settles every pending async commit (exceptions from in-flight codec
  /// jobs are swallowed here — wait via flush() to observe them).
  ~ApproxMemory();

  // Pending futures are one-shot and their jobs write into this object's
  // region buffers, so copies are unsound; moves transfer the whole model.
  ApproxMemory(const ApproxMemory&) = delete;
  ApproxMemory& operator=(const ApproxMemory&) = delete;
  ApproxMemory(ApproxMemory&&) = default;
  ApproxMemory& operator=(ApproxMemory&&) = delete;

  /// Installs the memory-controller codec. Null reverts to exact memory
  /// (golden run): commits neither mutate nor record bursts below max.
  void set_codec(std::shared_ptr<const BlockCodec> codec) { codec_ = std::move(codec); }
  const BlockCodec* codec() const { return codec_.get(); }

  /// Installs the engine commits shard their block work across. Defaults to
  /// the process-wide shared engine; results are identical for any thread
  /// count. Null forces the single-threaded inline path (commit_async then
  /// degrades to a synchronous commit). Settles pending commits first —
  /// their futures reference the engine being replaced.
  void set_engine(std::shared_ptr<CodecEngine> engine) {
    flush();
    engine_ = std::move(engine);
  }
  CodecEngine* engine() const { return engine_.get(); }

  /// Extended cudaMalloc (Sec. IV-C). Threshold is the per-region lossy
  /// threshold in bytes; ignored when safe_to_approx is false.
  RegionId alloc(std::string name, size_t bytes, bool safe_to_approx,
                 size_t threshold_bytes = 16);

  size_t num_regions() const { return regions_.size(); }
  const std::string& region_name(RegionId r) const { return regions_[r].name; }
  size_t region_bytes(RegionId r) const { return regions_[r].data.size(); }
  size_t region_blocks(RegionId r) const { return regions_[r].data.size() / kBlockBytes; }
  bool region_safe(RegionId r) const { return regions_[r].safe; }
  uint64_t region_addr(RegionId r) const { return regions_[r].base_addr; }
  size_t safe_region_count() const;

  /// Typed view of a region's current contents. Settles a pending async
  /// commit of `r` first, so the bytes seen are always post-commit; spans
  /// taken before a later commit_async(r) must be re-acquired afterwards.
  template <typename T>
  std::span<T> span(RegionId r) {
    settle(r);
    auto& d = regions_[r].data;
    return {reinterpret_cast<T*>(d.data()), d.size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> span(RegionId r) const {
    // Settling materializes lazily-deferred state; logically const.
    const_cast<ApproxMemory*>(this)->settle(r);
    const auto& d = regions_[r].data;
    return {reinterpret_cast<const T*>(d.data()), d.size() / sizeof(T)};
  }

  /// Pushes the region through the codec block-by-block: updates per-block
  /// burst counts, accumulates stats, and (SLC lossy blocks only) mutates the
  /// contents in place. Synchronous: equivalent to commit_async + settle.
  void commit(RegionId r);

  /// Queues the commit as one engine job and returns immediately. Back-to-
  /// back commits of the same region serialize (the second settles the
  /// first); commits of different regions run concurrently. Results and
  /// stats are byte-identical to commit() for any thread count. A codec
  /// exception surfaces at the settle point (flush(), stats(), span(), ...).
  void commit_async(RegionId r);

  /// Barrier: settles every pending async commit, folding its stats in.
  /// Rethrows the first codec exception any pending commit raised.
  void flush();

  /// True while region r has an un-settled async commit in flight.
  bool commit_pending(RegionId r) const { return regions_[r].pending.valid(); }

  /// Commits every region (host upload after init). Commits are queued
  /// asynchronously — regions pipeline through the engine back-to-back and
  /// settle on first observation, so callers needing a barrier add flush().
  void commit_all();

  // --- trace capture -------------------------------------------------------
  void begin_kernel(std::string name, double compute_per_access,
                    uint32_t accesses_per_cta = 8);
  /// Appends one read/write access per block of the region.
  void trace_read(RegionId r);
  void trace_write(RegionId r);
  /// Interleaves same-index blocks of several regions (streaming kernels
  /// touching multiple arrays in lockstep).
  void trace_zip(std::span<const RegionId> reads, std::span<const RegionId> writes);
  /// Appends a single block access (settles r: bursts reflect the latest
  /// commit, async or not).
  void trace_block(RegionId r, size_t block, bool write);

  /// Kernels captured and not yet published to a trace sink. Without a sink
  /// this is the whole trace (the materialized path); with one it holds only
  /// the kernel currently being captured.
  const std::vector<KernelTrace>& trace() const { return trace_; }
  std::vector<KernelTrace> take_trace() { return std::move(trace_); }

  // --- streaming trace publication ----------------------------------------
  // With a sink installed, begin_kernel() publishes every previously
  // completed kernel as one TraceStream chunk before opening the next — a
  // chunk is immutable once published because trace_block() settles the
  // region at capture time, so the burst counts it recorded are final (the
  // settle-on-access ordering that makes commits publishable while later
  // kernels are still being captured). A full stream blocks begin_kernel()
  // — that backpressure is what bounds the trace footprint. end_trace()
  // publishes the last kernel and closes the stream; a cancelled sink
  // (consumer gone) detaches silently and later kernels stay in trace_.

  /// Installs the stream that receives completed kernel chunks. Replacing a
  /// live sink end_trace()s it first. The consumer (GpuSim::run) typically
  /// runs on another thread.
  void set_trace_sink(std::shared_ptr<TraceStream> sink);
  /// Publishes any still-buffered kernels and closes the sink (pop on the
  /// consumer side then drains and returns null). No-op without a sink.
  /// The destructor closes a forgotten sink WITHOUT publishing (it must not
  /// block), so a run that wants its last kernel replayed calls this.
  void end_trace();

  /// Whole-run stats. Settles every pending commit first so the counters
  /// always cover all commits issued so far.
  const CommitStats& stats();
  CommitStats region_stats(RegionId r) const;

 private:
  /// Per-block burst-store sentinel: the block has never been committed
  /// (exact/golden run), so reads cost max bursts. An explicit constant, not
  /// "0 means uncommitted" — 0 is not a value a codec can report (minimum is
  /// one burst), but keying committed-ness off an in-band value was fragile.
  static constexpr uint32_t kUncommittedBursts = UINT32_MAX;

  struct Region {
    std::string name;
    std::vector<uint8_t> data;
    bool safe = false;
    size_t threshold_bytes = 16;
    uint64_t base_addr = 0;
    /// Per-block bursts from the last commit (kUncommittedBursts before the
    /// first). Wide enough for any geometry — a uint8_t store silently
    /// wrapped once block_bytes / mag_bytes exceeded 255.
    std::vector<uint32_t> bursts;
    CommitStats stats;
    CodecFuture<CommitStats> pending;  ///< in-flight async commit, if any
  };

  /// Waits a pending async commit of r (if any) and folds its stats into
  /// the region and run totals. No-op when nothing is pending.
  void settle(RegionId r);

  /// Pushes every kernel in trace_ to the sink (all are complete at the
  /// call sites: before begin_kernel opens the next, or at end_trace).
  /// Detaches from a cancelled sink.
  void publish_completed_kernels();

  uint32_t current_bursts(const Region& reg, size_t block) const;

  std::vector<Region> regions_;
  std::shared_ptr<const BlockCodec> codec_;
  std::shared_ptr<CodecEngine> engine_ = CodecEngine::shared_default();
  uint64_t next_addr_ = 0x1000'0000;  ///< device heap base
  std::vector<KernelTrace> trace_;
  std::shared_ptr<TraceStream> trace_sink_;  ///< null = materialize into trace_
  CommitStats stats_;
};

}  // namespace slc

#include "compress/cpack.h"

#include <array>
#include <cassert>
#include <cstring>
#include <deque>

#include "common/bitstream.h"
#include "compress/batch_writer.h"
#include "compress/codec_registry.h"

namespace slc {

namespace {

// FIFO dictionary with fixed capacity; index 0 is the oldest entry, matching
// the hardware's shift-register organisation.
class FifoDict {
 public:
  explicit FifoDict(size_t cap) : cap_(cap) {}

  // Returns index of a full match or -1.
  int find_full(uint32_t w) const {
    for (size_t i = 0; i < entries_.size(); ++i)
      if (entries_[i] == w) return static_cast<int>(i);
    return -1;
  }
  // Returns index whose upper `bytes` bytes match, or -1.
  int find_partial(uint32_t w, unsigned bytes) const {
    const uint32_t mask = bytes == 3 ? 0xFFFFFF00u : 0xFFFF0000u;
    for (size_t i = 0; i < entries_.size(); ++i)
      if ((entries_[i] & mask) == (w & mask)) return static_cast<int>(i);
    return -1;
  }
  uint32_t at(size_t i) const { return entries_[i]; }
  void push(uint32_t w) {
    if (entries_.size() == cap_) entries_.pop_front();
    entries_.push_back(w);
  }

 private:
  size_t cap_;
  std::deque<uint32_t> entries_;
};

// Same FIFO semantics as FifoDict (logical index 0 = oldest entry), but in a
// fixed power-of-two ring buffer on the stack — no deque node churn per
// block. Used by the batch kernels; FifoDict above stays the reference.
class RingDict {
 public:
  explicit RingDict(size_t cap) : mask_(cap - 1), cap_(cap) {}

  int find_full(uint32_t w) const {
    for (size_t i = 0; i < size_; ++i)
      if (buf_[(start_ + i) & mask_] == w) return static_cast<int>(i);
    return -1;
  }
  int find_partial(uint32_t w, unsigned bytes) const {
    const uint32_t mask = bytes == 3 ? 0xFFFFFF00u : 0xFFFF0000u;
    const uint32_t key = w & mask;
    for (size_t i = 0; i < size_; ++i)
      if ((buf_[(start_ + i) & mask_] & mask) == key) return static_cast<int>(i);
    return -1;
  }
  void push(uint32_t w) {
    if (size_ == cap_) {
      buf_[start_] = w;  // overwrite the oldest slot; it becomes the newest
      start_ = (start_ + 1) & mask_;
    } else {
      buf_[(start_ + size_) & mask_] = w;
      ++size_;
    }
  }

 private:
  std::array<uint32_t, 64> buf_{};
  size_t mask_;
  size_t cap_;
  size_t start_ = 0;
  size_t size_ = 0;
};

// RingDict's fixed buffer caps the dictionary sizes the batch kernels cover;
// larger dictionaries (never used in practice) take the scalar path.
bool ring_dict_applicable(size_t block_bytes, size_t dict_entries) {
  return detail::word_staging_applicable(block_bytes) && dict_entries <= 64;
}

constexpr unsigned prefix_bits(CpackCode c) {
  switch (c) {
    case CpackCode::kZZZZ:
    case CpackCode::kXXXX:
    case CpackCode::kMMMM: return 2;
    default: return 4;
  }
}

constexpr uint64_t prefix_value(CpackCode c) {
  switch (c) {
    case CpackCode::kZZZZ: return 0b00;
    case CpackCode::kXXXX: return 0b01;
    case CpackCode::kMMMM: return 0b10;
    case CpackCode::kMMXX: return 0b1100;
    case CpackCode::kZZZX: return 0b1101;
    case CpackCode::kMMMX: return 0b1110;
  }
  return 0;
}

}  // namespace

CpackCompressor::CpackCompressor(size_t dict_entries) : dict_entries_(dict_entries) {
  assert(dict_entries >= 2 && (dict_entries & (dict_entries - 1)) == 0);
  index_bits_ = 0;
  for (size_t v = dict_entries; v > 1; v >>= 1) ++index_bits_;
}

unsigned CpackCompressor::code_bits(CpackCode c) const {
  switch (c) {
    case CpackCode::kZZZZ: return 2;
    case CpackCode::kXXXX: return 2 + 32;
    case CpackCode::kMMMM: return 2 + index_bits_;
    case CpackCode::kMMXX: return 4 + index_bits_ + 16;
    case CpackCode::kZZZX: return 4 + 8;
    case CpackCode::kMMMX: return 4 + index_bits_ + 8;
  }
  return 34;
}

CompressedBlock CpackCompressor::compress(BlockView block) const {
  const size_t n_words = block.size() / 4;
  FifoDict dict(dict_entries_);
  BitWriter w;
  for (size_t i = 0; i < n_words; ++i) {
    const uint32_t word = block.word32(i);
    if (word == 0) {
      w.put(prefix_value(CpackCode::kZZZZ), prefix_bits(CpackCode::kZZZZ));
      continue;
    }
    if ((word & 0xFFFFFF00u) == 0) {
      w.put(prefix_value(CpackCode::kZZZX), prefix_bits(CpackCode::kZZZX));
      w.put(word & 0xFF, 8);
      continue;
    }
    int idx = dict.find_full(word);
    if (idx >= 0) {
      w.put(prefix_value(CpackCode::kMMMM), prefix_bits(CpackCode::kMMMM));
      w.put(static_cast<uint64_t>(idx), index_bits_);
      continue;
    }
    idx = dict.find_partial(word, 3);
    if (idx >= 0) {
      w.put(prefix_value(CpackCode::kMMMX), prefix_bits(CpackCode::kMMMX));
      w.put(static_cast<uint64_t>(idx), index_bits_);
      w.put(word & 0xFF, 8);
      dict.push(word);
      continue;
    }
    idx = dict.find_partial(word, 2);
    if (idx >= 0) {
      w.put(prefix_value(CpackCode::kMMXX), prefix_bits(CpackCode::kMMXX));
      w.put(static_cast<uint64_t>(idx), index_bits_);
      w.put(word & 0xFFFF, 16);
      dict.push(word);
      continue;
    }
    w.put(prefix_value(CpackCode::kXXXX), prefix_bits(CpackCode::kXXXX));
    w.put(word, 32);
    dict.push(word);
  }

  CompressedBlock out;
  if (w.bit_size() >= block.size() * 8) {
    out.is_compressed = false;
    out.bit_size = block.size() * 8;
    out.payload.assign(block.bytes().begin(), block.bytes().end());
  } else {
    out.is_compressed = true;
    out.bit_size = w.bit_size();
    out.payload = w.bytes();
  }
  return out;
}

Block CpackCompressor::decompress(const CompressedBlock& cb, size_t block_bytes) const {
  if (!cb.is_compressed) {
    return Block(std::span<const uint8_t>(cb.payload.data(), block_bytes));
  }
  Block out(block_bytes);
  BitReader r(cb.payload);
  FifoDict dict(dict_entries_);
  const size_t n_words = block_bytes / 4;
  for (size_t i = 0; i < n_words; ++i) {
    uint32_t word = 0;
    if (r.get_bit() == 0) {
      if (r.get_bit() == 0) {
        word = 0;  // zzzz
      } else {
        word = static_cast<uint32_t>(r.get(32));  // xxxx
        dict.push(word);
      }
    } else {
      if (r.get_bit() == 0) {
        const auto idx = static_cast<size_t>(r.get(index_bits_));  // mmmm
        word = dict.at(idx);
      } else {
        // 4-bit prefixes: 1100 mmxx, 1101 zzzx, 1110 mmmx
        const bool b3 = r.get_bit();
        if (!b3) {
          // 110x
          if (!r.get_bit()) {
            const auto idx = static_cast<size_t>(r.get(index_bits_));  // mmxx
            const auto lo = static_cast<uint32_t>(r.get(16));
            word = (dict.at(idx) & 0xFFFF0000u) | lo;
            dict.push(word);
          } else {
            word = static_cast<uint32_t>(r.get(8));  // zzzx
          }
        } else {
          const bool b4 = r.get_bit();
          assert(!b4 && "1111 prefix is unused in C-PACK");
          (void)b4;
          const auto idx = static_cast<size_t>(r.get(index_bits_));  // mmmx
          const auto lo = static_cast<uint32_t>(r.get(8));
          word = (dict.at(idx) & 0xFFFFFF00u) | lo;
          dict.push(word);
        }
      }
    }
    out.set_word32(i, word);
  }
  return out;
}

BlockAnalysis CpackCompressor::analyze(BlockView block) const {
  // Mirror of compress(): same dictionary walk (the FIFO must see the same
  // push sequence), summing code sizes instead of emitting bits.
  const size_t n_words = block.size() / 4;
  FifoDict dict(dict_entries_);
  size_t bits = 0;
  for (size_t i = 0; i < n_words; ++i) {
    const uint32_t word = block.word32(i);
    if (word == 0) {
      bits += code_bits(CpackCode::kZZZZ);
    } else if ((word & 0xFFFFFF00u) == 0) {
      bits += code_bits(CpackCode::kZZZX);
    } else if (dict.find_full(word) >= 0) {
      bits += code_bits(CpackCode::kMMMM);
    } else if (dict.find_partial(word, 3) >= 0) {
      bits += code_bits(CpackCode::kMMMX);
      dict.push(word);
    } else if (dict.find_partial(word, 2) >= 0) {
      bits += code_bits(CpackCode::kMMXX);
      dict.push(word);
    } else {
      bits += code_bits(CpackCode::kXXXX);
      dict.push(word);
    }
  }

  BlockAnalysis a;
  const size_t raw_bits = block.size() * 8;
  a.is_compressed = bits < raw_bits;
  a.bit_size = a.is_compressed ? bits : raw_bits;
  a.lossless_bits = a.bit_size;
  return a;
}

void CpackCompressor::analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const {
  uint32_t words[detail::kMaxStagedWords];
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockView blk = blocks[b];
    if (!ring_dict_applicable(blk.size(), dict_entries_)) {
      out[b] = analyze(blk);
      continue;
    }
    const size_t n_words = detail::load_words_le32(blk.bytes().data(), blk.size(), words);
    RingDict dict(dict_entries_);
    size_t bits = 0;
    for (size_t i = 0; i < n_words; ++i) {
      const uint32_t word = words[i];
      if (word == 0) {
        bits += code_bits(CpackCode::kZZZZ);
      } else if ((word & 0xFFFFFF00u) == 0) {
        bits += code_bits(CpackCode::kZZZX);
      } else if (dict.find_full(word) >= 0) {
        bits += code_bits(CpackCode::kMMMM);
      } else if (dict.find_partial(word, 3) >= 0) {
        bits += code_bits(CpackCode::kMMMX);
        dict.push(word);
      } else if (dict.find_partial(word, 2) >= 0) {
        bits += code_bits(CpackCode::kMMXX);
        dict.push(word);
      } else {
        bits += code_bits(CpackCode::kXXXX);
        dict.push(word);
      }
    }
    BlockAnalysis a;
    const size_t raw_bits = blk.size() * 8;
    a.is_compressed = bits < raw_bits;
    a.bit_size = a.is_compressed ? bits : raw_bits;
    a.lossless_bits = a.bit_size;
    out[b] = a;
  }
}

void CpackCompressor::compress_batch(std::span<const BlockView> blocks,
                                     CompressedBlock* out) const {
  uint32_t words[detail::kMaxStagedWords];
  detail::BatchBitWriter w;  // reused across the batch
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockView blk = blocks[b];
    if (!ring_dict_applicable(blk.size(), dict_entries_)) {
      out[b] = compress(blk);
      continue;
    }
    const size_t n_words = detail::load_words_le32(blk.bytes().data(), blk.size(), words);
    RingDict dict(dict_entries_);
    w.clear();
    for (size_t i = 0; i < n_words; ++i) {
      const uint32_t word = words[i];
      if (word == 0) {
        w.put(prefix_value(CpackCode::kZZZZ), prefix_bits(CpackCode::kZZZZ));
        continue;
      }
      if ((word & 0xFFFFFF00u) == 0) {
        w.put(prefix_value(CpackCode::kZZZX), prefix_bits(CpackCode::kZZZX));
        w.put(word & 0xFF, 8);
        continue;
      }
      int idx = dict.find_full(word);
      if (idx >= 0) {
        w.put(prefix_value(CpackCode::kMMMM), prefix_bits(CpackCode::kMMMM));
        w.put(static_cast<uint64_t>(idx), index_bits_);
        continue;
      }
      idx = dict.find_partial(word, 3);
      if (idx >= 0) {
        w.put(prefix_value(CpackCode::kMMMX), prefix_bits(CpackCode::kMMMX));
        w.put(static_cast<uint64_t>(idx), index_bits_);
        w.put(word & 0xFF, 8);
        dict.push(word);
        continue;
      }
      idx = dict.find_partial(word, 2);
      if (idx >= 0) {
        w.put(prefix_value(CpackCode::kMMXX), prefix_bits(CpackCode::kMMXX));
        w.put(static_cast<uint64_t>(idx), index_bits_);
        w.put(word & 0xFFFF, 16);
        dict.push(word);
        continue;
      }
      w.put(prefix_value(CpackCode::kXXXX), prefix_bits(CpackCode::kXXXX));
      w.put(word, 32);
      dict.push(word);
    }

    CompressedBlock cb;
    if (w.bit_size() >= blk.size() * 8) {
      cb.is_compressed = false;
      cb.bit_size = blk.size() * 8;
      cb.payload.assign(blk.bytes().begin(), blk.bytes().end());
    } else {
      cb.is_compressed = true;
      cb.bit_size = w.bit_size();
      cb.payload = w.bytes();
    }
    out[b] = std::move(cb);
  }
}

namespace {
const CodecRegistrar cpack_registrar({
    .name = "C-PACK",
    .scheme = "dictionary + zero patterns",
    .paper = "Chen et al., IEEE TVLSI 2010 (paper Fig. 1 baseline)",
    .order = 2,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 8,
    .decompress_latency = 8,
    .make = [](const CodecOptions&) -> std::shared_ptr<const Compressor> {
      return std::make_shared<CpackCompressor>();
    },
    .make_block_codec = nullptr,
});
}  // namespace

}  // namespace slc

// BlockCodec: the memory-controller compression policy applied to every
// block that crosses the DRAM pin boundary.
//
// The interface and the scheme-agnostic policies live here in the compress
// layer; the paper's selective lossy policy (SlcBlockCodec) lives in
// core/slc_block_codec.h. Policies are normally constructed by name through
// CodecRegistry::create_block_codec().
//   RawBlockCodec      — no compression (every block costs all bursts)
//   LosslessBlockCodec — any lossless Compressor (E2MC baseline, BDI, ...)
// process() returns the burst count (timing) and the block contents as the
// GPU will later observe them (functional); only lossy codecs mutate.
#pragma once

#include <memory>
#include <span>

#include "compress/compressor.h"

namespace slc {

/// Result of pushing one block through the memory-controller codec.
struct BlockCodecResult {
  size_t bursts = 0;          ///< MAG bursts this block costs in DRAM
  size_t lossless_bits = 0;   ///< compressed size before any truncation
  size_t final_bits = 0;      ///< stored size
  bool lossy = false;         ///< true if symbols were approximated
  bool stored_uncompressed = false;
  size_t truncated_symbols = 0;
  Block decoded;              ///< block as later reads will observe it

  // Fingerprint-memo outcome (see BlockAnalysis): hit-rate accounting only;
  // every decision field above is cache-invariant.
  bool cache_probed = false;
  bool cache_hit = false;
  bool cache_evicted = false;
  bool cache_collision = false;
};

class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  /// Compresses + decompresses one block. `safe_to_approx` and
  /// `threshold_bytes` come from the region's extended-cudaMalloc annotation;
  /// codecs without a lossy mode ignore them. Must be safe to call
  /// concurrently from CodecEngine workers (all bundled policies are).
  virtual BlockCodecResult process(BlockView block, bool safe_to_approx,
                                   size_t threshold_bytes) const = 0;

  /// Batched form of process(): fills out[0..blocks.size()) with exactly the
  /// results the per-block scalar loop would produce (out[i] belongs to
  /// blocks[i]). `safe_to_approx`/`threshold_bytes` apply to the whole span —
  /// the region-commit shape, where every block shares the region's
  /// annotation. The base implementation *is* the scalar loop (the tested
  /// oracle, like Compressor's batch entry points); policies override it with
  /// kernels that hoist per-block setup out of the loop. Overrides must be
  /// byte-identical to the scalar loop for any input and any sub-range split
  /// (pinned by tests/test_batch_kernels.cpp) and must keep scratch in the
  /// call frame: a BlockCodec stays immutable after construction, so
  /// concurrent CodecEngine shards may run the kernel on disjoint ranges.
  virtual void process_batch(std::span<const BlockView> blocks, bool safe_to_approx,
                             size_t threshold_bytes, BlockCodecResult* out) const;

  virtual size_t mag_bytes() const = 0;
  virtual std::string name() const = 0;

  /// Max bursts for an uncompressed block.
  size_t max_bursts(size_t block_bytes = kBlockBytes) const {
    return block_bytes / mag_bytes();
  }
};

/// Uncompressed baseline: every block costs max bursts, contents unchanged.
class RawBlockCodec final : public BlockCodec {
 public:
  explicit RawBlockCodec(size_t mag_bytes = kDefaultMagBytes) : mag_(mag_bytes) {}
  BlockCodecResult process(BlockView block, bool, size_t) const override;
  void process_batch(std::span<const BlockView> blocks, bool safe_to_approx,
                     size_t threshold_bytes, BlockCodecResult* out) const override;
  size_t mag_bytes() const override { return mag_; }
  std::string name() const override { return "RAW"; }

 private:
  size_t mag_;
};

/// Lossless compression through any Compressor (contents never change).
class LosslessBlockCodec final : public BlockCodec {
 public:
  LosslessBlockCodec(std::shared_ptr<const Compressor> comp,
                     size_t mag_bytes = kDefaultMagBytes)
      : comp_(std::move(comp)), mag_(mag_bytes) {}
  BlockCodecResult process(BlockView block, bool, size_t) const override;
  /// Delegates the size pass to the compressor's analyze_batch kernel, so a
  /// scheme with a vectorized override (BDI/FPC/C-PACK/E2MC) serves region
  /// commits at batch speed.
  void process_batch(std::span<const BlockView> blocks, bool safe_to_approx,
                     size_t threshold_bytes, BlockCodecResult* out) const override;
  size_t mag_bytes() const override { return mag_; }
  std::string name() const override { return comp_->name(); }

 private:
  std::shared_ptr<const Compressor> comp_;
  size_t mag_;
};

/// Wraps any policy and forces the per-block scalar loop: process() forwards
/// to the inner policy while process_batch stays the inherited base-class
/// default. This is the oracle the batch-vs-scalar equivalence tests compare
/// against and the "scalar" row of bench/engine_throughput's region-commit
/// measurement — one definition so the two cannot drift.
class ScalarOnlyBlockCodec final : public BlockCodec {
 public:
  explicit ScalarOnlyBlockCodec(std::shared_ptr<const BlockCodec> inner)
      : inner_(std::move(inner)) {}
  BlockCodecResult process(BlockView block, bool safe_to_approx,
                           size_t threshold_bytes) const override {
    return inner_->process(block, safe_to_approx, threshold_bytes);
  }
  size_t mag_bytes() const override { return inner_->mag_bytes(); }
  std::string name() const override { return inner_->name(); }

 private:
  std::shared_ptr<const BlockCodec> inner_;
};

}  // namespace slc

// String-keyed registry of every compression scheme in the repo.
//
// Each scheme self-registers from its own translation unit (a static
// CodecRegistrar at namespace scope), so constructing a codec anywhere in the
// tree is `CodecRegistry::instance().create("TSLC-OPT", opts)` — no consumer
// hand-wires compressor classes any more. Entries carry the metadata the
// benches and the simulator need (paper reference, pipeline latencies, lossy
// capability), plus an optional BlockCodec factory for schemes that need a
// custom memory-controller policy (SLC's per-region threshold clamp, the RAW
// baseline).
//
// Registration happens during static initialization (single-threaded);
// lookups afterwards are read-only and thread-safe.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compress/compressor.h"
#include "compress/e2mc.h"

namespace slc {

class BlockCodec;
class FingerprintCache;

/// Everything a factory may need to construct a codec. Schemes ignore the
/// fields that do not apply to them (BDI/FPC/C-PACK need nothing; the entropy
/// coders need `training_data`; SLC additionally reads `mag_bytes` and
/// `threshold_bytes`).
struct CodecOptions {
  size_t mag_bytes = kDefaultMagBytes;
  size_t threshold_bytes = 16;  ///< SLC lossy threshold (paper default 16 B)
  /// Sample the entropy coders train their symbol tables on (E2MC's online
  /// sampling window). Schemes with needs_training require this unless
  /// `trained_e2mc` is supplied.
  std::span<const uint8_t> training_data{};
  E2mcConfig e2mc{};
  /// Already-trained E2MC model to reuse (skips training). Honored by the
  /// E2MC and TSLC-* factories — the benches' per-benchmark training cache.
  std::shared_ptr<const E2mcCompressor> trained_e2mc{};
  /// Optional fingerprint memo for the Fig. 4 decision path
  /// (core/fingerprint_cache.h), honored by the TSLC-* factories; null (the
  /// default) keeps the codec uncached. Sharing one cache across codecs is
  /// safe — entries are keyed on the deciding codec's identity.
  std::shared_ptr<FingerprintCache> fingerprint_cache{};
};

using CompressorFactory =
    std::function<std::shared_ptr<const Compressor>(const CodecOptions&)>;
using BlockCodecFactory =
    std::function<std::shared_ptr<const BlockCodec>(const CodecOptions&)>;

/// One registry entry: factory plus the metadata consumers keep asking for.
struct CodecInfo {
  std::string name;     ///< registry key; matches Compressor::name()
  std::string scheme;   ///< family description for the README table
  std::string paper;    ///< source paper / section reference
  int order = 99;       ///< display order in sweeps (Fig. 1 column order)
  bool lossy = false;
  bool needs_training = false;
  /// Pipeline latencies in memory-controller cycles for the timing simulator
  /// (paper Sec. IV-A gives E2MC 46/20 and TSLC 60/20; the other schemes use
  /// the figures from their own papers and only matter for extra sweeps).
  unsigned compress_latency = 0;
  unsigned decompress_latency = 0;
  CompressorFactory make;              ///< null for RAW (no Compressor form)
  BlockCodecFactory make_block_codec;  ///< null => wrap in LosslessBlockCodec
};

class CodecRegistry {
 public:
  static CodecRegistry& instance();

  /// Registers a scheme; throws std::logic_error on duplicate names.
  void add(CodecInfo info);

  /// Lookup; null when the name is unknown.
  const CodecInfo* find(std::string_view name) const;
  /// Lookup; throws std::out_of_range with the known names on a miss.
  const CodecInfo& at(std::string_view name) const;
  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Constructs the compressor registered under `name`. Throws
  /// std::invalid_argument when the scheme has no Compressor form (RAW) or
  /// needs training data that `opts` does not provide.
  std::shared_ptr<const Compressor> create(std::string_view name,
                                           const CodecOptions& opts) const;

  /// Constructs the memory-controller BlockCodec for `name`: the scheme's
  /// own factory when registered, otherwise the compressor wrapped in a
  /// LosslessBlockCodec at `opts.mag_bytes`.
  std::shared_ptr<const BlockCodec> create_block_codec(std::string_view name,
                                                       const CodecOptions& opts) const;

  /// All registered names in display order.
  std::vector<std::string> names() const;
  /// Lossless Compressor-capable schemes in display order — the Fig. 1 sweep.
  std::vector<std::string> lossless_names() const;
  /// Lossy schemes in display order — the TSLC variant sweep (Fig. 7/8).
  std::vector<std::string> lossy_names() const;
  /// Entries in display order.
  std::vector<const CodecInfo*> entries() const;

 private:
  CodecRegistry() = default;
  std::map<std::string, CodecInfo, std::less<>> by_name_;
};

/// Put one of these at namespace scope in the scheme's .cpp to self-register.
struct CodecRegistrar {
  explicit CodecRegistrar(CodecInfo info);
};

}  // namespace slc

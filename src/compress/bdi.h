// Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).
//
// A block is encoded as one base value plus per-word deltas that must fit in
// a narrow field; words near zero may instead use an implicit zero base
// ("immediate"), selected by a per-word mask bit. Eight encodings (base size
// x delta size) plus all-zero and repeated-value special cases are tried and
// the smallest valid one wins. BDI is one of the four schemes whose
// raw-vs-effective gap motivates the paper (Fig. 1).
#pragma once

#include <array>

#include "compress/compressor.h"

namespace slc {

/// BDI encoding identifiers (4-bit tag stored in the compressed stream).
enum class BdiEncoding : uint8_t {
  kUncompressed = 0,
  kZeros = 1,
  kRepeat64 = 2,   // block is one repeated 64-bit value
  kBase8Delta1 = 3,
  kBase8Delta2 = 4,
  kBase8Delta4 = 5,
  kBase4Delta1 = 6,
  kBase4Delta2 = 7,
  kBase2Delta1 = 8,
};

class BdiCompressor : public Compressor {
 public:
  std::string name() const override { return "BDI"; }
  CompressedBlock compress(BlockView block) const override;
  Block decompress(const CompressedBlock& cb, size_t block_bytes) const override;
  /// Size-only: picks the winning encoding without emitting the bit stream.
  BlockAnalysis analyze(BlockView block) const override;

  /// Batched kernels: stage each block's bytes into 64-bit lanes once and
  /// probe every encoding from registers — no per-block byte re-assembly, no
  /// per-block allocation (the bit writer is reused across the batch).
  /// Byte-identical to the scalar loop.
  using Compressor::analyze_batch;
  using Compressor::compress_batch;
  void analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const override;
  void compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const override;

  /// Exposes the winning encoding for a block (used by tests and ablations).
  static BdiEncoding best_encoding(BlockView block);

  /// Compressed size in bits of a given encoding for `block_bytes` blocks
  /// (independent of contents; kUncompressed returns block bits).
  static size_t encoding_bits(BdiEncoding enc, size_t block_bytes);

  /// Base/delta widths of a base+delta encoding (0/0 for the special cases).
  struct Geometry {
    size_t base_bytes;
    size_t delta_bytes;
  };
  static Geometry geometry(BdiEncoding enc);

  /// Candidate base+delta encodings in probe order (ascending compressed
  /// size for a 128 B block). Shared by the scalar probes and the AVX2
  /// kernel so the two cannot rank candidates differently.
  static const std::array<BdiEncoding, 6>& candidate_order();
};

}  // namespace slc

// Runtime SIMD dispatch for the batch codec kernels.
//
// The batch kernels in bdi/fpc/e2mc.cpp have AVX2 variants (simd_avx2.cpp,
// compiled with -mavx2 in an otherwise baseline-ISA build). Which variant a
// kernel runs is decided here, once per process: probe CPUID for AVX2
// (`__builtin_cpu_supports`), honor the `SLC_FORCE_SCALAR` environment
// variable (any value except "0" pins the scalar kernels — the CI leg that
// keeps both paths green), and expose a programmatic override so tests and
// benches can measure scalar-vs-SIMD in one process without re-exec.
//
// The scalar kernels are always compiled and remain the tested oracle; a
// SIMD variant must be byte-identical to them for any input (pinned by
// tests/test_batch_kernels.cpp under both dispatch settings). Hosts or
// builds without AVX2 simply never leave Level::kScalar — there is no
// correctness fallback to get wrong, only a speed difference.
#pragma once

namespace slc::simd {

/// Kernel variant the dispatcher selected. kAvx2 implies the binary carries
/// the AVX2 kernels *and* the host CPU supports them.
enum class Level { kScalar, kAvx2 };

/// The variant batch kernels should run right now: the cached probe result,
/// downgraded to kScalar while a force_scalar(true) override is in effect.
Level active_level();

/// Human-readable variant name ("scalar" / "avx2"); used in BenchReport
/// metadata so perf-gate diffs are interpretable across hosts.
const char* level_name(Level level);
const char* active_level_name();

/// True when the AVX2 kernels were compiled into this binary (x86-64 build
/// with a compiler that accepts -mavx2), independent of the host CPU.
bool avx2_compiled();

/// True when the host CPU reports AVX2, independent of overrides. Always
/// false in builds without the AVX2 kernels (nothing probes CPUID there).
bool avx2_supported();

/// True when SLC_FORCE_SCALAR was set (and not "0") at first probe.
bool force_scalar_env();

/// Process-wide programmatic override: force_scalar(true) pins
/// active_level() to kScalar; force_scalar(false) returns to the probed
/// default. Thread-safe; intended for tests and the three-way bench rows.
void force_scalar(bool on);

}  // namespace slc::simd

// AVX2 kernel entry points for the hot batch loops (internal).
//
// These are the vector halves of the batch kernels in bdi/fpc/e2mc.cpp:
// the scheme files call them only when simd::active_level() == kAvx2 and the
// block geometry fits the kernel's tile shape, so every declaration here has
// a scalar twin that remains the tested oracle. The implementations live in
// simd_avx2.cpp, the one translation unit built with -mavx2; in builds
// without SLC_HAVE_AVX2_KERNELS the dispatcher never selects kAvx2 and the
// inline stubs below keep the scheme files link-clean without a single
// #ifdef at the call sites.
#pragma once

#include <cstddef>
#include <cstdint>

#include "compress/bdi.h"

namespace slc::simd {

/// Outcome of the vector BDI probe: the winning encoding, its explicit base,
/// and — for the base+delta encodings — the per-word base-select mask
/// (bit i set => word i needs the explicit base; exactly the !use_zero bit
/// the compress kernel emits), so compress never re-derives either.
struct BdiProbe {
  BdiEncoding enc = BdiEncoding::kUncompressed;
  uint64_t base = 0;
  uint64_t use_base_mask = 0;
};

/// True when the AVX2 BDI probe handles this geometry: whole 256-bit tiles
/// (block a multiple of 32 B) and at most 64 words of the narrowest base so
/// the select mask fits one uint64 (128 B blocks and smaller).
inline bool bdi_avx2_applicable(size_t block_bytes) {
  return block_bytes % 32 == 0 && block_bytes <= 128;
}

/// best_encoding() on 256-bit lanes: zero/repeat scan, then every candidate
/// encoding probed with broadcast-subtract range checks. Identical decisions
/// to the scalar probe_direct for any input.
BdiProbe bdi_probe_avx2(const uint8_t* p, size_t block_bytes);

/// FPC prefix classification for `n_words` little-endian 32-bit words:
/// cls[i] gets the FpcPattern value of word i, with 0 (kZeroRun) marking a
/// zero word — run coalescing stays with the caller, exactly like the
/// scalar walk. Handles any n_words (vector tiles of 32, scalar tail).
void fpc_classify_avx2(const uint8_t* p, size_t n_words, uint8_t* cls);

/// E2MC code-length probe: lens[i] = bits_table[symbol i] for `n_sym`
/// little-endian 16-bit symbols, via 8-lane gathers over the flattened
/// encoded-bits table (HuffmanCode::encoded_bits_table()).
void e2mc_code_lengths_avx2(const uint8_t* p, size_t n_sym, const uint32_t* bits_table,
                            uint16_t* lens);

#if !SLC_HAVE_AVX2_KERNELS
// Builds without the AVX2 TU: unreachable (active_level() is pinned to
// kScalar), present only so the call sites compile unchanged.
inline BdiProbe bdi_probe_avx2(const uint8_t*, size_t) { return {}; }
inline void fpc_classify_avx2(const uint8_t*, size_t, uint8_t*) {}
inline void e2mc_code_lengths_avx2(const uint8_t*, size_t, const uint32_t*, uint16_t*) {}
#endif

}  // namespace slc::simd

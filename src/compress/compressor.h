// Common interface for block compressors (BDI, FPC, C-PACK, E2MC, Huffman,
// and the SLC adapters) plus the raw/effective compression-ratio bookkeeping
// from the paper.
//
// All schemes operate on one 128 B memory block at a time and report an exact
// compressed size in bits. The *raw* ratio divides original bits by these
// exact bits; the *effective* ratio first rounds the compressed size up to a
// multiple of the memory access granularity (MAG), because DRAM can only
// transfer whole bursts (Section I of the paper).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/block.h"

namespace slc {

/// One compressed memory block. `payload` holds the bit-packed stream
/// (only meaningful when `is_compressed`); `bit_size` is the exact size the
/// scheme reports, including any per-block header the scheme requires.
struct CompressedBlock {
  std::vector<uint8_t> payload;
  size_t bit_size = 0;
  bool is_compressed = false;

  size_t byte_size() const { return (bit_size + 7) / 8; }
};

/// Size-only outcome of compressing one block — everything the ratio studies
/// and the timing simulator need, without materializing a payload. For
/// lossless schemes `lossless_bits == bit_size` and the lossy fields stay
/// zero; the SLC adapters fill all fields from the Fig. 4 mode decision.
struct BlockAnalysis {
  size_t bit_size = 0;          ///< stored size in bits (raw size if uncompressed)
  bool is_compressed = false;
  bool lossy = false;           ///< symbols were approximated (SLC only)
  size_t lossless_bits = 0;     ///< size before any truncation
  size_t truncated_symbols = 0; ///< approximated symbols (SLC only)

  // Fingerprint-memo outcome for this block (core/fingerprint_cache.h; all
  // false when the scheme has no cache or it is disabled). The decision
  // fields above are identical either way — these only feed hit-rate
  // accounting (CacheCounters), never determinism checks.
  bool cache_probed = false;     ///< the decision memo was consulted
  bool cache_hit = false;        ///< decision served without the E2MC probe
  bool cache_evicted = false;    ///< inserting this block displaced an entry
  bool cache_collision = false;  ///< verify-on-hit caught a fingerprint collision
};

/// Abstract block compressor.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short identifier used in bench tables ("BDI", "FPC", ...).
  virtual std::string name() const = 0;

  /// Compresses one block. If the scheme cannot beat the uncompressed size it
  /// must return an uncompressed result (is_compressed = false,
  /// bit_size = block bits).
  virtual CompressedBlock compress(BlockView block) const = 0;

  /// Exact inverse of compress(). `block_bytes` is the original block size.
  virtual Block decompress(const CompressedBlock& cb, size_t block_bytes) const = 0;

  /// Size-only fast path: must report exactly the sizes compress() would,
  /// without building the bit stream. The default derives the answer from a
  /// full compress(); every bundled scheme overrides it with a counting pass.
  virtual BlockAnalysis analyze(BlockView block) const;

  /// Convenience wrapper over analyze() — the ratio studies' common call.
  size_t compressed_bits(BlockView block) const { return analyze(block).bit_size; }

  // --- batch kernels ---------------------------------------------------------
  // The CodecEngine's shards and the CodecServer's coalesced batches call the
  // view-based virtuals below; results go into index-aligned caller slots
  // (`out[i]` belongs to `blocks[i]`). The base implementations are the
  // per-block scalar loop; the bundled schemes override them with batched
  // kernels that hoist per-block setup out of the loop and reuse scratch
  // buffers across the batch. Overrides must be byte-identical to the scalar
  // loop for any input and any sub-range split (pinned by
  // tests/test_batch_kernels.cpp) and must keep all scratch in the call
  // frame: a Compressor stays immutable after construction, so concurrent
  // shards of one batch may run the kernel on disjoint ranges.

  /// Size-only batch kernel: fills out[0..blocks.size()) like analyze().
  virtual void analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const;
  /// Full-payload batch kernel: fills out[0..blocks.size()) like compress().
  virtual void compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const;

  /// Owned-block conveniences (bench and test entry points): materialize the
  /// views and forward to the virtual kernels above.
  std::vector<CompressedBlock> compress_batch(std::span<const Block> blocks) const;
  std::vector<BlockAnalysis> analyze_batch(std::span<const Block> blocks) const;
};

/// Accumulates raw and effective compression ratios over a stream of blocks
/// (per benchmark in Fig. 1). Effective size is the compressed size rounded
/// up to a whole number of MAG bursts, floored at one burst and capped at the
/// uncompressed block size.
class RatioAccumulator {
 public:
  explicit RatioAccumulator(size_t mag_bytes = kDefaultMagBytes) : mag_bytes_(mag_bytes) {}

  void add(size_t original_bits, size_t compressed_bits);

  /// Folds another accumulator (same MAG) into this one. All counters are
  /// integers, so merging is exact and order-independent — the property the
  /// CodecEngine relies on for thread-count-invariant results.
  void merge(const RatioAccumulator& other);

  double raw_ratio() const;
  double effective_ratio() const;
  size_t blocks() const { return blocks_; }
  size_t mag_bytes() const { return mag_bytes_; }

 private:
  size_t mag_bytes_;
  size_t blocks_ = 0;
  uint64_t original_bits_ = 0;
  uint64_t raw_bits_ = 0;
  uint64_t effective_bits_ = 0;
};

}  // namespace slc

// Internal helpers for the schemes' batched kernels (bdi/fpc/cpack/e2mc):
// little-endian word loads and a word-at-a-time bit writer.
//
// BatchBitWriter produces a byte stream identical to BitWriter's (MSB-first,
// final partial byte zero-padded) but accumulates into a 64-bit register and
// emits whole bytes, instead of BitWriter's per-byte masking loop — the
// difference between the batch compress kernels and the scalar loop is
// measured by bench/codec_throughput, and equality of the two streams is
// pinned by tests/test_batch_kernels.cpp. Not part of the public codec API.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

namespace slc::detail {

inline uint16_t load_le16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  if constexpr (std::endian::native == std::endian::big)
    v = static_cast<uint16_t>((v >> 8) | (v << 8));
  return v;
}

inline uint32_t load_le32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::big)
    v = (v >> 24) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) | (v << 24);
  return v;
}

/// Word staging shared by the kernels that walk a block 32-bit-word-wise
/// (FPC, C-PACK): one bulk little-endian load per block into a stack array.
inline constexpr size_t kMaxStagedWords = 128;  // covers blocks up to 512 B

inline bool word_staging_applicable(size_t block_bytes) {
  return block_bytes % 4 == 0 && block_bytes <= kMaxStagedWords * 4;
}

inline uint64_t load_le64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  if constexpr (std::endian::native == std::endian::big) {
    uint64_t s = 0;
    for (int i = 0; i < 8; ++i) s |= ((v >> (8 * (7 - i))) & 0xFFull) << (8 * i);
    v = s;
  }
  return v;
}

/// Stages every 32-bit word of the block into `words` (little-endian);
/// returns the word count. `words` must hold block_bytes / 4 entries.
inline size_t load_words_le32(const uint8_t* p, size_t block_bytes, uint32_t* words) {
  const size_t n = block_bytes / 4;
  for (size_t i = 0; i < n; ++i) words[i] = load_le32(p + i * 4);
  return n;
}

/// Append-only MSB-first bit writer for the batch kernels. Reuse across a
/// batch with clear(); the buffer keeps its capacity.
class BatchBitWriter {
 public:
  void clear() {
    buf_.clear();
    acc_ = 0;
    fill_ = 0;
  }

  /// Appends the low `nbits` bits of `value`, most-significant bit first.
  void put(uint64_t value, unsigned nbits) {
    if (nbits > 56) {  // split so the 64-bit accumulator cannot overflow
      put(value >> 32, nbits - 32);
      put(value & 0xFFFFFFFFull, 32);
      return;
    }
    if (nbits == 0) return;
    if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
    acc_ = (acc_ << nbits) | value;  // fill_ < 8 here, so fill_+nbits <= 63
    fill_ += nbits;
    while (fill_ >= 8) {
      fill_ -= 8;
      buf_.push_back(static_cast<uint8_t>((acc_ >> fill_) & 0xFF));
    }
  }

  void put_bit(bool bit) { put(bit ? 1u : 0u, 1); }

  size_t bit_size() const { return buf_.size() * 8 + fill_; }

  /// The packed stream so far, final partial byte zero-padded — byte-for-byte
  /// what BitWriter::bytes() returns for the same put() sequence.
  std::vector<uint8_t> bytes() const {
    std::vector<uint8_t> out(buf_);
    if (fill_) out.push_back(static_cast<uint8_t>((acc_ << (8 - fill_)) & 0xFF));
    return out;
  }

 private:
  std::vector<uint8_t> buf_;
  uint64_t acc_ = 0;
  unsigned fill_ = 0;  // pending bits in the low end of acc_; < 8 between puts
};

/// BatchBitWriter's emission logic over a caller-provided destination span —
/// the writer half of the prefix-sum payload scatter: a sizing pass computes
/// each block's exact payload bytes, exclusive_prefix_sum() turns those into
/// independent arena offsets, and each block emits through a SpanBitWriter
/// at its own offset with no per-block allocation. Identical stream bytes to
/// BitWriter / BatchBitWriter for the same put() sequence; the caller must
/// size the destination from the same sizing pass (asserted via finish()).
class SpanBitWriter {
 public:
  SpanBitWriter() = default;
  explicit SpanBitWriter(uint8_t* dst) : dst_(dst) {}

  void reset(uint8_t* dst) {
    dst_ = dst;
    len_ = 0;
    acc_ = 0;
    fill_ = 0;
  }

  /// Appends the low `nbits` bits of `value`, most-significant bit first.
  void put(uint64_t value, unsigned nbits) {
    if (nbits > 56) {
      put(value >> 32, nbits - 32);
      put(value & 0xFFFFFFFFull, 32);
      return;
    }
    if (nbits == 0) return;
    if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
    acc_ = (acc_ << nbits) | value;
    fill_ += nbits;
    while (fill_ >= 8) {
      fill_ -= 8;
      dst_[len_++] = static_cast<uint8_t>((acc_ >> fill_) & 0xFF);
    }
  }

  void put_bit(bool bit) { put(bit ? 1u : 0u, 1); }

  size_t bit_size() const { return len_ * 8 + fill_; }

  /// Flushes the final partial byte (zero-padded, like BitWriter::bytes())
  /// and returns the total bytes written.
  size_t finish() {
    if (fill_) {
      dst_[len_++] = static_cast<uint8_t>((acc_ << (8 - fill_)) & 0xFF);
      acc_ = 0;
      fill_ = 0;
    }
    return len_;
  }

 private:
  uint8_t* dst_ = nullptr;
  size_t len_ = 0;
  uint64_t acc_ = 0;
  unsigned fill_ = 0;
};

/// offsets[i] = sizes[0] + ... + sizes[i-1]; returns the total. The scatter
/// companion to SpanBitWriter: block i's payload lands at arena + offsets[i].
inline size_t exclusive_prefix_sum(const size_t* sizes, size_t n, size_t* offsets) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    offsets[i] = total;
    total += sizes[i];
  }
  return total;
}

}  // namespace slc::detail

#include "compress/fpc.h"

#include <cassert>
#include <cstring>

#include <vector>

#include "common/bitstream.h"
#include "compress/batch_writer.h"
#include "compress/codec_registry.h"
#include "compress/simd_dispatch.h"
#include "compress/simd_kernels.h"

namespace slc {

namespace {
constexpr unsigned kPrefixBits = 3;
constexpr size_t kMaxZeroRun = 8;

bool fits_se(uint32_t w, unsigned bits) {
  const int32_t v = static_cast<int32_t>(w);
  const int32_t lim = int32_t{1} << (bits - 1);
  return v >= -lim && v < lim;
}

// Fills cls[i] with the FpcPattern id of word i (kZeroRun marking a zero
// word), vectorized when the dispatcher allows. Classification is the hot
// half of FPC; the run coalescing and bit emission below consume these ids
// instead of re-deriving them.
void classify_words(const uint8_t* p, size_t n_words, uint8_t* cls, bool use_avx2) {
  if (use_avx2) {
    simd::fpc_classify_avx2(p, n_words, cls);
    return;
  }
  for (size_t i = 0; i < n_words; ++i) {
    const uint32_t w = detail::load_le32(p + 4 * i);
    cls[i] = w == 0 ? static_cast<uint8_t>(FpcPattern::kZeroRun)
                    : static_cast<uint8_t>(FpcCompressor::classify(w));
  }
}

// Exact compressed size implied by a classification — the same walk
// compress() does, summing instead of emitting.
size_t bits_from_classes(const uint8_t* cls, size_t n_words) {
  size_t bits = 0;
  size_t i = 0;
  while (i < n_words) {
    if (cls[i] == static_cast<uint8_t>(FpcPattern::kZeroRun)) {
      size_t run = 1;
      while (i + run < n_words && run < kMaxZeroRun &&
             cls[i + run] == static_cast<uint8_t>(FpcPattern::kZeroRun))
        ++run;
      bits += kPrefixBits + FpcCompressor::payload_bits(FpcPattern::kZeroRun);
      i += run;
      continue;
    }
    bits += kPrefixBits + FpcCompressor::payload_bits(static_cast<FpcPattern>(cls[i]));
    ++i;
  }
  return bits;
}

// compress()'s emission loop driven by precomputed classes; words are read
// straight off the block bytes. Byte-identical stream to the scalar walk.
template <class Writer>
void emit_from_classes(const uint8_t* p, size_t n_words, const uint8_t* cls, Writer& w) {
  size_t i = 0;
  while (i < n_words) {
    if (cls[i] == static_cast<uint8_t>(FpcPattern::kZeroRun)) {
      size_t run = 1;
      while (i + run < n_words && run < kMaxZeroRun &&
             cls[i + run] == static_cast<uint8_t>(FpcPattern::kZeroRun))
        ++run;
      w.put(static_cast<uint64_t>(FpcPattern::kZeroRun), kPrefixBits);
      w.put(run - 1, 3);
      i += run;
      continue;
    }
    const uint32_t word = detail::load_le32(p + 4 * i);
    const auto pat = static_cast<FpcPattern>(cls[i]);
    w.put(static_cast<uint64_t>(pat), kPrefixBits);
    switch (pat) {
      case FpcPattern::kSignExt4: w.put(word & 0xF, 4); break;
      case FpcPattern::kSignExt8: w.put(word & 0xFF, 8); break;
      case FpcPattern::kSignExt16: w.put(word & 0xFFFF, 16); break;
      case FpcPattern::kHalfwordPadded: w.put(word >> 16, 16); break;
      case FpcPattern::kTwoHalfwordsSE:
        w.put((word >> 16) & 0xFF, 8);
        w.put(word & 0xFF, 8);
        break;
      case FpcPattern::kRepeatedBytes: w.put(word & 0xFF, 8); break;
      case FpcPattern::kUncompressed: w.put(word, 32); break;
      case FpcPattern::kZeroRun: assert(false); break;
    }
    ++i;
  }
}

}  // namespace

FpcPattern FpcCompressor::classify(uint32_t w) {
  if (fits_se(w, 4)) return FpcPattern::kSignExt4;
  if (fits_se(w, 8)) return FpcPattern::kSignExt8;
  if (fits_se(w, 16)) return FpcPattern::kSignExt16;
  if ((w & 0xFFFFu) == 0) return FpcPattern::kHalfwordPadded;
  {
    const uint32_t lo = w & 0xFFFFu;
    const uint32_t hi = w >> 16;
    const auto se8 = [](uint32_t h) {
      const int16_t v = static_cast<int16_t>(h);
      return v >= -128 && v < 128;
    };
    if (se8(lo) && se8(hi)) return FpcPattern::kTwoHalfwordsSE;
  }
  {
    const uint32_t b = w & 0xFFu;
    if (w == (b | (b << 8) | (b << 16) | (b << 24))) return FpcPattern::kRepeatedBytes;
  }
  return FpcPattern::kUncompressed;
}

unsigned FpcCompressor::payload_bits(FpcPattern p) {
  switch (p) {
    case FpcPattern::kZeroRun: return 3;
    case FpcPattern::kSignExt4: return 4;
    case FpcPattern::kSignExt8: return 8;
    case FpcPattern::kSignExt16: return 16;
    case FpcPattern::kHalfwordPadded: return 16;
    case FpcPattern::kTwoHalfwordsSE: return 16;
    case FpcPattern::kRepeatedBytes: return 8;
    case FpcPattern::kUncompressed: return 32;
  }
  return 32;
}

CompressedBlock FpcCompressor::compress(BlockView block) const {
  const size_t n_words = block.size() / 4;
  BitWriter w;
  size_t i = 0;
  while (i < n_words) {
    const uint32_t word = block.word32(i);
    if (word == 0) {
      size_t run = 1;
      while (i + run < n_words && run < kMaxZeroRun && block.word32(i + run) == 0) ++run;
      w.put(static_cast<uint64_t>(FpcPattern::kZeroRun), kPrefixBits);
      w.put(run - 1, 3);
      i += run;
      continue;
    }
    const FpcPattern p = classify(word);
    w.put(static_cast<uint64_t>(p), kPrefixBits);
    switch (p) {
      case FpcPattern::kSignExt4: w.put(word & 0xF, 4); break;
      case FpcPattern::kSignExt8: w.put(word & 0xFF, 8); break;
      case FpcPattern::kSignExt16: w.put(word & 0xFFFF, 16); break;
      case FpcPattern::kHalfwordPadded: w.put(word >> 16, 16); break;
      case FpcPattern::kTwoHalfwordsSE:
        w.put((word >> 16) & 0xFF, 8);
        w.put(word & 0xFF, 8);
        break;
      case FpcPattern::kRepeatedBytes: w.put(word & 0xFF, 8); break;
      case FpcPattern::kUncompressed: w.put(word, 32); break;
      case FpcPattern::kZeroRun: assert(false); break;
    }
    ++i;
  }

  CompressedBlock out;
  if (w.bit_size() >= block.size() * 8) {
    out.is_compressed = false;
    out.bit_size = block.size() * 8;
    out.payload.assign(block.bytes().begin(), block.bytes().end());
  } else {
    out.is_compressed = true;
    out.bit_size = w.bit_size();
    out.payload = w.bytes();
  }
  return out;
}

Block FpcCompressor::decompress(const CompressedBlock& cb, size_t block_bytes) const {
  if (!cb.is_compressed) {
    return Block(std::span<const uint8_t>(cb.payload.data(), block_bytes));
  }
  Block out(block_bytes);
  BitReader r(cb.payload);
  const size_t n_words = block_bytes / 4;
  size_t i = 0;
  while (i < n_words) {
    const auto p = static_cast<FpcPattern>(r.get(kPrefixBits));
    switch (p) {
      case FpcPattern::kZeroRun: {
        const size_t run = r.get(3) + 1;
        i += run;  // words already zero-initialized
        break;
      }
      case FpcPattern::kSignExt4: {
        const auto v = static_cast<uint32_t>(r.get(4));
        out.set_word32(i++, (v & 0x8) ? (v | 0xFFFFFFF0u) : v);
        break;
      }
      case FpcPattern::kSignExt8: {
        const auto v = static_cast<uint32_t>(r.get(8));
        out.set_word32(i++, (v & 0x80) ? (v | 0xFFFFFF00u) : v);
        break;
      }
      case FpcPattern::kSignExt16: {
        const auto v = static_cast<uint32_t>(r.get(16));
        out.set_word32(i++, (v & 0x8000) ? (v | 0xFFFF0000u) : v);
        break;
      }
      case FpcPattern::kHalfwordPadded: {
        const auto v = static_cast<uint32_t>(r.get(16));
        out.set_word32(i++, v << 16);
        break;
      }
      case FpcPattern::kTwoHalfwordsSE: {
        const auto hi = static_cast<uint32_t>(r.get(8));
        const auto lo = static_cast<uint32_t>(r.get(8));
        const uint32_t hi_se = (hi & 0x80) ? (hi | 0xFF00u) : hi;
        const uint32_t lo_se = (lo & 0x80) ? (lo | 0xFF00u) : lo;
        out.set_word32(i++, (hi_se << 16) | (lo_se & 0xFFFFu));
        break;
      }
      case FpcPattern::kRepeatedBytes: {
        const auto b = static_cast<uint32_t>(r.get(8));
        out.set_word32(i++, b | (b << 8) | (b << 16) | (b << 24));
        break;
      }
      case FpcPattern::kUncompressed:
        out.set_word32(i++, static_cast<uint32_t>(r.get(32)));
        break;
    }
  }
  return out;
}

BlockAnalysis FpcCompressor::analyze(BlockView block) const {
  // Mirror of compress(): the same word walk, summing sizes instead of
  // emitting bits.
  const size_t n_words = block.size() / 4;
  size_t bits = 0;
  size_t i = 0;
  while (i < n_words) {
    if (block.word32(i) == 0) {
      size_t run = 1;
      while (i + run < n_words && run < kMaxZeroRun && block.word32(i + run) == 0) ++run;
      bits += kPrefixBits + payload_bits(FpcPattern::kZeroRun);
      i += run;
      continue;
    }
    bits += kPrefixBits + payload_bits(classify(block.word32(i)));
    ++i;
  }

  BlockAnalysis a;
  const size_t raw_bits = block.size() * 8;
  a.is_compressed = bits < raw_bits;
  a.bit_size = a.is_compressed ? bits : raw_bits;
  a.lossless_bits = a.bit_size;
  return a;
}

void FpcCompressor::analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const {
  uint8_t cls[detail::kMaxStagedWords];
  const bool use_avx2 = simd::active_level() == simd::Level::kAvx2;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockView blk = blocks[b];
    if (!detail::word_staging_applicable(blk.size())) {
      out[b] = analyze(blk);
      continue;
    }
    const size_t n_words = blk.size() / 4;
    classify_words(blk.bytes().data(), n_words, cls, use_avx2);
    const size_t bits = bits_from_classes(cls, n_words);
    BlockAnalysis a;
    const size_t raw_bits = blk.size() * 8;
    a.is_compressed = bits < raw_bits;
    a.bit_size = a.is_compressed ? bits : raw_bits;
    a.lossless_bits = a.bit_size;
    out[b] = a;
  }
}

void FpcCompressor::compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const {
  // Prefix-sum payload scatter: classify every block once (stage 1, the
  // vectorizable half), turn the implied exact payload sizes into arena
  // offsets, then emit each block at its own offset (stage 2) and slice the
  // arena into per-block payloads (stage 3).
  const size_t n = blocks.size();
  std::vector<uint8_t> cls_all;
  std::vector<size_t> cls_off(n, 0), bits(n, 0), sizes(n, 0), offsets(n, 0);
  const bool use_avx2 = simd::active_level() == simd::Level::kAvx2;

  size_t total_words = 0;
  for (size_t b = 0; b < n; ++b)
    if (detail::word_staging_applicable(blocks[b].size())) {
      cls_off[b] = total_words;
      total_words += blocks[b].size() / 4;
    }
  cls_all.resize(total_words);

  for (size_t b = 0; b < n; ++b) {
    const BlockView blk = blocks[b];
    if (!detail::word_staging_applicable(blk.size())) continue;  // stage-2 fallback
    const size_t n_words = blk.size() / 4;
    uint8_t* cls = cls_all.data() + cls_off[b];
    classify_words(blk.bytes().data(), n_words, cls, use_avx2);
    bits[b] = bits_from_classes(cls, n_words);
    sizes[b] = bits[b] < blk.size() * 8 ? (bits[b] + 7) / 8 : blk.size();
  }

  const size_t total = detail::exclusive_prefix_sum(sizes.data(), n, offsets.data());
  std::vector<uint8_t> arena(total);
  detail::SpanBitWriter w;

  for (size_t b = 0; b < n; ++b) {
    const BlockView blk = blocks[b];
    if (!detail::word_staging_applicable(blk.size())) {
      out[b] = compress(blk);
      continue;
    }
    const uint8_t* p = blk.bytes().data();
    if (bits[b] >= blk.size() * 8) {  // stored raw
      std::memcpy(arena.data() + offsets[b], p, blk.size());
      continue;
    }
    w.reset(arena.data() + offsets[b]);
    emit_from_classes(p, blk.size() / 4, cls_all.data() + cls_off[b], w);
    assert(w.bit_size() == bits[b]);
    const size_t written = w.finish();
    assert(written == sizes[b]);
    (void)written;
  }

  for (size_t b = 0; b < n; ++b) {
    const BlockView blk = blocks[b];
    if (!detail::word_staging_applicable(blk.size())) continue;
    CompressedBlock cb;
    const uint8_t* slice = arena.data() + offsets[b];
    cb.is_compressed = bits[b] < blk.size() * 8;
    cb.bit_size = cb.is_compressed ? bits[b] : blk.size() * 8;
    cb.payload.assign(slice, slice + sizes[b]);
    out[b] = std::move(cb);
  }
}

namespace {
const CodecRegistrar fpc_registrar({
    .name = "FPC",
    .scheme = "frequent pattern compression",
    .paper = "Alameldeen & Wood, UW-Madison TR 2004 (paper Fig. 1 baseline)",
    .order = 1,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 8,
    .decompress_latency = 5,
    .make = [](const CodecOptions&) -> std::shared_ptr<const Compressor> {
      return std::make_shared<FpcCompressor>();
    },
    .make_block_codec = nullptr,
});
}  // namespace

}  // namespace slc

#include "compress/simd_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace slc::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

bool env_force_scalar() {
  // Probed once per process (see dispatch init below) before any worker
  // thread could call setenv. NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* e = std::getenv("SLC_FORCE_SCALAR");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

bool cpu_has_avx2() {
#if SLC_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

struct Probe {
  bool env_forced = false;
  Level level = Level::kScalar;
};

// One CPUID/getenv probe per process; the programmatic override is applied
// on top of this in active_level().
const Probe& probe() {
  static const Probe p = [] {
    Probe out;
    out.env_forced = env_force_scalar();
    if (!out.env_forced && avx2_compiled() && cpu_has_avx2()) out.level = Level::kAvx2;
    return out;
  }();
  return p;
}

}  // namespace

Level active_level() {
  if (g_force_scalar.load(std::memory_order_relaxed)) return Level::kScalar;
  return probe().level;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

const char* active_level_name() { return level_name(active_level()); }

bool avx2_compiled() {
#if SLC_HAVE_AVX2_KERNELS
  return true;
#else
  return false;
#endif
}

bool avx2_supported() { return cpu_has_avx2(); }

bool force_scalar_env() { return probe().env_forced; }

void force_scalar(bool on) { g_force_scalar.store(on, std::memory_order_relaxed); }

}  // namespace slc::simd

#include "compress/compressor.h"

#include <algorithm>

namespace slc {

void RatioAccumulator::add(size_t original_bits, size_t compressed_bits) {
  ++blocks_;
  original_bits_ += original_bits;
  // A scheme never stores more than the raw block (falls back to
  // uncompressed), so clamp for accounting.
  const size_t raw = std::min(compressed_bits, original_bits);
  raw_bits_ += raw;
  // Effective size: whole bursts, at least one, at most the raw block.
  size_t eff = round_up_to_mag_bits(raw, mag_bytes_);
  eff = std::max(eff, mag_bytes_ * 8);
  eff = std::min(eff, original_bits);
  effective_bits_ += eff;
}

double RatioAccumulator::raw_ratio() const {
  return raw_bits_ ? static_cast<double>(original_bits_) / static_cast<double>(raw_bits_) : 0.0;
}

double RatioAccumulator::effective_ratio() const {
  return effective_bits_ ? static_cast<double>(original_bits_) / static_cast<double>(effective_bits_)
                         : 0.0;
}

}  // namespace slc

#include "compress/compressor.h"

#include <algorithm>
#include <cassert>

namespace slc {

BlockAnalysis Compressor::analyze(BlockView block) const {
  const CompressedBlock cb = compress(block);
  BlockAnalysis a;
  a.bit_size = cb.bit_size;
  a.is_compressed = cb.is_compressed;
  a.lossless_bits = cb.bit_size;
  return a;
}

void Compressor::analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const {
  for (size_t i = 0; i < blocks.size(); ++i) out[i] = analyze(blocks[i]);
}

void Compressor::compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const {
  for (size_t i = 0; i < blocks.size(); ++i) out[i] = compress(blocks[i]);
}

std::vector<CompressedBlock> Compressor::compress_batch(std::span<const Block> blocks) const {
  std::vector<CompressedBlock> out(blocks.size());
  const std::vector<BlockView> views = to_views(blocks);
  compress_batch(views, out.data());
  return out;
}

std::vector<BlockAnalysis> Compressor::analyze_batch(std::span<const Block> blocks) const {
  std::vector<BlockAnalysis> out(blocks.size());
  const std::vector<BlockView> views = to_views(blocks);
  analyze_batch(views, out.data());
  return out;
}

void RatioAccumulator::add(size_t original_bits, size_t compressed_bits) {
  ++blocks_;
  original_bits_ += original_bits;
  // A scheme never stores more than the raw block (falls back to
  // uncompressed), so clamp for accounting.
  const size_t raw = std::min(compressed_bits, original_bits);
  raw_bits_ += raw;
  // Effective size: whole bursts, at least one, at most the raw block.
  size_t eff = round_up_to_mag_bits(raw, mag_bytes_);
  eff = std::max(eff, mag_bytes_ * 8);
  eff = std::min(eff, original_bits);
  effective_bits_ += eff;
}

void RatioAccumulator::merge(const RatioAccumulator& other) {
  assert(mag_bytes_ == other.mag_bytes_);
  blocks_ += other.blocks_;
  original_bits_ += other.original_bits_;
  raw_bits_ += other.raw_bits_;
  effective_bits_ += other.effective_bits_;
}

double RatioAccumulator::raw_ratio() const {
  return raw_bits_ ? static_cast<double>(original_bits_) / static_cast<double>(raw_bits_) : 0.0;
}

double RatioAccumulator::effective_ratio() const {
  return effective_bits_ ? static_cast<double>(original_bits_) / static_cast<double>(effective_bits_)
                         : 0.0;
}

}  // namespace slc

// C-PACK cache compression (Chen et al., IEEE TVLSI 2010).
//
// Words are matched against zero patterns and a small FIFO dictionary of
// recently seen words; full and partial (upper 2- or 3-byte) matches are
// encoded as short codes with the unmatched bytes appended. The dictionary
// is rebuilt identically during decompression, so no table is stored.
#pragma once

#include "compress/compressor.h"

namespace slc {

/// C-PACK word codes. Code/pattern lengths follow the paper:
///   zzzz (00)              -> 2 bits, all-zero word
///   xxxx (01)+word         -> 34 bits, no match (pushed to dictionary)
///   mmmm (10)+idx          -> 6 bits, full dictionary match
///   mmxx (1100)+idx+2B     -> 24 bits, upper-halfword match (pushed)
///   zzzx (1101)+1B         -> 12 bits, only lowest byte nonzero
///   mmmx (1110)+idx+1B     -> 16 bits, upper-3-byte match (pushed)
enum class CpackCode : uint8_t { kZZZZ, kXXXX, kMMMM, kMMXX, kZZZX, kMMMX };

class CpackCompressor : public Compressor {
 public:
  /// `dict_entries` must be a power of two (index bits = log2).
  explicit CpackCompressor(size_t dict_entries = 16);

  std::string name() const override { return "C-PACK"; }
  CompressedBlock compress(BlockView block) const override;
  Block decompress(const CompressedBlock& cb, size_t block_bytes) const override;
  /// Size-only: runs the dictionary pass summing code bits, no bit stream.
  BlockAnalysis analyze(BlockView block) const override;

  /// Batched kernels: the FIFO dictionary lives in a fixed ring buffer on the
  /// stack (no per-block deque churn) and words are staged once per block;
  /// the bit writer is reused across the batch. Byte-identical to the scalar
  /// loop.
  using Compressor::analyze_batch;
  using Compressor::compress_batch;
  void analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const override;
  void compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const override;

  /// Encoded bits for a code (prefix + index + literal bytes).
  unsigned code_bits(CpackCode c) const;

 private:
  size_t dict_entries_;
  unsigned index_bits_;
};

}  // namespace slc

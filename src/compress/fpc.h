// Frequent Pattern Compression (Alameldeen & Wood, UW-Madison TR 2004).
//
// Each 32-bit word is matched against a small set of frequent patterns
// (zero runs, narrow sign-extended values, padded halfwords, repeated bytes)
// and stored as a 3-bit prefix plus a variable-size payload. Words that match
// nothing are stored verbatim behind the prefix.
#pragma once

#include "compress/compressor.h"

namespace slc {

/// FPC 3-bit pattern prefixes.
enum class FpcPattern : uint8_t {
  kZeroRun = 0,        // run of 1..8 zero words; payload: 3-bit (run-1)
  kSignExt4 = 1,       // 4-bit sign-extended value
  kSignExt8 = 2,       // 8-bit sign-extended value
  kSignExt16 = 3,      // 16-bit sign-extended value
  kHalfwordPadded = 4, // lower halfword zero; payload: upper halfword
  kTwoHalfwordsSE = 5, // both halfwords are 8-bit sign-extendable
  kRepeatedBytes = 6,  // all four bytes identical; payload: the byte
  kUncompressed = 7,   // verbatim 32-bit word
};

class FpcCompressor : public Compressor {
 public:
  std::string name() const override { return "FPC"; }
  CompressedBlock compress(BlockView block) const override;
  Block decompress(const CompressedBlock& cb, size_t block_bytes) const override;
  /// Size-only: classifies words and sums prefix+payload bits, no bit stream.
  BlockAnalysis analyze(BlockView block) const override;

  /// Batched kernels: stage the block's words once and classify them in a
  /// tight non-virtual loop, reusing the bit writer across the batch.
  /// Byte-identical to the scalar loop.
  using Compressor::analyze_batch;
  using Compressor::compress_batch;
  void analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const override;
  void compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const override;

  /// Pattern classification for one word (zero runs handled by the caller).
  static FpcPattern classify(uint32_t word);

  /// Payload bits for a pattern (excluding the 3-bit prefix).
  static unsigned payload_bits(FpcPattern p);
};

}  // namespace slc

#include "compress/bdi.h"

#include <array>
#include <cassert>
#include <cstring>

#include "common/bitstream.h"
#include "compress/batch_writer.h"
#include "compress/codec_registry.h"
#include "compress/simd_dispatch.h"
#include "compress/simd_kernels.h"

namespace slc {

namespace {

constexpr unsigned kTagBits = 4;

using Geometry = BdiCompressor::Geometry;

Geometry geometry(BdiEncoding enc) { return BdiCompressor::geometry(enc); }

// Sign-extends the low `bytes*8` bits of v.
int64_t sext(uint64_t v, size_t bytes) {
  const unsigned bits = static_cast<unsigned>(bytes * 8);
  if (bits >= 64) return static_cast<int64_t>(v);
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  uint64_t x = v & mask;
  const uint64_t sign = uint64_t{1} << (bits - 1);
  if (x & sign) x |= ~mask;
  return static_cast<int64_t>(x);
}

bool fits_signed(int64_t v, size_t bytes) {
  if (bytes >= 8) return true;
  const int64_t lim = int64_t{1} << (bytes * 8 - 1);
  return v >= -lim && v < lim;
}

uint64_t load_word(BlockView b, size_t i, size_t base_bytes) {
  switch (base_bytes) {
    case 2: return b.symbol(i);
    case 4: return b.word32(i);
    case 8: return b.word64(i);
    default: assert(false); return 0;
  }
}

const std::array<BdiEncoding, 6>& kOrder = BdiCompressor::candidate_order();

// Checks whether `block` is encodable with `enc`; fills base if so.
bool encodable(BlockView block, BdiEncoding enc, uint64_t* base_out) {
  const Geometry g = geometry(enc);
  const size_t n = block.size() / g.base_bytes;
  // Base = first word that does not fit as a zero-based delta (original BDI
  // uses the first non-immediate-representable value as the explicit base).
  bool have_base = false;
  uint64_t base = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = load_word(block, i, g.base_bytes);
    const int64_t as_imm = sext(w, g.base_bytes);
    if (fits_signed(as_imm, g.delta_bytes)) continue;  // zero-base delta ok
    if (!have_base) {
      have_base = true;
      base = w;
      continue;
    }
    const int64_t delta = sext(w - base, g.base_bytes);
    if (!fits_signed(delta, g.delta_bytes)) return false;
  }
  if (base_out) *base_out = have_base ? base : 0;
  return true;
}

// --- batched-kernel direct word loads --------------------------------------
// The batch kernels read words straight off the block bytes with single
// little-endian loads (no per-byte re-assembly), run the zero scan on 64-bit
// lanes, and probe each candidate once — the winning base is kept so compress
// never walks the block a second time. The scalar members above stay the
// reference implementation the batch kernels are tested against byte for
// byte.

bool direct_applicable(BlockView b) { return b.size() % 8 == 0; }

// Word `i` of width `base_bytes`, identical to load_word() on the raw bytes.
uint64_t word_at(const uint8_t* p, size_t i, size_t base_bytes) {
  switch (base_bytes) {
    case 8: return detail::load_le64(p + i * 8);
    case 4: return detail::load_le32(p + i * 4);
    default: return detail::load_le16(p + i * 2);
  }
}

bool encodable_direct(const uint8_t* p, size_t block_bytes, BdiEncoding enc,
                      uint64_t* base_out) {
  const Geometry g = geometry(enc);
  const size_t n = block_bytes / g.base_bytes;
  bool have_base = false;
  uint64_t base = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = word_at(p, i, g.base_bytes);
    if (fits_signed(sext(w, g.base_bytes), g.delta_bytes)) continue;
    if (!have_base) {
      have_base = true;
      base = w;
      continue;
    }
    if (!fits_signed(sext(w - base, g.base_bytes), g.delta_bytes)) return false;
  }
  *base_out = have_base ? base : 0;
  return true;
}

// best_encoding() on direct loads; additionally returns the winning base so
// the compress kernel does not probe a second time.
BdiEncoding probe_direct(const uint8_t* p, size_t block_bytes, uint64_t* base_out) {
  *base_out = 0;
  const size_t n64 = block_bytes / 8;
  uint64_t acc = 0;
  for (size_t i = 0; i < n64; ++i) acc |= detail::load_le64(p + i * 8);
  if (acc == 0) return BdiEncoding::kZeros;

  const uint64_t first = detail::load_le64(p);
  bool repeated = true;
  for (size_t i = 1; i < n64; ++i)
    if (detail::load_le64(p + i * 8) != first) { repeated = false; break; }
  if (repeated) return BdiEncoding::kRepeat64;

  BdiEncoding best = BdiEncoding::kUncompressed;
  size_t best_bits = block_bytes * 8;
  for (BdiEncoding enc : kOrder) {
    const size_t bits = BdiCompressor::encoding_bits(enc, block_bytes);
    if (bits >= best_bits) continue;
    uint64_t base = 0;
    if (encodable_direct(p, block_bytes, enc, &base)) {
      best = enc;
      best_bits = bits;
      *base_out = base;
    }
  }
  return best;
}

}  // namespace

BdiCompressor::Geometry BdiCompressor::geometry(BdiEncoding enc) {
  switch (enc) {
    case BdiEncoding::kBase8Delta1: return {8, 1};
    case BdiEncoding::kBase8Delta2: return {8, 2};
    case BdiEncoding::kBase8Delta4: return {8, 4};
    case BdiEncoding::kBase4Delta1: return {4, 1};
    case BdiEncoding::kBase4Delta2: return {4, 2};
    case BdiEncoding::kBase2Delta1: return {2, 1};
    default: return {0, 0};
  }
}

const std::array<BdiEncoding, 6>& BdiCompressor::candidate_order() {
  // Ordered by compressed size (ascending for a 128 B block): B8D1 (212b)
  // < B4D1 (324b) < B8D2 (340b) < B4D2 (580b) < B8D4 = B2D1 (596b).
  static constexpr std::array<BdiEncoding, 6> kCandidates = {
      BdiEncoding::kBase8Delta1, BdiEncoding::kBase4Delta1, BdiEncoding::kBase8Delta2,
      BdiEncoding::kBase4Delta2, BdiEncoding::kBase8Delta4, BdiEncoding::kBase2Delta1,
  };
  return kCandidates;
}

size_t BdiCompressor::encoding_bits(BdiEncoding enc, size_t block_bytes) {
  const size_t block_bits = block_bytes * 8;
  switch (enc) {
    case BdiEncoding::kUncompressed: return block_bits;
    case BdiEncoding::kZeros: return kTagBits;
    case BdiEncoding::kRepeat64: return kTagBits + 64;
    default: break;
  }
  const Geometry g = geometry(enc);
  const size_t n = block_bytes / g.base_bytes;
  // tag + explicit base + per-word base-select mask + per-word delta
  return kTagBits + g.base_bytes * 8 + n + n * g.delta_bytes * 8;
}

BdiEncoding BdiCompressor::best_encoding(BlockView block) {
  // All-zero?
  bool all_zero = true;
  for (uint8_t b : block.bytes())
    if (b != 0) { all_zero = false; break; }
  if (all_zero) return BdiEncoding::kZeros;

  // Repeated 64-bit value?
  bool repeated = true;
  const uint64_t first = block.word64(0);
  for (size_t i = 1; i < block.size() / 8; ++i)
    if (block.word64(i) != first) { repeated = false; break; }
  if (repeated) return BdiEncoding::kRepeat64;

  BdiEncoding best = BdiEncoding::kUncompressed;
  size_t best_bits = block.size() * 8;
  for (BdiEncoding enc : kOrder) {
    const size_t bits = encoding_bits(enc, block.size());
    if (bits >= best_bits) continue;
    if (encodable(block, enc, nullptr)) {
      best = enc;
      best_bits = bits;
    }
  }
  return best;
}

CompressedBlock BdiCompressor::compress(BlockView block) const {
  const BdiEncoding enc = best_encoding(block);
  CompressedBlock out;
  BitWriter w;
  w.put(static_cast<uint64_t>(enc), kTagBits);

  switch (enc) {
    case BdiEncoding::kUncompressed: {
      out.is_compressed = false;
      out.bit_size = block.size() * 8;
      out.payload.assign(block.bytes().begin(), block.bytes().end());
      return out;
    }
    case BdiEncoding::kZeros:
      break;  // tag only
    case BdiEncoding::kRepeat64:
      w.put(block.word64(0), 64);
      break;
    default: {
      const Geometry g = geometry(enc);
      uint64_t base = 0;
      const bool ok = encodable(block, enc, &base);
      assert(ok);
      (void)ok;
      const size_t n = block.size() / g.base_bytes;
      w.put(base, static_cast<unsigned>(g.base_bytes * 8));
      // Mask: bit i set => word i uses the explicit base; clear => zero base.
      for (size_t i = 0; i < n; ++i) {
        const uint64_t v = load_word(block, i, g.base_bytes);
        const bool use_zero = fits_signed(sext(v, g.base_bytes), g.delta_bytes);
        w.put_bit(!use_zero);
      }
      for (size_t i = 0; i < n; ++i) {
        const uint64_t v = load_word(block, i, g.base_bytes);
        const bool use_zero = fits_signed(sext(v, g.base_bytes), g.delta_bytes);
        const uint64_t delta = use_zero ? v : v - base;
        w.put(delta, static_cast<unsigned>(g.delta_bytes * 8));
      }
      break;
    }
  }
  out.is_compressed = true;
  out.bit_size = w.bit_size();
  out.payload = w.bytes();
  assert(out.bit_size == encoding_bits(enc, block.size()));
  return out;
}

Block BdiCompressor::decompress(const CompressedBlock& cb, size_t block_bytes) const {
  if (!cb.is_compressed) {
    return Block(std::span<const uint8_t>(cb.payload.data(), block_bytes));
  }
  BitReader r(cb.payload);
  const auto enc = static_cast<BdiEncoding>(r.get(kTagBits));
  Block out(block_bytes);
  switch (enc) {
    case BdiEncoding::kZeros:
      return out;
    case BdiEncoding::kRepeat64: {
      const uint64_t v = r.get(64);
      for (size_t i = 0; i < block_bytes / 8; ++i) out.set_word64(i, v);
      return out;
    }
    case BdiEncoding::kUncompressed:
      assert(false && "uncompressed blocks must have is_compressed=false");
      return out;
    default: {
      const Geometry g = geometry(enc);
      const size_t n = block_bytes / g.base_bytes;
      const uint64_t base = r.get(static_cast<unsigned>(g.base_bytes * 8));
      std::vector<bool> use_base(n);
      for (size_t i = 0; i < n; ++i) use_base[i] = r.get_bit();
      for (size_t i = 0; i < n; ++i) {
        const uint64_t raw = r.get(static_cast<unsigned>(g.delta_bytes * 8));
        const int64_t delta = sext(raw, g.delta_bytes);
        const uint64_t v = use_base[i] ? base + static_cast<uint64_t>(delta)
                                       : static_cast<uint64_t>(delta);
        switch (g.base_bytes) {
          case 2: out.set_symbol(i, static_cast<uint16_t>(v)); break;
          case 4: out.set_word32(i, static_cast<uint32_t>(v)); break;
          case 8: out.set_word64(i, v); break;
          default: assert(false);
        }
      }
      return out;
    }
  }
}

BlockAnalysis BdiCompressor::analyze(BlockView block) const {
  const BdiEncoding enc = best_encoding(block);
  BlockAnalysis a;
  a.is_compressed = enc != BdiEncoding::kUncompressed;
  a.bit_size = encoding_bits(enc, block.size());
  a.lossless_bits = a.bit_size;
  return a;
}

void BdiCompressor::analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const {
  const bool use_avx2 = simd::active_level() == simd::Level::kAvx2;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockView blk = blocks[b];
    if (!direct_applicable(blk)) {
      out[b] = analyze(blk);
      continue;
    }
    BdiEncoding enc;
    if (use_avx2 && simd::bdi_avx2_applicable(blk.size())) {
      enc = simd::bdi_probe_avx2(blk.bytes().data(), blk.size()).enc;
    } else {
      uint64_t base = 0;
      enc = probe_direct(blk.bytes().data(), blk.size(), &base);
    }
    BlockAnalysis a;
    a.is_compressed = enc != BdiEncoding::kUncompressed;
    a.bit_size = encoding_bits(enc, blk.size());
    a.lossless_bits = a.bit_size;
    out[b] = a;
  }
}

void BdiCompressor::compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const {
  // Prefix-sum payload scatter: stage 1 probes every block once (AVX2 when
  // available) and records each payload's exact byte size; the exclusive
  // prefix sum turns those into independent arena offsets; stage 2 emits
  // each block at its own offset through a SpanBitWriter; stage 3 slices the
  // arena into the per-block payloads.
  struct Probe {
    BdiEncoding enc = BdiEncoding::kUncompressed;
    uint64_t base = 0;
    uint64_t mask = 0;       // per-word base-select bits (AVX2 probe only)
    bool have_mask = false;
    bool direct = false;     // false => scalar compress() fallback
  };
  const size_t n = blocks.size();
  std::vector<Probe> probes(n);
  std::vector<size_t> sizes(n), offsets(n);
  const bool use_avx2 = simd::active_level() == simd::Level::kAvx2;

  for (size_t b = 0; b < n; ++b) {
    const BlockView blk = blocks[b];
    Probe& pr = probes[b];
    if (!direct_applicable(blk)) {
      sizes[b] = 0;  // handled by the scalar fallback in stage 2
      continue;
    }
    pr.direct = true;
    const uint8_t* p = blk.bytes().data();
    if (use_avx2 && simd::bdi_avx2_applicable(blk.size())) {
      const simd::BdiProbe sp = simd::bdi_probe_avx2(p, blk.size());
      pr.enc = sp.enc;
      pr.base = sp.base;
      pr.mask = sp.use_base_mask;
      pr.have_mask = true;
    } else {
      pr.enc = probe_direct(p, blk.size(), &pr.base);
    }
    sizes[b] = pr.enc == BdiEncoding::kUncompressed
                   ? blk.size()
                   : (encoding_bits(pr.enc, blk.size()) + 7) / 8;
  }

  const size_t total = detail::exclusive_prefix_sum(sizes.data(), n, offsets.data());
  std::vector<uint8_t> arena(total);
  detail::SpanBitWriter w;

  for (size_t b = 0; b < n; ++b) {
    const BlockView blk = blocks[b];
    const Probe& pr = probes[b];
    if (!pr.direct) {
      out[b] = compress(blk);
      continue;
    }
    const uint8_t* p = blk.bytes().data();
    if (pr.enc == BdiEncoding::kUncompressed) {
      std::memcpy(arena.data() + offsets[b], p, blk.size());
      continue;
    }
    w.reset(arena.data() + offsets[b]);
    w.put(static_cast<uint64_t>(pr.enc), kTagBits);
    switch (pr.enc) {
      case BdiEncoding::kZeros:
        break;  // tag only
      case BdiEncoding::kRepeat64:
        w.put(detail::load_le64(p), 64);
        break;
      default: {
        const Geometry g = geometry(pr.enc);
        const size_t nw = blk.size() / g.base_bytes;
        w.put(pr.base, static_cast<unsigned>(g.base_bytes * 8));
        if (pr.have_mask) {
          // The probe already decided zero-base vs explicit-base per word.
          for (size_t i = 0; i < nw; ++i) w.put_bit((pr.mask >> i) & 1);
          for (size_t i = 0; i < nw; ++i) {
            const uint64_t v = word_at(p, i, g.base_bytes);
            const bool use_base = (pr.mask >> i) & 1;
            w.put(use_base ? v - pr.base : v, static_cast<unsigned>(g.delta_bytes * 8));
          }
        } else {
          for (size_t i = 0; i < nw; ++i) {
            const uint64_t v = word_at(p, i, g.base_bytes);
            w.put_bit(!fits_signed(sext(v, g.base_bytes), g.delta_bytes));
          }
          for (size_t i = 0; i < nw; ++i) {
            const uint64_t v = word_at(p, i, g.base_bytes);
            const bool use_zero = fits_signed(sext(v, g.base_bytes), g.delta_bytes);
            w.put(use_zero ? v : v - pr.base, static_cast<unsigned>(g.delta_bytes * 8));
          }
        }
        break;
      }
    }
    assert(w.bit_size() == encoding_bits(pr.enc, blk.size()));
    const size_t written = w.finish();
    assert(written == sizes[b]);
    (void)written;
  }

  for (size_t b = 0; b < n; ++b) {
    if (!probes[b].direct) continue;  // already filled by the fallback
    CompressedBlock cb;
    const uint8_t* slice = arena.data() + offsets[b];
    cb.is_compressed = probes[b].enc != BdiEncoding::kUncompressed;
    cb.bit_size = cb.is_compressed ? encoding_bits(probes[b].enc, blocks[b].size())
                                   : blocks[b].size() * 8;
    cb.payload.assign(slice, slice + sizes[b]);
    out[b] = std::move(cb);
  }
}

namespace {
const CodecRegistrar bdi_registrar({
    .name = "BDI",
    .scheme = "base-delta-immediate",
    .paper = "Pekhimenko et al., PACT 2012 (paper Fig. 1 baseline)",
    .order = 0,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 2,
    .decompress_latency = 1,
    .make = [](const CodecOptions&) -> std::shared_ptr<const Compressor> {
      return std::make_shared<BdiCompressor>();
    },
    .make_block_codec = nullptr,
});
}  // namespace

}  // namespace slc

// AVX2 implementations of the hot batch-kernel loops (see simd_kernels.h).
//
// This is the only translation unit compiled with -mavx2; everything it
// defines is reached exclusively through simd::active_level() dispatch, so
// the rest of the build stays baseline-ISA. Each kernel mirrors its scalar
// twin exactly — same candidate order, same priority chains, same arithmetic
// — and the equivalence is pinned by tests/test_batch_kernels.cpp across
// both dispatch settings.
//
// Shared idiom (the FPDC warp-kernel shape): wide probes classify or
// range-check whole tiles per instruction, the per-block/per-word outcomes
// come back as bitmasks or id lanes, and the serial remainder (bit emission,
// zero-run coalescing) consumes those precomputed results instead of
// re-deriving them word by word.
//
// Range-check trick used throughout: a two's-complement value v (lane width
// W bits) fits a signed D-byte field iff (v + 2^(8D-1)) mod 2^W < 2^(8D),
// i.e. ((v + lim) & ~(2*lim - 1)) == 0 with lim = 2^(8D-1) — one add, one
// and, one compare per tile, valid whenever D < W/8 (true for every BDI
// candidate and FPC class).

#include "compress/simd_kernels.h"

#if SLC_HAVE_AVX2_KERNELS

#include <immintrin.h>

#include <cassert>
#include <cstring>

#include "compress/fpc.h"

namespace slc::simd {

namespace {

// Up to four 256-bit tiles: one 32..128 B block staged in registers, loaded
// once (unaligned loads — BlockViews carry no alignment guarantee) and
// reused by the zero/repeat scan and every candidate probe.
struct Tiles {
  __m256i v[4];
  size_t n;
};

Tiles load_tiles(const uint8_t* p, size_t nbytes) {
  Tiles t;
  t.n = nbytes / 32;
  assert(t.n >= 1 && t.n <= 4);
  for (size_t i = 0; i < t.n; ++i)
    t.v[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32 * i));
  return t;
}

// --- per-lane signed-range checks, one bit per word -------------------------

uint32_t fit_bits64(__m256i v, int64_t lim) {
  const __m256i t = _mm256_and_si256(_mm256_add_epi64(v, _mm256_set1_epi64x(lim)),
                                     _mm256_set1_epi64x(~(2 * lim - 1)));
  const __m256i eq = _mm256_cmpeq_epi64(t, _mm256_setzero_si256());
  return static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

uint32_t fit_bits32(__m256i v, int32_t lim) {
  const __m256i t = _mm256_and_si256(_mm256_add_epi32(v, _mm256_set1_epi32(lim)),
                                     _mm256_set1_epi32(~(2 * lim - 1)));
  const __m256i eq = _mm256_cmpeq_epi32(t, _mm256_setzero_si256());
  return static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

uint32_t fit_bits16(__m256i v, int16_t lim) {
  const __m256i t =
      _mm256_and_si256(_mm256_add_epi16(v, _mm256_set1_epi16(lim)),
                       _mm256_set1_epi16(static_cast<int16_t>(~(2 * lim - 1))));
  const __m256i eq = _mm256_cmpeq_epi16(t, _mm256_setzero_si256());
  // 16-bit lanes have no direct movemask: pack the 0xFFFF/0x0000 lanes to
  // bytes (signed saturation keeps the sign bit), undo the cross-lane
  // interleave, and take the byte movemask.
  const __m256i packed = _mm256_packs_epi16(eq, _mm256_setzero_si256());
  const __m256i ordered = _mm256_permute4x64_epi64(packed, 0xD8);
  return static_cast<uint32_t>(_mm256_movemask_epi8(ordered)) & 0xFFFFu;
}

// Word `i` of width `base_bytes`, zero-extended (x86 loads are already
// little-endian, matching the scalar word_at()).
uint64_t word_at(const uint8_t* p, size_t i, size_t base_bytes) {
  uint64_t v = 0;
  std::memcpy(&v, p + i * base_bytes, base_bytes);
  return v;
}

// Lane-width-specific tile ops, so the candidate probe below is stamped out
// once per base width with no per-tile dispatch.
template <size_t B> struct LaneOps;
template <> struct LaneOps<8> {
  static constexpr unsigned kWordsPerTile = 4;
  static __m256i bcast(uint64_t v) { return _mm256_set1_epi64x(static_cast<int64_t>(v)); }
  static __m256i sub(__m256i a, __m256i b) { return _mm256_sub_epi64(a, b); }
  static uint32_t fit(__m256i v, int64_t lim) { return fit_bits64(v, lim); }
};
template <> struct LaneOps<4> {
  static constexpr unsigned kWordsPerTile = 8;
  static __m256i bcast(uint64_t v) { return _mm256_set1_epi32(static_cast<int32_t>(v)); }
  static __m256i sub(__m256i a, __m256i b) { return _mm256_sub_epi32(a, b); }
  static uint32_t fit(__m256i v, int64_t lim) {
    return fit_bits32(v, static_cast<int32_t>(lim));
  }
};
template <> struct LaneOps<2> {
  static constexpr unsigned kWordsPerTile = 16;
  static __m256i bcast(uint64_t v) { return _mm256_set1_epi16(static_cast<int16_t>(v)); }
  static __m256i sub(__m256i a, __m256i b) { return _mm256_sub_epi16(a, b); }
  static uint32_t fit(__m256i v, int64_t lim) {
    return fit_bits16(v, static_cast<int16_t>(lim));
  }
};

// encodable_direct() on tiles: same base selection (first word that does not
// fit as an immediate), same per-word checks. Streams tile by tile so an
// unencodable candidate fails at its first bad tile — the common case for
// incompressible data, where the scalar probe bails after a word or two and
// a blockwide mask pass would be pure overhead. The base is always legal to
// pick up mid-stream: every word before the first non-immediate one fit as
// an immediate, so earlier tiles never needed the delta check.
template <size_t B>
bool encodable_avx2(const Tiles& t, const uint8_t* p, int64_t lim, uint64_t* base_out,
                    uint64_t* mask_out) {
  using Ops = LaneOps<B>;
  constexpr unsigned wpt = Ops::kWordsPerTile;
  constexpr uint32_t all = (uint32_t{1} << wpt) - 1;
  uint64_t mask = 0;
  bool have_base = false;
  uint64_t base = 0;
  __m256i vbase = _mm256_setzero_si256();
  for (size_t ti = 0; ti < t.n; ++ti) {
    const uint32_t imm = Ops::fit(t.v[ti], lim) & all;
    const uint32_t non_imm = ~imm & all;
    if (non_imm != 0) {
      if (!have_base) {
        have_base = true;
        base = word_at(p, ti * wpt + static_cast<unsigned>(__builtin_ctz(non_imm)), B);
        vbase = Ops::bcast(base);
      }
      const uint32_t dfit = Ops::fit(Ops::sub(t.v[ti], vbase), lim);
      if (((imm | dfit) & all) != all) return false;
    }
    mask |= static_cast<uint64_t>(non_imm) << (ti * wpt);
  }
  *base_out = have_base ? base : 0;
  *mask_out = mask;  // exactly the !use_zero bits the emit loop writes
  return true;
}

bool encodable_avx2(const Tiles& t, const uint8_t* p, BdiCompressor::Geometry g,
                    uint64_t* base_out, uint64_t* mask_out) {
  const int64_t lim = int64_t{1} << (g.delta_bytes * 8 - 1);
  switch (g.base_bytes) {
    case 8: return encodable_avx2<8>(t, p, lim, base_out, mask_out);
    case 4: return encodable_avx2<4>(t, p, lim, base_out, mask_out);
    default: return encodable_avx2<2>(t, p, lim, base_out, mask_out);
  }
}

}  // namespace

BdiProbe bdi_probe_avx2(const uint8_t* p, size_t nbytes) {
  assert(bdi_avx2_applicable(nbytes));
  const Tiles t = load_tiles(p, nbytes);

  BdiProbe out;
  __m256i acc = t.v[0];
  for (size_t i = 1; i < t.n; ++i) acc = _mm256_or_si256(acc, t.v[i]);
  if (_mm256_testz_si256(acc, acc)) {
    out.enc = BdiEncoding::kZeros;
    return out;
  }

  uint64_t first = 0;
  std::memcpy(&first, p, 8);
  const __m256i bcast = _mm256_set1_epi64x(static_cast<int64_t>(first));
  bool repeated = true;
  for (size_t i = 0; i < t.n && repeated; ++i) {
    const __m256i eq = _mm256_cmpeq_epi64(t.v[i], bcast);
    repeated = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) == 0xF;
  }
  if (repeated) {
    out.enc = BdiEncoding::kRepeat64;
    return out;
  }

  size_t best_bits = nbytes * 8;
  for (const BdiEncoding enc : BdiCompressor::candidate_order()) {
    const size_t bits = BdiCompressor::encoding_bits(enc, nbytes);
    if (bits >= best_bits) continue;
    uint64_t base = 0, mask = 0;
    if (encodable_avx2(t, p, BdiCompressor::geometry(enc), &base, &mask)) {
      out.enc = enc;
      out.base = base;
      out.use_base_mask = mask;
      best_bits = bits;
    }
  }
  return out;
}

namespace {

// FpcPattern per 32-bit lane, priority-selected exactly like the scalar
// classify() chain (applied in reverse so the highest-priority class wins).
__m256i fpc_classify_vec(__m256i v) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i ones32 = _mm256_set1_epi32(-1);

  const auto fits = [&](int32_t lim) {
    const __m256i t = _mm256_and_si256(_mm256_add_epi32(v, _mm256_set1_epi32(lim)),
                                       _mm256_set1_epi32(~(2 * lim - 1)));
    return _mm256_cmpeq_epi32(t, zero);
  };
  const __m256i is_zero = _mm256_cmpeq_epi32(v, zero);
  const __m256i se4 = fits(8);
  const __m256i se8 = fits(128);
  const __m256i se16 = fits(32768);
  const __m256i half =
      _mm256_cmpeq_epi32(_mm256_and_si256(v, _mm256_set1_epi32(0xFFFF)), zero);
  // Both halfwords 8-bit sign-extendable: 16-bit range check, then require
  // both 16-bit lanes of each word to pass.
  __m256i two = _mm256_and_si256(_mm256_add_epi16(v, _mm256_set1_epi16(128)),
                                 _mm256_set1_epi16(static_cast<int16_t>(0xFF00)));
  two = _mm256_cmpeq_epi16(two, zero);
  two = _mm256_cmpeq_epi32(two, ones32);
  // All four bytes equal: compare against the byte-rotated word.
  const __m256i rot = _mm256_setr_epi8(1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12,
                                       1, 2, 3, 0, 5, 6, 7, 4, 9, 10, 11, 8, 13, 14, 15, 12);
  __m256i rep = _mm256_cmpeq_epi8(v, _mm256_shuffle_epi8(v, rot));
  rep = _mm256_cmpeq_epi32(rep, ones32);

  __m256i id = _mm256_set1_epi32(static_cast<int>(FpcPattern::kUncompressed));
  const auto sel = [&](__m256i mask, FpcPattern p) {
    id = _mm256_blendv_epi8(id, _mm256_set1_epi32(static_cast<int>(p)), mask);
  };
  sel(rep, FpcPattern::kRepeatedBytes);
  sel(two, FpcPattern::kTwoHalfwordsSE);
  sel(half, FpcPattern::kHalfwordPadded);
  sel(se16, FpcPattern::kSignExt16);
  sel(se8, FpcPattern::kSignExt8);
  sel(se4, FpcPattern::kSignExt4);
  sel(is_zero, FpcPattern::kZeroRun);  // zero words; runs coalesce later
  return id;
}

}  // namespace

void fpc_classify_avx2(const uint8_t* p, size_t n_words, uint8_t* cls) {
  size_t i = 0;
  for (; i + 32 <= n_words; i += 32) {
    __m256i id[4];
    for (int k = 0; k < 4; ++k)
      id[k] = fpc_classify_vec(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 4 * (i + 8 * k))));
    // 4x8 dword ids -> 32 bytes in word order (packs interleave 128-bit
    // lanes; the final dword permute restores it).
    const __m256i ab = _mm256_packus_epi32(id[0], id[1]);
    const __m256i cd = _mm256_packus_epi32(id[2], id[3]);
    __m256i bytes = _mm256_packus_epi16(ab, cd);
    bytes = _mm256_permutevar8x32_epi32(bytes, _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cls + i), bytes);
  }
  for (; i < n_words; ++i) {
    uint32_t w;
    std::memcpy(&w, p + 4 * i, 4);
    cls[i] = w == 0 ? static_cast<uint8_t>(FpcPattern::kZeroRun)
                    : static_cast<uint8_t>(FpcCompressor::classify(w));
  }
}

void e2mc_code_lengths_avx2(const uint8_t* p, size_t n_sym, const uint32_t* bits_table,
                            uint16_t* lens) {
  size_t i = 0;
  for (; i + 8 <= n_sym; i += 8) {
    const __m128i syms = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 2 * i));
    const __m256i idx = _mm256_cvtepu16_epi32(syms);
    const __m256i bits =
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(bits_table), idx, 4);
    const __m128i packed = _mm_packus_epi32(_mm256_castsi256_si128(bits),
                                            _mm256_extracti128_si256(bits, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lens + i), packed);
  }
  for (; i < n_sym; ++i) {
    uint16_t s;
    std::memcpy(&s, p + 2 * i, 2);
    lens[i] = static_cast<uint16_t>(bits_table[s]);
  }
}

}  // namespace slc::simd

#endif  // SLC_HAVE_AVX2_KERNELS

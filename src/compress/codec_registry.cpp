#include "compress/codec_registry.h"

#include <algorithm>
#include <stdexcept>

#include "compress/block_codec.h"

namespace slc {

CodecRegistry& CodecRegistry::instance() {
  static CodecRegistry reg;
  return reg;
}

void CodecRegistry::add(CodecInfo info) {
  if (info.name.empty()) throw std::logic_error("codec registration with empty name");
  auto [it, inserted] = by_name_.emplace(info.name, std::move(info));
  if (!inserted) throw std::logic_error("duplicate codec registration: " + it->first);
}

const CodecInfo* CodecRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

const CodecInfo& CodecRegistry::at(std::string_view name) const {
  if (const CodecInfo* info = find(name)) return *info;
  std::string known;
  for (const std::string& n : names()) known += (known.empty() ? "" : ", ") + n;
  throw std::out_of_range("unknown codec \"" + std::string(name) + "\" (known: " + known + ")");
}

std::shared_ptr<const Compressor> CodecRegistry::create(std::string_view name,
                                                        const CodecOptions& opts) const {
  const CodecInfo& info = at(name);
  if (!info.make)
    throw std::invalid_argument(info.name + " has no Compressor form (BlockCodec only)");
  if (info.needs_training && opts.training_data.empty() && !opts.trained_e2mc)
    throw std::invalid_argument(info.name +
                                " needs CodecOptions::training_data (or a trained_e2mc)");
  return info.make(opts);
}

std::shared_ptr<const BlockCodec> CodecRegistry::create_block_codec(
    std::string_view name, const CodecOptions& opts) const {
  const CodecInfo& info = at(name);
  if (info.make_block_codec) return info.make_block_codec(opts);
  return std::make_shared<LosslessBlockCodec>(create(name, opts), opts.mag_bytes);
}

std::vector<const CodecInfo*> CodecRegistry::entries() const {
  std::vector<const CodecInfo*> out;
  out.reserve(by_name_.size());
  for (const auto& [_, info] : by_name_) out.push_back(&info);
  std::stable_sort(out.begin(), out.end(), [](const CodecInfo* a, const CodecInfo* b) {
    return a->order != b->order ? a->order < b->order : a->name < b->name;
  });
  return out;
}

std::vector<std::string> CodecRegistry::names() const {
  std::vector<std::string> out;
  for (const CodecInfo* info : entries()) out.push_back(info->name);
  return out;
}

std::vector<std::string> CodecRegistry::lossless_names() const {
  std::vector<std::string> out;
  for (const CodecInfo* info : entries())
    if (info->make && !info->lossy) out.push_back(info->name);
  return out;
}

std::vector<std::string> CodecRegistry::lossy_names() const {
  std::vector<std::string> out;
  for (const CodecInfo* info : entries())
    if (info->make && info->lossy) out.push_back(info->name);
  return out;
}

CodecRegistrar::CodecRegistrar(CodecInfo info) {
  CodecRegistry::instance().add(std::move(info));
}

}  // namespace slc

#include "compress/block_codec.h"

#include "compress/codec_registry.h"

namespace slc {

BlockCodecResult RawBlockCodec::process(BlockView block, bool, size_t) const {
  BlockCodecResult r;
  r.bursts = max_bursts(block.size());
  r.lossless_bits = block.size() * 8;
  r.final_bits = block.size() * 8;
  r.stored_uncompressed = true;
  r.decoded = Block(block.bytes());
  return r;
}

BlockCodecResult LosslessBlockCodec::process(BlockView block, bool, size_t) const {
  BlockCodecResult r;
  // Size-only path: no payload is needed for a lossless codec (the roundtrip
  // identity is enforced separately by the unit tests).
  const BlockAnalysis a = comp_->analyze(block);
  r.lossless_bits = a.bit_size;
  r.final_bits = a.bit_size;
  r.stored_uncompressed = !a.is_compressed || a.bit_size >= block.size() * 8;
  r.bursts = bursts_for_bits(a.bit_size, mag_, block.size());
  r.decoded = Block(block.bytes());
  return r;
}

namespace {
const CodecRegistrar raw_registrar({
    .name = "RAW",
    .scheme = "uncompressed baseline",
    .paper = "baseline configuration (Sec. IV)",
    .order = -1,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 0,
    .decompress_latency = 0,
    .make = nullptr,  // RAW has no Compressor form
    .make_block_codec =
        [](const CodecOptions& opts) -> std::shared_ptr<const BlockCodec> {
      return std::make_shared<RawBlockCodec>(opts.mag_bytes);
    },
});
}  // namespace

}  // namespace slc

#include "compress/block_codec.h"

#include "compress/codec_registry.h"

namespace slc {

void BlockCodec::process_batch(std::span<const BlockView> blocks, bool safe_to_approx,
                               size_t threshold_bytes, BlockCodecResult* out) const {
  for (size_t i = 0; i < blocks.size(); ++i)
    out[i] = process(blocks[i], safe_to_approx, threshold_bytes);
}

namespace {

/// The one fixed-cost RAW result, shared by the scalar and batch paths so
/// the two cannot drift.
BlockCodecResult raw_result(BlockView block, size_t mag_bytes) {
  BlockCodecResult r;
  r.bursts = block.size() / mag_bytes;
  r.lossless_bits = block.size() * 8;
  r.final_bits = block.size() * 8;
  r.stored_uncompressed = true;
  r.decoded = Block(block.bytes());
  return r;
}

}  // namespace

BlockCodecResult RawBlockCodec::process(BlockView block, bool, size_t) const {
  return raw_result(block, mag_bytes());
}

void RawBlockCodec::process_batch(std::span<const BlockView> blocks, bool, size_t,
                                  BlockCodecResult* out) const {
  // No per-block decision to make: fill the fixed-cost results without the
  // virtual dispatch per block.
  for (size_t i = 0; i < blocks.size(); ++i) out[i] = raw_result(blocks[i], mag_bytes());
}

namespace {

/// Maps one lossless size analysis onto the policy result (shared by the
/// scalar and batch paths so the two cannot drift).
BlockCodecResult lossless_result(const BlockAnalysis& a, BlockView block, size_t mag) {
  BlockCodecResult r;
  r.lossless_bits = a.bit_size;
  r.final_bits = a.bit_size;
  r.stored_uncompressed = !a.is_compressed || a.bit_size >= block.size() * 8;
  r.bursts = bursts_for_bits(a.bit_size, mag, block.size());
  r.decoded = Block(block.bytes());
  return r;
}

}  // namespace

BlockCodecResult LosslessBlockCodec::process(BlockView block, bool, size_t) const {
  // Size-only path: no payload is needed for a lossless codec (the roundtrip
  // identity is enforced separately by the unit tests).
  return lossless_result(comp_->analyze(block), block, mag_);
}

void LosslessBlockCodec::process_batch(std::span<const BlockView> blocks, bool, size_t,
                                       BlockCodecResult* out) const {
  // One batched size probe for the whole span, then the per-block mapping.
  std::vector<BlockAnalysis> analyses(blocks.size());
  comp_->analyze_batch(blocks, analyses.data());
  for (size_t i = 0; i < blocks.size(); ++i)
    out[i] = lossless_result(analyses[i], blocks[i], mag_);
}

namespace {
const CodecRegistrar raw_registrar({
    .name = "RAW",
    .scheme = "uncompressed baseline",
    .paper = "baseline configuration (Sec. IV)",
    .order = -1,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 0,
    .decompress_latency = 0,
    .make = nullptr,  // RAW has no Compressor form
    .make_block_codec =
        [](const CodecOptions& opts) -> std::shared_ptr<const BlockCodec> {
      return std::make_shared<RawBlockCodec>(opts.mag_bytes);
    },
});
}  // namespace

}  // namespace slc

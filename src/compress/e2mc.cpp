#include "compress/e2mc.h"

#include <atomic>
#include <cassert>

#include <cstring>

#include "common/bitstream.h"
#include "compress/batch_writer.h"
#include "compress/codec_registry.h"
#include "compress/simd_dispatch.h"
#include "compress/simd_kernels.h"

namespace slc {

namespace {
// Stack staging bound for per-block code lengths (256 symbols = 512 B
// blocks), matching the word-staging bound of the other schemes.
constexpr size_t kMaxStagedSymbols = 2 * detail::kMaxStagedWords;
}  // namespace

namespace {
std::atomic<uint64_t> g_next_model_id{1};
}  // namespace

E2mcCompressor::E2mcCompressor(HuffmanCode code, E2mcConfig cfg)
    : code_(std::move(code)),
      cfg_(cfg),
      model_id_(g_next_model_id.fetch_add(1, std::memory_order_relaxed)) {
  assert(cfg_.num_ways >= 1 && cfg_.num_ways <= 8);
}

std::shared_ptr<E2mcCompressor> E2mcCompressor::train(std::span<const uint8_t> sample,
                                                      E2mcConfig cfg) {
  SymbolFrequencies freqs;
  freqs.add_sample(sample, cfg.sample_fraction);
  return std::make_shared<E2mcCompressor>(
      HuffmanCode::build(freqs, cfg.table_entries, cfg.max_code_len), cfg);
}

unsigned E2mcCompressor::pdp_bits(size_t block_bytes) {
  unsigned n = 0;
  while ((size_t{1} << n) < block_bytes) ++n;
  return n;
}

std::vector<uint16_t> E2mcCompressor::code_lengths(BlockView block) const {
  const size_t n = block.num_symbols();
  std::vector<uint16_t> lens(n);
  for (size_t i = 0; i < n; ++i)
    lens[i] = static_cast<uint16_t>(code_.encoded_bits(block.symbol(i)));
  return lens;
}

void E2mcCompressor::code_lengths_batch(std::span<const BlockView> blocks,
                                        std::vector<uint16_t>& lens,
                                        std::vector<size_t>& offsets) const {
  size_t total = 0;
  offsets.resize(blocks.size() + 1);
  for (size_t b = 0; b < blocks.size(); ++b) {
    offsets[b] = total;
    total += blocks[b].num_symbols();
  }
  offsets[blocks.size()] = total;
  lens.resize(total);
  const bool use_avx2 = simd::active_level() == simd::Level::kAvx2;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const uint8_t* p = blocks[b].bytes().data();
    uint16_t* dst = lens.data() + offsets[b];
    const size_t n = blocks[b].num_symbols();
    if (use_avx2) {
      simd::e2mc_code_lengths_avx2(p, n, code_.encoded_bits_table(), dst);
    } else {
      for (size_t i = 0; i < n; ++i)
        dst[i] = static_cast<uint16_t>(code_.encoded_bits(detail::load_le16(p + 2 * i)));
    }
  }
}

WayLayout E2mcCompressor::layout(std::span<const uint16_t> code_lens, size_t header_bits,
                                 size_t skip_start, size_t skip_count) const {
  WayLayout lo;
  lo.header_bits = header_bits;
  const size_t n = code_lens.size();
  const size_t per_way = n / cfg_.num_ways;
  for (size_t i = 0; i < n; ++i) {
    if (i >= skip_start && i < skip_start + skip_count) continue;
    lo.way_bits[i / per_way] += code_lens[i];
  }
  size_t total = (header_bits + 7) / 8;  // header byte-padded
  for (unsigned w = 0; w < cfg_.num_ways; ++w) {
    lo.way_bytes[w] = (lo.way_bits[w] + 7) / 8;
    total += lo.way_bytes[w];
  }
  lo.total_bits = total * 8;
  return lo;
}

BlockAnalysis E2mcCompressor::analyze(BlockView block) const {
  const auto lens = code_lengths(block);
  const WayLayout lo = layout(lens, header_bits(block.size()));
  const size_t raw_bits = block.size() * 8;
  BlockAnalysis a;
  a.is_compressed = lo.total_bits < raw_bits;
  a.bit_size = a.is_compressed ? lo.total_bits : raw_bits;
  a.lossless_bits = a.bit_size;
  return a;
}

template <class Writer>
void E2mcCompressor::emit_ways(BlockView block, const WayLayout& lo, Writer& w) const {
  const unsigned pdp = pdp_bits(block.size());
  const size_t per_way = block.num_symbols() / cfg_.num_ways;
  // Header: pdp_i = byte offset of way i (i = 1..num_ways-1) within payload.
  const size_t header_bytes = (header_bits(block.size()) + 7) / 8;
  size_t off = header_bytes;
  for (unsigned i = 1; i < cfg_.num_ways; ++i) {
    off += lo.way_bytes[i - 1];
    w.put(off, pdp);
  }
  // Pad header to a byte boundary.
  const size_t pad = header_bytes * 8 - w.bit_size();
  if (pad) w.put(0, static_cast<unsigned>(pad));

  for (unsigned way = 0; way < cfg_.num_ways; ++way) {
    const size_t start_bit = w.bit_size();
    for (size_t s = way * per_way; s < (way + 1) * per_way; ++s) {
      const uint16_t sym = block.symbol(s);
      if (code_.in_table(sym)) {
        w.put(code_.codeword(sym), code_.codeword_len(sym));
      } else {
        w.put(code_.esc_code(), code_.esc_len());
        w.put(sym, kSymbolBits);
      }
    }
    // Byte-align the way.
    const size_t used = w.bit_size() - start_bit;
    assert(used == lo.way_bits[way]);
    (void)used;
    const size_t aligned = lo.way_bytes[way] * 8;
    if (aligned > used) w.put(0, static_cast<unsigned>(aligned - used));
  }
}

CompressedBlock E2mcCompressor::compress(BlockView block) const {
  const auto lens = code_lengths(block);
  const WayLayout lo = layout(lens, header_bits(block.size()));
  const size_t raw_bits = block.size() * 8;

  CompressedBlock out;
  if (lo.total_bits >= raw_bits) {
    out.is_compressed = false;
    out.bit_size = raw_bits;
    out.payload.assign(block.bytes().begin(), block.bytes().end());
    return out;
  }

  BitWriter w;
  emit_ways(block, lo, w);
  out.is_compressed = true;
  out.bit_size = w.bit_size();
  assert(out.bit_size == lo.total_bits);
  out.payload = w.bytes();
  return out;
}

void E2mcCompressor::analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const {
  const bool use_avx2 = simd::active_level() == simd::Level::kAvx2;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const BlockView blk = blocks[b];
    const size_t n = blk.num_symbols();
    const size_t per_way = n / cfg_.num_ways;
    if (per_way == 0 || n % cfg_.num_ways != 0) {
      out[b] = analyze(blk);  // degenerate geometry: scalar reference path
      continue;
    }
    // layout() without the per-block lengths vector: sum encoded bits per
    // way directly off the code-length table (8-lane gathers when AVX2 is
    // active; identical values either way).
    const uint8_t* p = blk.bytes().data();
    size_t total = (header_bits(blk.size()) + 7) / 8;
    if (use_avx2 && n <= kMaxStagedSymbols) {
      uint16_t lens[kMaxStagedSymbols];
      simd::e2mc_code_lengths_avx2(p, n, code_.encoded_bits_table(), lens);
      for (unsigned way = 0; way < cfg_.num_ways; ++way) {
        size_t way_bits = 0;
        for (size_t s = way * per_way; s < (way + 1) * per_way; ++s) way_bits += lens[s];
        total += (way_bits + 7) / 8;
      }
    } else {
      size_t s = 0;
      for (unsigned way = 0; way < cfg_.num_ways; ++way) {
        size_t way_bits = 0;
        for (size_t e = s + per_way; s < e; ++s)
          way_bits += code_.encoded_bits(detail::load_le16(p + 2 * s));
        total += (way_bits + 7) / 8;
      }
    }
    const size_t total_bits = total * 8;
    const size_t raw_bits = blk.size() * 8;
    BlockAnalysis a;
    a.is_compressed = total_bits < raw_bits;
    a.bit_size = a.is_compressed ? total_bits : raw_bits;
    a.lossless_bits = a.bit_size;
    out[b] = a;
  }
}

void E2mcCompressor::compress_batch(std::span<const BlockView> blocks,
                                    CompressedBlock* out) const {
  // Prefix-sum payload scatter: stage 1 runs the code-length probe (8-lane
  // gathers when AVX2 is active) and the way layout per block, giving each
  // payload's exact byte size; the exclusive prefix sum turns those into
  // independent arena offsets; stage 2 emits via emit_ways at each offset;
  // stage 3 slices the arena into the per-block payloads.
  const size_t n_blocks = blocks.size();
  std::vector<uint16_t> lens;  // scratch, reused across the batch
  std::vector<WayLayout> layouts(n_blocks);
  std::vector<size_t> sizes(n_blocks, 0), offsets(n_blocks, 0);
  std::vector<uint8_t> direct(n_blocks, 0);
  const bool use_avx2 = simd::active_level() == simd::Level::kAvx2;

  for (size_t b = 0; b < n_blocks; ++b) {
    const BlockView blk = blocks[b];
    const size_t n = blk.num_symbols();
    if (n == 0 || n % cfg_.num_ways != 0) continue;  // stage-2 scalar fallback
    direct[b] = 1;
    lens.resize(n);
    const uint8_t* p = blk.bytes().data();
    if (use_avx2) {
      simd::e2mc_code_lengths_avx2(p, n, code_.encoded_bits_table(), lens.data());
    } else {
      for (size_t i = 0; i < n; ++i)
        lens[i] = static_cast<uint16_t>(code_.encoded_bits(detail::load_le16(p + 2 * i)));
    }
    layouts[b] = layout(lens, header_bits(blk.size()));
    sizes[b] =
        layouts[b].total_bits < blk.size() * 8 ? layouts[b].total_bits / 8 : blk.size();
  }

  const size_t total = detail::exclusive_prefix_sum(sizes.data(), n_blocks, offsets.data());
  std::vector<uint8_t> arena(total);
  detail::SpanBitWriter w;

  for (size_t b = 0; b < n_blocks; ++b) {
    const BlockView blk = blocks[b];
    if (!direct[b]) {
      out[b] = compress(blk);  // degenerate geometry: scalar reference path
      continue;
    }
    if (layouts[b].total_bits >= blk.size() * 8) {  // stored raw
      std::memcpy(arena.data() + offsets[b], blk.bytes().data(), blk.size());
      continue;
    }
    w.reset(arena.data() + offsets[b]);
    emit_ways(blk, layouts[b], w);
    assert(w.bit_size() == layouts[b].total_bits);
    const size_t written = w.finish();
    assert(written == sizes[b]);
    (void)written;
  }

  for (size_t b = 0; b < n_blocks; ++b) {
    if (!direct[b]) continue;
    const BlockView blk = blocks[b];
    CompressedBlock cb;
    const uint8_t* slice = arena.data() + offsets[b];
    cb.is_compressed = layouts[b].total_bits < blk.size() * 8;
    cb.bit_size = cb.is_compressed ? layouts[b].total_bits : blk.size() * 8;
    cb.payload.assign(slice, slice + sizes[b]);
    out[b] = std::move(cb);
  }
}

Block E2mcCompressor::decompress(const CompressedBlock& cb, size_t block_bytes) const {
  if (!cb.is_compressed) {
    return Block(std::span<const uint8_t>(cb.payload.data(), block_bytes));
  }
  const unsigned pdp = pdp_bits(block_bytes);
  const size_t n_sym = block_bytes * 8 / kSymbolBits;
  const size_t per_way = n_sym / cfg_.num_ways;
  const size_t header_bytes = (header_bits(block_bytes) + 7) / 8;

  BitReader hdr(cb.payload);
  std::array<size_t, 8> way_off{};
  way_off[0] = header_bytes;
  for (unsigned i = 1; i < cfg_.num_ways; ++i) way_off[i] = hdr.get(pdp);

  Block out(block_bytes);
  for (unsigned way = 0; way < cfg_.num_ways; ++way) {
    BitReader r(cb.payload);
    r.seek(way_off[way] * 8);
    for (size_t s = way * per_way; s < (way + 1) * per_way; ++s) {
      const auto step = code_.decode(static_cast<uint16_t>(r.peek(16)));
      assert(step.bits > 0 && "invalid codeword");
      r.skip(step.bits);
      uint16_t sym = step.symbol;
      if (step.is_escape) sym = static_cast<uint16_t>(r.get(kSymbolBits));
      out.set_symbol(s, sym);
    }
  }
  return out;
}

namespace {
const CodecRegistrar e2mc_registrar({
    .name = "E2MC",
    .scheme = "entropy coding, 4 parallel decoding ways",
    .paper = "Lal et al., IPDPS 2017 (paper Sec. II-B, lossless baseline)",
    .order = 3,
    .lossy = false,
    .needs_training = true,
    .compress_latency = E2mcCompressor::kCompressLatency,
    .decompress_latency = E2mcCompressor::kDecompressLatency,
    .make = [](const CodecOptions& opts) -> std::shared_ptr<const Compressor> {
      if (opts.trained_e2mc) return opts.trained_e2mc;
      return E2mcCompressor::train(opts.training_data, opts.e2mc);
    },
    .make_block_codec = nullptr,
});
}  // namespace

}  // namespace slc

// E2MC: entropy-encoding based memory compression for GPUs
// (Lal et al., IPDPS 2017) — the lossless baseline that SLC extends.
//
// Geometry follows the paper's best configuration: 16-bit symbols, 4 parallel
// decoding ways (PDWs) of 16 symbols each, and a per-block header of three
// parallel-decoding pointers (pdp). Each pdp is N bits with 2^N = block size
// in bytes (7 bits for 128 B), i.e. a byte offset, so each way's bitstream is
// byte-aligned. Compressed size is the header plus the byte-aligned ways —
// exactly the value the hardware obtains by summing code lengths (Sec. III-C).
#pragma once

#include <array>
#include <memory>

#include "compress/compressor.h"
#include "compress/huffman.h"

namespace slc {

/// E2MC configuration knobs (defaults = paper's best configuration).
struct E2mcConfig {
  size_t table_entries = 1024;  ///< symbols with dedicated codewords
  unsigned max_code_len = 16;   ///< length limit (hardware table width)
  unsigned num_ways = 4;        ///< parallel decoding ways
  double sample_fraction = 0.10;///< online-sampling share of training data
};

/// Per-way layout of one encoded block: bit counts before byte alignment and
/// byte offsets of each way within the compressed payload.
struct WayLayout {
  std::array<size_t, 8> way_bits{};   // raw code bits per way
  std::array<size_t, 8> way_bytes{};  // byte-aligned sizes
  size_t header_bits = 0;
  size_t total_bits = 0;  // header (byte-padded) + sum(way_bytes)*8
};

class E2mcCompressor : public Compressor {
 public:
  E2mcCompressor(HuffmanCode code, E2mcConfig cfg = {});

  /// Trains the frequency table on `sample` (prefix `cfg.sample_fraction` of
  /// it, modelling E2MC's online sampling window) and builds the code.
  static std::shared_ptr<E2mcCompressor> train(std::span<const uint8_t> sample,
                                               E2mcConfig cfg = {});

  std::string name() const override { return "E2MC"; }
  CompressedBlock compress(BlockView block) const override;
  Block decompress(const CompressedBlock& cb, size_t block_bytes) const override;
  /// Size-only: sums code lengths through the way layout, no bit stream.
  BlockAnalysis analyze(BlockView block) const override;

  /// Batched kernels: per-way code-length accumulation without the per-block
  /// lengths vector (analyze) and a scratch writer reused across the batch
  /// (compress). Byte-identical to the scalar loop.
  using Compressor::analyze_batch;
  using Compressor::compress_batch;
  void analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const override;
  void compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const override;

  /// Per-symbol encoded lengths for a block — the values the TSLC tree adder
  /// reads from the compressor's code-length table.
  std::vector<uint16_t> code_lengths(BlockView block) const;

  /// Batched length probe: stages every block's per-symbol encoded lengths
  /// into one contiguous scratch buffer with single le16 loads (block i's
  /// lengths live at lens[offsets[i] .. offsets[i+1])). This is the sizing
  /// pass the SLC batched mode decision runs once for a whole span; the
  /// values are exactly code_lengths() per block. Both vectors are resized
  /// (reuse them across calls to amortize the allocation).
  void code_lengths_batch(std::span<const BlockView> blocks, std::vector<uint16_t>& lens,
                          std::vector<size_t>& offsets) const;

  /// Layout (way bit/byte sizes, header, total) for a block, optionally with
  /// symbols [skip_start, skip_start+skip_count) removed from their way —
  /// used by the SLC codec to size a truncated block.
  WayLayout layout(std::span<const uint16_t> code_lens, size_t header_bits,
                   size_t skip_start = 0, size_t skip_count = 0) const;

  const HuffmanCode& code() const { return code_; }
  const E2mcConfig& config() const { return cfg_; }

  /// Process-unique identity of this trained model (monotonic counter, never
  /// reused). Two compressors with distinct code tables always report
  /// distinct ids, so consumers keying caches on a model — the fingerprint
  /// memo's codec key — can never mix decisions across trainings, even if
  /// one model is freed and another allocated at the same address.
  uint64_t model_id() const { return model_id_; }

  /// pdp width: N bits with 2^N = block size in bytes.
  static unsigned pdp_bits(size_t block_bytes);

  /// Baseline E2MC header: 3 pdps (no mode/ss/len fields).
  size_t header_bits(size_t block_bytes) const {
    return (cfg_.num_ways - 1) * pdp_bits(block_bytes);
  }

  /// Decompression / compression pipeline latencies in core cycles (paper
  /// Sec. IV-A: 46 cycles compress, 20 cycles decompress).
  static constexpr unsigned kCompressLatency = 46;
  static constexpr unsigned kDecompressLatency = 20;

 private:
  /// Writes the pdp header and the byte-aligned ways of `block` into `w`
  /// (which must be empty) according to `lo` — the one emitter the scalar
  /// compress() (BitWriter) and the batch/scatter kernels
  /// (detail::SpanBitWriter) go through, so their payloads cannot drift
  /// apart. Defined in e2mc.cpp; all instantiations live there.
  template <class Writer>
  void emit_ways(BlockView block, const WayLayout& lo, Writer& w) const;

  HuffmanCode code_;
  E2mcConfig cfg_;
  uint64_t model_id_;
};

}  // namespace slc

// Length-limited canonical Huffman coding over 16-bit symbols, the entropy
// coder underlying E2MC (Lal et al., IPDPS 2017).
//
// E2MC samples symbol frequencies online, codes the most frequent symbols
// with Huffman codewords of bounded length (so the hardware code-length table
// stays small and the TSLC tree adder inputs are <= 16 bits each), and
// escape-codes everything else (ESC codeword + the 16 raw symbol bits).
// Length limiting uses the package-merge algorithm, which yields optimal
// codes under a maximum-length constraint.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "common/block.h"
#include "compress/compressor.h"

namespace slc {

/// Symbol frequency table over the full 16-bit alphabet.
class SymbolFrequencies {
 public:
  SymbolFrequencies() : counts_(1u << kSymbolBits, 0) {}

  /// Counts every 16-bit (little-endian) symbol in `data`.
  void add_data(std::span<const uint8_t> data);

  /// Counts symbols from a prefix fraction of `data` — stands in for E2MC's
  /// online sampling window (first ~20M instructions).
  void add_sample(std::span<const uint8_t> data, double fraction);

  void add_symbol(uint16_t sym, uint64_t n = 1) {
    counts_[sym] += n;
    total_ += n;
  }

  uint64_t count(uint16_t sym) const { return counts_[sym]; }
  uint64_t total() const { return total_; }
  size_t distinct() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// A built canonical code: per-symbol lengths/codewords plus the escape code.
/// Symbols with length()==0 are not in the table and must be escape-coded.
class HuffmanCode {
 public:
  /// Builds a code from `freqs`, keeping at most `max_entries` real symbols
  /// (most frequent first) and limiting codeword lengths to `max_len` bits.
  /// The ESC pseudo-symbol always gets a codeword; its weight is the total
  /// frequency of all uncovered symbols (at least 1 so unseen symbols remain
  /// encodable).
  static HuffmanCode build(const SymbolFrequencies& freqs, size_t max_entries = 1024,
                           unsigned max_len = 16);

  /// Code length in bits for encoding `sym` (ESC length + 16 if escaped).
  unsigned encoded_bits(uint16_t sym) const {
    const uint8_t l = len_[sym];
    return l != 0 ? l : esc_len_ + kSymbolBits;
  }

  /// encoded_bits() flattened to a 65536-entry uint32 array (escape cost
  /// already folded in), sized for the AVX2 8-lane gather in the E2MC
  /// code-length kernel — a uint8 table would over-read past the end at
  /// 4-byte gather granularity.
  const uint32_t* encoded_bits_table() const { return enc_bits_.data(); }

  /// True if the symbol has its own codeword.
  bool in_table(uint16_t sym) const { return len_[sym] != 0; }

  unsigned codeword_len(uint16_t sym) const { return len_[sym]; }
  uint32_t codeword(uint16_t sym) const { return code_[sym]; }
  unsigned esc_len() const { return esc_len_; }
  uint32_t esc_code() const { return esc_code_; }
  unsigned max_len() const { return max_len_; }
  size_t table_entries() const { return entries_; }

  /// Decodes one symbol from the MSB-first 16-bit window `peek16`
  /// (zero-padded past end of stream). Returns {symbol, bits_consumed,
  /// is_escape}; when is_escape, the caller must read 16 raw bits next.
  struct DecodeStep {
    uint16_t symbol;
    unsigned bits;
    bool is_escape;
  };
  DecodeStep decode(uint16_t peek16) const { return lut_[peek16]; }

 private:
  std::vector<uint8_t> len_;   // 65536 entries; 0 = escaped
  std::vector<uint32_t> code_; // canonical codewords (left-aligned to len)
  unsigned esc_len_ = 0;
  uint32_t esc_code_ = 0;
  unsigned max_len_ = 16;
  size_t entries_ = 0;
  std::vector<DecodeStep> lut_;      // 65536-entry peek-decoder
  std::vector<uint32_t> enc_bits_;   // 65536-entry encoded_bits() table

  void build_lut();
};

/// Plain whole-block Huffman coding over 16-bit symbols: one sequential
/// stream, no parallel-decoding ways and no pdp header. This is the
/// single-way upper bound E2MC's ratio is measured against (the way split and
/// byte alignment are pure MAG/latency overhead), exposed as its own registry
/// entry so the benches can quantify that gap.
class HuffmanCompressor : public Compressor {
 public:
  explicit HuffmanCompressor(HuffmanCode code) : code_(std::move(code)) {}

  /// Trains the symbol table on `sample` (same canonical construction E2MC
  /// uses, without the way geometry).
  static std::shared_ptr<HuffmanCompressor> train(std::span<const uint8_t> sample,
                                                  size_t max_entries = 1024,
                                                  unsigned max_len = 16);

  std::string name() const override { return "Huffman"; }
  CompressedBlock compress(BlockView block) const override;
  Block decompress(const CompressedBlock& cb, size_t block_bytes) const override;
  /// Size-only: sums per-symbol code lengths, no bit stream.
  BlockAnalysis analyze(BlockView block) const override;

  const HuffmanCode& code() const { return code_; }

 private:
  HuffmanCode code_;
};

/// Package-merge: returns optimal code lengths (<= max_len) for the given
/// positive weights. Exposed for direct testing against the Kraft bound and
/// unconstrained-Huffman optimality.
std::vector<unsigned> package_merge_lengths(std::span<const uint64_t> weights, unsigned max_len);

}  // namespace slc

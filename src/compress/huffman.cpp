#include "compress/huffman.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/bitstream.h"
#include "compress/codec_registry.h"
#include "compress/e2mc.h"

namespace slc {

void SymbolFrequencies::add_data(std::span<const uint8_t> data) {
  const size_t n = data.size() / 2;
  for (size_t i = 0; i < n; ++i) {
    const uint16_t sym = static_cast<uint16_t>(data[2 * i] | (uint16_t{data[2 * i + 1]} << 8));
    add_symbol(sym);
  }
}

void SymbolFrequencies::add_sample(std::span<const uint8_t> data, double fraction) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  if (fraction == 0.0 || data.empty()) return;
  // Evenly spaced 128 B blocks across the whole image: E2MC's online
  // sampling window is temporal, so it sees every resident array the kernel
  // touches — striding models that coverage.
  const size_t n_blocks = data.size() / kBlockBytes;
  if (n_blocks == 0) {
    add_data(data);
    return;
  }
  const auto want = static_cast<size_t>(static_cast<double>(n_blocks) * fraction);
  const size_t take = std::max<size_t>(want, 1);
  const size_t stride = n_blocks / take;
  for (size_t b = 0; b < n_blocks; b += std::max<size_t>(stride, 1)) {
    add_data(data.subspan(b * kBlockBytes, kBlockBytes));
  }
}

size_t SymbolFrequencies::distinct() const {
  size_t d = 0;
  for (uint64_t c : counts_)
    if (c) ++d;
  return d;
}

std::vector<unsigned> package_merge_lengths(std::span<const uint64_t> weights, unsigned max_len) {
  const size_t n = weights.size();
  std::vector<unsigned> lengths(n, 0);
  if (n == 0) return lengths;
  if (n == 1) {
    lengths[0] = 1;
    return lengths;
  }
  if ((size_t{1} << max_len) < n) {
    throw std::invalid_argument("max_len too small for alphabet size");
  }

  // Leaf items sorted ascending by weight; ties broken by index for
  // determinism.
  struct Node {
    uint64_t weight;
    std::vector<uint32_t> leaves;  // indices of original symbols inside
  };
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return weights[a] < weights[b]; });

  std::vector<Node> leaves;
  leaves.reserve(n);
  for (uint32_t idx : order) leaves.push_back({weights[idx], {idx}});

  // Iteratively package pairs and merge with the leaf list, max_len-1 times.
  std::vector<Node> prev = leaves;
  for (unsigned level = 1; level < max_len; ++level) {
    std::vector<Node> packages;
    packages.reserve(prev.size() / 2);
    for (size_t i = 0; i + 1 < prev.size(); i += 2) {
      Node pkg;
      pkg.weight = prev[i].weight + prev[i + 1].weight;
      pkg.leaves = prev[i].leaves;
      pkg.leaves.insert(pkg.leaves.end(), prev[i + 1].leaves.begin(), prev[i + 1].leaves.end());
      packages.push_back(std::move(pkg));
    }
    // Merge packages with fresh copies of the leaves (stable by weight).
    std::vector<Node> merged;
    merged.reserve(packages.size() + leaves.size());
    size_t a = 0, b = 0;
    while (a < leaves.size() || b < packages.size()) {
      const bool take_leaf =
          b >= packages.size() || (a < leaves.size() && leaves[a].weight <= packages[b].weight);
      if (take_leaf)
        merged.push_back(leaves[a++]);
      else
        merged.push_back(std::move(packages[b++]));
    }
    prev = std::move(merged);
  }

  // The first 2n-2 items of the final list determine the code: each
  // appearance of a leaf adds one to its code length.
  const size_t take = 2 * n - 2;
  assert(prev.size() >= take);
  for (size_t i = 0; i < take; ++i)
    for (uint32_t leaf : prev[i].leaves) ++lengths[leaf];

  // Sanity: Kraft equality must hold for an optimal complete code.
  [[maybe_unused]] long double kraft = 0;
  for (unsigned l : lengths) {
    assert(l >= 1 && l <= max_len);
    kraft += std::pow(2.0L, -static_cast<long double>(l));
  }
  assert(kraft <= 1.0L + 1e-9L);
  return lengths;
}

HuffmanCode HuffmanCode::build(const SymbolFrequencies& freqs, size_t max_entries,
                               unsigned max_len) {
  HuffmanCode hc;
  hc.max_len_ = max_len;
  hc.len_.assign(size_t{1} << kSymbolBits, 0);
  hc.code_.assign(size_t{1} << kSymbolBits, 0);

  // Pick the most frequent symbols (stable order for determinism).
  std::vector<uint32_t> candidates;
  candidates.reserve(4096);
  for (uint32_t s = 0; s < (1u << kSymbolBits); ++s)
    if (freqs.count(static_cast<uint16_t>(s)) > 0) candidates.push_back(s);
  std::stable_sort(candidates.begin(), candidates.end(), [&](uint32_t a, uint32_t b) {
    return freqs.count(static_cast<uint16_t>(a)) > freqs.count(static_cast<uint16_t>(b));
  });
  if (candidates.size() > max_entries) candidates.resize(max_entries);

  uint64_t covered = 0;
  for (uint32_t s : candidates) covered += freqs.count(static_cast<uint16_t>(s));
  const uint64_t esc_weight = std::max<uint64_t>(freqs.total() - covered, 1);

  // Weights vector: real symbols then ESC (last index).
  std::vector<uint64_t> weights;
  weights.reserve(candidates.size() + 1);
  for (uint32_t s : candidates)
    weights.push_back(std::max<uint64_t>(freqs.count(static_cast<uint16_t>(s)), 1));
  weights.push_back(esc_weight);

  const std::vector<unsigned> lengths = package_merge_lengths(weights, max_len);

  // Canonical assignment: sort by (length, symbol id), ESC ordered last
  // within its length class.
  struct Entry {
    uint32_t sym;  // 0x10000 = ESC
    unsigned len;
  };
  std::vector<Entry> entries;
  entries.reserve(lengths.size());
  for (size_t i = 0; i < candidates.size(); ++i) entries.push_back({candidates[i], lengths[i]});
  entries.push_back({0x10000u, lengths.back()});
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.len != b.len ? a.len < b.len : a.sym < b.sym;
  });

  uint32_t code = 0;
  unsigned prev_len = entries.front().len;
  for (const Entry& e : entries) {
    code <<= (e.len - prev_len);
    prev_len = e.len;
    if (e.sym == 0x10000u) {
      hc.esc_len_ = e.len;
      hc.esc_code_ = code;
    } else {
      hc.len_[e.sym] = static_cast<uint8_t>(e.len);
      hc.code_[e.sym] = code;
    }
    ++code;
  }
  hc.entries_ = candidates.size();
  hc.build_lut();
  hc.enc_bits_.resize(size_t{1} << kSymbolBits);
  for (size_t s = 0; s < hc.enc_bits_.size(); ++s)
    hc.enc_bits_[s] = hc.encoded_bits(static_cast<uint16_t>(s));
  return hc;
}

void HuffmanCode::build_lut() {
  lut_.assign(size_t{1} << kSymbolBits, DecodeStep{0, 0, false});
  auto fill = [&](uint32_t code, unsigned len, uint16_t sym, bool esc) {
    assert(len >= 1 && len <= 16);
    const uint32_t lo = code << (16 - len);
    const uint32_t hi = (code + 1) << (16 - len);
    for (uint32_t p = lo; p < hi; ++p) lut_[p] = DecodeStep{sym, len, esc};
  };
  for (uint32_t s = 0; s < (1u << kSymbolBits); ++s)
    if (len_[s]) fill(code_[s], len_[s], static_cast<uint16_t>(s), false);
  if (esc_len_) fill(esc_code_, esc_len_, 0, true);
}

std::shared_ptr<HuffmanCompressor> HuffmanCompressor::train(std::span<const uint8_t> sample,
                                                            size_t max_entries,
                                                            unsigned max_len) {
  SymbolFrequencies freqs;
  freqs.add_data(sample);
  return std::make_shared<HuffmanCompressor>(HuffmanCode::build(freqs, max_entries, max_len));
}

BlockAnalysis HuffmanCompressor::analyze(BlockView block) const {
  const size_t n = block.num_symbols();
  size_t bits = 0;
  for (size_t i = 0; i < n; ++i) bits += code_.encoded_bits(block.symbol(i));

  BlockAnalysis a;
  const size_t raw_bits = block.size() * 8;
  a.is_compressed = bits < raw_bits;
  a.bit_size = a.is_compressed ? bits : raw_bits;
  a.lossless_bits = a.bit_size;
  return a;
}

CompressedBlock HuffmanCompressor::compress(BlockView block) const {
  const BlockAnalysis a = analyze(block);
  CompressedBlock out;
  if (!a.is_compressed) {
    out.is_compressed = false;
    out.bit_size = block.size() * 8;
    out.payload.assign(block.bytes().begin(), block.bytes().end());
    return out;
  }
  BitWriter w;
  const size_t n = block.num_symbols();
  for (size_t i = 0; i < n; ++i) {
    const uint16_t sym = block.symbol(i);
    if (code_.in_table(sym)) {
      w.put(code_.codeword(sym), code_.codeword_len(sym));
    } else {
      w.put(code_.esc_code(), code_.esc_len());
      w.put(sym, kSymbolBits);
    }
  }
  out.is_compressed = true;
  out.bit_size = w.bit_size();
  assert(out.bit_size == a.bit_size);
  out.payload = w.bytes();
  return out;
}

Block HuffmanCompressor::decompress(const CompressedBlock& cb, size_t block_bytes) const {
  if (!cb.is_compressed) {
    return Block(std::span<const uint8_t>(cb.payload.data(), block_bytes));
  }
  Block out(block_bytes);
  BitReader r(cb.payload);
  const size_t n_sym = block_bytes * 8 / kSymbolBits;
  for (size_t s = 0; s < n_sym; ++s) {
    const auto step = code_.decode(static_cast<uint16_t>(r.peek(16)));
    assert(step.bits > 0 && "invalid codeword");
    r.skip(step.bits);
    uint16_t sym = step.symbol;
    if (step.is_escape) sym = static_cast<uint16_t>(r.get(kSymbolBits));
    out.set_symbol(s, sym);
  }
  return out;
}

namespace {
const CodecRegistrar huffman_registrar({
    .name = "Huffman",
    .scheme = "whole-block canonical Huffman (single way)",
    .paper = "length-limited canonical coding per Lal et al., IPDPS 2017",
    .order = 4,
    .lossy = false,
    .needs_training = true,
    .compress_latency = E2mcCompressor::kCompressLatency,
    .decompress_latency = E2mcCompressor::kDecompressLatency,
    .make = [](const CodecOptions& opts) -> std::shared_ptr<const Compressor> {
      // Unlike E2MC/TSLC, a pre-trained E2MC model is no substitute for a
      // sample here — the single-way code must be trained directly.
      if (opts.training_data.empty())
        throw std::invalid_argument("Huffman needs CodecOptions::training_data");
      return HuffmanCompressor::train(opts.training_data, opts.e2mc.table_entries,
                                      opts.e2mc.max_code_len);
    },
    .make_block_codec = nullptr,
});
}  // namespace

}  // namespace slc

#include "metrics/error_metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace slc {

double mean_relative_error_pct(std::span<const float> golden, std::span<const float> approx,
                               double eps) {
  assert(golden.size() == approx.size());
  if (golden.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < golden.size(); ++i) {
    const double g = golden[i];
    const double a = approx[i];
    // AxBench convention: a NaN/Inf output counts as full (100%) error for
    // that element, and per-element error saturates at 100% so single
    // outliers cannot dominate the mean.
    double err;
    if (!std::isfinite(a)) {
      err = 1.0;
    } else {
      const double denom = std::max(std::abs(g), eps);
      err = std::min(std::abs(g - a) / denom, 1.0);
    }
    sum += err;
  }
  return sum / static_cast<double>(golden.size()) * 100.0;
}

double rmse(std::span<const float> golden, std::span<const float> approx) {
  assert(golden.size() == approx.size());
  if (golden.empty()) return 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < golden.size(); ++i) {
    // Non-finite outputs count as if the element were lost entirely (a=0),
    // mirroring the MRE convention.
    const double a = std::isfinite(approx[i]) ? static_cast<double>(approx[i]) : 0.0;
    const double d = static_cast<double>(golden[i]) - a;
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(golden.size()));
}

double nrmse_pct(std::span<const float> golden, std::span<const float> approx) {
  if (golden.empty()) return 0.0;
  const auto [mn, mx] = std::minmax_element(golden.begin(), golden.end());
  const double range = static_cast<double>(*mx) - static_cast<double>(*mn);
  if (range <= 0.0) return rmse(golden, approx) == 0.0 ? 0.0 : 100.0;
  // Per-element deviation saturates at the golden range (a NaN/Inf pixel is
  // a 100% miss, not an unbounded one).
  double sq = 0.0;
  for (size_t i = 0; i < golden.size(); ++i) {
    double d;
    if (!std::isfinite(approx[i])) {
      d = range;
    } else {
      d = std::min(std::abs(static_cast<double>(golden[i]) -
                            static_cast<double>(approx[i])),
                   range);
    }
    sq += d * d;
  }
  const double r = std::sqrt(sq / static_cast<double>(golden.size()));
  return r / range * 100.0;
}

double image_diff_pct(std::span<const float> golden, std::span<const float> approx) {
  return nrmse_pct(golden, approx);
}

double miss_rate_pct(std::span<const uint8_t> golden, std::span<const uint8_t> approx) {
  assert(golden.size() == approx.size());
  if (golden.empty()) return 0.0;
  size_t miss = 0;
  for (size_t i = 0; i < golden.size(); ++i)
    if ((golden[i] != 0) != (approx[i] != 0)) ++miss;
  return static_cast<double>(miss) / static_cast<double>(golden.size()) * 100.0;
}

double psnr_db(std::span<const float> golden, std::span<const float> approx, double peak) {
  const double r = rmse(golden, approx);
  if (r == 0.0) return 99.0;  // conventional "identical" cap
  return 20.0 * std::log10(peak / r);
}

const char* to_string(ErrorMetric m) {
  switch (m) {
    case ErrorMetric::kMissRate: return "Miss rate";
    case ErrorMetric::kMre: return "MRE";
    case ErrorMetric::kImageDiff: return "Image diff";
    case ErrorMetric::kNrmse: return "NRMSE";
  }
  return "?";
}

}  // namespace slc

// Application error metrics used in the paper's evaluation (Table III):
// mean relative error (MRE) for numeric outputs, normalized root-mean-square
// error (NRMSE) for signal-processing outputs, image diff for image outputs,
// and miss rate for boolean decisions (JM). All return percentages to match
// Fig. 7b / Fig. 9b.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace slc {

/// Mean relative error in percent: mean(min(|g-a| / max(|g|, eps), 1)) * 100.
/// `eps` guards divisions by (near-)zero golden values; per-element error
/// saturates at 100% and NaN/Inf outputs count as 100% — the AxBench
/// conventions for approximate-computing error reporting.
double mean_relative_error_pct(std::span<const float> golden, std::span<const float> approx,
                               double eps = 1e-6);

/// NRMSE in percent: RMSE normalized by the golden value range (max-min).
/// Per-element deviations saturate at the range; NaN/Inf outputs count as a
/// full-range miss.
double nrmse_pct(std::span<const float> golden, std::span<const float> approx);

/// Root-mean-square error (unnormalized). NaN/Inf outputs are treated as 0.
double rmse(std::span<const float> golden, std::span<const float> approx);

/// Image diff in percent — NRMSE over pixel intensities, the standard
/// AxBench image metric. Images are float intensity buffers.
double image_diff_pct(std::span<const float> golden, std::span<const float> approx);

/// Miss rate in percent for boolean decisions (JM's triangle intersections):
/// fraction of outputs that flipped.
double miss_rate_pct(std::span<const uint8_t> golden, std::span<const uint8_t> approx);

/// Peak signal-to-noise ratio in dB for float images with the given peak.
double psnr_db(std::span<const float> golden, std::span<const float> approx, double peak = 1.0);

/// Error metric kinds from Table III.
enum class ErrorMetric : uint8_t { kMissRate, kMre, kImageDiff, kNrmse };

const char* to_string(ErrorMetric m);

}  // namespace slc

// Compile-time lock discipline: Clang thread-safety annotations plus
// annotated wrappers over the std synchronization primitives.
//
// Every lock-protected member in the concurrent stack (engine job queue,
// server coalescing state, fingerprint-cache shards, per-threshold codec
// cache) is declared SLC_GUARDED_BY its mutex, and every *_locked() helper
// SLC_REQUIRES it, so a clang build with -Wthread-safety (CMake:
// -DSLC_THREAD_SAFETY_ANALYSIS=ON, CI job `thread-safety`) proves at compile
// time that no guarded field is touched without its lock and no helper is
// called without the capability it names. On GCC (or clang without the
// flag) the macros expand to nothing and the wrappers cost exactly a
// std::mutex / std::condition_variable_any.
//
// How to annotate new code (see docs/ARCHITECTURE.md "Concurrency & locking
// discipline" for the lock hierarchy):
//
//   * declare the lock as `Mutex m_;` and each field it protects as
//     `T field_ SLC_GUARDED_BY(m_);`
//   * take it with `MutexLock lk(m_);` (RAII; lk.unlock()/lk.lock() for a
//     window where the lock must drop — the analysis tracks both);
//   * private helpers that assume the lock are annotated
//     `void helper_locked() SLC_REQUIRES(m_);`
//   * condition waits are explicit loops over a CondVar —
//     `while (!predicate_field_) cv_.wait(m_);` — NOT std::condition_variable
//     predicate lambdas: the analysis treats a lambda body as a separate
//     unannotated function, so guarded reads inside one would warn;
//   * public entry points that take the lock themselves may declare
//     `SLC_EXCLUDES(m_)` to catch self-deadlock at call sites;
//   * a function whose safety argument the analysis cannot express (e.g. a
//     publish protected by an atomic counter handoff, not a mutex) gets
//     SLC_NO_THREAD_SAFETY_ANALYSIS and a comment saying why.
#pragma once

#include <condition_variable>
#include <mutex>

// Clang implements the capability analysis; other compilers see no-ops. The
// attributes themselves are accepted by clang with or without -Wthread-safety
// (the flag only enables the diagnostics).
#if defined(__clang__)
#define SLC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SLC_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Declares a type to be a capability (lockable). Argument names the
/// capability kind in diagnostics ("mutex").
#define SLC_CAPABILITY(x) SLC_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define SLC_SCOPED_CAPABILITY SLC_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the named capability.
#define SLC_GUARDED_BY(x) SLC_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding it.
#define SLC_PT_GUARDED_BY(x) SLC_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and did not hold it on entry).
#define SLC_ACQUIRE(...) SLC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define SLC_RELEASE(...) SLC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define SLC_TRY_ACQUIRE(ret, ...) \
  SLC_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must hold the capability across the call (held before and after).
#define SLC_REQUIRES(...) SLC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function takes it itself);
/// catches self-deadlock at the call site.
#define SLC_EXCLUDES(...) SLC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering edges, checked when both locks are annotated.
#define SLC_ACQUIRED_BEFORE(...) SLC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SLC_ACQUIRED_AFTER(...) SLC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability (accessor pattern).
#define SLC_RETURN_CAPABILITY(x) SLC_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define SLC_ASSERT_CAPABILITY(x) SLC_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: the function body is not analyzed. Every use carries a
/// comment explaining the out-of-band synchronization argument.
#define SLC_NO_THREAD_SAFETY_ANALYSIS SLC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace slc {

/// std::mutex as a declared capability. Satisfies BasicLockable/Lockable, so
/// it composes with std::condition_variable_any (see CondVar) — but the
/// annotated concurrent stack takes it through MutexLock, never through
/// std::lock_guard/std::unique_lock, which the analysis cannot see into.
class SLC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SLC_ACQUIRE() { m_.lock(); }
  void unlock() SLC_RELEASE() { m_.unlock(); }
  bool try_lock() SLC_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over a Mutex, tracked by the analysis (scoped capability). The
/// unlock()/lock() pair opens a window where the lock is provably dropped —
/// the engine worker loop releases around each shard body — and the
/// destructor only releases when still held.
class SLC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) SLC_ACQUIRE(m) : m_(&m), held_(true) { m_->lock(); }
  ~MutexLock() SLC_RELEASE() {
    if (held_) m_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() SLC_RELEASE() {
    m_->unlock();
    held_ = false;
  }
  void lock() SLC_ACQUIRE() {
    m_->lock();
    held_ = true;
  }

 private:
  Mutex* m_;
  bool held_;
};

/// Condition variable bound to Mutex. wait() declares SLC_REQUIRES(m): the
/// caller holds m before and after (the internal unlock/relock is invisible
/// to the analysis, which matches the semantics of a condition wait). The
/// guarded predicate is re-checked by the caller's explicit while loop, so
/// every predicate read happens under the lock that guards its fields.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& m) SLC_REQUIRES(m) { cv_.wait(m); }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& m, const std::chrono::duration<Rep, Period>& rel)
      SLC_REQUIRES(m) {
    return cv_.wait_for(m, rel);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace slc

// Small statistics helpers used by benches and the simulator: running
// accumulators, geometric means (the paper reports GM everywhere), and
// histogram utilities for the Fig. 2 block-size distribution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace slc {

/// Running mean/min/max/sum accumulator.
class RunningStats {
 public:
  void add(double x);
  size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator) via Welford's algorithm.
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_w_ = 0.0;  // Welford running mean
  double m2_ = 0.0;      // Welford running M2
};

/// Geometric mean of a sequence of positive values. Values <= 0 are clamped
/// to `floor` first (the paper's error plots are log-scale, so zero errors
/// need a floor to be averageable).
double geometric_mean(std::span<const double> xs, double floor = 1e-300);

/// Outcome counters for the block-fingerprint decision memo
/// (core/fingerprint_cache.h), embedded in CommitStats and the per-stream
/// server tables. Unlike every other commit counter these are NOT
/// thread-count invariant: whether block i hits depends on whether a
/// concurrent shard already inserted its duplicate. The *decisions* stay
/// invariant either way (a hit returns exactly the decision the miss path
/// would compute), so determinism checks compare
/// CommitStats::same_decisions(), never these counters.
struct CacheCounters {
  uint64_t hits = 0;        ///< decision served from the memo (probe skipped)
  uint64_t misses = 0;      ///< decision computed (and inserted)
  uint64_t evictions = 0;   ///< LRU entries displaced by inserts
  uint64_t collisions = 0;  ///< verify-on-hit content mismatches (fingerprint collision)

  /// Folds one block's probe outcome in (the shape BlockAnalysis /
  /// BlockCodecResult carry it in).
  void record(bool probed, bool hit, bool evicted, bool collision) {
    if (probed) {
      hits += hit ? 1 : 0;
      misses += hit ? 0 : 1;
    }
    evictions += evicted ? 1 : 0;
    collisions += collision ? 1 : 0;
  }

  void merge(const CacheCounters& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    collisions += o.collisions;
  }

  uint64_t probes() const { return hits + misses; }
  double hit_rate() const {
    return probes() ? static_cast<double>(hits) / static_cast<double>(probes()) : 0.0;
  }

  bool operator==(const CacheCounters&) const = default;
};

/// Integer histogram keyed by bucket value.
class Histogram {
 public:
  void add(int64_t bucket, uint64_t weight = 1);
  uint64_t total() const { return total_; }
  uint64_t at(int64_t bucket) const;
  double fraction(int64_t bucket) const;
  const std::map<int64_t, uint64_t>& buckets() const { return counts_; }

 private:
  std::map<int64_t, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Collects raw samples and answers percentile queries (nearest-rank) —
/// the latency bookkeeping behind the CodecServer's per-stream p50/p99.
/// Samples are kept verbatim so merging trackers is exact. Const queries
/// are genuinely read-only (percentile() selects on a scratch copy), so
/// concurrent readers need no external lock.
class PercentileTracker {
 public:
  void record(double x);
  /// Folds another tracker's samples into this one.
  void merge(const PercentileTracker& other);

  size_t count() const { return samples_.size(); }
  double mean() const;
  double max() const;
  /// Nearest-rank percentile, `p` in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;

 private:
  std::vector<double> samples_;
};

/// Fixed-width text table printer for bench output (keeps every bench's
/// stdout aligned and diff-able).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  /// Formats a double with `prec` digits after the decimal point.
  static std::string fmt(double v, int prec = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slc

#include "common/bitstream.h"

#include <cassert>

namespace slc {

void BitWriter::put(uint64_t value, unsigned nbits) {
  assert(nbits <= 64);
  if (nbits == 0) return;
  if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
  // Grow buffer to hold the new bits.
  const size_t need_bytes = (bit_size_ + nbits + 7) / 8;
  if (buf_.size() < need_bytes) buf_.resize(need_bytes, 0);
  // Write bit-by-bit groups: place up to 8 bits per byte.
  size_t pos = bit_size_;
  unsigned left = nbits;
  while (left > 0) {
    const size_t byte = pos / 8;
    const unsigned bit_in_byte = static_cast<unsigned>(pos % 8);
    const unsigned room = 8 - bit_in_byte;
    const unsigned take = left < room ? left : room;
    // Extract the top `take` bits of the remaining value.
    const uint64_t chunk = (value >> (left - take)) & ((uint64_t{1} << take) - 1);
    buf_[byte] |= static_cast<uint8_t>(chunk << (room - take));
    pos += take;
    left -= take;
  }
  bit_size_ += nbits;
}

std::vector<uint8_t> BitWriter::bytes() const {
  std::vector<uint8_t> out(buf_.begin(), buf_.begin() + static_cast<long>(byte_size()));
  return out;
}

void BitWriter::patch(size_t pos, uint64_t value, unsigned nbits) {
  assert(pos + nbits <= bit_size_);
  for (unsigned i = 0; i < nbits; ++i) {
    const bool bit = ((value >> (nbits - 1 - i)) & 1) != 0;
    const size_t p = pos + i;
    const size_t byte = p / 8;
    const unsigned shift = 7 - static_cast<unsigned>(p % 8);
    if (bit)
      buf_[byte] |= static_cast<uint8_t>(1u << shift);
    else
      buf_[byte] &= static_cast<uint8_t>(~(1u << shift));
  }
}

void BitWriter::clear() {
  buf_.clear();
  bit_size_ = 0;
}

uint64_t BitReader::get(unsigned nbits) {
  const uint64_t v = peek(nbits);
  if (pos_ + nbits > bit_size()) overrun_ = true;
  pos_ += nbits;
  return v;
}

uint64_t BitReader::peek(unsigned nbits) const {
  assert(nbits <= 64);
  uint64_t v = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    const size_t p = pos_ + i;
    uint64_t bit = 0;
    if (p < bit_size()) {
      const size_t byte = p / 8;
      const unsigned shift = 7 - static_cast<unsigned>(p % 8);
      bit = (data_[byte] >> shift) & 1;
    }
    v = (v << 1) | bit;
  }
  return v;
}

}  // namespace slc

#include "common/block.h"

#include <algorithm>
#include <cassert>

namespace slc {

size_t round_up_to_mag_bits(size_t bits, size_t mag_bytes) {
  const size_t mag_bits = mag_bytes * 8;
  if (mag_bits == 0) return bits;
  return (bits + mag_bits - 1) / mag_bits * mag_bits;
}

size_t bursts_for_bits(size_t bits, size_t mag_bytes, size_t block_bytes) {
  const size_t mag_bits = mag_bytes * 8;
  assert(mag_bits > 0);
  size_t bursts = (bits + mag_bits - 1) / mag_bits;
  bursts = std::max<size_t>(bursts, 1);
  const size_t max_bursts = block_bytes / mag_bytes;
  return std::min(bursts, max_bursts);
}

size_t bytes_above_mag(size_t size_bytes, size_t mag_bytes) {
  assert(mag_bytes > 0);
  return size_bytes % mag_bytes;
}

std::vector<Block> to_blocks(std::span<const uint8_t> data, size_t block_bytes, bool pad_tail) {
  std::vector<Block> blocks;
  const size_t n_full = data.size() / block_bytes;
  blocks.reserve(n_full + 1);
  for (size_t i = 0; i < n_full; ++i) {
    blocks.emplace_back(data.subspan(i * block_bytes, block_bytes));
  }
  const size_t rem = data.size() % block_bytes;
  if (rem != 0 && pad_tail) {
    std::vector<uint8_t> tail(block_bytes, 0);
    std::copy(data.end() - static_cast<long>(rem), data.end(), tail.begin());
    blocks.emplace_back(std::move(tail));
  }
  return blocks;
}

std::vector<BlockView> to_views(std::span<const Block> blocks) {
  std::vector<BlockView> views;
  views.reserve(blocks.size());
  for (const Block& b : blocks) views.push_back(b.view());
  return views;
}

}  // namespace slc

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace slc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_w_;
  mean_w_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_w_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geometric_mean(std::span<const double> xs, double floor) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(std::max(x, floor));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void Histogram::add(int64_t bucket, uint64_t weight) {
  counts_[bucket] += weight;
  total_ += weight;
}

uint64_t Histogram::at(int64_t bucket) const {
  auto it = counts_.find(bucket);
  return it == counts_.end() ? 0 : it->second;
}

double Histogram::fraction(int64_t bucket) const {
  return total_ ? static_cast<double>(at(bucket)) / static_cast<double>(total_) : 0.0;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TextTable::to_string() const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace slc

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace slc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_w_;
  mean_w_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_w_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double geometric_mean(std::span<const double> xs, double floor) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(std::max(x, floor));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void Histogram::add(int64_t bucket, uint64_t weight) {
  counts_[bucket] += weight;
  total_ += weight;
}

uint64_t Histogram::at(int64_t bucket) const {
  auto it = counts_.find(bucket);
  return it == counts_.end() ? 0 : it->second;
}

double Histogram::fraction(int64_t bucket) const {
  return total_ ? static_cast<double>(at(bucket)) / static_cast<double>(total_) : 0.0;
}

void PercentileTracker::record(double x) { samples_.push_back(x); }

void PercentileTracker::merge(const PercentileTracker& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
}

double PercentileTracker::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double PercentileTracker::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double PercentileTracker::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // Nearest rank: the smallest sample with at least p% of samples <= it.
  const auto n = static_cast<double>(samples_.size());
  size_t rank = static_cast<size_t>(std::ceil(clamped / 100.0 * n));
  if (rank == 0) rank = 1;
  const size_t idx = std::min(rank, samples_.size()) - 1;
  // Select on a scratch copy: const stays read-only, so concurrent
  // percentile() calls on a shared tracker are safe.
  std::vector<double> scratch(samples_);
  std::nth_element(scratch.begin(), scratch.begin() + static_cast<ptrdiff_t>(idx), scratch.end());
  return scratch[idx];
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::fmt(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string TextTable::to_string() const {
  // Width array spans the widest row, not just the header: a row with more
  // cells than the header still renders every cell at its measured width.
  size_t n_cols = header_.size();
  for (const auto& row : rows_) n_cols = std::max(n_cols, row.size());
  std::vector<size_t> width(n_cols, 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace slc

// Bit-granular stream writer/reader used by all compressors.
//
// Compressed GPU memory blocks are bit-packed: entropy codes (E2MC), pattern
// prefixes (FPC/C-PACK) and headers (SLC) all have non-byte sizes. The writer
// appends MSB-first into a growing byte buffer; the reader consumes from an
// immutable view. MSB-first ordering matches the canonical-Huffman decode
// convention (codewords compare as left-aligned big-endian integers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace slc {

/// Append-only MSB-first bit writer.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `nbits` bits of `value`, most-significant bit first.
  /// `nbits` must be in [0, 64].
  void put(uint64_t value, unsigned nbits);

  /// Appends a single bit.
  void put_bit(bool bit) { put(bit ? 1u : 0u, 1); }

  /// Number of bits written so far.
  size_t bit_size() const { return bit_size_; }

  /// Size in whole bytes (rounded up).
  size_t byte_size() const { return (bit_size_ + 7) / 8; }

  /// Finishes the stream and returns the packed bytes (final partial byte is
  /// zero-padded). The writer remains usable; this copies.
  std::vector<uint8_t> bytes() const;

  /// Overwrites `nbits` bits starting at absolute bit position `pos` with the
  /// low `nbits` of `value`. The range must already have been written.
  /// Used to back-patch parallel-decoding pointers once way offsets are known.
  void patch(size_t pos, uint64_t value, unsigned nbits);

  void clear();

 private:
  std::vector<uint8_t> buf_;
  size_t bit_size_ = 0;
};

/// MSB-first bit reader over an immutable byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const uint8_t> data) : data_(data) {}
  /// A reader only views the bytes; passing a temporary vector would leave
  /// the span dangling. Bind the buffer to a named variable first.
  explicit BitReader(std::vector<uint8_t>&&) = delete;

  /// Reads `nbits` (<= 64) bits MSB-first. Reading past the end returns
  /// zero-padded bits and sets overrun().
  uint64_t get(unsigned nbits);

  bool get_bit() { return get(1) != 0; }

  /// Peeks `nbits` without consuming. Out-of-range bits read as zero.
  uint64_t peek(unsigned nbits) const;

  /// Skips forward `nbits`.
  void skip(size_t nbits) { pos_ += nbits; }

  /// Repositions to absolute bit offset `pos`.
  void seek(size_t pos) { pos_ = pos; }

  size_t position() const { return pos_; }
  size_t bit_size() const { return data_.size() * 8; }
  size_t remaining() const { return pos_ >= bit_size() ? 0 : bit_size() - pos_; }
  bool overrun() const { return overrun_; }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
  bool overrun_ = false;
};

}  // namespace slc

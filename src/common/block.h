// Memory-block primitives shared by compressors, the SLC codec and the
// simulator.
//
// GPUs move global memory in fixed-size blocks (cache lines); the paper uses
// 128 B blocks split into 16-bit symbols (64 symbols/block) and a memory
// access granularity (MAG) of 16/32/64 B. These helpers centralize the
// geometry so every module agrees on rounding and symbol extraction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace slc {

/// Default GPU cache-line / DRAM block size in bytes (Table II).
inline constexpr size_t kBlockBytes = 128;
/// E2MC symbol width in bits (16-bit symbols give the best ratio per [6]).
inline constexpr unsigned kSymbolBits = 16;
/// Symbols per 128 B block.
inline constexpr size_t kSymbolsPerBlock = kBlockBytes * 8 / kSymbolBits;  // 64
/// Default memory access granularity for GDDR5: 32-bit bus x burst 8.
inline constexpr size_t kDefaultMagBytes = 32;

/// A fixed 128-byte block view with symbol accessors.
class BlockView {
 public:
  explicit BlockView(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  size_t size() const { return bytes_.size(); }
  std::span<const uint8_t> bytes() const { return bytes_; }

  /// Number of 16-bit symbols in the block.
  size_t num_symbols() const { return bytes_.size() * 8 / kSymbolBits; }

  /// Returns symbol `i` (little-endian 16-bit load, matching how a GPU's
  /// memory pipeline would slice a line into half-words).
  uint16_t symbol(size_t i) const {
    const size_t off = i * 2;
    return static_cast<uint16_t>(bytes_[off] | (uint16_t{bytes_[off + 1]} << 8));
  }

  /// Returns the i-th 32-bit word (little-endian).
  uint32_t word32(size_t i) const {
    const size_t off = i * 4;
    return static_cast<uint32_t>(bytes_[off]) | (uint32_t{bytes_[off + 1]} << 8) |
           (uint32_t{bytes_[off + 2]} << 16) | (uint32_t{bytes_[off + 3]} << 24);
  }

  /// Returns the i-th 64-bit word (little-endian).
  uint64_t word64(size_t i) const {
    return static_cast<uint64_t>(word32(2 * i)) | (uint64_t{word32(2 * i + 1)} << 32);
  }

 private:
  std::span<const uint8_t> bytes_;
};

/// Mutable owned block with the same symbol/word accessors.
class Block {
 public:
  Block() : data_(kBlockBytes, 0) {}
  explicit Block(size_t nbytes) : data_(nbytes, 0) {}
  explicit Block(std::vector<uint8_t> data) : data_(std::move(data)) {}
  explicit Block(std::span<const uint8_t> data) : data_(data.begin(), data.end()) {}

  size_t size() const { return data_.size(); }
  std::span<const uint8_t> bytes() const { return data_; }
  std::span<uint8_t> mutable_bytes() { return data_; }
  BlockView view() const { return BlockView(data_); }

  uint16_t symbol(size_t i) const { return view().symbol(i); }
  void set_symbol(size_t i, uint16_t v) {
    data_[i * 2] = static_cast<uint8_t>(v & 0xff);
    data_[i * 2 + 1] = static_cast<uint8_t>(v >> 8);
  }

  void set_word32(size_t i, uint32_t v) {
    for (int b = 0; b < 4; ++b) data_[i * 4 + static_cast<size_t>(b)] = static_cast<uint8_t>(v >> (8 * b));
  }
  void set_word64(size_t i, uint64_t v) {
    set_word32(2 * i, static_cast<uint32_t>(v));
    set_word32(2 * i + 1, static_cast<uint32_t>(v >> 32));
  }

  bool operator==(const Block& o) const { return data_ == o.data_; }

 private:
  std::vector<uint8_t> data_;
};

/// Rounds `bits` up to the next multiple of `mag_bytes` (in bits). This is
/// the quantity DRAM actually transfers for a compressed block — the basis of
/// the paper's "effective" compression ratio.
size_t round_up_to_mag_bits(size_t bits, size_t mag_bytes);

/// Number of MAG-sized bursts needed for `bits` of compressed payload
/// (minimum one burst; capped at block_bytes / mag).
size_t bursts_for_bits(size_t bits, size_t mag_bytes, size_t block_bytes = kBlockBytes);

/// Bytes above the highest multiple of MAG <= size (the paper's Fig. 2
/// x-axis). A size that is an exact multiple returns 0.
size_t bytes_above_mag(size_t size_bytes, size_t mag_bytes);

/// Slices a flat buffer into consecutive 128 B blocks (the tail is
/// zero-padded into a final full block when `pad_tail` is true).
std::vector<Block> to_blocks(std::span<const uint8_t> data, size_t block_bytes = kBlockBytes,
                             bool pad_tail = true);

/// Views over a range of owned blocks, index-aligned — the argument the
/// batch codec kernels take. The storage behind `blocks` must outlive the
/// returned views.
std::vector<BlockView> to_views(std::span<const Block> blocks);

}  // namespace slc

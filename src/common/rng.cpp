#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace slc {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline uint64_t splitmix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box-Muller; draw until u1 is nonzero to avoid log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace slc

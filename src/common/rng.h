// Deterministic pseudo-random generation (xoshiro256**) for workload inputs.
//
// Every benchmark input in this repo is synthetic; reproducibility of the
// paper's tables requires bit-identical inputs across runs and platforms, so
// we avoid std::mt19937/std::uniform_real_distribution (whose outputs are not
// guaranteed identical across standard library implementations) and implement
// the generator and distributions ourselves.
#pragma once

#include <cstdint>

namespace slc {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  uint64_t next_below(uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Uniform 32-bit float in [lo, hi).
  float uniform_f(float lo, float hi) { return static_cast<float>(uniform(lo, hi)); }

  /// Bernoulli with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  uint64_t s_[4];
};

}  // namespace slc

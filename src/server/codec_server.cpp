#include "server/codec_server.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "core/fingerprint_cache.h"

namespace slc {

namespace {

int to_engine_priority(StreamPriority p) {
  switch (p) {
    case StreamPriority::kBulk:
      return CodecEngine::kPriorityBulk;
    case StreamPriority::kNormal:
      return (CodecEngine::kPriorityBulk + CodecEngine::kPriorityLatency) / 2;
    case StreamPriority::kLatency:
      return CodecEngine::kPriorityLatency;
  }
  return CodecEngine::kPriorityBulk;
}

constexpr auto kNoFlush = std::chrono::steady_clock::time_point::max();

/// When a parked request must be force-dispatched: deadline-carrying
/// requests get half their deadline as coalescing budget (capped by the
/// configured linger) so the engine keeps the other half; deadline-free
/// requests linger at most `max_coalesce_delay` (0 = never auto-flush).
std::chrono::steady_clock::time_point flush_deadline(
    std::chrono::steady_clock::time_point submitted, std::chrono::nanoseconds deadline,
    std::chrono::microseconds linger) {
  if (deadline.count() > 0) {
    auto budget = deadline / 2;
    if (linger.count() > 0) budget = std::min(budget, std::chrono::nanoseconds(linger));
    return submitted + budget;
  }
  if (linger.count() > 0) return submitted + linger;
  return kNoFlush;
}

}  // namespace

/// One dispatched batch: the concatenated blocks of the requests it carries,
/// index-aligned result slots (analyses or payloads, by kind), and a
/// shard-completion counter. Exceptions are caught inside the shard body
/// (never surfaced to the engine) so the counter always reaches the block
/// count and the batch always completes — errors are delivered per request
/// instead.
struct CodecServer::Batch {
  CodecServer* server = nullptr;
  StreamId stream = 0;
  RequestKind kind = RequestKind::kAnalyze;
  std::shared_ptr<const Compressor> codec;
  size_t mag_bytes = kDefaultMagBytes;
  std::vector<Block> blocks;
  std::vector<BlockAnalysis> analyses;      ///< kAnalyze / kDecide
  std::vector<CompressedBlock> payloads;    ///< kCompress
  std::vector<std::shared_ptr<detail::ServerRequest>> requests;
  std::atomic<size_t> done{0};

  /// First-wins delivery guard between complete_batch (all shards ran) and
  /// fail_batch_locked (no shard will ever run). The two are mutually
  /// exclusive by construction — a job is abandoned only while shards remain
  /// unclaimed, so `done` can never reach the block count afterwards — but
  /// the inline at-enqueue rejection check and the abandon hook can overlap
  /// on a racing shutdown, and exactly one of them may deliver.
  std::atomic<bool> delivered{false};

  Mutex error_m;  ///< leaf lock: nothing else is acquired under it
  std::exception_ptr error SLC_GUARDED_BY(error_m);  ///< first shard exception
};

// --- ServerTicket -----------------------------------------------------------

bool ServerTicket::ready() const {
  if (!req_) return false;
  MutexLock lk(req_->m);
  return req_->done;
}

Response ServerTicket::wait() {
  if (!req_) throw std::logic_error("ServerTicket::wait on an empty ticket");
  auto req = std::move(req_);  // one-shot: consume before any throw
  // The request may still be coalescing in its stream's pending batch; a
  // waiter must force dispatch or it would block until the flush timer (or
  // someone else's submit) fills the batch. Skip the flush when already
  // complete so waiting a finished ticket does not dispatch the stream's
  // unrelated half-full batch.
  // (Called without holding req->m: the server lock nests outside it.)
  bool done;
  {
    MutexLock lk(req->m);
    done = req->done;
  }
  if (!done && server_) server_->flush_stream(stream_);
  MutexLock lk(req->m);
  while (!req->done) req->cv.wait(req->m);
  return std::move(req->resp);
}

// --- CodecServer ------------------------------------------------------------

CodecServer::CodecServer() : CodecServer(Config{}) {}

CodecServer::CodecServer(Config cfg) : cfg_(std::move(cfg)) {
  engine_ = cfg_.engine ? cfg_.engine : CodecEngine::shared_default();
  if (cfg_.batch_blocks == 0) cfg_.batch_blocks = 1;
  timer_ = std::thread([this] { timer_loop(); });
}

CodecServer::~CodecServer() {
  {
    MutexLock lk(lock_);
    stopping_ = true;
  }
  timer_cv_.notify_all();
  if (timer_.joinable()) timer_.join();
  drain();
}

std::shared_ptr<FingerprintCache> CodecServer::shared_verify_cache() {
  MutexLock lk(lock_);
  if (!shared_verify_cache_) {
    FingerprintCache::Config cache_cfg;
    cache_cfg.verify_on_hit = true;
    shared_verify_cache_ = std::make_shared<FingerprintCache>(cache_cfg);
  }
  return shared_verify_cache_;
}

StreamId CodecServer::open_stream(StreamConfig cfg) {
  auto stream = std::make_unique<Stream>();
  // Cache wiring precedence: an explicitly pre-set options.fingerprint_cache
  // always wins; cache_mode is only consulted when it is null.
  if (!cfg.options.fingerprint_cache) {
    switch (cfg.cache_mode) {
      case CacheMode::kOff:
        break;
      case CacheMode::kShared:
        cfg.options.fingerprint_cache = engine_->fingerprint_cache();
        break;
      case CacheMode::kSharedVerify:
        cfg.options.fingerprint_cache = shared_verify_cache();
        break;
      case CacheMode::kPrivate:
      case CacheMode::kPrivateVerify: {
        FingerprintCache::Config cache_cfg;
        cache_cfg.verify_on_hit = cfg.cache_mode == CacheMode::kPrivateVerify;
        cfg.options.fingerprint_cache = std::make_shared<FingerprintCache>(cache_cfg);
        break;
      }
    }
  }
  // Registry lookup first: an unknown codec or missing training data must
  // fail open_stream, not the first request.
  stream->codec = CodecRegistry::instance().create(cfg.codec, cfg.options);
  stream->engine_priority = to_engine_priority(cfg.priority);
  stream->cfg = std::move(cfg);
  MutexLock lk(lock_);
  streams_.push_back(std::move(stream));
  return static_cast<StreamId>(streams_.size() - 1);
}

size_t CodecServer::num_streams() const {
  MutexLock lk(lock_);
  return streams_.size();
}

const std::string& CodecServer::stream_name(StreamId s) const {
  MutexLock lk(lock_);
  // The returned reference outlives the lock safely: streams are never
  // removed, Stream objects are pointer-stable, and cfg.name is immutable
  // after open_stream.
  return streams_.at(s)->cfg.name;
}

ServerTicket CodecServer::submit(StreamId s, const Request& request) {
  std::vector<Block> blocks =
      !request.blocks.empty()
          ? std::vector<Block>(request.blocks.begin(), request.blocks.end())
          : to_blocks(request.bytes);
  return submit_request(s, request, std::move(blocks));
}

ServerTicket CodecServer::submit(StreamId s, std::span<const uint8_t> data) {
  Request r;
  r.bytes = data;
  return submit(s, r);
}

ServerTicket CodecServer::submit(StreamId s, std::span<const Block> blocks) {
  Request r;
  r.blocks = blocks;
  return submit(s, r);
}

ServerTicket CodecServer::submit_request(StreamId s, const Request& r,
                                         std::vector<Block>&& blocks) {
  auto req = std::make_shared<detail::ServerRequest>();
  // Latency is measured from here — before any admission wait or coalescing
  // delay — so percentiles reflect what the client experienced.
  req->submitted = std::chrono::steady_clock::now();
  req->n_blocks = blocks.size();
  req->kind = r.kind;
  req->tag = r.tag;
  req->deadline = r.deadline;

  MutexLock lk(lock_);
  Stream& st = *streams_.at(s);

  if (blocks.empty()) {
    // Nothing to schedule; complete inline so the request can never be
    // stranded in an empty batch.
    st.stats.requests += 1;
    st.stats.latency.record(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                          req->submitted)
                                .count());
    MutexLock rlk(req->m);
    req->resp.tag = req->tag;
    req->resp.analysis.ratios = RatioAccumulator(st.cfg.options.mag_bytes);
    req->done = true;
    return ServerTicket(this, s, std::move(req));
  }

  const size_t n = blocks.size();
  if (cfg_.max_inflight_blocks != 0 && st.cfg.admission == AdmissionPolicy::kReject) {
    // Load shedding: a kReject stream never waits. The request is shed
    // unless it could be admitted *right now* — budget room and no older
    // submitter already queued at the turnstile (jumping the FIFO would
    // starve waiting kBlock submitters of the room they were promised).
    if (admit_tail_ != admit_head_ || !admit_fits_locked(n)) {
      st.stats.requests += 1;
      st.stats.rejected += 1;
      MutexLock rlk(req->m);
      req->resp.status = ResponseStatus::kRejected;
      req->resp.tag = req->tag;
      req->resp.analysis.ratios = RatioAccumulator(st.cfg.options.mag_bytes);
      req->done = true;
      return ServerTicket(this, s, std::move(req));
    }
  } else if (cfg_.max_inflight_blocks != 0) {
    // Backpressure: admit once dispatched + queued blocks leave room. The
    // empty-server escape (admit_fits_locked) admits a request larger than
    // the whole budget (dispatched immediately below) instead of
    // deadlocking. Admission is a FIFO turnstile — each submitter waits its
    // turn — so an oversized request cannot be starved by a steady stream
    // of small ones: younger submitters queue behind it while the server
    // drains to empty.
    const uint64_t turn = admit_tail_++;
    while (!(admit_head_ == turn && admit_fits_locked(n))) {
      // Queued-but-undispatched batches never retire on their own; push
      // them out on every re-check — a submit admitted ahead of us may
      // have parked new pending blocks — so the wait is always on engine
      // progress.
      if (!admit_fits_locked(n)) {
        for (StreamId sid = 0; sid < streams_.size(); ++sid) dispatch_locked(sid);
      }
      if (admit_head_ == turn && admit_fits_locked(n)) break;
      backpressure_cv_.wait(lock_);
    }
    admit_head_ += 1;
    backpressure_cv_.notify_all();  // hand the turnstile to the next waiter
  }

  // Batches are kind-homogeneous: a kind switch flushes the pending batch.
  if (!st.pending.empty() && st.pending_kind != r.kind) dispatch_locked(s);

  req->offset = st.pending_blocks.size();
  if (st.pending.empty()) {
    st.pending_kind = r.kind;
    st.flush_by = kNoFlush;
    st.pending_has_deadline = false;
    st.pending_deadline = CodecEngine::kNoDeadline;
  }
  st.pending_blocks.insert(st.pending_blocks.end(), std::make_move_iterator(blocks.begin()),
                           std::make_move_iterator(blocks.end()));
  st.pending.push_back(req);
  pending_blocks_total_ += n;
  if (r.deadline.count() > 0) {
    st.pending_has_deadline = true;
    st.pending_deadline = std::min(st.pending_deadline, req->submitted + r.deadline);
  }
  // Over budget is only reachable through the empty-server escape (an
  // oversized request): dispatch at once so the bound is restored as soon
  // as the batch retires.
  const bool over_budget = cfg_.max_inflight_blocks != 0 &&
                           inflight_blocks_ + pending_blocks_total_ > cfg_.max_inflight_blocks;
  if (st.pending_blocks.size() >= cfg_.batch_blocks || over_budget) {
    dispatch_locked(s);
  } else {
    // Parked: arm the flush timer so a submit lull cannot strand the batch.
    const auto when = flush_deadline(req->submitted, req->deadline, cfg_.max_coalesce_delay);
    if (when < st.flush_by) {
      st.flush_by = when;
      timer_cv_.notify_all();
    }
  }
  return ServerTicket(this, s, std::move(req));
}

bool CodecServer::admit_fits_locked(size_t n) const {
  return inflight_blocks_ + pending_blocks_total_ + n <= cfg_.max_inflight_blocks ||
         inflight_blocks_ + pending_blocks_total_ == 0;
}

void CodecServer::timer_loop() {
  MutexLock lk(lock_);
  while (!stopping_) {
    const auto now = std::chrono::steady_clock::now();
    auto next = kNoFlush;
    for (StreamId s = 0; s < streams_.size(); ++s) {
      Stream& st = *streams_[s];
      if (st.pending.empty()) continue;
      if (st.flush_by <= now) {
        dispatch_locked(s);
      } else {
        next = std::min(next, st.flush_by);
      }
    }
    if (stopping_) break;
    if (next == kNoFlush) {
      timer_cv_.wait(lock_);
    } else {
      timer_cv_.wait_for(lock_, next - now);
    }
  }
}

void CodecServer::dispatch_locked(StreamId s) {
  Stream& st = *streams_.at(s);
  if (st.pending.empty()) return;

  auto batch = std::make_shared<Batch>();
  batch->server = this;
  batch->stream = s;
  batch->kind = st.pending_kind;
  batch->codec = st.codec;
  batch->mag_bytes = st.cfg.options.mag_bytes;
  batch->blocks = std::move(st.pending_blocks);
  batch->requests = std::move(st.pending);
  st.pending_blocks.clear();
  st.pending.clear();
  if (batch->kind == RequestKind::kCompress) {
    batch->payloads.resize(batch->blocks.size());
  } else {
    batch->analyses.resize(batch->blocks.size());
  }
  // A batch carrying any explicit deadline claims shards ahead of everything
  // priority-scheduled between the bulk/latency ends; its earliest absolute
  // deadline rides along so the engine orders same-band batches EDF.
  const int priority = st.pending_has_deadline
                           ? std::max(st.engine_priority, CodecEngine::kPriorityDeadline)
                           : st.engine_priority;
  const auto deadline = st.pending_deadline;
  st.flush_by = kNoFlush;
  st.pending_has_deadline = false;
  st.pending_deadline = CodecEngine::kNoDeadline;

  pending_blocks_total_ -= batch->blocks.size();
  inflight_blocks_ += batch->blocks.size();
  inflight_batches_ += 1;
  st.stats.batches += 1;

  // One engine job per batch at the stream's priority. Completion is driven
  // by the last shard (the body counts blocks), which scatters results and
  // releases the budget — so fire-and-forget clients still retire their
  // backpressure debt; the future only matters for the abandonment check.
  auto fut = engine_->submit(
      batch->blocks.size(),
      [batch](size_t begin, size_t end, unsigned) {
        batch->server->run_shard(*batch, begin, end);
        const size_t finished = batch->done.fetch_add(end - begin) + (end - begin);
        if (finished == batch->blocks.size()) batch->server->complete_batch(batch);
      },
      priority, deadline);
  // If the engine is shut down with this batch still queued (accepted at
  // enqueue, shards never claimed), the job is abandoned and no shard will
  // ever complete it — without this hook every ticket wait() and the server's
  // own drain()/~CodecServer would hang. The hook runs on the shutdown
  // thread, outside every engine lock, so taking lock_ here is safe.
  CodecServer* self = this;
  fut.on_abandon([self, batch](std::exception_ptr reason) {
    MutexLock lk(self->lock_);
    self->fail_batch_locked(batch, reason);
  });
  if (fut.ready() && batch->done.load() < batch->blocks.size()) {
    // Ready with no shard run: the engine abandoned the job at enqueue (it
    // was shut down). Fail the batch inline so tickets throw the stored
    // exception instead of the server hanging in drain()/~CodecServer.
    // Delivery happens without dropping lock_ — the old unlock/relock here
    // let admission-turnstile state shift mid-dispatch under a waiter
    // parked in submit_request.
    std::exception_ptr err;
    try {
      fut.wait();
      err = std::make_exception_ptr(
          std::runtime_error("CodecServer: engine rejected the batch"));
    } catch (...) {
      err = std::current_exception();
    }
    fail_batch_locked(batch, err);
  }
}

void CodecServer::fail_batch_locked(const std::shared_ptr<Batch>& batch,
                                    std::exception_ptr err) {
  if (batch->delivered.exchange(true)) return;  // abandon hook vs inline check
  const auto now = std::chrono::steady_clock::now();
  Stream& st = *streams_.at(batch->stream);
  for (const auto& req : batch->requests) {
    const bool missed = req->deadline.count() > 0 && now - req->submitted > req->deadline;
    st.stats.requests += 1;
    st.stats.deadline_misses += missed ? 1 : 0;
    st.stats.latency.record(std::chrono::duration<double>(now - req->submitted).count());
    {
      MutexLock rlk(req->m);  // lock order: lock_ then req->m
      req->resp.status = ResponseStatus::kError;
      req->resp.tag = req->tag;
      req->resp.deadline_missed = missed;
      req->resp.error = err;
      req->resp.analysis.ratios = RatioAccumulator(batch->mag_bytes);
      req->done = true;
    }
    req->cv.notify_all();
  }
  inflight_blocks_ -= batch->blocks.size();
  inflight_batches_ -= 1;
  backpressure_cv_.notify_all();
  drain_cv_.notify_all();
}

void CodecServer::run_shard(Batch& batch, size_t begin, size_t end) const {
  try {
    // Straight into the batch's index-aligned result slots through the
    // codec's batch kernels — coalesced server batches hit vectorized
    // overrides (and the prefix-sum payload scatter for compress) the same
    // way engine stream jobs do.
    const auto views =
        to_views(std::span<const Block>(batch.blocks).subspan(begin, end - begin));
    if (batch.kind == RequestKind::kCompress) {
      batch.codec->compress_batch(views, batch.payloads.data() + begin);
    } else {
      batch.codec->analyze_batch(views, batch.analyses.data() + begin);
    }
  } catch (...) {
    // Keep the exception out of the engine so the batch still drains and
    // completes; it is delivered per request by complete_batch.
    MutexLock lk(batch.error_m);
    if (!batch.error) batch.error = std::current_exception();
  }
}

void CodecServer::complete_batch(const std::shared_ptr<Batch>& batch) {
  if (batch->delivered.exchange(true)) return;  // see Batch::delivered
  const auto now = std::chrono::steady_clock::now();

  // One locked read of the first-shard error; every shard body finished
  // (and published through the done counter) before this hook runs.
  std::exception_ptr batch_error;
  {
    MutexLock elk(batch->error_m);
    batch_error = batch->error;
  }

  // Scatter per-request responses sequentially — same bytes no matter which
  // worker runs this hook. Delivery (request mutex + cv) happens after the
  // response is fully built.
  for (const auto& req : batch->requests) {
    Response resp;
    resp.tag = req->tag;
    resp.deadline_missed = req->deadline.count() > 0 && now - req->submitted > req->deadline;
    resp.analysis.ratios = RatioAccumulator(batch->mag_bytes);
    if (batch_error) {
      resp.status = ResponseStatus::kError;
      resp.error = batch_error;
    } else if (batch->kind == RequestKind::kCompress) {
      resp.payloads.assign(
          std::make_move_iterator(batch->payloads.begin() + static_cast<ptrdiff_t>(req->offset)),
          std::make_move_iterator(batch->payloads.begin() +
                                  static_cast<ptrdiff_t>(req->offset + req->n_blocks)));
      for (size_t j = 0; j < resp.payloads.size(); ++j) {
        resp.analysis.ratios.add(batch->blocks[req->offset + j].size() * 8,
                                 resp.payloads[j].bit_size);
      }
    } else {
      for (size_t j = 0; j < req->n_blocks; ++j) {
        const BlockAnalysis& a = batch->analyses[req->offset + j];
        resp.analysis.ratios.add(batch->blocks[req->offset + j].size() * 8, a.bit_size);
        resp.analysis.lossy_blocks += a.lossy ? 1 : 0;
        resp.analysis.truncated_symbols += a.truncated_symbols;
        resp.analysis.cache.record(a.cache_probed, a.cache_hit, a.cache_evicted,
                                   a.cache_collision);
      }
      if (batch->kind == RequestKind::kAnalyze) {
        // kDecide keeps the per-block vector empty — aggregates only.
        resp.analysis.blocks.assign(
            batch->analyses.begin() + static_cast<ptrdiff_t>(req->offset),
            batch->analyses.begin() + static_cast<ptrdiff_t>(req->offset + req->n_blocks));
      }
    }
    MutexLock rlk(req->m);
    req->resp = std::move(resp);
    req->done = true;
  }
  for (const auto& req : batch->requests) req->cv.notify_all();

  {
    MutexLock lk(lock_);
    Stream& st = *streams_.at(batch->stream);
    for (const auto& req : batch->requests) {
      st.stats.requests += 1;
      if (req->deadline.count() > 0 && now - req->submitted > req->deadline) {
        st.stats.deadline_misses += 1;
      }
      st.stats.latency.record(std::chrono::duration<double>(now - req->submitted).count());
    }
    if (!batch_error) {
      CommitStats& cs = st.stats.commit;
      if (batch->kind == RequestKind::kCompress) {
        // Payload batches fold the size/burst counters only; the decision
        // bookkeeping (lossy/truncated/lossless/cache) is an analyze-path
        // concept the compress kernels do not report. bit_size/is_compressed
        // are scalar fields, untouched by the payload moves above.
        for (size_t i = 0; i < batch->payloads.size(); ++i) {
          const CompressedBlock& p = batch->payloads[i];
          cs.blocks += 1;
          cs.uncompressed_blocks += p.is_compressed ? 0 : 1;
          cs.bursts += bursts_for_bits(p.bit_size, batch->mag_bytes, batch->blocks[i].size());
          cs.original_bits += batch->blocks[i].size() * 8;
          cs.final_bits += p.bit_size;
        }
      } else {
        for (size_t i = 0; i < batch->analyses.size(); ++i) {
          const BlockAnalysis& a = batch->analyses[i];
          cs.blocks += 1;
          cs.lossy_blocks += a.lossy ? 1 : 0;
          cs.uncompressed_blocks += a.is_compressed ? 0 : 1;
          cs.bursts += bursts_for_bits(a.bit_size, batch->mag_bytes, batch->blocks[i].size());
          cs.truncated_symbols += a.truncated_symbols;
          cs.original_bits += batch->blocks[i].size() * 8;
          cs.lossless_bits += a.lossless_bits;
          cs.final_bits += a.bit_size;
          cs.cache.record(a.cache_probed, a.cache_hit, a.cache_evicted, a.cache_collision);
        }
      }
    }
    inflight_blocks_ -= batch->blocks.size();
    inflight_batches_ -= 1;
    // Notify while still holding the lock: a woken drain() can only pass its
    // predicate after we release it, so this worker is done touching the
    // server before ~CodecServer can possibly run.
    backpressure_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

void CodecServer::flush_stream(StreamId s) {
  MutexLock lk(lock_);
  dispatch_locked(s);
}

void CodecServer::drain() {
  MutexLock lk(lock_);
  for (StreamId s = 0; s < streams_.size(); ++s) dispatch_locked(s);
  while (inflight_batches_ != 0) drain_cv_.wait(lock_);
}

StreamStats CodecServer::stream_stats(StreamId s) const {
  MutexLock lk(lock_);
  return streams_.at(s)->stats;
}

StreamStats CodecServer::aggregate_stats() const {
  MutexLock lk(lock_);
  StreamStats out;
  for (const auto& st : streams_) out.merge(st->stats);
  return out;
}

size_t CodecServer::inflight_blocks() const {
  MutexLock lk(lock_);
  return inflight_blocks_;
}

}  // namespace slc

#include "server/codec_server.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "core/fingerprint_cache.h"

namespace slc {

namespace {

int to_engine_priority(StreamPriority p) {
  switch (p) {
    case StreamPriority::kBulk:
      return CodecEngine::kPriorityBulk;
    case StreamPriority::kNormal:
      return (CodecEngine::kPriorityBulk + CodecEngine::kPriorityLatency) / 2;
    case StreamPriority::kLatency:
      return CodecEngine::kPriorityLatency;
  }
  return CodecEngine::kPriorityBulk;
}

}  // namespace

/// One dispatched batch: the concatenated blocks of the requests it carries,
/// index-aligned analysis slots, and a shard-completion counter. Exceptions
/// are caught inside the shard body (never surfaced to the engine) so the
/// counter always reaches the block count and the batch always completes —
/// errors are delivered per request instead.
struct CodecServer::Batch {
  CodecServer* server = nullptr;
  StreamId stream = 0;
  std::shared_ptr<const Compressor> codec;
  size_t mag_bytes = kDefaultMagBytes;
  std::vector<Block> blocks;
  std::vector<BlockAnalysis> analyses;
  std::vector<std::shared_ptr<detail::ServerRequest>> requests;
  std::atomic<size_t> done{0};

  std::mutex error_m;
  std::exception_ptr error;  ///< first shard exception, if any
};

// --- ServerTicket -----------------------------------------------------------

bool ServerTicket::ready() const {
  if (!req_) return false;
  std::lock_guard<std::mutex> lk(req_->m);
  return req_->done;
}

CodecEngine::StreamAnalysis ServerTicket::wait() {
  if (!req_) throw std::logic_error("ServerTicket::wait on an empty ticket");
  auto req = std::move(req_);  // one-shot: consume before any throw
  // The request may still be coalescing in its stream's pending batch; a
  // waiter must force dispatch or it would block until someone else fills
  // the batch. Skip the flush when already complete so waiting a finished
  // ticket does not dispatch the stream's unrelated half-full batch.
  // (Called without holding req->m: the server lock nests outside it.)
  bool done;
  {
    std::lock_guard<std::mutex> dlk(req->m);
    done = req->done;
  }
  if (!done && server_) server_->flush_stream(stream_);
  std::unique_lock<std::mutex> lk(req->m);
  req->cv.wait(lk, [&] { return req->done; });
  if (req->error) {
    const std::exception_ptr e = req->error;
    lk.unlock();
    std::rethrow_exception(e);
  }
  return std::move(req->result);
}

// --- CodecServer ------------------------------------------------------------

CodecServer::CodecServer() : CodecServer(Config{}) {}

CodecServer::CodecServer(Config cfg) : cfg_(std::move(cfg)) {
  engine_ = cfg_.engine ? cfg_.engine : CodecEngine::shared_default();
  if (cfg_.batch_blocks == 0) cfg_.batch_blocks = 1;
}

CodecServer::~CodecServer() { drain(); }

StreamId CodecServer::open_stream(StreamConfig cfg) {
  auto stream = std::make_unique<Stream>();
  if (cfg.use_fingerprint_cache && !cfg.options.fingerprint_cache) {
    if (cfg_.share_fingerprint_cache) {
      cfg.options.fingerprint_cache = engine_->fingerprint_cache();
    } else {
      FingerprintCache::Config cache_cfg;
      cache_cfg.verify_on_hit = cfg_.verify_cache_hits;
      cfg.options.fingerprint_cache = std::make_shared<FingerprintCache>(cache_cfg);
    }
  }
  // Registry lookup first: an unknown codec or missing training data must
  // fail open_stream, not the first request.
  stream->codec = CodecRegistry::instance().create(cfg.codec, cfg.options);
  stream->engine_priority = to_engine_priority(cfg.priority);
  stream->cfg = std::move(cfg);
  std::lock_guard<std::mutex> lk(lock_);
  streams_.push_back(std::move(stream));
  return static_cast<StreamId>(streams_.size() - 1);
}

size_t CodecServer::num_streams() const {
  std::lock_guard<std::mutex> lk(lock_);
  return streams_.size();
}

const std::string& CodecServer::stream_name(StreamId s) const {
  std::lock_guard<std::mutex> lk(lock_);
  return streams_.at(s)->cfg.name;
}

ServerTicket CodecServer::submit(StreamId s, std::span<const uint8_t> data) {
  return submit_blocks(s, to_blocks(data));
}

ServerTicket CodecServer::submit(StreamId s, std::span<const Block> blocks) {
  return submit_blocks(s, std::vector<Block>(blocks.begin(), blocks.end()));
}

ServerTicket CodecServer::submit_blocks(StreamId s, std::vector<Block>&& blocks) {
  auto req = std::make_shared<detail::ServerRequest>();
  req->submitted = std::chrono::steady_clock::now();
  req->n_blocks = blocks.size();

  std::unique_lock<std::mutex> lk(lock_);
  Stream& st = *streams_.at(s);

  if (blocks.empty()) {
    // Nothing to schedule; complete inline so the request can never be
    // stranded in an empty batch.
    st.stats.requests += 1;
    st.stats.latency.record(0.0);
    req->result.ratios = RatioAccumulator(st.cfg.options.mag_bytes);
    std::lock_guard<std::mutex> rlk(req->m);
    req->done = true;
    return ServerTicket(this, s, std::move(req));
  }

  const size_t n = blocks.size();
  if (cfg_.max_inflight_blocks != 0) {
    // Backpressure: admit once dispatched + queued blocks leave room. The
    // empty-server escape admits a request larger than the whole budget
    // (dispatched immediately below) instead of deadlocking. Admission is a
    // FIFO turnstile — each submitter waits its turn — so an oversized
    // request cannot be starved by a steady stream of small ones: younger
    // submitters queue behind it while the server drains to empty.
    const uint64_t turn = admit_tail_++;
    auto fits = [&] {
      return inflight_blocks_ + pending_blocks_total_ + n <= cfg_.max_inflight_blocks ||
             inflight_blocks_ + pending_blocks_total_ == 0;
    };
    auto admitted = [&] { return admit_head_ == turn && fits(); };
    while (!admitted()) {
      // Queued-but-undispatched batches never retire on their own; push
      // them out on every re-check — a submit admitted ahead of us may
      // have parked new pending blocks — so the wait is always on engine
      // progress.
      if (!fits()) {
        for (StreamId sid = 0; sid < streams_.size(); ++sid) dispatch_locked(sid, lk);
      }
      if (admitted()) break;
      backpressure_cv_.wait(lk);
    }
    admit_head_ += 1;
    backpressure_cv_.notify_all();  // hand the turnstile to the next waiter
  }

  req->offset = st.pending_blocks.size();
  st.pending_blocks.insert(st.pending_blocks.end(), std::make_move_iterator(blocks.begin()),
                           std::make_move_iterator(blocks.end()));
  st.pending.push_back(req);
  pending_blocks_total_ += n;
  // Over budget is only reachable through the empty-server escape (an
  // oversized request): dispatch at once so the bound is restored as soon
  // as the batch retires.
  const bool over_budget = cfg_.max_inflight_blocks != 0 &&
                           inflight_blocks_ + pending_blocks_total_ > cfg_.max_inflight_blocks;
  if (st.pending_blocks.size() >= cfg_.batch_blocks || over_budget) dispatch_locked(s, lk);
  return ServerTicket(this, s, std::move(req));
}

void CodecServer::dispatch_locked(StreamId s, std::unique_lock<std::mutex>& lk) {
  Stream& st = *streams_.at(s);
  if (st.pending.empty()) return;

  auto batch = std::make_shared<Batch>();
  batch->server = this;
  batch->stream = s;
  batch->codec = st.codec;
  batch->mag_bytes = st.cfg.options.mag_bytes;
  batch->blocks = std::move(st.pending_blocks);
  batch->requests = std::move(st.pending);
  st.pending_blocks.clear();
  st.pending.clear();
  batch->analyses.resize(batch->blocks.size());

  pending_blocks_total_ -= batch->blocks.size();
  inflight_blocks_ += batch->blocks.size();
  inflight_batches_ += 1;
  st.stats.batches += 1;

  // One engine job per batch at the stream's priority. Completion is driven
  // by the last shard (the body counts blocks), which scatters results and
  // releases the budget — so fire-and-forget clients still retire their
  // backpressure debt; the future only matters for the abandonment check.
  auto fut = engine_->submit(
      batch->blocks.size(),
      [batch](size_t begin, size_t end, unsigned) {
        batch->server->run_shard(*batch, begin, end);
        const size_t finished = batch->done.fetch_add(end - begin) + (end - begin);
        if (finished == batch->blocks.size()) batch->server->complete_batch(batch);
      },
      st.engine_priority);
  if (fut.ready() && batch->done.load() < batch->blocks.size()) {
    // Ready with no shard run: the engine abandoned the job at enqueue (it
    // was shut down). Fail the batch inline so tickets throw the stored
    // exception instead of the server hanging in drain()/~CodecServer.
    try {
      fut.wait();
      std::lock_guard<std::mutex> elk(batch->error_m);
      batch->error = std::make_exception_ptr(
          std::runtime_error("CodecServer: engine rejected the batch"));
    } catch (...) {
      std::lock_guard<std::mutex> elk(batch->error_m);
      batch->error = std::current_exception();
    }
    lk.unlock();  // complete_batch takes lock_ (and request mutexes) itself
    complete_batch(batch);
    lk.lock();
  }
}

void CodecServer::run_shard(Batch& batch, size_t begin, size_t end) const {
  try {
    // Straight into the batch's index-aligned analysis slots through the
    // codec's batch kernel — coalesced server batches hit vectorized
    // overrides the same way engine stream jobs do.
    batch.codec->analyze_batch(
        to_views(std::span<const Block>(batch.blocks).subspan(begin, end - begin)),
        batch.analyses.data() + begin);
  } catch (...) {
    // Keep the exception out of the engine so the batch still drains and
    // completes; it is delivered per request by complete_batch.
    std::lock_guard<std::mutex> lk(batch.error_m);
    if (!batch.error) batch.error = std::current_exception();
  }
}

void CodecServer::complete_batch(const std::shared_ptr<Batch>& batch) {
  const auto now = std::chrono::steady_clock::now();

  // Scatter per-request results sequentially — same bytes no matter which
  // worker runs this hook. Delivery (request mutex + cv) happens after the
  // result is fully built.
  for (const auto& req : batch->requests) {
    CodecEngine::StreamAnalysis res;
    res.ratios = RatioAccumulator(batch->mag_bytes);
    if (!batch->error) {
      res.blocks.assign(batch->analyses.begin() + static_cast<ptrdiff_t>(req->offset),
                        batch->analyses.begin() + static_cast<ptrdiff_t>(req->offset + req->n_blocks));
      for (size_t j = 0; j < res.blocks.size(); ++j) {
        const BlockAnalysis& a = res.blocks[j];
        res.ratios.add(batch->blocks[req->offset + j].size() * 8, a.bit_size);
        res.lossy_blocks += a.lossy ? 1 : 0;
        res.truncated_symbols += a.truncated_symbols;
        res.cache.record(a.cache_probed, a.cache_hit, a.cache_evicted, a.cache_collision);
      }
    }
    std::lock_guard<std::mutex> rlk(req->m);
    req->error = batch->error;
    req->result = std::move(res);
    req->done = true;
  }
  for (const auto& req : batch->requests) req->cv.notify_all();

  {
    std::lock_guard<std::mutex> lk(lock_);
    Stream& st = *streams_.at(batch->stream);
    for (const auto& req : batch->requests) {
      st.stats.requests += 1;
      st.stats.latency.record(std::chrono::duration<double>(now - req->submitted).count());
    }
    if (!batch->error) {
      CommitStats& cs = st.stats.commit;
      for (size_t i = 0; i < batch->analyses.size(); ++i) {
        const BlockAnalysis& a = batch->analyses[i];
        cs.blocks += 1;
        cs.lossy_blocks += a.lossy ? 1 : 0;
        cs.uncompressed_blocks += a.is_compressed ? 0 : 1;
        cs.bursts += bursts_for_bits(a.bit_size, batch->mag_bytes, batch->blocks[i].size());
        cs.truncated_symbols += a.truncated_symbols;
        cs.original_bits += batch->blocks[i].size() * 8;
        cs.lossless_bits += a.lossless_bits;
        cs.final_bits += a.bit_size;
        cs.cache.record(a.cache_probed, a.cache_hit, a.cache_evicted, a.cache_collision);
      }
    }
    inflight_blocks_ -= batch->blocks.size();
    inflight_batches_ -= 1;
    // Notify while still holding the lock: a woken drain() can only pass its
    // predicate after we release it, so this worker is done touching the
    // server before ~CodecServer can possibly run.
    backpressure_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

void CodecServer::flush_stream(StreamId s) {
  std::unique_lock<std::mutex> lk(lock_);
  dispatch_locked(s, lk);
}

void CodecServer::drain() {
  std::unique_lock<std::mutex> lk(lock_);
  for (StreamId s = 0; s < streams_.size(); ++s) dispatch_locked(s, lk);
  drain_cv_.wait(lk, [&] { return inflight_batches_ == 0; });
}

StreamStats CodecServer::stream_stats(StreamId s) const {
  std::lock_guard<std::mutex> lk(lock_);
  return streams_.at(s)->stats;
}

StreamStats CodecServer::aggregate_stats() const {
  std::lock_guard<std::mutex> lk(lock_);
  StreamStats out;
  for (const auto& st : streams_) out.merge(st->stats);
  return out;
}

size_t CodecServer::inflight_blocks() const {
  std::lock_guard<std::mutex> lk(lock_);
  return inflight_blocks_;
}

}  // namespace slc

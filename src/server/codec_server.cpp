#include "server/codec_server.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "core/fingerprint_cache.h"

namespace slc {

namespace {

int to_engine_priority(StreamPriority p) {
  switch (p) {
    case StreamPriority::kBulk:
      return CodecEngine::kPriorityBulk;
    case StreamPriority::kNormal:
      return (CodecEngine::kPriorityBulk + CodecEngine::kPriorityLatency) / 2;
    case StreamPriority::kLatency:
      return CodecEngine::kPriorityLatency;
  }
  return CodecEngine::kPriorityBulk;
}

}  // namespace

/// One dispatched batch: the concatenated blocks of the requests it carries,
/// index-aligned analysis slots, and a shard-completion counter. Exceptions
/// are caught inside the shard body (never surfaced to the engine) so the
/// counter always reaches the block count and the batch always completes —
/// errors are delivered per request instead.
struct CodecServer::Batch {
  CodecServer* server = nullptr;
  StreamId stream = 0;
  std::shared_ptr<const Compressor> codec;
  size_t mag_bytes = kDefaultMagBytes;
  std::vector<Block> blocks;
  std::vector<BlockAnalysis> analyses;
  std::vector<std::shared_ptr<detail::ServerRequest>> requests;
  std::atomic<size_t> done{0};

  /// First-wins delivery guard between complete_batch (all shards ran) and
  /// fail_batch_locked (no shard will ever run). The two are mutually
  /// exclusive by construction — a job is abandoned only while shards remain
  /// unclaimed, so `done` can never reach the block count afterwards — but
  /// the inline at-enqueue rejection check and the abandon hook can overlap
  /// on a racing shutdown, and exactly one of them may deliver.
  std::atomic<bool> delivered{false};

  Mutex error_m;  ///< leaf lock: nothing else is acquired under it
  std::exception_ptr error SLC_GUARDED_BY(error_m);  ///< first shard exception
};

// --- ServerTicket -----------------------------------------------------------

bool ServerTicket::ready() const {
  if (!req_) return false;
  MutexLock lk(req_->m);
  return req_->done;
}

CodecEngine::StreamAnalysis ServerTicket::wait() {
  if (!req_) throw std::logic_error("ServerTicket::wait on an empty ticket");
  auto req = std::move(req_);  // one-shot: consume before any throw
  // The request may still be coalescing in its stream's pending batch; a
  // waiter must force dispatch or it would block until someone else fills
  // the batch. Skip the flush when already complete so waiting a finished
  // ticket does not dispatch the stream's unrelated half-full batch.
  // (Called without holding req->m: the server lock nests outside it.)
  bool done;
  {
    MutexLock lk(req->m);
    done = req->done;
  }
  if (!done && server_) server_->flush_stream(stream_);
  std::exception_ptr err;
  CodecEngine::StreamAnalysis result;
  {
    MutexLock lk(req->m);
    while (!req->done) req->cv.wait(req->m);
    err = req->error;
    if (!err) result = std::move(req->result);
  }
  // Rethrow outside the lock; the result move already happened under it.
  if (err) std::rethrow_exception(err);
  return result;
}

// --- CodecServer ------------------------------------------------------------

CodecServer::CodecServer() : CodecServer(Config{}) {}

CodecServer::CodecServer(Config cfg) : cfg_(std::move(cfg)) {
  engine_ = cfg_.engine ? cfg_.engine : CodecEngine::shared_default();
  if (cfg_.batch_blocks == 0) cfg_.batch_blocks = 1;
}

CodecServer::~CodecServer() { drain(); }

StreamId CodecServer::open_stream(StreamConfig cfg) {
  auto stream = std::make_unique<Stream>();
  if (cfg.use_fingerprint_cache && !cfg.options.fingerprint_cache) {
    if (cfg_.share_fingerprint_cache) {
      cfg.options.fingerprint_cache = engine_->fingerprint_cache();
    } else {
      FingerprintCache::Config cache_cfg;
      cache_cfg.verify_on_hit = cfg_.verify_cache_hits;
      cfg.options.fingerprint_cache = std::make_shared<FingerprintCache>(cache_cfg);
    }
  }
  // Registry lookup first: an unknown codec or missing training data must
  // fail open_stream, not the first request.
  stream->codec = CodecRegistry::instance().create(cfg.codec, cfg.options);
  stream->engine_priority = to_engine_priority(cfg.priority);
  stream->cfg = std::move(cfg);
  MutexLock lk(lock_);
  streams_.push_back(std::move(stream));
  return static_cast<StreamId>(streams_.size() - 1);
}

size_t CodecServer::num_streams() const {
  MutexLock lk(lock_);
  return streams_.size();
}

const std::string& CodecServer::stream_name(StreamId s) const {
  MutexLock lk(lock_);
  // The returned reference outlives the lock safely: streams are never
  // removed, Stream objects are pointer-stable, and cfg.name is immutable
  // after open_stream.
  return streams_.at(s)->cfg.name;
}

ServerTicket CodecServer::submit(StreamId s, std::span<const uint8_t> data) {
  return submit_blocks(s, to_blocks(data));
}

ServerTicket CodecServer::submit(StreamId s, std::span<const Block> blocks) {
  return submit_blocks(s, std::vector<Block>(blocks.begin(), blocks.end()));
}

ServerTicket CodecServer::submit_blocks(StreamId s, std::vector<Block>&& blocks) {
  auto req = std::make_shared<detail::ServerRequest>();
  req->submitted = std::chrono::steady_clock::now();
  req->n_blocks = blocks.size();

  MutexLock lk(lock_);
  Stream& st = *streams_.at(s);

  if (blocks.empty()) {
    // Nothing to schedule; complete inline so the request can never be
    // stranded in an empty batch.
    st.stats.requests += 1;
    st.stats.latency.record(0.0);
    MutexLock rlk(req->m);
    req->result.ratios = RatioAccumulator(st.cfg.options.mag_bytes);
    req->done = true;
    return ServerTicket(this, s, std::move(req));
  }

  const size_t n = blocks.size();
  if (cfg_.max_inflight_blocks != 0) {
    // Backpressure: admit once dispatched + queued blocks leave room. The
    // empty-server escape (admit_fits_locked) admits a request larger than
    // the whole budget (dispatched immediately below) instead of
    // deadlocking. Admission is a FIFO turnstile — each submitter waits its
    // turn — so an oversized request cannot be starved by a steady stream
    // of small ones: younger submitters queue behind it while the server
    // drains to empty.
    const uint64_t turn = admit_tail_++;
    while (!(admit_head_ == turn && admit_fits_locked(n))) {
      // Queued-but-undispatched batches never retire on their own; push
      // them out on every re-check — a submit admitted ahead of us may
      // have parked new pending blocks — so the wait is always on engine
      // progress.
      if (!admit_fits_locked(n)) {
        for (StreamId sid = 0; sid < streams_.size(); ++sid) dispatch_locked(sid);
      }
      if (admit_head_ == turn && admit_fits_locked(n)) break;
      backpressure_cv_.wait(lock_);
    }
    admit_head_ += 1;
    backpressure_cv_.notify_all();  // hand the turnstile to the next waiter
  }

  req->offset = st.pending_blocks.size();
  st.pending_blocks.insert(st.pending_blocks.end(), std::make_move_iterator(blocks.begin()),
                           std::make_move_iterator(blocks.end()));
  st.pending.push_back(req);
  pending_blocks_total_ += n;
  // Over budget is only reachable through the empty-server escape (an
  // oversized request): dispatch at once so the bound is restored as soon
  // as the batch retires.
  const bool over_budget = cfg_.max_inflight_blocks != 0 &&
                           inflight_blocks_ + pending_blocks_total_ > cfg_.max_inflight_blocks;
  if (st.pending_blocks.size() >= cfg_.batch_blocks || over_budget) dispatch_locked(s);
  return ServerTicket(this, s, std::move(req));
}

bool CodecServer::admit_fits_locked(size_t n) const {
  return inflight_blocks_ + pending_blocks_total_ + n <= cfg_.max_inflight_blocks ||
         inflight_blocks_ + pending_blocks_total_ == 0;
}

void CodecServer::dispatch_locked(StreamId s) {
  Stream& st = *streams_.at(s);
  if (st.pending.empty()) return;

  auto batch = std::make_shared<Batch>();
  batch->server = this;
  batch->stream = s;
  batch->codec = st.codec;
  batch->mag_bytes = st.cfg.options.mag_bytes;
  batch->blocks = std::move(st.pending_blocks);
  batch->requests = std::move(st.pending);
  st.pending_blocks.clear();
  st.pending.clear();
  batch->analyses.resize(batch->blocks.size());

  pending_blocks_total_ -= batch->blocks.size();
  inflight_blocks_ += batch->blocks.size();
  inflight_batches_ += 1;
  st.stats.batches += 1;

  // One engine job per batch at the stream's priority. Completion is driven
  // by the last shard (the body counts blocks), which scatters results and
  // releases the budget — so fire-and-forget clients still retire their
  // backpressure debt; the future only matters for the abandonment check.
  auto fut = engine_->submit(
      batch->blocks.size(),
      [batch](size_t begin, size_t end, unsigned) {
        batch->server->run_shard(*batch, begin, end);
        const size_t finished = batch->done.fetch_add(end - begin) + (end - begin);
        if (finished == batch->blocks.size()) batch->server->complete_batch(batch);
      },
      st.engine_priority);
  // If the engine is shut down with this batch still queued (accepted at
  // enqueue, shards never claimed), the job is abandoned and no shard will
  // ever complete it — without this hook every ticket wait() and the server's
  // own drain()/~CodecServer would hang. The hook runs on the shutdown
  // thread, outside every engine lock, so taking lock_ here is safe.
  CodecServer* self = this;
  fut.on_abandon([self, batch](std::exception_ptr reason) {
    MutexLock lk(self->lock_);
    self->fail_batch_locked(batch, reason);
  });
  if (fut.ready() && batch->done.load() < batch->blocks.size()) {
    // Ready with no shard run: the engine abandoned the job at enqueue (it
    // was shut down). Fail the batch inline so tickets throw the stored
    // exception instead of the server hanging in drain()/~CodecServer.
    // Delivery happens without dropping lock_ — the old unlock/relock here
    // let admission-turnstile state shift mid-dispatch under a waiter
    // parked in submit_blocks.
    std::exception_ptr err;
    try {
      fut.wait();
      err = std::make_exception_ptr(
          std::runtime_error("CodecServer: engine rejected the batch"));
    } catch (...) {
      err = std::current_exception();
    }
    fail_batch_locked(batch, err);
  }
}

void CodecServer::fail_batch_locked(const std::shared_ptr<Batch>& batch,
                                    std::exception_ptr err) {
  if (batch->delivered.exchange(true)) return;  // abandon hook vs inline check
  const auto now = std::chrono::steady_clock::now();
  Stream& st = *streams_.at(batch->stream);
  for (const auto& req : batch->requests) {
    st.stats.requests += 1;
    st.stats.latency.record(std::chrono::duration<double>(now - req->submitted).count());
    {
      MutexLock rlk(req->m);  // lock order: lock_ then req->m
      req->result.ratios = RatioAccumulator(batch->mag_bytes);
      req->error = err;
      req->done = true;
    }
    req->cv.notify_all();
  }
  inflight_blocks_ -= batch->blocks.size();
  inflight_batches_ -= 1;
  backpressure_cv_.notify_all();
  drain_cv_.notify_all();
}

void CodecServer::run_shard(Batch& batch, size_t begin, size_t end) const {
  try {
    // Straight into the batch's index-aligned analysis slots through the
    // codec's batch kernel — coalesced server batches hit vectorized
    // overrides the same way engine stream jobs do.
    batch.codec->analyze_batch(
        to_views(std::span<const Block>(batch.blocks).subspan(begin, end - begin)),
        batch.analyses.data() + begin);
  } catch (...) {
    // Keep the exception out of the engine so the batch still drains and
    // completes; it is delivered per request by complete_batch.
    MutexLock lk(batch.error_m);
    if (!batch.error) batch.error = std::current_exception();
  }
}

void CodecServer::complete_batch(const std::shared_ptr<Batch>& batch) {
  if (batch->delivered.exchange(true)) return;  // see Batch::delivered
  const auto now = std::chrono::steady_clock::now();

  // One locked read of the first-shard error; every shard body finished
  // (and published through the done counter) before this hook runs.
  std::exception_ptr batch_error;
  {
    MutexLock elk(batch->error_m);
    batch_error = batch->error;
  }

  // Scatter per-request results sequentially — same bytes no matter which
  // worker runs this hook. Delivery (request mutex + cv) happens after the
  // result is fully built.
  for (const auto& req : batch->requests) {
    CodecEngine::StreamAnalysis res;
    res.ratios = RatioAccumulator(batch->mag_bytes);
    if (!batch_error) {
      res.blocks.assign(batch->analyses.begin() + static_cast<ptrdiff_t>(req->offset),
                        batch->analyses.begin() + static_cast<ptrdiff_t>(req->offset + req->n_blocks));
      for (size_t j = 0; j < res.blocks.size(); ++j) {
        const BlockAnalysis& a = res.blocks[j];
        res.ratios.add(batch->blocks[req->offset + j].size() * 8, a.bit_size);
        res.lossy_blocks += a.lossy ? 1 : 0;
        res.truncated_symbols += a.truncated_symbols;
        res.cache.record(a.cache_probed, a.cache_hit, a.cache_evicted, a.cache_collision);
      }
    }
    MutexLock rlk(req->m);
    req->error = batch_error;
    req->result = std::move(res);
    req->done = true;
  }
  for (const auto& req : batch->requests) req->cv.notify_all();

  {
    MutexLock lk(lock_);
    Stream& st = *streams_.at(batch->stream);
    for (const auto& req : batch->requests) {
      st.stats.requests += 1;
      st.stats.latency.record(std::chrono::duration<double>(now - req->submitted).count());
    }
    if (!batch_error) {
      CommitStats& cs = st.stats.commit;
      for (size_t i = 0; i < batch->analyses.size(); ++i) {
        const BlockAnalysis& a = batch->analyses[i];
        cs.blocks += 1;
        cs.lossy_blocks += a.lossy ? 1 : 0;
        cs.uncompressed_blocks += a.is_compressed ? 0 : 1;
        cs.bursts += bursts_for_bits(a.bit_size, batch->mag_bytes, batch->blocks[i].size());
        cs.truncated_symbols += a.truncated_symbols;
        cs.original_bits += batch->blocks[i].size() * 8;
        cs.lossless_bits += a.lossless_bits;
        cs.final_bits += a.bit_size;
        cs.cache.record(a.cache_probed, a.cache_hit, a.cache_evicted, a.cache_collision);
      }
    }
    inflight_blocks_ -= batch->blocks.size();
    inflight_batches_ -= 1;
    // Notify while still holding the lock: a woken drain() can only pass its
    // predicate after we release it, so this worker is done touching the
    // server before ~CodecServer can possibly run.
    backpressure_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

void CodecServer::flush_stream(StreamId s) {
  MutexLock lk(lock_);
  dispatch_locked(s);
}

void CodecServer::drain() {
  MutexLock lk(lock_);
  for (StreamId s = 0; s < streams_.size(); ++s) dispatch_locked(s);
  while (inflight_batches_ != 0) drain_cv_.wait(lock_);
}

StreamStats CodecServer::stream_stats(StreamId s) const {
  MutexLock lk(lock_);
  return streams_.at(s)->stats;
}

StreamStats CodecServer::aggregate_stats() const {
  MutexLock lk(lock_);
  StreamStats out;
  for (const auto& st : streams_) out.merge(st->stats);
  return out;
}

size_t CodecServer::inflight_blocks() const {
  MutexLock lk(lock_);
  return inflight_blocks_;
}

}  // namespace slc

// CodecServer: multi-stream serving front-end over the CodecEngine.
//
// A server manages N independent client *streams*. Each stream names its
// codec in the CodecRegistry, carries its own CodecOptions (MAG, lossy
// threshold — the stream's error budget — and training sample), a
// scheduling priority, a fingerprint-cache mode and an admission policy,
// and owns a FIFO of typed requests. The server:
//
//   * coalesces small requests into engine-sized batches (one engine job per
//     batch, `Config::batch_blocks` blocks), so a thousand 1 KB requests do
//     not pay a thousand queue round-trips;
//   * serves three request kinds through one contract (Request/Response):
//     size-only analysis, decision aggregates, and full compressed payloads
//     (the codec's batched compress kernels, per-request payload scatter);
//   * flushes partial batches on a timer: a request is dispatched no later
//     than its deadline budget (or `Config::max_coalesce_delay` without
//     one), so a submit lull can no longer strand a coalescing batch;
//   * maps stream priority onto the engine's priority-aware shard claim,
//     boosts batches that carry explicit deadlines to
//     CodecEngine::kPriorityDeadline, and forwards the batch's earliest
//     absolute deadline so the engine drains same-band batches
//     earliest-deadline-first;
//   * enforces a bounded in-flight budget (`Config::max_inflight_blocks`):
//     AdmissionPolicy::kBlock streams wait (backpressure) while
//     AdmissionPolicy::kReject streams get an immediate kRejected response
//     instead of queueing — overload sheds load instead of growing latency;
//   * tracks per-stream and aggregate CommitStats, request-latency
//     percentiles (PercentileTracker, p50/p99), rejections and deadline
//     misses.
//
// Stream lifecycle: open_stream() -> submit() xN (tickets) -> wait()/drain().
// Streams live as long as the server; there is no close — drain() is the
// barrier, and the destructor drains.
//
// Determinism: a request's Response payloads/analysis and a stream's
// CommitStats are byte-identical for any engine thread count. Per-block
// results do not depend on which batch carried them; they land in
// index-aligned slots; the scatter to per-request responses and the stats
// fold walk blocks in order on a single thread; cross-batch merges add
// integer counters, which commute. Batch *boundaries* (StreamStats::batches)
// additionally depend on wall clock (the coalesce timer) and backpressure
// waits; the latency percentiles, `rejected` and `deadline_misses` are wall
// clock too — none of those four are covered by the guarantee.
//
// Threading: any thread may call any member; the server is internally
// locked. Tickets may be waited from any thread. The engine passed in (or
// the shared default) must outlive the server and must not be shut down
// while requests are in flight.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/thread_safety.h"
#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "workloads/approx_memory.h"

namespace slc {

class CodecServer;

/// Scheduling class of a stream, mapped onto the engine's job priority.
enum class StreamPriority {
  kBulk,     ///< throughput work (ratio sweeps, offline analysis)
  kNormal,   ///< default
  kLatency,  ///< latency-sensitive (interactive commits); preempts bulk
};

/// What a Request asks the stream's codec to produce.
enum class RequestKind : uint8_t {
  kAnalyze,   ///< per-block BlockAnalysis + merged ratios (size-only sweep)
  kDecide,    ///< aggregate decision counters only (no per-block vector) —
              ///< same computation as kAnalyze, cheapest response
  kCompress,  ///< full compressed payloads, byte-identical to the direct
              ///< codec path (Compressor::compress_batch)
};

/// How a stream behaves when the server's in-flight budget is saturated.
enum class AdmissionPolicy : uint8_t {
  kBlock,   ///< submit() waits in the FIFO admission turnstile (backpressure)
  kReject,  ///< submit() returns an immediate ResponseStatus::kRejected
            ///< ticket instead of waiting (load shedding; never blocks)
};

/// Fingerprint decision-memo wiring for a stream (lossy TSLC-* streams only
/// — the lossless schemes have no decision to memoize and ignore it).
/// Precedence rule: a non-null `StreamConfig::options.fingerprint_cache`
/// always wins — the mode is only consulted when the caller did not pre-set
/// a cache.
enum class CacheMode : uint8_t {
  kOff,            ///< no memo (default)
  kShared,         ///< the engine's shared cache (cross-stream dedup; its
                   ///< verify mode is configured on the engine via
                   ///< CodecEngine::set_fingerprint_cache before streams open)
  kPrivate,        ///< stream-private cache (isolation: one tenant's traffic
                   ///< cannot evict another's entries)
  kSharedVerify,   ///< a server-owned verify-on-hit cache shared by this
                   ///< server's kSharedVerify streams (paranoia + dedup)
  kPrivateVerify,  ///< stream-private verify-on-hit cache
};

/// Everything needed to open a stream. `options.threshold_bytes` is the
/// stream's error budget for lossy codecs; `options.training_data` is only
/// read while open_stream() constructs the codec.
struct StreamConfig {
  std::string name;
  std::string codec = "E2MC";  ///< CodecRegistry name
  CodecOptions options{};
  StreamPriority priority = StreamPriority::kNormal;
  CacheMode cache_mode = CacheMode::kOff;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
};

using StreamId = uint32_t;

/// One typed request. Exactly one of `blocks` / `bytes` should be set;
/// `blocks` wins when both are non-empty. The spans are copied at submit()
/// and need not outlive the call.
struct Request {
  RequestKind kind = RequestKind::kAnalyze;
  /// Flat byte buffer, sliced into 128 B blocks (ragged tail zero-padded
  /// like to_blocks).
  std::span<const uint8_t> bytes{};
  /// Pre-blocked input (takes precedence over `bytes`).
  std::span<const Block> blocks{};
  /// Completion deadline relative to submit(); 0 = none. A deadline arms the
  /// flush timer with a budget of deadline/2 (capped by
  /// Config::max_coalesce_delay) and boosts the carrying batch to
  /// CodecEngine::kPriorityDeadline. Deadlines are advisory: a late response
  /// is still delivered, with `Response::deadline_missed` set and the
  /// stream's `deadline_misses` counter bumped.
  std::chrono::nanoseconds deadline{0};
  /// Opaque client cookie, echoed back in Response::tag.
  uint64_t tag = 0;
};

enum class ResponseStatus : uint8_t {
  kOk,        ///< served; `analysis` (and `payloads` for kCompress) valid
  kRejected,  ///< shed at admission (AdmissionPolicy::kReject, budget full);
              ///< nothing was scheduled
  kError,     ///< the batch's codec threw; `error` holds the exception
};

/// What a ticket resolves to. `analysis.ratios` is always initialized with
/// the stream's MAG; the rest depends on `status` and the request kind:
/// kAnalyze fills `analysis` (per-block vector + aggregates), kDecide fills
/// only the aggregates (empty `analysis.blocks`), kCompress fills
/// `payloads` (index-aligned with the request's blocks) + the ratio
/// aggregates derived from payload sizes.
struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  uint64_t tag = 0;                ///< echoed Request::tag
  bool deadline_missed = false;    ///< served after Request::deadline elapsed
  std::exception_ptr error{};      ///< set when status == kError
  CodecEngine::StreamAnalysis analysis;
  std::vector<CompressedBlock> payloads;

  bool ok() const { return status == ResponseStatus::kOk; }
  /// Legacy-style error propagation: rethrows the codec exception on
  /// kError, throws std::runtime_error on kRejected, no-op on kOk.
  void throw_if_failed() const {
    if (error) std::rethrow_exception(error);
    if (status == ResponseStatus::kRejected)
      throw std::runtime_error("CodecServer: request rejected at admission");
  }
};

/// Per-stream (or aggregate) serving counters. `commit` is deterministic.
/// `latency` is wall-clock seconds from the steady_clock capture at the top
/// of submit() — before any admission wait or coalescing delay — to response
/// delivery, over served (kOk/kError) requests only. `requests` counts every
/// submit() including rejected ones; `rejected` and `deadline_misses` are
/// wall-clock-dependent shed/miss counters.
struct StreamStats {
  CommitStats commit;
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t rejected = 0;
  uint64_t deadline_misses = 0;
  PercentileTracker latency;

  void merge(const StreamStats& o) {
    commit.merge(o.commit);
    requests += o.requests;
    batches += o.batches;
    rejected += o.rejected;
    deadline_misses += o.deadline_misses;
    latency.merge(o.latency);
  }
};

namespace detail {

/// One queued request: its slice of the batch it rides in, and its own
/// completion state (the batch's last shard delivers into it). Lock order:
/// `m` nests inside the server lock (CodecServer::lock_ may be held while
/// taking m; never the reverse).
struct ServerRequest {
  size_t offset = 0;    ///< first block inside the dispatched batch
  size_t n_blocks = 0;
  RequestKind kind = RequestKind::kAnalyze;
  uint64_t tag = 0;
  std::chrono::nanoseconds deadline{0};  ///< 0 = none
  std::chrono::steady_clock::time_point submitted{};

  Mutex m;
  CondVar cv;  ///< signals done
  bool done SLC_GUARDED_BY(m) = false;
  Response resp SLC_GUARDED_BY(m);
};

}  // namespace detail

/// Ticket for one submitted request. Move-only; wait() is one-shot: it
/// forces dispatch of the request's batch if still coalescing, blocks until
/// the batch completed, and returns the Response (codec errors travel in
/// Response::status / Response::error — wait() itself only throws on
/// misuse). The ticket must not outlive the server.
class ServerTicket {
 public:
  ServerTicket() = default;
  ServerTicket(ServerTicket&&) noexcept = default;
  ServerTicket& operator=(ServerTicket&&) noexcept = default;
  ServerTicket(const ServerTicket&) = delete;
  ServerTicket& operator=(const ServerTicket&) = delete;

  /// True until wait() consumed this ticket (default-constructed: false).
  bool valid() const { return req_ != nullptr; }
  /// Non-blocking: has the request completed (served, failed or rejected)?
  bool ready() const;
  /// Blocks until this request completed; one-shot.
  Response wait();

 private:
  friend class CodecServer;
  ServerTicket(CodecServer* server, StreamId stream, std::shared_ptr<detail::ServerRequest> req)
      : server_(server), stream_(stream), req_(std::move(req)) {}

  CodecServer* server_ = nullptr;
  StreamId stream_ = 0;
  std::shared_ptr<detail::ServerRequest> req_;
};

class CodecServer {
 public:
  struct Config {
    /// Engine batches run on; null picks CodecEngine::shared_default().
    std::shared_ptr<CodecEngine> engine;
    /// Coalescing target: a stream's pending requests dispatch as one engine
    /// job once they cover this many blocks (or on wait()/flush/drain/timer).
    size_t batch_blocks = 256;
    /// Backpressure budget: a kBlock submit() waits while admitting the
    /// request would push dispatched-plus-queued blocks past this (a kReject
    /// submit() is shed instead). 0 = unbounded. Admission is FIFO (so no
    /// request can be starved); a request larger than the whole budget is
    /// admitted — and dispatched immediately — once the server drains empty,
    /// rather than deadlocking. Fairness has a flip side: while such an
    /// oversized request waits at the head of the admission queue, every
    /// younger submit (including a kLatency stream's) waits behind the drain
    /// — and every kReject submit is shed. Size the budget at or above the
    /// largest request you serve — priority preemption then applies from
    /// the moment of dispatch and admission never head-of-line blocks.
    size_t max_inflight_blocks = 16384;
    /// Upper bound on how long a parked request may coalesce before the
    /// timer thread force-dispatches its batch. A request with a deadline
    /// uses min(deadline/2, this) as its budget; one without uses this
    /// directly. 0 disables idle flush for deadline-free requests (legacy
    /// manual-flush behavior) — deadline-carrying requests always arm the
    /// timer.
    std::chrono::microseconds max_coalesce_delay{2000};
  };

  CodecServer();  ///< default Config (shared engine, default batching)
  explicit CodecServer(Config cfg);
  /// Stops the flush timer, drains every stream, then releases the engine.
  ~CodecServer();

  CodecServer(const CodecServer&) = delete;
  CodecServer& operator=(const CodecServer&) = delete;

  /// Opens a stream: resolves `cfg.codec` in the registry (throws
  /// std::out_of_range on an unknown name, std::invalid_argument when the
  /// scheme needs training data the options lack), wires the fingerprint
  /// cache per `cfg.cache_mode` (unless `cfg.options.fingerprint_cache` is
  /// already set — the explicit cache wins) and constructs its codec.
  StreamId open_stream(StreamConfig cfg);

  size_t num_streams() const;
  const std::string& stream_name(StreamId s) const;

  /// Queues a typed request on `s` (input copied). kBlock streams may wait
  /// on backpressure; kReject streams never block. An empty request
  /// completes immediately. See Request/Response for the contract.
  ServerTicket submit(StreamId s, const Request& request);

  /// Legacy byte-stream analyze request.
  [[deprecated("use submit(StreamId, const Request&)")]]
  ServerTicket submit(StreamId s, std::span<const uint8_t> data);
  /// Legacy block-stream analyze request.
  [[deprecated("use submit(StreamId, const Request&)")]]
  ServerTicket submit(StreamId s, std::span<const Block> blocks);

  /// Dispatches `s`'s partially-filled batch now (no-op when empty).
  void flush_stream(StreamId s);
  /// Barrier: dispatches every partial batch and blocks until all in-flight
  /// batches completed. Request errors stay with their tickets.
  void drain();

  /// Counters over completed requests. Call drain() first for run totals.
  StreamStats stream_stats(StreamId s) const;
  /// All streams' counters merged.
  StreamStats aggregate_stats() const;

  /// Dispatched-but-unfinished blocks (the backpressure level).
  size_t inflight_blocks() const;

  CodecEngine& engine() const { return *engine_; }

 private:
  friend class ServerTicket;
  struct Batch;
  struct Stream {
    StreamConfig cfg;
    std::shared_ptr<const Compressor> codec;
    int engine_priority = 0;
    std::vector<Block> pending_blocks;  ///< coalesced, owned until dispatch
    std::vector<std::shared_ptr<detail::ServerRequest>> pending;
    /// Kind of the pending batch (a submit with a different kind dispatches
    /// the pending batch first — batches are kind-homogeneous).
    RequestKind pending_kind = RequestKind::kAnalyze;
    /// Earliest force-dispatch time over `pending` (meaningful only while
    /// `pending` is non-empty; time_point::max() = no timed flush armed).
    std::chrono::steady_clock::time_point flush_by{};
    /// Any pending request carries a deadline -> dispatch at
    /// CodecEngine::kPriorityDeadline.
    bool pending_has_deadline = false;
    /// Earliest absolute deadline over `pending` (kNoDeadline when none) —
    /// forwarded to the engine so same-band batches claim EDF.
    std::chrono::steady_clock::time_point pending_deadline = CodecEngine::kNoDeadline;
    StreamStats stats;
  };

  /// Shared core of submit(); takes ownership of the blocks.
  ServerTicket submit_request(StreamId s, const Request& r, std::vector<Block>&& blocks);
  /// Packages the stream's pending requests into one batch and submits it as
  /// a single engine job at the stream's priority. If the engine abandoned
  /// the job at enqueue (shut down), the batch is failed inline via
  /// fail_batch_locked — without ever dropping lock_.
  void dispatch_locked(StreamId s) SLC_REQUIRES(lock_);
  /// Delivers `err` to every request of a batch the engine never ran and
  /// retires its backpressure debt. Takes each request's mutex while holding
  /// lock_ (the documented lock order).
  void fail_batch_locked(const std::shared_ptr<Batch>& batch, std::exception_ptr err)
      SLC_REQUIRES(lock_);
  /// Backpressure predicate: would admitting `n` more blocks fit the budget
  /// (or is the server drained empty — the oversized-request escape)?
  bool admit_fits_locked(size_t n) const SLC_REQUIRES(lock_);
  /// Runs on the engine worker that finishes a batch's last shard: scatters
  /// per-request responses, folds stream stats, releases backpressure.
  void complete_batch(const std::shared_ptr<Batch>& batch) SLC_EXCLUDES(lock_);
  void run_shard(Batch& batch, size_t begin, size_t end) const;
  /// Body of the flush-timer thread: force-dispatches batches whose
  /// flush_by elapsed, sleeps until the next one (or until notified).
  void timer_loop() SLC_EXCLUDES(lock_);
  /// Lazily builds the server-owned CacheMode::kSharedVerify cache.
  std::shared_ptr<FingerprintCache> shared_verify_cache() SLC_EXCLUDES(lock_);

  Config cfg_;
  std::shared_ptr<CodecEngine> engine_;

  /// Guards every field below. Streams are never removed and Stream objects
  /// are pointer-stable (unique_ptr), but the vector and all Stream contents
  /// (pending queues, stats) are only touched under this lock.
  mutable Mutex lock_;
  CondVar backpressure_cv_;  ///< signals: budget freed / turnstile advanced
  CondVar drain_cv_;         ///< signals: inflight_batches_ reached 0
  CondVar timer_cv_;         ///< signals: new flush_by armed / stopping_
  std::vector<std::unique_ptr<Stream>> streams_ SLC_GUARDED_BY(lock_);
  size_t inflight_blocks_ SLC_GUARDED_BY(lock_) = 0;
  size_t inflight_batches_ SLC_GUARDED_BY(lock_) = 0;
  /// Queued but not yet dispatched, all streams.
  size_t pending_blocks_total_ SLC_GUARDED_BY(lock_) = 0;
  uint64_t admit_head_ SLC_GUARDED_BY(lock_) = 0;  ///< turnstile: next turn to admit
  uint64_t admit_tail_ SLC_GUARDED_BY(lock_) = 0;  ///< next turn to hand out
  bool stopping_ SLC_GUARDED_BY(lock_) = false;    ///< ~CodecServer: timer must exit
  std::shared_ptr<FingerprintCache> shared_verify_cache_ SLC_GUARDED_BY(lock_);
  std::thread timer_;  ///< flush-timer thread; started in ctor, joined in dtor
};

}  // namespace slc

// CodecServer: multi-stream serving front-end over the CodecEngine.
//
// A server manages N independent client *streams*. Each stream names its
// codec in the CodecRegistry, carries its own CodecOptions (MAG, lossy
// threshold — the stream's error budget — and training sample) and a
// scheduling priority, and owns a FIFO of byte-stream / block-stream
// requests. The server:
//
//   * coalesces small requests into engine-sized batches (one engine job per
//     batch, `Config::batch_blocks` blocks), so a thousand 1 KB requests do
//     not pay a thousand queue round-trips;
//   * maps stream priority onto the engine's priority-aware shard claim, so
//     a latency-sensitive stream's batch preempts queued bulk analysis at
//     shard granularity without cancelling it;
//   * enforces a bounded in-flight budget (`Config::max_inflight_blocks`):
//     submit() blocks — backpressure — until enough queued work retired;
//   * tracks per-stream and aggregate CommitStats plus request-latency
//     percentiles (PercentileTracker, p50/p99).
//
// Stream lifecycle: open_stream() -> submit() xN (tickets) -> wait()/drain().
// Streams live as long as the server; there is no close — drain() is the
// barrier, and the destructor drains.
//
// Determinism: a request's StreamAnalysis and a stream's CommitStats are
// byte-identical for any engine thread count. Per-block analysis does not
// depend on which batch carried it; analyses land in index-aligned slots;
// the scatter to per-request results and the stats fold walk blocks in
// order on a single thread; cross-batch merges add integer counters, which
// commute. Batch *boundaries* (StreamStats::batches) follow the client's
// call order only while no backpressure wait intervenes — a blocked
// submit() force-dispatches partial batches at engine-completion-dependent
// moments — and the latency percentiles are wall clock; neither is covered
// by the guarantee.
//
// Threading: any thread may call any member; the server is internally
// locked. Tickets may be waited from any thread. The engine passed in (or
// the shared default) must outlive the server and must not be shut down
// while requests are in flight.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/thread_safety.h"
#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "workloads/approx_memory.h"

namespace slc {

class CodecServer;

/// Scheduling class of a stream, mapped onto the engine's job priority.
enum class StreamPriority {
  kBulk,     ///< throughput work (ratio sweeps, offline analysis)
  kNormal,   ///< default
  kLatency,  ///< latency-sensitive (interactive commits); preempts bulk
};

/// Everything needed to open a stream. `options.threshold_bytes` is the
/// stream's error budget for lossy codecs; `options.training_data` is only
/// read while open_stream() constructs the codec.
struct StreamConfig {
  std::string name;
  std::string codec = "E2MC";  ///< CodecRegistry name
  CodecOptions options{};
  StreamPriority priority = StreamPriority::kNormal;
  /// Enables the fingerprint decision memo for this stream's codec (lossy
  /// TSLC-* streams only — the lossless schemes have no decision to memoize
  /// and ignore it). The cache used is the server engine's shared one, or a
  /// stream-private one when Config::share_fingerprint_cache is off; either
  /// way `options.fingerprint_cache` wins if the caller pre-set it.
  bool use_fingerprint_cache = false;
};

using StreamId = uint32_t;

/// Per-stream (or aggregate) serving counters. `commit` is deterministic;
/// `latency` is wall-clock (seconds from submit() to batch completion).
struct StreamStats {
  CommitStats commit;
  uint64_t requests = 0;
  uint64_t batches = 0;
  PercentileTracker latency;

  void merge(const StreamStats& o) {
    commit.merge(o.commit);
    requests += o.requests;
    batches += o.batches;
    latency.merge(o.latency);
  }
};

namespace detail {

/// One queued request: its slice of the batch it rides in, and its own
/// completion state (the batch's last shard delivers into it). Lock order:
/// `m` nests inside the server lock (CodecServer::lock_ may be held while
/// taking m; never the reverse).
struct ServerRequest {
  size_t offset = 0;    ///< first block inside the dispatched batch
  size_t n_blocks = 0;
  std::chrono::steady_clock::time_point submitted{};

  Mutex m;
  CondVar cv;  ///< signals done
  bool done SLC_GUARDED_BY(m) = false;
  CodecEngine::StreamAnalysis result SLC_GUARDED_BY(m);
  std::exception_ptr error SLC_GUARDED_BY(m);
};

}  // namespace detail

/// Ticket for one submitted request. Move-only; wait() is one-shot: it
/// forces dispatch of the request's batch if still coalescing, blocks until
/// the batch completed, and returns this request's analysis (or rethrows
/// the codec exception that failed its batch). The ticket must not outlive
/// the server.
class ServerTicket {
 public:
  ServerTicket() = default;
  ServerTicket(ServerTicket&&) noexcept = default;
  ServerTicket& operator=(ServerTicket&&) noexcept = default;
  ServerTicket(const ServerTicket&) = delete;
  ServerTicket& operator=(const ServerTicket&) = delete;

  /// True until wait() consumed this ticket (default-constructed: false).
  bool valid() const { return req_ != nullptr; }
  /// Non-blocking: has the request's batch completed?
  bool ready() const;
  /// Blocks until this request completed; one-shot.
  CodecEngine::StreamAnalysis wait();

 private:
  friend class CodecServer;
  ServerTicket(CodecServer* server, StreamId stream, std::shared_ptr<detail::ServerRequest> req)
      : server_(server), stream_(stream), req_(std::move(req)) {}

  CodecServer* server_ = nullptr;
  StreamId stream_ = 0;
  std::shared_ptr<detail::ServerRequest> req_;
};

class CodecServer {
 public:
  struct Config {
    /// Engine batches run on; null picks CodecEngine::shared_default().
    std::shared_ptr<CodecEngine> engine;
    /// Coalescing target: a stream's pending requests dispatch as one engine
    /// job once they cover this many blocks (or on wait()/flush/drain).
    size_t batch_blocks = 256;
    /// Backpressure budget: submit() blocks while admitting the request
    /// would push dispatched-plus-queued blocks past this. 0 = unbounded.
    /// Admission is FIFO (so no request can be starved); a request larger
    /// than the whole budget is admitted — and dispatched immediately —
    /// once the server drains empty, rather than deadlocking. Fairness has
    /// a flip side: while such an oversized request waits at the head of
    /// the admission queue, every younger submit (including a kLatency
    /// stream's) waits behind the drain. Size the budget at or above the
    /// largest request you serve — priority preemption then applies from
    /// the moment of dispatch and admission never head-of-line blocks.
    size_t max_inflight_blocks = 16384;
    /// Cache-enabled streams share the engine's fingerprint cache (cross-
    /// stream dedup: two tenants committing the same tensor pay one probe)
    /// — safe because entries are keyed on the deciding codec's identity.
    /// Off gives each cache-enabled stream a private cache instead
    /// (isolation: one tenant's traffic cannot evict another's entries).
    bool share_fingerprint_cache = true;
    /// Applied to *private* per-stream caches (share off): verify-on-hit
    /// paranoia mode, full-content compare on every hit. The shared engine
    /// cache's mode is configured on the engine
    /// (CodecEngine::set_fingerprint_cache) before streams open.
    bool verify_cache_hits = false;
  };

  CodecServer();  ///< default Config (shared engine, default batching)
  explicit CodecServer(Config cfg);
  /// Drains every stream, then releases the engine reference.
  ~CodecServer();

  CodecServer(const CodecServer&) = delete;
  CodecServer& operator=(const CodecServer&) = delete;

  /// Opens a stream: resolves `cfg.codec` in the registry (throws
  /// std::out_of_range on an unknown name, std::invalid_argument when the
  /// scheme needs training data the options lack) and constructs its codec.
  StreamId open_stream(StreamConfig cfg);

  size_t num_streams() const;
  const std::string& stream_name(StreamId s) const;

  /// Queues a byte-stream request on `s` (copied; sliced into 128 B blocks,
  /// ragged tail zero-padded like to_blocks). Blocks on backpressure. An
  /// empty request completes immediately.
  ServerTicket submit(StreamId s, std::span<const uint8_t> data);
  /// Queues a block-stream request on `s` (blocks are copied).
  ServerTicket submit(StreamId s, std::span<const Block> blocks);

  /// Dispatches `s`'s partially-filled batch now (no-op when empty).
  void flush_stream(StreamId s);
  /// Barrier: dispatches every partial batch and blocks until all in-flight
  /// batches completed. Request errors stay with their tickets.
  void drain();

  /// Counters over completed requests. Call drain() first for run totals.
  StreamStats stream_stats(StreamId s) const;
  /// All streams' counters merged.
  StreamStats aggregate_stats() const;

  /// Dispatched-but-unfinished blocks (the backpressure level).
  size_t inflight_blocks() const;

  CodecEngine& engine() const { return *engine_; }

 private:
  friend class ServerTicket;
  struct Batch;
  struct Stream {
    StreamConfig cfg;
    std::shared_ptr<const Compressor> codec;
    int engine_priority = 0;
    std::vector<Block> pending_blocks;  ///< coalesced, owned until dispatch
    std::vector<std::shared_ptr<detail::ServerRequest>> pending;
    StreamStats stats;
  };

  /// Shared core of the submit overloads; takes ownership of the blocks.
  ServerTicket submit_blocks(StreamId s, std::vector<Block>&& blocks);
  /// Packages the stream's pending requests into one batch and submits it as
  /// a single engine job at the stream's priority. If the engine abandoned
  /// the job at enqueue (shut down), the batch is failed inline via
  /// fail_batch_locked — without ever dropping lock_.
  void dispatch_locked(StreamId s) SLC_REQUIRES(lock_);
  /// Delivers `err` to every request of a batch the engine never ran and
  /// retires its backpressure debt. Takes each request's mutex while holding
  /// lock_ (the documented lock order).
  void fail_batch_locked(const std::shared_ptr<Batch>& batch, std::exception_ptr err)
      SLC_REQUIRES(lock_);
  /// Backpressure predicate: would admitting `n` more blocks fit the budget
  /// (or is the server drained empty — the oversized-request escape)?
  bool admit_fits_locked(size_t n) const SLC_REQUIRES(lock_);
  /// Runs on the engine worker that finishes a batch's last shard: scatters
  /// per-request results, folds stream stats, releases backpressure.
  void complete_batch(const std::shared_ptr<Batch>& batch) SLC_EXCLUDES(lock_);
  void run_shard(Batch& batch, size_t begin, size_t end) const;

  Config cfg_;
  std::shared_ptr<CodecEngine> engine_;

  /// Guards every field below. Streams are never removed and Stream objects
  /// are pointer-stable (unique_ptr), but the vector and all Stream contents
  /// (pending queues, stats) are only touched under this lock.
  mutable Mutex lock_;
  CondVar backpressure_cv_;  ///< signals: budget freed / turnstile advanced
  CondVar drain_cv_;         ///< signals: inflight_batches_ reached 0
  std::vector<std::unique_ptr<Stream>> streams_ SLC_GUARDED_BY(lock_);
  size_t inflight_blocks_ SLC_GUARDED_BY(lock_) = 0;
  size_t inflight_batches_ SLC_GUARDED_BY(lock_) = 0;
  /// Queued but not yet dispatched, all streams.
  size_t pending_blocks_total_ SLC_GUARDED_BY(lock_) = 0;
  uint64_t admit_head_ SLC_GUARDED_BY(lock_) = 0;  ///< turnstile: next turn to admit
  uint64_t admit_tail_ SLC_GUARDED_BY(lock_) = 0;  ///< next turn to hand out
};

}  // namespace slc

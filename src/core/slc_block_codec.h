// SlcBlockCodec: the paper's selective lossy codec as a memory-controller
// BlockCodec policy. Unsafe regions are forced down the lossless path
// (threshold 0); safe regions use min(region threshold, config threshold).
//
// Constructed by name through CodecRegistry::create_block_codec("TSLC-*").
#pragma once

#include <memory>

#include "compress/block_codec.h"
#include "core/slc_codec.h"

namespace slc {

class SlcBlockCodec final : public BlockCodec {
 public:
  SlcBlockCodec(std::shared_ptr<const E2mcCompressor> lossless, SlcConfig cfg);
  BlockCodecResult process(BlockView block, bool safe_to_approx,
                           size_t threshold_bytes) const override;
  size_t mag_bytes() const override { return cfg_.mag_bytes; }
  std::string name() const override { return to_string(cfg_.variant); }
  const SlcConfig& config() const { return cfg_; }

 private:
  std::shared_ptr<const E2mcCompressor> lossless_;
  SlcConfig cfg_;
  SlcCodec codec_;
  SlcCodec codec_lossless_only_;  ///< threshold 0, for unsafe regions
};

}  // namespace slc

// SlcBlockCodec: the paper's selective lossy codec as a memory-controller
// BlockCodec policy. Unsafe regions are forced down the lossless path
// (threshold 0); safe regions use min(region threshold, config threshold).
//
// Constructed by name through CodecRegistry::create_block_codec("TSLC-*").
#pragma once

#include <map>
#include <memory>

#include "common/thread_safety.h"
#include "compress/block_codec.h"
#include "core/slc_codec.h"

namespace slc {

class SlcBlockCodec final : public BlockCodec {
 public:
  SlcBlockCodec(std::shared_ptr<const E2mcCompressor> lossless, SlcConfig cfg);
  BlockCodecResult process(BlockView block, bool safe_to_approx,
                           size_t threshold_bytes) const override;
  /// Batched commit kernel: one SlcCodec::decide_batch pass for the whole
  /// span (staged E2MC length probe + per-block Fig. 4 decision), then
  /// payload materialization only for the blocks decided lossy.
  void process_batch(std::span<const BlockView> blocks, bool safe_to_approx,
                     size_t threshold_bytes, BlockCodecResult* out) const override;
  size_t mag_bytes() const override { return cfg_.mag_bytes; }
  std::string name() const override { return to_string(cfg_.variant); }
  const SlcConfig& config() const { return cfg_; }

 private:
  /// The codec a (safe, region threshold) pair runs through: the lossless
  /// one for unsafe/zero-threshold regions, the configured codec when the
  /// region budget is at least the config's, and a cached per-threshold
  /// codec for regions with a tighter budget — built once per distinct
  /// threshold instead of per block (repeated commits of the same region
  /// used to re-derive the TreeSlcSelector on every block).
  const SlcCodec& codec_for(bool safe_to_approx, size_t threshold_bytes) const;

  std::shared_ptr<const E2mcCompressor> lossless_;
  SlcConfig cfg_;
  SlcCodec codec_;
  SlcCodec codec_lossless_only_;  ///< threshold 0, for unsafe regions

  /// Lazily-built codecs for region thresholds tighter than the config.
  /// Entries are never erased, so returned references stay valid past the
  /// lock; the mutex (a leaf lock) only guards concurrent insertion from
  /// CodecEngine workers.
  mutable Mutex tight_mutex_;
  mutable std::map<size_t, std::unique_ptr<const SlcCodec>> tight_codecs_
      SLC_GUARDED_BY(tight_mutex_);
};

}  // namespace slc

#include "core/fingerprint_cache.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace slc {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

uint64_t load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint32_t load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t round64(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = std::rotl(acc, 31);
  return acc * kPrime1;
}

uint64_t merge_round(uint64_t acc, uint64_t val) {
  acc ^= round64(0, val);
  return acc * kPrime1 + kPrime4;
}

uint64_t avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

uint64_t block_fingerprint(std::span<const uint8_t> bytes) {
  const uint8_t* p = bytes.data();
  const uint8_t* const end = p + bytes.size();
  uint64_t h;

  if (bytes.size() >= 32) {
    // Four independent multiply/rotate lanes over 32 B stripes — for the
    // 128 B block this is four full rounds per lane with no cross-lane
    // dependency, so the multiplies pipeline.
    uint64_t v1 = kPrime1 + kPrime2;
    uint64_t v2 = kPrime2;
    uint64_t v3 = 0;
    uint64_t v4 = 0 - kPrime1;
    do {
      v1 = round64(v1, load64(p));
      v2 = round64(v2, load64(p + 8));
      v3 = round64(v3, load64(p + 16));
      v4 = round64(v4, load64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = std::rotl(v1, 1) + std::rotl(v2, 7) + std::rotl(v3, 12) + std::rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = kPrime5;
  }
  h += static_cast<uint64_t>(bytes.size());

  while (p + 8 <= end) {
    h ^= round64(0, load64(p));
    h = std::rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(load32(p)) * kPrime1;
    h = std::rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime5;
    h = std::rotl(h, 11) * kPrime1;
    ++p;
  }
  return avalanche(h);
}

size_t FingerprintCache::KeyHash::operator()(const Key& k) const {
  // fp is already avalanched; folding the codec key through one more mix
  // keeps per-codec streams from sharing bucket patterns.
  return static_cast<size_t>(avalanche(k.fp ^ (k.codec_key * kPrime2)));
}

FingerprintCache::FingerprintCache(Config cfg) : cfg_(cfg) {
  num_shards_ = std::bit_ceil(std::max<size_t>(1, cfg_.shards));
  per_shard_ = std::max<size_t>(1, std::max<size_t>(1, cfg_.capacity) / num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
}

size_t FingerprintCache::shard_index(uint64_t codec_key, uint64_t fp) const {
  // The low fingerprint bits also pick hash buckets inside the shard; shard
  // selection uses a re-mix of both halves of the key so the two splits stay
  // independent.
  return static_cast<size_t>(avalanche(fp + codec_key * kPrime3)) & (num_shards_ - 1);
}

FingerprintCache::Shard& FingerprintCache::shard_for(uint64_t codec_key, uint64_t fp) const {
  return shards_[shard_index(codec_key, fp)];
}

FingerprintCache::Lookup FingerprintCache::lookup(uint64_t codec_key, uint64_t fp,
                                                  std::span<const uint8_t> block,
                                                  SlcCodec::Decision& out) {
  const Key key{codec_key, fp};
  Shard& sh = shard_for(codec_key, fp);
  MutexLock lk(sh.m);
  auto it = sh.index.find(key);
  if (it == sh.index.end()) {
    sh.counters.record(/*probed=*/true, /*hit=*/false, false, false);
    return Lookup::kMiss;
  }
  if (cfg_.verify_on_hit) {
    const std::vector<uint8_t>& stored = it->second->content;
    if (stored.size() != block.size() ||
        !std::equal(stored.begin(), stored.end(), block.begin())) {
      sh.counters.record(/*probed=*/true, /*hit=*/false, false, /*collision=*/true);
      return Lookup::kCollision;
    }
  }
  sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
  out = it->second->decision;
  sh.counters.record(/*probed=*/true, /*hit=*/true, false, false);
  return Lookup::kHit;
}

bool FingerprintCache::insert(uint64_t codec_key, uint64_t fp,
                              std::span<const uint8_t> block,
                              const SlcCodec::Decision& d) {
  const Key key{codec_key, fp};
  Shard& sh = shard_for(codec_key, fp);
  MutexLock lk(sh.m);
  auto it = sh.index.find(key);
  if (it != sh.index.end()) {
    // Refresh (a concurrent worker inserted the same content first, or a
    // collision under verify-on-hit re-decided the slot): last writer wins,
    // no eviction.
    it->second->decision = d;
    if (cfg_.verify_on_hit) it->second->content.assign(block.begin(), block.end());
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    return false;
  }
  Entry e;
  e.key = key;
  e.decision = d;
  if (cfg_.verify_on_hit) e.content.assign(block.begin(), block.end());
  sh.lru.push_front(std::move(e));
  sh.index.emplace(key, sh.lru.begin());
  bool evicted = false;
  if (sh.lru.size() > per_shard_) {
    sh.index.erase(sh.lru.back().key);
    sh.lru.pop_back();
    evicted = true;
    sh.counters.record(/*probed=*/false, false, /*evicted=*/true, false);
  }
  return evicted;
}

size_t FingerprintCache::size() const {
  size_t n = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& sh = shards_[s];
    MutexLock lk(sh.m);
    n += sh.lru.size();
  }
  return n;
}

CacheCounters FingerprintCache::counters() const {
  CacheCounters total;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& sh = shards_[s];
    MutexLock lk(sh.m);
    total.merge(sh.counters);
  }
  return total;
}

void FingerprintCache::clear() {
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& sh = shards_[s];
    MutexLock lk(sh.m);
    sh.lru.clear();
    sh.index.clear();
  }
}

bool FingerprintCache::runtime_enabled() {
  static const bool enabled = [] {
    // Read once at startup under a static initializer, never written:
    // getenv's thread-unsafety cannot bite. NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* e = std::getenv("SLC_FINGERPRINT_CACHE");
    if (e == nullptr || *e == '\0') return true;
    return std::strcmp(e, "0") != 0 && std::strcmp(e, "off") != 0 &&
           std::strcmp(e, "OFF") != 0;
  }();
  return enabled;
}

}  // namespace slc

#include "core/tree_selector.h"

#include <array>
#include <cassert>
#include <numeric>

namespace slc {

namespace {

// Window sizes in selection order. 6 and 12 are the TSLC-OPT extra nodes:
// a 6-symbol window is a level-3 node (4 symbols) plus the adjacent level-2
// node; a 12-symbol window is a level-4 node (8) plus the adjacent level-3
// node. They start at the alignment of the larger parent so each window stays
// inside one 16-symbol decoding way.
struct WindowClass {
  size_t size;
  size_t stride;  // start alignment
  bool opt_only;
};

constexpr std::array<WindowClass, 7> kClasses = {{
    {1, 1, false},
    {2, 2, false},
    {4, 4, false},
    {6, 8, true},
    {8, 8, false},
    {12, 16, true},
    {16, 16, false},
}};

size_t window_sum(std::span<const uint16_t> lens, size_t start, size_t count) {
  size_t s = 0;
  for (size_t i = start; i < start + count; ++i) s += lens[i];
  return s;
}

}  // namespace

size_t TreeSlcSelector::comp_size_bits(std::span<const uint16_t> code_lens) {
  return std::accumulate(code_lens.begin(), code_lens.end(), size_t{0});
}

std::optional<TreeCandidate> TreeSlcSelector::select(std::span<const uint16_t> code_lens,
                                                     size_t extra_bits) const {
  const size_t n = code_lens.size();
  if (extra_bits == 0) return std::nullopt;
  for (const WindowClass& wc : kClasses) {
    if (wc.opt_only && !extra_nodes_) continue;
    if (wc.size > kMaxApproxSymbols) break;
    for (size_t start = 0; start + wc.size <= n; start += wc.stride) {
      const size_t sum = window_sum(code_lens, start, wc.size);
      if (sum >= extra_bits) {
        return TreeCandidate{start, wc.size, sum};
      }
    }
  }
  return std::nullopt;
}

std::vector<TreeCandidate> TreeSlcSelector::windows(std::span<const uint16_t> code_lens) const {
  std::vector<TreeCandidate> out;
  const size_t n = code_lens.size();
  for (const WindowClass& wc : kClasses) {
    if (wc.opt_only && !extra_nodes_) continue;
    if (wc.size > kMaxApproxSymbols) break;
    for (size_t start = 0; start + wc.size <= n; start += wc.stride) {
      out.push_back(TreeCandidate{start, wc.size, window_sum(code_lens, start, wc.size)});
    }
  }
  return out;
}

}  // namespace slc

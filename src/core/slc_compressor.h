// SlcCompressor: the SLC codec behind the uniform Compressor interface.
//
// SlcCodec's native API returns SlcCompressedBlock (payload + mode-decision
// bookkeeping); this adapter maps it onto compress()/decompress()/analyze()
// so SLC participates in the CodecRegistry, the CodecEngine and every
// scheme-sweeping bench exactly like the lossless schemes. The SLC payload is
// self-describing (the Fig. 6 header carries mode/ss/len), so decompress()
// needs nothing beyond the CompressedBlock.
//
// Note the SLC variants are *lossy*: decompress(compress(b)) may differ from
// b for blocks the Fig. 4 decision truncates. analyze() exposes that through
// BlockAnalysis::lossy/truncated_symbols.
#pragma once

#include <memory>

#include "core/slc_codec.h"

namespace slc {

class SlcCompressor : public Compressor {
 public:
  SlcCompressor(std::shared_ptr<const E2mcCompressor> lossless, SlcConfig cfg)
      : codec_(std::move(lossless), cfg) {}

  std::string name() const override { return to_string(codec_.config().variant); }
  CompressedBlock compress(BlockView block) const override {
    return codec_.compress(block).data;
  }
  Block decompress(const CompressedBlock& cb, size_t block_bytes) const override {
    SlcCompressedBlock scb;
    scb.data = cb;
    return codec_.decompress(scb, block_bytes);
  }
  BlockAnalysis analyze(BlockView block) const override;

  /// Batched kernels: SlcCodec stages the E2MC length probe once for the
  /// whole span and (for compress) scatters the payloads through the
  /// prefix-sum arena, so CodecEngine shards and CodecServer coalesced
  /// batches run the Fig. 4 decision and the payload emission at batch
  /// speed. Byte-identical to the scalar loop (pinned by
  /// tests/test_batch_kernels.cpp).
  using Compressor::analyze_batch;
  using Compressor::compress_batch;
  void analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const override;
  void compress_batch(std::span<const BlockView> blocks, CompressedBlock* out) const override;

  /// The wrapped codec, for consumers that need the SLC-specific API
  /// (encode info, tree selector, header geometry).
  const SlcCodec& codec() const { return codec_; }
  const SlcConfig& config() const { return codec_.config(); }

 private:
  SlcCodec codec_;
};

}  // namespace slc

#include "core/slc_compressor.h"

#include "compress/codec_registry.h"
#include "core/slc_block_codec.h"

namespace slc {

namespace {

BlockAnalysis to_analysis(const SlcEncodeInfo& info, const SlcCodec::CacheOutcome& oc) {
  BlockAnalysis a;
  a.bit_size = info.final_bits;
  a.is_compressed = !info.stored_uncompressed;
  a.lossy = info.lossy;
  a.lossless_bits = info.lossless_bits;
  a.truncated_symbols = info.truncated_symbols;
  a.cache_probed = oc.probed;
  a.cache_hit = oc.hit;
  a.cache_evicted = oc.evicted;
  a.cache_collision = oc.collision;
  return a;
}

}  // namespace

BlockAnalysis SlcCompressor::analyze(BlockView block) const {
  SlcCodec::CacheOutcome oc;
  const SlcEncodeInfo info = codec_.analyze(block, oc);
  return to_analysis(info, oc);
}

void SlcCompressor::analyze_batch(std::span<const BlockView> blocks, BlockAnalysis* out) const {
  std::vector<SlcEncodeInfo> infos(blocks.size());
  std::vector<SlcCodec::CacheOutcome> ocs(blocks.size());
  codec_.analyze_batch(blocks, infos.data(), ocs.data());
  for (size_t i = 0; i < blocks.size(); ++i) out[i] = to_analysis(infos[i], ocs[i]);
}

void SlcCompressor::compress_batch(std::span<const BlockView> blocks,
                                   CompressedBlock* out) const {
  std::vector<SlcCompressedBlock> cbs(blocks.size());
  codec_.compress_batch(blocks, cbs.data());
  for (size_t i = 0; i < blocks.size(); ++i) out[i] = std::move(cbs[i].data);
}

namespace {

std::shared_ptr<const E2mcCompressor> lossless_from(const CodecOptions& opts) {
  if (opts.trained_e2mc) return opts.trained_e2mc;
  return E2mcCompressor::train(opts.training_data, opts.e2mc);
}

SlcConfig slc_config_from(const CodecOptions& opts, SlcVariant variant) {
  SlcConfig cfg;
  cfg.mag_bytes = opts.mag_bytes;
  cfg.threshold_bytes = opts.threshold_bytes;
  cfg.variant = variant;
  cfg.cache = opts.fingerprint_cache;
  return cfg;
}

CodecInfo tslc_info(SlcVariant variant, int order, std::string scheme, std::string paper) {
  CodecInfo info;
  info.name = to_string(variant);
  info.scheme = std::move(scheme);
  info.paper = std::move(paper);
  info.order = order;
  info.lossy = true;
  info.needs_training = true;
  info.compress_latency = SlcCodec::kCompressLatency;
  info.decompress_latency = SlcCodec::kDecompressLatency;
  info.make = [variant](const CodecOptions& opts) -> std::shared_ptr<const Compressor> {
    return std::make_shared<SlcCompressor>(lossless_from(opts), slc_config_from(opts, variant));
  };
  info.make_block_codec =
      [variant](const CodecOptions& opts) -> std::shared_ptr<const BlockCodec> {
    return std::make_shared<SlcBlockCodec>(lossless_from(opts), slc_config_from(opts, variant));
  };
  return info;
}

const CodecRegistrar tslc_simp_registrar(
    tslc_info(SlcVariant::kSimp, 5, "SLC over E2MC, truncated symbols decode to zero",
              "paper Sec. III / Sec. V (TSLC-SIMP)"));
const CodecRegistrar tslc_pred_registrar(
    tslc_info(SlcVariant::kPred, 6, "SLC over E2MC, value-similarity prediction",
              "paper Sec. III-E / Sec. V (TSLC-PRED)"));
const CodecRegistrar tslc_opt_registrar(
    tslc_info(SlcVariant::kOpt, 7, "SLC over E2MC, prediction + extra tree nodes",
              "paper Sec. III-F / Sec. V (TSLC-OPT)"));

}  // namespace

}  // namespace slc

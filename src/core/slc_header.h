// SLC compressed-block header (paper Fig. 6).
//
// Layout: m (1 bit, lossless/lossy) | ss (6 bits, first approximated symbol)
// | len (4 bits, number of approximated symbols, stored as count-1) |
// pdp x (ways-1), each N bits with 2^N = block size in bytes. For the paper's
// geometry (128 B block, 4 ways) the header is 1+6+4+3*7 = 32 bits.
// Uncompressed blocks carry no header; the burst count lives in the MDC.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bitstream.h"
#include "common/block.h"

namespace slc {

struct SlcHeader {
  bool lossy = false;
  uint8_t start_symbol = 0;   ///< ss: index of first approximated symbol
  uint8_t approx_count = 0;   ///< len: symbols approximated (0 when lossless)
  uint8_t way_offsets[8] = {};///< byte offsets of ways 1..ways-1 (pdp)

  /// Header size in bits for a block/way geometry.
  static size_t bits(size_t block_bytes, unsigned num_ways, size_t num_symbols);

  /// Byte-padded header size.
  static size_t padded_bytes(size_t block_bytes, unsigned num_ways, size_t num_symbols) {
    return (bits(block_bytes, num_ways, num_symbols) + 7) / 8;
  }

  /// Writer is BitWriter or detail::SpanBitWriter (the batch scatter path);
  /// defined in slc_header.cpp with explicit instantiations for both. The
  /// header must start at bit 0 of `w`.
  template <class Writer>
  void write(Writer& w, size_t block_bytes, unsigned num_ways, size_t num_symbols) const;
  static SlcHeader read(BitReader& r, size_t block_bytes, unsigned num_ways,
                        size_t num_symbols);
};

}  // namespace slc

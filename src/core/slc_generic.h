// Generic SLC: the paper's Sec. I claim that SLC "is not limited to E2MC
// but can also be applied to other techniques", demonstrated on FPC.
//
// FPC encodes a block as 32 variable-size word codes, so the same budget
// idea applies: sum the per-word code sizes (the tree adder's leaves are
// words instead of 16-bit symbols), and when the total lands a few bytes
// above a burst multiple, truncate a word window and predict the missing
// words from their neighbours on decompression.
//
// Differences from the E2MC-based codec:
//  * symbols are whole 32-bit words, so prediction needs no parity handling
//    (the previous word predicts the truncated ones);
//  * zero-run codes span multiple words — the selector operates on expanded
//    per-word costs where each word of a run carries its share;
//  * the header needs ss (5 bits for 32 words) + len (4) + mode (1); there
//    are no parallel-decode pointers.
#pragma once

#include <memory>
#include <optional>

#include "compress/fpc.h"
#include "core/tree_selector.h"

namespace slc {

struct GenericSlcConfig {
  size_t mag_bytes = kDefaultMagBytes;
  size_t threshold_bytes = 16;
  bool predict = true;  ///< false = zero-fill (SIMP-style)
};

struct GenericSlcInfo {
  bool lossy = false;
  bool stored_uncompressed = false;
  size_t lossless_bits = 0;
  size_t final_bits = 0;
  size_t bursts = 0;
  size_t truncated_words = 0;
};

/// SLC layered over FPC. Compress returns the block the GPU observes after
/// a store+load round trip plus the size bookkeeping (the bit-exact payload
/// of the lossless substrate is exercised by the FPC unit tests; this codec
/// models the selective truncation).
class SlcFpcCodec {
 public:
  explicit SlcFpcCodec(GenericSlcConfig cfg = {});

  /// Analyzes one block: mode decision + truncation selection.
  GenericSlcInfo analyze(BlockView block) const;

  /// Functional round trip: returns the block as later reads observe it
  /// (identity unless the lossy mode fires).
  Block roundtrip(BlockView block) const;

  /// Per-word encoded costs in bits (FPC prefix + payload; words inside a
  /// zero run share the run's cost).
  std::vector<uint16_t> word_costs(BlockView block) const;

  const GenericSlcConfig& config() const { return cfg_; }

 private:
  GenericSlcConfig cfg_;
  FpcCompressor fpc_;
  TreeSlcSelector selector_;

  struct Selection {
    size_t start = 0;
    size_t count = 0;
  };
  std::optional<Selection> select(std::span<const uint16_t> costs, size_t comp_bits,
                                  size_t budget_bits) const;
};

}  // namespace slc

// Tree-based SLC sub-block selection (paper Sec. III-D and Fig. 5).
//
// A parallel tree adder sums the per-symbol code lengths of a block; the root
// is the compressed size. When lossy mode is chosen, the intermediate sums at
// every level are compared against `extra_bits` in parallel; per-level
// priority encoders output the first sub-block whose compressed size covers
// the overshoot, and the lowest level with a hit wins (fewest symbols
// approximated). TSLC-OPT adds 8 extra nodes at level 3 and 4 at level 4
// (Sec. III-F) — modelled as 6- and 12-symbol windows formed by summing a
// node with its adjacent smaller-level neighbour — which tightens the
// selected sum and reduces unneeded approximation.
//
// Level numbering matches the paper: level l holds 64/2^(l-1) nodes of
// 2^(l-1) symbols each (level 3 = 16 nodes of 4 symbols, level 4 = 8 nodes of
// 8). At most 16 symbols may be approximated (the 4-bit `len` header field),
// so levels 1..5 participate in selection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace slc {

/// Maximum symbols a single approximation may cover (4-bit len field).
inline constexpr size_t kMaxApproxSymbols = 16;

/// One candidate sub-block for approximation.
struct TreeCandidate {
  size_t start = 0;     ///< first symbol index
  size_t count = 0;     ///< number of symbols (window size)
  size_t sum_bits = 0;  ///< compressed bits the truncation removes
};

class TreeSlcSelector {
 public:
  /// `extra_nodes` enables the TSLC-OPT intermediate windows.
  explicit TreeSlcSelector(bool extra_nodes) : extra_nodes_(extra_nodes) {}

  /// Sum of all code lengths — the tree root (comp size before headers).
  static size_t comp_size_bits(std::span<const uint16_t> code_lens);

  /// Selects the sub-block to approximate for the given overshoot.
  /// Returns nullopt when no window of <= kMaxApproxSymbols symbols has
  /// sum >= extra_bits (the block then stays lossless).
  ///
  /// Hardware-faithful policy: windows are examined in increasing size
  /// (1, 2, 4, [6], 8, [12], 16 symbols; bracketed sizes only with
  /// extra_nodes); within a size, the first window in symbol order wins
  /// (priority encoder).
  std::optional<TreeCandidate> select(std::span<const uint16_t> code_lens,
                                      size_t extra_bits) const;

  /// All windows the tree exposes for `n` symbols — used by tests and the
  /// hardware-cost model (node/adder counts).
  std::vector<TreeCandidate> windows(std::span<const uint16_t> code_lens) const;

  /// Unneeded approximation for a selection: selected sum minus the
  /// overshoot it had to cover (Sec. III-F's motivation for extra nodes).
  static size_t overshoot_bits(const TreeCandidate& c, size_t extra_bits) {
    return c.sum_bits > extra_bits ? c.sum_bits - extra_bits : 0;
  }

  bool extra_nodes() const { return extra_nodes_; }

 private:
  bool extra_nodes_;
};

}  // namespace slc

#include "core/slc_codec.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bitstream.h"
#include "compress/batch_writer.h"
#include "core/fingerprint_cache.h"

namespace slc {

namespace {

/// splitmix64 step — mixes the codec-identity fields into one cache key.
uint64_t mix_key(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

}  // namespace

const char* to_string(SlcVariant v) {
  switch (v) {
    case SlcVariant::kSimp: return "TSLC-SIMP";
    case SlcVariant::kPred: return "TSLC-PRED";
    case SlcVariant::kOpt: return "TSLC-OPT";
  }
  return "?";
}

SlcCodec::SlcCodec(std::shared_ptr<const E2mcCompressor> lossless, SlcConfig cfg)
    : lossless_(std::move(lossless)),
      cfg_(std::move(cfg)),
      selector_(cfg_.variant == SlcVariant::kOpt) {
  assert(lossless_ != nullptr);
  assert(cfg_.mag_bytes > 0 && kBlockBytes % cfg_.mag_bytes == 0);
  // Everything the Fig. 4 decision depends on beyond the block content: the
  // trained model (its process-unique id — never reused, unlike a pointer),
  // geometry and variant. Two codecs agreeing on this key always agree on
  // every decision, so their memo entries are interchangeable.
  uint64_t key = mix_key(0, lossless_->model_id());
  key = mix_key(key, cfg_.mag_bytes);
  key = mix_key(key, cfg_.threshold_bytes);
  key = mix_key(key, static_cast<uint64_t>(cfg_.variant));
  cache_key_ = key;
}

FingerprintCache* SlcCodec::active_cache() const {
  if (cfg_.cache == nullptr || !FingerprintCache::runtime_enabled()) return nullptr;
  return cfg_.cache.get();
}

size_t SlcCodec::header_bits(size_t block_bytes) const {
  const size_t n_sym = block_bytes * 8 / kSymbolBits;
  return SlcHeader::bits(block_bytes, lossless_->config().num_ways, n_sym);
}

template <class Writer>
size_t SlcCodec::encode_into(BlockView block, const SlcHeader& hdr,
                             std::span<const uint16_t> lens, size_t skip_start,
                             size_t skip_count, Writer& w) const {
  const unsigned num_ways = lossless_->config().num_ways;
  const size_t n_sym = block.num_symbols();
  const size_t per_way = n_sym / num_ways;
  const WayLayout lo =
      lossless_->layout(lens, header_bits(block.size()), skip_start, skip_count);

  // Fill pdp way offsets into a copy of the header.
  SlcHeader h = hdr;
  size_t off = SlcHeader::padded_bytes(block.size(), num_ways, n_sym);
  for (unsigned i = 1; i < num_ways; ++i) {
    off += lo.way_bytes[i - 1];
    h.way_offsets[i] = static_cast<uint8_t>(off);
  }

  const HuffmanCode& code = lossless_->code();
  h.write(w, block.size(), num_ways, n_sym);
  for (unsigned way = 0; way < num_ways; ++way) {
    const size_t start_bit = w.bit_size();
    for (size_t s = way * per_way; s < (way + 1) * per_way; ++s) {
      if (s >= skip_start && s < skip_start + skip_count) continue;
      const uint16_t sym = block.symbol(s);
      if (code.in_table(sym)) {
        w.put(code.codeword(sym), code.codeword_len(sym));
      } else {
        w.put(code.esc_code(), code.esc_len());
        w.put(sym, kSymbolBits);
      }
    }
    const size_t used = w.bit_size() - start_bit;
    assert(used == lo.way_bits[way]);
    const size_t aligned = lo.way_bytes[way] * 8;
    if (aligned > used) w.put(0, static_cast<unsigned>(aligned - used));
  }
  assert(w.bit_size() == lo.total_bits);
  return lo.total_bits;
}

CompressedBlock SlcCodec::encode(BlockView block, const SlcHeader& hdr,
                                 std::span<const uint16_t> lens, size_t skip_start,
                                 size_t skip_count) const {
  BitWriter w;
  const size_t total_bits = encode_into(block, hdr, lens, skip_start, skip_count, w);
  CompressedBlock out;
  out.is_compressed = true;
  out.bit_size = total_bits;
  out.payload = w.bytes();
  return out;
}

SlcCodec::Decision SlcCodec::decide(std::span<const uint16_t> lens,
                                    size_t block_bytes) const {
  const size_t raw_bits = block_bytes * 8;
  const size_t mag_bits = cfg_.mag_bytes * 8;
  const size_t max_bursts = block_bytes / cfg_.mag_bytes;

  const WayLayout lossless_layout = lossless_->layout(lens, header_bits(block_bytes));
  const size_t comp_bits = lossless_layout.total_bits;

  Decision d;
  d.info.lossless_bits = comp_bits;

  auto raw_decision = [&] {
    d.info.stored_uncompressed = true;
    d.info.final_bits = raw_bits;
    d.info.bursts = max_bursts;
    return d;
  };

  // Fig. 4, top branch: when the compressed size reaches the uncompressed
  // size, the block is always stored raw with the full bit budget (128 B).
  if (comp_bits >= raw_bits) return raw_decision();

  // Bit budget: closest multiple of MAG <= comp size, floored at one MAG
  // (it is impossible to fetch less than one burst). Note a block slightly
  // above the last burst boundary (e.g. 108 B at MAG 32) is still a lossy
  // candidate: truncating to 96 B saves the fourth burst.
  const size_t budget_bits = std::max(comp_bits / mag_bits * mag_bits, mag_bits);
  const size_t extra_bits = comp_bits > budget_bits ? comp_bits - budget_bits : 0;
  d.info.extra_bits = extra_bits;

  if (extra_bits != 0 && extra_bits <= cfg_.threshold_bytes * 8) {
    // Lossy path: find the sub-block to truncate. The tree works on raw code
    // bits while way byte-alignment can re-add up to (ways-1)*7 padding bits,
    // so verify the truncated layout and escalate to the next larger window
    // if padding pushed the block back over budget.
    std::optional<TreeCandidate> cand = selector_.select(lens, extra_bits);
    size_t cut_bits = 0;
    while (cand) {
      const WayLayout cut =
          lossless_->layout(lens, header_bits(block_bytes), cand->start, cand->count);
      if (cut.total_bits <= budget_bits) {
        cut_bits = cut.total_bits;
        break;
      }
      const size_t need = cand->sum_bits + (cut.total_bits - budget_bits);
      cand = selector_.select(lens, need);
      // A repeated selection with a larger target always returns a strictly
      // larger sum or nullopt, so this loop terminates.
    }
    if (cand) {
      d.info.lossy = true;
      d.info.truncated_symbols = cand->count;
      d.info.truncated_bits = cand->sum_bits;
      d.info.final_bits = cut_bits;
      // Usually the budget's burst count; one fewer when the selected window
      // overshoots past another burst boundary.
      d.info.bursts = bursts_for_bits(cut_bits, cfg_.mag_bytes, block_bytes);
      d.skip_start = cand->start;
      d.skip_count = cand->count;
      return d;
    }
    // No window covers the overshoot -> fall through to lossless.
  }

  // Lossless path (comp size == budget, below one MAG, or above threshold).
  // A lossless block needing as many bursts as the raw block is stored raw:
  // same traffic, no decompression latency, and the MDC's max burst count
  // marks it (no header needed, Sec. III-G).
  if (bursts_for_bits(comp_bits, cfg_.mag_bytes, block_bytes) >= max_bursts) {
    return raw_decision();
  }
  d.info.final_bits = comp_bits;
  d.info.bursts = bursts_for_bits(comp_bits, cfg_.mag_bytes, block_bytes);
  return d;
}

SlcEncodeInfo SlcCodec::analyze(BlockView block) const {
  CacheOutcome oc;
  return analyze(block, oc);
}

SlcEncodeInfo SlcCodec::analyze(BlockView block, CacheOutcome& oc) const {
  return decide_cached(block, oc).info;
}

SlcCodec::Decision SlcCodec::decide_cached(BlockView block, CacheOutcome& oc) const {
  oc = CacheOutcome{};
  FingerprintCache* c = active_cache();
  if (c == nullptr) {
    const auto lens = lossless_->code_lengths(block);
    return decide(lens, block.size());
  }
  oc.probed = true;
  const uint64_t fp = block_fingerprint(block.bytes());
  Decision d;
  switch (c->lookup(cache_key_, fp, block.bytes(), d)) {
    case FingerprintCache::Lookup::kHit:
      oc.hit = true;
      return d;
    case FingerprintCache::Lookup::kCollision:
      oc.collision = true;
      break;
    case FingerprintCache::Lookup::kMiss:
      break;
  }
  const auto lens = lossless_->code_lengths(block);
  d = decide(lens, block.size());
  oc.evicted = c->insert(cache_key_, fp, block.bytes(), d);
  return d;
}

void SlcCodec::decide_batch(std::span<const BlockView> blocks, LengthScratch& scratch,
                            Decision* out) const {
  // One staged probe for the whole span (the E2MC batched sizing pass), then
  // the budget/threshold/tree decision per block over the staged lengths.
  lossless_->code_lengths_batch(blocks, scratch.lens, scratch.offsets);
  for (size_t i = 0; i < blocks.size(); ++i)
    out[i] = decide(scratch.block_lens(i), blocks[i].size());
}

void SlcCodec::decide_batch_cached(std::span<const BlockView> blocks, LengthScratch& scratch,
                                   Decision* out, CacheOutcome* oc) const {
  const size_t n = blocks.size();
  FingerprintCache* c = active_cache();
  if (c == nullptr) {
    decide_batch(blocks, scratch, out);
    for (size_t i = 0; i < n; ++i) oc[i] = CacheOutcome{};
    return;
  }

  // Pass 1: probe the memo, and dedup within the span — a batch of 95%
  // duplicates then pays one probe for each distinct content even on a cold
  // cache. `first_miss` maps a missing fingerprint to the first block that
  // will compute it; later twins copy its decision after the batch probe.
  std::vector<uint64_t> fps(n);
  std::vector<size_t> miss;                       // indices that need the probe
  std::vector<std::pair<size_t, size_t>> twins;   // (dup index, representative)
  std::unordered_map<uint64_t, size_t> first_miss;
  miss.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    oc[i] = CacheOutcome{};
    oc[i].probed = true;
    fps[i] = block_fingerprint(blocks[i].bytes());
    switch (c->lookup(cache_key_, fps[i], blocks[i].bytes(), out[i])) {
      case FingerprintCache::Lookup::kHit:
        oc[i].hit = true;
        continue;
      case FingerprintCache::Lookup::kCollision:
        oc[i].collision = true;
        break;
      case FingerprintCache::Lookup::kMiss:
        break;
    }
    const auto it = first_miss.find(fps[i]);
    if (it != first_miss.end()) {
      // Same fingerprint as an earlier miss of this span. In verify-on-hit
      // mode trust it only on byte equality (an in-span collision falls
      // through to its own probe); otherwise the fingerprint is the
      // identity, exactly like a cache hit.
      const BlockView rep = blocks[it->second];
      if (!c->verify_on_hit() ||
          std::equal(rep.bytes().begin(), rep.bytes().end(), blocks[i].bytes().begin())) {
        oc[i].hit = true;
        twins.emplace_back(i, it->second);
        continue;
      }
    } else {
      first_miss.emplace(fps[i], i);
    }
    miss.push_back(i);
  }

  // Pass 2: one staged decide_batch over the distinct misses.
  if (!miss.empty()) {
    std::vector<BlockView> miss_views;
    miss_views.reserve(miss.size());
    for (const size_t i : miss) miss_views.push_back(blocks[i]);
    std::vector<Decision> miss_out(miss.size());
    decide_batch(miss_views, scratch, miss_out.data());
    for (size_t j = 0; j < miss.size(); ++j) {
      const size_t i = miss[j];
      out[i] = miss_out[j];
      oc[i].evicted = c->insert(cache_key_, fps[i], blocks[i].bytes(), out[i]);
    }
  }
  for (const auto& [i, rep] : twins) out[i] = out[rep];
}

void SlcCodec::analyze_batch(std::span<const BlockView> blocks, SlcEncodeInfo* out) const {
  std::vector<CacheOutcome> ocs(blocks.size());
  analyze_batch(blocks, out, ocs.data());
}

void SlcCodec::analyze_batch(std::span<const BlockView> blocks, SlcEncodeInfo* out,
                             CacheOutcome* oc) const {
  LengthScratch scratch;
  std::vector<Decision> decisions(blocks.size());
  decide_batch_cached(blocks, scratch, decisions.data(), oc);
  for (size_t i = 0; i < blocks.size(); ++i) out[i] = decisions[i].info;
}

SlcCompressedBlock SlcCodec::compress(BlockView block) const {
  const auto lens = lossless_->code_lengths(block);
  return compress_decided(block, decide(lens, block.size()), lens);
}

SlcCompressedBlock SlcCodec::compress_decided(BlockView block, const Decision& d,
                                              std::span<const uint16_t> lens) const {
  SlcCompressedBlock out;
  out.info = d.info;
  if (d.info.stored_uncompressed) {
    out.data.is_compressed = false;
    out.data.bit_size = block.size() * 8;
    out.data.payload.assign(block.bytes().begin(), block.bytes().end());
    return out;
  }
  SlcHeader hdr;
  hdr.lossy = d.info.lossy;
  hdr.start_symbol = static_cast<uint8_t>(d.skip_start);
  hdr.approx_count = static_cast<uint8_t>(d.info.lossy ? d.skip_count : 0);
  out.data = encode(block, hdr, lens, d.skip_start, d.skip_count);
  assert(out.data.bit_size == d.info.final_bits);
  assert(!d.info.lossy ||
         out.data.bit_size <= d.info.bursts * cfg_.mag_bytes * 8);
  return out;
}

void SlcCodec::compress_batch(std::span<const BlockView> blocks, SlcCompressedBlock* out) const {
  // Prefix-sum payload scatter over the batched Fig. 4 decision: decide_batch
  // already yields every block's exact final size (final_bits is always a
  // whole number of bytes — the ways are byte-aligned and raw blocks are
  // byte-sized), so the payloads scatter into one arena at independent
  // offsets and no per-block writer or probe re-run is needed.
  const size_t n = blocks.size();
  LengthScratch scratch;
  std::vector<Decision> ds(n);
  decide_batch(blocks, scratch, ds.data());

  std::vector<size_t> sizes(n), offsets(n);
  for (size_t b = 0; b < n; ++b) {
    assert(ds[b].info.final_bits % 8 == 0);
    sizes[b] = ds[b].info.final_bits / 8;
  }
  const size_t total = detail::exclusive_prefix_sum(sizes.data(), n, offsets.data());
  std::vector<uint8_t> arena(total);
  detail::SpanBitWriter w;

  for (size_t b = 0; b < n; ++b) {
    const BlockView blk = blocks[b];
    const Decision& d = ds[b];
    if (d.info.stored_uncompressed) {
      std::memcpy(arena.data() + offsets[b], blk.bytes().data(), blk.size());
      continue;
    }
    SlcHeader hdr;
    hdr.lossy = d.info.lossy;
    hdr.start_symbol = static_cast<uint8_t>(d.skip_start);
    hdr.approx_count = static_cast<uint8_t>(d.info.lossy ? d.skip_count : 0);
    w.reset(arena.data() + offsets[b]);
    const size_t bits =
        encode_into(blk, hdr, scratch.block_lens(b), d.skip_start, d.skip_count, w);
    assert(bits == d.info.final_bits);
    (void)bits;
    const size_t written = w.finish();
    assert(written == sizes[b]);
    (void)written;
  }

  for (size_t b = 0; b < n; ++b) {
    const Decision& d = ds[b];
    SlcCompressedBlock cb;
    cb.info = d.info;
    cb.data.is_compressed = !d.info.stored_uncompressed;
    cb.data.bit_size = d.info.final_bits;
    const uint8_t* slice = arena.data() + offsets[b];
    cb.data.payload.assign(slice, slice + sizes[b]);
    out[b] = std::move(cb);
  }
}

Block SlcCodec::decompress(const SlcCompressedBlock& cb, size_t block_bytes) const {
  if (!cb.data.is_compressed) {
    return Block(std::span<const uint8_t>(cb.data.payload.data(), block_bytes));
  }
  const unsigned num_ways = lossless_->config().num_ways;
  const size_t n_sym = block_bytes * 8 / kSymbolBits;
  const size_t per_way = n_sym / num_ways;
  const HuffmanCode& code = lossless_->code();

  BitReader hdr_reader(cb.data.payload);
  const SlcHeader h = SlcHeader::read(hdr_reader, block_bytes, num_ways, n_sym);
  const size_t skip_start = h.lossy ? h.start_symbol : 0;
  const size_t skip_count = h.lossy ? h.approx_count : 0;

  Block out(block_bytes);
  std::array<size_t, 8> way_off{};
  way_off[0] = SlcHeader::padded_bytes(block_bytes, num_ways, n_sym);
  for (unsigned i = 1; i < num_ways; ++i) way_off[i] = h.way_offsets[i];

  for (unsigned way = 0; way < num_ways; ++way) {
    BitReader r(cb.data.payload);
    r.seek(way_off[way] * 8);
    for (size_t s = way * per_way; s < (way + 1) * per_way; ++s) {
      if (s >= skip_start && s < skip_start + skip_count) {
        continue;  // not in the stream; fill_approximated() writes it below
      }
      const auto step = code.decode(static_cast<uint16_t>(r.peek(16)));
      assert(step.bits > 0 && "invalid codeword");
      r.skip(step.bits);
      uint16_t sym = step.symbol;
      if (step.is_escape) sym = static_cast<uint16_t>(r.get(kSymbolBits));
      out.set_symbol(s, sym);
    }
  }

  if (h.lossy && skip_count > 0) fill_approximated(out, skip_start, skip_count);
  return out;
}

void SlcCodec::fill_approximated(Block& out, size_t skip_start, size_t skip_count) const {
  const size_t n_sym = out.size() * 8 / kSymbolBits;
  if (cfg_.variant == SlcVariant::kSimp) {
    for (size_t s = skip_start; s < skip_start + skip_count; ++s) out.set_symbol(s, 0);
    return;
  }
  // Value-similarity prediction (Sec. III-E): the nearest non-truncated
  // symbol predicts the truncated ones. Adjacent threads hold similar
  // 32-bit values, so a 16-bit symbol is only predictive for symbols at
  // the same position within a word — the fill is parity-matched (one
  // predictor register per halfword lane; the decompressor only
  // generates the predictor indices, keeping the hardware delta tiny).
  uint16_t fill[2] = {0, 0};
  for (size_t parity = 0; parity < 2; ++parity) {
    size_t idx = n_sym;  // sentinel: none found
    // Last intact symbol before the window...
    for (size_t s = skip_start; s-- > 0;) {
      if (s % 2 == parity) {
        idx = s;
        break;
      }
    }
    // ...or the first intact one after it.
    if (idx == n_sym) {
      for (size_t s = skip_start + skip_count; s < n_sym; ++s) {
        if (s % 2 == parity) {
          idx = s;
          break;
        }
      }
    }
    if (idx < n_sym) fill[parity] = out.symbol(idx);
  }
  for (size_t s = skip_start; s < skip_start + skip_count; ++s) out.set_symbol(s, fill[s % 2]);
}

Block SlcCodec::approx_decode(BlockView block, const Decision& d) const {
  Block out(block.bytes());
  if (d.info.lossy && d.skip_count > 0) fill_approximated(out, d.skip_start, d.skip_count);
  return out;
}

}  // namespace slc

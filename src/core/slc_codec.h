// SLC codec: MAG-aware selective lossy compression on top of E2MC
// (paper Sec. III). This is the paper's primary contribution.
//
// Mode decision (Fig. 4): compute the lossless compressed size (sum of code
// lengths + header), derive the bit budget (closest multiple of MAG <= comp
// size, floored at one MAG) and the overshoot (`extra_bits`). If the
// overshoot is zero the block is stored lossless; if it is at most the
// user threshold, the TSLC tree picks a sub-block of symbols to truncate so
// the block fits the budget; otherwise the block stays lossless at the next
// burst boundary. Blocks whose lossless size needs as many bursts as the raw
// block are stored uncompressed.
//
// Variants (Sec. V): TSLC-SIMP truncates and decodes zeros; TSLC-PRED decodes
// the value of the first non-truncated symbol of the block (value-similarity
// prediction, Sec. III-E); TSLC-OPT additionally enables the extra tree nodes
// (Sec. III-F).
#pragma once

#include <memory>
#include <optional>

#include "compress/e2mc.h"
#include "core/slc_header.h"
#include "core/tree_selector.h"

namespace slc {

class FingerprintCache;

enum class SlcVariant : uint8_t { kSimp, kPred, kOpt };

const char* to_string(SlcVariant v);

struct SlcConfig {
  size_t mag_bytes = kDefaultMagBytes;  ///< memory access granularity
  size_t threshold_bytes = 16;          ///< lossy threshold (paper default 16 B)
  SlcVariant variant = SlcVariant::kOpt;
  /// Optional content-addressed memo for the Fig. 4 decision
  /// (core/fingerprint_cache.h). Null (the default) keeps every path
  /// uncached; when set, analyze()/analyze_batch() and the cached decide
  /// entry points serve repeat blocks without the E2MC length probe. The
  /// codec derives its cache key from (E2MC model id, MAG, threshold,
  /// variant), so one cache may safely back any number of codecs — entries
  /// never cross a configuration or a trained model.
  std::shared_ptr<FingerprintCache> cache{};
};

/// Outcome bookkeeping for one block (drives both timing and error studies).
struct SlcEncodeInfo {
  bool lossy = false;
  bool stored_uncompressed = false;
  size_t lossless_bits = 0;   ///< E2MC+SLC-header size before any truncation
  size_t final_bits = 0;      ///< size actually stored
  size_t bursts = 0;          ///< MAG bursts fetched for this block
  size_t truncated_symbols = 0;
  size_t truncated_bits = 0;  ///< code bits removed (>= extra bits when lossy)
  size_t extra_bits = 0;      ///< overshoot above the bit budget
};

struct SlcCompressedBlock {
  CompressedBlock data;
  SlcEncodeInfo info;
};

class SlcCodec {
 public:
  SlcCodec(std::shared_ptr<const E2mcCompressor> lossless, SlcConfig cfg);

  /// Compresses one block per the Fig. 4 decision flow.
  SlcCompressedBlock compress(BlockView block) const;

  /// Size-only fast path: the full Fig. 4 decision (budget, threshold, tree
  /// selection) without building the bit stream. Exactly the sizes/bursts
  /// compress() would report — the simulator's common case, since only lossy
  /// blocks need their payload materialized. Served from the fingerprint
  /// memo when cfg.cache is set (see below).
  SlcEncodeInfo analyze(BlockView block) const;

  // --- batched mode decision -------------------------------------------------
  // The decision layer's batch kernel, feeding BlockCodec::process_batch and
  // SlcCompressor::analyze_batch: one staged E2MC length probe for the whole
  // span, then the Fig. 4 decide() pass per block over the staged lengths.
  // Results are byte-identical to analyze()/compress() per block; all scratch
  // lives in the caller's frame, so concurrent engine shards need no locks.

  /// Outcome of the Fig. 4 mode decision for one block: the bookkeeping plus
  /// the selected truncation window (meaningful only when info.lossy).
  struct Decision {
    SlcEncodeInfo info;
    size_t skip_start = 0;
    size_t skip_count = 0;
  };

  /// Staged per-symbol code lengths for a span of blocks (block i's lengths
  /// at lens[offsets[i] .. offsets[i+1])). Reuse across calls to amortize
  /// the allocation; the commit path feeds it back into compress_decided().
  struct LengthScratch {
    std::vector<uint16_t> lens;
    std::vector<size_t> offsets;

    std::span<const uint16_t> block_lens(size_t i) const {
      return std::span<const uint16_t>(lens).subspan(offsets[i], offsets[i + 1] - offsets[i]);
    }
  };

  /// Batched decision: fills out[0..blocks.size()) with exactly the Decision
  /// compress()/analyze() derive per block, probing code lengths once for
  /// the whole span into `scratch`. Never consults the fingerprint memo —
  /// the staged lengths it produces feed compress_decided()/compress_batch(),
  /// which a cache hit (decision only, no lens) cannot serve.
  void decide_batch(std::span<const BlockView> blocks, LengthScratch& scratch,
                    Decision* out) const;

  /// Batched analyze(): out[i] == analyze(blocks[i]).
  void analyze_batch(std::span<const BlockView> blocks, SlcEncodeInfo* out) const;

  // --- fingerprint-memoized decision ----------------------------------------
  // When cfg.cache is set (and SLC_FINGERPRINT_CACHE is not force-disabling
  // it), the entry points below first consult the content-addressed memo:
  // a hit returns the stored Decision — exactly what the miss path computes
  // for that content — and skips the E2MC length probe entirely; a miss
  // computes the decision through the regular path and inserts it. Without a
  // cache they are the plain decide()/decide_batch() paths. The outcome
  // flags feed CacheCounters only and are the single thing that is NOT
  // thread-count invariant about a cached run.

  /// Per-block cache bookkeeping for one decision.
  struct CacheOutcome {
    bool probed = false;     ///< a configured, enabled cache was consulted
    bool hit = false;        ///< decision served from the memo
    bool evicted = false;    ///< the insert displaced an LRU entry
    bool collision = false;  ///< verify-on-hit content mismatch (fp collision)
  };

  /// One-block memoized decision (the scalar process()/analyze() path).
  Decision decide_cached(BlockView block, CacheOutcome& oc) const;

  /// Batched memoized decision: hits and in-batch duplicates skip the probe;
  /// the remaining distinct misses run through one decide_batch() over
  /// `scratch`. out[i] is identical to decide_batch()'s out[i] for every
  /// block (modulo undetected 64-bit fingerprint collisions, which
  /// verify-on-hit eliminates); oc[i] carries block i's cache outcome.
  void decide_batch_cached(std::span<const BlockView> blocks, LengthScratch& scratch,
                           Decision* out, CacheOutcome* oc) const;

  /// analyze()/analyze_batch() with the per-block cache outcome surfaced.
  SlcEncodeInfo analyze(BlockView block, CacheOutcome& oc) const;
  void analyze_batch(std::span<const BlockView> blocks, SlcEncodeInfo* out,
                     CacheOutcome* oc) const;

  /// The (model, MAG, threshold, variant) key this codec's entries live
  /// under; distinct for every distinct decision function.
  uint64_t cache_key() const { return cache_key_; }
  /// The configured memo (null when uncached).
  const std::shared_ptr<FingerprintCache>& cache() const { return cfg_.cache; }

  /// compress() with the mode decision and staged lengths already computed —
  /// payload materialization without re-running the probe or the tree
  /// selection. `d` and `lens` must come from decide_batch()/code_lengths()
  /// of `block`.
  SlcCompressedBlock compress_decided(BlockView block, const Decision& d,
                                      std::span<const uint16_t> lens) const;

  /// Batched compress(): one decide_batch() probe for the whole span, then
  /// payload emission through the prefix-sum scatter (each block's exact
  /// final size is known from its Decision, so every payload is written at
  /// an independent offset of one reused arena). out[i] is byte-identical
  /// to compress(blocks[i]).
  void compress_batch(std::span<const BlockView> blocks, SlcCompressedBlock* out) const;

  /// The block as reads will observe it after a store+load round trip of
  /// decision `d`, without materializing the payload: every non-truncated
  /// symbol round-trips exactly through the entropy code, so the result is
  /// the original block with the selected window re-filled per the variant
  /// (zeros for TSLC-SIMP, parity-matched prediction otherwise — the same
  /// fill routine decompress() runs). Byte-identical to
  /// decompress(compress_decided(block, d, lens)); the batched commit path's
  /// way to mutate lossy blocks at decision cost.
  Block approx_decode(BlockView block, const Decision& d) const;

  /// Decompresses (exact for lossless blocks; approximated symbols filled
  /// per the configured variant for lossy blocks).
  Block decompress(const SlcCompressedBlock& cb, size_t block_bytes = kBlockBytes) const;

  /// Convenience: compress + decompress. For lossless blocks this is the
  /// identity; for lossy blocks it returns the approximated block the GPU
  /// would observe.
  Block roundtrip(BlockView block) const { return decompress(compress(block), block.size()); }

  const SlcConfig& config() const { return cfg_; }
  const E2mcCompressor& lossless() const { return *lossless_; }
  const TreeSlcSelector& selector() const { return selector_; }

  /// SLC header size in bits for this geometry (Fig. 6: 32 bits for the
  /// default 128 B / 4-way configuration).
  size_t header_bits(size_t block_bytes) const;

  /// Compression latency in memory-controller cycles: E2MC's 46 plus 12 to
  /// stream the code lengths and 2 to add/select (paper Sec. IV-A: 60).
  static constexpr unsigned kCompressLatency = 60;
  /// Decompression latency equals E2MC's (Sec. IV-A).
  static constexpr unsigned kDecompressLatency = E2mcCompressor::kDecompressLatency;

 private:
  std::shared_ptr<const E2mcCompressor> lossless_;
  SlcConfig cfg_;
  TreeSlcSelector selector_;
  uint64_t cache_key_ = 0;

  /// The memo the cached entry points consult: cfg_.cache unless the
  /// SLC_FINGERPRINT_CACHE env knob force-disables caching process-wide.
  FingerprintCache* active_cache() const;

  /// The Fig. 4 mode decision, shared by compress()/analyze()/decide_batch().
  Decision decide(std::span<const uint16_t> lens, size_t block_bytes) const;

  /// Re-fills the truncated window of `out` per the configured variant. All
  /// symbols outside [skip_start, skip_start + skip_count) must already hold
  /// their exact values — the one fill routine decompress() and
  /// approx_decode() share, so the payload and payload-free decodes cannot
  /// drift apart.
  void fill_approximated(Block& out, size_t skip_start, size_t skip_count) const;

  /// Encodes the block with symbols [start, start+count) removed.
  CompressedBlock encode(BlockView block, const SlcHeader& hdr,
                         std::span<const uint16_t> lens, size_t skip_start,
                         size_t skip_count) const;

  /// encode()'s emission into a caller-provided writer (BitWriter or
  /// detail::SpanBitWriter, which must be empty); returns the total bits
  /// written. Defined in slc_codec.cpp; all instantiations live there.
  template <class Writer>
  size_t encode_into(BlockView block, const SlcHeader& hdr, std::span<const uint16_t> lens,
                     size_t skip_start, size_t skip_count, Writer& w) const;
};

}  // namespace slc

#include "core/slc_block_codec.h"

#include <algorithm>

namespace slc {

SlcBlockCodec::SlcBlockCodec(std::shared_ptr<const E2mcCompressor> lossless, SlcConfig cfg)
    : lossless_(lossless),
      cfg_(cfg),
      codec_(lossless, cfg),
      codec_lossless_only_(lossless, [cfg] {
        SlcConfig c = cfg;
        c.threshold_bytes = 0;
        return c;
      }()) {}

BlockCodecResult SlcBlockCodec::process(BlockView block, bool safe_to_approx,
                                        size_t threshold_bytes) const {
  BlockCodecResult r;
  const bool may_approx = safe_to_approx && threshold_bytes > 0;
  const SlcCodec& codec =
      may_approx && std::min(threshold_bytes, cfg_.threshold_bytes) == cfg_.threshold_bytes
          ? codec_
          : codec_lossless_only_;
  // Regions with a tighter threshold than the global config get a dedicated
  // pass below; the common case (region threshold >= config) uses codec_.
  if (may_approx && threshold_bytes < cfg_.threshold_bytes) {
    SlcConfig c = cfg_;
    c.threshold_bytes = threshold_bytes;
    const SlcCodec tight(lossless_, c);
    const SlcCompressedBlock cb = tight.compress(block);
    r.decoded = tight.decompress(cb, block.size());
    r.bursts = cb.info.bursts;
    r.lossless_bits = cb.info.lossless_bits;
    r.final_bits = cb.info.final_bits;
    r.lossy = cb.info.lossy;
    r.stored_uncompressed = cb.info.stored_uncompressed;
    r.truncated_symbols = cb.info.truncated_symbols;
    return r;
  }
  // Fast path: run the Fig. 4 decision size-only; only lossy blocks need the
  // full encode + approximate decode to produce mutated contents.
  const SlcEncodeInfo info = codec.analyze(block);
  r.bursts = info.bursts;
  r.lossless_bits = info.lossless_bits;
  r.final_bits = info.final_bits;
  r.lossy = info.lossy;
  r.stored_uncompressed = info.stored_uncompressed;
  r.truncated_symbols = info.truncated_symbols;
  if (info.lossy) {
    const SlcCompressedBlock cb = codec.compress(block);
    r.decoded = codec.decompress(cb, block.size());
  } else {
    r.decoded = Block(block.bytes());
  }
  return r;
}

}  // namespace slc

#include "core/slc_block_codec.h"

#include <vector>

namespace slc {

namespace {

/// Copies the mode-decision bookkeeping into the policy result (everything
/// except `decoded`, which depends on whether the block went lossy).
void fill_result(BlockCodecResult& r, const SlcEncodeInfo& info,
                 const SlcCodec::CacheOutcome& oc) {
  r.bursts = info.bursts;
  r.lossless_bits = info.lossless_bits;
  r.final_bits = info.final_bits;
  r.lossy = info.lossy;
  r.stored_uncompressed = info.stored_uncompressed;
  r.truncated_symbols = info.truncated_symbols;
  r.cache_probed = oc.probed;
  r.cache_hit = oc.hit;
  r.cache_evicted = oc.evicted;
  r.cache_collision = oc.collision;
}

}  // namespace

SlcBlockCodec::SlcBlockCodec(std::shared_ptr<const E2mcCompressor> lossless, SlcConfig cfg)
    : lossless_(lossless),
      cfg_(cfg),
      codec_(lossless, cfg),
      codec_lossless_only_(lossless, [cfg] {
        SlcConfig c = cfg;
        c.threshold_bytes = 0;
        return c;
      }()) {}

const SlcCodec& SlcBlockCodec::codec_for(bool safe_to_approx, size_t threshold_bytes) const {
  if (!safe_to_approx || threshold_bytes == 0) return codec_lossless_only_;
  // The effective budget is min(region threshold, config threshold); at or
  // above the config the configured codec already applies.
  if (threshold_bytes >= cfg_.threshold_bytes) return codec_;
  MutexLock lk(tight_mutex_);
  std::unique_ptr<const SlcCodec>& slot = tight_codecs_[threshold_bytes];
  if (!slot) {
    SlcConfig c = cfg_;
    c.threshold_bytes = threshold_bytes;
    slot = std::make_unique<const SlcCodec>(lossless_, c);
  }
  return *slot;
}

BlockCodecResult SlcBlockCodec::process(BlockView block, bool safe_to_approx,
                                        size_t threshold_bytes) const {
  const SlcCodec& codec = codec_for(safe_to_approx, threshold_bytes);
  // Run the Fig. 4 decision size-only — served from the fingerprint memo on
  // repeat content; only the decision is needed either way, because the
  // decoded contents come straight from it (window re-fill), the same
  // payload-free decode the batch path runs.
  BlockCodecResult r;
  SlcCodec::CacheOutcome oc;
  const SlcCodec::Decision d = codec.decide_cached(block, oc);
  fill_result(r, d.info, oc);
  r.decoded = codec.approx_decode(block, d);
  return r;
}

void SlcBlockCodec::process_batch(std::span<const BlockView> blocks, bool safe_to_approx,
                                  size_t threshold_bytes, BlockCodecResult* out) const {
  const SlcCodec& codec = codec_for(safe_to_approx, threshold_bytes);
  SlcCodec::LengthScratch scratch;
  std::vector<SlcCodec::Decision> decisions(blocks.size());
  std::vector<SlcCodec::CacheOutcome> outcomes(blocks.size());
  codec.decide_batch_cached(blocks, scratch, decisions.data(), outcomes.data());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const SlcCodec::Decision& d = decisions[i];
    BlockCodecResult& r = out[i];
    r = BlockCodecResult{};
    fill_result(r, d.info, outcomes[i]);
    // Only lossy blocks mutate, and their decoded contents come straight
    // from the decision (window re-fill) — no payload is built either way.
    r.decoded = codec.approx_decode(blocks[i], d);
  }
}

}  // namespace slc

#include "core/slc_header.h"

#include <cassert>

#include "compress/batch_writer.h"
#include "compress/e2mc.h"
#include "core/tree_selector.h"

namespace slc {

namespace {
unsigned ss_bits(size_t num_symbols) {
  unsigned n = 0;
  while ((size_t{1} << n) < num_symbols) ++n;
  return n;  // 6 for 64 symbols
}
constexpr unsigned kLenBits = 4;  // up to 16 approximated symbols (count-1)
}  // namespace

size_t SlcHeader::bits(size_t block_bytes, unsigned num_ways, size_t num_symbols) {
  return 1 + ss_bits(num_symbols) + kLenBits +
         (num_ways - 1) * E2mcCompressor::pdp_bits(block_bytes);
}

template <class Writer>
void SlcHeader::write(Writer& w, size_t block_bytes, unsigned num_ways,
                      size_t num_symbols) const {
  w.put_bit(lossy);
  w.put(start_symbol, ss_bits(num_symbols));
  assert(approx_count <= kMaxApproxSymbols);
  // len is stored as count-1 (1..16 -> 0..15); lossless blocks store 0.
  const unsigned len_field = approx_count == 0 ? 0 : approx_count - 1u;
  w.put(len_field, kLenBits);
  const unsigned pdp = E2mcCompressor::pdp_bits(block_bytes);
  for (unsigned i = 1; i < num_ways; ++i) w.put(way_offsets[i], pdp);
  // Pad to byte boundary.
  const size_t target = padded_bytes(block_bytes, num_ways, num_symbols) * 8;
  if (target > w.bit_size()) w.put(0, static_cast<unsigned>(target - w.bit_size()));
}

template void SlcHeader::write(BitWriter&, size_t, unsigned, size_t) const;
template void SlcHeader::write(detail::SpanBitWriter&, size_t, unsigned, size_t) const;

SlcHeader SlcHeader::read(BitReader& r, size_t block_bytes, unsigned num_ways,
                          size_t num_symbols) {
  SlcHeader h;
  h.lossy = r.get_bit();
  h.start_symbol = static_cast<uint8_t>(r.get(ss_bits(num_symbols)));
  const auto len_field = static_cast<uint8_t>(r.get(kLenBits));
  h.approx_count = h.lossy ? static_cast<uint8_t>(len_field + 1) : 0;
  const unsigned pdp = E2mcCompressor::pdp_bits(block_bytes);
  for (unsigned i = 1; i < num_ways; ++i)
    h.way_offsets[i] = static_cast<uint8_t>(r.get(pdp));
  r.seek((r.position() + 7) / 8 * 8);  // skip header padding
  return h;
}

}  // namespace slc

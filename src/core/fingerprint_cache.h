// FingerprintCache: content-addressed memoization of the Fig. 4 mode
// decision. Real traffic repeats — zero pages, re-committed regions,
// duplicated tensors — yet the decision path pays the full E2MC length probe
// per block. The cache keys each block on a fast 64-bit content fingerprint
// (xxHash64-style mixer over the 128 B block) plus the deciding codec's key
// (trained model id, MAG, threshold, variant), so a repeat block's Decision
// is served without touching the code-length table.
//
// Structure: a bounded LRU split into power-of-two shards, each with its own
// mutex, list and hash map — concurrent engine workers only contend when
// their blocks land in the same shard. Capacity is enforced per shard
// (capacity / shards entries each), so eviction needs no cross-shard
// coordination.
//
// Correctness contract: a hit returns exactly the Decision the miss path
// computes for that content, so cached and uncached runs produce identical
// decisions and byte-identical outputs. The only hole is a 64-bit
// fingerprint collision between two live blocks under the same codec key —
// astronomically unlikely, and `verify_on_hit` closes it entirely by
// storing each entry's content and comparing all 128 bytes on every hit
// (a mismatch counts as a collision + miss, never a wrong decision).
// Hit/miss/eviction *counters* are not thread-count invariant (which block
// of a concurrent pair misses first is a race); the decisions are.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/thread_safety.h"
#include "core/slc_codec.h"

namespace slc {

/// 64-bit content fingerprint (xxHash64-style: four parallel multiply/rotate
/// lanes over 32 B stripes, an avalanche finalizer over the tail). Equal
/// bytes => equal fingerprint; the converse holds modulo 64-bit collisions.
uint64_t block_fingerprint(std::span<const uint8_t> bytes);

class FingerprintCache {
 public:
  struct Config {
    size_t capacity = size_t{1} << 15;  ///< total entries across all shards
    size_t shards = 16;                 ///< rounded up to a power of two
    /// Paranoia mode: store each entry's content and require byte equality
    /// on every hit. Costs one 128 B copy per insert and one compare per
    /// hit; turns any fingerprint collision into a detected miss.
    bool verify_on_hit = false;
  };

  enum class Lookup {
    kMiss,       ///< no entry for (key, fingerprint)
    kHit,        ///< decision served (content verified when configured)
    kCollision,  ///< entry found but verify-on-hit content differs
  };

  FingerprintCache() : FingerprintCache(Config{}) {}
  explicit FingerprintCache(Config cfg);

  /// Probes (codec_key, fp). On kHit fills `out` and refreshes the entry's
  /// LRU position. `block` is only read in verify-on-hit mode.
  Lookup lookup(uint64_t codec_key, uint64_t fp, std::span<const uint8_t> block,
                SlcCodec::Decision& out);

  /// Stores (or refreshes) the decision for (codec_key, fp). Returns true
  /// when a least-recently-used entry was displaced to make room. `block`
  /// is only copied in verify-on-hit mode.
  bool insert(uint64_t codec_key, uint64_t fp, std::span<const uint8_t> block,
              const SlcCodec::Decision& d);

  size_t size() const;  ///< current entries across all shards
  size_t capacity() const { return per_shard_ * num_shards_; }
  size_t num_shards() const { return num_shards_; }
  bool verify_on_hit() const { return cfg_.verify_on_hit; }

  /// Which shard (codec_key, fp) maps to — exposed so the adversarial tests
  /// can construct forced same-shard streams.
  size_t shard_index(uint64_t codec_key, uint64_t fp) const;

  /// Lifetime hit/miss/eviction/collision totals across all shards.
  CacheCounters counters() const;

  /// Drops every entry (counters keep their totals).
  void clear();

  /// Process-wide force-disable knob, probed once: SLC_FINGERPRINT_CACHE=0
  /// (or "off") makes every codec ignore its configured cache, so the
  /// uncached oracle path can be exercised end-to-end without rebuilding.
  static bool runtime_enabled();

 private:
  struct Key {
    uint64_t codec_key = 0;
    uint64_t fp = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    SlcCodec::Decision decision;
    std::vector<uint8_t> content;  ///< populated only in verify-on-hit mode
  };
  /// One shard: its own lock, recency list (front = most recent) and index.
  /// Shards are neither movable nor copyable (Mutex), hence the
  /// unique_ptr<Shard[]> storage. Shard mutexes are leaf locks: lookup and
  /// insert touch exactly one shard and acquire nothing under it.
  struct Shard {
    mutable Mutex m;
    std::list<Entry> lru SLC_GUARDED_BY(m);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index SLC_GUARDED_BY(m);
    CacheCounters counters SLC_GUARDED_BY(m);
  };

  Shard& shard_for(uint64_t codec_key, uint64_t fp) const;

  Config cfg_;
  size_t num_shards_ = 1;  ///< power of two
  size_t per_shard_ = 1;   ///< max entries per shard
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace slc

#include "core/slc_generic.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace slc {

namespace {
// Generic header: mode (1) + start word (5 for 32 words) + len (4).
constexpr size_t kGenericHeaderBits = 1 + 5 + 4;
}  // namespace

SlcFpcCodec::SlcFpcCodec(GenericSlcConfig cfg)
    : cfg_(cfg), selector_(/*extra_nodes=*/true) {
  assert(cfg_.mag_bytes > 0 && kBlockBytes % cfg_.mag_bytes == 0);
}

std::vector<uint16_t> SlcFpcCodec::word_costs(BlockView block) const {
  const size_t n_words = block.size() / 4;
  std::vector<uint16_t> costs(n_words, 0);
  size_t i = 0;
  while (i < n_words) {
    const uint32_t w = block.word32(i);
    if (w == 0) {
      size_t run = 1;
      while (i + run < n_words && run < 8 && block.word32(i + run) == 0) ++run;
      // A zero run costs prefix+3 bits total; spread it over its words so
      // window sums stay meaningful (integer split, remainder on the first).
      const uint16_t total = 3 + 3;
      const uint16_t share = static_cast<uint16_t>(total / run);
      costs[i] = static_cast<uint16_t>(total - share * (run - 1));
      for (size_t k = 1; k < run; ++k) costs[i + k] = share;
      i += run;
      continue;
    }
    const FpcPattern p = FpcCompressor::classify(w);
    costs[i] = static_cast<uint16_t>(3 + FpcCompressor::payload_bits(p));
    ++i;
  }
  return costs;
}

std::optional<SlcFpcCodec::Selection> SlcFpcCodec::select(std::span<const uint16_t> costs,
                                                          size_t comp_bits,
                                                          size_t budget_bits) const {
  if (comp_bits <= budget_bits) return std::nullopt;
  const size_t extra = comp_bits - budget_bits;
  const auto cand = selector_.select(costs, extra);
  if (!cand) return std::nullopt;
  return Selection{cand->start, cand->count};
}

GenericSlcInfo SlcFpcCodec::analyze(BlockView block) const {
  GenericSlcInfo info;
  const size_t raw_bits = block.size() * 8;
  const size_t mag_bits = cfg_.mag_bytes * 8;
  const size_t max_bursts = block.size() / cfg_.mag_bytes;

  const auto costs = word_costs(block);
  const size_t comp_bits =
      kGenericHeaderBits +
      static_cast<size_t>(std::accumulate(costs.begin(), costs.end(), size_t{0}));
  info.lossless_bits = comp_bits;

  if (comp_bits >= raw_bits) {
    info.stored_uncompressed = true;
    info.final_bits = raw_bits;
    info.bursts = max_bursts;
    return info;
  }
  const size_t budget = std::max(comp_bits / mag_bits * mag_bits, mag_bits);
  const size_t extra = comp_bits > budget ? comp_bits - budget : 0;
  if (extra != 0 && extra <= cfg_.threshold_bytes * 8) {
    if (const auto sel = select(costs, comp_bits, budget)) {
      size_t removed = 0;
      for (size_t w = sel->start; w < sel->start + sel->count; ++w) removed += costs[w];
      info.lossy = true;
      info.truncated_words = sel->count;
      info.final_bits = comp_bits - removed;
      info.bursts = bursts_for_bits(info.final_bits, cfg_.mag_bytes, block.size());
      return info;
    }
  }
  if (bursts_for_bits(comp_bits, cfg_.mag_bytes, block.size()) >= max_bursts) {
    info.stored_uncompressed = true;
    info.final_bits = raw_bits;
    info.bursts = max_bursts;
    return info;
  }
  info.final_bits = comp_bits;
  info.bursts = bursts_for_bits(comp_bits, cfg_.mag_bytes, block.size());
  return info;
}

Block SlcFpcCodec::roundtrip(BlockView block) const {
  const size_t raw_bits = block.size() * 8;
  const size_t mag_bits = cfg_.mag_bytes * 8;
  const auto costs = word_costs(block);
  const size_t comp_bits =
      kGenericHeaderBits +
      static_cast<size_t>(std::accumulate(costs.begin(), costs.end(), size_t{0}));
  if (comp_bits >= raw_bits) return Block(block.bytes());
  const size_t budget = std::max(comp_bits / mag_bits * mag_bits, mag_bits);
  const size_t extra = comp_bits > budget ? comp_bits - budget : 0;
  if (extra == 0 || extra > cfg_.threshold_bytes * 8) return Block(block.bytes());
  const auto sel = select(costs, comp_bits, budget);
  if (!sel) return Block(block.bytes());

  Block out(block.bytes());
  // Word-granular prediction: the nearest intact word (before the window,
  // else after) predicts every truncated word; zero-fill otherwise.
  uint32_t fill = 0;
  if (cfg_.predict) {
    if (sel->start > 0) {
      fill = block.word32(sel->start - 1);
    } else if (sel->start + sel->count < block.size() / 4) {
      fill = block.word32(sel->start + sel->count);
    }
  }
  for (size_t w = sel->start; w < sel->start + sel->count; ++w) out.set_word32(w, fill);
  return out;
}

}  // namespace slc

// Top-level cycle-level GPU memory-subsystem simulator (Fig. 3's system):
// SMs replay per-kernel block traces; misses traverse interconnect -> sliced
// L2 -> memory controller (metadata cache + compressor/decompressor) ->
// GDDR5 channel. Kernels execute back-to-back with a full drain barrier
// between launches, as GPGPU-Sim does for dependent kernels.
//
// The trace carries each block's compressed burst count (produced by the
// same codec decisions that generated the functional approximation), so
// timing and error derive from identical compression outcomes.
//
// Streaming + sharding (see docs/ARCHITECTURE.md "Streaming simulation"):
// run(TraceStream&) replays kernels as a producer publishes them, so the
// materialized trace never has to exist; run(const vector&) is a thin
// adapter wrapping the vector in a pre-closed stream of borrowed chunks.
// Within a run, the per-step memory-controller phase is sharded across
// cfg.sim_workers threads — each worker owns a fixed, disjoint set of MCs
// (mc_index already partitions addresses by channel), every piece of
// mutable MC state (L2/MDC slice, DRAM channel, queues, read-tag pool, and
// a private SimStats accumulator) lives inside that MC, and SM issue /
// response delivery stay on the driver thread between two atomic barriers.
// Per-MC stats reconcile via SimStats::merge() at the end of the run, in
// fixed channel order — so 1-worker and N-worker runs are bit-identical,
// the same thread-count-invariance discipline the engine enforces.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/sim_config.h"
#include "sim/trace_stream.h"
#include "workloads/approx_memory.h"

namespace slc {

class GpuSim {
 public:
  explicit GpuSim(GpuSimConfig cfg);

  /// Runs all kernels of a materialized trace; returns the accumulated
  /// counters. Thin adapter over the stream path: the vector is wrapped in
  /// an already-closed stream of borrowed (non-owning) chunks, so the
  /// reported stream watermarks equal the whole trace — the honest
  /// footprint of materialize-then-replay.
  SimStats run(const std::vector<KernelTrace>& trace);

  /// Streaming replay: pops kernel chunks until the stream closes and
  /// drains. An empty closed stream returns zeroed stats. The producer owns
  /// close(); this consumer never cancels — callers tearing down early
  /// cancel the stream themselves.
  SimStats run(TraceStream& stream);

  /// Replays the trace captured in `mem`, flushing its pending async region
  /// commits first — the burst counts a replay consumes must be final, so
  /// this is the safe way to chain a pipelined functional run into the
  /// timing simulation.
  SimStats run(ApproxMemory& mem);

  const GpuSimConfig& config() const { return cfg_; }

 private:
  struct SmState {
    std::vector<TraceAccess> queue;
    size_t next = 0;
    double credit = 0.0;     ///< compute cycles owed before the next issue
    unsigned outstanding = 0;///< in-flight read misses
  };

  /// A request travelling between components, keyed by arrival cycle.
  struct InFlight {
    TraceAccess access;
    uint16_t sm = 0;
    uint64_t ready = 0;  ///< cycle it becomes visible to the next stage
  };
  struct ReadyOrder {
    bool operator()(const InFlight& a, const InFlight& b) const { return a.ready > b.ready; }
  };
  using InFlightQueue = std::priority_queue<InFlight, std::vector<InFlight>, ReadyOrder>;

  /// One memory partition: everything a worker touches while processing the
  /// channel lives here — no MC shares mutable state with another MC or
  /// with the driver during the parallel phase, which is the whole
  /// determinism argument. `stats` is declared first: DramChannel holds a
  /// reference to it, so it must outlive (construct before) `dram`; McState
  /// is heap-pinned (unique_ptr in mcs_) so the reference never moves.
  struct McState {
    SimStats stats;           ///< this channel's private counters
    Cache l2;
    Cache mdc;
    DramChannel dram;
    InFlightQueue arrivals;   ///< requests crossing the interconnect
    InFlightQueue staged;     ///< writebacks waiting out the compress latency
    InFlightQueue responses;  ///< read data returning to SMs via this MC
    std::vector<InFlight> inflight_reads;  ///< indexed by DRAM tag
    std::vector<bool> tag_free;            ///< channel-local tag pool
    explicit McState(const GpuSimConfig& cfg);
    uint64_t alloc_tag(const InFlight& f);
  };

  GpuSimConfig cfg_;
  SimStats stats_;  ///< driver-side counters (SM issue path) + merge target
  std::vector<SmState> sms_;
  std::vector<Cache> l1_;
  std::vector<std::unique_ptr<McState>> mcs_;
  uint64_t cycle_ = 0;

  // MC-phase shard pool, alive for the duration of one run(). The driver is
  // shard 0; `active_workers_` extra threads take shards 1..N-1. Each step:
  // the driver bumps `epoch_` (release) after the serial SM-issue phase,
  // every thread processes its fixed stride of MCs, workers bump `done_`
  // (release) and the driver spins (acquire) until all are in — a two-sided
  // barrier whose release/acquire pairs carry the cross-thread visibility,
  // so the phase needs no locks and stays TSan-clean.
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> done_{0};
  std::atomic<bool> stop_{false};
  unsigned active_workers_ = 0;  ///< extra threads (total shards - 1)

  size_t mc_index(uint64_t addr) const;
  /// Channel-local address: strips the channel-interleave bits so row/bank
  /// decoding sees the contiguous space this channel actually owns (16
  /// consecutive line accesses per 2 KB row instead of 4).
  uint64_t channel_local(uint64_t addr) const;
  void sm_issue(uint16_t sm_id, double compute_scale);
  void mc_process(size_t mc_id);
  /// One barrier-bracketed pass of mc_process over every channel —
  /// sharded when workers are up, a plain loop otherwise.
  void mc_phase();
  void worker_loop(unsigned shard, unsigned num_shards);
  void deliver_responses();
  bool drained() const;
  uint64_t next_event_cycle() const;
  void run_kernel(const KernelTrace& kernel);
  void begin_run();
  SimStats end_run();
  void start_workers();
  void stop_workers();  ///< idempotent
};

}  // namespace slc

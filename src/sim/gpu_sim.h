// Top-level cycle-level GPU memory-subsystem simulator (Fig. 3's system):
// SMs replay per-kernel block traces; misses traverse interconnect -> sliced
// L2 -> memory controller (metadata cache + compressor/decompressor) ->
// GDDR5 channel. Kernels execute back-to-back with a full drain barrier
// between launches, as GPGPU-Sim does for dependent kernels.
//
// The trace carries each block's compressed burst count (produced by the
// same codec decisions that generated the functional approximation), so
// timing and error derive from identical compression outcomes.
#pragma once

#include <deque>
#include <queue>
#include <vector>

#include "sim/cache.h"
#include "sim/dram.h"
#include "sim/sim_config.h"
#include "workloads/approx_memory.h"

namespace slc {

class GpuSim {
 public:
  explicit GpuSim(GpuSimConfig cfg);

  /// Runs all kernels of a trace; returns the accumulated counters.
  SimStats run(const std::vector<KernelTrace>& trace);

  /// Replays the trace captured in `mem`, flushing its pending async region
  /// commits first — the burst counts a replay consumes must be final, so
  /// this is the safe way to chain a pipelined functional run into the
  /// timing simulation.
  SimStats run(ApproxMemory& mem);

  const GpuSimConfig& config() const { return cfg_; }

 private:
  struct SmState {
    std::vector<TraceAccess> queue;
    size_t next = 0;
    double credit = 0.0;     ///< compute cycles owed before the next issue
    unsigned outstanding = 0;///< in-flight read misses
  };

  /// A request travelling between components, keyed by arrival cycle.
  struct InFlight {
    TraceAccess access;
    uint16_t sm = 0;
    uint64_t ready = 0;  ///< cycle it becomes visible to the next stage
  };
  struct ReadyOrder {
    bool operator()(const InFlight& a, const InFlight& b) const { return a.ready > b.ready; }
  };
  using InFlightQueue = std::priority_queue<InFlight, std::vector<InFlight>, ReadyOrder>;

  struct McState {
    Cache l2;
    Cache mdc;
    DramChannel dram;
    InFlightQueue arrivals;   ///< requests crossing the interconnect
    InFlightQueue staged;     ///< writebacks waiting out the compress latency
    McState(const GpuSimConfig& cfg, SimStats& stats);
  };

  GpuSimConfig cfg_;
  SimStats stats_;
  std::vector<SmState> sms_;
  std::vector<Cache> l1_;
  std::vector<McState> mcs_;
  InFlightQueue responses_;  ///< read data returning to SMs
  std::vector<InFlight> inflight_reads_;  ///< indexed by DRAM tag
  std::vector<bool> tag_free_;
  uint64_t cycle_ = 0;

  size_t mc_index(uint64_t addr) const;
  /// Channel-local address: strips the channel-interleave bits so row/bank
  /// decoding sees the contiguous space this channel actually owns (16
  /// consecutive line accesses per 2 KB row instead of 4).
  uint64_t channel_local(uint64_t addr) const;
  uint64_t alloc_tag(const InFlight& f);
  void sm_issue(uint16_t sm_id, double compute_scale);
  void mc_process(size_t mc_id);
  void deliver_responses();
  bool drained() const;
  uint64_t next_event_cycle() const;
  void run_kernel(const KernelTrace& kernel);
};

}  // namespace slc

#include "sim/dram.h"

#include <algorithm>

namespace slc {

DramChannel::DramChannel(const GpuSimConfig& cfg, SimStats& stats) : cfg_(cfg), stats_(stats) {
  banks_.assign(cfg_.banks_per_mc, Bank{});
}

void DramChannel::locate(uint64_t addr, size_t* bank, uint64_t* row) const {
  // Channel selection happens upstream; here `addr` is already channel-local
  // enough for bank/row purposes (we hash the full address). Consecutive
  // rows interleave across banks so streams get row locality and bank
  // parallelism.
  const uint64_t chunk = addr / cfg_.row_bytes;
  *bank = chunk % cfg_.banks_per_mc;
  *row = chunk / cfg_.banks_per_mc;
}

bool DramChannel::try_issue(std::deque<DramRequest>& q, uint64_t cycle) {
  if (q.empty()) return false;
  // FR-FCFS over the scheduler window: first pass looks for the oldest row
  // hit on a ready bank; second pass takes the oldest request whose bank is
  // ready.
  auto pick = [&](bool require_hit) -> std::deque<DramRequest>::iterator {
    size_t scanned = 0;
    for (auto it = q.begin(); it != q.end() && scanned < cfg_.scheduler_window;
         ++it, ++scanned) {
      size_t b;
      uint64_t row;
      locate(it->addr, &b, &row);
      const Bank& bank = banks_[b];
      if (bank.ready_cycle > cycle) continue;
      if (require_hit && !(bank.row_open && bank.open_row == row)) continue;
      return it;
    }
    return q.end();
  };
  auto it = pick(true);
  if (it == q.end()) it = pick(false);
  if (it == q.end()) return false;

  size_t b;
  uint64_t row;
  locate(it->addr, &b, &row);
  Bank& bank = banks_[b];

  uint64_t cmd_done = cycle;
  if (bank.row_open && bank.open_row == row) {
    // Row hit: the column command issues immediately; hits stream at bus
    // rate (tCCD is hidden inside the transfer time).
    ++stats_.row_hits;
  } else {
    if (bank.row_open) {
      // Row conflict: precharge may not start before tRAS has elapsed since
      // the activate, then tRP + tRCD for the new row.
      const uint64_t pre_start = std::max(cycle, bank.act_cycle + cfg_.t_ras);
      cmd_done = pre_start + cfg_.t_rp + cfg_.t_rcd;
      bank.act_cycle = pre_start + cfg_.t_rp;
    } else {
      cmd_done = cycle + cfg_.t_rcd;
      bank.act_cycle = cycle;
    }
    bank.row_open = true;
    bank.open_row = row;
    ++stats_.row_misses;
  }
  const uint64_t data_ready = cmd_done + cfg_.t_cl;

  // Bus occupancy in beats (16 B each).
  const uint64_t beats =
      std::max<uint64_t>(1, static_cast<uint64_t>(it->bursts) * (cfg_.mag_bytes / 16));
  const uint64_t xfer_cycles = (beats + cfg_.beats_per_cycle - 1) / cfg_.beats_per_cycle;
  const uint64_t start = std::max(data_ready, bus_free_cycle_);
  const uint64_t finish = start + xfer_cycles;
  bus_free_cycle_ = finish;
  // The bank is busy until its data phase ends.
  bank.ready_cycle = finish;

  if (it->metadata) {
    stats_.metadata_bursts += it->bursts;
  } else if (it->write) {
    stats_.dram_write_bursts += it->bursts;
  } else {
    stats_.dram_read_bursts += it->bursts;
  }

  completions_.push_back(DramCompletion{it->tag, it->write, it->metadata, finish});
  q.erase(it);
  return true;
}

void DramChannel::tick(uint64_t cycle) {
  // Reads have priority; writes drain when no read can issue or the write
  // queue is past the watermark.
  bool issued = try_issue(reads_, cycle);
  if (!issued || writes_.size() > cfg_.write_drain_watermark) {
    try_issue(writes_, cycle);
  }
}

uint64_t DramChannel::next_event_cycle(uint64_t now) const {
  if (reads_.empty() && writes_.empty()) return UINT64_MAX;
  // Earliest cycle at which try_issue could schedule something: the first
  // ready cycle among the banks *targeted* by queued requests (within the
  // FR-FCFS window — banks no queued request addresses cannot unblock the
  // channel, and an idle bank's ready_cycle of 0 must not pin the skip to
  // now + 1). The bus-free cycle bounds the skip too: a transfer ending
  // frees the pins even when every targeted bank is busy longer.
  const uint64_t floor_cycle = now + 1;
  uint64_t nxt = UINT64_MAX;
  auto consider_queue = [&](const std::deque<DramRequest>& q) {
    size_t scanned = 0;
    for (auto it = q.begin(); it != q.end() && scanned < cfg_.scheduler_window;
         ++it, ++scanned) {
      size_t b;
      uint64_t row;
      locate(it->addr, &b, &row);
      nxt = std::min(nxt, std::max(banks_[b].ready_cycle, floor_cycle));
    }
  };
  consider_queue(reads_);
  consider_queue(writes_);
  if (bus_free_cycle_ > now) nxt = std::min(nxt, bus_free_cycle_);
  return nxt;
}

}  // namespace slc

#include "sim/trace_stream.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace slc {

bool TraceStream::push(KernelTrace chunk) {
  return push(std::make_shared<const KernelTrace>(std::move(chunk)));
}

bool TraceStream::push(std::shared_ptr<const KernelTrace> chunk) {
  {
    MutexLock lk(m_);
    while (budget_ != 0 && q_.size() >= budget_ && !cancelled_ && !closed_) can_push_.wait(m_);
    if (closed_) throw std::logic_error("TraceStream::push after close");
    if (cancelled_) return false;  // consumer gone; the chunk is dropped
    queued_accesses_ += chunk->accesses.size();
    q_.push_back(std::move(chunk));
    chunk_hwm_ = std::max(chunk_hwm_, q_.size());
    access_hwm_ = std::max(access_hwm_, queued_accesses_);
  }
  can_pop_.notify_one();
  return true;
}

void TraceStream::close() {
  {
    MutexLock lk(m_);
    closed_ = true;
  }
  // Wake consumers (end of stream) and any producer parked on backpressure
  // while another closed — it throws the push-after-close error instead of
  // hanging.
  can_pop_.notify_all();
  can_push_.notify_all();
}

std::shared_ptr<const KernelTrace> TraceStream::pop() {
  std::shared_ptr<const KernelTrace> chunk;
  {
    MutexLock lk(m_);
    while (q_.empty() && !closed_ && !cancelled_) can_pop_.wait(m_);
    if (cancelled_ || q_.empty()) return nullptr;  // cancelled, or closed and drained
    chunk = std::move(q_.front());
    q_.pop_front();
    queued_accesses_ -= chunk->accesses.size();
  }
  can_push_.notify_one();
  return chunk;
}

void TraceStream::cancel() {
  {
    MutexLock lk(m_);
    cancelled_ = true;
    q_.clear();
    queued_accesses_ = 0;
  }
  can_push_.notify_all();
  can_pop_.notify_all();
}

size_t TraceStream::chunk_high_water() const {
  MutexLock lk(m_);
  return chunk_hwm_;
}

uint64_t TraceStream::access_high_water() const {
  MutexLock lk(m_);
  return access_hwm_;
}

size_t TraceStream::queued() const {
  MutexLock lk(m_);
  return q_.size();
}

bool TraceStream::closed() const {
  MutexLock lk(m_);
  return closed_;
}

bool TraceStream::cancelled() const {
  MutexLock lk(m_);
  return cancelled_;
}

}  // namespace slc

// GDDR5 channel model: banks with open-row policy, FR-FCFS scheduling
// (row hits first, then oldest), and a data bus tracked in 16 B beats so any
// MAG (16/32/64 B) occupies the pins for exactly its transfer share.
//
// A burst of MAG bytes takes mag/16 beats; the bus moves `beats_per_cycle`
// (2 by default -> 32 B per memory cycle per channel, Table II's 192.4 GB/s
// across six channels).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/sim_config.h"

namespace slc {

/// One pending DRAM command (a whole compressed-block fetch/write of
/// `bursts` consecutive MAG bursts, plus metadata fills of one burst).
struct DramRequest {
  uint64_t addr = 0;
  uint32_t bursts = 1;
  bool write = false;
  bool metadata = false;
  uint64_t enqueue_cycle = 0;
  uint64_t tag = 0;  ///< caller cookie to match completions
};

struct DramCompletion {
  uint64_t tag = 0;
  bool write = false;
  bool metadata = false;
  uint64_t finish_cycle = 0;
};

class DramChannel {
 public:
  DramChannel(const GpuSimConfig& cfg, SimStats& stats);

  void push_read(const DramRequest& r) { reads_.push_back(r); }
  void push_write(const DramRequest& r) { writes_.push_back(r); }

  /// Advances scheduling up to `cycle`; completed requests appear in
  /// completions(). Returns true if any work remains queued or in flight.
  void tick(uint64_t cycle);

  bool busy() const { return !reads_.empty() || !writes_.empty() || !completions_.empty(); }
  size_t read_queue_depth() const { return reads_.size(); }
  size_t write_queue_depth() const { return writes_.size(); }

  std::deque<DramCompletion>& completions() { return completions_; }
  const std::deque<DramCompletion>& completions() const { return completions_; }

  /// Next cycle at which this channel can possibly make progress (for the
  /// simulator's idle fast-forward).
  uint64_t next_event_cycle(uint64_t now) const;

 private:
  struct Bank {
    bool row_open = false;
    uint64_t open_row = 0;
    uint64_t ready_cycle = 0;  ///< earliest next column command
    uint64_t act_cycle = 0;    ///< when the open row was activated (tRAS)
  };

  const GpuSimConfig& cfg_;
  SimStats& stats_;
  std::vector<Bank> banks_;
  uint64_t bus_free_cycle_ = 0;
  std::deque<DramRequest> reads_;
  std::deque<DramRequest> writes_;
  std::deque<DramCompletion> completions_;

  void locate(uint64_t addr, size_t* bank, uint64_t* row) const;
  /// Issues one request if a bank + the bus can take it; returns true if
  /// something was scheduled.
  bool try_issue(std::deque<DramRequest>& q, uint64_t cycle);
};

}  // namespace slc

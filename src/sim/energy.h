// GPUSimPow-style component energy model (paper Sec. IV-A: GPUSimPow
// extended with RTL-based power models of E2MC and TSLC).
//
// Energy = static power x execution time + per-event dynamic energies.
// The paper's energy savings come from two terms this model captures:
// fewer DRAM bursts (dynamic) and shorter runtime (static + SM activity).
// Codec energies derive from Table I: 1.62 mW x 60 cycles @1 GHz per
// compression, 0.21 mW x 20 cycles per decompression.
#pragma once

#include "sim/sim_config.h"

namespace slc {

struct EnergyParams {
  // Dynamic energy per event (joules). DRAM figures are per 32 B burst
  // (GDDR5-class ~65 pJ/bit incl. I/O); other MAGs scale linearly.
  double dram_burst32_j = 16.6e-9;
  double dram_activate_j = 2.5e-9;
  double l2_access_j = 1.1e-9;
  double l1_access_j = 0.45e-9;
  double icnt_block_j = 0.30e-9;
  double compression_j = 0.097e-9;    // 1.62 mW x 60 ns (Table I)
  double decompression_j = 0.0042e-9; // 0.21 mW x 20 ns (Table I)

  // Static / activity power (watts), GTX580-class (244 W TDP).
  double chip_static_w = 92.0;   ///< leakage + clocks
  double sm_dynamic_w = 118.0;   ///< SM compute activity while executing
  double dram_static_w = 14.0;   ///< DRAM background
};

struct EnergyBreakdown {
  double dram_j = 0.0;
  double cache_j = 0.0;
  double icnt_j = 0.0;
  double codec_j = 0.0;
  double static_j = 0.0;
  double sm_j = 0.0;

  double total_j() const { return dram_j + cache_j + icnt_j + codec_j + static_j + sm_j; }
  /// Energy-delay product in joule-seconds.
  double edp(double seconds) const { return total_j() * seconds; }
};

EnergyBreakdown compute_energy(const SimStats& stats, const GpuSimConfig& cfg,
                               const EnergyParams& params = {});

}  // namespace slc

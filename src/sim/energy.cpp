#include "sim/energy.h"

namespace slc {

EnergyBreakdown compute_energy(const SimStats& stats, const GpuSimConfig& cfg,
                               const EnergyParams& p) {
  EnergyBreakdown e;
  const double t = stats.exec_seconds(cfg);
  const double burst_scale = static_cast<double>(cfg.mag_bytes) / 32.0;

  e.dram_j = static_cast<double>(stats.dram_bursts_total()) * p.dram_burst32_j * burst_scale +
             static_cast<double>(stats.row_misses) * p.dram_activate_j +
             p.dram_static_w * t;
  e.cache_j = static_cast<double>(stats.l2_hits + stats.l2_misses + stats.l2_writebacks) *
                  p.l2_access_j +
              static_cast<double>(stats.l1_hits + stats.l1_misses) * p.l1_access_j;
  e.icnt_j = static_cast<double>(stats.l1_misses + stats.writes) * p.icnt_block_j;
  e.codec_j = static_cast<double>(stats.compressions) * p.compression_j +
              static_cast<double>(stats.decompressions) * p.decompression_j;
  e.static_j = p.chip_static_w * t;
  e.sm_j = p.sm_dynamic_w * t;
  return e;
}

}  // namespace slc

// Set-associative cache model with LRU replacement, used for the per-SM L1
// (write-through, no write-allocate — GPU global stores bypass L1), the
// sliced L2 (write-back, write-allocate; full-line streaming stores allocate
// without a fill fetch), and the memory controller's metadata cache.
//
// The model is timing-free: it answers hit/miss and eviction questions; the
// caller owns all latency accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace slc {

class Cache {
 public:
  /// `line_bytes` must be a power of two.
  Cache(size_t total_bytes, unsigned ways, size_t line_bytes);

  struct LineInfo {
    uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    uint32_t bursts = 0;  ///< compressed burst count carried for writebacks
    uint64_t lru = 0;
  };

  /// Read lookup; updates LRU on hit.
  bool lookup(uint64_t addr);

  /// Evicted dirty line (address + bursts), if any.
  struct Eviction {
    uint64_t addr = 0;
    uint32_t bursts = 0;
  };

  /// Fills a line (read response or store allocate). Returns the dirty line
  /// it displaced, if any.
  std::optional<Eviction> fill(uint64_t addr, bool dirty, uint32_t bursts);

  /// Store hit path: marks the line dirty and refreshes its burst count.
  /// Returns false on miss (caller then decides to allocate or bypass).
  bool write_hit(uint64_t addr, uint32_t bursts);

  /// Invalidates everything (kernel boundary flushes for L1).
  void clear();

  size_t num_sets() const { return sets_; }
  unsigned ways() const { return ways_; }

 private:
  size_t sets_;
  unsigned ways_;
  size_t line_bytes_;
  unsigned line_shift_;
  std::vector<LineInfo> lines_;  // sets_ x ways_
  uint64_t tick_ = 0;

  size_t set_index(uint64_t addr) const { return (addr >> line_shift_) % sets_; }
  uint64_t tag_of(uint64_t addr) const { return addr >> line_shift_; }
  LineInfo* find(uint64_t addr);
  LineInfo* victim(uint64_t addr);
};

}  // namespace slc

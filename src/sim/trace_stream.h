// TraceStream: the bounded producer/consumer channel between trace capture
// and timing replay.
//
// One chunk = one completed KernelTrace. The producer side (ApproxMemory's
// trace sink, a bench generator, or the materialized-vector adapter in
// GpuSim::run) pushes chunks as kernels finish capture; the consumer side
// (GpuSim::run(TraceStream&)) pops and replays them. The queue is bounded by
// a chunk budget: a push against a full queue blocks until the simulator
// drains a chunk, so the functional run's trace footprint stays
// O(stream_chunk_budget) kernels instead of O(whole trace) — backpressure,
// not buffering, is what removes the memory bound on trace length.
//
// Lifecycle: the producer push()es then close()s (end of trace: pop returns
// null once the queue drains). The consumer may cancel() instead — queued
// chunks are discarded and every present or future push returns false — so
// a consumer abandoning mid-stream (error, shutdown, test teardown) unblocks
// a producer parked on backpressure instead of deadlocking it. Both sides
// must settle (producer sees push -> false, or the consumer joins the
// producer thread) before the stream is destroyed.
//
// Chunks are shared_ptr<const KernelTrace> so the materialized adapter can
// wrap a caller-owned vector without copying (aliasing, non-owning
// pointers) while the streaming path hands over heap-allocated chunks.
//
// Footprint accounting: chunk_high_water() / access_high_water() record the
// deepest the queue ever got (in kernels and in TraceAccess entries), so
// "bounded by the budget" is measured, not asserted — SimStats carries both
// as stream_chunk_hwm / stream_access_hwm.
//
// Thread safety: any number of producers/consumers, though the intended
// topology is one of each. Annotated per the repo lock discipline
// (common/thread_safety.h): explicit while-loop condvar waits, no predicate
// lambdas.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>

#include "common/thread_safety.h"
#include "workloads/approx_memory.h"

namespace slc {

class TraceStream {
 public:
  /// `chunk_budget` bounds the number of queued chunks; 0 = unbounded (the
  /// materialized adapter's mode — the whole trace already exists, so
  /// backpressure would only deadlock the single-threaded caller).
  explicit TraceStream(size_t chunk_budget = 0) : budget_(chunk_budget) {}

  // --- producer side -------------------------------------------------------

  /// Queues one kernel chunk, blocking while the queue is at budget. Returns
  /// false when the consumer cancelled (the chunk is dropped); throws
  /// std::logic_error on push after close (producer bug). Moves the trace
  /// into a heap chunk; use the shared_ptr overload to avoid the allocation.
  bool push(KernelTrace chunk) SLC_EXCLUDES(m_);
  /// Same, for a caller-managed chunk (owning or aliasing/non-owning — the
  /// materialized adapter borrows the vector's elements this way).
  bool push(std::shared_ptr<const KernelTrace> chunk) SLC_EXCLUDES(m_);

  /// End of trace: no further push is legal; pop drains the queue then
  /// returns null. Idempotent.
  void close() SLC_EXCLUDES(m_);

  // --- consumer side -------------------------------------------------------

  /// Next chunk, blocking while the queue is empty and the stream is open.
  /// Null means end of stream: closed and drained, or cancelled.
  std::shared_ptr<const KernelTrace> pop() SLC_EXCLUDES(m_);

  /// Consumer abandons the stream: discards queued chunks and makes every
  /// blocked or future push return false. Idempotent.
  void cancel() SLC_EXCLUDES(m_);

  // --- observability -------------------------------------------------------

  size_t chunk_budget() const { return budget_; }
  /// Peak queue depth in chunks (kernels).
  size_t chunk_high_water() const SLC_EXCLUDES(m_);
  /// Peak queue depth in TraceAccess entries — the footprint proxy.
  uint64_t access_high_water() const SLC_EXCLUDES(m_);
  size_t queued() const SLC_EXCLUDES(m_);
  bool closed() const SLC_EXCLUDES(m_);
  bool cancelled() const SLC_EXCLUDES(m_);

 private:
  const size_t budget_;

  mutable Mutex m_;
  CondVar can_push_;  ///< signals: queue below budget, or cancelled/closed
  CondVar can_pop_;   ///< signals: queue non-empty, or closed/cancelled
  std::deque<std::shared_ptr<const KernelTrace>> q_ SLC_GUARDED_BY(m_);
  bool closed_ SLC_GUARDED_BY(m_) = false;
  bool cancelled_ SLC_GUARDED_BY(m_) = false;
  size_t chunk_hwm_ SLC_GUARDED_BY(m_) = 0;
  uint64_t queued_accesses_ SLC_GUARDED_BY(m_) = 0;
  uint64_t access_hwm_ SLC_GUARDED_BY(m_) = 0;
};

}  // namespace slc

// Simulator configuration (paper Table II: a GTX580-class GPU) and the
// counter set every run reports.
//
// The simulator is a cycle-level model of the paper's memory system: SMs
// replay kernel block traces through per-SM L1s, a crossbar, sliced L2, and
// six memory controllers with GDDR5 bank timing, metadata cache, and
// (de)compression pipelines. One global clock runs at the memory-controller
// frequency (1002 MHz); SM compute delays are scaled by the 822/1002 clock
// ratio.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "common/block.h"

namespace slc {

struct GpuSimConfig {
  // Compute subsystem (Table II).
  unsigned num_sms = 16;
  double sm_clock_ghz = 0.822;
  double mem_clock_ghz = 1.002;
  unsigned max_outstanding_per_sm = 64;  ///< MSHR entries / concurrent misses

  // Caches.
  size_t l1_bytes = 16 * 1024;   ///< per SM
  unsigned l1_ways = 4;
  size_t l2_bytes = 768 * 1024;  ///< total, sliced across MCs
  unsigned l2_ways = 16;
  size_t line_bytes = kBlockBytes;

  // Interconnect (one-way latency, memory cycles).
  unsigned icnt_latency = 16;

  // Memory system.
  unsigned num_mcs = 6;
  size_t mag_bytes = kDefaultMagBytes;  ///< 32-bit bus x burst 8 (GDDR5)
  unsigned banks_per_mc = 16;
  size_t row_bytes = 2048;
  unsigned t_rcd = 12, t_rp = 12, t_cl = 12, t_ras = 28;  ///< memory cycles
  /// Data bus beats per cycle; one beat = 16 B, so 32 B/cycle/MC
  /// = 6 x 32 B x 1.002 GHz = 192.4 GB/s aggregate (Table II).
  unsigned beats_per_cycle = 2;

  // L2 latency (lookup + queueing, memory cycles).
  unsigned l2_latency = 30;
  unsigned l1_latency = 24;  ///< hit latency, for stats only

  // Metadata cache (per MC): 2-bit burst counts, 64 B lines.
  size_t mdc_lines = 256;
  size_t mdc_line_coverage_blocks = 256;  ///< 64 B of 2-bit entries

  // Codec pipeline latencies (memory cycles; Sec. IV-A). Zero for RAW.
  unsigned compress_latency = 0;
  unsigned decompress_latency = 0;

  /// Write-queue watermark: writes drain when reads are idle or the queue
  /// exceeds this depth.
  size_t write_drain_watermark = 32;
  /// FR-FCFS scheduler window: only the oldest N queued requests are
  /// candidates each cycle (real controllers use a bounded CAM).
  size_t scheduler_window = 64;

  // Streaming replay (sim/trace_stream.h).
  /// Threads sharding the memory-controller phase of each simulation step
  /// (each owns a fixed disjoint set of DRAM channels; results are
  /// bit-identical for any value). 1 = serial; 0 = hardware concurrency.
  /// Clamped to num_mcs — more shards than channels would idle.
  unsigned sim_workers = 1;
  /// Bound on queued kernel chunks between trace capture and replay
  /// (TraceStream budget); 0 = unbounded. The convention every harness that
  /// builds a stream from this config follows — the simulator itself never
  /// allocates the stream.
  size_t stream_chunk_budget = 8;

  double bandwidth_gbps() const {
    return static_cast<double>(num_mcs) * 32.0 * mem_clock_ghz;
  }
  size_t max_bursts() const { return line_bytes / mag_bytes; }
  double sm_cycle_scale() const { return mem_clock_ghz / sm_clock_ghz; }
};

/// Counters accumulated over one simulation.
struct SimStats {
  uint64_t cycles = 0;           ///< memory-clock cycles to drain all kernels
  uint64_t kernels = 0;          ///< kernel launches replayed
  uint64_t accesses = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;
  uint64_t l2_writebacks = 0;
  uint64_t dram_read_bursts = 0;
  uint64_t dram_write_bursts = 0;
  uint64_t metadata_bursts = 0;  ///< MDC-miss fills
  uint64_t mdc_hits = 0;
  uint64_t mdc_misses = 0;
  uint64_t row_hits = 0;
  uint64_t row_misses = 0;       ///< activates (incl. conflicts)
  uint64_t decompressions = 0;
  uint64_t compressions = 0;
  /// Peak queued trace chunks/accesses observed on the TraceStream a run
  /// consumed (the materialized adapter reports the whole trace — its honest
  /// footprint). Watermarks, not event counts: merge() takes the max and
  /// same_counters() ignores them, since a streaming and a materialized
  /// replay of the same trace legitimately differ here and nowhere else.
  uint64_t stream_chunk_hwm = 0;
  uint64_t stream_access_hwm = 0;

  /// All-field equality (the thread-count-invariance checks compare whole
  /// stat blocks so a new counter can never silently escape them).
  bool operator==(const SimStats&) const = default;

  /// Every timing/traffic counter equal, stream watermarks ignored — the
  /// equality a streaming replay is guaranteed to share with a materialized
  /// (or differently-sharded) replay of the same trace.
  bool same_counters(const SimStats& o) const {
    SimStats a = *this, b = o;
    a.stream_chunk_hwm = b.stream_chunk_hwm = 0;
    a.stream_access_hwm = b.stream_access_hwm = 0;
    return a == b;
  }

  /// Folds another accumulator into this one. Event counters add and
  /// watermarks (cycles, stream hwm) take the max, so merging is associative
  /// and commutative and a default-constructed SimStats is the identity —
  /// the contract that makes per-shard stats reconcile to the same totals
  /// in any merge order (1 worker == N workers).
  void merge(const SimStats& o) {
    cycles = std::max(cycles, o.cycles);
    kernels += o.kernels;
    accesses += o.accesses;
    reads += o.reads;
    writes += o.writes;
    l1_hits += o.l1_hits;
    l1_misses += o.l1_misses;
    l2_hits += o.l2_hits;
    l2_misses += o.l2_misses;
    l2_writebacks += o.l2_writebacks;
    dram_read_bursts += o.dram_read_bursts;
    dram_write_bursts += o.dram_write_bursts;
    metadata_bursts += o.metadata_bursts;
    mdc_hits += o.mdc_hits;
    mdc_misses += o.mdc_misses;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    decompressions += o.decompressions;
    compressions += o.compressions;
    stream_chunk_hwm = std::max(stream_chunk_hwm, o.stream_chunk_hwm);
    stream_access_hwm = std::max(stream_access_hwm, o.stream_access_hwm);
  }

  uint64_t dram_bursts_total() const {
    return dram_read_bursts + dram_write_bursts + metadata_bursts;
  }
  double exec_seconds(const GpuSimConfig& cfg) const {
    return static_cast<double>(cycles) / (cfg.mem_clock_ghz * 1e9);
  }
  /// Achieved DRAM data bandwidth in GB/s (excluding metadata).
  double achieved_bandwidth_gbps(const GpuSimConfig& cfg) const {
    const double bytes = static_cast<double>(dram_read_bursts + dram_write_bursts) *
                         static_cast<double>(cfg.mag_bytes);
    return bytes / exec_seconds(cfg) / 1e9;
  }
};

}  // namespace slc

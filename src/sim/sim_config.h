// Simulator configuration (paper Table II: a GTX580-class GPU) and the
// counter set every run reports.
//
// The simulator is a cycle-level model of the paper's memory system: SMs
// replay kernel block traces through per-SM L1s, a crossbar, sliced L2, and
// six memory controllers with GDDR5 bank timing, metadata cache, and
// (de)compression pipelines. One global clock runs at the memory-controller
// frequency (1002 MHz); SM compute delays are scaled by the 822/1002 clock
// ratio.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/block.h"

namespace slc {

struct GpuSimConfig {
  // Compute subsystem (Table II).
  unsigned num_sms = 16;
  double sm_clock_ghz = 0.822;
  double mem_clock_ghz = 1.002;
  unsigned max_outstanding_per_sm = 64;  ///< MSHR entries / concurrent misses

  // Caches.
  size_t l1_bytes = 16 * 1024;   ///< per SM
  unsigned l1_ways = 4;
  size_t l2_bytes = 768 * 1024;  ///< total, sliced across MCs
  unsigned l2_ways = 16;
  size_t line_bytes = kBlockBytes;

  // Interconnect (one-way latency, memory cycles).
  unsigned icnt_latency = 16;

  // Memory system.
  unsigned num_mcs = 6;
  size_t mag_bytes = kDefaultMagBytes;  ///< 32-bit bus x burst 8 (GDDR5)
  unsigned banks_per_mc = 16;
  size_t row_bytes = 2048;
  unsigned t_rcd = 12, t_rp = 12, t_cl = 12, t_ras = 28;  ///< memory cycles
  /// Data bus beats per cycle; one beat = 16 B, so 32 B/cycle/MC
  /// = 6 x 32 B x 1.002 GHz = 192.4 GB/s aggregate (Table II).
  unsigned beats_per_cycle = 2;

  // L2 latency (lookup + queueing, memory cycles).
  unsigned l2_latency = 30;
  unsigned l1_latency = 24;  ///< hit latency, for stats only

  // Metadata cache (per MC): 2-bit burst counts, 64 B lines.
  size_t mdc_lines = 256;
  size_t mdc_line_coverage_blocks = 256;  ///< 64 B of 2-bit entries

  // Codec pipeline latencies (memory cycles; Sec. IV-A). Zero for RAW.
  unsigned compress_latency = 0;
  unsigned decompress_latency = 0;

  /// Write-queue watermark: writes drain when reads are idle or the queue
  /// exceeds this depth.
  size_t write_drain_watermark = 32;
  /// FR-FCFS scheduler window: only the oldest N queued requests are
  /// candidates each cycle (real controllers use a bounded CAM).
  size_t scheduler_window = 64;

  double bandwidth_gbps() const {
    return static_cast<double>(num_mcs) * 32.0 * mem_clock_ghz;
  }
  size_t max_bursts() const { return line_bytes / mag_bytes; }
  double sm_cycle_scale() const { return mem_clock_ghz / sm_clock_ghz; }
};

/// Counters accumulated over one simulation.
struct SimStats {
  uint64_t cycles = 0;           ///< memory-clock cycles to drain all kernels
  uint64_t accesses = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t l1_hits = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;
  uint64_t l2_writebacks = 0;
  uint64_t dram_read_bursts = 0;
  uint64_t dram_write_bursts = 0;
  uint64_t metadata_bursts = 0;  ///< MDC-miss fills
  uint64_t mdc_hits = 0;
  uint64_t mdc_misses = 0;
  uint64_t row_hits = 0;
  uint64_t row_misses = 0;       ///< activates (incl. conflicts)
  uint64_t decompressions = 0;
  uint64_t compressions = 0;

  uint64_t dram_bursts_total() const {
    return dram_read_bursts + dram_write_bursts + metadata_bursts;
  }
  double exec_seconds(const GpuSimConfig& cfg) const {
    return static_cast<double>(cycles) / (cfg.mem_clock_ghz * 1e9);
  }
  /// Achieved DRAM data bandwidth in GB/s (excluding metadata).
  double achieved_bandwidth_gbps(const GpuSimConfig& cfg) const {
    const double bytes = static_cast<double>(dram_read_bursts + dram_write_bursts) *
                         static_cast<double>(cfg.mag_bytes);
    return bytes / exec_seconds(cfg) / 1e9;
  }
};

}  // namespace slc

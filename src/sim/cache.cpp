#include "sim/cache.h"

#include <cassert>

namespace slc {

Cache::Cache(size_t total_bytes, unsigned ways, size_t line_bytes)
    : ways_(ways), line_bytes_(line_bytes) {
  assert(line_bytes && (line_bytes & (line_bytes - 1)) == 0);
  line_shift_ = 0;
  for (size_t v = line_bytes; v > 1; v >>= 1) ++line_shift_;
  sets_ = total_bytes / line_bytes / ways;
  assert(sets_ >= 1);
  lines_.assign(sets_ * ways_, LineInfo{});
}

Cache::LineInfo* Cache::find(uint64_t addr) {
  const size_t set = set_index(addr);
  const uint64_t tag = tag_of(addr);
  for (unsigned w = 0; w < ways_; ++w) {
    LineInfo& li = lines_[set * ways_ + w];
    if (li.valid && li.tag == tag) return &li;
  }
  return nullptr;
}

Cache::LineInfo* Cache::victim(uint64_t addr) {
  const size_t set = set_index(addr);
  LineInfo* best = &lines_[set * ways_];
  for (unsigned w = 0; w < ways_; ++w) {
    LineInfo& li = lines_[set * ways_ + w];
    if (!li.valid) return &li;
    if (li.lru < best->lru) best = &li;
  }
  return best;
}

bool Cache::lookup(uint64_t addr) {
  LineInfo* li = find(addr);
  if (li == nullptr) return false;
  li->lru = ++tick_;
  return true;
}

std::optional<Cache::Eviction> Cache::fill(uint64_t addr, bool dirty, uint32_t bursts) {
  if (LineInfo* hit = find(addr)) {
    // Refill of a resident line (e.g. racing fills): just refresh state.
    hit->dirty = hit->dirty || dirty;
    hit->bursts = bursts;
    hit->lru = ++tick_;
    return std::nullopt;
  }
  LineInfo* v = victim(addr);
  std::optional<Eviction> evicted;
  if (v->valid && v->dirty) {
    evicted = Eviction{v->tag << line_shift_, v->bursts};
  }
  v->valid = true;
  v->dirty = dirty;
  v->tag = tag_of(addr);
  v->bursts = bursts;
  v->lru = ++tick_;
  return evicted;
}

bool Cache::write_hit(uint64_t addr, uint32_t bursts) {
  LineInfo* li = find(addr);
  if (li == nullptr) return false;
  li->dirty = true;
  li->bursts = bursts;
  li->lru = ++tick_;
  return true;
}

void Cache::clear() {
  for (auto& li : lines_) li = LineInfo{};
}

}  // namespace slc

#include "sim/gpu_sim.h"

#include <algorithm>
#include <cassert>

namespace slc {

GpuSim::McState::McState(const GpuSimConfig& cfg)
    : l2(cfg.l2_bytes / cfg.num_mcs, cfg.l2_ways, cfg.line_bytes),
      mdc(cfg.mdc_lines * 64, 4, 64),
      dram(cfg, stats) {}

uint64_t GpuSim::McState::alloc_tag(const InFlight& f) {
  for (size_t t = 0; t < tag_free.size(); ++t) {
    if (tag_free[t]) {
      tag_free[t] = false;
      inflight_reads[t] = f;
      return t;
    }
  }
  tag_free.push_back(false);
  inflight_reads.push_back(f);
  return inflight_reads.size() - 1;
}

GpuSim::GpuSim(GpuSimConfig cfg) : cfg_(cfg) {
  sms_.resize(cfg_.num_sms);
  for (unsigned i = 0; i < cfg_.num_sms; ++i)
    l1_.emplace_back(cfg_.l1_bytes, cfg_.l1_ways, cfg_.line_bytes);
  mcs_.reserve(cfg_.num_mcs);
  for (unsigned i = 0; i < cfg_.num_mcs; ++i) mcs_.push_back(std::make_unique<McState>(cfg_));
}

size_t GpuSim::mc_index(uint64_t addr) const {
  // 256 B chunks interleave across memory partitions (GPGPU-Sim style).
  return (addr >> 8) % cfg_.num_mcs;
}

uint64_t GpuSim::channel_local(uint64_t addr) const {
  return ((addr >> 8) / cfg_.num_mcs) * 256 + (addr & 255);
}

void GpuSim::sm_issue(uint16_t sm_id, double compute_scale) {
  SmState& sm = sms_[sm_id];
  if (sm.next >= sm.queue.size()) return;
  if (sm.credit >= 1.0) return;
  const TraceAccess& a = sm.queue[sm.next];
  if (!a.write && sm.outstanding >= cfg_.max_outstanding_per_sm) return;

  sm.next++;
  sm.credit += compute_scale;
  ++stats_.accesses;

  if (a.write) {
    ++stats_.writes;
    // Write-through L1 without allocation; invalidate a stale copy is
    // approximated by a write_hit update when present.
    l1_[sm_id].write_hit(a.addr, a.bursts);
    InFlight f{a, sm_id, cycle_ + cfg_.icnt_latency};
    mcs_[mc_index(a.addr)]->arrivals.push(f);
    return;
  }

  ++stats_.reads;
  if (l1_[sm_id].lookup(a.addr)) {
    ++stats_.l1_hits;
    return;  // hit latency does not occupy an MSHR
  }
  ++stats_.l1_misses;
  ++sm.outstanding;
  InFlight f{a, sm_id, cycle_ + cfg_.icnt_latency};
  mcs_[mc_index(a.addr)]->arrivals.push(f);
}

// Runs on whichever shard owns mc_id during the parallel phase: touches only
// this McState (its caches, channel, queues, tag pool and private stats) plus
// driver-written-between-barriers cycle_/cfg_, so shards never race and the
// channel's evolution is a pure function of its own request sequence —
// identical for any worker count.
void GpuSim::mc_process(size_t mc_id) {
  McState& mc = *mcs_[mc_id];

  // Requests arriving from the interconnect.
  while (!mc.arrivals.empty() && mc.arrivals.top().ready <= cycle_) {
    InFlight f = mc.arrivals.top();
    mc.arrivals.pop();
    const TraceAccess& a = f.access;
    if (a.write) {
      // L2 write path: full-line streaming store -> allocate without fetch.
      if (!mc.l2.write_hit(a.addr, a.bursts)) {
        auto ev = mc.l2.fill(a.addr, /*dirty=*/true, a.bursts);
        if (ev) {
          ++mc.stats.l2_writebacks;
          ++mc.stats.compressions;
          TraceAccess wb;
          wb.addr = ev->addr;
          wb.bursts = ev->bursts;
          wb.write = true;
          mc.staged.push(InFlight{wb, f.sm, cycle_ + cfg_.compress_latency});
        }
      }
      continue;
    }
    // Read path.
    if (mc.l2.lookup(a.addr)) {
      ++mc.stats.l2_hits;
      InFlight resp = f;
      resp.ready = cycle_ + cfg_.l2_latency + cfg_.icnt_latency;
      mc.responses.push(resp);
      continue;
    }
    ++mc.stats.l2_misses;
    // Metadata cache: the 2-bit burst count must be known before the fetch.
    const uint64_t meta_line = a.addr / (cfg_.line_bytes * cfg_.mdc_line_coverage_blocks);
    uint64_t extra_delay = 0;
    if (mc.mdc.lookup(meta_line * 64)) {
      ++mc.stats.mdc_hits;
    } else {
      ++mc.stats.mdc_misses;
      mc.mdc.fill(meta_line * 64, /*dirty=*/false, 1);
      // Charge a one-burst metadata fetch (bandwidth) and serialize the data
      // fetch behind its approximate service time.
      DramRequest meta;
      meta.addr = 0x8'0000'0000ull + meta_line * 64;
      meta.bursts = 1;
      meta.metadata = true;
      meta.enqueue_cycle = cycle_;
      meta.tag = UINT64_MAX;  // fire-and-forget
      mc.dram.push_read(meta);
      extra_delay = cfg_.t_rcd + cfg_.t_cl + 1;
    }
    DramRequest req;
    req.addr = channel_local(a.addr);
    req.bursts = std::max<uint32_t>(a.bursts, 1);
    req.enqueue_cycle = cycle_ + extra_delay;
    req.tag = mc.alloc_tag(f);
    mc.dram.push_read(req);
  }

  // Writebacks whose compression pipeline completed.
  while (!mc.staged.empty() && mc.staged.top().ready <= cycle_) {
    const InFlight f = mc.staged.top();
    mc.staged.pop();
    DramRequest req;
    req.addr = channel_local(f.access.addr);
    req.bursts = std::max<uint32_t>(f.access.bursts, 1);
    req.write = true;
    req.enqueue_cycle = cycle_;
    req.tag = UINT64_MAX;
    mc.dram.push_write(req);
  }

  mc.dram.tick(cycle_);

  // DRAM completions: fill L2, start decompression, respond to the SM.
  auto& comps = mc.dram.completions();
  while (!comps.empty() && comps.front().finish_cycle <= cycle_) {
    const DramCompletion c = comps.front();
    comps.pop_front();
    if (c.write || c.metadata || c.tag == UINT64_MAX) continue;
    InFlight f = mc.inflight_reads[c.tag];
    mc.tag_free[c.tag] = true;
    auto ev = mc.l2.fill(f.access.addr, /*dirty=*/false, f.access.bursts);
    if (ev) {
      ++mc.stats.l2_writebacks;
      ++mc.stats.compressions;
      TraceAccess wb;
      wb.addr = ev->addr;
      wb.bursts = ev->bursts;
      wb.write = true;
      mc.staged.push(InFlight{wb, f.sm, cycle_ + cfg_.compress_latency});
    }
    uint64_t lat = cfg_.icnt_latency;
    if (f.access.bursts < cfg_.max_bursts()) {
      ++mc.stats.decompressions;
      lat += cfg_.decompress_latency;
    }
    f.ready = cycle_ + lat;
    mc.responses.push(f);
  }
}

// Body of one extra shard thread. The epoch/done handshake is the only
// cross-thread communication: an acquire-load of epoch_ sees every
// driver-side write made before the matching release-increment (SM pushes
// into arrivals, the cycle_ advance), and the driver's acquire-spin on done_
// sees every MC mutation made before the worker's release-increment.
void GpuSim::worker_loop(unsigned shard, unsigned num_shards) {
  uint64_t seen = 0;
  for (;;) {
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::yield();
    }
    ++seen;
    for (size_t m = shard; m < mcs_.size(); m += num_shards) mc_process(m);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void GpuSim::mc_phase() {
  if (workers_.empty()) {
    for (size_t m = 0; m < mcs_.size(); ++m) mc_process(m);
    return;
  }
  const unsigned num_shards = active_workers_ + 1;  // driver is shard 0
  const uint64_t step = epoch_.fetch_add(1, std::memory_order_release) + 1;
  for (size_t m = 0; m < mcs_.size(); m += num_shards) mc_process(m);
  const uint64_t target = step * active_workers_;
  while (done_.load(std::memory_order_acquire) < target) std::this_thread::yield();
}

void GpuSim::deliver_responses() {
  // Fixed channel order: which MC's response fills L1 first on a shared
  // cycle is part of the deterministic schedule, not a thread-timing
  // artifact.
  for (auto& mcp : mcs_) {
    InFlightQueue& responses = mcp->responses;
    while (!responses.empty() && responses.top().ready <= cycle_) {
      const InFlight f = responses.top();
      responses.pop();
      SmState& sm = sms_[f.sm];
      assert(sm.outstanding > 0);
      --sm.outstanding;
      l1_[f.sm].fill(f.access.addr, /*dirty=*/false, f.access.bursts);
    }
  }
}

bool GpuSim::drained() const {
  for (const SmState& sm : sms_)
    if (sm.next < sm.queue.size() || sm.outstanding > 0) return false;
  for (const auto& mcp : mcs_) {
    const McState& mc = *mcp;
    if (!mc.arrivals.empty() || !mc.staged.empty() || !mc.responses.empty() || mc.dram.busy())
      return false;
  }
  return true;
}

uint64_t GpuSim::next_event_cycle() const {
  uint64_t nxt = UINT64_MAX;
  auto consider = [&](uint64_t c) { nxt = std::min(nxt, c); };
  for (const SmState& sm : sms_) {
    if (sm.next < sm.queue.size()) {
      if (sm.credit < 1.0 || sm.queue[sm.next].write ||
          sm.outstanding < cfg_.max_outstanding_per_sm) {
        // Either issueable now/soon (credit drains 1/cycle)...
        consider(cycle_ + std::max<uint64_t>(1, static_cast<uint64_t>(sm.credit)));
      }
      // ...or blocked on a response (covered by the MC responses below).
    }
  }
  for (const auto& mcp : mcs_) {
    const McState& mc = *mcp;
    if (!mc.arrivals.empty()) consider(mc.arrivals.top().ready);
    if (!mc.staged.empty()) consider(mc.staged.top().ready);
    if (!mc.responses.empty()) consider(mc.responses.top().ready);
    if (!mc.dram.completions().empty()) consider(mc.dram.completions().front().finish_cycle);
    consider(mc.dram.next_event_cycle(cycle_));
  }
  return nxt == UINT64_MAX ? cycle_ + 1 : std::max(nxt, cycle_ + 1);
}

void GpuSim::run_kernel(const KernelTrace& kernel) {
  ++stats_.kernels;
  // Distribute CTAs round-robin over SMs.
  for (SmState& sm : sms_) {
    sm.queue.clear();
    sm.next = 0;
    sm.credit = 0.0;
  }
  const uint32_t per_cta = std::max<uint32_t>(kernel.accesses_per_cta, 1);
  for (size_t i = 0; i < kernel.accesses.size(); ++i) {
    const size_t cta = i / per_cta;
    sms_[cta % cfg_.num_sms].queue.push_back(kernel.accesses[i]);
  }
  // L1s do not persist across kernel launches.
  for (Cache& c : l1_) c.clear();

  const double compute_scale = kernel.compute_per_access * cfg_.sm_cycle_scale();
  while (!drained()) {
    for (uint16_t s = 0; s < cfg_.num_sms; ++s) sm_issue(s, compute_scale);
    mc_phase();
    deliver_responses();

    const uint64_t nxt = next_event_cycle();
    const uint64_t step = nxt - cycle_;
    for (SmState& sm : sms_) sm.credit = std::max(0.0, sm.credit - static_cast<double>(step));
    cycle_ = nxt;
  }
}

void GpuSim::start_workers() {
  unsigned shards = cfg_.sim_workers != 0 ? cfg_.sim_workers : std::thread::hardware_concurrency();
  shards = std::clamp<unsigned>(shards, 1, cfg_.num_mcs);
  active_workers_ = shards - 1;
  if (active_workers_ == 0) return;
  stop_.store(false, std::memory_order_relaxed);
  epoch_.store(0, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  workers_.reserve(active_workers_);
  for (unsigned i = 0; i < active_workers_; ++i)
    workers_.emplace_back([this, i, shards] { worker_loop(i + 1, shards); });
}

void GpuSim::stop_workers() {
  if (workers_.empty()) return;
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  active_workers_ = 0;
}

void GpuSim::begin_run() {
  stats_ = SimStats{};
  cycle_ = 0;
  for (auto& mcp : mcs_) {
    mcp->stats = SimStats{};
    mcp->inflight_reads.clear();
    mcp->tag_free.clear();
  }
  start_workers();
}

SimStats GpuSim::end_run() {
  stop_workers();
  stats_.cycles = cycle_;
  // Drain-barrier reconciliation: per-channel accumulators fold into the
  // driver's stats in fixed channel order. merge() is associative with
  // identity, so the totals cannot depend on the worker count.
  for (const auto& mcp : mcs_) stats_.merge(mcp->stats);
  return stats_;
}

SimStats GpuSim::run(TraceStream& stream) {
  struct WorkerGuard {  // exception safety: never leak spinning shard threads
    GpuSim& sim;
    ~WorkerGuard() { sim.stop_workers(); }
  };
  begin_run();
  WorkerGuard guard{*this};
  while (std::shared_ptr<const KernelTrace> chunk = stream.pop()) run_kernel(*chunk);
  SimStats out = end_run();
  out.stream_chunk_hwm = stream.chunk_high_water();
  out.stream_access_hwm = stream.access_high_water();
  return out;
}

SimStats GpuSim::run(const std::vector<KernelTrace>& trace) {
  // Thin adapter per the streaming contract: wrap the materialized vector
  // in an already-closed, unbounded stream of borrowed chunks (aliasing
  // shared_ptrs — no copy; the vector outlives the run).
  TraceStream stream(0);
  for (const KernelTrace& k : trace)
    stream.push(std::shared_ptr<const KernelTrace>(std::shared_ptr<const void>(), &k));
  stream.close();
  return run(stream);
}

SimStats GpuSim::run(ApproxMemory& mem) {
  mem.flush();
  return run(mem.trace());
}

}  // namespace slc

#include "engine/codec_engine.h"

#include <algorithm>

namespace slc {

CodecEngine::CodecEngine(unsigned num_threads) {
  unsigned n = num_threads != 0 ? num_threads : std::thread::hardware_concurrency();
  n = std::max(1u, n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

CodecEngine::~CodecEngine() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::shared_ptr<CodecEngine> CodecEngine::shared_default() {
  static std::shared_ptr<CodecEngine> engine = std::make_shared<CodecEngine>();
  return engine;
}

std::shared_ptr<detail::EngineJob> CodecEngine::enqueue(
    size_t count, std::function<void(size_t, size_t, unsigned)> body) {
  auto job = std::make_shared<detail::EngineJob>();
  job->count = count;
  job->body = std::move(body);
  if (count == 0) {
    job->finished = true;
    return job;
  }
  // Dynamic work queue: ~8 shards per worker balances load without paying a
  // queue round-trip per block. Shard size never affects results, only how
  // the stream is cut across workers.
  const size_t target_shards = workers_.size() * 8;
  job->shard = std::clamp<size_t>((count + target_shards - 1) / target_shards, 1, 4096);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.push_back(job);
  }
  work_cv_.notify_all();
  return job;
}

void CodecEngine::worker_loop(unsigned id) {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    const std::shared_ptr<detail::EngineJob> job = queue_.front();
    const size_t begin = job->next;
    const size_t end = std::min(job->count, begin + job->shard);
    job->next = end;
    if (job->next >= job->count) queue_.pop_front();
    // A shard that already saw this job fail is cancelled, not run: the
    // first exception wins and the job drains as fast as workers can claim.
    const bool cancelled = job->error != nullptr;
    lk.unlock();
    std::exception_ptr thrown;
    if (!cancelled) {
      try {
        job->body(begin, end, id);
      } catch (...) {
        thrown = std::current_exception();
      }
    }
    lk.lock();
    if (thrown && !job->error) job->error = thrown;
    job->completed += end - begin;
    if (job->completed == job->count) {
      job->finished = true;
      job->body = nullptr;  // release captures as soon as the job drained
      done_cv_.notify_all();
    }
  }
}

void CodecEngine::wait_job(detail::EngineJob& job) {
  std::unique_lock<std::mutex> lk(mutex_);
  done_cv_.wait(lk, [&] { return job.finished; });
  if (job.error) {
    const std::exception_ptr e = job.error;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

bool CodecEngine::job_ready(const detail::EngineJob& job) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return job.finished;
}

CodecFuture<void> CodecEngine::submit(size_t count,
                                      std::function<void(size_t, size_t, unsigned)> body) {
  return submit_job<void>(count, std::move(body), {});
}

void CodecEngine::parallel_for(size_t count,
                               const std::function<void(size_t, size_t, unsigned)>& body) {
  if (count == 0) return;
  // Reference the caller's body instead of copying it: the job cannot
  // outlive this frame because wait_job blocks until it drained.
  const auto job = enqueue(count, [&body](size_t b, size_t e, unsigned w) { body(b, e, w); });
  wait_job(*job);
}

CodecFuture<CodecEngine::StreamAnalysis> CodecEngine::submit_analyze_indexed(
    size_t n_blocks, size_t mag_bytes,
    std::function<void(size_t, size_t, BlockAnalysis*)> produce,
    std::function<size_t(size_t)> original_bits) {
  struct WorkerStats {
    RatioAccumulator ratios;
    uint64_t lossy = 0;
    uint64_t truncated = 0;
  };
  // The job context owns everything the shards touch; the future's finalize
  // keeps it alive until the merged result is materialized.
  struct Ctx {
    StreamAnalysis out;
    std::vector<WorkerStats> per_worker;
    std::function<void(size_t, size_t, BlockAnalysis*)> produce;
    std::function<size_t(size_t)> original_bits;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->out.blocks.resize(n_blocks);
  ctx->out.ratios = RatioAccumulator(mag_bytes);
  ctx->per_worker.assign(num_threads(), WorkerStats{RatioAccumulator(mag_bytes)});
  ctx->produce = std::move(produce);
  ctx->original_bits = std::move(original_bits);

  return submit_job<StreamAnalysis>(
      n_blocks,
      [ctx](size_t begin, size_t end, unsigned worker) {
        ctx->produce(begin, end, ctx->out.blocks.data() + begin);
        WorkerStats& ws = ctx->per_worker[worker];
        for (size_t i = begin; i < end; ++i) {
          const BlockAnalysis& a = ctx->out.blocks[i];
          ws.ratios.add(ctx->original_bits(i), a.bit_size);
          ws.lossy += a.lossy ? 1 : 0;
          ws.truncated += a.truncated_symbols;
        }
      },
      [ctx]() {
        for (const WorkerStats& ws : ctx->per_worker) {
          ctx->out.ratios.merge(ws.ratios);
          ctx->out.lossy_blocks += ws.lossy;
          ctx->out.truncated_symbols += ws.truncated;
        }
        return std::move(ctx->out);
      });
}

CodecFuture<CodecEngine::StreamAnalysis> CodecEngine::submit_analyze(const Compressor& comp,
                                                                     std::span<const Block> blocks,
                                                                     size_t mag_bytes) {
  return submit_analyze_indexed(
      blocks.size(), mag_bytes,
      [&comp, blocks](size_t begin, size_t end, BlockAnalysis* dst) {
        // Shard goes through the compressor's batch entry point, so schemes
        // with vector implementations get their shot.
        std::vector<BlockAnalysis> shard = comp.analyze_batch(blocks.subspan(begin, end - begin));
        std::move(shard.begin(), shard.end(), dst);
      },
      [blocks](size_t i) { return blocks[i].size() * 8; });
}

CodecFuture<std::vector<CompressedBlock>> CodecEngine::submit_compress(
    const Compressor& comp, std::span<const Block> blocks) {
  auto out = std::make_shared<std::vector<CompressedBlock>>(blocks.size());
  return submit_job<std::vector<CompressedBlock>>(
      blocks.size(),
      [out, &comp, blocks](size_t begin, size_t end, unsigned) {
        std::vector<CompressedBlock> shard = comp.compress_batch(blocks.subspan(begin, end - begin));
        for (size_t i = 0; i < shard.size(); ++i) (*out)[begin + i] = std::move(shard[i]);
      },
      [out]() { return std::move(*out); });
}

CodecEngine::StreamAnalysis CodecEngine::analyze_stream(const Compressor& comp,
                                                        std::span<const Block> blocks,
                                                        size_t mag_bytes) {
  return submit_analyze(comp, blocks, mag_bytes).wait();
}

CodecEngine::StreamAnalysis CodecEngine::analyze_bytes(const Compressor& comp,
                                                       std::span<const uint8_t> data,
                                                       size_t mag_bytes, size_t block_bytes) {
  const size_t n_blocks = (data.size() + block_bytes - 1) / block_bytes;
  return submit_analyze_indexed(
             n_blocks, mag_bytes,
             [&comp, data, block_bytes](size_t begin, size_t end, BlockAnalysis* dst) {
               for (size_t b = begin; b < end; ++b) {
                 const size_t off = b * block_bytes;
                 if (off + block_bytes <= data.size()) {
                   dst[b - begin] = comp.analyze(BlockView(data.subspan(off, block_bytes)));
                 } else {
                   // Zero-padded tail block, matching to_blocks(pad_tail = true).
                   Block padded(block_bytes);
                   std::copy(data.begin() + static_cast<ptrdiff_t>(off), data.end(),
                             padded.mutable_bytes().begin());
                   dst[b - begin] = comp.analyze(padded.view());
                 }
               }
             },
             [block_bytes](size_t) { return block_bytes * 8; })
      .wait();
}

std::vector<CompressedBlock> CodecEngine::compress_stream(const Compressor& comp,
                                                          std::span<const Block> blocks) {
  return submit_compress(comp, blocks).wait();
}

}  // namespace slc

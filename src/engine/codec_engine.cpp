#include "engine/codec_engine.h"

#include <algorithm>

#include "core/fingerprint_cache.h"

namespace slc {
namespace detail {

void EngineJob::finish_shard(size_t items, std::exception_ptr thrown) {
  std::function<void(size_t, size_t, unsigned)> release;
  std::function<void(std::exception_ptr)> dropped_hook;  // never invoked
  {
    MutexLock lk(m_);
    if (thrown && !error_) error_ = thrown;
    completed_ += items;
    if (completed_ < count || finished_) return;
    finished_ = true;
    // Release captures as soon as the job drained; destroy outside the lock.
    release = std::move(body);
    body = nullptr;
    dropped_hook = std::move(abandon_hook_);
    abandon_hook_ = nullptr;
  }
  cv_.notify_all();
}

void EngineJob::abandon(std::exception_ptr reason) {
  std::function<void(size_t, size_t, unsigned)> release;
  std::function<void(std::exception_ptr)> hook;
  std::exception_ptr err;
  {
    MutexLock lk(m_);
    if (finished_) return;
    if (!error_) error_ = std::move(reason);
    err = error_;
    finished_ = true;
    release = std::move(body);
    body = nullptr;
    hook = std::move(abandon_hook_);
    abandon_hook_ = nullptr;
  }
  cv_.notify_all();
  // Outside m_ and outside every engine lock (abandon's callers hold none):
  // the hook may take arbitrary downstream locks (the server takes lock_).
  if (hook) hook(err);
}

bool EngineJob::set_abandon_hook(std::function<void(std::exception_ptr)> hook) {
  MutexLock lk(m_);
  if (finished_) return false;
  abandon_hook_ = std::move(hook);
  return true;
}

void EngineJob::wait() {
  std::exception_ptr err;
  {
    MutexLock lk(m_);
    while (!finished_) cv_.wait(m_);
    err = error_;
  }
  // Rethrow outside the lock: nothing below may touch guarded state.
  if (err) std::rethrow_exception(err);
}

bool EngineJob::ready() const {
  MutexLock lk(m_);
  return finished_;
}

bool EngineJob::cancelled() const {
  MutexLock lk(m_);
  return error_ != nullptr;
}

}  // namespace detail

CodecEngine::CodecEngine(unsigned num_threads) {
  unsigned n = num_threads != 0 ? num_threads : std::thread::hardware_concurrency();
  n_threads_ = std::max(1u, n);
  workers_.reserve(n_threads_);
  for (unsigned i = 0; i < n_threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

CodecEngine::~CodecEngine() { shutdown(); }

void CodecEngine::shutdown() {
  {
    MutexLock lk(mutex_);
    if (stop_) {
      // A later caller (e.g. the destructor after an explicit shutdown, or
      // a concurrent one) must not return — and let the engine be freed —
      // while the first caller is still joining workers.
      while (!shutdown_done_) shutdown_cv_.wait(mutex_);
      return;
    }
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // The pool is gone, so jobs still holding unclaimed shards can never
  // drain. Mark them finished with a stored exception: a future that
  // outlived the engine then throws from wait() instead of deadlocking.
  std::deque<std::shared_ptr<detail::EngineJob>> leftover;
  {
    MutexLock lk(mutex_);
    leftover.swap(queue_);
  }
  for (const auto& job : leftover)
    job->abandon(std::make_exception_ptr(
        std::runtime_error("CodecEngine shut down with the job still queued")));
  {
    MutexLock lk(mutex_);
    shutdown_done_ = true;
    // Notify under the lock: a woken waiter can only proceed (and possibly
    // destroy the engine) after we release it, with nothing left to touch.
    shutdown_cv_.notify_all();
  }
}

std::shared_ptr<CodecEngine> CodecEngine::shared_default() {
  static std::shared_ptr<CodecEngine> engine = std::make_shared<CodecEngine>();
  return engine;
}

std::shared_ptr<FingerprintCache> CodecEngine::fingerprint_cache() {
  MutexLock lk(cache_mutex_);
  if (!fingerprint_cache_) fingerprint_cache_ = std::make_shared<FingerprintCache>();
  return fingerprint_cache_;
}

void CodecEngine::set_fingerprint_cache(std::shared_ptr<FingerprintCache> cache) {
  MutexLock lk(cache_mutex_);
  fingerprint_cache_ = std::move(cache);
}

std::shared_ptr<detail::EngineJob> CodecEngine::enqueue(
    size_t count, std::function<void(size_t, size_t, unsigned)> body, int priority,
    std::chrono::steady_clock::time_point deadline) {
  auto job = std::make_shared<detail::EngineJob>();
  job->count = count;
  job->body = std::move(body);
  job->priority = priority;
  job->deadline = deadline;
  if (count == 0) {
    job->finish_shard(0, nullptr);
    return job;
  }
  // Dynamic work queue: ~8 shards per worker balances load without paying a
  // queue round-trip per block. Shard size never affects results, only how
  // the stream is cut across workers. Shards above 16 blocks are rounded up
  // to a multiple of 16 so the SIMD batch kernels see full tiles and the
  // per-shard staging (length scratch, scatter arena) amortizes evenly.
  const size_t target_shards = static_cast<size_t>(num_threads()) * 8;
  size_t shard = std::clamp<size_t>((count + target_shards - 1) / target_shards, 1, 4096);
  if (shard > 16) shard = (shard + 15) / 16 * 16;
  job->shard = std::min<size_t>(shard, 4096);
  bool accepted = false;
  {
    MutexLock lk(mutex_);
    if (!stop_) {
      queue_.push_back(job);
      accepted = true;
    }
  }
  if (accepted) {
    work_cv_.notify_all();
  } else {
    // Submitted after shutdown: nothing will ever run it.
    job->abandon(std::make_exception_ptr(
        std::runtime_error("CodecEngine::submit after shutdown")));
  }
  return job;
}

void CodecEngine::worker_loop(unsigned id) {
  MutexLock lk(mutex_);
  for (;;) {
    while (!stop_ && queue_.empty()) work_cv_.wait(mutex_);
    if (stop_) return;
    // Claim from the highest-priority job with unclaimed shards; within a
    // band the earliest deadline wins (EDF — two deadline-boosted batches
    // drain in deadline order, not submission order) and equal (priority,
    // deadline) drains FIFO. Scheduling only reorders claims across jobs —
    // a job's own result is shard-order-independent by the determinism
    // contract.
    auto best = queue_.begin();
    for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
      if ((*it)->priority > (*best)->priority ||
          ((*it)->priority == (*best)->priority && (*it)->deadline < (*best)->deadline))
        best = it;
    }
    const std::shared_ptr<detail::EngineJob> job = *best;
    const size_t begin = job->next;
    const size_t end = std::min(job->count, begin + job->shard);
    job->next = end;
    if (job->next >= job->count) queue_.erase(best);
    lk.unlock();
    // A shard that already saw this job fail is cancelled, not run: the
    // first exception wins and the job drains as fast as workers can claim.
    std::exception_ptr thrown;
    if (!job->cancelled()) {
      try {
        job->body(begin, end, id);
      } catch (...) {
        thrown = std::current_exception();
      }
    }
    job->finish_shard(end - begin, thrown);
    lk.lock();
  }
}

CodecFuture<void> CodecEngine::submit(size_t count,
                                      std::function<void(size_t, size_t, unsigned)> body,
                                      int priority,
                                      std::chrono::steady_clock::time_point deadline) {
  return submit_job<void>(count, std::move(body), {}, priority, deadline);
}

void CodecEngine::parallel_for(size_t count,
                               const std::function<void(size_t, size_t, unsigned)>& body) {
  if (count == 0) return;
  // Reference the caller's body instead of copying it: the job cannot
  // outlive this frame because wait() blocks until it drained.
  const auto job =
      enqueue(count, [&body](size_t b, size_t e, unsigned w) { body(b, e, w); }, 0);
  job->wait();
}

CodecFuture<CodecEngine::StreamAnalysis> CodecEngine::submit_analyze_indexed(
    size_t n_blocks, size_t mag_bytes,
    std::function<void(size_t, size_t, BlockAnalysis*)> produce,
    std::function<size_t(size_t)> original_bits, int priority) {
  struct WorkerStats {
    RatioAccumulator ratios;
    uint64_t lossy = 0;
    uint64_t truncated = 0;
    CacheCounters cache;
  };
  // The job context owns everything the shards touch; the future's finalize
  // keeps it alive until the merged result is materialized.
  struct Ctx {
    StreamAnalysis out;
    std::vector<WorkerStats> per_worker;
    std::function<void(size_t, size_t, BlockAnalysis*)> produce;
    std::function<size_t(size_t)> original_bits;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->out.blocks.resize(n_blocks);
  ctx->out.ratios = RatioAccumulator(mag_bytes);
  WorkerStats seed;
  seed.ratios = RatioAccumulator(mag_bytes);
  ctx->per_worker.assign(num_threads(), seed);
  ctx->produce = std::move(produce);
  ctx->original_bits = std::move(original_bits);

  return submit_job<StreamAnalysis>(
      n_blocks,
      [ctx](size_t begin, size_t end, unsigned worker) {
        ctx->produce(begin, end, ctx->out.blocks.data() + begin);
        WorkerStats& ws = ctx->per_worker[worker];
        for (size_t i = begin; i < end; ++i) {
          const BlockAnalysis& a = ctx->out.blocks[i];
          ws.ratios.add(ctx->original_bits(i), a.bit_size);
          ws.lossy += a.lossy ? 1 : 0;
          ws.truncated += a.truncated_symbols;
          ws.cache.record(a.cache_probed, a.cache_hit, a.cache_evicted, a.cache_collision);
        }
      },
      [ctx]() {
        for (const WorkerStats& ws : ctx->per_worker) {
          ctx->out.ratios.merge(ws.ratios);
          ctx->out.lossy_blocks += ws.lossy;
          ctx->out.truncated_symbols += ws.truncated;
          ctx->out.cache.merge(ws.cache);
        }
        return std::move(ctx->out);
      },
      priority);
}

CodecFuture<CodecEngine::StreamAnalysis> CodecEngine::submit_analyze(const Compressor& comp,
                                                                     std::span<const Block> blocks,
                                                                     size_t mag_bytes,
                                                                     int priority) {
  return submit_analyze_indexed(
      blocks.size(), mag_bytes,
      [&comp, blocks](size_t begin, size_t end, BlockAnalysis* dst) {
        // Every shard goes through the compressor's batch kernel, writing
        // straight into the index-aligned result slots — schemes with
        // vectorized overrides get the whole shard at once, and the default
        // is the scalar loop with no intermediate vector.
        comp.analyze_batch(to_views(blocks.subspan(begin, end - begin)), dst);
      },
      [blocks](size_t i) { return blocks[i].size() * 8; }, priority);
}

CodecFuture<std::vector<CompressedBlock>> CodecEngine::submit_compress(
    const Compressor& comp, std::span<const Block> blocks, int priority) {
  auto out = std::make_shared<std::vector<CompressedBlock>>(blocks.size());
  return submit_job<std::vector<CompressedBlock>>(
      blocks.size(),
      [out, &comp, blocks](size_t begin, size_t end, unsigned) {
        comp.compress_batch(to_views(blocks.subspan(begin, end - begin)), out->data() + begin);
      },
      [out]() { return std::move(*out); }, priority);
}

CodecEngine::StreamAnalysis CodecEngine::analyze_stream(const Compressor& comp,
                                                        std::span<const Block> blocks,
                                                        size_t mag_bytes) {
  return submit_analyze(comp, blocks, mag_bytes).wait();
}

CodecEngine::StreamAnalysis CodecEngine::analyze_bytes(const Compressor& comp,
                                                       std::span<const uint8_t> data,
                                                       size_t mag_bytes, size_t block_bytes) {
  const size_t n_blocks = (data.size() + block_bytes - 1) / block_bytes;
  return submit_analyze_indexed(
             n_blocks, mag_bytes,
             [&comp, data, block_bytes](size_t begin, size_t end, BlockAnalysis* dst) {
               // Views straight over the flat buffer — the batch kernel sees
               // the whole shard, same as the Block-stream path. Only a
               // ragged tail block needs padded storage (zero-padded like
               // to_blocks(pad_tail = true)); it lives in this frame for the
               // duration of the kernel call.
               std::vector<BlockView> views;
               views.reserve(end - begin);
               Block padded(block_bytes);
               for (size_t b = begin; b < end; ++b) {
                 const size_t off = b * block_bytes;
                 if (off + block_bytes <= data.size()) {
                   views.push_back(BlockView(data.subspan(off, block_bytes)));
                 } else {
                   std::copy(data.begin() + static_cast<ptrdiff_t>(off), data.end(),
                             padded.mutable_bytes().begin());
                   views.push_back(padded.view());
                 }
               }
               comp.analyze_batch(views, dst);
             },
             [block_bytes](size_t) { return block_bytes * 8; }, 0)
      .wait();
}

std::vector<CompressedBlock> CodecEngine::compress_stream(const Compressor& comp,
                                                          std::span<const Block> blocks) {
  return submit_compress(comp, blocks).wait();
}

}  // namespace slc

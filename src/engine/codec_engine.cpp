#include "engine/codec_engine.h"

#include <algorithm>

namespace slc {

CodecEngine::CodecEngine(unsigned num_threads) {
  unsigned n = num_threads != 0 ? num_threads : std::thread::hardware_concurrency();
  n = std::max(1u, n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

CodecEngine::~CodecEngine() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::shared_ptr<CodecEngine> CodecEngine::shared_default() {
  static std::shared_ptr<CodecEngine> engine = std::make_shared<CodecEngine>();
  return engine;
}

void CodecEngine::worker_loop(unsigned id) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    while (next_ < count_) {
      const size_t begin = next_;
      const size_t end = std::min(count_, begin + shard_);
      next_ = end;
      lk.unlock();
      try {
        (*body_)(begin, end, id);
      } catch (...) {
        lk.lock();
        if (!error_) error_ = std::current_exception();
        completed_ += end - begin;
        continue;
      }
      lk.lock();
      completed_ += end - begin;
    }
    if (completed_ == count_) done_cv_.notify_all();
  }
}

void CodecEngine::parallel_for(
    size_t count, const std::function<void(size_t, size_t, unsigned)>& body) {
  if (count == 0) return;
  std::lock_guard<std::mutex> call_lock(call_mutex_);
  std::unique_lock<std::mutex> lk(mutex_);
  body_ = &body;
  count_ = count;
  // Dynamic work queue: ~8 shards per worker balances load without paying a
  // queue round-trip per block. Shard size never affects results, only how
  // the stream is cut across workers.
  const size_t target_shards = workers_.size() * 8;
  shard_ = std::clamp<size_t>((count + target_shards - 1) / target_shards, 1, 4096);
  next_ = 0;
  completed_ = 0;
  error_ = nullptr;
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return completed_ == count_; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

CodecEngine::StreamAnalysis CodecEngine::analyze_indexed(
    size_t n_blocks, size_t mag_bytes,
    const std::function<void(size_t, size_t, BlockAnalysis*)>& produce,
    const std::function<size_t(size_t)>& original_bits) {
  StreamAnalysis out;
  out.blocks.resize(n_blocks);
  out.ratios = RatioAccumulator(mag_bytes);

  struct WorkerStats {
    RatioAccumulator ratios;
    uint64_t lossy = 0;
    uint64_t truncated = 0;
  };
  std::vector<WorkerStats> per_worker(num_threads(), WorkerStats{RatioAccumulator(mag_bytes)});

  parallel_for(n_blocks, [&](size_t begin, size_t end, unsigned worker) {
    produce(begin, end, out.blocks.data() + begin);
    WorkerStats& ws = per_worker[worker];
    for (size_t i = begin; i < end; ++i) {
      const BlockAnalysis& a = out.blocks[i];
      ws.ratios.add(original_bits(i), a.bit_size);
      ws.lossy += a.lossy ? 1 : 0;
      ws.truncated += a.truncated_symbols;
    }
  });

  for (const WorkerStats& ws : per_worker) {
    out.ratios.merge(ws.ratios);
    out.lossy_blocks += ws.lossy;
    out.truncated_symbols += ws.truncated;
  }
  return out;
}

CodecEngine::StreamAnalysis CodecEngine::analyze_stream(const Compressor& comp,
                                                        std::span<const Block> blocks,
                                                        size_t mag_bytes) {
  return analyze_indexed(
      blocks.size(), mag_bytes,
      [&](size_t begin, size_t end, BlockAnalysis* dst) {
        // Shard goes through the compressor's batch entry point, so schemes
        // with vector implementations get their shot.
        std::vector<BlockAnalysis> shard =
            comp.analyze_batch(blocks.subspan(begin, end - begin));
        std::move(shard.begin(), shard.end(), dst);
      },
      [&](size_t i) { return blocks[i].size() * 8; });
}

CodecEngine::StreamAnalysis CodecEngine::analyze_bytes(const Compressor& comp,
                                                       std::span<const uint8_t> data,
                                                       size_t mag_bytes, size_t block_bytes) {
  const size_t n_blocks = (data.size() + block_bytes - 1) / block_bytes;
  return analyze_indexed(
      n_blocks, mag_bytes,
      [&](size_t begin, size_t end, BlockAnalysis* dst) {
        for (size_t b = begin; b < end; ++b) {
          const size_t off = b * block_bytes;
          if (off + block_bytes <= data.size()) {
            dst[b - begin] = comp.analyze(BlockView(data.subspan(off, block_bytes)));
          } else {
            // Zero-padded tail block, matching to_blocks(pad_tail = true).
            Block padded(block_bytes);
            std::copy(data.begin() + static_cast<ptrdiff_t>(off), data.end(),
                      padded.mutable_bytes().begin());
            dst[b - begin] = comp.analyze(padded.view());
          }
        }
      },
      [&](size_t) { return block_bytes * 8; });
}

std::vector<CompressedBlock> CodecEngine::compress_stream(const Compressor& comp,
                                                          std::span<const Block> blocks) {
  std::vector<CompressedBlock> out(blocks.size());
  parallel_for(blocks.size(), [&](size_t begin, size_t end, unsigned) {
    std::vector<CompressedBlock> shard = comp.compress_batch(blocks.subspan(begin, end - begin));
    for (size_t i = 0; i < shard.size(); ++i) out[begin + i] = std::move(shard[i]);
  });
  return out;
}

}  // namespace slc

// CodecEngine: batched multi-threaded driver for the codec stack.
//
// A persistent std::thread worker pool pulls fixed-size shards off a FIFO
// *job queue*: every submit()/parallel_for call enqueues one independent job
// (its own [0, count) range, completion state and error slot), and workers
// drain whichever jobs are pending — so multiple analyze/compress/commit
// jobs can be in flight at once and the pool never idles between them.
//
// Determinism contract (per job): shard->worker assignment is
// nondeterministic, but bodies write only to index-aligned slots and keep
// accumulation per worker_id; finalizers merge the per-worker integer
// counters after the job drained, so a 1-thread and an N-thread run produce
// byte-identical results — the property the tier-1 determinism test pins
// down. Jobs never share accumulators, so concurrency across jobs cannot
// change any job's result.
//
// Two modes, matching the consumers:
//   * full-payload  — compress_stream()/submit_compress(): every block's bit
//                     stream (the functional path / roundtrip studies)
//   * size-only     — analyze_stream()/analyze_bytes()/submit_analyze():
//                     sizes + ratios only (the simulator's and the ratio
//                     benches' common case)
// The synchronous entry points are thin wrappers: submit + wait. The generic
// submit()/submit_job() underlie ApproxMemory::commit_async().
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "compress/compressor.h"

namespace slc {

class CodecEngine;

namespace detail {

/// One submitted job: an independent shard range plus its own completion and
/// error state. Shared between the queue, the workers still running its
/// shards, and the future holding it.
struct EngineJob {
  std::function<void(size_t begin, size_t end, unsigned worker_id)> body;
  size_t count = 0;
  size_t shard = 1;
  size_t next = 0;       ///< next shard start (claimed under the engine mutex)
  size_t completed = 0;  ///< items whose body returned (or were cancelled)
  bool finished = false;
  std::exception_ptr error;
};

}  // namespace detail

/// Ticket for a job submitted to a CodecEngine. Move-only; wait() is
/// one-shot: it blocks until the job drained, rethrows the first exception a
/// shard threw, and otherwise materializes the job's result (merging
/// per-worker state). The future must be waited (or destroyed) before the
/// engine it came from is destroyed, and inputs captured by the job (codec,
/// block storage) must stay alive until wait() returns. Destroying a future
/// without waiting leaks no memory but abandons the result; the job still
/// runs to completion.
template <typename T>
class CodecFuture {
 public:
  CodecFuture() = default;
  CodecFuture(CodecFuture&&) noexcept = default;
  CodecFuture& operator=(CodecFuture&&) noexcept = default;
  CodecFuture(const CodecFuture&) = delete;
  CodecFuture& operator=(const CodecFuture&) = delete;

  /// True until wait() consumed this future (default-constructed: false).
  bool valid() const { return state_ != nullptr; }
  /// Non-blocking: has the job drained (result or exception ready)?
  bool ready() const;
  /// Blocks until the job drained, then returns its result (one-shot).
  /// Rethrows the first exception thrown by any shard of this job.
  T wait();

 private:
  friend class CodecEngine;
  struct State {
    CodecEngine* engine = nullptr;
    std::shared_ptr<detail::EngineJob> job;
    std::function<T()> finalize;  ///< runs on the waiting thread, post-drain
  };
  explicit CodecFuture(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class CodecEngine {
 public:
  /// `num_threads` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit CodecEngine(unsigned num_threads = 0);
  /// Joins the pool. Every future obtained from this engine must have been
  /// waited (or dropped) before destruction; jobs still queued are abandoned.
  ~CodecEngine();

  CodecEngine(const CodecEngine&) = delete;
  CodecEngine& operator=(const CodecEngine&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide default engine (hardware concurrency), shared so consumers
  /// do not each spin up a pool. ApproxMemory uses this unless given one.
  static std::shared_ptr<CodecEngine> shared_default();

  // --- asynchronous submission ---------------------------------------------
  // Any thread may call submit*(); jobs from concurrent callers interleave
  // on the queue without affecting each other's results. Job bodies must not
  // submit to or wait on the engine (a body blocking on the pool it runs in
  // can deadlock once every worker does it). An exception in one job is
  // confined to that job: its remaining shards are cancelled, wait()
  // rethrows, and other jobs and the pool are unaffected.

  /// Enqueues body(begin, end, worker_id) over disjoint shards covering
  /// [0, count) and returns immediately.
  CodecFuture<void> submit(size_t count,
                           std::function<void(size_t begin, size_t end, unsigned worker_id)> body);

  /// Generalized submit: `finalize` runs once on the thread that waits, after
  /// every shard completed — the place to merge per-worker accumulators into
  /// the job's result (keeping the determinism contract).
  template <typename T>
  CodecFuture<T> submit_job(size_t count,
                            std::function<void(size_t begin, size_t end, unsigned worker_id)> body,
                            std::function<T()> finalize);

  /// Size-only sweep of a block stream: per-block analyses plus the merged
  /// raw/effective ratio bookkeeping at `mag_bytes`.
  struct StreamAnalysis {
    std::vector<BlockAnalysis> blocks;  ///< index-aligned with the input
    RatioAccumulator ratios;
    uint64_t lossy_blocks = 0;
    uint64_t truncated_symbols = 0;
  };

  /// Async size-only sweep. `comp` and the storage behind `blocks` must stay
  /// alive until wait().
  CodecFuture<StreamAnalysis> submit_analyze(const Compressor& comp, std::span<const Block> blocks,
                                             size_t mag_bytes = kDefaultMagBytes);
  /// Async full-payload sweep; same lifetime contract as submit_analyze.
  CodecFuture<std::vector<CompressedBlock>> submit_compress(const Compressor& comp,
                                                            std::span<const Block> blocks);

  // --- synchronous wrappers (submit + wait) --------------------------------

  /// Runs body over [0, count) and blocks until every shard completed. An
  /// exception thrown by `body` is rethrown here once the job drained.
  void parallel_for(size_t count,
                    const std::function<void(size_t begin, size_t end, unsigned worker_id)>& body);

  StreamAnalysis analyze_stream(const Compressor& comp, std::span<const Block> blocks,
                                size_t mag_bytes = kDefaultMagBytes);
  /// Same, over a flat buffer sliced into 128 B views without copying (a
  /// short tail is zero-padded into a final full block, like to_blocks).
  StreamAnalysis analyze_bytes(const Compressor& comp, std::span<const uint8_t> data,
                               size_t mag_bytes = kDefaultMagBytes,
                               size_t block_bytes = kBlockBytes);

  /// Full-payload sweep: every block compressed, results index-aligned.
  std::vector<CompressedBlock> compress_stream(const Compressor& comp,
                                               std::span<const Block> blocks);

 private:
  template <typename U>
  friend class CodecFuture;

  void worker_loop(unsigned id);

  /// Creates a job, sizes its shards and (count > 0) puts it on the queue.
  std::shared_ptr<detail::EngineJob> enqueue(
      size_t count, std::function<void(size_t, size_t, unsigned)> body);
  /// Blocks until `job` drained; rethrows its first shard exception.
  void wait_job(detail::EngineJob& job);
  bool job_ready(const detail::EngineJob& job) const;

  /// Shared core of the analyze entry points: `produce` fills the analyses
  /// for one shard into the index-aligned slots, `original_bits` sizes block
  /// i for the ratio bookkeeping; per-worker stats merge on wait().
  CodecFuture<StreamAnalysis> submit_analyze_indexed(
      size_t n_blocks, size_t mag_bytes,
      std::function<void(size_t begin, size_t end, BlockAnalysis* out)> produce,
      std::function<size_t(size_t)> original_bits);

  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;          // guards queue_ + per-job shard state
  std::condition_variable work_cv_;   // wakes workers on a new job / stop
  std::condition_variable done_cv_;   // wakes waiters when any job drains
  bool stop_ = false;
  std::deque<std::shared_ptr<detail::EngineJob>> queue_;  // jobs with unclaimed shards
};

template <typename T>
CodecFuture<T> CodecEngine::submit_job(size_t count,
                                       std::function<void(size_t, size_t, unsigned)> body,
                                       std::function<T()> finalize) {
  auto state = std::make_shared<typename CodecFuture<T>::State>();
  state->engine = this;
  state->job = enqueue(count, std::move(body));
  state->finalize = std::move(finalize);
  return CodecFuture<T>(std::move(state));
}

template <typename T>
bool CodecFuture<T>::ready() const {
  return state_ && state_->engine->job_ready(*state_->job);
}

template <typename T>
T CodecFuture<T>::wait() {
  if (!state_) throw std::logic_error("CodecFuture::wait on an empty future");
  auto state = std::move(state_);  // one-shot: consume before any throw
  state->engine->wait_job(*state->job);
  if constexpr (std::is_void_v<T>) {
    if (state->finalize) state->finalize();
  } else {
    return state->finalize();
  }
}

}  // namespace slc

// CodecEngine: batched multi-threaded driver for the codec stack.
//
// A persistent std::thread worker pool pulls fixed-size shards off a
// *priority job queue*: every submit()/parallel_for call enqueues one
// independent job (its own [0, count) range, completion state and error
// slot), and workers drain whichever jobs are pending — so multiple
// analyze/compress/commit jobs can be in flight at once and the pool never
// idles between them. Each shard claim goes to the highest-priority job with
// unclaimed shards — earliest deadline first within a priority band, FIFO
// among equal (priority, deadline) — so a latency-sensitive job preempts
// queued bulk work at shard granularity without cancelling it, and two
// deadline-boosted jobs drain in deadline order instead of submission order.
//
// Determinism contract (per job): shard->worker assignment is
// nondeterministic, but bodies write only to index-aligned slots and keep
// accumulation per worker_id; finalizers merge the per-worker integer
// counters after the job drained, so a 1-thread and an N-thread run produce
// byte-identical results — the property the tier-1 determinism test pins
// down. Jobs never share accumulators, so concurrency across jobs cannot
// change any job's result; priority reorders *which job's shards run next*,
// never anything inside a job's result.
//
// Two modes, matching the consumers:
//   * full-payload  — compress_stream()/submit_compress(): every block's bit
//                     stream (the functional path / roundtrip studies)
//   * size-only     — analyze_stream()/analyze_bytes()/submit_analyze():
//                     sizes + ratios only (the simulator's and the ratio
//                     benches' common case)
// The synchronous entry points are thin wrappers: submit + wait. The generic
// submit()/submit_job() underlie ApproxMemory::commit_async() and the
// CodecServer's batch dispatch (src/server/).
#pragma once

#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "common/thread_safety.h"
#include "compress/compressor.h"

namespace slc {

class CodecEngine;
class FingerprintCache;

namespace detail {

/// One submitted job: an independent shard range plus its own completion and
/// error state. Shared between the queue, the workers still running its
/// shards, and the future holding it. Completion (`completed`/`finished`/
/// `error`) is guarded by the job's own mutex so a future can wait on the
/// job even after the engine that ran it is gone; the shard cursor (`next`)
/// stays under the engine mutex with the queue.
struct EngineJob {
  /// The shard body. Written only while the job is unshared (enqueue) or
  /// after it drained (finish_shard/abandon release it under m_); workers
  /// call it unlocked — the completed_ == count handoff, not a mutex, is
  /// what proves no call is in flight when it is released.
  std::function<void(size_t begin, size_t end, unsigned worker_id)> body;
  size_t count = 0;
  size_t shard = 1;
  size_t next = 0;  ///< next shard start (claimed under the engine mutex)
  int priority = 0; ///< higher claims first
  /// EDF tiebreak inside a priority band: among equal-priority jobs the
  /// earliest deadline claims first; equal (priority, deadline) drains FIFO.
  /// max() = no deadline (sorts after every dated job in its band).
  /// Immutable after enqueue, like priority — read under the engine mutex
  /// but never written concurrently.
  std::chrono::steady_clock::time_point deadline = std::chrono::steady_clock::time_point::max();

  /// Marks `items` of this job done (body returned or shard cancelled); the
  /// first exception wins. The last shard releases the body's captures.
  void finish_shard(size_t items, std::exception_ptr thrown);
  /// Marks a never-to-be-drained job finished with `reason` so waiters
  /// throw instead of hanging (engine shutdown with jobs still queued).
  /// Invokes the abandon hook, if one is installed, after the job is marked.
  void abandon(std::exception_ptr reason);
  /// Installs `hook`, invoked exactly once — with the stored exception, on
  /// the abandoning thread, outside every engine lock — if this job is
  /// abandoned. Returns false when the job already finished (drained or
  /// abandoned): the hook is neither stored nor invoked, and the caller owns
  /// handling that state. Fire-and-forget submitters (the CodecServer's
  /// batches) use this so work the pool will never run still completes.
  bool set_abandon_hook(std::function<void(std::exception_ptr)> hook);
  /// Blocks until the job drained; rethrows its first shard exception.
  void wait();
  /// Non-blocking: has the job drained (result or exception ready)?
  bool ready() const;
  /// True when a claimed shard must be cancelled (a prior shard threw).
  bool cancelled() const;

 private:
  mutable Mutex m_;
  CondVar cv_;  ///< signals finished_ (the only predicate waited on m_)
  size_t completed_ SLC_GUARDED_BY(m_) = 0;  ///< items whose body returned
  bool finished_ SLC_GUARDED_BY(m_) = false;
  std::exception_ptr error_ SLC_GUARDED_BY(m_);
  std::function<void(std::exception_ptr)> abandon_hook_ SLC_GUARDED_BY(m_);
};

}  // namespace detail

/// Ticket for a job submitted to a CodecEngine. Move-only; wait() is
/// one-shot: it blocks until the job drained, rethrows the first exception a
/// shard threw, and otherwise materializes the job's result (merging
/// per-worker state). Inputs captured by the job (codec, block storage) must
/// stay alive until wait() returns. The future may outlive the engine: a job
/// abandoned by engine shutdown is marked finished with a stored exception,
/// so a late wait() throws instead of deadlocking. Destroying a future
/// without waiting leaks no memory but abandons the result; the job still
/// runs to completion.
template <typename T>
class CodecFuture {
 public:
  CodecFuture() = default;
  CodecFuture(CodecFuture&&) noexcept = default;
  CodecFuture& operator=(CodecFuture&&) noexcept = default;
  CodecFuture(const CodecFuture&) = delete;
  CodecFuture& operator=(const CodecFuture&) = delete;

  /// True until wait() consumed this future (default-constructed: false).
  bool valid() const { return state_ != nullptr; }
  /// Non-blocking: has the job drained (result or exception ready)?
  bool ready() const { return state_ && state_->job->ready(); }
  /// Blocks until the job drained, then returns its result (one-shot).
  /// Rethrows the first exception thrown by any shard of this job.
  T wait();
  /// For fire-and-forget submitters that drop the future instead of
  /// waiting: installs a hook invoked exactly once if the engine abandons
  /// the job (shutdown with it still queued). Returns false when the job
  /// already finished — the hook is not stored and the caller must check
  /// ready() itself. See detail::EngineJob::set_abandon_hook.
  bool on_abandon(std::function<void(std::exception_ptr)> hook) {
    return state_ && state_->job->set_abandon_hook(std::move(hook));
  }

 private:
  friend class CodecEngine;
  struct State {
    std::shared_ptr<detail::EngineJob> job;
    std::function<T()> finalize;  ///< runs on the waiting thread, post-drain
  };
  explicit CodecFuture(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class CodecEngine {
 public:
  /// Priority landmarks for submit*(). Any int works (higher = sooner);
  /// bulk/latency name the two ends the CodecServer schedules between.
  static constexpr int kPriorityBulk = 0;
  static constexpr int kPriorityLatency = 100;
  /// Above kPriorityLatency: the CodecServer dispatches batches that carry
  /// explicit request deadlines at this landmark, so a deadline's shards
  /// claim ahead of everything scheduled between the two ends — the
  /// deadline-aware claim that makes a timer-flushed partial batch finish
  /// inside its budget even behind queued bulk work. Within the band the
  /// absolute deadline passed to submit*() orders the claims (EDF).
  static constexpr int kPriorityDeadline = 150;

  /// "No deadline" for the EDF tiebreak: sorts after every dated job of the
  /// same priority, and all-kNoDeadline queues drain plain FIFO.
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  /// `num_threads` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit CodecEngine(unsigned num_threads = 0);
  /// shutdown(): joins the pool; jobs still queued are abandoned — their
  /// futures' wait() throws std::runtime_error instead of deadlocking.
  ~CodecEngine();

  CodecEngine(const CodecEngine&) = delete;
  CodecEngine& operator=(const CodecEngine&) = delete;

  /// Configured worker count; immutable after construction (still reported
  /// after shutdown), so it is safe to read concurrently with shutdown().
  unsigned num_threads() const { return n_threads_; }

  /// Stops accepting work, joins the pool and abandons jobs still queued
  /// (their futures throw on wait()). Idempotent — later callers block
  /// until the first caller finished joining. The destructor calls it.
  /// Jobs whose shards were all claimed before the stop drain normally.
  void shutdown();

  /// Process-wide default engine (hardware concurrency), shared so consumers
  /// do not each spin up a pool. ApproxMemory uses this unless given one.
  static std::shared_ptr<CodecEngine> shared_default();

  // --- per-engine fingerprint memo -----------------------------------------
  // One shared decision memo for everything this engine serves: codecs built
  // with `options.fingerprint_cache = engine->fingerprint_cache()` dedup
  // repeat blocks across jobs, streams and commits that route through the
  // same pool. The cache is sharded (per-shard mutexes), so concurrent
  // workers only contend on same-shard blocks; entries are keyed on the
  // deciding codec's identity, so codecs never see each other's decisions.

  /// The engine-owned cache, built on first use (default FingerprintCache
  /// config). Thread-safe; stable for the engine's lifetime once created.
  std::shared_ptr<FingerprintCache> fingerprint_cache();

  /// Replaces the engine-owned cache (e.g. to set capacity or verify-on-hit
  /// before any stream opens). Later fingerprint_cache() calls return
  /// `cache`; codecs already holding the old pointer keep it.
  void set_fingerprint_cache(std::shared_ptr<FingerprintCache> cache);

  // --- asynchronous submission ---------------------------------------------
  // Any thread may call submit*(); jobs from concurrent callers interleave
  // on the queue without affecting each other's results. Job bodies must not
  // submit to or wait on the engine (a body blocking on the pool it runs in
  // can deadlock once every worker does it). An exception in one job is
  // confined to that job: its remaining shards are cancelled, wait()
  // rethrows, and other jobs and the pool are unaffected.

  /// Enqueues body(begin, end, worker_id) over disjoint shards covering
  /// [0, count) and returns immediately. `deadline` orders claims within the
  /// job's priority band (earliest first) — purely a scheduling hint; a
  /// job past its deadline still runs.
  CodecFuture<void> submit(size_t count,
                           std::function<void(size_t begin, size_t end, unsigned worker_id)> body,
                           int priority = 0,
                           std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Generalized submit: `finalize` runs once on the thread that waits, after
  /// every shard completed — the place to merge per-worker accumulators into
  /// the job's result (keeping the determinism contract).
  template <typename T>
  CodecFuture<T> submit_job(size_t count,
                            std::function<void(size_t begin, size_t end, unsigned worker_id)> body,
                            std::function<T()> finalize, int priority = 0,
                            std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Size-only sweep of a block stream: per-block analyses plus the merged
  /// raw/effective ratio bookkeeping at `mag_bytes`.
  struct StreamAnalysis {
    std::vector<BlockAnalysis> blocks;  ///< index-aligned with the input
    RatioAccumulator ratios;
    uint64_t lossy_blocks = 0;
    uint64_t truncated_symbols = 0;
    /// Fingerprint-memo outcomes folded over the stream (all zero for
    /// uncached codecs). NOT thread-count invariant — see CacheCounters.
    CacheCounters cache;
  };

  /// Async size-only sweep. `comp` and the storage behind `blocks` must stay
  /// alive until wait().
  CodecFuture<StreamAnalysis> submit_analyze(const Compressor& comp, std::span<const Block> blocks,
                                             size_t mag_bytes = kDefaultMagBytes,
                                             int priority = 0);
  /// Async full-payload sweep; same lifetime contract as submit_analyze.
  CodecFuture<std::vector<CompressedBlock>> submit_compress(const Compressor& comp,
                                                            std::span<const Block> blocks,
                                                            int priority = 0);

  // --- synchronous wrappers (submit + wait) --------------------------------

  /// Runs body over [0, count) and blocks until every shard completed. An
  /// exception thrown by `body` is rethrown here once the job drained.
  void parallel_for(size_t count,
                    const std::function<void(size_t begin, size_t end, unsigned worker_id)>& body);

  StreamAnalysis analyze_stream(const Compressor& comp, std::span<const Block> blocks,
                                size_t mag_bytes = kDefaultMagBytes);
  /// Same, over a flat buffer sliced into 128 B views without copying (a
  /// short tail is zero-padded into a final full block, like to_blocks).
  StreamAnalysis analyze_bytes(const Compressor& comp, std::span<const uint8_t> data,
                               size_t mag_bytes = kDefaultMagBytes,
                               size_t block_bytes = kBlockBytes);

  /// Full-payload sweep: every block compressed, results index-aligned.
  std::vector<CompressedBlock> compress_stream(const Compressor& comp,
                                               std::span<const Block> blocks);

 private:
  void worker_loop(unsigned id);

  /// Creates a job, sizes its shards and (count > 0) puts it on the queue.
  std::shared_ptr<detail::EngineJob> enqueue(
      size_t count, std::function<void(size_t, size_t, unsigned)> body, int priority,
      std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Shared core of the analyze entry points: `produce` fills the analyses
  /// for one shard into the index-aligned slots, `original_bits` sizes block
  /// i for the ratio bookkeeping; per-worker stats merge on wait().
  CodecFuture<StreamAnalysis> submit_analyze_indexed(
      size_t n_blocks, size_t mag_bytes,
      std::function<void(size_t begin, size_t end, BlockAnalysis* out)> produce,
      std::function<size_t(size_t)> original_bits, int priority);

  unsigned n_threads_ = 1;           // fixed at construction
  std::vector<std::thread> workers_;  // touched only by the ctor + first shutdown()

  mutable Mutex cache_mutex_;  // guards lazy fingerprint_cache_ creation; leaf lock
  std::shared_ptr<FingerprintCache> fingerprint_cache_ SLC_GUARDED_BY(cache_mutex_);

  /// Guards the queue, the stop/shutdown flags and — by convention the
  /// analysis cannot spell — every queued job's shard cursor (EngineJob::
  /// next), which only worker_loop and enqueue touch under this mutex.
  mutable Mutex mutex_;
  CondVar work_cv_;      // signals: queue_ non-empty, or stop_
  CondVar shutdown_cv_;  // signals: shutdown_done_
  bool stop_ SLC_GUARDED_BY(mutex_) = false;
  bool shutdown_done_ SLC_GUARDED_BY(mutex_) = false;
  std::deque<std::shared_ptr<detail::EngineJob>> queue_ SLC_GUARDED_BY(mutex_);
};

template <typename T>
CodecFuture<T> CodecEngine::submit_job(size_t count,
                                       std::function<void(size_t, size_t, unsigned)> body,
                                       std::function<T()> finalize, int priority,
                                       std::chrono::steady_clock::time_point deadline) {
  auto state = std::make_shared<typename CodecFuture<T>::State>();
  state->job = enqueue(count, std::move(body), priority, deadline);
  state->finalize = std::move(finalize);
  return CodecFuture<T>(std::move(state));
}

template <typename T>
T CodecFuture<T>::wait() {
  if (!state_) throw std::logic_error("CodecFuture::wait on an empty future");
  auto state = std::move(state_);  // one-shot: consume before any throw
  state->job->wait();
  if constexpr (std::is_void_v<T>) {
    if (state->finalize) state->finalize();
  } else {
    return state->finalize();
  }
}

}  // namespace slc

// CodecEngine: batched multi-threaded driver for the codec stack.
//
// A persistent std::thread worker pool pulls fixed-size shards of a block
// stream off a work queue and runs compress/analyze per shard; per-worker
// RatioAccumulator/stat counters are merged at the end. Because every
// compressor is stateless across blocks (const methods only), per-block
// results are written into index-aligned slots and all merged counters are
// integers, so a 1-thread and an N-thread run produce byte-identical results
// — the property the tier-1 determinism test pins down.
//
// Two modes, matching the consumers:
//   * full-payload  — compress_stream(): every block's bit stream (the
//                     functional path / roundtrip studies)
//   * size-only     — analyze_stream()/analyze_bytes(): sizes + ratios only
//                     (the simulator's and the ratio benches' common case)
// The generic parallel_for() underlies both and is what ApproxMemory::commit
// shards its BlockCodec work with.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "compress/compressor.h"

namespace slc {

class CodecEngine {
 public:
  /// `num_threads` = 0 picks std::thread::hardware_concurrency() (min 1).
  explicit CodecEngine(unsigned num_threads = 0);
  ~CodecEngine();

  CodecEngine(const CodecEngine&) = delete;
  CodecEngine& operator=(const CodecEngine&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide default engine (hardware concurrency), shared so consumers
  /// do not each spin up a pool. ApproxMemory uses this unless given one.
  static std::shared_ptr<CodecEngine> shared_default();

  /// Runs body(begin, end, worker_id) over disjoint shards covering
  /// [0, count). Blocks until every shard completed. Shards are handed out
  /// dynamically (work queue), so shard->worker assignment is nondeterministic
  /// — bodies must write only to index-aligned slots and keep any accumulation
  /// per worker_id (merge after) for deterministic results. An exception
  /// thrown by `body` is rethrown here once the pool drained. Calls are
  /// serialized; do not call parallel_for from inside a body.
  void parallel_for(size_t count,
                    const std::function<void(size_t begin, size_t end, unsigned worker_id)>& body);

  /// Size-only sweep of a block stream: per-block analyses plus the merged
  /// raw/effective ratio bookkeeping at `mag_bytes`.
  struct StreamAnalysis {
    std::vector<BlockAnalysis> blocks;  ///< index-aligned with the input
    RatioAccumulator ratios;
    uint64_t lossy_blocks = 0;
    uint64_t truncated_symbols = 0;
  };
  StreamAnalysis analyze_stream(const Compressor& comp, std::span<const Block> blocks,
                                size_t mag_bytes = kDefaultMagBytes);
  /// Same, over a flat buffer sliced into 128 B views without copying (a
  /// short tail is zero-padded into a final full block, like to_blocks).
  StreamAnalysis analyze_bytes(const Compressor& comp, std::span<const uint8_t> data,
                               size_t mag_bytes = kDefaultMagBytes,
                               size_t block_bytes = kBlockBytes);

  /// Full-payload sweep: every block compressed, results index-aligned.
  std::vector<CompressedBlock> compress_stream(const Compressor& comp,
                                               std::span<const Block> blocks);

 private:
  void worker_loop(unsigned id);

  /// Shared core of the analyze entry points: `produce` fills the analyses
  /// for one shard into the index-aligned slots, `original_bits` sizes block
  /// i for the ratio bookkeeping; per-worker stats are merged at the end.
  StreamAnalysis analyze_indexed(size_t n_blocks, size_t mag_bytes,
                                 const std::function<void(size_t begin, size_t end,
                                                          BlockAnalysis* out)>& produce,
                                 const std::function<size_t(size_t)>& original_bits);

  std::vector<std::thread> workers_;

  std::mutex mutex_;                  // guards the job fields + cvs below
  std::condition_variable work_cv_;   // wakes workers on a new job / stop
  std::condition_variable done_cv_;   // wakes the caller on job completion
  uint64_t generation_ = 0;
  bool stop_ = false;
  const std::function<void(size_t, size_t, unsigned)>* body_ = nullptr;
  size_t count_ = 0;
  size_t shard_ = 1;
  size_t next_ = 0;       // next shard start (claimed under mutex_)
  size_t completed_ = 0;  // items whose body returned
  std::exception_ptr error_;

  std::mutex call_mutex_;  // serializes parallel_for callers
};

}  // namespace slc

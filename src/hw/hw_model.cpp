#include "hw/hw_model.h"

#include <cmath>

namespace slc {

namespace {
// 32 nm standard-cell coefficients (order-of-magnitude values from published
// library data), calibrated so the default geometry lands on Table I.
constexpr double kNand2AreaUm2 = 0.85;        // NAND2-equivalent cell area
constexpr double kDynPowerPerGateMw = 3.81e-4;// switching power per toggling gate
constexpr double kCompActivity = 0.35;        // tree fires once per block
constexpr double kDecompActivity = 1.0;       // fill path toggles every decode
constexpr double kGatesPerFaBit = 6.5;        // full-adder bit in NAND2 equivalents
constexpr double kGatesPerCmpBit = 3.0;       // comparator bit
constexpr double kGatesPerEncInput = 4.0;     // priority-encoder input
constexpr double kGatesPerMuxBit = 3.5;       // selector mux bit
}  // namespace

HwModel::HwModel(HwModelConfig cfg) : cfg_(cfg) {}

size_t HwModel::tree_adder_nodes() const {
  // A binary reduction tree over n leaves has n-1 internal adders; OPT adds
  // 8 nodes at level 3 and 4 at level 4 (Sec. III-F).
  size_t nodes = cfg_.num_symbols - 1;
  if (cfg_.extra_nodes) nodes += 8 + 4;
  return nodes;
}

size_t HwModel::comparator_count() const {
  // Every tree node's intermediate sum is compared against extra_bits in
  // parallel (Fig. 5 comparator stage); only windows of <= 16 symbols
  // participate in selection: levels 1..5 plus OPT windows.
  size_t cmp = 0;
  for (size_t win = 1; win <= 16; win *= 2) cmp += cfg_.num_symbols / win;
  if (cfg_.extra_nodes) cmp += 8 + 4;
  return cmp;
}

size_t HwModel::priority_encoder_count() const {
  // One per participating level: sizes 1,2,4,8,16 (+ OPT sizes 6 and 12).
  return cfg_.extra_nodes ? 7 : 5;
}

HwCost HwModel::compressor() const {
  // Bit widths grow one bit per tree level; approximate with the root width.
  const unsigned levels = static_cast<unsigned>(std::ceil(std::log2(cfg_.num_symbols))) + 1;
  const unsigned sum_bits = cfg_.code_len_bits + levels;  // up to ~12 bits

  double gates = 0.0;
  gates += static_cast<double>(tree_adder_nodes()) * sum_bits * kGatesPerFaBit;
  gates += static_cast<double>(comparator_count()) * sum_bits * kGatesPerCmpBit;
  // Priority encoders: inputs = windows per level (dominated by level 1's 64).
  gates += static_cast<double>(comparator_count()) * kGatesPerEncInput;
  // Selection stage muxes route {level, index} -> sub_block_to_approx.
  gates += static_cast<double>(priority_encoder_count()) * 8 * kGatesPerMuxBit;
  // Pipeline registers (two-stage: compare, select).
  gates += 2.0 * sum_bits * static_cast<double>(priority_encoder_count()) * 4.0;

  HwCost c;
  c.gate_count = static_cast<size_t>(gates);
  c.area_mm2 = gates * kNand2AreaUm2 * 1e-6;
  c.power_mw = gates * kDynPowerPerGateMw * kCompActivity;
  // Critical path: one 5-bit add per level feeding a compare+encode stage;
  // comfortably above the 1002 MHz memory clock at 32 nm.
  c.freq_ghz = 1.43;
  return c;
}

HwCost HwModel::decompressor() const {
  // Only the predicted-value index generation (Sec. III-E): ss/len decode,
  // one small adder and a mux onto the symbol write port.
  const double gates =
      16 * kGatesPerFaBit +            // index adder
      16 * kGatesPerMuxBit +           // fill mux onto the 16-bit write port
      static_cast<double>(cfg_.num_symbols) * 2.0 +  // range-compare lane enables
      11 * 4.0;                        // ss/len header registers
  HwCost c;
  c.gate_count = static_cast<size_t>(gates);
  c.area_mm2 = gates * kNand2AreaUm2 * 1e-6;
  c.power_mw = gates * kDynPowerPerGateMw * kDecompActivity;
  c.freq_ghz = 0.80;                   // matches E2MC decoder clock
  return c;
}

double HwModel::area_overhead_pct() const {
  const double total = compressor().area_mm2 + decompressor().area_mm2;
  return total / Gtx580Reference::kDieAreaMm2 * 100.0;
}

double HwModel::power_overhead_pct() const {
  const double total = compressor().power_mw + decompressor().power_mw;
  return total / (Gtx580Reference::kTdpW * 1000.0) * 100.0;
}

}  // namespace slc

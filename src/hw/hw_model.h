// Analytic hardware-cost model for the TSLC add-on logic (paper Table I).
//
// The paper synthesized RTL with Synopsys DC at 32 nm; that flow is
// proprietary, so we substitute a gate-count model: the TSLC compressor adds
// a parallel tree adder over 64 code lengths, a comparator stage, per-level
// priority encoders and a sub-block selector; the decompressor adds only the
// predicted-value index generation. Gate counts are converted to area/power
// with published 32 nm standard-cell coefficients, calibrated so the default
// configuration reproduces Table I's magnitudes. The model exposes the same
// scaling knobs as the design (symbol count, code-length width, extra
// nodes), which the ablation bench sweeps.
#pragma once

#include <cstddef>

namespace slc {

/// Cost estimate for one unit (compressor add-on or decompressor add-on).
struct HwCost {
  double freq_ghz = 0.0;
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  size_t gate_count = 0;  ///< NAND2-equivalent gates
};

struct HwModelConfig {
  size_t num_symbols = 64;      ///< tree leaves (128 B block, 16-bit symbols)
  unsigned code_len_bits = 5;   ///< width of one code length (<= 16 -> 5 bits)
  bool extra_nodes = true;      ///< TSLC-OPT middle-level nodes
  double node_nm = 32.0;        ///< process node
};

/// GTX580 reference numbers used for the paper's overhead percentages.
struct Gtx580Reference {
  static constexpr double kDieAreaMm2 = 520.0;
  static constexpr double kTdpW = 244.0;
};

class HwModel {
 public:
  explicit HwModel(HwModelConfig cfg = {});

  /// TSLC compressor add-on (tree adder + comparators + priority encoders +
  /// selector). Paper: 1.43 GHz, 0.0083 mm^2, 1.62 mW.
  HwCost compressor() const;

  /// TSLC decompressor add-on (prediction index generation).
  /// Paper: 0.80 GHz, 0.0003 mm^2, 0.21 mW.
  HwCost decompressor() const;

  /// Overhead relative to GTX580 die area / TDP, in percent.
  double area_overhead_pct() const;
  double power_overhead_pct() const;

  /// Adder/comparator/encoder node counts (tests check these against the
  /// tree geometry in Sec. III-D/F).
  size_t tree_adder_nodes() const;
  size_t comparator_count() const;
  size_t priority_encoder_count() const;

  const HwModelConfig& config() const { return cfg_; }

 private:
  HwModelConfig cfg_;
};

}  // namespace slc

// threshold_explorer: pick a benchmark and sweep the lossy threshold to find
// the spot that meets a target output quality (Sec. IV-C: "a programmer
// needs to specify a lossy threshold that satisfies the target output
// quality and maximizes the benefits").
//
// Usage: threshold_explorer [benchmark] [target_error_pct]
//   benchmark        one of JM BS DCT FWT TP BP NN SRAD1 SRAD2 (default NN)
//   target_error_pct quality bound in percent (default 1.0)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "compress/codec_registry.h"
#include "workloads/workload.h"

using namespace slc;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "NN";
  const double target = argc > 2 ? std::atof(argv[2]) : 1.0;

  const std::vector<uint8_t> image = workload_memory_image(name);
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.training_data = image;
  // Train once, reuse the model for every codec built below.
  opts.trained_e2mc = std::dynamic_pointer_cast<const E2mcCompressor>(
      CodecRegistry::instance().create("E2MC", opts));

  std::printf("Threshold exploration for %s (target error <= %.3f%%)\n", name.c_str(), target);
  std::printf("%-10s %-12s %-12s %-12s\n", "threshold", "lossy blk %", "traffic", "error %");

  size_t best = 0;
  double best_traffic = 1.0;

  // Baseline traffic: lossless E2MC bursts.
  auto base_codec = CodecRegistry::instance().create_block_codec("E2MC", opts);
  const WorkloadRunResult base = run_workload(name, base_codec);
  const double base_bursts = static_cast<double>(base.stats.bursts);

  for (size_t threshold : {2, 4, 8, 12, 16, 20, 24, 28, 32}) {
    opts.threshold_bytes = threshold;
    auto codec = CodecRegistry::instance().create_block_codec("TSLC-OPT", opts);
    const WorkloadRunResult r = run_workload(name, codec);
    const double traffic = static_cast<double>(r.stats.bursts) / base_bursts;
    std::printf("%-10zu %-12.2f %-12.3f %-12.4f\n", threshold,
                r.stats.lossy_fraction() * 100.0, traffic, r.error_pct);
    if (r.error_pct <= target && traffic < best_traffic) {
      best = threshold;
      best_traffic = traffic;
    }
  }

  if (best)
    std::printf("\nRecommended threshold: %zu B (%.1f%% traffic saved at <= %.3f%% error)\n",
                best, (1.0 - best_traffic) * 100.0, target);
  else
    std::printf("\nNo threshold meets the %.3f%% target; keep this region lossless.\n", target);
  return 0;
}

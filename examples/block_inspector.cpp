// block_inspector: per-benchmark compression forensics from the command
// line — where do compressed sizes land relative to burst boundaries, what
// does SLC do about it, and which schemes would have compressed the data.
//
// Usage: block_inspector [benchmark] [mag_bytes] [threshold_bytes]
//   defaults: NN 32 16
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/stats.h"
#include "compress/codec_registry.h"
#include "core/slc_compressor.h"
#include "engine/codec_engine.h"
#include "workloads/workload.h"

using namespace slc;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "NN";
  const size_t mag = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 32;
  const size_t threshold = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 16;

  std::printf("Inspecting %s (MAG %zu B, threshold %zu B)\n", name.c_str(), mag, threshold);
  const auto image = workload_memory_image(name);
  const auto blocks = to_blocks(image);
  std::printf("memory image: %zu blocks (%.1f MB)\n\n", blocks.size(),
              static_cast<double>(image.size()) / 1e6);

  CodecOptions opts;
  opts.mag_bytes = mag;
  opts.threshold_bytes = threshold;
  opts.training_data = image;
  opts.trained_e2mc = std::dynamic_pointer_cast<const E2mcCompressor>(
      CodecRegistry::instance().create("E2MC", opts));
  const auto slc_comp = std::dynamic_pointer_cast<const SlcCompressor>(
      CodecRegistry::instance().create("TSLC-OPT", opts));
  const SlcCodec& codec = slc_comp->codec();
  CodecEngine engine;

  // Scheme comparison (the Fig. 1 view of this one benchmark): every
  // lossless scheme in the registry, block stream batched by the engine.
  {
    std::printf("%-8s %10s %10s\n", "scheme", "raw", "effective");
    for (const std::string& name : CodecRegistry::instance().lossless_names()) {
      const auto comp = CodecRegistry::instance().create(name, opts);
      const auto res = engine.analyze_bytes(*comp, image, mag);
      std::printf("%-8s %10.3f %10.3f\n", name.c_str(), res.ratios.raw_ratio(),
                  res.ratios.effective_ratio());
    }
  }

  // Size histogram at 8 B resolution plus SLC outcomes (the Fig. 2 view).
  Histogram size_hist;
  uint64_t lossy = 0, raw = 0, bursts_e2mc = 0, bursts_slc = 0, truncated = 0;
  for (const Block& b : blocks) {
    const auto info = codec.analyze(b.view());
    size_hist.add(static_cast<int64_t>((info.lossless_bits / 8) / 8 * 8));
    lossy += info.lossy ? 1 : 0;
    raw += info.stored_uncompressed ? 1 : 0;
    bursts_e2mc += bursts_for_bits(info.lossless_bits, mag, b.size());
    bursts_slc += info.bursts;
    truncated += info.truncated_symbols;
  }

  std::printf("\nlossless-size histogram (8 B buckets, %% of blocks):\n");
  for (const auto& [bucket, count] : size_hist.buckets()) {
    const double pct = 100.0 * static_cast<double>(count) / static_cast<double>(blocks.size());
    if (pct < 0.05) continue;
    std::printf("  %4lld B %6.1f%% ", static_cast<long long>(bucket), pct);
    for (int i = 0; i < static_cast<int>(pct); ++i) std::printf("#");
    std::printf("\n");
  }

  std::printf("\nSLC outcome: %.1f%% lossy, %.1f%% stored raw\n",
              100.0 * static_cast<double>(lossy) / static_cast<double>(blocks.size()),
              100.0 * static_cast<double>(raw) / static_cast<double>(blocks.size()));
  std::printf("bursts: E2MC %.3f/block -> SLC %.3f/block (%.1f%% traffic saved)\n",
              static_cast<double>(bursts_e2mc) / static_cast<double>(blocks.size()),
              static_cast<double>(bursts_slc) / static_cast<double>(blocks.size()),
              100.0 * (1.0 - static_cast<double>(bursts_slc) /
                                 static_cast<double>(bursts_e2mc)));
  std::printf("approximated symbols per lossy block: %.2f\n",
              lossy ? static_cast<double>(truncated) / static_cast<double>(lossy) : 0.0);
  return 0;
}

// srad_pipeline: run the SRAD2 image-denoising benchmark end to end through
// the approximate memory system and report image quality and traffic.
//
// Demonstrates: extended cudaMalloc annotations, per-kernel commits, error
// metrics, and the functional/timing split.
#include <cstdio>

#include "compress/codec_registry.h"
#include "metrics/error_metrics.h"
#include "sim/energy.h"
#include "sim/gpu_sim.h"
#include "workloads/workload.h"

using namespace slc;

int main() {
  const std::string name = "SRAD2";

  // Train E2MC on the workload's memory image (online sampling stand-in).
  const std::vector<uint8_t> image = workload_memory_image(name);
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.threshold_bytes = 16;  // the paper's default lossy threshold
  opts.training_data = image;
  opts.trained_e2mc = std::dynamic_pointer_cast<const E2mcCompressor>(
      CodecRegistry::instance().create("E2MC", opts));
  const CodecRegistry& registry = CodecRegistry::instance();

  std::printf("SRAD2 through the SLC memory system\n");
  std::printf("-----------------------------------\n");

  // Baseline: lossless E2MC.
  auto base_codec = registry.create_block_codec("E2MC", opts);
  const WorkloadRunResult base = run_workload(name, base_codec);

  GpuSimConfig base_cfg;
  base_cfg.compress_latency = registry.at("E2MC").compress_latency;
  base_cfg.decompress_latency = registry.at("E2MC").decompress_latency;
  GpuSim base_sim(base_cfg);
  const SimStats base_stats = base_sim.run(base.trace);

  // SLC with the paper's default threshold.
  auto slc_codec = registry.create_block_codec("TSLC-OPT", opts);
  const WorkloadRunResult slc = run_workload(name, slc_codec);

  GpuSimConfig slc_cfg = base_cfg;
  slc_cfg.compress_latency = registry.at("TSLC-OPT").compress_latency;
  slc_cfg.decompress_latency = registry.at("TSLC-OPT").decompress_latency;
  GpuSim slc_sim(slc_cfg);
  const SimStats slc_stats = slc_sim.run(slc.trace);

  const EnergyBreakdown base_e = compute_energy(base_stats, base_cfg);
  const EnergyBreakdown slc_e = compute_energy(slc_stats, slc_cfg);

  std::printf("%-28s %14s %14s\n", "", "E2MC", "TSLC-OPT");
  std::printf("%-28s %14.4f %14.4f\n", "image diff vs exact (%)", base.error_pct,
              slc.error_pct);
  std::printf("%-28s %14llu %14llu\n", "cycles",
              static_cast<unsigned long long>(base_stats.cycles),
              static_cast<unsigned long long>(slc_stats.cycles));
  std::printf("%-28s %14llu %14llu\n", "DRAM bursts",
              static_cast<unsigned long long>(base_stats.dram_bursts_total()),
              static_cast<unsigned long long>(slc_stats.dram_bursts_total()));
  std::printf("%-28s %14.2f %14.2f\n", "achieved BW (GB/s)",
              base_stats.achieved_bandwidth_gbps(base_cfg),
              slc_stats.achieved_bandwidth_gbps(slc_cfg));
  std::printf("%-28s %14.3f %14.3f\n", "energy (mJ)", base_e.total_j() * 1e3,
              slc_e.total_j() * 1e3);
  std::printf("%-28s %14.3f %14.3f\n", "lossy blocks (%)",
              base.stats.lossy_fraction() * 100.0, slc.stats.lossy_fraction() * 100.0);
  std::printf("\nspeedup %.3fx, traffic %.1f%% saved, image diff %.4f%%\n",
              static_cast<double>(base_stats.cycles) / static_cast<double>(slc_stats.cycles),
              100.0 * (1.0 - static_cast<double>(slc_stats.dram_bursts_total()) /
                                 static_cast<double>(base_stats.dram_bursts_total())),
              slc.error_pct);
  return 0;
}

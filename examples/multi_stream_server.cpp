// Multi-stream server: the CodecServer front-end end to end.
//
// Three clients share one server (and its engine pool):
//   * "sweep"   — a bulk E2MC stream batching large analyze requests (the
//                 fig-ratio style offline workload), priority kBulk;
//   * "commits" — a latency-sensitive TSLC-OPT stream of small commit-sized
//                 requests, priority kLatency: its batches preempt the bulk
//                 backlog at shard granularity;
//   * "probe"   — a BDI stream showing per-stream codec isolation.
//
// Each stream keeps its own registry-selected codec, error budget
// (threshold_bytes) and stats; requests coalesce into engine-sized batches;
// drain() is the barrier. All three streams opt into the engine's shared
// fingerprint memo (CacheMode::kShared), so the commits client's retry
// resubmission dedups against its first copy. The commits client also shows
// the typed Request surface: a kCompress request returning real payloads
// under a deadline, and a kReject stream shedding at saturation. The final
// table prints per-stream CommitStats, the memo hit rate, latency
// percentiles, and the rejected/deadline-miss counters.
//
// Build & run:   cmake -B build && cmake --build build
//                ./build/examples/multi_stream_server
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "server/codec_server.h"

using namespace slc;

namespace {

// Value-similar quantized floats — the data shape GPU workloads move.
std::vector<uint8_t> make_stream(uint64_t seed, size_t blocks) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 20.0;
  for (size_t i = 0; i < blocks * kBlockBytes / 4; ++i) {
    walk += rng.uniform(-1.0, 1.0);
    const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
    uint32_t bits;
    __builtin_memcpy(&bits, &v, sizeof bits);
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return data;
}

}  // namespace

int main() {
  // One shared training sample stands in for the per-benchmark E2MC online
  // sampling window; every stream picks its codec by registry name.
  const auto training = make_stream(1, 256);
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.threshold_bytes = 16;  // the streams' lossy error budget
  opts.training_data = training;
  opts.e2mc.sample_fraction = 1.0;

  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>();
  cfg.batch_blocks = 64;         // coalesce small requests up to this
  cfg.max_inflight_blocks = 512; // backpressure budget
  CodecServer server(cfg);
  std::printf("server: %u engine worker(s), batch %zu blocks, budget %zu blocks\n\n",
              server.engine().num_threads(), cfg.batch_blocks, cfg.max_inflight_blocks);

  StreamConfig sweep{"sweep", "E2MC", opts, StreamPriority::kBulk};
  StreamConfig commits{"commits", "TSLC-OPT", opts, StreamPriority::kLatency};
  StreamConfig probe{"probe", "BDI", CodecOptions{.mag_bytes = 32}, StreamPriority::kNormal};
  // Opt every stream into the engine-wide fingerprint memo: repeated block
  // content skips the Fig. 4 probe and shows up in the hit-rate column.
  sweep.cache_mode = CacheMode::kShared;
  commits.cache_mode = CacheMode::kShared;
  probe.cache_mode = CacheMode::kShared;
  // The probe stream sheds rather than queues when the budget saturates —
  // the policy a best-effort diagnostic client wants.
  probe.admission = AdmissionPolicy::kReject;
  const StreamId s_sweep = server.open_stream(sweep);
  const StreamId s_commits = server.open_stream(commits);
  const StreamId s_probe = server.open_stream(probe);

  // Bulk client: eight large requests, fire-and-forget (tickets dropped —
  // the in-flight budget still retires through batch completion).
  for (uint64_t i = 0; i < 8; ++i) {
    const auto bulk = make_stream(10 + i, 96);
    server.submit(s_sweep, Request{.bytes = bulk});
  }

  // Latency client: small requests, each waited synchronously. With
  // kLatency priority these preempt the sweep backlog instead of queueing
  // behind it. Each payload is committed twice (a retry pattern): the
  // second copy's decisions come straight from the fingerprint memo.
  for (uint64_t i = 0; i < 4; ++i) {
    const auto payload = make_stream(30 + i, 8);
    server.submit(s_commits, Request{.bytes = payload}).wait();
    auto ticket = server.submit(s_commits, Request{.bytes = payload, .tag = i});
    const Response res = ticket.wait();
    std::printf("commit %llu (retry): %zu blocks, %llu lossy, effective ratio %.3f\n",
                static_cast<unsigned long long>(res.tag), res.analysis.blocks.size(),
                static_cast<unsigned long long>(res.analysis.lossy_blocks),
                res.analysis.ratios.effective_ratio());
  }

  // Compress client: the same stream can ask for real payloads. A deadline
  // arms the server's flush timer, so the partial batch dispatches within
  // the budget even if no later submit pushes it out.
  {
    const auto payload = make_stream(40, 8);
    auto ticket = server.submit(
        s_commits, Request{.kind = RequestKind::kCompress,
                           .bytes = payload,
                           .deadline = std::chrono::milliseconds(5)});
    const Response res = ticket.wait();
    size_t payload_bits = 0;
    for (const CompressedBlock& cb : res.payloads) payload_bits += cb.bit_size;
    std::printf("\ncompress under 5 ms deadline: %zu payloads, %zu bits total%s\n",
                res.payloads.size(), payload_bits,
                res.deadline_missed ? " (deadline missed)" : "");
  }

  // Probe client: a ticket can be polled before it is waited, and a shed
  // request reports kRejected instead of blocking the caller.
  auto probe_ticket = server.submit(s_probe, Request{.bytes = make_stream(50, 24)});
  std::printf("probe ready before wait: %s (still coalescing until waited/flushed)\n",
              probe_ticket.ready() ? "yes" : "no");
  const Response probe_res = probe_ticket.wait();
  if (probe_res.status == ResponseStatus::kRejected) {
    std::printf("probe: shed at admission (budget saturated)\n");
  } else {
    std::printf("probe: %zu blocks through BDI, raw ratio %.3f\n",
                probe_res.analysis.blocks.size(), probe_res.analysis.ratios.raw_ratio());
  }

  // Barrier, then per-stream + aggregate accounting.
  server.drain();
  TextTable t({"Stream", "Requests", "Rejected", "Misses", "Batches", "Blocks", "Lossy",
               "Avg bursts", "Memo hits", "p50 (us)", "p99 (us)"});
  for (const StreamId s : {s_sweep, s_commits, s_probe}) {
    const StreamStats st = server.stream_stats(s);
    t.add_row({server.stream_name(s), std::to_string(st.requests), std::to_string(st.rejected),
               std::to_string(st.deadline_misses), std::to_string(st.batches),
               std::to_string(st.commit.blocks), std::to_string(st.commit.lossy_blocks),
               TextTable::fmt(st.commit.avg_bursts(), 2),
               TextTable::fmt(st.commit.cache.hit_rate() * 100.0, 1) + "%",
               TextTable::fmt(st.latency.percentile(50) * 1e6, 0),
               TextTable::fmt(st.latency.percentile(99) * 1e6, 0)});
  }
  const StreamStats agg = server.aggregate_stats();
  t.add_row({"<all>", std::to_string(agg.requests), std::to_string(agg.rejected),
             std::to_string(agg.deadline_misses), std::to_string(agg.batches),
             std::to_string(agg.commit.blocks), std::to_string(agg.commit.lossy_blocks),
             TextTable::fmt(agg.commit.avg_bursts(), 2),
             TextTable::fmt(agg.commit.cache.hit_rate() * 100.0, 1) + "%",
             TextTable::fmt(agg.latency.percentile(50) * 1e6, 0),
             TextTable::fmt(agg.latency.percentile(99) * 1e6, 0)});
  std::printf("\n%s", t.to_string().c_str());
  return 0;
}

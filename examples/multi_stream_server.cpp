// Multi-stream server: the CodecServer front-end end to end.
//
// Three clients share one server (and its engine pool):
//   * "sweep"   — a bulk E2MC stream batching large analyze requests (the
//                 fig-ratio style offline workload), priority kBulk;
//   * "commits" — a latency-sensitive TSLC-OPT stream of small commit-sized
//                 requests, priority kLatency: its batches preempt the bulk
//                 backlog at shard granularity;
//   * "probe"   — a BDI stream showing per-stream codec isolation.
//
// Each stream keeps its own registry-selected codec, error budget
// (threshold_bytes) and stats; requests coalesce into engine-sized batches;
// drain() is the barrier. All three streams opt into the engine's shared
// fingerprint memo, so the commits client's retry resubmission dedups against
// its first copy. The final table prints per-stream CommitStats, the memo hit
// rate and latency percentiles.
//
// Build & run:   cmake -B build && cmake --build build
//                ./build/examples/multi_stream_server
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "server/codec_server.h"

using namespace slc;

namespace {

// Value-similar quantized floats — the data shape GPU workloads move.
std::vector<uint8_t> make_stream(uint64_t seed, size_t blocks) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 20.0;
  for (size_t i = 0; i < blocks * kBlockBytes / 4; ++i) {
    walk += rng.uniform(-1.0, 1.0);
    const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
    uint32_t bits;
    __builtin_memcpy(&bits, &v, sizeof bits);
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return data;
}

}  // namespace

int main() {
  // One shared training sample stands in for the per-benchmark E2MC online
  // sampling window; every stream picks its codec by registry name.
  const auto training = make_stream(1, 256);
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.threshold_bytes = 16;  // the streams' lossy error budget
  opts.training_data = training;
  opts.e2mc.sample_fraction = 1.0;

  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>();
  cfg.batch_blocks = 64;         // coalesce small requests up to this
  cfg.max_inflight_blocks = 512; // backpressure budget
  CodecServer server(cfg);
  std::printf("server: %u engine worker(s), batch %zu blocks, budget %zu blocks\n\n",
              server.engine().num_threads(), cfg.batch_blocks, cfg.max_inflight_blocks);

  StreamConfig sweep{"sweep", "E2MC", opts, StreamPriority::kBulk};
  StreamConfig commits{"commits", "TSLC-OPT", opts, StreamPriority::kLatency};
  StreamConfig probe{"probe", "BDI", CodecOptions{.mag_bytes = 32}, StreamPriority::kNormal};
  // Opt every stream into the engine-wide fingerprint memo
  // (Config::share_fingerprint_cache is on by default): repeated block
  // content skips the Fig. 4 probe and shows up in the hit-rate column.
  sweep.use_fingerprint_cache = true;
  commits.use_fingerprint_cache = true;
  probe.use_fingerprint_cache = true;
  const StreamId s_sweep = server.open_stream(sweep);
  const StreamId s_commits = server.open_stream(commits);
  const StreamId s_probe = server.open_stream(probe);

  // Bulk client: eight large requests, fire-and-forget (tickets dropped —
  // the in-flight budget still retires through batch completion).
  for (uint64_t i = 0; i < 8; ++i) server.submit(s_sweep, make_stream(10 + i, 96));

  // Latency client: small requests, each waited synchronously. With
  // kLatency priority these preempt the sweep backlog instead of queueing
  // behind it. Each payload is committed twice (a retry pattern): the
  // second copy's decisions come straight from the fingerprint memo.
  for (uint64_t i = 0; i < 4; ++i) {
    const auto payload = make_stream(30 + i, 8);
    server.submit(s_commits, payload).wait();
    auto ticket = server.submit(s_commits, payload);
    const auto res = ticket.wait();
    std::printf("commit %llu (retry): %zu blocks, %llu lossy, effective ratio %.3f\n",
                static_cast<unsigned long long>(i), res.blocks.size(),
                static_cast<unsigned long long>(res.lossy_blocks),
                res.ratios.effective_ratio());
  }

  // Probe client: a ticket can be polled before it is waited.
  auto probe_ticket = server.submit(s_probe, make_stream(50, 24));
  std::printf("\nprobe ready before wait: %s (still coalescing until waited/flushed)\n",
              probe_ticket.ready() ? "yes" : "no");
  const auto probe_res = probe_ticket.wait();
  std::printf("probe: %zu blocks through BDI, raw ratio %.3f\n", probe_res.blocks.size(),
              probe_res.ratios.raw_ratio());

  // Barrier, then per-stream + aggregate accounting.
  server.drain();
  TextTable t({"Stream", "Requests", "Batches", "Blocks", "Lossy", "Avg bursts", "Memo hits",
               "p50 (us)", "p99 (us)"});
  for (const StreamId s : {s_sweep, s_commits, s_probe}) {
    const StreamStats st = server.stream_stats(s);
    t.add_row({server.stream_name(s), std::to_string(st.requests), std::to_string(st.batches),
               std::to_string(st.commit.blocks), std::to_string(st.commit.lossy_blocks),
               TextTable::fmt(st.commit.avg_bursts(), 2),
               TextTable::fmt(st.commit.cache.hit_rate() * 100.0, 1) + "%",
               TextTable::fmt(st.latency.percentile(50) * 1e6, 0),
               TextTable::fmt(st.latency.percentile(99) * 1e6, 0)});
  }
  const StreamStats agg = server.aggregate_stats();
  t.add_row({"<all>", std::to_string(agg.requests), std::to_string(agg.batches),
             std::to_string(agg.commit.blocks), std::to_string(agg.commit.lossy_blocks),
             TextTable::fmt(agg.commit.avg_bursts(), 2),
             TextTable::fmt(agg.commit.cache.hit_rate() * 100.0, 1) + "%",
             TextTable::fmt(agg.latency.percentile(50) * 1e6, 0),
             TextTable::fmt(agg.latency.percentile(99) * 1e6, 0)});
  std::printf("\n%s", t.to_string().c_str());
  return 0;
}

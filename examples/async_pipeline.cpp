// Async pipeline: the CodecEngine submit()/CodecFuture API and
// ApproxMemory::commit_async() + flush(), end to end.
//
// Four stages:
//   1. Two independent analyze jobs in flight on one engine — submit both,
//      then wait both; per-job results match the synchronous path exactly.
//   2. A region commit queued with commit_async() while the caller keeps
//      generating data for the next region (the workload-harness pipeline).
//   3. flush() as the barrier that makes burst counts and stats final.
//   4. GpuSim::run(ApproxMemory&) replaying the captured trace — it flushes
//      in-flight commits itself, so replay always sees final burst counts.
//
// Build & run:   cmake -B build && cmake --build build
//                ./build/examples/async_pipeline
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/block.h"
#include "common/rng.h"
#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "sim/gpu_sim.h"
#include "workloads/approx_memory.h"

using namespace slc;

namespace {

// Value-similar quantized floats — the data shape GPU workloads move.
std::vector<uint8_t> make_stream(uint64_t seed, size_t blocks) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 20.0;
  for (size_t i = 0; i < blocks * kBlockBytes / 4; ++i) {
    walk += rng.uniform(-1.0, 1.0);
    const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
    uint32_t bits;
    __builtin_memcpy(&bits, &v, sizeof bits);
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return data;
}

}  // namespace

int main() {
  // Codec by registry name, trained on a sample of the data it will move.
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.threshold_bytes = 16;
  opts.training_data = make_stream(1, 128);
  opts.e2mc.sample_fraction = 1.0;
  const auto e2mc = CodecRegistry::instance().create("E2MC", opts);

  auto engine = std::make_shared<CodecEngine>();
  std::printf("engine: %u worker(s)\n\n", engine->num_threads());

  // 1. Two analyze jobs in flight at once. submit_analyze returns a
  //    CodecFuture immediately; the streams shard across the same pool and
  //    each job's result is byte-identical to a solo analyze_stream run.
  const auto blocks_a = to_blocks(make_stream(2, 96));
  const auto blocks_b = to_blocks(make_stream(3, 96));
  auto fut_a = engine->submit_analyze(*e2mc, blocks_a, 32);
  auto fut_b = engine->submit_analyze(*e2mc, blocks_b, 32);
  const auto res_a = fut_a.wait();
  const auto res_b = fut_b.wait();
  std::printf("stream A: %zu blocks, raw ratio %.3f, effective %.3f\n", res_a.blocks.size(),
              res_a.ratios.raw_ratio(), res_a.ratios.effective_ratio());
  std::printf("stream B: %zu blocks, raw ratio %.3f, effective %.3f\n\n", res_b.blocks.size(),
              res_b.ratios.raw_ratio(), res_b.ratios.effective_ratio());

  // 2. The memory-model pipeline: queue region r's commit, generate region
  //    r+1 while it compresses. span() settles a region's own pending commit,
  //    so ordering — and therefore every byte — matches serial commit().
  ApproxMemory mem;
  mem.set_engine(engine);
  mem.set_codec(CodecRegistry::instance().create_block_codec("TSLC-OPT", opts));
  const size_t kRegionBlocks = 64;
  std::vector<RegionId> regions;
  for (int r = 0; r < 3; ++r)
    regions.push_back(mem.alloc("buf" + std::to_string(r), kRegionBlocks * kBlockBytes,
                                /*safe=*/true, 16));
  for (size_t r = 0; r < regions.size(); ++r) {
    const auto src = make_stream(10 + r, kRegionBlocks);   // "kernel" output
    auto dst = mem.span<uint8_t>(regions[r]);              // settles region r
    std::copy(src.begin(), src.end(), dst.begin());
    mem.commit_async(regions[r]);                          // queue, don't wait
    std::printf("region %zu committed async (pending: %s)\n", r,
                mem.commit_pending(regions[r]) ? "yes" : "no");
  }

  // 3. Barrier: flush settles everything; stats now cover all commits.
  mem.flush();
  const CommitStats& st = mem.stats();
  std::printf("\nafter flush: %llu blocks committed, %llu lossy, avg bursts %.2f\n",
              static_cast<unsigned long long>(st.blocks),
              static_cast<unsigned long long>(st.lossy_blocks), st.avg_bursts());

  // 4. Capture a kernel trace and replay it through the timing simulator
  //    with writeback commits still in flight — run(ApproxMemory&) flushes
  //    them before consuming the trace's burst counts.
  mem.begin_kernel("consume", /*compute_per_access=*/1.0);
  for (const RegionId r : regions) mem.trace_read(r);
  for (const RegionId r : regions) mem.commit_async(r);
  GpuSim sim(GpuSimConfig{});
  const SimStats replay = sim.run(mem);
  std::printf("replay: %llu block accesses in %llu cycles, %llu DRAM read bursts\n",
              static_cast<unsigned long long>(replay.accesses),
              static_cast<unsigned long long>(replay.cycles),
              static_cast<unsigned long long>(replay.dram_read_bursts));
  return 0;
}

// Quickstart: compress one 128 B block with E2MC and with SLC, inspect the
// mode decision, and decompress.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/block.h"
#include "compress/codec_registry.h"
#include "core/slc_compressor.h"

using namespace slc;

int main() {
  // A block of 32 floats with high value similarity — adjacent GPU threads
  // produce data like this (Sec. III-E).
  std::vector<float> values(32);
  for (size_t i = 0; i < values.size(); ++i)
    values[i] = 1.5f + 0.001f * static_cast<float>(i);
  Block block;
  for (size_t i = 0; i < values.size(); ++i) {
    uint32_t bits;
    static_assert(sizeof bits == sizeof(float));
    __builtin_memcpy(&bits, &values[i], sizeof bits);
    block.set_word32(i, bits);
  }

  // 1. Build the lossless baseline (E2MC) by registry name, trained on a
  //    sample of the data the application will move. Here: the block itself,
  //    repeated.
  std::vector<uint8_t> sample;
  for (int rep = 0; rep < 64; ++rep)
    sample.insert(sample.end(), block.bytes().begin(), block.bytes().end());
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.threshold_bytes = 16;
  opts.training_data = sample;
  opts.e2mc.sample_fraction = 1.0;
  auto e2mc = CodecRegistry::instance().create("E2MC", opts);

  const CompressedBlock lossless = e2mc->compress(block.view());
  std::printf("E2MC lossless: %zu bits (%.1f B) for a %zu B block\n", lossless.bit_size,
              static_cast<double>(lossless.bit_size) / 8.0, block.size());
  std::printf("  -> bursts at MAG 32 B: %zu (effective cost %zu B)\n",
              bursts_for_bits(lossless.bit_size, 32),
              bursts_for_bits(lossless.bit_size, 32) * 32);

  // 2. The same block through SLC (constructed by name too): if the
  //    compressed size is a few bytes above a burst multiple, SLC truncates
  //    symbols to fit the budget.
  const auto slc_comp = std::dynamic_pointer_cast<const SlcCompressor>(
      CodecRegistry::instance().create("TSLC-OPT", opts));
  const SlcCodec& codec = slc_comp->codec();
  const SlcCompressedBlock sc = codec.compress(block.view());

  std::printf("\nSLC (%s, threshold %zu B):\n", slc_comp->name().c_str(),
              codec.config().threshold_bytes);
  std::printf("  lossless size : %zu bits\n", sc.info.lossless_bits);
  std::printf("  bit budget gap: %zu extra bits above the burst multiple\n",
              sc.info.extra_bits);
  std::printf("  mode          : %s\n", sc.info.lossy ? "LOSSY (truncated)" : "lossless");
  if (sc.info.lossy) {
    std::printf("  truncated     : %zu symbols (%zu bits of codes)\n",
                sc.info.truncated_symbols, sc.info.truncated_bits);
  }
  std::printf("  stored size   : %zu bits -> %zu burst(s)\n", sc.info.final_bits,
              sc.info.bursts);

  // 3. Decompress and compare.
  const Block out = codec.decompress(sc, block.size());
  size_t diff_symbols = 0;
  for (size_t s = 0; s < kSymbolsPerBlock; ++s)
    if (out.symbol(s) != block.symbol(s)) ++diff_symbols;
  std::printf("\nRound trip: %zu of %zu symbols differ from the original\n", diff_symbols,
              kSymbolsPerBlock);
  float first_in, first_out;
  const uint32_t w_in = block.view().word32(0);
  const uint32_t w_out = out.view().word32(0);
  __builtin_memcpy(&first_in, &w_in, sizeof first_in);
  __builtin_memcpy(&first_out, &w_out, sizeof first_out);
  std::printf("Element 0: %.6f -> %.6f\n", static_cast<double>(first_in),
              static_cast<double>(first_out));
  return 0;
}

// option_pricing: BlackScholes with per-region safety annotations.
//
// Demonstrates the extended cudaMalloc() model from Sec. IV-C: the pricing
// inputs and the call-premium output are safe to approximate, the put array
// is not — so SLC only ever truncates blocks of the safe regions.
#include <cstdio>

#include "compress/codec_registry.h"
#include "workloads/workload.h"

using namespace slc;

int main() {
  const std::string name = "BS";
  const std::vector<uint8_t> image = workload_memory_image(name);
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.training_data = image;
  opts.trained_e2mc = std::dynamic_pointer_cast<const E2mcCompressor>(
      CodecRegistry::instance().create("E2MC", opts));

  std::printf("BlackScholes option pricing with SLC\n");
  std::printf("------------------------------------\n");
  std::printf("%-10s %-10s %-12s %-12s %-10s\n", "variant", "thresh", "lossy blk %",
              "avg bursts", "MRE %");

  for (const std::string& variant : CodecRegistry::instance().lossy_names()) {
    for (size_t threshold : {8, 16, 32}) {
      opts.threshold_bytes = threshold;
      auto codec = CodecRegistry::instance().create_block_codec(variant, opts);
      const WorkloadRunResult r = run_workload(name, codec);
      std::printf("%-10s %-10zu %-12.2f %-12.3f %-10.4f\n", variant.c_str(), threshold,
                  r.stats.lossy_fraction() * 100.0, r.stats.avg_bursts(), r.error_pct);
    }
  }

  std::printf("\nNote: the put-premium region is allocated with safeToApprox=false and\n");
  std::printf("is always compressed losslessly, whatever the threshold.\n");
  return 0;
}

// Ablation (Sec. III-F): unneeded approximation with and without the
// TSLC-OPT extra tree nodes.
//
// The paper motivates the 8+4 extra nodes at levels 3 and 4 by the coarse
// power-of-two sums over-truncating at the middle levels. This bench
// measures, per benchmark: how many symbols the selector truncates, how many
// bits beyond the required extra_bits it removes (the "unneeded
// approximation"), and at which window size selections land.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/slc_compressor.h"
#include "core/tree_selector.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Ablation — TSLC-OPT extra tree nodes",
               "Sec. III-F (unneeded approximation at middle levels)");

  const size_t mag = 32;
  const size_t threshold = 16;
  const auto names = workload_names();

  TextTable t({"Bench", "lossy%", "sym/blk(base)", "sym/blk(OPT)", "waste-bits(base)",
               "waste-bits(OPT)"});

  std::vector<double> waste_base_all, waste_opt_all;
  for (const std::string& name : names) {
    const auto slc_comp = std::dynamic_pointer_cast<const SlcCompressor>(
        CodecRegistry::instance().create("TSLC-PRED",
                                         codec_options_for(name, mag, threshold)));
    const SlcCodec& codec = slc_comp->codec();
    const E2mcCompressor& e2mc = codec.lossless();
    const auto blocks = to_blocks(workload_image_cached(name));

    const TreeSlcSelector base_sel(/*extra_nodes=*/false);
    const TreeSlcSelector opt_sel(/*extra_nodes=*/true);

    uint64_t lossy = 0, total = 0;
    uint64_t sym_base = 0, sym_opt = 0, waste_base = 0, waste_opt = 0, selections = 0;
    for (const Block& b : blocks) {
      ++total;
      const auto lens = e2mc.code_lengths(b.view());
      const auto lo = e2mc.layout(lens, codec.header_bits(b.size()));
      const size_t comp = lo.total_bits;
      if (comp >= b.size() * 8) continue;
      const size_t budget = std::max(comp / (mag * 8) * (mag * 8), mag * 8);
      const size_t extra = comp > budget ? comp - budget : 0;
      if (extra == 0 || extra > threshold * 8) continue;
      const auto c_base = base_sel.select(lens, extra);
      const auto c_opt = opt_sel.select(lens, extra);
      if (!c_base || !c_opt) continue;
      ++lossy;
      ++selections;
      sym_base += c_base->count;
      sym_opt += c_opt->count;
      waste_base += TreeSlcSelector::overshoot_bits(*c_base, extra);
      waste_opt += TreeSlcSelector::overshoot_bits(*c_opt, extra);
    }

    auto avg = [&](uint64_t v) {
      return selections ? static_cast<double>(v) / static_cast<double>(selections) : 0.0;
    };
    t.add_row({name, TextTable::fmt(100.0 * static_cast<double>(lossy) /
                                    static_cast<double>(total), 1),
               TextTable::fmt(avg(sym_base), 2), TextTable::fmt(avg(sym_opt), 2),
               TextTable::fmt(avg(waste_base), 1), TextTable::fmt(avg(waste_opt), 1)});
    if (selections) {
      waste_base_all.push_back(std::max(avg(waste_base), 1e-3));
      waste_opt_all.push_back(std::max(avg(waste_opt), 1e-3));
    }
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf("GM waste bits/selection: base %.1f -> OPT %.1f (extra nodes cut unneeded\n"
              "approximation, Sec. III-F)\n",
              geometric_mean(waste_base_all), geometric_mean(waste_opt_all));
  return 0;
}

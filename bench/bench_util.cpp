#include "bench_util.h"

#include <cstdio>
#include <mutex>

namespace slc::bench {

namespace {
std::map<std::string, std::shared_ptr<const E2mcCompressor>> g_e2mc_cache;
std::mutex g_mutex;

std::string cache_key(const std::string& benchmark, WorkloadScale scale) {
  return benchmark + (scale == WorkloadScale::kDefault ? "/default" : "/tiny");
}
}  // namespace

std::shared_ptr<const E2mcCompressor> trained_e2mc(const std::string& benchmark,
                                                   WorkloadScale scale) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::string key = cache_key(benchmark, scale);
  auto it = g_e2mc_cache.find(key);
  if (it != g_e2mc_cache.end()) return it->second;
  const std::vector<uint8_t> image = workload_memory_image(benchmark, scale);
  auto comp = E2mcCompressor::train(image, E2mcConfig{});
  g_e2mc_cache[key] = comp;
  return comp;
}

const char* to_string(CodecKind k) {
  switch (k) {
    case CodecKind::kRaw: return "RAW";
    case CodecKind::kE2mc: return "E2MC";
    case CodecKind::kTslcSimp: return "TSLC-SIMP";
    case CodecKind::kTslcPred: return "TSLC-PRED";
    case CodecKind::kTslcOpt: return "TSLC-OPT";
  }
  return "?";
}

GpuSimConfig sim_config_for(CodecKind kind, size_t mag_bytes) {
  GpuSimConfig cfg;
  cfg.mag_bytes = mag_bytes;
  switch (kind) {
    case CodecKind::kRaw:
      cfg.compress_latency = 0;
      cfg.decompress_latency = 0;
      break;
    case CodecKind::kE2mc:
      cfg.compress_latency = E2mcCompressor::kCompressLatency;     // 46
      cfg.decompress_latency = E2mcCompressor::kDecompressLatency; // 20
      break;
    default:
      cfg.compress_latency = SlcCodec::kCompressLatency;           // 60
      cfg.decompress_latency = SlcCodec::kDecompressLatency;       // 20
      break;
  }
  return cfg;
}

std::shared_ptr<const BlockCodec> make_codec(CodecKind kind, const std::string& benchmark,
                                             size_t mag_bytes, size_t threshold_bytes,
                                             WorkloadScale scale) {
  switch (kind) {
    case CodecKind::kRaw:
      return std::make_shared<RawBlockCodec>(mag_bytes);
    case CodecKind::kE2mc:
      return std::make_shared<LosslessBlockCodec>(trained_e2mc(benchmark, scale), mag_bytes);
    case CodecKind::kTslcSimp:
    case CodecKind::kTslcPred:
    case CodecKind::kTslcOpt: {
      SlcConfig cfg;
      cfg.mag_bytes = mag_bytes;
      cfg.threshold_bytes = threshold_bytes;
      cfg.variant = kind == CodecKind::kTslcSimp   ? SlcVariant::kSimp
                    : kind == CodecKind::kTslcPred ? SlcVariant::kPred
                                                   : SlcVariant::kOpt;
      return std::make_shared<SlcBlockCodec>(trained_e2mc(benchmark, scale), cfg);
    }
  }
  return nullptr;
}

FullRunResult full_run(const std::string& benchmark, CodecKind kind, size_t mag_bytes,
                       size_t threshold_bytes, WorkloadScale scale) {
  FullRunResult out;
  auto codec = make_codec(kind, benchmark, mag_bytes, threshold_bytes, scale);
  const WorkloadRunResult wr = run_workload(benchmark, codec, scale);
  out.error_pct = wr.error_pct;
  out.metric = wr.metric;
  out.commit = wr.stats;

  const GpuSimConfig cfg = sim_config_for(kind, mag_bytes);
  GpuSim sim(cfg);
  out.sim = sim.run(wr.trace);
  out.energy = compute_energy(out.sim, cfg);
  out.seconds = out.sim.exec_seconds(cfg);
  out.edp = out.energy.edp(out.seconds);
  return out;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Paper: Lal, Lucas, Juurlink. \"SLC: Memory Access Granularity\n");
  std::printf("       Aware Selective Lossy Compression for GPUs\", DATE 2019\n");
  std::printf("================================================================\n\n");
}

void print_table2(const GpuSimConfig& cfg) {
  std::printf("Table II: baseline simulator configuration\n");
  TextTable t({"Parameter", "Value", "Parameter", "Value"});
  t.add_row({"#SMs", std::to_string(cfg.num_sms), "L1 $/SM",
             std::to_string(cfg.l1_bytes / 1024) + " KB"});
  t.add_row({"SM freq", TextTable::fmt(cfg.sm_clock_ghz * 1000, 0) + " MHz", "L2 $",
             std::to_string(cfg.l2_bytes / 1024) + " KB"});
  t.add_row({"Memory type", "GDDR5", "#Memory controllers", std::to_string(cfg.num_mcs)});
  t.add_row({"Memory clock", TextTable::fmt(cfg.mem_clock_ghz * 1000, 0) + " MHz",
             "Memory bandwidth", TextTable::fmt(cfg.bandwidth_gbps(), 1) + " GB/s"});
  t.add_row({"Bus width", "32-bit", "Burst length", "8"});
  t.add_row({"MAG", std::to_string(cfg.mag_bytes) + " B", "Max outstanding/SM",
             std::to_string(cfg.max_outstanding_per_sm)});
  std::printf("%s\n", t.to_string().c_str());
}

void print_table3() {
  std::printf("Table III: benchmarks\n");
  TextTable t({"Name", "Description", "Metric", "#AR"});
  for (const std::string& name : workload_names()) {
    auto wl = make_workload(name);
    ApproxMemory mem;
    wl->init(mem);
    t.add_row({name, wl->description(), std::string(to_string(wl->metric())),
               std::to_string(mem.safe_region_count())});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace slc::bench

#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>

#include "common/block.h"
#include "compress/simd_dispatch.h"

namespace slc::bench {

namespace {
std::map<std::string, std::vector<uint8_t>> g_image_cache;
std::map<std::string, std::shared_ptr<const E2mcCompressor>> g_e2mc_cache;
std::mutex g_mutex;

std::string cache_key(const std::string& benchmark, WorkloadScale scale) {
  return benchmark + (scale == WorkloadScale::kDefault ? "/default" : "/tiny");
}
}  // namespace

const std::vector<uint8_t>& workload_image_cached(const std::string& benchmark,
                                                  WorkloadScale scale) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::string key = cache_key(benchmark, scale);
  auto it = g_image_cache.find(key);
  if (it == g_image_cache.end())
    it = g_image_cache.emplace(key, workload_memory_image(benchmark, scale)).first;
  return it->second;
}

std::shared_ptr<const E2mcCompressor> trained_e2mc(const std::string& benchmark,
                                                   WorkloadScale scale) {
  const std::vector<uint8_t>& image = workload_image_cached(benchmark, scale);
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::string key = cache_key(benchmark, scale);
  auto it = g_e2mc_cache.find(key);
  if (it != g_e2mc_cache.end()) return it->second;
  auto comp = E2mcCompressor::train(image, E2mcConfig{});
  g_e2mc_cache[key] = comp;
  return comp;
}

CodecOptions codec_options_for(const std::string& benchmark, size_t mag_bytes,
                               size_t threshold_bytes, WorkloadScale scale) {
  CodecOptions opts;
  opts.mag_bytes = mag_bytes;
  opts.threshold_bytes = threshold_bytes;
  opts.training_data = workload_image_cached(benchmark, scale);
  opts.trained_e2mc = trained_e2mc(benchmark, scale);
  return opts;
}

GpuSimConfig sim_config_for(const std::string& scheme, size_t mag_bytes) {
  const CodecInfo& info = CodecRegistry::instance().at(scheme);
  GpuSimConfig cfg;
  cfg.mag_bytes = mag_bytes;
  cfg.compress_latency = info.compress_latency;
  cfg.decompress_latency = info.decompress_latency;
  return cfg;
}

std::shared_ptr<const BlockCodec> make_codec(const std::string& scheme,
                                             const std::string& benchmark, size_t mag_bytes,
                                             size_t threshold_bytes, WorkloadScale scale) {
  return CodecRegistry::instance().create_block_codec(
      scheme, codec_options_for(benchmark, mag_bytes, threshold_bytes, scale));
}

FullRunResult full_run(const std::string& benchmark, const std::string& scheme,
                       size_t mag_bytes, size_t threshold_bytes, WorkloadScale scale) {
  FullRunResult out;
  auto codec = make_codec(scheme, benchmark, mag_bytes, threshold_bytes, scale);
  const WorkloadRunResult wr = run_workload(benchmark, codec, scale);
  out.error_pct = wr.error_pct;
  out.metric = wr.metric;
  out.commit = wr.stats;

  const GpuSimConfig cfg = sim_config_for(scheme, mag_bytes);
  GpuSim sim(cfg);
  out.sim = sim.run(wr.trace);
  out.energy = compute_energy(out.sim, cfg);
  out.seconds = out.sim.exec_seconds(cfg);
  out.edp = out.energy.edp(out.seconds);
  return out;
}

// --- throughput measurements -------------------------------------------------

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {
  meta_["simd_compiled"] = simd::avx2_compiled() ? "avx2" : "none";
  meta_["cpu_avx2"] = simd::avx2_supported() ? "yes" : "no";
  meta_["simd_active"] = simd::active_level_name();
  meta_["force_scalar_env"] = simd::force_scalar_env() ? "1" : "0";
}

Measurement& BenchReport::add(Measurement m) {
  rows_.push_back(std::move(m));
  return rows_.back();
}

void BenchReport::set_meta(const std::string& key, std::string value) {
  meta_[key] = std::move(value);
}

TextTable BenchReport::table() const {
  TextTable t({"Scheme", "Kernel", "Path", "Blocks", "Reps", "Mblk/s", "GB/s", "p50 (ms)",
               "p99 (ms)", "Speedup"});
  for (const Measurement& m : rows_) {
    t.add_row({m.scheme, m.kernel, m.path, std::to_string(m.blocks), std::to_string(m.reps),
               TextTable::fmt(m.blocks_per_sec / 1e6, 3), TextTable::fmt(m.gbps, 2),
               TextTable::fmt(m.p50_ms, 3), TextTable::fmt(m.p99_ms, 3),
               m.speedup > 0.0 ? TextTable::fmt(m.speedup, 2) + "x" : "-"});
  }
  return t;
}

namespace {
// Minimal JSON string escaping; measurement names are plain identifiers but
// quoting/backslashes must not be able to break the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

std::string json_num(double v, int prec = 6) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}
}  // namespace

std::string BenchReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(name_) << "\",\n  \"block_bytes\": " << kBlockBytes
     << ",\n  \"meta\": {";
  bool first = true;
  for (const auto& [key, value] : meta_) {
    os << (first ? "" : ", ") << "\"" << json_escape(key) << "\": \"" << json_escape(value)
       << "\"";
    first = false;
  }
  os << "},\n  \"measurements\": [\n";
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Measurement& m = rows_[i];
    os << "    {\"scheme\": \"" << json_escape(m.scheme) << "\", \"kernel\": \""
       << json_escape(m.kernel) << "\", \"path\": \"" << json_escape(m.path)
       << "\", \"blocks\": " << m.blocks << ", \"reps\": " << m.reps
       << ", \"blocks_per_sec\": " << json_num(m.blocks_per_sec, 1)
       << ", \"gbps\": " << json_num(m.gbps, 4) << ", \"p50_ms\": " << json_num(m.p50_ms, 4)
       << ", \"p99_ms\": " << json_num(m.p99_ms, 4)
       << ", \"speedup\": " << json_num(m.speedup, 3) << "}"
       << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

bool BenchReport::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = to_json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "error: short write to %s\n", path.c_str());
  return ok;
}

Measurement measure_kernel(std::string scheme, std::string kernel, std::string path,
                           size_t blocks, size_t reps, const std::function<void()>& fn) {
  Measurement m;
  m.scheme = std::move(scheme);
  m.kernel = std::move(kernel);
  m.path = std::move(path);
  m.blocks = blocks;
  m.reps = reps;

  fn();  // warmup (code paths touched, branch predictors and caches primed)
  PercentileTracker times;
  double total = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    times.record(s);
    total += s;
  }
  if (total > 0.0) {
    m.blocks_per_sec = static_cast<double>(blocks) * static_cast<double>(reps) / total;
    m.gbps = m.blocks_per_sec * static_cast<double>(kBlockBytes) / 1e9;
  }
  m.p50_ms = times.percentile(50) * 1e3;
  m.p99_ms = times.percentile(99) * 1e3;
  return m;
}

size_t reps_for_target(double probe_seconds, double target_seconds, size_t min_reps,
                       size_t max_reps) {
  if (probe_seconds <= 0.0) return max_reps;
  const double reps = target_seconds / probe_seconds;
  return std::clamp(static_cast<size_t>(reps + 0.5), min_reps, max_reps);
}

std::string parse_json_flag(int& argc, char** argv, const std::string& default_path) {
  std::string out;
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      out = default_path;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      out = argv[i] + 7;
      if (out.empty()) out = default_path;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  return out;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Paper: Lal, Lucas, Juurlink. \"SLC: Memory Access Granularity\n");
  std::printf("       Aware Selective Lossy Compression for GPUs\", DATE 2019\n");
  std::printf("================================================================\n\n");
}

void print_table2(const GpuSimConfig& cfg) {
  std::printf("Table II: baseline simulator configuration\n");
  TextTable t({"Parameter", "Value", "Parameter", "Value"});
  t.add_row({"#SMs", std::to_string(cfg.num_sms), "L1 $/SM",
             std::to_string(cfg.l1_bytes / 1024) + " KB"});
  t.add_row({"SM freq", TextTable::fmt(cfg.sm_clock_ghz * 1000, 0) + " MHz", "L2 $",
             std::to_string(cfg.l2_bytes / 1024) + " KB"});
  t.add_row({"Memory type", "GDDR5", "#Memory controllers", std::to_string(cfg.num_mcs)});
  t.add_row({"Memory clock", TextTable::fmt(cfg.mem_clock_ghz * 1000, 0) + " MHz",
             "Memory bandwidth", TextTable::fmt(cfg.bandwidth_gbps(), 1) + " GB/s"});
  t.add_row({"Bus width", "32-bit", "Burst length", "8"});
  t.add_row({"MAG", std::to_string(cfg.mag_bytes) + " B", "Max outstanding/SM",
             std::to_string(cfg.max_outstanding_per_sm)});
  std::printf("%s\n", t.to_string().c_str());
}

void print_table3() {
  std::printf("Table III: benchmarks\n");
  TextTable t({"Name", "Description", "Metric", "#AR"});
  for (const std::string& name : workload_names()) {
    auto wl = make_workload(name);
    ApproxMemory mem;
    wl->init(mem);
    t.add_row({name, wl->description(), std::string(to_string(wl->metric())),
               std::to_string(mem.safe_region_count())});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace slc::bench

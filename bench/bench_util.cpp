#include "bench_util.h"

#include <cstdio>
#include <mutex>

namespace slc::bench {

namespace {
std::map<std::string, std::vector<uint8_t>> g_image_cache;
std::map<std::string, std::shared_ptr<const E2mcCompressor>> g_e2mc_cache;
std::mutex g_mutex;

std::string cache_key(const std::string& benchmark, WorkloadScale scale) {
  return benchmark + (scale == WorkloadScale::kDefault ? "/default" : "/tiny");
}
}  // namespace

const std::vector<uint8_t>& workload_image_cached(const std::string& benchmark,
                                                  WorkloadScale scale) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::string key = cache_key(benchmark, scale);
  auto it = g_image_cache.find(key);
  if (it == g_image_cache.end())
    it = g_image_cache.emplace(key, workload_memory_image(benchmark, scale)).first;
  return it->second;
}

std::shared_ptr<const E2mcCompressor> trained_e2mc(const std::string& benchmark,
                                                   WorkloadScale scale) {
  const std::vector<uint8_t>& image = workload_image_cached(benchmark, scale);
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::string key = cache_key(benchmark, scale);
  auto it = g_e2mc_cache.find(key);
  if (it != g_e2mc_cache.end()) return it->second;
  auto comp = E2mcCompressor::train(image, E2mcConfig{});
  g_e2mc_cache[key] = comp;
  return comp;
}

CodecOptions codec_options_for(const std::string& benchmark, size_t mag_bytes,
                               size_t threshold_bytes, WorkloadScale scale) {
  CodecOptions opts;
  opts.mag_bytes = mag_bytes;
  opts.threshold_bytes = threshold_bytes;
  opts.training_data = workload_image_cached(benchmark, scale);
  opts.trained_e2mc = trained_e2mc(benchmark, scale);
  return opts;
}

GpuSimConfig sim_config_for(const std::string& scheme, size_t mag_bytes) {
  const CodecInfo& info = CodecRegistry::instance().at(scheme);
  GpuSimConfig cfg;
  cfg.mag_bytes = mag_bytes;
  cfg.compress_latency = info.compress_latency;
  cfg.decompress_latency = info.decompress_latency;
  return cfg;
}

std::shared_ptr<const BlockCodec> make_codec(const std::string& scheme,
                                             const std::string& benchmark, size_t mag_bytes,
                                             size_t threshold_bytes, WorkloadScale scale) {
  return CodecRegistry::instance().create_block_codec(
      scheme, codec_options_for(benchmark, mag_bytes, threshold_bytes, scale));
}

FullRunResult full_run(const std::string& benchmark, const std::string& scheme,
                       size_t mag_bytes, size_t threshold_bytes, WorkloadScale scale) {
  FullRunResult out;
  auto codec = make_codec(scheme, benchmark, mag_bytes, threshold_bytes, scale);
  const WorkloadRunResult wr = run_workload(benchmark, codec, scale);
  out.error_pct = wr.error_pct;
  out.metric = wr.metric;
  out.commit = wr.stats;

  const GpuSimConfig cfg = sim_config_for(scheme, mag_bytes);
  GpuSim sim(cfg);
  out.sim = sim.run(wr.trace);
  out.energy = compute_energy(out.sim, cfg);
  out.seconds = out.sim.exec_seconds(cfg);
  out.edp = out.energy.edp(out.seconds);
  return out;
}

void print_banner(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Paper: Lal, Lucas, Juurlink. \"SLC: Memory Access Granularity\n");
  std::printf("       Aware Selective Lossy Compression for GPUs\", DATE 2019\n");
  std::printf("================================================================\n\n");
}

void print_table2(const GpuSimConfig& cfg) {
  std::printf("Table II: baseline simulator configuration\n");
  TextTable t({"Parameter", "Value", "Parameter", "Value"});
  t.add_row({"#SMs", std::to_string(cfg.num_sms), "L1 $/SM",
             std::to_string(cfg.l1_bytes / 1024) + " KB"});
  t.add_row({"SM freq", TextTable::fmt(cfg.sm_clock_ghz * 1000, 0) + " MHz", "L2 $",
             std::to_string(cfg.l2_bytes / 1024) + " KB"});
  t.add_row({"Memory type", "GDDR5", "#Memory controllers", std::to_string(cfg.num_mcs)});
  t.add_row({"Memory clock", TextTable::fmt(cfg.mem_clock_ghz * 1000, 0) + " MHz",
             "Memory bandwidth", TextTable::fmt(cfg.bandwidth_gbps(), 1) + " GB/s"});
  t.add_row({"Bus width", "32-bit", "Burst length", "8"});
  t.add_row({"MAG", std::to_string(cfg.mag_bytes) + " B", "Max outstanding/SM",
             std::to_string(cfg.max_outstanding_per_sm)});
  std::printf("%s\n", t.to_string().c_str());
}

void print_table3() {
  std::printf("Table III: benchmarks\n");
  TextTable t({"Name", "Description", "Metric", "#AR"});
  for (const std::string& name : workload_names()) {
    auto wl = make_workload(name);
    ApproxMemory mem;
    wl->init(mem);
    t.add_row({name, wl->description(), std::string(to_string(wl->metric())),
               std::to_string(mem.safe_region_count())});
  }
  std::printf("%s\n", t.to_string().c_str());
}

}  // namespace slc::bench

// Fig. 8: off-chip memory bandwidth (a) and energy / energy-delay product (b)
// of the TSLC variants, normalized to E2MC. Threshold 16 B, MAG 32 B.
//
// Paper results: ~14% GM bandwidth reduction for all three variants;
// 8.3% GM energy reduction and 17.5% GM EDP reduction.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

int main() {
  const size_t mag = 32;
  const size_t threshold = 16;

  print_banner("Fig. 8 — bandwidth, energy and EDP of SLC vs E2MC",
               "Figure 8a/8b (Sec. V-B), threshold 16 B, MAG 32 B");

  const auto names = workload_names();
  const std::vector<std::string> variants = CodecRegistry::instance().lossy_names();

  std::vector<std::string> bw_header = {"Bench", "E2MC"};
  std::vector<std::string> en_header = {"Bench"};
  for (const std::string& v : variants) {
    bw_header.push_back("BW-" + v);
    en_header.push_back("E-" + v);
    en_header.push_back("EDP-" + v);
  }
  TextTable bw(bw_header);
  TextTable en(en_header);
  std::vector<std::vector<double>> gm_bw(variants.size()), gm_e(variants.size()),
      gm_edp(variants.size());

  for (const std::string& name : names) {
    const FullRunResult base = full_run(name, "E2MC", mag, threshold);
    std::vector<std::string> bw_cells = {name, "1.000"};
    std::vector<std::string> en_cells = {name};
    for (size_t v = 0; v < variants.size(); ++v) {
      const FullRunResult r = full_run(name, variants[v], mag, threshold);
      // Off-chip traffic: DRAM bursts (data + metadata) — the reciprocal of
      // the effective compression ratio, Sec. V-B.
      const double bw_ratio = static_cast<double>(r.sim.dram_bursts_total()) /
                              static_cast<double>(base.sim.dram_bursts_total());
      const double e_ratio = r.energy.total_j() / base.energy.total_j();
      const double edp_ratio = r.edp / base.edp;
      gm_bw[v].push_back(bw_ratio);
      gm_e[v].push_back(e_ratio);
      gm_edp[v].push_back(edp_ratio);
      bw_cells.push_back(TextTable::fmt(bw_ratio, 3));
      en_cells.push_back(TextTable::fmt(e_ratio, 3));
      en_cells.push_back(TextTable::fmt(edp_ratio, 3));
    }
    bw.add_row(bw_cells);
    en.add_row(en_cells);
    std::printf("  [%s done]\n", name.c_str());
  }

  std::vector<std::string> bw_gm = {"GM", "1.000"};
  for (auto& v : gm_bw) bw_gm.push_back(TextTable::fmt(geometric_mean(v), 3));
  bw.add_row(bw_gm);
  std::vector<std::string> en_gm = {"GM"};
  for (size_t v = 0; v < variants.size(); ++v) {
    en_gm.push_back(TextTable::fmt(geometric_mean(gm_e[v]), 3));
    en_gm.push_back(TextTable::fmt(geometric_mean(gm_edp[v]), 3));
  }
  en.add_row(en_gm);

  std::printf("\n(a) Normalized off-chip bandwidth (paper GM ~0.86):\n\n%s\n",
              bw.to_string().c_str());
  std::printf("(b) Normalized energy and EDP (paper GM: E ~0.917, EDP ~0.825):\n\n%s\n",
              en.to_string().c_str());
  return 0;
}

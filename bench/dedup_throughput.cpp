// Dedup decision throughput: the fingerprint-memo payoff on repetitive
// streams. Three synthetic block streams (0% / 50% / 95% duplicate blocks,
// value-similar fresh content) run through the TSLC-OPT decision path
// (Compressor::analyze_batch — the Fig. 4 mode decision, size-only) twice:
// once uncached and once with a FingerprintCache attached. The cache is
// cleared before every timed pass, so hits come only from repetition inside
// the stream — exactly the duplicate fraction each row advertises — and the
// cached/uncached speedup isolates "memo hit vs full E2MC length probe".
//
// Usage: dedup_throughput [benchmark] [blocks] [--json[=path]]
//   defaults: SRAD2 16384; bare --json writes BENCH_dedup.json. The cached
//   95%-dup row's speedup is gated in CI against
//   bench/baselines/BENCH_dedup.json (the other rows' baseline speedups are
//   0 = report-only, since low-dup speedups hover near 1x and would gate
//   noise). Every cached pass is differentially checked against the uncached
//   decisions before anything is reported.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/fingerprint_cache.h"
#include "workloads/approx_memory.h"

using namespace slc;
using namespace slc::bench;

namespace {

/// Stream with `dup_fraction` of its blocks repeating an earlier block
/// verbatim; fresh blocks are quantized value-similar floats (the shape the
/// decision path actually sees from the workloads).
std::vector<Block> dup_stream(size_t blocks, double dup_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<Block> out;
  out.reserve(blocks);
  double walk = 10.0;
  for (size_t i = 0; i < blocks; ++i) {
    if (!out.empty() && rng.chance(dup_fraction)) {
      out.push_back(out[rng.next_below(out.size())]);
      continue;
    }
    Block b;
    for (size_t w = 0; w < kBlockBytes / 4; ++w) {
      walk += rng.uniform(-1.0, 1.0);
      const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
      uint32_t bits;
      __builtin_memcpy(&bits, &v, 4);
      b.set_word32(w, bits);
    }
    out.push_back(b);
  }
  return out;
}

std::vector<BlockView> views_of(const std::vector<Block>& blocks) {
  std::vector<BlockView> v;
  v.reserve(blocks.size());
  for (const Block& b : blocks) v.push_back(b.view());
  return v;
}

bool analyses_match(const std::vector<BlockAnalysis>& a, const std::vector<BlockAnalysis>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].bit_size != b[i].bit_size || a[i].lossy != b[i].lossy ||
        a[i].lossless_bits != b[i].lossless_bits ||
        a[i].truncated_symbols != b[i].truncated_symbols)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  const std::string json_path = parse_json_flag(argc, argv, "BENCH_dedup.json");
  const std::string benchmark = argc > 1 ? argv[1] : "SRAD2";
  const size_t n_blocks = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 16384;

  print_banner("Dedup decision throughput — fingerprint memo vs full probe",
               "decision-path memoization (no paper figure)");
  if (!FingerprintCache::runtime_enabled())
    std::printf("note: SLC_FINGERPRINT_CACHE disables the memo; cached rows degenerate to ~1x\n");

  CodecOptions opts = codec_options_for(benchmark, kDefaultMagBytes, 16);
  const auto uncached = CodecRegistry::instance().create("TSLC-OPT", opts);
  auto cache = std::make_shared<FingerprintCache>();
  opts.fingerprint_cache = cache;
  const auto cached = CodecRegistry::instance().create("TSLC-OPT", opts);

  std::printf("stream: %zu blocks (%.1f MB) per duplicate fraction, scheme TSLC-OPT,\n", n_blocks,
              static_cast<double>(n_blocks * kBlockBytes) / 1e6);
  std::printf("model trained on %s; cache cleared before every timed pass\n\n", benchmark.c_str());

  BenchReport report("dedup_throughput");
  constexpr size_t kReps = 20;
  bool all_identical = true;
  for (const int dup_pct : {0, 50, 95}) {
    const auto blocks =
        dup_stream(n_blocks, static_cast<double>(dup_pct) / 100.0, 1000 + static_cast<uint64_t>(dup_pct));
    const auto views = views_of(blocks);
    const std::string dup_tag = "dup=" + std::to_string(dup_pct) + "%";

    std::vector<BlockAnalysis> reference(views.size()), out(views.size());
    uncached->analyze_batch(views, reference.data());

    Measurement mu = measure_kernel("TSLC-OPT", "decide", dup_tag + "/uncached", n_blocks, kReps,
                                    [&] { uncached->analyze_batch(views, out.data()); });
    all_identical = all_identical && analyses_match(out, reference);
    Measurement mc = measure_kernel("TSLC-OPT", "decide", dup_tag + "/cached", n_blocks, kReps, [&] {
      cache->clear();
      cached->analyze_batch(views, out.data());
    });
    all_identical = all_identical && analyses_match(out, reference);

    mu.speedup = 0.0;  // the reference row
    mc.speedup = mu.blocks_per_sec > 0 ? mc.blocks_per_sec / mu.blocks_per_sec : 0.0;

    // Hit rate over one cold pass, tallied the same way the commit path
    // folds CacheCounters into CommitStats.
    cache->clear();
    cached->analyze_batch(views, out.data());
    CacheCounters tally;
    for (const BlockAnalysis& a : out)
      tally.record(a.cache_probed, a.cache_hit, a.cache_evicted, a.cache_collision);
    report.set_meta("hit_rate_" + dup_tag, std::to_string(tally.hit_rate()));

    report.add(std::move(mu));
    report.add(std::move(mc));
    std::printf("%-8s  hit rate %.3f  cached/uncached %.2fx\n", dup_tag.c_str(), tally.hit_rate(),
                report.measurements().back().speedup);
  }

  std::printf("\n%s\n", report.table().to_string().c_str());
  std::printf("Cached decisions were %s with the uncached oracle on every stream.\n",
              all_identical ? "identical" : "DIVERGENT");
  std::printf("Expect ~1x at dup=0%% (probe + insert overhead, no reuse) rising to >= 2x at\n");
  std::printf("dup=95%% — a hit skips the E2MC length probe and the Fig. 4 decision entirely.\n");
  if (!all_identical) {
    std::printf("FATAL: cached decisions diverged from the uncached oracle\n");
    return 1;
  }

  // End-to-end view: one ApproxMemory commit of the 95%-dup stream, hit rate
  // surfaced through CommitStats like the server tables report it.
  {
    const auto blocks = dup_stream(n_blocks, 0.95, 1095);
    ApproxMemory mem;
    mem.set_engine(nullptr);
    CodecOptions copts = codec_options_for(benchmark, kDefaultMagBytes, 16);
    copts.fingerprint_cache = std::make_shared<FingerprintCache>();
    mem.set_codec(CodecRegistry::instance().create_block_codec("TSLC-OPT", copts));
    const RegionId r = mem.alloc("dedup", n_blocks * kBlockBytes, /*safe=*/true, 16);
    auto dst = mem.span<uint8_t>(r);
    for (size_t i = 0; i < blocks.size(); ++i) {
      const auto src = blocks[i].bytes();
      std::copy(src.begin(), src.end(), dst.begin() + static_cast<ptrdiff_t>(i * kBlockBytes));
    }
    mem.commit(r);
    const CommitStats& cs = mem.stats();
    std::printf("\ncommit path (dup=95%%): %llu blocks, CommitStats hit rate %.3f\n",
                static_cast<unsigned long long>(cs.blocks), cs.cache.hit_rate());
  }

  if (!json_path.empty()) {
    if (!report.write_json(json_path)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

// Microbenchmark (google-benchmark): software throughput of every codec on
// benchmark data. Not a paper figure — the paper's codecs are hardware — but
// useful to size the simulator's own costs and catch regressions.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/fpc.h"
#include "core/slc_codec.h"

using namespace slc;
using namespace slc::bench;

namespace {

std::vector<Block> sample_blocks() {
  static const std::vector<Block> blocks = [] {
    auto image = workload_memory_image("SRAD2", WorkloadScale::kTiny);
    return to_blocks(image);
  }();
  return blocks;
}

template <typename C>
void compress_loop(benchmark::State& state, const C& comp) {
  const auto blocks = sample_blocks();
  size_t i = 0;
  for (auto _ : state) {
    const auto cb = comp.compress(blocks[i % blocks.size()].view());
    benchmark::DoNotOptimize(cb.bit_size);
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBlockBytes));
}

void BM_BdiCompress(benchmark::State& state) { compress_loop(state, BdiCompressor{}); }
void BM_FpcCompress(benchmark::State& state) { compress_loop(state, FpcCompressor{}); }
void BM_CpackCompress(benchmark::State& state) { compress_loop(state, CpackCompressor{}); }

void BM_E2mcCompress(benchmark::State& state) {
  auto e2mc = trained_e2mc("SRAD2", WorkloadScale::kTiny);
  compress_loop(state, *e2mc);
}

void BM_E2mcDecompress(benchmark::State& state) {
  auto e2mc = trained_e2mc("SRAD2", WorkloadScale::kTiny);
  const auto blocks = sample_blocks();
  std::vector<CompressedBlock> cbs;
  for (const auto& b : blocks) cbs.push_back(e2mc->compress(b.view()));
  size_t i = 0;
  for (auto _ : state) {
    const Block b = e2mc->decompress(cbs[i % cbs.size()], kBlockBytes);
    benchmark::DoNotOptimize(b.bytes().data());
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBlockBytes));
}

void BM_SlcCompress(benchmark::State& state) {
  auto e2mc = trained_e2mc("SRAD2", WorkloadScale::kTiny);
  SlcConfig cfg;
  cfg.variant = static_cast<SlcVariant>(state.range(0));
  const SlcCodec codec(e2mc, cfg);
  const auto blocks = sample_blocks();
  size_t i = 0;
  for (auto _ : state) {
    const auto cb = codec.compress(blocks[i % blocks.size()].view());
    benchmark::DoNotOptimize(cb.info.final_bits);
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBlockBytes));
}

void BM_SlcRoundtrip(benchmark::State& state) {
  auto e2mc = trained_e2mc("SRAD2", WorkloadScale::kTiny);
  SlcConfig cfg;
  cfg.variant = SlcVariant::kOpt;
  const SlcCodec codec(e2mc, cfg);
  const auto blocks = sample_blocks();
  size_t i = 0;
  for (auto _ : state) {
    const Block b = codec.roundtrip(blocks[i % blocks.size()].view());
    benchmark::DoNotOptimize(b.bytes().data());
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBlockBytes));
}

BENCHMARK(BM_BdiCompress);
BENCHMARK(BM_FpcCompress);
BENCHMARK(BM_CpackCompress);
BENCHMARK(BM_E2mcCompress);
BENCHMARK(BM_E2mcDecompress);
BENCHMARK(BM_SlcCompress)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_SlcRoundtrip);

}  // namespace

BENCHMARK_MAIN();

// Software codec throughput: batched kernels vs the per-block scalar loop,
// per scheme, on benchmark data. Not a paper figure — the paper's codecs are
// hardware — but this is the repo's perf trajectory for the batch kernels:
// CI runs it with --json and diffs the result against a committed baseline
// (tools/bench_compare.py), so a kernel regression fails the build.
//
// For every scheme three paths are timed: "scalar" is the per-block
// virtual-dispatch loop (exactly what Compressor's default batch
// implementation does), "batch" is the scheme's
// analyze_batch/compress_batch kernel pinned to the scalar sub-kernels
// (simd::force_scalar), and "batch+simd" is the same kernel with the
// runtime-dispatched SIMD variants enabled (identical to "batch" on hosts
// without AVX2 — the JSON "meta" object records which variant actually
// ran). All batch paths must agree with the scalar loop byte for byte —
// this driver exits non-zero if they diverge, independent of the
// equivalence unit test.
//
// Usage: codec_throughput [benchmark] [--blocks N] [--json[=path]]
//   defaults: SRAD2, 4096 blocks, JSON off (bare --json writes
//   BENCH_codec.json). The stream tiles the benchmark's memory image.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compress/simd_dispatch.h"

using namespace slc;
using namespace slc::bench;

namespace {

constexpr double kTargetSeconds = 0.15;  // per measured configuration

bool analyses_equal(const BlockAnalysis& a, const BlockAnalysis& b) {
  return a.bit_size == b.bit_size && a.is_compressed == b.is_compressed && a.lossy == b.lossy &&
         a.lossless_bits == b.lossless_bits && a.truncated_symbols == b.truncated_symbols;
}

bool payloads_equal(const CompressedBlock& a, const CompressedBlock& b) {
  return a.bit_size == b.bit_size && a.is_compressed == b.is_compressed && a.payload == b.payload;
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) try {
  const std::string json_path = parse_json_flag(argc, argv, "BENCH_codec.json");
  std::string benchmark = "SRAD2";
  size_t n_blocks = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--blocks") == 0) {
      const long long v = i + 1 < argc ? std::atoll(argv[++i]) : 0;
      if (v <= 0) {
        std::fprintf(stderr, "usage: codec_throughput [benchmark] [--blocks N] [--json[=path]]\n");
        return 2;
      }
      n_blocks = static_cast<size_t>(v);
    } else {
      benchmark = argv[i];
    }
  }

  print_banner("Codec throughput — batched kernels vs the scalar per-block loop",
               "batch-kernel perf trajectory (no paper figure)");

  // Tile the benchmark image to the requested stream length so every scheme
  // sees the same realistic data mix regardless of the image's native size.
  const std::vector<Block> image_blocks = to_blocks(workload_image_cached(benchmark));
  std::vector<Block> blocks;
  blocks.reserve(n_blocks);
  for (size_t i = 0; i < n_blocks; ++i) blocks.push_back(image_blocks[i % image_blocks.size()]);
  const std::vector<BlockView> views = to_views(blocks);

  std::printf("stream: %zu blocks (%.1f MB) tiled from %s, MAG %zu B\n\n", blocks.size(),
              static_cast<double>(blocks.size() * kBlockBytes) / 1e6, benchmark.c_str(),
              kDefaultMagBytes);

  // The four schemes with vectorized kernels, plus TSLC-OPT (the full SLC
  // stack: batched decision + payload scatter; its SIMD leverage comes from
  // the E2MC length gathers underneath).
  const std::vector<std::string> schemes = {"BDI", "FPC", "C-PACK", "E2MC", "TSLC-OPT"};
  BenchReport report("codec_throughput");
  bool all_identical = true;

  for (const std::string& scheme : schemes) {
    const auto comp = CodecRegistry::instance().create(
        scheme, codec_options_for(benchmark, kDefaultMagBytes, 16));

    // --- analyze -------------------------------------------------------------
    std::vector<BlockAnalysis> scalar_a(blocks.size());
    std::vector<BlockAnalysis> batch_a(blocks.size());
    std::vector<BlockAnalysis> simd_a(blocks.size());
    const auto scalar_analyze = [&] {
      for (size_t i = 0; i < views.size(); ++i) scalar_a[i] = comp->analyze(views[i]);
    };
    const auto batch_analyze = [&] { comp->analyze_batch(views, batch_a.data()); };
    const auto simd_analyze = [&] { comp->analyze_batch(views, simd_a.data()); };

    size_t reps = reps_for_target(seconds_of(scalar_analyze), kTargetSeconds);
    Measurement sa = measure_kernel(scheme, "analyze", "scalar", blocks.size(), reps, scalar_analyze);
    simd::force_scalar(true);
    Measurement ba = measure_kernel(scheme, "analyze", "batch", blocks.size(), reps, batch_analyze);
    simd::force_scalar(false);
    Measurement va =
        measure_kernel(scheme, "analyze", "batch+simd", blocks.size(), reps, simd_analyze);
    ba.speedup = sa.blocks_per_sec > 0 ? ba.blocks_per_sec / sa.blocks_per_sec : 0.0;
    va.speedup = sa.blocks_per_sec > 0 ? va.blocks_per_sec / sa.blocks_per_sec : 0.0;
    report.add(std::move(sa));
    report.add(std::move(ba));
    report.add(std::move(va));

    bool identical = true;
    for (size_t i = 0; i < blocks.size() && identical; ++i)
      identical = analyses_equal(scalar_a[i], batch_a[i]) && analyses_equal(scalar_a[i], simd_a[i]);
    if (!identical) {
      std::printf("FATAL: %s analyze_batch diverged from the scalar loop\n", scheme.c_str());
      all_identical = false;
    }

    // --- compress ------------------------------------------------------------
    std::vector<CompressedBlock> scalar_c(blocks.size());
    std::vector<CompressedBlock> batch_c(blocks.size());
    std::vector<CompressedBlock> simd_c(blocks.size());
    const auto scalar_compress = [&] {
      for (size_t i = 0; i < views.size(); ++i) scalar_c[i] = comp->compress(views[i]);
    };
    const auto batch_compress = [&] { comp->compress_batch(views, batch_c.data()); };
    const auto simd_compress = [&] { comp->compress_batch(views, simd_c.data()); };

    reps = reps_for_target(seconds_of(scalar_compress), kTargetSeconds);
    Measurement sc =
        measure_kernel(scheme, "compress", "scalar", blocks.size(), reps, scalar_compress);
    simd::force_scalar(true);
    Measurement bc =
        measure_kernel(scheme, "compress", "batch", blocks.size(), reps, batch_compress);
    simd::force_scalar(false);
    Measurement vc =
        measure_kernel(scheme, "compress", "batch+simd", blocks.size(), reps, simd_compress);
    bc.speedup = sc.blocks_per_sec > 0 ? bc.blocks_per_sec / sc.blocks_per_sec : 0.0;
    vc.speedup = sc.blocks_per_sec > 0 ? vc.blocks_per_sec / sc.blocks_per_sec : 0.0;
    report.add(std::move(sc));
    report.add(std::move(bc));
    report.add(std::move(vc));

    identical = true;
    for (size_t i = 0; i < blocks.size() && identical; ++i)
      identical = payloads_equal(scalar_c[i], batch_c[i]) && payloads_equal(scalar_c[i], simd_c[i]);
    if (!identical) {
      std::printf("FATAL: %s compress_batch diverged from the scalar loop\n", scheme.c_str());
      all_identical = false;
    }

    // --- decompress ----------------------------------------------------------
    // No batch decompress kernel exists (decompression is per-request on the
    // read path), but its throughput stays in the trajectory so a regression
    // is visible in BENCH_codec.json.
    const auto decompress_loop = [&] {
      for (size_t i = 0; i < blocks.size(); ++i)
        comp->decompress(scalar_c[i], blocks[i].size());
    };
    reps = reps_for_target(seconds_of(decompress_loop), kTargetSeconds);
    report.add(
        measure_kernel(scheme, "decompress", "scalar", blocks.size(), reps, decompress_loop));
  }

  std::printf("%s\n", report.table().to_string().c_str());
  std::printf("Speedups are vs the per-block scalar loop of the same scheme, single-\n");
  std::printf("threaded on this host. \"batch\" pins the batch kernel to its scalar\n");
  std::printf("sub-kernels; \"batch+simd\" lets runtime dispatch pick (this run: %s).\n",
              simd::active_level_name());
  std::printf("Both batch paths are verified byte-identical to the scalar loop before\n");
  std::printf("the table is printed.\n");

  if (!json_path.empty()) {
    if (!report.write_json(json_path)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

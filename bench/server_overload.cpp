// CodecServer under open-loop load: tail latency vs offered load, and
// goodput under overload with admission control shedding.
//
// An open-loop generator submits kCompress requests with Poisson
// (exponential) inter-arrival times at a sweep of offered loads — fractions
// of the host's calibrated direct compress_batch capacity — against a
// kReject stream with a per-request deadline. Unlike the closed-loop
// server_throughput bench, arrivals here do not wait for completions, so
// queueing delay and the admission decision are actually exercised: below
// saturation the server must serve (almost) everything it is offered; past
// saturation goodput must plateau near capacity while the rejection counter
// absorbs the excess instead of latency growing without bound.
//
// Rows (per offered-load point): goodput in blocks/s, latency p50/p99 from
// the server's enqueue-to-completion percentiles, and for the sub-saturation
// points `speedup` = goodput / offered rate (the served fraction, ~1.0 when
// the server keeps up). The overload points' served fraction is
// machine-dependent by design, so their speedup is zeroed and
// tools/bench_compare.py skips them; the sub-saturation rows are gated in CI
// against bench/baselines/BENCH_server.json.
//
// The run also cross-checks the serving contract: payloads coming back
// through the server must be byte-identical to the direct codec path. Any
// mismatch exits non-zero, so CI smoke runs double as a correctness gate.
//
// Usage: server_overload [benchmark] [scheme] [--json[=path]]
//   defaults: SRAD2 TSLC-OPT
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "server/codec_server.h"

using namespace slc;
using namespace slc::bench;

namespace {

constexpr size_t kBlocksPerRequest = 32;
constexpr size_t kRequestsPerPoint = 400;
constexpr auto kDeadline = std::chrono::milliseconds(5);
constexpr double kOfferedFractions[] = {0.25, 0.5, 1.0, 2.0};
// Points at or past this fraction are overload by construction: their served
// fraction measures the shedding policy, not a regression, so they are
// reported but not gated.
constexpr double kSaturationFraction = 1.0;

std::vector<Block> pool_blocks(const std::string& benchmark, size_t blocks) {
  const std::vector<uint8_t>& image = workload_image_cached(benchmark);
  std::vector<uint8_t> bytes(blocks * kBlockBytes);
  for (size_t i = 0; i < bytes.size(); ++i) bytes[i] = image[i % image.size()];
  return to_blocks(bytes);
}

/// Direct-path capacity in blocks/s: the same compress_batch kernel the
/// server's shards run, timed without any serving machinery around it.
double calibrate_capacity(const Compressor& comp, const std::vector<Block>& pool) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto payloads = comp.compress_batch(pool);
    const double s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (payloads.size() != pool.size()) std::abort();
    best = std::max(best, static_cast<double>(pool.size()) / s);
  }
  return best;
}

/// Byte-identity of the served payload path vs the direct codec path; the
/// contract the round-trip tests pin, re-checked here on the bench host.
bool payloads_match_direct(const Compressor& comp, const CodecOptions& opts,
                           const std::string& scheme, const std::vector<Block>& pool) {
  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  cfg.batch_blocks = 64;
  CodecServer server(cfg);
  StreamConfig sc;
  sc.name = "identity";
  sc.codec = scheme;
  sc.options = opts;
  const StreamId s = server.open_stream(sc);
  auto ticket = server.submit(s, Request{.kind = RequestKind::kCompress, .blocks = pool});
  const Response res = ticket.wait();
  if (!res.ok() || res.payloads.size() != pool.size()) return false;
  const std::vector<CompressedBlock> want = comp.compress_batch(pool);
  for (size_t i = 0; i < want.size(); ++i) {
    if (res.payloads[i].payload != want[i].payload ||
        res.payloads[i].bit_size != want[i].bit_size ||
        res.payloads[i].is_compressed != want[i].is_compressed)
      return false;
  }
  return true;
}

struct PointResult {
  double offered_blocks_per_sec = 0.0;
  double goodput_blocks_per_sec = 0.0;
  uint64_t served_blocks = 0;
  uint64_t rejected = 0;
  uint64_t deadline_misses = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

PointResult run_point(double fraction, double capacity, const std::string& scheme,
                      const CodecOptions& opts, const std::vector<Block>& pool, uint64_t seed) {
  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  cfg.batch_blocks = 64;
  cfg.max_inflight_blocks = 256;  // the admission budget overload pushes against
  CodecServer server(cfg);
  StreamConfig sc;
  sc.name = "serve";
  sc.codec = scheme;
  sc.options = opts;
  sc.admission = AdmissionPolicy::kReject;
  const StreamId s = server.open_stream(sc);

  PointResult out;
  out.offered_blocks_per_sec = fraction * capacity;
  const double req_rate = out.offered_blocks_per_sec / kBlocksPerRequest;

  Rng rng(seed);
  std::vector<ServerTicket> tickets;
  tickets.reserve(kRequestsPerPoint);
  const auto t0 = std::chrono::steady_clock::now();
  auto arrival = t0;
  for (size_t i = 0; i < kRequestsPerPoint; ++i) {
    // Exponential inter-arrival: a Poisson process at req_rate.
    const double gap_s = -std::log(1.0 - rng.uniform()) / req_rate;
    arrival += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
    // Open loop: hold to the schedule regardless of server progress. Sleep
    // the bulk, yield the rest — inter-arrivals run down to a few µs.
    while (std::chrono::steady_clock::now() < arrival) {
      const auto left = arrival - std::chrono::steady_clock::now();
      if (left > std::chrono::milliseconds(1))
        std::this_thread::sleep_for(left - std::chrono::microseconds(500));
      else
        std::this_thread::yield();
    }
    const size_t off = (i * kBlocksPerRequest) % (pool.size() - kBlocksPerRequest + 1);
    tickets.push_back(server.submit(
        s, Request{.kind = RequestKind::kCompress,
                   .blocks = std::span<const Block>(pool).subspan(off, kBlocksPerRequest),
                   .deadline = kDeadline}));
  }
  for (auto& t : tickets) {
    const Response res = t.wait();
    if (res.ok()) out.served_blocks += res.payloads.size();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  server.drain();

  const StreamStats st = server.stream_stats(s);
  out.goodput_blocks_per_sec = static_cast<double>(out.served_blocks) / wall;
  out.rejected = st.rejected;
  out.deadline_misses = st.deadline_misses;
  out.p50_s = st.latency.percentile(50);
  out.p99_s = st.latency.percentile(99);
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const std::string json_path = parse_json_flag(argc, argv, "BENCH_server.json");
  const std::string benchmark = argc > 1 ? argv[1] : "SRAD2";
  const std::string scheme = argc > 2 ? argv[2] : "TSLC-OPT";

  print_banner("CodecServer overload — open-loop Poisson load, admission control",
               "server layer validation (no paper figure)");

  const CodecOptions opts = codec_options_for(benchmark, kDefaultMagBytes, 16);
  const auto comp = CodecRegistry::instance().create(scheme, opts);
  const std::vector<Block> pool = pool_blocks(benchmark, 2048);

  if (!payloads_match_direct(*comp, opts, scheme, pool)) {
    std::printf("FATAL: served payloads differ from the direct codec path\n");
    return 1;
  }
  std::printf("served payloads byte-identical to direct %s compress_batch: yes\n", scheme.c_str());

  const double capacity = calibrate_capacity(*comp, pool);
  std::printf("calibrated direct-path capacity: %.3f Mblk/s; %zu requests x %zu blocks per "
              "point, %lld ms deadline, kReject admission\n\n",
              capacity / 1e6, kRequestsPerPoint, kBlocksPerRequest,
              static_cast<long long>(kDeadline.count()));

  BenchReport report("server_overload");
  report.set_meta("benchmark", benchmark);
  report.set_meta("capacity_blocks_per_sec", TextTable::fmt(capacity, 1));

  TextTable t({"Offered", "Goodput Mblk/s", "Served frac", "Rejected", "Misses", "p50 (us)",
               "p99 (us)"});
  uint64_t seed = 1;
  for (const double fraction : kOfferedFractions) {
    const PointResult pr = run_point(fraction, capacity, scheme, opts, pool, seed++);
    const double served_fraction = pr.goodput_blocks_per_sec / pr.offered_blocks_per_sec;
    const std::string label = TextTable::fmt(fraction, 2) + "x";
    t.add_row({label, TextTable::fmt(pr.goodput_blocks_per_sec / 1e6, 3),
               TextTable::fmt(served_fraction, 3), std::to_string(pr.rejected),
               std::to_string(pr.deadline_misses), TextTable::fmt(pr.p50_s * 1e6, 0),
               TextTable::fmt(pr.p99_s * 1e6, 0)});

    Measurement m;
    m.scheme = scheme;
    m.kernel = "serve";
    m.path = "offered=" + label;
    m.blocks = pr.served_blocks;
    m.reps = kRequestsPerPoint;
    m.blocks_per_sec = pr.goodput_blocks_per_sec;
    m.gbps = pr.goodput_blocks_per_sec * kBlockBytes / 1e9;
    m.p50_ms = pr.p50_s * 1e3;
    m.p99_ms = pr.p99_s * 1e3;
    m.speedup = fraction < kSaturationFraction ? served_fraction : 0.0;
    report.add(m);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("sub-saturation rows carry speedup = served fraction (gated in CI);\n");
  std::printf("the 1x/2x rows' served fraction is the shedding policy at work, not gated.\n");

  if (!json_path.empty() && !report.write_json(json_path)) return 1;
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "server_overload: %s\n", e.what());
  return 1;
}

// Fig. 2: heat map of the distribution of E2MC-compressed blocks at MAG —
// percentage of blocks landing N bytes above a multiple of the 32 B MAG.
//
// x-axis 0 B = exact multiple (sizes < 32 B also fold into 0); 32 B column =
// uncompressed blocks. The mass between 1 and ~16 B above a multiple is the
// opportunity SLC harvests.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Fig. 2 — distribution of compressed blocks at MAG",
               "Figure 2 (Sec. II-B), E2MC, MAG 32 B, 128 B blocks");

  const size_t mag = kDefaultMagBytes;
  const auto names = workload_names();

  // Columns: 0..31 bytes above a multiple of MAG, plus "32" = uncompressed.
  std::vector<std::string> header = {"Bench"};
  for (size_t b = 0; b <= mag; b += 2) header.push_back(std::to_string(b));
  TextTable table(header);

  Histogram samples;  // the paper's right axis: how often each bucket occurs

  CodecEngine engine;
  for (const std::string& name : names) {
    const auto e2mc =
        CodecRegistry::instance().create("E2MC", codec_options_for(name, mag, 16));
    const std::vector<uint8_t>& image = workload_image_cached(name);
    const auto res = engine.analyze_bytes(*e2mc, image, mag);

    Histogram h;
    for (const BlockAnalysis& a : res.blocks) {
      const size_t bytes = (a.bit_size + 7) / 8;
      size_t bucket;
      if (bytes >= kBlockBytes) {
        bucket = mag;  // stored uncompressed
      } else if (bytes <= mag) {
        bucket = 0;  // below one burst folds into the origin (Sec. II-B)
      } else {
        bucket = bytes_above_mag(bytes, mag);
      }
      h.add(static_cast<int64_t>(bucket));
    }

    std::vector<std::string> cells = {name};
    for (size_t b = 0; b <= mag; b += 2) {
      // Pair odd buckets with the preceding even one for a compact table.
      const double pct =
          (h.fraction(static_cast<int64_t>(b)) +
           (b + 1 < mag ? h.fraction(static_cast<int64_t>(b + 1)) : 0.0)) * 100.0;
      cells.push_back(TextTable::fmt(pct, 1));
      samples.add(static_cast<int64_t>(pct / 5.0));  // 5%-quantized sample counts
    }
    table.add_row(cells);
  }

  std::printf("%% of blocks vs bytes above a multiple of MAG (columns pair 2 B):\n\n%s\n",
              table.to_string().c_str());
  std::printf("Interpretation: column 0 = already a burst multiple; small nonzero\n");
  std::printf("columns (<= threshold 16) are candidates for SLC truncation; column 32\n");
  std::printf("is the uncompressed share. The paper's heat map shows significant mass\n");
  std::printf("in the 1..16 B range — verify the same here.\n");
  return 0;
}

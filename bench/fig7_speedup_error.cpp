// Fig. 7: speedup (a) and application error (b) of TSLC-SIMP / TSLC-PRED /
// TSLC-OPT normalized to the E2MC lossless baseline. Lossy threshold 16 B,
// MAG 32 B.
//
// Paper results: GM speedup 9% / 9.8% / 9.7%; max ~17% (DCT), min ~5%
// (FWT, BP). Error: SIMP highest, PRED/OPT < 3% except JM 7.3% and BS 4.4%;
// GM of per-benchmark MRE ~0.99% for TSLC-OPT.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

int main() {
  const size_t mag = 32;
  const size_t threshold = 16;

  print_banner("Fig. 7 — speedup and error of SLC vs E2MC",
               "Figure 7a/7b (Sec. V-A), threshold 16 B, MAG 32 B");
  print_table2(sim_config_for("E2MC", mag));
  print_table3();

  const auto names = workload_names();
  // Every lossy scheme in the registry is a column; registering a new SLC
  // variant adds it to this sweep with no code change.
  const std::vector<std::string> variants = CodecRegistry::instance().lossy_names();

  std::vector<std::string> sp_header = {"Bench", "E2MC"};
  std::vector<std::string> er_header = {"Bench", "Metric"};
  sp_header.insert(sp_header.end(), variants.begin(), variants.end());
  er_header.insert(er_header.end(), variants.begin(), variants.end());
  TextTable sp(sp_header);
  TextTable er(er_header);
  std::vector<std::vector<double>> gm_speedup(variants.size()), gm_error(variants.size());

  for (const std::string& name : names) {
    const FullRunResult base = full_run(name, "E2MC", mag, threshold);
    std::vector<std::string> sp_cells = {name, "1.000"};
    std::vector<std::string> er_cells = {name, to_string(base.metric)};
    for (size_t v = 0; v < variants.size(); ++v) {
      const FullRunResult r = full_run(name, variants[v], mag, threshold);
      const double speedup =
          static_cast<double>(base.sim.cycles) / static_cast<double>(r.sim.cycles);
      gm_speedup[v].push_back(speedup);
      gm_error[v].push_back(std::max(r.error_pct, 1e-5));
      sp_cells.push_back(TextTable::fmt(speedup, 3));
      er_cells.push_back(TextTable::fmt(r.error_pct, 4) + "%");
    }
    sp.add_row(sp_cells);
    er.add_row(er_cells);
    std::printf("  [%s done]\n", name.c_str());
  }

  std::vector<std::string> gm_row = {"GM", "1.000"};
  for (auto& v : gm_speedup) gm_row.push_back(TextTable::fmt(geometric_mean(v), 3));
  sp.add_row(gm_row);

  std::printf("\n(a) Speedup normalized to E2MC (paper GM: 1.090 / 1.098 / 1.097):\n\n%s\n",
              sp.to_string().c_str());
  std::printf("(b) Application error (paper: <3%% for OPT except JM 7.3%%, BS 4.4%%):\n\n%s\n",
              er.to_string().c_str());
  std::printf("GM of per-benchmark error (paper: ~0.99%% for TSLC-OPT): "
              "SIMP %.3f%%  PRED %.3f%%  OPT %.3f%%\n",
              geometric_mean(gm_error[0]), geometric_mean(gm_error[1]),
              geometric_mean(gm_error[2]));
  return 0;
}

// GpuSim trace-replay throughput: materialized vs streaming, 1 vs N sim
// workers (no paper figure — it validates the streaming pipeline the
// workload harness feeds and the sharded memory-controller replay).
//
// Four wall-time rows replay the same synthetic multi-channel trace:
//   materialized          — run(vector), 1 worker: the baseline path
//   streaming             — bounded TraceStream + producer thread, 1 worker
//   materialized-sharded  — run(vector), min(hw threads, num_mcs) workers
//   streaming-sharded     — bounded stream + sharded replay (the pipeline)
// plus one footprint row whose `speedup` is the peak-trace-footprint
// reduction: materialized access high-water (the whole trace, resident at
// once) over the streaming high-water (bounded by stream_chunk_budget
// kernels). That ratio is what CI gates against
// bench/baselines/BENCH_sim.json — it is a property of the backpressure
// contract and transfers across hosts, unlike the sharded wall-time
// speedup, which follows the engine_throughput precedent: reported in the
// artifact with a zeroed baseline because it tracks the physical core
// count (a 1-core container shows <= 1.0x; expect >= 1.5x once the host
// has cores for the channel shards, e.g. 4+ cores at num_mcs = 12).
//
// The binary self-checks the determinism contract before reporting: all
// four replays must agree on every timing/traffic counter
// (SimStats::same_counters) and every bounded streaming run must keep its
// chunk high-water mark within the budget — a violation exits non-zero, so
// the perf job fails even if the gate rows look healthy.
//
// Usage: sim_throughput [kernels] [blocks_per_kernel] [--json[=path]]
//   defaults: 64 kernels x 4000 blocks, bare --json writes BENCH_sim.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/trace_stream.h"

using namespace slc;
using namespace slc::bench;

namespace {

// Heavy, channel-spanning DRAM traffic: low compute per access and full-line
// bursts keep the replay memory-bound, so the per-channel MC work — the part
// the shards parallelize — dominates each simulated cycle.
std::vector<KernelTrace> synthetic_trace(size_t kernels, size_t blocks_per_kernel) {
  std::vector<KernelTrace> trace;
  trace.reserve(kernels);
  for (size_t k = 0; k < kernels; ++k) {
    KernelTrace kt;
    kt.name = "synth" + std::to_string(k);
    kt.compute_per_access = 0.25;
    kt.accesses_per_cta = 8;
    kt.accesses.reserve(blocks_per_kernel);
    for (size_t i = 0; i < blocks_per_kernel; ++i) {
      TraceAccess a;
      a.addr = (0x1000'0000ull + k * 0x100'0000ull) + i * kBlockBytes;
      a.bursts = 4;
      a.write = (i % 4 == 3);
      kt.accesses.push_back(a);
    }
    trace.push_back(std::move(kt));
  }
  return trace;
}

GpuSimConfig sim_config(unsigned workers) {
  GpuSimConfig cfg;
  cfg.num_mcs = 12;  // multi-channel: one shard per channel has work to own
  cfg.decompress_latency = 20;
  cfg.sim_workers = workers;
  return cfg;
}

SimStats replay_materialized(const std::vector<KernelTrace>& trace, unsigned workers) {
  GpuSim sim(sim_config(workers));  // fresh sim: identical cold caches per run
  return sim.run(trace);
}

SimStats replay_streaming(const std::vector<KernelTrace>& trace, unsigned workers,
                          size_t budget) {
  GpuSim sim(sim_config(workers));
  TraceStream stream(budget);
  std::thread producer([&] {
    // Aliased borrows, same as the materialized adapter: the bench times the
    // pipeline, not kernel copies.
    for (const KernelTrace& k : trace)
      if (!stream.push(std::shared_ptr<const KernelTrace>(std::shared_ptr<const void>(), &k)))
        return;
    stream.close();
  });
  const SimStats out = sim.run(stream);
  producer.join();
  return out;
}

}  // namespace

int main(int argc, char** argv) try {
  const std::string json_path = parse_json_flag(argc, argv, "BENCH_sim.json");
  const size_t kernels = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 64;
  const size_t blocks = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 4000;

  print_banner("Sim throughput — streaming trace replay, sharded memory controllers",
               "streaming pipeline validation (no paper figure)");

  const GpuSimConfig cfg = sim_config(1);
  const size_t budget = cfg.stream_chunk_budget;
  const unsigned sharded_workers = std::max(
      1u, std::min<unsigned>(std::thread::hardware_concurrency(), cfg.num_mcs));
  const auto trace = synthetic_trace(kernels, blocks);
  const size_t accesses = kernels * blocks;
  std::printf(
      "trace: %zu kernels x %zu blocks (%zu accesses), %u DRAM channels,\n"
      "chunk budget %zu, sharded rows use %u worker(s) (host concurrency %u)\n\n",
      kernels, blocks, accesses, cfg.num_mcs, budget, sharded_workers,
      std::thread::hardware_concurrency());

  // Determinism + footprint self-checks (fresh sims, cold caches everywhere).
  const SimStats want = replay_materialized(trace, 1);
  struct Check {
    const char* what;
    SimStats got;
    bool bounded;  ///< consumed a budget-bounded stream
  };
  const Check checks[] = {
      {"streaming workers=1", replay_streaming(trace, 1, budget), true},
      {"materialized-sharded", replay_materialized(trace, sharded_workers), false},
      {"streaming-sharded", replay_streaming(trace, sharded_workers, budget), true},
  };
  for (const Check& c : checks) {
    if (!want.same_counters(c.got)) {
      std::printf("FATAL: %s diverged from the materialized 1-worker reference\n", c.what);
      return 1;
    }
    if (c.bounded && c.got.stream_chunk_hwm > budget) {
      std::printf("FATAL: %s queued %llu chunks against a budget of %zu\n", c.what,
                  static_cast<unsigned long long>(c.got.stream_chunk_hwm), budget);
      return 1;
    }
  }
  std::printf("All replay modes reproduced the reference counters; bounded streams\n");
  std::printf("never exceeded the %zu-chunk budget.\n\n", budget);

  BenchReport report("sim_throughput");
  constexpr size_t kReps = 3;
  Measurement base = measure_kernel("SIM", "replay", "materialized", accesses, kReps,
                                    [&] { replay_materialized(trace, 1); });
  Measurement stream1 = measure_kernel("SIM", "replay", "streaming", accesses, kReps,
                                       [&] { replay_streaming(trace, 1, budget); });
  Measurement mat_n =
      measure_kernel("SIM", "replay", "materialized-sharded", accesses, kReps,
                     [&] { replay_materialized(trace, sharded_workers); });
  Measurement stream_n =
      measure_kernel("SIM", "replay", "streaming-sharded", accesses, kReps,
                     [&] { replay_streaming(trace, sharded_workers, budget); });
  // Wall-time speedups vs the materialized 1-worker baseline. Machine-
  // dependent (they track core count), so the committed baseline zeroes
  // them and CI gates only the footprint row below.
  stream1.speedup = base.p50_ms / stream1.p50_ms;
  mat_n.speedup = base.p50_ms / mat_n.p50_ms;
  stream_n.speedup = base.p50_ms / stream_n.p50_ms;
  report.add(base);
  report.add(stream1);
  report.add(mat_n);
  report.add(stream_n);

  // The gated row: peak trace-buffer footprint, materialized over streaming.
  // run(vector) reports the whole trace as its high-water mark; the bounded
  // stream holds at most `budget` kernels, so the reduction is >= kernels /
  // budget regardless of host speed or scheduling.
  const SimStats streamed = checks[0].got;
  Measurement footprint;
  footprint.scheme = "SIM";
  footprint.kernel = "footprint";
  footprint.path = "streaming";
  footprint.blocks = static_cast<size_t>(streamed.stream_access_hwm);
  footprint.reps = 1;
  footprint.speedup = streamed.stream_access_hwm > 0
                          ? static_cast<double>(want.stream_access_hwm) /
                                static_cast<double>(streamed.stream_access_hwm)
                          : 0.0;
  report.add(footprint);

  report.set_meta("kernels", std::to_string(kernels));
  report.set_meta("blocks_per_kernel", std::to_string(blocks));
  report.set_meta("num_mcs", std::to_string(cfg.num_mcs));
  report.set_meta("sharded_workers", std::to_string(sharded_workers));
  report.set_meta("chunk_budget", std::to_string(budget));
  report.set_meta("materialized_access_hwm", std::to_string(want.stream_access_hwm));
  report.set_meta("streaming_access_hwm", std::to_string(streamed.stream_access_hwm));
  report.set_meta("streaming_chunk_hwm", std::to_string(streamed.stream_chunk_hwm));

  std::printf("%s\n", report.table().to_string().c_str());
  std::printf("footprint row: `blocks` is the streaming peak access footprint and\n");
  std::printf("`speedup` the reduction vs materializing the whole trace (>= %zu by\n",
              kernels / std::max<size_t>(budget, 1));
  std::printf("construction at this kernel count / budget) — the row CI gates.\n");
  std::printf("Wall-time sharded rows track the host core count; expect >= 1.5x\n");
  std::printf("materialized->streaming-sharded once the host has cores for the\n");
  std::printf("channel shards (a 1-core container shows <= 1.0x).\n");

  if (!json_path.empty() && !report.write_json(json_path)) return 1;
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "sim_throughput: %s\n", e.what());
  return 1;
}

// Fig. 9: TSLC-OPT speedup (a) and error (b) across MAG 16 B / 32 B / 64 B,
// threshold = MAG/2 (Sec. V-C), each normalized to E2MC at the same MAG.
//
// Paper results: GM speedup 5% / 9.7% / 9%; large 64 B variance — NN up to
// 35%, SRAD1 27%, TP 21%, while BS/DCT/BP show none; error NN 5.2% @64 B.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Fig. 9 — SLC sensitivity to MAG",
               "Figure 9a/9b (Sec. V-C), TSLC-OPT, threshold = MAG/2");

  const size_t mags[] = {16, 32, 64};
  const auto names = workload_names();

  TextTable sp({"Bench", "MAG16B", "MAG32B", "MAG64B"});
  TextTable er({"Bench", "Metric", "MAG16B", "MAG32B", "MAG64B"});
  std::vector<double> gm_speedup[3];

  for (const std::string& name : names) {
    std::vector<std::string> sp_cells = {name};
    std::vector<std::string> er_cells = {name};
    bool metric_set = false;
    for (int m = 0; m < 3; ++m) {
      const size_t mag = mags[m];
      const size_t threshold = mag / 2;
      const FullRunResult base = full_run(name, "E2MC", mag, threshold);
      const FullRunResult r = full_run(name, "TSLC-OPT", mag, threshold);
      if (!metric_set) {
        er_cells.push_back(to_string(r.metric));
        metric_set = true;
      }
      const double speedup =
          static_cast<double>(base.sim.cycles) / static_cast<double>(r.sim.cycles);
      gm_speedup[m].push_back(speedup);
      sp_cells.push_back(TextTable::fmt(speedup, 3));
      er_cells.push_back(TextTable::fmt(r.error_pct, 4) + "%");
    }
    sp.add_row(sp_cells);
    er.add_row(er_cells);
    std::printf("  [%s done]\n", name.c_str());
  }

  std::vector<std::string> gm_row = {"GM"};
  for (auto& v : gm_speedup) gm_row.push_back(TextTable::fmt(geometric_mean(v), 3));
  sp.add_row(gm_row);

  std::printf("\n(a) Speedup vs E2MC at each MAG (paper GM: 1.05 / 1.097 / 1.09):\n\n%s\n",
              sp.to_string().c_str());
  std::printf("(b) Application error (paper: higher variance at 64 B, NN 5.2%%):\n\n%s\n",
              er.to_string().c_str());
  return 0;
}

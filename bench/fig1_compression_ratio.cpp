// Fig. 1: raw vs effective compression ratio of every lossless scheme in the
// CodecRegistry (MAG 32 B, 128 B blocks) on the nine benchmarks plus
// geometric mean. Registering a new scheme adds a column here with no code
// change; block streams run through the CodecEngine.
//
// Paper result (4-scheme subset): GM effective ratio is 22% (BDI), 19% (FPC),
// 18% (C-PACK) and 23% (E2MC) below the GM raw ratio — the motivation for SLC.
#include <cstdio>
#include <memory>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Fig. 1 — raw vs effective compression ratio",
               "Figure 1 (Sec. I) and the Sec. II-A motivation");

  const auto names = workload_names();
  const auto schemes = CodecRegistry::instance().lossless_names();
  CodecEngine engine;

  struct SchemeRow {
    std::string scheme;
    std::vector<double> raw, eff;
  };
  std::vector<SchemeRow> rows;
  std::vector<std::string> header = {"Bench"};
  for (const std::string& s : schemes) {
    rows.push_back({s, {}, {}});
    header.push_back(s + "-Raw");
    header.push_back(s + "-Eff");
  }
  TextTable table(header);

  for (const std::string& name : names) {
    const std::vector<uint8_t>& image = workload_image_cached(name);
    std::vector<std::string> cells = {name};
    for (size_t s = 0; s < schemes.size(); ++s) {
      const auto comp =
          CodecRegistry::instance().create(schemes[s], codec_options_for(name, kDefaultMagBytes, 16));
      const auto res = engine.analyze_bytes(*comp, image, kDefaultMagBytes);
      rows[s].raw.push_back(res.ratios.raw_ratio());
      rows[s].eff.push_back(res.ratios.effective_ratio());
      cells.push_back(TextTable::fmt(res.ratios.raw_ratio(), 2));
      cells.push_back(TextTable::fmt(res.ratios.effective_ratio(), 2));
    }
    table.add_row(cells);
  }

  // Geometric means (the paper's GM bars).
  std::vector<std::string> gm = {"GM"};
  std::printf("Compression ratios (raw = exact bits, eff = rounded to 32 B bursts):\n\n");
  for (auto& r : rows) {
    gm.push_back(TextTable::fmt(geometric_mean(r.raw), 2));
    gm.push_back(TextTable::fmt(geometric_mean(r.eff), 2));
  }
  table.add_row(gm);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Effective-vs-raw GM loss per scheme (paper: BDI 22%%, FPC 19%%, "
              "C-PACK 18%%, E2MC 23%%):\n");
  for (auto& r : rows) {
    const double raw = geometric_mean(r.raw);
    const double eff = geometric_mean(r.eff);
    std::printf("  %-8s raw GM %.2f  eff GM %.2f  loss %.1f%%\n", r.scheme.c_str(), raw, eff,
                (1.0 - eff / raw) * 100.0);
  }
  return 0;
}

// Fig. 1: raw vs effective compression ratio of BDI, FPC, C-PACK and E2MC
// (MAG 32 B, 128 B blocks) on the nine benchmarks plus geometric mean.
//
// Paper result: GM effective ratio is 22% (BDI), 19% (FPC), 18% (C-PACK) and
// 23% (E2MC) below the GM raw ratio — the motivation for SLC.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/fpc.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Fig. 1 — raw vs effective compression ratio",
               "Figure 1 (Sec. I) and the Sec. II-A motivation");

  const auto names = workload_names();
  const BdiCompressor bdi;
  const FpcCompressor fpc;
  const CpackCompressor cpack;

  struct SchemeRow {
    std::string scheme;
    std::vector<double> raw, eff;
  };
  std::vector<SchemeRow> rows = {{"BDI", {}, {}}, {"FPC", {}, {}}, {"C-PACK", {}, {}},
                                 {"E2MC", {}, {}}};

  TextTable table({"Bench", "BDI-Raw", "BDI-Eff", "FPC-Raw", "FPC-Eff", "CPACK-Raw",
                   "CPACK-Eff", "E2MC-Raw", "E2MC-Eff"});

  for (const std::string& name : names) {
    const std::vector<uint8_t> image = workload_memory_image(name);
    const auto e2mc = trained_e2mc(name);
    const Compressor* schemes[] = {&bdi, &fpc, &cpack, e2mc.get()};

    std::vector<std::string> cells = {name};
    const auto blocks = to_blocks(image);
    for (size_t s = 0; s < 4; ++s) {
      RatioAccumulator acc(kDefaultMagBytes);
      for (const Block& b : blocks) {
        acc.add(b.size() * 8, schemes[s]->compressed_bits(b.view()));
      }
      rows[s].raw.push_back(acc.raw_ratio());
      rows[s].eff.push_back(acc.effective_ratio());
      cells.push_back(TextTable::fmt(acc.raw_ratio(), 2));
      cells.push_back(TextTable::fmt(acc.effective_ratio(), 2));
    }
    table.add_row(cells);
  }

  // Geometric means (the paper's GM bars).
  std::vector<std::string> gm = {"GM"};
  std::printf("Compression ratios (raw = exact bits, eff = rounded to 32 B bursts):\n\n");
  for (auto& r : rows) {
    gm.push_back(TextTable::fmt(geometric_mean(r.raw), 2));
    gm.push_back(TextTable::fmt(geometric_mean(r.eff), 2));
  }
  table.add_row(gm);
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Effective-vs-raw GM loss per scheme (paper: BDI 22%%, FPC 19%%, "
              "C-PACK 18%%, E2MC 23%%):\n");
  for (auto& r : rows) {
    const double raw = geometric_mean(r.raw);
    const double eff = geometric_mean(r.eff);
    std::printf("  %-7s raw GM %.2f  eff GM %.2f  loss %.1f%%\n", r.scheme.c_str(), raw, eff,
                (1.0 - eff / raw) * 100.0);
  }
  return 0;
}

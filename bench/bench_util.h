// Shared harness for the per-figure/table bench binaries: per-benchmark E2MC
// training, codec construction, full functional+timing runs, and table
// formatting.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "compress/e2mc.h"
#include "sim/energy.h"
#include "sim/gpu_sim.h"
#include "workloads/workload.h"

namespace slc::bench {

/// Trains the per-benchmark E2MC compressor the way the paper's online
/// sampling does: evenly spaced blocks covering the benchmark's resident
/// data (inputs and outputs). Results are memoized per (name, scale).
std::shared_ptr<const E2mcCompressor> trained_e2mc(const std::string& benchmark,
                                                   WorkloadScale scale = WorkloadScale::kDefault);

/// Codec selection for a full-system run.
enum class CodecKind : uint8_t { kRaw, kE2mc, kTslcSimp, kTslcPred, kTslcOpt };

const char* to_string(CodecKind k);

/// One full run: functional (error) + timing (cycles) + energy.
struct FullRunResult {
  double error_pct = 0.0;
  ErrorMetric metric = ErrorMetric::kMre;
  SimStats sim;
  EnergyBreakdown energy;
  CommitStats commit;
  double seconds = 0.0;
  double edp = 0.0;
};

/// Simulator configuration for a codec at a MAG (sets pipeline latencies:
/// E2MC 46/20, TSLC 60/20, RAW 0/0 — Sec. IV-A).
GpuSimConfig sim_config_for(CodecKind kind, size_t mag_bytes);

/// Builds the BlockCodec for a kind/MAG/threshold triple.
std::shared_ptr<const BlockCodec> make_codec(CodecKind kind, const std::string& benchmark,
                                             size_t mag_bytes, size_t threshold_bytes,
                                             WorkloadScale scale = WorkloadScale::kDefault);

/// Runs benchmark functionally + through the timing simulator.
FullRunResult full_run(const std::string& benchmark, CodecKind kind, size_t mag_bytes,
                       size_t threshold_bytes, WorkloadScale scale = WorkloadScale::kDefault);

/// Prints the standard bench banner (paper reference + configuration).
void print_banner(const std::string& title, const std::string& paper_ref);

/// Prints Table II / Table III summaries (used by fig7's header).
void print_table2(const GpuSimConfig& cfg);
void print_table3();

}  // namespace slc::bench

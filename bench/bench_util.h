// Shared harness for the per-figure/table bench binaries: per-benchmark E2MC
// training, registry-driven codec construction, full functional+timing runs,
// and table formatting.
//
// Codecs are referred to by their CodecRegistry names everywhere ("RAW",
// "BDI", "E2MC", "TSLC-OPT", ...). Sweeping another scheme in a bench is a
// one-line change: add its name to the list (or iterate the registry).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "sim/energy.h"
#include "sim/gpu_sim.h"
#include "workloads/workload.h"

namespace slc::bench {

/// Memoized copy of workload_memory_image() — the training sample / ratio
/// study input for a benchmark. Stable storage, so spans over it stay valid.
const std::vector<uint8_t>& workload_image_cached(const std::string& benchmark,
                                                  WorkloadScale scale = WorkloadScale::kDefault);

/// Trains the per-benchmark E2MC compressor the way the paper's online
/// sampling does: evenly spaced blocks covering the benchmark's resident
/// data (inputs and outputs). Results are memoized per (name, scale).
std::shared_ptr<const E2mcCompressor> trained_e2mc(const std::string& benchmark,
                                                   WorkloadScale scale = WorkloadScale::kDefault);

/// Registry options for a benchmark: trained E2MC model + training image +
/// MAG/threshold, ready for CodecRegistry::create()/create_block_codec().
CodecOptions codec_options_for(const std::string& benchmark, size_t mag_bytes,
                               size_t threshold_bytes,
                               WorkloadScale scale = WorkloadScale::kDefault);

/// One full run: functional (error) + timing (cycles) + energy.
struct FullRunResult {
  double error_pct = 0.0;
  ErrorMetric metric = ErrorMetric::kMre;
  SimStats sim;
  EnergyBreakdown energy;
  CommitStats commit;
  double seconds = 0.0;
  double edp = 0.0;
};

/// Simulator configuration for a registry scheme at a MAG (pipeline
/// latencies come from the scheme's CodecInfo: E2MC 46/20, TSLC 60/20,
/// RAW 0/0 — Sec. IV-A).
GpuSimConfig sim_config_for(const std::string& scheme, size_t mag_bytes);

/// Builds the BlockCodec for a scheme/MAG/threshold triple via the registry.
std::shared_ptr<const BlockCodec> make_codec(const std::string& scheme,
                                             const std::string& benchmark, size_t mag_bytes,
                                             size_t threshold_bytes,
                                             WorkloadScale scale = WorkloadScale::kDefault);

/// Runs benchmark functionally + through the timing simulator.
FullRunResult full_run(const std::string& benchmark, const std::string& scheme,
                       size_t mag_bytes, size_t threshold_bytes,
                       WorkloadScale scale = WorkloadScale::kDefault);

/// Prints the standard bench banner (paper reference + configuration).
void print_banner(const std::string& title, const std::string& paper_ref);

/// Prints Table II / Table III summaries (used by fig7's header).
void print_table2(const GpuSimConfig& cfg);
void print_table3();

}  // namespace slc::bench

// Shared harness for the per-figure/table bench binaries: per-benchmark E2MC
// training, registry-driven codec construction, full functional+timing runs,
// and table formatting.
//
// Codecs are referred to by their CodecRegistry names everywhere ("RAW",
// "BDI", "E2MC", "TSLC-OPT", ...). Sweeping another scheme in a bench is a
// one-line change: add its name to the list (or iterate the registry).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "sim/energy.h"
#include "sim/gpu_sim.h"
#include "workloads/workload.h"

namespace slc::bench {

/// Memoized copy of workload_memory_image() — the training sample / ratio
/// study input for a benchmark. Stable storage, so spans over it stay valid.
const std::vector<uint8_t>& workload_image_cached(const std::string& benchmark,
                                                  WorkloadScale scale = WorkloadScale::kDefault);

/// Trains the per-benchmark E2MC compressor the way the paper's online
/// sampling does: evenly spaced blocks covering the benchmark's resident
/// data (inputs and outputs). Results are memoized per (name, scale).
std::shared_ptr<const E2mcCompressor> trained_e2mc(const std::string& benchmark,
                                                   WorkloadScale scale = WorkloadScale::kDefault);

/// Registry options for a benchmark: trained E2MC model + training image +
/// MAG/threshold, ready for CodecRegistry::create()/create_block_codec().
CodecOptions codec_options_for(const std::string& benchmark, size_t mag_bytes,
                               size_t threshold_bytes,
                               WorkloadScale scale = WorkloadScale::kDefault);

/// One full run: functional (error) + timing (cycles) + energy.
struct FullRunResult {
  double error_pct = 0.0;
  ErrorMetric metric = ErrorMetric::kMre;
  SimStats sim;
  EnergyBreakdown energy;
  CommitStats commit;
  double seconds = 0.0;
  double edp = 0.0;
};

/// Simulator configuration for a registry scheme at a MAG (pipeline
/// latencies come from the scheme's CodecInfo: E2MC 46/20, TSLC 60/20,
/// RAW 0/0 — Sec. IV-A).
GpuSimConfig sim_config_for(const std::string& scheme, size_t mag_bytes);

/// Builds the BlockCodec for a scheme/MAG/threshold triple via the registry.
std::shared_ptr<const BlockCodec> make_codec(const std::string& scheme,
                                             const std::string& benchmark, size_t mag_bytes,
                                             size_t threshold_bytes,
                                             WorkloadScale scale = WorkloadScale::kDefault);

/// Runs benchmark functionally + through the timing simulator.
FullRunResult full_run(const std::string& benchmark, const std::string& scheme,
                       size_t mag_bytes, size_t threshold_bytes,
                       WorkloadScale scale = WorkloadScale::kDefault);

// --- throughput measurements -----------------------------------------------
// One struct per measured configuration, shared by the human TextTable and
// the machine-readable BENCH_*.json output, so the two can never report
// different numbers (and the perf trajectory in CI diffs exactly what the
// table shows).

/// One measured kernel configuration.
struct Measurement {
  std::string scheme;   ///< registry codec name ("BDI", "E2MC", ...)
  std::string kernel;   ///< what ran ("analyze", "compress", "commit", ...)
  std::string path;     ///< implementation/config ("scalar", "batch", "threads=4")
  size_t blocks = 0;    ///< blocks processed per repetition
  size_t reps = 0;      ///< timed repetitions
  double blocks_per_sec = 0.0;
  double gbps = 0.0;    ///< uncompressed bytes/s, in GB/s
  double p50_ms = 0.0;  ///< per-repetition wall time percentiles
  double p99_ms = 0.0;
  double speedup = 0.0; ///< vs this scheme's baseline path; 0 = not applicable
};

/// Collects Measurements and renders them both ways.
class BenchReport {
 public:
  /// The report is stamped with host/dispatch metadata (simd_compiled,
  /// cpu_avx2, simd_active, force_scalar_env — from slc::simd) at
  /// construction, so BENCH_*.json records which kernel variant produced the
  /// numbers and perf-gate diffs across hosts are interpretable.
  explicit BenchReport(std::string bench_name);

  Measurement& add(Measurement m);
  const std::vector<Measurement>& measurements() const { return rows_; }

  /// Adds/overrides one metadata entry (emitted in the JSON "meta" object).
  void set_meta(const std::string& key, std::string value);
  const std::map<std::string, std::string>& meta() const { return meta_; }

  /// Human form: one TextTable row per measurement.
  TextTable table() const;
  /// Machine form consumed by tools/bench_compare.py:
  /// {"bench": ..., "block_bytes": 128, "meta": {...},
  ///  "measurements": [{...}, ...]}.
  std::string to_json() const;
  /// Writes to_json() to `path`. Returns false (and prints to stderr) on
  /// failure.
  bool write_json(const std::string& path) const;

 private:
  std::string name_;
  std::map<std::string, std::string> meta_;
  std::vector<Measurement> rows_;
};

/// Times `fn` (one call = one repetition over `blocks` blocks) `reps` times
/// after one untimed warmup call; fills the rate and percentile fields.
Measurement measure_kernel(std::string scheme, std::string kernel, std::string path,
                           size_t blocks, size_t reps, const std::function<void()>& fn);

/// Picks a repetition count so `reps * seconds_per_rep` lands near
/// `target_seconds` (clamped to [min_reps, max_reps]); `probe_seconds` is one
/// measured repetition.
size_t reps_for_target(double probe_seconds, double target_seconds, size_t min_reps = 5,
                       size_t max_reps = 200);

/// Strips a `--json[=path]` flag from argv (adjusting argc). Returns the
/// output path — `default_path` for a bare `--json` — or "" when absent.
std::string parse_json_flag(int& argc, char** argv, const std::string& default_path);

/// Prints the standard bench banner (paper reference + configuration).
void print_banner(const std::string& title, const std::string& paper_ref);

/// Prints Table II / Table III summaries (used by fig7's header).
void print_table2(const GpuSimConfig& cfg);
void print_table3();

}  // namespace slc::bench

// Sec. V-C (text): effective compression ratio of E2MC across MAGs.
//
// Paper: GM effective ratio 1.41 / 1.31 / 1.16 for MAG 16 B / 32 B / 64 B;
// GM raw ratio 1.54 independent of MAG.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Sec. V-C — E2MC effective compression ratio vs MAG",
               "Sec. V-C text (paper: eff GM 1.41/1.31/1.16, raw GM 1.54)");

  const size_t mags[] = {16, 32, 64};
  const auto names = workload_names();

  TextTable t({"Bench", "Raw", "Eff@16B", "Eff@32B", "Eff@64B"});
  std::vector<double> raw_all;
  std::vector<double> eff_all[3];

  CodecEngine engine;
  for (const std::string& name : names) {
    const auto e2mc =
        CodecRegistry::instance().create("E2MC", codec_options_for(name, kDefaultMagBytes, 16));
    const std::vector<uint8_t>& image = workload_image_cached(name);
    // One size-only engine pass; the per-MAG rounding happens in the
    // accumulators (raw bits do not depend on MAG).
    const auto res = engine.analyze_bytes(*e2mc, image, kDefaultMagBytes);

    std::vector<std::string> cells = {name};
    double raw = 0;
    for (int m = 0; m < 3; ++m) {
      RatioAccumulator acc(mags[m]);
      for (const BlockAnalysis& a : res.blocks) acc.add(kBlockBytes * 8, a.bit_size);
      if (m == 0) {
        raw = acc.raw_ratio();
        raw_all.push_back(raw);
        cells.push_back(TextTable::fmt(raw, 2));
      }
      eff_all[m].push_back(acc.effective_ratio());
      cells.push_back(TextTable::fmt(acc.effective_ratio(), 2));
    }
    t.add_row(cells);
  }

  t.add_row({"GM", TextTable::fmt(geometric_mean(raw_all), 2),
             TextTable::fmt(geometric_mean(eff_all[0]), 2),
             TextTable::fmt(geometric_mean(eff_all[1]), 2),
             TextTable::fmt(geometric_mean(eff_all[2]), 2)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("The raw ratio does not depend on MAG; the effective ratio falls as MAG\n");
  std::printf("grows because fewer compressed sizes land on burst multiples (Sec. V-C).\n");
  return 0;
}

// CodecEngine throughput: block-stream compress/analyze rate vs worker
// count, with a determinism check. Not a paper figure — it validates the
// engine layer the simulator and the ratio benches batch their block work
// through: near-linear multicore scaling on multi-core hosts, byte-identical
// compression decisions at every thread count.
//
// Usage: engine_throughput [benchmark] [scheme] [repeat]
//   defaults: SRAD2 E2MC 4 (repeat multiplies the block stream to give the
//   pool enough work per timing sample)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) try {
  const std::string benchmark = argc > 1 ? argv[1] : "SRAD2";
  const std::string scheme = argc > 2 ? argv[2] : "E2MC";
  const size_t repeat = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;

  print_banner("Engine throughput — block stream vs worker threads",
               "engine layer validation (no paper figure)");

  const auto comp =
      CodecRegistry::instance().create(scheme, codec_options_for(benchmark, kDefaultMagBytes, 16));
  std::vector<Block> blocks = to_blocks(workload_image_cached(benchmark));
  const size_t base_blocks = blocks.size();
  blocks.reserve(base_blocks * repeat);
  for (size_t r = 1; r < repeat; ++r)
    for (size_t i = 0; i < base_blocks; ++i) blocks.push_back(blocks[i]);

  std::printf("stream: %zu blocks (%.1f MB), scheme %s, host concurrency %u\n\n", blocks.size(),
              static_cast<double>(blocks.size() * kBlockBytes) / 1e6, scheme.c_str(),
              std::thread::hardware_concurrency());

  // 1-thread reference: every other configuration must reproduce these
  // decisions bit for bit.
  CodecEngine reference_engine(1);
  const auto reference = reference_engine.analyze_stream(*comp, blocks, kDefaultMagBytes);
  const auto reference_payloads = reference_engine.compress_stream(*comp, blocks);

  TextTable t({"Threads", "Analyze Mblk/s", "Analyze speedup", "Compress Mblk/s",
               "Compress speedup", "Identical"});
  double analyze_base = 0.0, compress_base = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    CodecEngine engine(threads);

    auto t0 = std::chrono::steady_clock::now();
    const auto analysis = engine.analyze_stream(*comp, blocks, kDefaultMagBytes);
    const double analyze_rate = static_cast<double>(blocks.size()) / seconds_since(t0) / 1e6;

    t0 = std::chrono::steady_clock::now();
    const auto payloads = engine.compress_stream(*comp, blocks);
    const double compress_rate = static_cast<double>(blocks.size()) / seconds_since(t0) / 1e6;

    bool identical = analysis.ratios.raw_ratio() == reference.ratios.raw_ratio() &&
                     analysis.ratios.effective_ratio() == reference.ratios.effective_ratio() &&
                     analysis.lossy_blocks == reference.lossy_blocks;
    for (size_t i = 0; identical && i < blocks.size(); ++i) {
      identical = analysis.blocks[i].bit_size == reference.blocks[i].bit_size &&
                  payloads[i].payload == reference_payloads[i].payload;
    }

    if (threads == 1) {
      analyze_base = analyze_rate;
      compress_base = compress_rate;
    }
    t.add_row({std::to_string(threads), TextTable::fmt(analyze_rate, 3),
               TextTable::fmt(analyze_rate / analyze_base, 2) + "x",
               TextTable::fmt(compress_rate, 3),
               TextTable::fmt(compress_rate / compress_base, 2) + "x",
               identical ? "yes" : "NO"});
    if (!identical) {
      std::printf("FATAL: %u-thread run diverged from the 1-thread reference\n", threads);
      return 1;
    }
  }

  std::printf("%s\n", t.to_string().c_str());
  std::printf("Speedups are relative to 1 engine worker on this host; expect near-linear\n");
  std::printf("scaling up to the physical core count (a 1-core container shows ~1.0x).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

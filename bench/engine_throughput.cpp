// CodecEngine throughput: block-stream compress/analyze rate vs worker
// count, with a determinism check, plus the pipelined-vs-barrier region
// commit comparison (ApproxMemory::commit_async + flush against commit).
// Not a paper figure — it validates the engine layer the simulator and the
// ratio benches batch their block work through: near-linear multicore
// scaling on multi-core hosts, byte-identical compression decisions at
// every thread count, and commit/compute overlap from the async job queue.
//
// Usage: engine_throughput [benchmark] [scheme] [repeat] [--json[=path]]
//   defaults: SRAD2 E2MC 4 (repeat multiplies the block stream to give the
//   pool enough work per timing sample); bare --json writes
//   BENCH_engine.json — the same Measurement rows the tables print, for the
//   CI perf artifacts.
//
// Also measures the TSLC-OPT region-commit kernel scalar vs batch: the same
// ApproxMemory commits once through the per-block BlockCodec::process() loop
// and once through process_batch (the staged SLC mode decision), inline (no
// engine) so the row isolates the kernel, not thread scaling. The batch row's
// speedup is gated in CI against bench/baselines/BENCH_engine.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "compress/block_codec.h"

using namespace slc;
using namespace slc::bench;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// --- pipelined vs barrier commits ------------------------------------------
// Models the workload harness inner loop: per "kernel", a single-threaded
// data-generation pass over a region followed by that region's DRAM commit.
// The barrier path waits out each commit (commit()); the pipelined path
// queues it (commit_async()) so the engine compresses region r while the
// caller generates region r+1. Both paths execute the identical sequence of
// reads and commits — settle-on-access keeps results byte-identical.

struct CommitRunResult {
  double seconds = 0.0;
  CommitStats stats;
  std::vector<uint8_t> image;  ///< final contents of every region
};

struct CommitLoopConfig {
  size_t n_regions = 4;
  size_t blocks_per_region = 512;
  size_t iterations = 3;
  size_t gen_passes = 1;  ///< data-generation sweeps per commit (calibrated)
};

void generate_pass(std::span<float> s, size_t pass) {
  for (size_t i = 0; i < s.size(); ++i)
    s[i] = s[i] * 0.9999f + 1e-7f * static_cast<float>(pass + 1);
}

CommitRunResult run_commit_loop(bool pipelined, const CommitLoopConfig& cfg,
                                std::shared_ptr<CodecEngine> engine,
                                std::shared_ptr<const BlockCodec> codec,
                                const std::vector<uint8_t>& seed) {
  ApproxMemory mem;
  mem.set_engine(std::move(engine));
  mem.set_codec(std::move(codec));
  std::vector<RegionId> regions;
  const size_t bytes_per = cfg.blocks_per_region * kBlockBytes;
  for (size_t r = 0; r < cfg.n_regions; ++r) {
    regions.push_back(mem.alloc("pipe" + std::to_string(r), bytes_per, /*safe=*/true, 16));
    auto dst = mem.span<uint8_t>(regions.back());
    // Tile the benchmark image across regions (wraps if the image is small).
    for (size_t i = 0; i < bytes_per; ++i) dst[i] = seed[(r * bytes_per + i) % seed.size()];
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (size_t it = 0; it < cfg.iterations; ++it) {
    for (const RegionId r : regions) {
      // span() settles region r's previous commit before the caller-side
      // generation pass reads/writes it; other regions stay in flight.
      auto s = mem.span<float>(r);
      for (size_t p = 0; p < cfg.gen_passes; ++p) generate_pass(s, p);
      if (pipelined) {
        mem.commit_async(r);
      } else {
        mem.commit(r);
      }
    }
  }
  mem.flush();
  CommitRunResult out;
  out.seconds = seconds_since(t0);
  out.stats = mem.stats();
  for (const RegionId r : regions) {
    const auto bytes = mem.span<const uint8_t>(r);
    out.image.insert(out.image.end(), bytes.begin(), bytes.end());
  }
  return out;
}

// --- region-commit kernel: scalar vs batch ----------------------------------
// Both paths run the identical commit sequence through ApproxMemory with no
// engine (inline, single-threaded), so the only difference is whether the
// commit kernel hands each block to BlockCodec::process() or the whole range
// to process_batch().

struct RegionCommitResult {
  Measurement m;
  CommitStats stats;
  std::vector<uint8_t> image;  ///< final contents of every region
};

RegionCommitResult run_region_commits(const char* path, std::shared_ptr<const BlockCodec> codec,
                                      const std::vector<uint8_t>& seed, size_t n_regions,
                                      size_t blocks_per_region, size_t reps) {
  ApproxMemory mem;
  mem.set_engine(nullptr);  // inline commits: measure the kernel, not the pool
  mem.set_codec(std::move(codec));
  std::vector<RegionId> regions;
  const size_t bytes_per = blocks_per_region * kBlockBytes;
  for (size_t r = 0; r < n_regions; ++r) {
    regions.push_back(mem.alloc("rc" + std::to_string(r), bytes_per, /*safe=*/true, 16));
    auto dst = mem.span<uint8_t>(regions.back());
    for (size_t i = 0; i < bytes_per; ++i) dst[i] = seed[(r * bytes_per + i) % seed.size()];
  }
  RegionCommitResult out;
  out.m = measure_kernel("TSLC-OPT", "region-commit", path, n_regions * blocks_per_region, reps,
                         [&] {
                           for (const RegionId r : regions) mem.commit(r);
                         });
  out.stats = mem.stats();
  for (const RegionId r : regions) {
    const auto bytes = mem.span<const uint8_t>(r);
    out.image.insert(out.image.end(), bytes.begin(), bytes.end());
  }
  return out;
}

/// Sizes gen_passes so the caller-side generation costs roughly one commit:
/// the regime the workload harness sits in, and where overlap pays.
size_t calibrate_gen_passes(const CommitLoopConfig& cfg, std::shared_ptr<CodecEngine> engine,
                            std::shared_ptr<const BlockCodec> codec,
                            const std::vector<uint8_t>& seed) {
  ApproxMemory mem;
  mem.set_engine(std::move(engine));
  mem.set_codec(std::move(codec));
  const size_t bytes_per = cfg.blocks_per_region * kBlockBytes;
  const RegionId r = mem.alloc("cal", bytes_per, /*safe=*/true, 16);
  auto dst = mem.span<uint8_t>(r);
  for (size_t i = 0; i < bytes_per; ++i) dst[i] = seed[i % seed.size()];

  auto t0 = std::chrono::steady_clock::now();
  mem.commit(r);
  const double commit_s = seconds_since(t0);

  auto s = mem.span<float>(r);
  t0 = std::chrono::steady_clock::now();
  generate_pass(s, 0);
  const double gen_s = std::max(seconds_since(t0), 1e-9);
  return std::clamp<size_t>(static_cast<size_t>(commit_s / gen_s + 0.5), 1, 512);
}

}  // namespace

int main(int argc, char** argv) try {
  const std::string json_path = parse_json_flag(argc, argv, "BENCH_engine.json");
  const std::string benchmark = argc > 1 ? argv[1] : "SRAD2";
  const std::string scheme = argc > 2 ? argv[2] : "E2MC";
  const size_t repeat = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;

  print_banner("Engine throughput — block stream vs worker threads",
               "engine layer validation (no paper figure)");

  const auto comp =
      CodecRegistry::instance().create(scheme, codec_options_for(benchmark, kDefaultMagBytes, 16));
  std::vector<Block> blocks = to_blocks(workload_image_cached(benchmark));
  const size_t base_blocks = blocks.size();
  blocks.reserve(base_blocks * repeat);
  for (size_t r = 1; r < repeat; ++r)
    for (size_t i = 0; i < base_blocks; ++i) blocks.push_back(blocks[i]);

  std::printf("stream: %zu blocks (%.1f MB), scheme %s, host concurrency %u\n\n", blocks.size(),
              static_cast<double>(blocks.size() * kBlockBytes) / 1e6, scheme.c_str(),
              std::thread::hardware_concurrency());

  // 1-thread reference: every other configuration must reproduce these
  // decisions bit for bit.
  CodecEngine reference_engine(1);
  const auto reference = reference_engine.analyze_stream(*comp, blocks, kDefaultMagBytes);
  const auto reference_payloads = reference_engine.compress_stream(*comp, blocks);

  // Every row — human table and BENCH_engine.json alike — comes out of the
  // same Measurement structs, so the two cannot drift.
  BenchReport report("engine_throughput");
  constexpr size_t kScalingReps = 3;
  double analyze_base = 0.0, compress_base = 0.0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    CodecEngine engine(threads);
    const std::string path = "threads=" + std::to_string(threads);

    CodecEngine::StreamAnalysis analysis;
    std::vector<CompressedBlock> payloads;
    Measurement ma = measure_kernel(
        scheme, "analyze", path, blocks.size(), kScalingReps,
        [&] { analysis = engine.analyze_stream(*comp, blocks, kDefaultMagBytes); });
    Measurement mc = measure_kernel(scheme, "compress", path, blocks.size(), kScalingReps,
                                    [&] { payloads = engine.compress_stream(*comp, blocks); });

    bool identical = analysis.ratios.raw_ratio() == reference.ratios.raw_ratio() &&
                     analysis.ratios.effective_ratio() == reference.ratios.effective_ratio() &&
                     analysis.lossy_blocks == reference.lossy_blocks;
    for (size_t i = 0; identical && i < blocks.size(); ++i) {
      identical = analysis.blocks[i].bit_size == reference.blocks[i].bit_size &&
                  payloads[i].payload == reference_payloads[i].payload;
    }

    if (threads == 1) {
      analyze_base = ma.blocks_per_sec;
      compress_base = mc.blocks_per_sec;
    }
    ma.speedup = analyze_base > 0 ? ma.blocks_per_sec / analyze_base : 0.0;
    mc.speedup = compress_base > 0 ? mc.blocks_per_sec / compress_base : 0.0;
    report.add(std::move(ma));
    report.add(std::move(mc));
    if (!identical) {
      std::printf("FATAL: %u-thread run diverged from the 1-thread reference\n", threads);
      return 1;
    }
  }

  std::printf("%s\n", report.table().to_string().c_str());
  std::printf("Every thread count above reproduced the 1-thread reference byte for byte.\n");
  std::printf("Speedups are relative to 1 engine worker on this host; expect near-linear\n");
  std::printf("scaling up to the physical core count (a 1-core container shows ~1.0x).\n");

  // --- pipelined vs barrier region commits ---------------------------------
  const auto codec = make_codec("TSLC-OPT", benchmark, kDefaultMagBytes, 16);
  const auto engine = std::make_shared<CodecEngine>();
  CommitLoopConfig cfg;
  cfg.gen_passes = calibrate_gen_passes(cfg, engine, codec, workload_image_cached(benchmark));
  std::printf("\nPipelined vs barrier region commits — %zu regions x %zu iterations,\n",
              cfg.n_regions, cfg.iterations);
  std::printf("%zu blocks/region, %zu generation pass(es) per commit (calibrated to ~1 commit),\n",
              cfg.blocks_per_region, cfg.gen_passes);
  std::printf("codec TSLC-OPT, %u engine worker(s)\n\n", engine->num_threads());

  const auto barrier =
      run_commit_loop(/*pipelined=*/false, cfg, engine, codec, workload_image_cached(benchmark));
  const auto pipelined =
      run_commit_loop(/*pipelined=*/true, cfg, engine, codec, workload_image_cached(benchmark));

  const bool commits_identical =
      pipelined.image == barrier.image && pipelined.stats == barrier.stats;

  // Same Measurement rows as the scaling table (and the JSON file).
  BenchReport commit_report("engine_throughput");
  const auto commit_row = [&](const char* path, const CommitRunResult& r, double speedup) {
    Measurement m;
    m.scheme = "TSLC-OPT";
    m.kernel = "commit";
    m.path = path;
    m.blocks = static_cast<size_t>(r.stats.blocks);
    m.reps = 1;
    m.blocks_per_sec = static_cast<double>(r.stats.blocks) / r.seconds;
    m.gbps = m.blocks_per_sec * static_cast<double>(kBlockBytes) / 1e9;
    m.p50_ms = m.p99_ms = r.seconds * 1e3;
    m.speedup = speedup;
    commit_report.add(m);
  };
  commit_row("barrier", barrier, 0.0);
  commit_row("pipelined", pipelined, barrier.seconds / pipelined.seconds);
  std::printf("%s\n", commit_report.table().to_string().c_str());
  std::printf("Commit results were %s across the two paths.\n",
              commits_identical ? "byte-identical" : "DIVERGENT");
  std::printf("The pipelined path overlaps each commit with the next region's single-threaded\n");
  std::printf("data generation; expect >= 1.2x with 4+ hardware threads. A 1-core host\n");
  std::printf("serializes caller and pool, so both paths cost the same there (~1.0x).\n");
  if (!commits_identical) {
    std::printf("FATAL: pipelined commits diverged from the barrier path\n");
    return 1;
  }

  // --- region-commit kernel: scalar process() loop vs process_batch --------
  constexpr size_t kRcRegions = 4, kRcBlocks = 512, kRcReps = 10;
  std::printf("\nRegion-commit kernel — per-block BlockCodec::process() vs process_batch\n");
  std::printf("(batched SLC mode decision), TSLC-OPT, threshold 16 B, inline commits,\n");
  std::printf("%zu regions x %zu blocks, %zu repetitions\n\n", kRcRegions, kRcBlocks, kRcReps);

  const auto scalar_rc =
      run_region_commits("scalar", std::make_shared<ScalarOnlyBlockCodec>(codec),
                         workload_image_cached(benchmark), kRcRegions, kRcBlocks, kRcReps);
  const auto batch_rc = run_region_commits("batch", codec, workload_image_cached(benchmark),
                                           kRcRegions, kRcBlocks, kRcReps);
  const bool rc_identical =
      scalar_rc.image == batch_rc.image && scalar_rc.stats == batch_rc.stats;

  BenchReport rc_report("engine_throughput");
  Measurement rc_scalar = scalar_rc.m;
  Measurement rc_batch = batch_rc.m;
  rc_batch.speedup =
      rc_scalar.blocks_per_sec > 0 ? rc_batch.blocks_per_sec / rc_scalar.blocks_per_sec : 0.0;
  rc_report.add(rc_scalar);
  rc_report.add(rc_batch);
  std::printf("%s\n", rc_report.table().to_string().c_str());
  std::printf("Commit results were %s across the two kernels.\n",
              rc_identical ? "byte-identical" : "DIVERGENT");
  std::printf("The batch kernel stages the E2MC length probe for the whole range and\n");
  std::printf("materializes payloads only for lossy blocks; expect >= 1.3x on any host\n");
  std::printf("(single-threaded both ways, so the gain transfers across machines).\n");
  if (!rc_identical) {
    std::printf("FATAL: batched region commits diverged from the scalar kernel\n");
    return 1;
  }

  if (!json_path.empty()) {
    for (const Measurement& m : commit_report.measurements()) report.add(m);
    for (const Measurement& m : rc_report.measurements()) report.add(m);
    if (!report.write_json(json_path)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

// CodecServer scheduling: mixed bulk + latency-sensitive load through the
// multi-stream front-end, priority scheduling vs plain FIFO.
//
// Scenario (per mode): a bulk stream floods the server with large fig-ratio
// style analyze requests (the offline sweep workload) while a
// latency-sensitive stream submits small TSLC-OPT commit-sized requests and
// waits each one. Under FIFO (both streams at the same priority) a latency
// request queues behind the whole bulk backlog; with priority scheduling the
// engine's claim loop preempts bulk at shard granularity, so the latency
// stream's p50/p99 collapse while bulk throughput is barely touched.
//
// The bench also pins the serving determinism contract: the identical
// request sequence against a 1-thread and an N-thread engine — and against
// FIFO vs priority scheduling — must produce byte-identical per-request
// results and per-stream commit stats. Exits non-zero when determinism or
// the priority-beats-FIFO property fails (CI runs this as a smoke test).
//
// Usage: server_throughput [benchmark] [scheme]
//   defaults: SRAD2 E2MC (the bulk stream's codec; latency runs TSLC-OPT)
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.h"
#include "server/codec_server.h"

using namespace slc;
using namespace slc::bench;

namespace {

constexpr size_t kBulkRequestBlocks = 512;
constexpr size_t kLatencyRequestBlocks = 16;
constexpr size_t kWarmupBulkRequests = 16;
constexpr size_t kLatencyIterations = 32;
constexpr size_t kBulkRequestsPerIteration = 2;

struct ScenarioResult {
  StreamStats bulk_stats;
  StreamStats latency_stats;
  std::vector<CodecEngine::StreamAnalysis> bulk_results;    // submission order
  std::vector<CodecEngine::StreamAnalysis> latency_results;
  double seconds = 0.0;
};

/// Tiles the benchmark image into a pool large enough to slice any request
/// from, so request contents are deterministic and non-degenerate.
std::vector<uint8_t> build_pool(const std::vector<uint8_t>& image, size_t bytes) {
  std::vector<uint8_t> pool(bytes);
  for (size_t i = 0; i < bytes; ++i) pool[i] = image[i % image.size()];
  return pool;
}

ScenarioResult run_scenario(bool prioritize, unsigned threads, const std::string& benchmark,
                            const std::string& bulk_scheme) {
  const CodecOptions opts = codec_options_for(benchmark, kDefaultMagBytes, 16);

  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(threads);
  cfg.batch_blocks = 256;
  cfg.max_inflight_blocks = 0;  // unbounded: this bench compares scheduling
  CodecServer server(cfg);

  StreamConfig bulk_cfg;
  bulk_cfg.name = "bulk";
  bulk_cfg.codec = bulk_scheme;
  bulk_cfg.options = opts;
  bulk_cfg.priority = StreamPriority::kBulk;
  StreamConfig lat_cfg;
  lat_cfg.name = "latency";
  lat_cfg.codec = "TSLC-OPT";
  lat_cfg.options = opts;
  lat_cfg.priority = prioritize ? StreamPriority::kLatency : StreamPriority::kBulk;
  const StreamId bulk = server.open_stream(bulk_cfg);
  const StreamId lat = server.open_stream(lat_cfg);

  const size_t bulk_bytes = kBulkRequestBlocks * kBlockBytes;
  const size_t lat_bytes = kLatencyRequestBlocks * kBlockBytes;
  const std::vector<uint8_t> pool =
      build_pool(workload_image_cached(benchmark), 8 * bulk_bytes + lat_bytes);

  auto bulk_slice = [&](size_t i) {
    return std::span<const uint8_t>(pool.data() + (i % 8) * bulk_bytes, bulk_bytes);
  };
  auto lat_slice = [&](size_t i) {
    return std::span<const uint8_t>(pool.data() + (i % 7) * lat_bytes, lat_bytes);
  };

  std::vector<ServerTicket> bulk_tickets;
  ScenarioResult out;
  const auto t0 = std::chrono::steady_clock::now();

  // Flood the bulk stream, then interleave: keep refilling the backlog while
  // the latency stream submits small requests and waits each one — the
  // serving pattern a shared compression tier actually sees.
  size_t bulk_i = 0;
  auto served = [](Response res) {
    res.throw_if_failed();  // a failed batch voids the whole bench run
    return std::move(res.analysis);
  };
  for (size_t i = 0; i < kWarmupBulkRequests; ++i)
    bulk_tickets.push_back(server.submit(bulk, Request{.bytes = bulk_slice(bulk_i++)}));
  for (size_t it = 0; it < kLatencyIterations; ++it) {
    for (size_t i = 0; i < kBulkRequestsPerIteration; ++i)
      bulk_tickets.push_back(server.submit(bulk, Request{.bytes = bulk_slice(bulk_i++)}));
    auto ticket = server.submit(lat, Request{.bytes = lat_slice(it)});
    out.latency_results.push_back(served(ticket.wait()));
  }
  server.drain();
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  for (auto& t : bulk_tickets) out.bulk_results.push_back(served(t.wait()));
  out.bulk_stats = server.stream_stats(bulk);
  out.latency_stats = server.stream_stats(lat);
  return out;
}

bool results_identical(const std::vector<CodecEngine::StreamAnalysis>& a,
                       const std::vector<CodecEngine::StreamAnalysis>& b) {
  if (a.size() != b.size()) return false;
  for (size_t r = 0; r < a.size(); ++r) {
    if (a[r].blocks.size() != b[r].blocks.size()) return false;
    if (a[r].ratios.raw_ratio() != b[r].ratios.raw_ratio()) return false;
    if (a[r].ratios.effective_ratio() != b[r].ratios.effective_ratio()) return false;
    if (a[r].lossy_blocks != b[r].lossy_blocks) return false;
    if (a[r].truncated_symbols != b[r].truncated_symbols) return false;
    for (size_t i = 0; i < a[r].blocks.size(); ++i)
      if (a[r].blocks[i].bit_size != b[r].blocks[i].bit_size) return false;
  }
  return true;
}

bool scenarios_identical(const ScenarioResult& a, const ScenarioResult& b) {
  return results_identical(a.bulk_results, b.bulk_results) &&
         results_identical(a.latency_results, b.latency_results) &&
         a.bulk_stats.commit == b.bulk_stats.commit &&
         a.latency_stats.commit == b.latency_stats.commit;
}

std::string ms(double seconds, int prec = 3) { return TextTable::fmt(seconds * 1e3, prec); }

}  // namespace

int main(int argc, char** argv) try {
  const std::string benchmark = argc > 1 ? argv[1] : "SRAD2";
  const std::string scheme = argc > 2 ? argv[2] : "E2MC";

  print_banner("CodecServer scheduling — priority vs FIFO under mixed load",
               "server layer validation (no paper figure)");

  const unsigned threads = std::max(2u, std::thread::hardware_concurrency());
  const size_t bulk_total =
      (kWarmupBulkRequests + kLatencyIterations * kBulkRequestsPerIteration) * kBulkRequestBlocks;
  std::printf(
      "bulk stream: %s, %zu blocks across %zu requests; latency stream: TSLC-OPT,\n"
      "%zu requests x %zu blocks, each waited synchronously; engine: %u worker(s)\n\n",
      scheme.c_str(), bulk_total,
      kWarmupBulkRequests + kLatencyIterations * kBulkRequestsPerIteration, kLatencyIterations,
      kLatencyRequestBlocks, threads);

  const ScenarioResult fifo = run_scenario(/*prioritize=*/false, threads, benchmark, scheme);
  const ScenarioResult prio = run_scenario(/*prioritize=*/true, threads, benchmark, scheme);

  TextTable t({"Scheduling", "lat p50 (ms)", "lat p99 (ms)", "lat max (ms)", "bulk Mblk/s",
               "wall (s)"});
  for (const auto& [label, r] : {std::pair<const char*, const ScenarioResult&>{"FIFO", fifo},
                                 {"priority", prio}}) {
    t.add_row({label, ms(r.latency_stats.latency.percentile(50)),
               ms(r.latency_stats.latency.percentile(99)), ms(r.latency_stats.latency.max()),
               TextTable::fmt(static_cast<double>(r.bulk_stats.commit.blocks) / r.seconds / 1e6, 3),
               TextTable::fmt(r.seconds, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double fifo_p99 = fifo.latency_stats.latency.percentile(99);
  const double prio_p99 = prio.latency_stats.latency.percentile(99);
  std::printf("latency-stream p99: %s ms (FIFO) -> %s ms (priority), %.1fx better\n",
              ms(fifo_p99).c_str(), ms(prio_p99).c_str(),
              prio_p99 > 0 ? fifo_p99 / prio_p99 : 0.0);
  std::printf("Priority preempts bulk at shard granularity, so the gap grows with the\n");
  std::printf("backlog; a 1-core host still reorders claims but overlaps nothing.\n\n");

  // Scheduling must never change results: FIFO and priority runs of the same
  // request sequence are byte-identical.
  if (!scenarios_identical(fifo, prio)) {
    std::printf("FATAL: priority scheduling changed per-request results\n");
    return 1;
  }

  // Serving determinism: the same scenario against a 1-thread engine.
  const ScenarioResult one = run_scenario(/*prioritize=*/true, 1, benchmark, scheme);
  const bool deterministic = scenarios_identical(one, prio);
  std::printf("per-stream results identical for 1 vs %u engine threads: %s\n", threads,
              deterministic ? "yes" : "NO");
  if (!deterministic) {
    std::printf("FATAL: serving results depend on the engine thread count\n");
    return 1;
  }
  // The gate requires a real win, not merely "not worse": a broken priority
  // path degenerates to FIFO (ratio ~1.0) and must fail. The measured effect
  // is an order of magnitude, so the 0.8 margin absorbs loaded-runner noise.
  if (prio_p99 >= fifo_p99 * 0.8) {
    std::printf("FATAL: priority scheduling did not beat FIFO for the latency stream\n");
    return 1;
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}

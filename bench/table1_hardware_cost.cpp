// Table I: frequency, area and power of the TSLC add-on hardware, from the
// analytic gate-count model (substituting the paper's Synopsys DC flow).
//
// Paper (32 nm): compressor 1.43 GHz / 0.0083 mm^2 / 1.62 mW;
// decompressor 0.80 GHz / 0.0003 mm^2 / 0.21 mW; overhead 0.0015% area and
// 0.0008% power of a GTX580; TSLC adds 5.6% of E2MC's area.
#include <cstdio>

#include "bench_util.h"
#include "hw/hw_model.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Table I — frequency, area and power of SLC",
               "Table I (Sec. III-H), analytic model vs paper's RTL synthesis");

  const HwModel model;
  const HwCost comp = model.compressor();
  const HwCost decomp = model.decompressor();

  TextTable t({"Unit", "Freq (GHz)", "Area (mm^2)", "Power (mW)", "Paper freq",
               "Paper area", "Paper power"});
  t.add_row({"Compressor", TextTable::fmt(comp.freq_ghz, 2), TextTable::fmt(comp.area_mm2, 5),
             TextTable::fmt(comp.power_mw, 3), "1.43", "0.00830", "1.620"});
  t.add_row({"Decompressor", TextTable::fmt(decomp.freq_ghz, 2),
             TextTable::fmt(decomp.area_mm2, 5), TextTable::fmt(decomp.power_mw, 3), "0.80",
             "0.00030", "0.210"});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("Tree geometry: %zu adder nodes, %zu comparators, %zu priority encoders\n",
              model.tree_adder_nodes(), model.comparator_count(),
              model.priority_encoder_count());
  std::printf("GTX580 overhead: area %.5f%% (paper 0.0015%%), power %.5f%% (paper 0.0008%%)\n",
              model.area_overhead_pct(), model.power_overhead_pct());

  // Sec. III-F scaling: the OPT extra nodes cost a few more adders.
  HwModelConfig base_cfg;
  base_cfg.extra_nodes = false;
  const HwModel base(base_cfg);
  const double delta =
      (model.compressor().area_mm2 / base.compressor().area_mm2 - 1.0) * 100.0;
  std::printf("TSLC-OPT extra nodes add %.1f%% compressor area over plain TSLC\n", delta);
  return 0;
}

// Ablation: lossy-threshold sweep (the paper fixes 16 B; Sec. IV-C leaves
// the threshold to the programmer). Sweeps 4..32 B at MAG 32 B with TSLC-OPT
// and reports the speedup/error trade-off per benchmark.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace slc;
using namespace slc::bench;

int main() {
  print_banner("Ablation — lossy threshold sweep",
               "extension of Sec. IV-C / Sec. V-A (paper threshold: 16 B)");

  const size_t mag = 32;
  const size_t thresholds[] = {4, 8, 16, 24, 32};
  const auto names = workload_names();

  TextTable sp({"Bench", "T=4B", "T=8B", "T=16B", "T=24B", "T=32B"});
  TextTable er({"Bench", "T=4B", "T=8B", "T=16B", "T=24B", "T=32B"});
  std::vector<double> gm_speedup[5];

  for (const std::string& name : names) {
    const FullRunResult base = full_run(name, "E2MC", mag, 16);
    std::vector<std::string> sp_cells = {name};
    std::vector<std::string> er_cells = {name};
    for (int t = 0; t < 5; ++t) {
      const FullRunResult r = full_run(name, "TSLC-OPT", mag, thresholds[t]);
      const double speedup =
          static_cast<double>(base.sim.cycles) / static_cast<double>(r.sim.cycles);
      gm_speedup[t].push_back(speedup);
      sp_cells.push_back(TextTable::fmt(speedup, 3));
      er_cells.push_back(TextTable::fmt(r.error_pct, 3) + "%");
    }
    sp.add_row(sp_cells);
    er.add_row(er_cells);
    std::printf("  [%s done]\n", name.c_str());
  }

  std::vector<std::string> gm_row = {"GM"};
  for (auto& v : gm_speedup) gm_row.push_back(TextTable::fmt(geometric_mean(v), 3));
  sp.add_row(gm_row);

  std::printf("\nSpeedup vs E2MC across thresholds:\n\n%s\n", sp.to_string().c_str());
  std::printf("Application error across thresholds:\n\n%s\n", er.to_string().c_str());
  std::printf("Larger thresholds approximate more blocks: more speedup, more error.\n");
  return 0;
}

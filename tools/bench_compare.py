#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on throughput regressions.

The JSON files are written by the bench drivers' --json mode
(bench/codec_throughput, bench/engine_throughput); every measurement row
carries (scheme, kernel, path) plus blocks_per_sec / gbps / p50_ms / p99_ms /
speedup. This tool joins the two files on (scheme, kernel, path) and exits
non-zero when the chosen metric regressed by more than the threshold on any
row — the machine-readable perf gate CI runs against a committed baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--metric M] [--threshold T]
    bench_compare.py --self-test

    --metric     blocks_per_sec (default) | gbps | speedup | p50_ms | p99_ms
    --threshold  allowed relative regression, default 0.15 (= 15%)
    --self-test  run the built-in sanity suite (CI invokes this so a broken
                 gate tool can never silently wave regressions through)

Every malformed-input failure exits non-zero and names the offending file:
missing or unparsable JSON, a non-object top level, a missing 'measurements'
array, non-object measurement rows, duplicate (scheme, kernel, path) keys,
and non-numeric metric values are all hard errors, never silent skips.

Metric semantics: for rate-like metrics (blocks_per_sec, gbps, speedup)
lower-than-baseline is a regression; for latency metrics (p50_ms, p99_ms)
higher-than-baseline is a regression. Rows whose baseline value is 0 are
skipped (e.g. `speedup` on scalar-path rows, where it is not applicable).
Rows present in only one of the two files — a measurement added to a driver
before the baseline refresh, or vice versa — are *reported* but do not fail
the comparison, so adding bench rows never breaks the gate; pass
--require-all to turn baseline rows missing from the current file back into
a failure. The same applies to a metric field present in only one side of a
joined row: reported, skipped, never a spurious 100% regression.

Notes for CI: absolute rates are machine-dependent, so gating a committed
baseline from a different machine on blocks_per_sec is noise — gate on
--metric speedup (batch kernel vs scalar loop on the *same* machine/run),
which transfers across hosts. Refresh the committed baseline from a CI
artifact, not a laptop, when kernels legitimately change.
"""

import argparse
import json
import sys

LATENCY_METRICS = {"p50_ms", "p99_ms"}
METRICS = ("blocks_per_sec", "gbps", "speedup", "p50_ms", "p99_ms")


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(doc, dict):
        sys.exit(f"error: {path}: top-level JSON is {type(doc).__name__}, "
                 f"expected an object with a 'measurements' array")
    rows = doc.get("measurements")
    if not isinstance(rows, list):
        sys.exit(f"error: {path} has no 'measurements' array")
    out = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            sys.exit(f"error: {path}: measurements[{i}] is "
                     f"{type(row).__name__}, expected an object")
        key = (row.get("scheme", "?"), row.get("kernel", "?"), row.get("path", "?"))
        if key in out:
            sys.exit(f"error: {path} has duplicate measurement {key}")
        out[key] = row
    meta = doc.get("meta")
    return doc.get("bench", "?"), out, meta if isinstance(meta, dict) else {}


def metric_value(path, row, name, metric):
    v = row.get(metric, 0.0)
    try:
        return float(v)
    except (TypeError, ValueError):
        sys.exit(f"error: {path}: measurement {name} has non-numeric "
                 f"{metric!r}: {v!r}")


def fmt_meta(meta):
    return ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))


def self_test():
    """Exercises the gate end-to-end in subprocesses: the pass/fail verdicts
    and every malformed-input error path (exit code + file named in the
    message). Returns 0 when all cases behave, 1 otherwise."""
    import os
    import subprocess
    import tempfile

    def run(argv):
        p = subprocess.run([sys.executable, os.path.abspath(__file__)] + argv,
                           capture_output=True, text=True)
        return p.returncode, p.stdout + p.stderr

    def row(bps=100.0, speedup=2.0):
        return {"scheme": "S", "kernel": "k", "path": "p",
                "blocks_per_sec": bps, "speedup": speedup}

    failures = 0
    with tempfile.TemporaryDirectory() as td:
        def write(name, content):
            path = os.path.join(td, name)
            with open(path, "w") as f:
                f.write(content)
            return path

        good = write("good.json", json.dumps({"bench": "t", "measurements": [row()]}))
        cases = [
            ("identical files pass",
             [good, good], 0, "OK: no"),
            ("regression beyond threshold fails",
             [good, write("slow.json",
                          json.dumps({"bench": "t", "measurements": [row(bps=50.0)]}))],
             1, "REGRESSION"),
            ("small regression within threshold passes",
             [good, write("near.json",
                          json.dumps({"bench": "t", "measurements": [row(bps=95.0)]})),
              "--threshold", "0.15"], 0, "OK: no"),
            ("baseline row missing from current fails under --require-all",
             [good, write("empty.json", json.dumps({"bench": "t", "measurements": []})),
              "--require-all"], 1, "missing"),
            ("missing file is a named error",
             [good, os.path.join(td, "absent.json")], "nonzero", "absent.json"),
            ("unparsable JSON names the file",
             [good, write("bad.json", "{not json")], "nonzero", "bad.json"),
            ("non-object top level rejected",
             [good, write("arr.json", "[1, 2]")], "nonzero", "expected an object"),
            ("non-object measurement row rejected",
             [good, write("rows.json", json.dumps({"measurements": [42]}))],
             "nonzero", "measurements[0]"),
            ("non-numeric metric value is a named error",
             [good, write("nan.json",
                          json.dumps({"bench": "t",
                                      "measurements": [dict(row(), blocks_per_sec="fast")]}))],
             "nonzero", "non-numeric"),
            ("duplicate measurement keys rejected",
             [good, write("dup.json", json.dumps({"bench": "t",
                                                  "measurements": [row(), row()]}))],
             "nonzero", "duplicate"),
        ]
        for desc, argv, want_code, want_text in cases:
            code, out = run(argv)
            code_ok = (code != 0) if want_code == "nonzero" else (code == want_code)
            if code_ok and want_text in out:
                print(f"PASS  {desc}")
            else:
                failures += 1
                print(f"FAIL  {desc}: exit={code} (wanted {want_code}), "
                      f"output missing {want_text!r}:\n{out}")
    if failures:
        print(f"\nself-test FAILED: {failures} case(s)")
        return 1
    print("\nself-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--metric", choices=METRICS, default="blocks_per_sec")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed relative regression (default 0.15 = 15%%)")
    ap.add_argument("--require-all", action="store_true",
                    help="fail when a baseline row is missing from the "
                         "current file (default: report and continue)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in sanity suite and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        ap.error("baseline and current files are required (or use --self-test)")

    base_name, base, base_meta = load(args.baseline)
    cur_name, cur, cur_meta = load(args.current)
    if base_name != cur_name:
        print(f"warning: comparing different benches: {base_name!r} vs {cur_name!r}")

    regressions, missing, one_sided, skipped = [], [], [], 0
    width = max((len("/".join(k)) for k in base), default=10)
    print(f"bench: {cur_name}   metric: {args.metric}   "
          f"threshold: {args.threshold:.0%}")
    # Host/kernel-variant provenance (simd_compiled, cpu_avx2, simd_active,
    # force_scalar_env, ...): which code path produced each file. A speedup
    # diff between an AVX2 baseline and a scalar current run (or vice versa)
    # is a variant change, not a regression — this line is how you tell.
    if base_meta:
        print(f"baseline meta: {fmt_meta(base_meta)}")
    if cur_meta:
        print(f"current  meta: {fmt_meta(cur_meta)}")
    print(f"{'measurement':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}")
    for key in sorted(base):
        name = "/".join(key)
        if key not in cur:
            missing.append(name)
            print(f"{name:<{width}}  {'-':>12}  {'MISSING':>12}  {'-':>8}")
            continue
        if (args.metric in base[key]) != (args.metric in cur[key]):
            # The metric exists on only one side of the join: comparing it
            # against an implicit 0 would read as a total regression (or a
            # free pass). Report and move on.
            one_sided.append(name)
            side = "baseline" if args.metric in base[key] else "current"
            print(f"{name:<{width}}  metric {args.metric!r} only in {side}; skipped")
            continue
        b = metric_value(args.baseline, base[key], name, args.metric)
        c = metric_value(args.current, cur[key], name, args.metric)
        if b == 0.0:
            skipped += 1
            continue
        if args.metric in LATENCY_METRICS:
            delta = (c - b) / b          # higher latency = worse
        else:
            delta = (b - c) / b          # lower rate = worse
        flag = ""
        if delta > args.threshold:
            regressions.append((name, b, c, delta))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>12.3f}  {c:>12.3f}  {delta:>7.1%}{flag}")

    extra = sorted("/".join(k) for k in cur if k not in base)
    if extra:
        print(f"note: {len(extra)} measurement(s) only in current: {', '.join(extra)}")
    if skipped:
        print(f"note: {skipped} row(s) skipped (baseline {args.metric} is 0 / not applicable)")
    if one_sided:
        print(f"note: {len(one_sided)} row(s) carry {args.metric!r} on only one side: "
              f"{', '.join(one_sided)}")

    if missing:
        verdict = "FAIL" if args.require_all else "note"
        print(f"\n{verdict}: {len(missing)} baseline measurement(s) missing from current: "
              f"{', '.join(missing)}")
        if args.require_all:
            return 1
    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) beyond {args.threshold:.0%} "
              f"on {args.metric}:")
        for name, b, c, delta in regressions:
            print(f"  {name}: {b:.3f} -> {c:.3f} ({delta:+.1%})")
        return 1
    print(f"\nOK: no {args.metric} regression beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Markdown lint + relative-link check for the repo's documentation.

Checked files: README.md, ROADMAP.md, CHANGES.md and everything under
docs/ (recursively). Generated reference dumps (PAPERS.md, SNIPPETS.md,
PAPER.md, ISSUE.md) are link-check *targets* but are not themselves linted.
No third-party dependencies — CI and local runs use the stock python3.

Rules:
  links    — every relative markdown link [text](target) must resolve to a
             file or directory in the repo; #anchors must match a heading in
             the target file (GitHub slug rules, best-effort).
  headings — exactly one H1 per file, and heading levels never jump by more
             than one (## -> #### is a lint error).
  tabs     — no hard tabs (markdown renderers disagree about them).

Exit status: 0 clean, 1 any finding (findings are listed one per line).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def md_files() -> list[Path]:
    files = [p for p in (REPO / n for n in ("README.md", "ROADMAP.md", "CHANGES.md"))
             if p.is_file()]
    docs = REPO / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (best-effort: ASCII, no dedup counters)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def parse(path: Path) -> tuple[list[tuple[int, str]], list[tuple[int, int, str]], list[int]]:
    """Returns (links, headings, hard_tab_lines); code fences are skipped."""
    links: list[tuple[int, str]] = []
    headings: list[tuple[int, int, str]] = []
    tabs: list[int] = []
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        if "\t" in line:
            tabs.append(lineno)
        m = HEADING_RE.match(line)
        if m:
            headings.append((lineno, len(m.group(1)), m.group(2)))
        for link in LINK_RE.finditer(line):
            links.append((lineno, link.group(1)))
    return links, headings, tabs


def check_file(path: Path, anchors_of: dict[Path, set[str]]) -> list[str]:
    findings: list[str] = []
    rel = path.relative_to(REPO)
    links, headings, tabs = parse(path)

    for lineno in tabs:
        findings.append(f"{rel}:{lineno}: hard tab")

    h1s = [h for h in headings if h[1] == 1]
    if len(h1s) != 1:
        findings.append(f"{rel}: expected exactly one H1, found {len(h1s)}")
    prev_level = 0
    for lineno, level, text in headings:
        if prev_level and level > prev_level + 1:
            findings.append(
                f"{rel}:{lineno}: heading level jumps from {prev_level} to {level} ({text!r})"
            )
        prev_level = level

    for lineno, target in links:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of[path]:
                findings.append(f"{rel}:{lineno}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        dest = (path.parent / file_part).resolve()
        if not dest.exists():
            findings.append(f"{rel}:{lineno}: broken link {target!r}")
            continue
        if not dest.is_relative_to(REPO):
            findings.append(f"{rel}:{lineno}: link escapes the repo {target!r}")
            continue
        if anchor:
            dest_anchors = anchors_of.get(dest)
            if dest_anchors is None and dest.suffix == ".md":
                dest_anchors = {slugify(h[2]) for h in parse(dest)[1]}
            if dest_anchors is not None and slugify(anchor) not in dest_anchors:
                findings.append(f"{rel}:{lineno}: broken anchor {target!r}")
    return findings


def main() -> int:
    files = md_files()
    anchors_of = {p: {slugify(h[2]) for h in parse(p)[1]} for p in files}
    findings: list[str] = []
    for path in files:
        findings += check_file(path, anchors_of)
    for f in findings:
        print(f)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not findings else f'{len(findings)} finding(s)'}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

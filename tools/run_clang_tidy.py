#!/usr/bin/env python3
"""Run clang-tidy over the project's own sources, in parallel, as a gate.

Reads compile_commands.json from the build directory (exported
unconditionally by CMakeLists.txt), keeps the entries under src/ — tests,
bench drivers and examples are exercised by the test tiers, not tidied —
and fails with a non-zero exit code if any check fires. The check set and
WarningsAsErrors policy live in .clang-tidy at the repo root.

Usage:
    python3 tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                                    [--clang-tidy clang-tidy-18] [files...]

Positional `files` (repo-relative or absolute) restrict the run to matching
database entries — handy to iterate on one translation unit.

Suppressing a finding inline: append `// NOLINT(check-name)` to the line
(or put `NOLINTNEXTLINE(check-name)` at the end of the comment line above)
together with a short reason. Bare NOLINT without a named check or a reason
does not pass review; .clang-tidy documents the project-wide disables.
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def find_clang_tidy(explicit):
    candidates = [explicit] if explicit else []
    candidates += [os.environ.get("CLANG_TIDY"), "clang-tidy"]
    candidates += [f"clang-tidy-{v}" for v in range(21, 13, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return c
    sys.exit("run_clang_tidy.py: no clang-tidy binary found "
             "(pass --clang-tidy or set CLANG_TIDY)")


def load_entries(build_dir, only):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        sys.exit(f"run_clang_tidy.py: {db_path} not found — configure the "
                 "build first (CMAKE_EXPORT_COMPILE_COMMANDS is always on)")
    with open(db_path) as f:
        database = json.load(f)
    src_prefix = os.path.join(REPO_ROOT, "src") + os.sep
    files = []
    for entry in database:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if not path.startswith(src_prefix):
            continue
        if only and not any(path.endswith(o) for o in only):
            continue
        files.append(path)
    return db_path, sorted(set(files))


def tidy_one(binary, db_path, path):
    proc = subprocess.run(
        [binary, "-p", os.path.dirname(db_path), "--quiet", path],
        capture_output=True, text=True)
    # clang-tidy writes findings to stdout; stderr carries the noisy
    # "N warnings generated" tallies plus real driver errors, so keep stderr
    # only when the run itself failed.
    out = proc.stdout.strip()
    if proc.returncode != 0 and not out:
        out = proc.stderr.strip()
    return path, proc.returncode, out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--clang-tidy", default=None)
    ap.add_argument("files", nargs="*")
    args = ap.parse_args()

    binary = find_clang_tidy(args.clang_tidy)
    db_path, files = load_entries(args.build_dir, args.files)
    if not files:
        sys.exit("run_clang_tidy.py: no src/ entries matched")
    print(f"{binary}: {len(files)} translation units, {args.jobs} jobs")

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(tidy_one, binary, db_path, f) for f in files]
        for fut in concurrent.futures.as_completed(futures):
            path, rc, out = fut.result()
            rel = os.path.relpath(path, REPO_ROOT)
            if rc != 0:
                failures += 1
                print(f"FAIL {rel}\n{out}\n")
            else:
                print(f"  ok {rel}")
    if failures:
        sys.exit(f"run_clang_tidy.py: {failures} of {len(files)} files "
                 "have findings")
    print(f"clang-tidy clean: {len(files)} files")


if __name__ == "__main__":
    main()

// Fingerprint-cache suite: unit coverage of the content-addressed decision
// memo (core/fingerprint_cache.h) plus the differential fuzz harness that
// pins its one non-negotiable property — a cached run is byte-identical to
// an uncached run of the same stream. The fuzz streams come from
// test::dedup_corpus: seeded mixes of fresh random / value-similar blocks,
// verbatim duplicates, one-byte near-duplicates and zero pages, replayed
// through cached and uncached codecs at every layer (SlcCodec, BlockCodec,
// engine commits, server streams) and at 1 and N threads.
//
// Hit/miss/eviction *counters* are not part of the determinism contract
// (see CacheCounters), so decision checks use CommitStats::same_decisions.
// Tests that assert cache effects (hits, evictions) skip themselves when
// SLC_FINGERPRINT_CACHE force-disables the memo — the differential checks
// still run and must pass trivially in that configuration.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "compress/block_codec.h"
#include "compress/codec_registry.h"
#include "core/fingerprint_cache.h"
#include "core/slc_codec.h"
#include "engine/codec_engine.h"
#include "server/codec_server.h"
#include "test_util.h"
#include "workloads/approx_memory.h"

namespace slc {
namespace {

const std::vector<uint8_t>& shared_training() {
  static const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  return training;
}

std::shared_ptr<const E2mcCompressor> shared_model() {
  static const std::shared_ptr<const E2mcCompressor> model =
      E2mcCompressor::train(shared_training(), E2mcConfig{});
  return model;
}

SlcCodec make_slc(std::shared_ptr<FingerprintCache> cache, size_t threshold_bytes = 16,
                  SlcVariant variant = SlcVariant::kOpt) {
  SlcConfig cfg;
  cfg.mag_bytes = 32;
  cfg.threshold_bytes = threshold_bytes;
  cfg.variant = variant;
  cfg.cache = std::move(cache);
  return SlcCodec(shared_model(), cfg);
}

CodecOptions cached_options(std::shared_ptr<FingerprintCache> cache) {
  CodecOptions opts = test::test_options(shared_training());
  opts.trained_e2mc = shared_model();
  opts.fingerprint_cache = std::move(cache);
  return opts;
}

std::vector<BlockView> views_of(const std::vector<Block>& blocks) {
  std::vector<BlockView> v;
  v.reserve(blocks.size());
  for (const Block& b : blocks) v.push_back(b.view());
  return v;
}

struct NamedCorpus {
  const char* name;
  std::vector<Block> blocks;
};

/// The adversarial stream mix every differential test replays: heavy
/// duplication, one-byte near-duplicates, zero pages, and an all-fresh
/// control stream.
std::vector<NamedCorpus> fuzz_corpora() {
  std::vector<NamedCorpus> out;
  out.push_back({"dup-heavy", test::dedup_corpus({.blocks = 192,
                                                  .dup_fraction = 0.55,
                                                  .flip_fraction = 0.05,
                                                  .zero_fraction = 0.05,
                                                  .seed = 11})});
  out.push_back({"near-duplicates", test::dedup_corpus({.blocks = 192,
                                                        .dup_fraction = 0.15,
                                                        .flip_fraction = 0.55,
                                                        .zero_fraction = 0.0,
                                                        .seed = 12})});
  out.push_back({"zero-pages", test::dedup_corpus({.blocks = 128,
                                                   .dup_fraction = 0.1,
                                                   .flip_fraction = 0.1,
                                                   .zero_fraction = 0.6,
                                                   .seed = 13})});
  out.push_back({"all-fresh", test::dedup_corpus({.blocks = 128, .seed = 14})});
  return out;
}

void expect_info_eq(const SlcEncodeInfo& a, const SlcEncodeInfo& b, const std::string& what) {
  EXPECT_EQ(a.lossy, b.lossy) << what;
  EXPECT_EQ(a.stored_uncompressed, b.stored_uncompressed) << what;
  EXPECT_EQ(a.lossless_bits, b.lossless_bits) << what;
  EXPECT_EQ(a.final_bits, b.final_bits) << what;
  EXPECT_EQ(a.bursts, b.bursts) << what;
  EXPECT_EQ(a.truncated_symbols, b.truncated_symbols) << what;
  EXPECT_EQ(a.truncated_bits, b.truncated_bits) << what;
  EXPECT_EQ(a.extra_bits, b.extra_bits) << what;
}

void expect_result_eq(const BlockCodecResult& a, const BlockCodecResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.bursts, b.bursts) << what;
  EXPECT_EQ(a.lossless_bits, b.lossless_bits) << what;
  EXPECT_EQ(a.final_bits, b.final_bits) << what;
  EXPECT_EQ(a.lossy, b.lossy) << what;
  EXPECT_EQ(a.stored_uncompressed, b.stored_uncompressed) << what;
  EXPECT_EQ(a.truncated_symbols, b.truncated_symbols) << what;
  EXPECT_EQ(a.decoded, b.decoded) << what;
  // The cache_* outcome flags are deliberately NOT compared: hit-rate
  // bookkeeping, never part of the determinism contract.
}

SlcCodec::Decision arbitrary_decision(size_t tag) {
  SlcCodec::Decision d;
  d.info.final_bits = 100 + tag;
  d.info.bursts = 1 + tag % 4;
  d.info.lossy = (tag % 2) != 0;
  d.skip_start = tag;
  d.skip_count = tag * 2;
  return d;
}

// --- block_fingerprint ------------------------------------------------------

TEST(BlockFingerprint, EqualContentEqualFingerprint) {
  const auto corpus = test::dedup_corpus({.blocks = 8, .seed = 3});
  for (const Block& b : corpus) {
    const Block copy = b;
    EXPECT_EQ(block_fingerprint(b.bytes()), block_fingerprint(copy.bytes()));
  }
}

TEST(BlockFingerprint, EveryByteFlipChangesFingerprint) {
  const Block base = test::dedup_corpus({.blocks = 1, .seed = 5})[0];
  const uint64_t fp = block_fingerprint(base.bytes());
  for (size_t pos = 0; pos < kBlockBytes; ++pos) {
    Block mutated = base;
    mutated.mutable_bytes()[pos] ^= 0x01;
    EXPECT_NE(block_fingerprint(mutated.bytes()), fp) << "byte " << pos;
  }
}

TEST(BlockFingerprint, PrefixLengthsHashDistinctly) {
  // Tail handling (8/4/1-byte remainders) must feed the final mix: every
  // prefix of one block, including the empty one, hashes distinctly.
  const Block base = test::dedup_corpus({.blocks = 1, .seed = 6})[0];
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= kBlockBytes; ++len)
    seen.insert(block_fingerprint(base.bytes().subspan(0, len)));
  EXPECT_EQ(seen.size(), kBlockBytes + 1);
}

// --- FingerprintCache unit behaviour ----------------------------------------

TEST(FingerprintCache, InsertThenLookupRoundTripsTheDecision) {
  FingerprintCache cache;
  const SlcCodec::Decision in = arbitrary_decision(9);
  const Block b = test::dedup_corpus({.blocks = 1, .seed = 8})[0];
  EXPECT_FALSE(cache.insert(1, 42, b.bytes(), in));
  SlcCodec::Decision out;
  EXPECT_EQ(cache.lookup(1, 42, b.bytes(), out), FingerprintCache::Lookup::kHit);
  expect_info_eq(out.info, in.info, "roundtrip");
  EXPECT_EQ(out.skip_start, in.skip_start);
  EXPECT_EQ(out.skip_count, in.skip_count);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(FingerprintCache, LruEvictsTheColdestEntry) {
  FingerprintCache cache({.capacity = 4, .shards = 1, .verify_on_hit = false});
  ASSERT_EQ(cache.capacity(), 4u);
  const Block b;
  for (uint64_t fp = 0; fp < 4; ++fp)
    EXPECT_FALSE(cache.insert(1, fp, b.bytes(), arbitrary_decision(fp)));
  // Touch fp=0 so fp=1 becomes the LRU victim.
  SlcCodec::Decision d;
  EXPECT_EQ(cache.lookup(1, 0, b.bytes(), d), FingerprintCache::Lookup::kHit);
  EXPECT_TRUE(cache.insert(1, 99, b.bytes(), arbitrary_decision(99)));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.lookup(1, 1, b.bytes(), d), FingerprintCache::Lookup::kMiss);
  EXPECT_EQ(cache.lookup(1, 0, b.bytes(), d), FingerprintCache::Lookup::kHit);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(FingerprintCache, ReinsertRefreshesWithoutEvicting) {
  FingerprintCache cache({.capacity = 2, .shards = 1, .verify_on_hit = false});
  const Block b;
  EXPECT_FALSE(cache.insert(1, 7, b.bytes(), arbitrary_decision(1)));
  EXPECT_FALSE(cache.insert(1, 7, b.bytes(), arbitrary_decision(2)));  // refresh, no growth
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().evictions, 0u);
  SlcCodec::Decision d;
  EXPECT_EQ(cache.lookup(1, 7, b.bytes(), d), FingerprintCache::Lookup::kHit);
  EXPECT_EQ(d.info.final_bits, arbitrary_decision(2).info.final_bits);  // last writer wins
}

TEST(FingerprintCache, VerifyOnHitCatchesCollision) {
  FingerprintCache cache({.capacity = 8, .shards = 1, .verify_on_hit = true});
  ASSERT_TRUE(cache.verify_on_hit());
  const auto corpus = test::dedup_corpus({.blocks = 2, .seed = 21});
  cache.insert(1, 5, corpus[0].bytes(), arbitrary_decision(0));
  SlcCodec::Decision d;
  // Same (key, fp), different content: a forced 64-bit collision. Must be
  // reported, never served.
  EXPECT_EQ(cache.lookup(1, 5, corpus[1].bytes(), d), FingerprintCache::Lookup::kCollision);
  EXPECT_EQ(cache.counters().collisions, 1u);
  EXPECT_EQ(cache.lookup(1, 5, corpus[0].bytes(), d), FingerprintCache::Lookup::kHit);
}

TEST(FingerprintCache, ShardIndexStaysInRangeAndSingleShardPinsToZero) {
  FingerprintCache sharded({.capacity = 64, .shards = 8, .verify_on_hit = false});
  EXPECT_EQ(sharded.num_shards(), 8u);
  FingerprintCache single({.capacity = 64, .shards = 1, .verify_on_hit = false});
  Rng rng(31);
  for (int i = 0; i < 256; ++i) {
    const uint64_t key = rng.next(), fp = rng.next();
    EXPECT_LT(sharded.shard_index(key, fp), sharded.num_shards());
    EXPECT_EQ(single.shard_index(key, fp), 0u);
  }
}

TEST(FingerprintCache, ShardCountRoundsUpToPowerOfTwo) {
  FingerprintCache cache({.capacity = 60, .shards = 6, .verify_on_hit = false});
  EXPECT_EQ(cache.num_shards(), 8u);
  EXPECT_EQ(cache.capacity(), 8u * (60 / 8));
}

TEST(FingerprintCache, ClearDropsEntriesKeepsCounters) {
  FingerprintCache cache;
  const Block b;
  cache.insert(1, 3, b.bytes(), arbitrary_decision(3));
  SlcCodec::Decision d;
  cache.lookup(1, 3, b.bytes(), d);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1, 3, b.bytes(), d), FingerprintCache::Lookup::kMiss);
  EXPECT_EQ(cache.counters().hits, 1u);  // totals survive clear()
}

// Shard selection and eviction under concurrent mixed hit/miss traffic with
// verify-on-hit enabled (the ASan and TSan CI tiers both run this). Shard
// pinning via shard_index makes the assertions deterministic even under
// racing LRU churn: hot keys live alone in shard 0 (fewer keys than the
// shard holds, so they are never evicted and every post-populate probe must
// hit), while per-thread disjoint cold sets oversubscribe the other shards
// to force insert/evict churn.
TEST(FingerprintCache, ConcurrentMixedHitMissTrafficWithVerifyOnHit) {
  FingerprintCache cache({.capacity = 64, .shards = 4, .verify_on_hit = true});
  ASSERT_EQ(cache.num_shards(), 4u);
  const size_t per_shard = cache.capacity() / cache.num_shards();

  // Deterministic content and decision per fingerprint, so a verified hit
  // can be checked against exactly what the inserter stored, and honest
  // content can never trip the verify-on-hit collision path.
  const auto block_for = [](uint64_t fp) {
    Block b;
    auto bytes = b.mutable_bytes();
    for (size_t i = 0; i < bytes.size(); ++i)
      bytes[i] = static_cast<uint8_t>((fp * 0x9E3779B97F4A7C15ull + i * 0x85EBCA77ull) >> 32);
    return b;
  };

  constexpr uint64_t kKey = 7;
  std::vector<uint64_t> hot;
  for (uint64_t fp = 0; hot.size() < per_shard / 2; ++fp)
    if (cache.shard_index(kKey, fp) == 0) hot.push_back(fp);
  constexpr unsigned kThreads = 4;
  std::vector<std::vector<uint64_t>> cold(kThreads);
  uint64_t next_fp = 1'000'000;
  for (unsigned t = 0; t < kThreads; ++t)
    while (cold[t].size() < 4 * per_shard)
      if (cache.shard_index(kKey, ++next_fp) != 0) cold[t].push_back(next_fp);

  for (const uint64_t fp : hot)
    EXPECT_FALSE(cache.insert(kKey, fp, block_for(fp).bytes(), arbitrary_decision(fp)));

  std::atomic<size_t> bad_decisions{0}, missed_hot{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t)
    workers.emplace_back([&, t] {
      for (int iter = 0; iter < 40; ++iter) {
        for (const uint64_t fp : cold[t]) {
          SlcCodec::Decision d;
          const auto r = cache.lookup(kKey, fp, block_for(fp).bytes(), d);
          if (r == FingerprintCache::Lookup::kHit &&
              d.info.final_bits != arbitrary_decision(fp).info.final_bits)
            bad_decisions.fetch_add(1);
          if (r == FingerprintCache::Lookup::kMiss)
            cache.insert(kKey, fp, block_for(fp).bytes(), arbitrary_decision(fp));
        }
        for (const uint64_t fp : hot) {
          SlcCodec::Decision d;
          if (cache.lookup(kKey, fp, block_for(fp).bytes(), d) != FingerprintCache::Lookup::kHit)
            missed_hot.fetch_add(1);
          else if (d.skip_start != arbitrary_decision(fp).skip_start ||
                   d.info.final_bits != arbitrary_decision(fp).info.final_bits)
            bad_decisions.fetch_add(1);
        }
      }
    });
  for (auto& w : workers) w.join();

  EXPECT_EQ(bad_decisions.load(), 0u);
  EXPECT_EQ(missed_hot.load(), 0u);
  EXPECT_LE(cache.size(), cache.capacity());
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.collisions, 0u);  // content always matches its fingerprint here
  EXPECT_GT(c.evictions, 0u);   // the cold sets oversubscribe their shards
  EXPECT_EQ(c.probes(), c.hits + c.misses);
}

TEST(FingerprintCache, RuntimeEnabledMatchesEnvironment) {
  // The CI job that sets SLC_FINGERPRINT_CACHE=0 relies on this mapping to
  // force the uncached oracle path through the whole suite.
  const char* v = std::getenv("SLC_FINGERPRINT_CACHE");
  const std::string s = v ? v : "";
  const bool disabled = (s == "0" || s == "off" || s == "OFF");
  EXPECT_EQ(FingerprintCache::runtime_enabled(), !disabled);
}

// --- SlcCodec-level differential --------------------------------------------

TEST(CachedDecision, CodecKeysIsolateConfigurationsAndModels) {
  if (!FingerprintCache::runtime_enabled()) GTEST_SKIP() << "cache force-disabled";
  auto cache = std::make_shared<FingerprintCache>();
  const SlcCodec a = make_slc(cache, /*threshold=*/16);
  const SlcCodec b = make_slc(cache, /*threshold=*/4);
  ASSERT_NE(a.cache_key(), b.cache_key());
  // A second model trained on the same sample is still a distinct key —
  // identity is the model instance, not its contents.
  SlcConfig cfg;
  cfg.mag_bytes = 32;
  cfg.cache = cache;
  const SlcCodec c(E2mcCompressor::train(shared_training(), E2mcConfig{}), cfg);
  ASSERT_NE(c.cache_key(), a.cache_key());

  const Block block = test::dedup_corpus({.blocks = 1, .seed = 40})[0];
  SlcCodec::CacheOutcome oc;
  a.analyze(block.view(), oc);
  EXPECT_TRUE(oc.probed);
  EXPECT_FALSE(oc.hit);
  a.analyze(block.view(), oc);
  EXPECT_TRUE(oc.hit);  // repeat through the same codec hits
  b.analyze(block.view(), oc);
  EXPECT_FALSE(oc.hit);  // different threshold: separate entry
  c.analyze(block.view(), oc);
  EXPECT_FALSE(oc.hit);  // different trained model: separate entry
}

TEST(CachedDecision, AnalyzeMatchesUncachedForEveryVariantAndStream) {
  for (const auto& [cname, blocks] : fuzz_corpora()) {
    const auto views = views_of(blocks);
    for (const SlcVariant variant : {SlcVariant::kSimp, SlcVariant::kPred, SlcVariant::kOpt}) {
      for (const size_t threshold : {size_t{16}, size_t{4}}) {
        const SlcCodec uncached = make_slc(nullptr, threshold, variant);
        const SlcCodec cached = make_slc(std::make_shared<FingerprintCache>(), threshold, variant);
        std::vector<SlcEncodeInfo> expected(views.size());
        uncached.analyze_batch(views, expected.data());
        // Two passes: pass 0 populates (misses + in-span twins), pass 1 is
        // served from the memo; both must reproduce the oracle exactly.
        for (int pass = 0; pass < 2; ++pass) {
          std::vector<SlcEncodeInfo> got(views.size());
          cached.analyze_batch(views, got.data());
          for (size_t i = 0; i < views.size(); ++i)
            expect_info_eq(got[i], expected[i],
                           std::string(cname) + " variant " + to_string(variant) + " thr " +
                               std::to_string(threshold) + " pass " + std::to_string(pass) +
                               " block " + std::to_string(i));
        }
        if (FingerprintCache::runtime_enabled()) {
          EXPECT_GE(cached.cache()->counters().hits, views.size())
              << cname << " second pass should be all hits";
        }
      }
    }
  }
}

TEST(CachedDecision, DecideCachedMatchesBatchOracleIncludingSkipWindow) {
  const auto blocks = test::dedup_corpus(
      {.blocks = 160, .dup_fraction = 0.4, .flip_fraction = 0.3, .zero_fraction = 0.1, .seed = 51});
  const auto views = views_of(blocks);
  const SlcCodec uncached = make_slc(nullptr, /*threshold=*/16);
  const SlcCodec cached = make_slc(std::make_shared<FingerprintCache>(), /*threshold=*/16);
  SlcCodec::LengthScratch scratch;
  std::vector<SlcCodec::Decision> expected(views.size());
  uncached.decide_batch(views, scratch, expected.data());
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < views.size(); ++i) {
      SlcCodec::CacheOutcome oc;
      const SlcCodec::Decision got = cached.decide_cached(views[i], oc);
      const std::string what = "pass " + std::to_string(pass) + " block " + std::to_string(i);
      expect_info_eq(got.info, expected[i].info, what);
      EXPECT_EQ(got.skip_start, expected[i].skip_start) << what;
      EXPECT_EQ(got.skip_count, expected[i].skip_count) << what;
    }
  }
}

TEST(CachedDecision, EvictionChurnNeverChangesDecisions) {
  // A cache far smaller than the stream: every block cycles through insert/
  // evict, and duplicates straddle eviction boundaries. Decisions must not
  // care.
  const auto blocks = test::dedup_corpus(
      {.blocks = 384, .dup_fraction = 0.5, .flip_fraction = 0.2, .zero_fraction = 0.1, .seed = 52});
  const auto views = views_of(blocks);
  const SlcCodec uncached = make_slc(nullptr);
  auto tiny = std::make_shared<FingerprintCache>(
      FingerprintCache::Config{.capacity = 8, .shards = 1, .verify_on_hit = false});
  const SlcCodec cached = make_slc(tiny);
  std::vector<SlcEncodeInfo> expected(views.size()), got(views.size());
  uncached.analyze_batch(views, expected.data());
  cached.analyze_batch(views, got.data());
  for (size_t i = 0; i < views.size(); ++i)
    expect_info_eq(got[i], expected[i], "block " + std::to_string(i));
  if (FingerprintCache::runtime_enabled()) {
    EXPECT_GT(tiny->counters().evictions, 0u) << "stream was sized to churn the cache";
  }
}

TEST(CachedDecision, VerifyOnHitModeStaysIdenticalOnNearDuplicates) {
  const auto blocks = test::dedup_corpus(
      {.blocks = 256, .dup_fraction = 0.3, .flip_fraction = 0.5, .zero_fraction = 0.05, .seed = 53});
  const auto views = views_of(blocks);
  const SlcCodec uncached = make_slc(nullptr);
  auto paranoid = std::make_shared<FingerprintCache>(
      FingerprintCache::Config{.capacity = 1024, .shards = 1, .verify_on_hit = true});
  const SlcCodec cached = make_slc(paranoid);
  std::vector<SlcEncodeInfo> expected(views.size()), got(views.size());
  uncached.analyze_batch(views, expected.data());
  cached.analyze_batch(views, got.data());
  for (size_t i = 0; i < views.size(); ++i)
    expect_info_eq(got[i], expected[i], "block " + std::to_string(i));
  // One-byte neighbours must never verify as each other's content.
  EXPECT_EQ(paranoid->counters().collisions, 0u);
}

// --- BlockCodec-level differential (satellite: registry-wide sweep) ---------

TEST(BlockCodecDifferential, TslcProcessAndBatchMatchUncached) {
  struct Annotation {
    bool safe;
    size_t threshold;
  };
  const Annotation annotations[] = {{false, 16}, {true, 16}, {true, 4}, {true, 64}, {true, 0}};
  for (const auto& [cname, blocks] : fuzz_corpora()) {
    const auto views = views_of(blocks);
    const auto uncached =
        CodecRegistry::instance().create_block_codec("TSLC-OPT", cached_options(nullptr));
    const auto cached = CodecRegistry::instance().create_block_codec(
        "TSLC-OPT", cached_options(std::make_shared<FingerprintCache>()));
    for (const auto& [safe, threshold] : annotations) {
      std::vector<BlockCodecResult> expected(views.size()), got(views.size());
      uncached->process_batch(views, safe, threshold, expected.data());
      cached->process_batch(views, safe, threshold, got.data());
      for (size_t i = 0; i < views.size(); ++i) {
        const std::string what = std::string(cname) + " safe=" + std::to_string(safe) +
                                 " thr=" + std::to_string(threshold) + " block " +
                                 std::to_string(i);
        expect_result_eq(got[i], expected[i], what);
        // The scalar entry point must agree with both batch kernels.
        expect_result_eq(cached->process(views[i], safe, threshold), expected[i],
                         what + " (scalar)");
      }
    }
  }
}

TEST(BlockCodecDifferential, RegistrySweepEverySchemeCachedVsUncached) {
  // Satellite property sweep: for every registered scheme and every
  // (safe, threshold) annotation, attaching a fingerprint cache must be
  // invisible in the output. Lossless schemes ignore the cache entirely;
  // the TSLC variants route their decision through it.
  struct Annotation {
    bool safe;
    size_t threshold;
  };
  const Annotation annotations[] = {{false, 16}, {true, 16}, {true, 4}, {true, 0}};
  const auto corpora = fuzz_corpora();
  for (const std::string& name : CodecRegistry::instance().names()) {
    const auto uncached =
        CodecRegistry::instance().create_block_codec(name, cached_options(nullptr));
    const auto cached = CodecRegistry::instance().create_block_codec(
        name, cached_options(std::make_shared<FingerprintCache>()));
    for (const auto& [cname, blocks] : corpora) {
      const auto views = views_of(blocks);
      for (const auto& [safe, threshold] : annotations) {
        std::vector<BlockCodecResult> expected(views.size()), got(views.size());
        uncached->process_batch(views, safe, threshold, expected.data());
        cached->process_batch(views, safe, threshold, got.data());
        for (size_t i = 0; i < views.size(); ++i)
          expect_result_eq(got[i], expected[i],
                           name + " " + cname + " safe=" + std::to_string(safe) +
                               " thr=" + std::to_string(threshold) + " block " +
                               std::to_string(i));
      }
    }
  }
}

// --- engine / commit-level differential -------------------------------------

struct CommitOutcome {
  std::vector<uint8_t> image;
  CommitStats stats;
};

CommitOutcome run_commit(const std::vector<uint8_t>& bytes,
                         std::shared_ptr<const BlockCodec> codec,
                         std::shared_ptr<CodecEngine> engine) {
  ApproxMemory mem;
  mem.set_engine(std::move(engine));
  mem.set_codec(std::move(codec));
  const RegionId r = mem.alloc("fuzz", bytes.size(), /*safe=*/true, 16);
  auto dst = mem.span<uint8_t>(r);
  std::copy(bytes.begin(), bytes.end(), dst.begin());
  mem.commit(r);
  CommitOutcome out;
  const auto img = mem.span<const uint8_t>(r);
  out.image.assign(img.begin(), img.end());
  out.stats = mem.stats();
  return out;
}

TEST(EngineCache, CommitsMatchUncachedAtEveryThreadCount) {
  for (const auto& [cname, blocks] : fuzz_corpora()) {
    const auto bytes = test::corpus_bytes(blocks);
    const CommitOutcome reference =
        run_commit(bytes, CodecRegistry::instance().create_block_codec(
                              "TSLC-OPT", cached_options(nullptr)),
                   nullptr);  // inline, single-threaded, uncached: the oracle
    for (const unsigned threads : {1u, 4u}) {
      auto cache = std::make_shared<FingerprintCache>();
      const CommitOutcome cached = run_commit(
          bytes, CodecRegistry::instance().create_block_codec("TSLC-OPT", cached_options(cache)),
          std::make_shared<CodecEngine>(threads));
      EXPECT_EQ(cached.image, reference.image) << cname << " threads=" << threads;
      EXPECT_TRUE(cached.stats.same_decisions(reference.stats))
          << cname << " threads=" << threads;
      if (FingerprintCache::runtime_enabled()) {
        EXPECT_EQ(cached.stats.cache.probes(), cached.stats.blocks)
            << cname << " every committed block must be probed";
      }
    }
  }
}

TEST(EngineCache, RepeatTrafficHitsTheMemo) {
  if (!FingerprintCache::runtime_enabled()) GTEST_SKIP() << "cache force-disabled";
  const auto bytes =
      test::corpus_bytes(test::dedup_corpus({.blocks = 128, .seed = 61}));
  auto cache = std::make_shared<FingerprintCache>();
  ApproxMemory mem;
  mem.set_engine(nullptr);
  mem.set_codec(CodecRegistry::instance().create_block_codec("TSLC-OPT", cached_options(cache)));
  const RegionId a = mem.alloc("a", bytes.size(), true, 16);
  const RegionId b = mem.alloc("b", bytes.size(), true, 16);
  for (const RegionId r : {a, b}) {
    auto dst = mem.span<uint8_t>(r);
    std::copy(bytes.begin(), bytes.end(), dst.begin());
  }
  mem.commit(a);
  mem.commit(b);  // identical initial contents: every block was just decided
  const CommitStats sb = mem.region_stats(b);
  EXPECT_EQ(sb.cache.hits, sb.blocks);
  EXPECT_EQ(sb.cache.hit_rate(), 1.0);
}

TEST(EngineCache, AnalyzeStreamFoldsCacheCounters) {
  const auto blocks = test::dedup_corpus(
      {.blocks = 200, .dup_fraction = 0.4, .flip_fraction = 0.1, .zero_fraction = 0.1, .seed = 62});
  auto cache = std::make_shared<FingerprintCache>();
  const auto cached = CodecRegistry::instance().create("TSLC-OPT", cached_options(cache));
  const auto uncached = CodecRegistry::instance().create("TSLC-OPT", cached_options(nullptr));
  CodecEngine engine(2);
  const auto expected = engine.analyze_stream(*uncached, blocks);
  const auto first = engine.analyze_stream(*cached, blocks);
  const auto second = engine.analyze_stream(*cached, blocks);
  ASSERT_EQ(first.blocks.size(), expected.blocks.size());
  for (size_t i = 0; i < expected.blocks.size(); ++i) {
    for (const auto* a : {&first, &second}) {
      EXPECT_EQ(a->blocks[i].bit_size, expected.blocks[i].bit_size) << i;
      EXPECT_EQ(a->blocks[i].lossy, expected.blocks[i].lossy) << i;
      EXPECT_EQ(a->blocks[i].truncated_symbols, expected.blocks[i].truncated_symbols) << i;
    }
  }
  EXPECT_EQ(expected.cache.probes(), 0u);  // uncached codec never probes
  if (FingerprintCache::runtime_enabled()) {
    EXPECT_EQ(first.cache.probes(), blocks.size());
    EXPECT_EQ(second.cache.hits, blocks.size());  // the whole stream repeats
  }
}

TEST(EngineCache, SharedCacheConcurrentCommitsStayDeterministic) {
  // The concurrency regression: N harness threads, each with its own
  // ApproxMemory, committing interleaved duplicate (shared corpus) and
  // unique (per-thread corpus) regions through ONE engine and ONE shared
  // fingerprint cache. Every thread must reproduce the single-threaded
  // uncached reference bit for bit, and no probe may be lost.
  constexpr unsigned kThreads = 4;
  const auto shared_blocks = test::dedup_corpus(
      {.blocks = 256, .dup_fraction = 0.5, .flip_fraction = 0.1, .zero_fraction = 0.1, .seed = 71});
  const auto shared_bytes = test::corpus_bytes(shared_blocks);
  const auto uncached_codec =
      CodecRegistry::instance().create_block_codec("TSLC-OPT", cached_options(nullptr));
  const CommitOutcome shared_ref = run_commit(shared_bytes, uncached_codec, nullptr);

  std::vector<std::vector<uint8_t>> unique_bytes(kThreads);
  std::vector<CommitOutcome> unique_ref(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    unique_bytes[t] =
        test::corpus_bytes(test::dedup_corpus({.blocks = 128, .seed = 100 + t}));
    unique_ref[t] = run_commit(unique_bytes[t], uncached_codec, nullptr);
  }

  auto engine = std::make_shared<CodecEngine>(kThreads);
  auto cache = std::make_shared<FingerprintCache>();
  const auto cached_codec =
      CodecRegistry::instance().create_block_codec("TSLC-OPT", cached_options(cache));

  std::vector<CommitOutcome> shared_got(kThreads), unique_got(kThreads);
  {
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        ApproxMemory mem;
        mem.set_engine(engine);
        mem.set_codec(cached_codec);
        const RegionId dup = mem.alloc("dup", shared_bytes.size(), true, 16);
        const RegionId uniq = mem.alloc("uniq", unique_bytes[t].size(), true, 16);
        {
          auto d = mem.span<uint8_t>(dup);
          std::copy(shared_bytes.begin(), shared_bytes.end(), d.begin());
          auto u = mem.span<uint8_t>(uniq);
          std::copy(unique_bytes[t].begin(), unique_bytes[t].end(), u.begin());
        }
        mem.commit_async(dup);  // both regions in flight at once
        mem.commit_async(uniq);
        mem.flush();
        const auto di = mem.span<const uint8_t>(dup);
        shared_got[t].image.assign(di.begin(), di.end());
        shared_got[t].stats = mem.region_stats(dup);
        const auto ui = mem.span<const uint8_t>(uniq);
        unique_got[t].image.assign(ui.begin(), ui.end());
        unique_got[t].stats = mem.region_stats(uniq);
      });
    }
    for (auto& w : workers) w.join();
  }

  uint64_t total_blocks = 0, total_probes = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(shared_got[t].image, shared_ref.image) << "thread " << t;
    EXPECT_TRUE(shared_got[t].stats.same_decisions(shared_ref.stats)) << "thread " << t;
    EXPECT_EQ(unique_got[t].image, unique_ref[t].image) << "thread " << t;
    EXPECT_TRUE(unique_got[t].stats.same_decisions(unique_ref[t].stats)) << "thread " << t;
    total_blocks += shared_got[t].stats.blocks + unique_got[t].stats.blocks;
    total_probes += shared_got[t].stats.cache.probes() + unique_got[t].stats.cache.probes();
  }
  if (FingerprintCache::runtime_enabled()) {
    // No lost updates: every committed block probed exactly once, whichever
    // worker carried it, and the cache's own tally agrees with the sum of
    // the per-commit tallies (in-span dedup twins aside, which only the
    // CommitStats side counts — hence <=).
    EXPECT_EQ(total_probes, total_blocks);
    EXPECT_LE(cache->counters().probes(), total_probes);
    EXPECT_GT(cache->counters().hits, 0u);
  }
}

// --- server-level knobs -----------------------------------------------------

StreamConfig tslc_stream(const char* name, CacheMode mode = CacheMode::kShared) {
  StreamConfig cfg;
  cfg.name = name;
  cfg.codec = "TSLC-OPT";
  cfg.options = cached_options(nullptr);
  cfg.cache_mode = mode;
  return cfg;
}

TEST(ServerCache, CachedStreamMatchesUncachedStream) {
  const auto bytes = test::corpus_bytes(test::dedup_corpus(
      {.blocks = 300, .dup_fraction = 0.5, .flip_fraction = 0.2, .zero_fraction = 0.1, .seed = 81}));
  CodecServer::Config scfg;
  scfg.engine = std::make_shared<CodecEngine>(2);
  CodecServer server(scfg);
  const StreamId u = server.open_stream(tslc_stream("uncached", CacheMode::kOff));
  const StreamId c = server.open_stream(tslc_stream("cached"));
  auto tu = server.submit(u, Request{.bytes = bytes});
  auto tc = server.submit(c, Request{.bytes = bytes});
  const Response ru = tu.wait();
  const Response rc = tc.wait();
  ASSERT_EQ(ru.analysis.blocks.size(), rc.analysis.blocks.size());
  for (size_t i = 0; i < ru.analysis.blocks.size(); ++i) {
    EXPECT_EQ(rc.analysis.blocks[i].bit_size, ru.analysis.blocks[i].bit_size) << i;
    EXPECT_EQ(rc.analysis.blocks[i].lossy, ru.analysis.blocks[i].lossy) << i;
  }
  server.drain();
  EXPECT_TRUE(server.stream_stats(c).commit.same_decisions(server.stream_stats(u).commit));
}

TEST(ServerCache, SharedCacheDedupsAcrossStreams) {
  if (!FingerprintCache::runtime_enabled()) GTEST_SKIP() << "cache force-disabled";
  const auto bytes =
      test::corpus_bytes(test::dedup_corpus({.blocks = 256, .seed = 82}));
  CodecServer::Config scfg;
  scfg.engine = std::make_shared<CodecEngine>(2);
  CodecServer server(scfg);
  // CacheMode::kShared wires both streams to the engine's cache.
  const StreamId a = server.open_stream(tslc_stream("tenant-a"));
  const StreamId b = server.open_stream(tslc_stream("tenant-b"));
  server.submit(a, Request{.bytes = bytes}).wait();
  server.submit(b, Request{.bytes = bytes}).wait();
  server.drain();
  const CommitStats sa = server.stream_stats(a).commit;
  const CommitStats sb = server.stream_stats(b).commit;
  EXPECT_EQ(sa.cache.probes(), sa.blocks);
  // Stream b replays stream a's traffic; with the engine-shared cache (and
  // identical codec identity: same trained model, MAG, threshold) it pays
  // zero decision probes' worth of misses.
  EXPECT_EQ(sb.cache.hits, sb.blocks);
  EXPECT_TRUE(sa.same_decisions(sb));
}

TEST(ServerCache, PrivateCachesIsolateStreams) {
  if (!FingerprintCache::runtime_enabled()) GTEST_SKIP() << "cache force-disabled";
  const auto bytes =
      test::corpus_bytes(test::dedup_corpus({.blocks = 256, .seed = 83}));  // all-fresh stream
  CodecServer::Config scfg;
  scfg.engine = std::make_shared<CodecEngine>(2);
  CodecServer server(scfg);
  // Private caches run in paranoia mode: per-stream, verify-on-hit.
  const StreamId a = server.open_stream(tslc_stream("iso-a", CacheMode::kPrivateVerify));
  const StreamId b = server.open_stream(tslc_stream("iso-b", CacheMode::kPrivateVerify));
  auto ta = server.submit(a, Request{.bytes = bytes});
  const Response ra = ta.wait();
  // wait() between the two b submits so the warm pass provably runs after
  // the cold pass finished inserting (concurrent batches would race the
  // hit/miss tallies this test pins down).
  auto tb1 = server.submit(b, Request{.bytes = bytes});  // same traffic, cold cache
  const Response rb1 = tb1.wait();
  auto tb2 = server.submit(b, Request{.bytes = bytes});  // warm now
  const Response rb2 = tb2.wait();
  server.drain();
  const CommitStats sa = server.stream_stats(a).commit;
  const CommitStats sb = server.stream_stats(b).commit;
  EXPECT_EQ(sa.cache.hits, 0u);  // nothing repeats within an all-fresh stream
  // b's first pass missed everything (no cross-stream sharing); the second
  // pass hit everything, all under verify-on-hit.
  EXPECT_EQ(sb.cache.misses, sb.blocks / 2);
  EXPECT_EQ(sb.cache.hits, sb.blocks / 2);
  ASSERT_EQ(rb1.analysis.blocks.size(), rb2.analysis.blocks.size());
  for (size_t i = 0; i < rb1.analysis.blocks.size(); ++i) {
    EXPECT_EQ(rb2.analysis.blocks[i].bit_size, rb1.analysis.blocks[i].bit_size) << i;
    EXPECT_EQ(rb2.analysis.blocks[i].bit_size, ra.analysis.blocks[i].bit_size) << i;
  }
}

}  // namespace
}  // namespace slc

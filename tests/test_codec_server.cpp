// CodecServer: stream lifecycle, request coalescing, priority coexistence,
// backpressure, per-request error delivery, and the determinism guarantee —
// per-stream results are byte-identical for 1 and N engine threads.
//
// This file registers two test-only codecs (TEST-SLOW, TEST-THROW), so it
// lives in its own test binary: the registry is process-global and the main
// suite asserts the exact production name lists.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "server/codec_server.h"
#include "test_util.h"

namespace slc {
namespace {

using test::quantized_walk;
using test::test_options;

// --- test-only codecs -------------------------------------------------------

/// Stores nothing, compresses nothing, but takes a configurable while per
/// block — the knob the backpressure test needs to keep work in flight.
class SlowCodec : public Compressor {
 public:
  std::string name() const override { return "TEST-SLOW"; }
  CompressedBlock compress(BlockView block) const override {
    CompressedBlock cb;
    cb.bit_size = block.size() * 8;
    cb.is_compressed = false;
    return cb;
  }
  Block decompress(const CompressedBlock&, size_t block_bytes) const override {
    return Block(block_bytes);
  }
  BlockAnalysis analyze(BlockView block) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    BlockAnalysis a;
    a.bit_size = block.size() * 8;
    a.lossless_bits = a.bit_size;
    return a;
  }
};

/// Every analysis throws — exercises per-request error delivery.
class ThrowingCodec : public Compressor {
 public:
  std::string name() const override { return "TEST-THROW"; }
  CompressedBlock compress(BlockView) const override {
    throw std::runtime_error("TEST-THROW compress");
  }
  Block decompress(const CompressedBlock&, size_t) const override {
    throw std::runtime_error("TEST-THROW decompress");
  }
  BlockAnalysis analyze(BlockView) const override {
    throw std::runtime_error("TEST-THROW analyze");
  }
};

const CodecRegistrar slow_registrar{CodecInfo{
    .name = "TEST-SLOW",
    .scheme = "test fixture",
    .paper = "n/a",
    .order = 999,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 0,
    .decompress_latency = 0,
    .make = [](const CodecOptions&) { return std::make_shared<SlowCodec>(); },
    .make_block_codec = nullptr}};

const CodecRegistrar throw_registrar{CodecInfo{
    .name = "TEST-THROW",
    .scheme = "test fixture",
    .paper = "n/a",
    .order = 999,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 0,
    .decompress_latency = 0,
    .make = [](const CodecOptions&) { return std::make_shared<ThrowingCodec>(); },
    .make_block_codec = nullptr}};

StreamConfig e2mc_stream(std::string name, std::span<const uint8_t> training,
                         StreamPriority prio = StreamPriority::kNormal) {
  StreamConfig cfg;
  cfg.name = std::move(name);
  cfg.codec = "E2MC";
  cfg.options = test_options(training);
  cfg.priority = prio;
  return cfg;
}

// --- tests ------------------------------------------------------------------

TEST(CodecServer, OpenStreamValidatesAgainstRegistry) {
  CodecServer server;
  StreamConfig bad;
  bad.codec = "NO-SUCH-CODEC";
  EXPECT_THROW(server.open_stream(bad), std::out_of_range);

  StreamConfig untrained;
  untrained.codec = "E2MC";  // needs training data the options lack
  EXPECT_THROW(server.open_stream(untrained), std::invalid_argument);

  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("ok", training));
  EXPECT_EQ(server.num_streams(), 1u);
  EXPECT_EQ(server.stream_name(s), "ok");
}

// A request's analysis must match the engine's analyze_bytes of the same
// data through the same scheme, ragged tail included.
TEST(CodecServer, RequestMatchesEngineAnalyzeBytes) {
  const auto training = quantized_walk(31, 256);
  auto data = quantized_walk(42, 5);
  data.resize(data.size() - 77);  // ragged tail

  CodecServer server;
  const StreamId s = server.open_stream(e2mc_stream("req", training));
  auto ticket = server.submit(s, data);
  const auto got = ticket.wait();  // forces dispatch of the partial batch

  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));
  CodecEngine reference(1);
  const auto want = reference.analyze_bytes(*comp, data, 32);

  ASSERT_EQ(got.blocks.size(), want.blocks.size());
  for (size_t i = 0; i < got.blocks.size(); ++i)
    EXPECT_EQ(got.blocks[i].bit_size, want.blocks[i].bit_size) << "block " << i;
  EXPECT_EQ(got.ratios.raw_ratio(), want.ratios.raw_ratio());
  EXPECT_EQ(got.ratios.effective_ratio(), want.ratios.effective_ratio());
  EXPECT_EQ(got.lossy_blocks, want.lossy_blocks);
  EXPECT_EQ(got.truncated_symbols, want.truncated_symbols);
}

TEST(CodecServer, CoalescesSmallRequestsIntoBatches) {
  const auto training = quantized_walk(31, 256);
  CodecServer::Config cfg;
  cfg.batch_blocks = 8;
  CodecServer server(cfg);
  const StreamId s = server.open_stream(e2mc_stream("coalesce", training));

  std::vector<ServerTicket> tickets;
  const auto data = quantized_walk(43, 2);  // 2 blocks per request
  for (int i = 0; i < 6; ++i) tickets.push_back(server.submit(s, data));
  server.drain();

  const StreamStats st = server.stream_stats(s);
  EXPECT_EQ(st.requests, 6u);
  EXPECT_EQ(st.commit.blocks, 12u);
  // 12 blocks at threshold 8: one batch at the fourth submit, one on drain.
  EXPECT_EQ(st.batches, 2u);
  EXPECT_EQ(st.latency.count(), 6u);

  for (auto& t : tickets) {
    const auto res = t.wait();
    EXPECT_EQ(res.blocks.size(), 2u);
  }
}

TEST(CodecServer, EmptyRequestCompletesImmediately) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  const StreamId s = server.open_stream(e2mc_stream("empty", training));
  auto ticket = server.submit(s, std::span<const uint8_t>{});
  EXPECT_TRUE(ticket.ready());
  const auto res = ticket.wait();
  EXPECT_TRUE(res.blocks.empty());
  EXPECT_EQ(server.stream_stats(s).requests, 1u);
  EXPECT_FALSE(ticket.valid());  // one-shot
}

TEST(CodecServer, BackpressureBoundsInflightBlocks) {
  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  cfg.batch_blocks = 16;
  cfg.max_inflight_blocks = 64;
  CodecServer server(cfg);

  StreamConfig sc;
  sc.name = "slow";
  sc.codec = "TEST-SLOW";
  const StreamId s = server.open_stream(sc);

  const auto data = quantized_walk(44, 16);  // one full batch per request
  for (int i = 0; i < 20; ++i) {
    server.submit(s, data);  // fire-and-forget: budget must still retire
    EXPECT_LE(server.inflight_blocks(), cfg.max_inflight_blocks);
  }
  server.drain();
  EXPECT_EQ(server.inflight_blocks(), 0u);
  const StreamStats st = server.stream_stats(s);
  EXPECT_EQ(st.requests, 20u);
  EXPECT_EQ(st.commit.blocks, 20u * 16u);
}

// An oversized request (bigger than the whole budget) is admitted once the
// queue is empty instead of deadlocking.
TEST(CodecServer, OversizedRequestDoesNotDeadlock) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 8;
  cfg.max_inflight_blocks = 4;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("big", training));
  auto ticket = server.submit(s, quantized_walk(45, 32));  // 32 > budget 4
  const auto res = ticket.wait();
  EXPECT_EQ(res.blocks.size(), 32u);
}

// Regression: over-budget requests below the coalescing threshold must not
// pile into one batch that blows the budget several-fold — each is admitted
// alone (server empty) and dispatched immediately.
TEST(CodecServer, OversizedRequestsSerializeThroughBudget) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 256;  // none of the requests reaches this on its own
  cfg.max_inflight_blocks = 64;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("oversized", training));

  std::vector<ServerTicket> tickets;
  for (uint64_t i = 0; i < 3; ++i) {
    tickets.push_back(server.submit(s, quantized_walk(60 + i, 100)));  // 100 > budget 64
    EXPECT_LE(server.inflight_blocks(), 100u) << "only one oversized batch may be in flight";
  }
  for (auto& t : tickets) EXPECT_EQ(t.wait().blocks.size(), 100u);
  server.drain();
  EXPECT_EQ(server.stream_stats(s).batches, 3u) << "one batch per oversized request";
}

// Regression: a stream's never-dispatched pending blocks must not wedge
// another stream's admission — submit pushes stalled batches out before
// waiting, so backpressure always waits on engine progress.
TEST(CodecServer, CrossStreamBackpressureMakesProgress) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 256;
  cfg.max_inflight_blocks = 64;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId a = server.open_stream(e2mc_stream("a", training));
  const StreamId b = server.open_stream(e2mc_stream("b", training));

  server.submit(a, quantized_walk(70, 60));  // queued, under both thresholds
  auto ticket = server.submit(b, quantized_walk(71, 10));  // 60 + 10 > 64
  EXPECT_EQ(ticket.wait().blocks.size(), 10u);
  server.drain();
  EXPECT_EQ(server.stream_stats(a).commit.blocks, 60u);
  EXPECT_EQ(server.stream_stats(b).commit.blocks, 10u);
}

// Regression: a waiter that loses the admission race to a submit whose
// blocks stay parked (below batch threshold, within budget) must re-flush
// pending batches on wakeup — with a one-shot flush it sleeps forever with
// nothing in flight to notify it. The slow codec widens the race window;
// pre-fix this hangs under the losing-waiter interleaving (ctest timeout).
TEST(CodecServer, ConcurrentWaitersReflushPendingBatches) {
  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  cfg.batch_blocks = 256;
  cfg.max_inflight_blocks = 64;
  CodecServer server(cfg);
  StreamConfig sc;
  sc.name = "slow";
  sc.codec = "TEST-SLOW";
  const StreamId s = server.open_stream(sc);

  server.submit(s, quantized_walk(80, 64));  // parked pending, fills the budget
  std::thread t1([&] { server.submit(s, quantized_walk(81, 10)); });
  std::thread t2([&] { server.submit(s, quantized_walk(82, 60)); });
  t1.join();
  t2.join();
  server.drain();
  EXPECT_EQ(server.stream_stats(s).commit.blocks, 64u + 10u + 60u);
}

TEST(CodecServer, CodecErrorDeliveredPerRequestAndConfined) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  StreamConfig bad;
  bad.name = "bad";
  bad.codec = "TEST-THROW";
  const StreamId sb = server.open_stream(bad);
  const StreamId sg = server.open_stream(e2mc_stream("good", training));

  auto bad_ticket = server.submit(sb, quantized_walk(46, 4));
  auto good_ticket = server.submit(sg, quantized_walk(47, 4));
  EXPECT_THROW(bad_ticket.wait(), std::runtime_error);
  EXPECT_EQ(good_ticket.wait().blocks.size(), 4u);
  server.drain();

  const StreamStats bad_stats = server.stream_stats(sb);
  EXPECT_EQ(bad_stats.requests, 1u);
  EXPECT_EQ(bad_stats.commit.blocks, 0u) << "failed batches contribute no commit counters";
  EXPECT_EQ(server.stream_stats(sg).commit.blocks, 4u);
}

// The acceptance-criteria property: identical per-request results and
// per-stream deterministic stats for a 1-thread and an N-thread engine.
TEST(CodecServer, PerStreamResultsThreadCountInvariant) {
  const auto training = quantized_walk(31, 256);

  auto run = [&](unsigned threads) {
    CodecServer::Config cfg;
    cfg.engine = std::make_shared<CodecEngine>(threads);
    cfg.batch_blocks = 32;
    CodecServer server(cfg);
    const StreamId bulk =
        server.open_stream(e2mc_stream("bulk", training, StreamPriority::kBulk));
    const StreamId lat =
        server.open_stream(e2mc_stream("lat", training, StreamPriority::kLatency));

    std::vector<ServerTicket> tickets;
    std::vector<StreamId> owners;
    for (uint64_t i = 0; i < 12; ++i) {
      const StreamId sid = i % 3 == 0 ? lat : bulk;
      tickets.push_back(server.submit(sid, quantized_walk(100 + i, 5 + i % 7)));
      owners.push_back(sid);
    }
    std::vector<CodecEngine::StreamAnalysis> results;
    for (auto& t : tickets) results.push_back(t.wait());
    server.drain();
    return std::make_tuple(std::move(results), server.stream_stats(bulk).commit,
                           server.stream_stats(lat).commit);
  };

  const auto [res1, bulk1, lat1] = run(1);
  const auto [res4, bulk4, lat4] = run(4);

  ASSERT_EQ(res1.size(), res4.size());
  for (size_t r = 0; r < res1.size(); ++r) {
    ASSERT_EQ(res1[r].blocks.size(), res4[r].blocks.size()) << "request " << r;
    for (size_t i = 0; i < res1[r].blocks.size(); ++i)
      EXPECT_EQ(res1[r].blocks[i].bit_size, res4[r].blocks[i].bit_size)
          << "request " << r << " block " << i;
    EXPECT_EQ(res1[r].ratios.raw_ratio(), res4[r].ratios.raw_ratio()) << "request " << r;
    EXPECT_EQ(res1[r].ratios.effective_ratio(), res4[r].ratios.effective_ratio());
    EXPECT_EQ(res1[r].lossy_blocks, res4[r].lossy_blocks);
    EXPECT_EQ(res1[r].truncated_symbols, res4[r].truncated_symbols);
  }
  EXPECT_EQ(bulk1, bulk4);  // CommitStats all-field equality
  EXPECT_EQ(lat1, lat4);
}

// Regression: a batch dispatched after the engine shut down is abandoned at
// enqueue; the server must fail its tickets with the stored exception
// instead of hanging forever in drain() / the destructor.
TEST(CodecServer, SubmitAfterEngineShutdownFailsTicketsInsteadOfHanging) {
  auto engine = std::make_shared<CodecEngine>(2);
  CodecServer::Config cfg;
  cfg.engine = engine;
  cfg.batch_blocks = 4;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("late", training));

  engine->shutdown();
  auto ticket = server.submit(s, quantized_walk(90, 8));  // >= batch: dispatches now
  EXPECT_THROW(ticket.wait(), std::runtime_error);
  server.drain();  // must return, not deadlock
  const StreamStats st = server.stream_stats(s);
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.commit.blocks, 0u);
  EXPECT_EQ(server.inflight_blocks(), 0u);
}

TEST(CodecServer, AggregateStatsSumStreams) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  const StreamId a = server.open_stream(e2mc_stream("a", training));
  const StreamId b = server.open_stream(e2mc_stream("b", training));
  server.submit(a, quantized_walk(48, 3));
  server.submit(b, quantized_walk(49, 5));
  server.drain();

  const StreamStats agg = server.aggregate_stats();
  EXPECT_EQ(agg.requests, 2u);
  EXPECT_EQ(agg.commit.blocks, 8u);
  EXPECT_EQ(agg.commit.blocks,
            server.stream_stats(a).commit.blocks + server.stream_stats(b).commit.blocks);
  EXPECT_EQ(agg.latency.count(), 2u);
}

// Streams of different codecs sharing one server stay isolated: each
// stream's results match its codec's solo engine run.
TEST(CodecServer, MixedCodecStreamsStayIsolated) {
  const auto training = quantized_walk(31, 256);
  const auto data = quantized_walk(50, 6);

  CodecServer server;
  StreamConfig bdi;
  bdi.name = "bdi";
  bdi.codec = "BDI";
  bdi.options = test_options({});
  const StreamId sb = server.open_stream(bdi);
  const StreamId se = server.open_stream(e2mc_stream("e2mc", training));

  auto tb = server.submit(sb, data);
  auto te = server.submit(se, data);
  const auto got_b = tb.wait();
  const auto got_e = te.wait();

  CodecEngine reference(1);
  const auto want_b =
      reference.analyze_bytes(*CodecRegistry::instance().create("BDI", test_options({})), data, 32);
  const auto want_e = reference.analyze_bytes(
      *CodecRegistry::instance().create("E2MC", test_options(training)), data, 32);
  ASSERT_EQ(got_b.blocks.size(), want_b.blocks.size());
  ASSERT_EQ(got_e.blocks.size(), want_e.blocks.size());
  for (size_t i = 0; i < got_b.blocks.size(); ++i)
    EXPECT_EQ(got_b.blocks[i].bit_size, want_b.blocks[i].bit_size);
  for (size_t i = 0; i < got_e.blocks.size(); ++i)
    EXPECT_EQ(got_e.blocks[i].bit_size, want_e.blocks[i].bit_size);
}

}  // namespace
}  // namespace slc

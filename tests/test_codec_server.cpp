// CodecServer: stream lifecycle, the typed Request/Response contract
// (analyze / decide / compress kinds), request coalescing, the deadline
// flush timer, admission control (backpressure vs rejection), priority
// coexistence, per-request error delivery, and the determinism guarantee —
// per-stream results are byte-identical for 1 and N engine threads.
//
// This file registers two test-only codecs (TEST-SLOW, TEST-THROW), so it
// lives in its own test binary: the registry is process-global and the main
// suite asserts the exact production name lists.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "compress/e2mc.h"
#include "core/fingerprint_cache.h"
#include "server/codec_server.h"
#include "test_util.h"

namespace slc {
namespace {

using test::quantized_walk;
using test::test_options;

// --- test-only codecs -------------------------------------------------------

/// Stores nothing, compresses nothing, but takes a configurable while per
/// block — the knob the backpressure/admission tests need to keep work in
/// flight.
class SlowCodec : public Compressor {
 public:
  std::string name() const override { return "TEST-SLOW"; }
  CompressedBlock compress(BlockView block) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    CompressedBlock cb;
    cb.bit_size = block.size() * 8;
    cb.is_compressed = false;
    return cb;
  }
  Block decompress(const CompressedBlock&, size_t block_bytes) const override {
    return Block(block_bytes);
  }
  BlockAnalysis analyze(BlockView block) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    BlockAnalysis a;
    a.bit_size = block.size() * 8;
    a.lossless_bits = a.bit_size;
    return a;
  }
};

/// Every analysis throws — exercises per-request error delivery.
class ThrowingCodec : public Compressor {
 public:
  std::string name() const override { return "TEST-THROW"; }
  CompressedBlock compress(BlockView) const override {
    throw std::runtime_error("TEST-THROW compress");
  }
  Block decompress(const CompressedBlock&, size_t) const override {
    throw std::runtime_error("TEST-THROW decompress");
  }
  BlockAnalysis analyze(BlockView) const override {
    throw std::runtime_error("TEST-THROW analyze");
  }
};

const CodecRegistrar slow_registrar{CodecInfo{
    .name = "TEST-SLOW",
    .scheme = "test fixture",
    .paper = "n/a",
    .order = 999,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 0,
    .decompress_latency = 0,
    .make = [](const CodecOptions&) { return std::make_shared<SlowCodec>(); },
    .make_block_codec = nullptr}};

const CodecRegistrar throw_registrar{CodecInfo{
    .name = "TEST-THROW",
    .scheme = "test fixture",
    .paper = "n/a",
    .order = 999,
    .lossy = false,
    .needs_training = false,
    .compress_latency = 0,
    .decompress_latency = 0,
    .make = [](const CodecOptions&) { return std::make_shared<ThrowingCodec>(); },
    .make_block_codec = nullptr}};

StreamConfig e2mc_stream(std::string name, std::span<const uint8_t> training,
                         StreamPriority prio = StreamPriority::kNormal) {
  StreamConfig cfg;
  cfg.name = std::move(name);
  cfg.codec = "E2MC";
  cfg.options = test_options(training);
  cfg.priority = prio;
  return cfg;
}

// --- tests ------------------------------------------------------------------

TEST(CodecServer, OpenStreamValidatesAgainstRegistry) {
  CodecServer server;
  StreamConfig bad;
  bad.codec = "NO-SUCH-CODEC";
  EXPECT_THROW(server.open_stream(bad), std::out_of_range);

  StreamConfig untrained;
  untrained.codec = "E2MC";  // needs training data the options lack
  EXPECT_THROW(server.open_stream(untrained), std::invalid_argument);

  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("ok", training));
  EXPECT_EQ(server.num_streams(), 1u);
  EXPECT_EQ(server.stream_name(s), "ok");
}

// A request's analysis must match the engine's analyze_bytes of the same
// data through the same scheme, ragged tail included.
TEST(CodecServer, RequestMatchesEngineAnalyzeBytes) {
  const auto training = quantized_walk(31, 256);
  auto data = quantized_walk(42, 5);
  data.resize(data.size() - 77);  // ragged tail

  CodecServer server;
  const StreamId s = server.open_stream(e2mc_stream("req", training));
  auto ticket = server.submit(s, Request{.bytes = data});
  const Response got = ticket.wait();  // forces dispatch of the partial batch
  ASSERT_TRUE(got.ok());

  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));
  CodecEngine reference(1);
  const auto want = reference.analyze_bytes(*comp, data, 32);

  ASSERT_EQ(got.analysis.blocks.size(), want.blocks.size());
  for (size_t i = 0; i < got.analysis.blocks.size(); ++i)
    EXPECT_EQ(got.analysis.blocks[i].bit_size, want.blocks[i].bit_size) << "block " << i;
  EXPECT_EQ(got.analysis.ratios.raw_ratio(), want.ratios.raw_ratio());
  EXPECT_EQ(got.analysis.ratios.effective_ratio(), want.ratios.effective_ratio());
  EXPECT_EQ(got.analysis.lossy_blocks, want.lossy_blocks);
  EXPECT_EQ(got.analysis.truncated_symbols, want.truncated_symbols);
}

TEST(CodecServer, CoalescesSmallRequestsIntoBatches) {
  const auto training = quantized_walk(31, 256);
  CodecServer::Config cfg;
  cfg.batch_blocks = 8;
  // Batch-count assertions need deterministic boundaries: no timer flush.
  cfg.max_coalesce_delay = std::chrono::microseconds(0);
  CodecServer server(cfg);
  const StreamId s = server.open_stream(e2mc_stream("coalesce", training));

  std::vector<ServerTicket> tickets;
  const auto data = quantized_walk(43, 2);  // 2 blocks per request
  for (int i = 0; i < 6; ++i) tickets.push_back(server.submit(s, Request{.bytes = data}));
  server.drain();

  const StreamStats st = server.stream_stats(s);
  EXPECT_EQ(st.requests, 6u);
  EXPECT_EQ(st.commit.blocks, 12u);
  // 12 blocks at threshold 8: one batch at the fourth submit, one on drain.
  EXPECT_EQ(st.batches, 2u);
  EXPECT_EQ(st.latency.count(), 6u);

  for (auto& t : tickets) {
    const Response res = t.wait();
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.analysis.blocks.size(), 2u);
  }
}

TEST(CodecServer, EmptyRequestCompletesImmediately) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  const StreamId s = server.open_stream(e2mc_stream("empty", training));
  auto ticket = server.submit(s, Request{});
  EXPECT_TRUE(ticket.ready());
  const Response res = ticket.wait();
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.analysis.blocks.empty());
  EXPECT_EQ(server.stream_stats(s).requests, 1u);
  EXPECT_FALSE(ticket.valid());  // one-shot
}

TEST(CodecServer, BackpressureBoundsInflightBlocks) {
  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  cfg.batch_blocks = 16;
  cfg.max_inflight_blocks = 64;
  CodecServer server(cfg);

  StreamConfig sc;
  sc.name = "slow";
  sc.codec = "TEST-SLOW";
  const StreamId s = server.open_stream(sc);

  const auto data = quantized_walk(44, 16);  // one full batch per request
  for (int i = 0; i < 20; ++i) {
    server.submit(s, Request{.bytes = data});  // fire-and-forget: budget must still retire
    EXPECT_LE(server.inflight_blocks(), cfg.max_inflight_blocks);
  }
  server.drain();
  EXPECT_EQ(server.inflight_blocks(), 0u);
  const StreamStats st = server.stream_stats(s);
  EXPECT_EQ(st.requests, 20u);
  EXPECT_EQ(st.commit.blocks, 20u * 16u);
  EXPECT_EQ(st.rejected, 0u) << "kBlock streams never shed";
}

// An oversized request (bigger than the whole budget) is admitted once the
// queue is empty instead of deadlocking.
TEST(CodecServer, OversizedRequestDoesNotDeadlock) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 8;
  cfg.max_inflight_blocks = 4;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("big", training));
  const auto data = quantized_walk(45, 32);
  auto ticket = server.submit(s, Request{.bytes = data});  // 32 > budget 4
  const Response res = ticket.wait();
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.analysis.blocks.size(), 32u);
}

// Regression: over-budget requests below the coalescing threshold must not
// pile into one batch that blows the budget several-fold — each is admitted
// alone (server empty) and dispatched immediately.
TEST(CodecServer, OversizedRequestsSerializeThroughBudget) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 256;  // none of the requests reaches this on its own
  cfg.max_inflight_blocks = 64;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("oversized", training));

  std::vector<ServerTicket> tickets;
  for (uint64_t i = 0; i < 3; ++i) {
    const auto data = quantized_walk(60 + i, 100);
    tickets.push_back(server.submit(s, Request{.bytes = data}));  // 100 > budget 64
    EXPECT_LE(server.inflight_blocks(), 100u) << "only one oversized batch may be in flight";
  }
  for (auto& t : tickets) EXPECT_EQ(t.wait().analysis.blocks.size(), 100u);
  server.drain();
  EXPECT_EQ(server.stream_stats(s).batches, 3u) << "one batch per oversized request";
}

// Regression: a stream's never-dispatched pending blocks must not wedge
// another stream's admission — submit pushes stalled batches out before
// waiting, so backpressure always waits on engine progress.
TEST(CodecServer, CrossStreamBackpressureMakesProgress) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 256;
  cfg.max_inflight_blocks = 64;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId a = server.open_stream(e2mc_stream("a", training));
  const StreamId b = server.open_stream(e2mc_stream("b", training));

  const auto data_a = quantized_walk(70, 60);
  const auto data_b = quantized_walk(71, 10);
  server.submit(a, Request{.bytes = data_a});  // queued, under both thresholds
  auto ticket = server.submit(b, Request{.bytes = data_b});  // 60 + 10 > 64
  EXPECT_EQ(ticket.wait().analysis.blocks.size(), 10u);
  server.drain();
  EXPECT_EQ(server.stream_stats(a).commit.blocks, 60u);
  EXPECT_EQ(server.stream_stats(b).commit.blocks, 10u);
}

// Regression: a waiter that loses the admission race to a submit whose
// blocks stay parked (below batch threshold, within budget) must re-flush
// pending batches on wakeup — with a one-shot flush it sleeps forever with
// nothing in flight to notify it. The slow codec widens the race window;
// pre-fix this hangs under the losing-waiter interleaving (ctest timeout).
// The flush timer is disabled so only the re-flush path can save the test.
TEST(CodecServer, ConcurrentWaitersReflushPendingBatches) {
  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  cfg.batch_blocks = 256;
  cfg.max_inflight_blocks = 64;
  cfg.max_coalesce_delay = std::chrono::microseconds(0);
  CodecServer server(cfg);
  StreamConfig sc;
  sc.name = "slow";
  sc.codec = "TEST-SLOW";
  const StreamId s = server.open_stream(sc);

  const auto d0 = quantized_walk(80, 64);
  const auto d1 = quantized_walk(81, 10);
  const auto d2 = quantized_walk(82, 60);
  server.submit(s, Request{.bytes = d0});  // parked pending, fills the budget
  std::thread t1([&] { server.submit(s, Request{.bytes = d1}); });
  std::thread t2([&] { server.submit(s, Request{.bytes = d2}); });
  t1.join();
  t2.join();
  server.drain();
  EXPECT_EQ(server.stream_stats(s).commit.blocks, 64u + 10u + 60u);
}

TEST(CodecServer, CodecErrorDeliveredPerRequestAndConfined) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  StreamConfig bad;
  bad.name = "bad";
  bad.codec = "TEST-THROW";
  const StreamId sb = server.open_stream(bad);
  const StreamId sg = server.open_stream(e2mc_stream("good", training));

  const auto bad_data = quantized_walk(46, 4);
  const auto good_data = quantized_walk(47, 4);
  auto bad_ticket = server.submit(sb, Request{.bytes = bad_data});
  auto good_ticket = server.submit(sg, Request{.bytes = good_data});
  const Response bad_res = bad_ticket.wait();
  EXPECT_EQ(bad_res.status, ResponseStatus::kError);
  EXPECT_FALSE(bad_res.ok());
  EXPECT_THROW(bad_res.throw_if_failed(), std::runtime_error);
  EXPECT_EQ(good_ticket.wait().analysis.blocks.size(), 4u);
  server.drain();

  const StreamStats bad_stats = server.stream_stats(sb);
  EXPECT_EQ(bad_stats.requests, 1u);
  EXPECT_EQ(bad_stats.commit.blocks, 0u) << "failed batches contribute no commit counters";
  EXPECT_EQ(server.stream_stats(sg).commit.blocks, 4u);
}

// The acceptance-criteria property: identical per-request results and
// per-stream deterministic stats for a 1-thread and an N-thread engine.
TEST(CodecServer, PerStreamResultsThreadCountInvariant) {
  const auto training = quantized_walk(31, 256);

  auto run = [&](unsigned threads) {
    CodecServer::Config cfg;
    cfg.engine = std::make_shared<CodecEngine>(threads);
    cfg.batch_blocks = 32;
    CodecServer server(cfg);
    const StreamId bulk =
        server.open_stream(e2mc_stream("bulk", training, StreamPriority::kBulk));
    const StreamId lat =
        server.open_stream(e2mc_stream("lat", training, StreamPriority::kLatency));

    std::vector<ServerTicket> tickets;
    std::vector<StreamId> owners;
    for (uint64_t i = 0; i < 12; ++i) {
      const StreamId sid = i % 3 == 0 ? lat : bulk;
      const auto data = quantized_walk(100 + i, 5 + i % 7);
      tickets.push_back(server.submit(sid, Request{.bytes = data}));
      owners.push_back(sid);
    }
    std::vector<Response> results;
    for (auto& t : tickets) results.push_back(t.wait());
    server.drain();
    return std::make_tuple(std::move(results), server.stream_stats(bulk).commit,
                           server.stream_stats(lat).commit);
  };

  const auto [res1, bulk1, lat1] = run(1);
  const auto [res4, bulk4, lat4] = run(4);

  ASSERT_EQ(res1.size(), res4.size());
  for (size_t r = 0; r < res1.size(); ++r) {
    ASSERT_TRUE(res1[r].ok());
    ASSERT_TRUE(res4[r].ok());
    ASSERT_EQ(res1[r].analysis.blocks.size(), res4[r].analysis.blocks.size()) << "request " << r;
    for (size_t i = 0; i < res1[r].analysis.blocks.size(); ++i)
      EXPECT_EQ(res1[r].analysis.blocks[i].bit_size, res4[r].analysis.blocks[i].bit_size)
          << "request " << r << " block " << i;
    EXPECT_EQ(res1[r].analysis.ratios.raw_ratio(), res4[r].analysis.ratios.raw_ratio())
        << "request " << r;
    EXPECT_EQ(res1[r].analysis.ratios.effective_ratio(), res4[r].analysis.ratios.effective_ratio());
    EXPECT_EQ(res1[r].analysis.lossy_blocks, res4[r].analysis.lossy_blocks);
    EXPECT_EQ(res1[r].analysis.truncated_symbols, res4[r].analysis.truncated_symbols);
  }
  EXPECT_EQ(bulk1, bulk4);  // CommitStats all-field equality
  EXPECT_EQ(lat1, lat4);
}

// Regression: a batch dispatched after the engine shut down is abandoned at
// enqueue; the server must fail its tickets with the stored exception
// instead of hanging forever in drain() / the destructor.
TEST(CodecServer, SubmitAfterEngineShutdownFailsTicketsInsteadOfHanging) {
  auto engine = std::make_shared<CodecEngine>(2);
  CodecServer::Config cfg;
  cfg.engine = engine;
  cfg.batch_blocks = 4;
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("late", training));

  engine->shutdown();
  const auto data = quantized_walk(90, 8);
  auto ticket = server.submit(s, Request{.bytes = data});  // >= batch: dispatches now
  const Response res = ticket.wait();
  EXPECT_EQ(res.status, ResponseStatus::kError);
  EXPECT_THROW(res.throw_if_failed(), std::runtime_error);
  server.drain();  // must return, not deadlock
  const StreamStats st = server.stream_stats(s);
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.commit.blocks, 0u);
  EXPECT_EQ(server.inflight_blocks(), 0u);
}

TEST(CodecServer, AggregateStatsSumStreams) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  const StreamId a = server.open_stream(e2mc_stream("a", training));
  const StreamId b = server.open_stream(e2mc_stream("b", training));
  const auto data_a = quantized_walk(48, 3);
  const auto data_b = quantized_walk(49, 5);
  server.submit(a, Request{.bytes = data_a});
  server.submit(b, Request{.bytes = data_b});
  server.drain();

  const StreamStats agg = server.aggregate_stats();
  EXPECT_EQ(agg.requests, 2u);
  EXPECT_EQ(agg.commit.blocks, 8u);
  EXPECT_EQ(agg.commit.blocks,
            server.stream_stats(a).commit.blocks + server.stream_stats(b).commit.blocks);
  EXPECT_EQ(agg.latency.count(), 2u);
}

// Streams of different codecs sharing one server stay isolated: each
// stream's results match its codec's solo engine run.
TEST(CodecServer, MixedCodecStreamsStayIsolated) {
  const auto training = quantized_walk(31, 256);
  const auto data = quantized_walk(50, 6);

  CodecServer server;
  StreamConfig bdi;
  bdi.name = "bdi";
  bdi.codec = "BDI";
  bdi.options = test_options({});
  const StreamId sb = server.open_stream(bdi);
  const StreamId se = server.open_stream(e2mc_stream("e2mc", training));

  auto tb = server.submit(sb, Request{.bytes = data});
  auto te = server.submit(se, Request{.bytes = data});
  const Response got_b = tb.wait();
  const Response got_e = te.wait();

  CodecEngine reference(1);
  const auto want_b =
      reference.analyze_bytes(*CodecRegistry::instance().create("BDI", test_options({})), data, 32);
  const auto want_e = reference.analyze_bytes(
      *CodecRegistry::instance().create("E2MC", test_options(training)), data, 32);
  ASSERT_EQ(got_b.analysis.blocks.size(), want_b.blocks.size());
  ASSERT_EQ(got_e.analysis.blocks.size(), want_e.blocks.size());
  for (size_t i = 0; i < got_b.analysis.blocks.size(); ++i)
    EXPECT_EQ(got_b.analysis.blocks[i].bit_size, want_b.blocks[i].bit_size);
  for (size_t i = 0; i < got_e.analysis.blocks.size(); ++i)
    EXPECT_EQ(got_e.analysis.blocks[i].bit_size, want_e.blocks[i].bit_size);
}

// --- typed-API tests: kinds, deadlines, admission, cache modes --------------

// The tentpole lull property: a partial batch must flush within its deadline
// budget with no subsequent submit, flush or wait — only the timer thread
// can dispatch it (idle flush is disabled here so the deadline alone arms
// the timer).
TEST(CodecServer, DeadlineFlushesPartialBatchDuringLull) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 256;  // far above the request: would coalesce forever
  cfg.max_coalesce_delay = std::chrono::microseconds(0);
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("lull", training));

  const auto data = quantized_walk(51, 4);
  auto ticket =
      server.submit(s, Request{.bytes = data, .deadline = std::chrono::milliseconds(20)});
  // Poll ready() only — it never dispatches. Generous wall-clock bound: the
  // assertion is "flushes without help", not "flushes in exactly 10 ms".
  const auto start = std::chrono::steady_clock::now();
  while (!ticket.ready() &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(30)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(ticket.ready()) << "flush timer never dispatched the parked batch";
  const Response res = ticket.wait();
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.analysis.blocks.size(), 4u);
  EXPECT_EQ(server.stream_stats(s).batches, 1u);
}

// Deadline-free requests are covered by the idle linger (max_coalesce_delay)
// instead: a lull still cannot strand them.
TEST(CodecServer, IdleLingerFlushesPartialBatchWithoutDeadline) {
  CodecServer::Config cfg;
  cfg.batch_blocks = 256;
  cfg.max_coalesce_delay = std::chrono::milliseconds(1);
  CodecServer server(cfg);
  const auto training = quantized_walk(31, 256);
  const StreamId s = server.open_stream(e2mc_stream("linger", training));

  const auto data = quantized_walk(52, 3);
  auto ticket = server.submit(s, Request{.bytes = data});
  const auto start = std::chrono::steady_clock::now();
  while (!ticket.ready() &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(30)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(ticket.ready()) << "idle linger never flushed the parked batch";
  EXPECT_EQ(ticket.wait().analysis.blocks.size(), 3u);
}

// Admission control at saturation: a kReject stream sheds immediately where
// a kBlock stream waits its turn and is eventually served.
TEST(CodecServer, RejectPolicyShedsWhereBlockPolicyWaits) {
  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  cfg.batch_blocks = 16;
  cfg.max_inflight_blocks = 32;
  cfg.max_coalesce_delay = std::chrono::microseconds(0);
  CodecServer server(cfg);

  StreamConfig shed_cfg;
  shed_cfg.name = "shed";
  shed_cfg.codec = "TEST-SLOW";
  shed_cfg.admission = AdmissionPolicy::kReject;
  const StreamId shed_s = server.open_stream(shed_cfg);
  StreamConfig wait_cfg;
  wait_cfg.name = "wait";
  wait_cfg.codec = "TEST-SLOW";  // default kBlock
  const StreamId wait_s = server.open_stream(wait_cfg);

  // Fills the whole budget and dispatches at submit; TEST-SLOW keeps it in
  // flight for >= 3.2 ms — far longer than the sub-microsecond submits below.
  const auto data = quantized_walk(91, 32);
  auto first = server.submit(shed_s, Request{.bytes = data});
  auto shed = server.submit(shed_s, Request{.bytes = data});
  EXPECT_TRUE(shed.ready()) << "rejection must be immediate, not queued";
  const Response shed_res = shed.wait();
  EXPECT_EQ(shed_res.status, ResponseStatus::kRejected);
  EXPECT_FALSE(shed_res.ok());
  EXPECT_TRUE(shed_res.analysis.blocks.empty());
  EXPECT_TRUE(shed_res.payloads.empty());
  EXPECT_THROW(shed_res.throw_if_failed(), std::runtime_error);

  // Same saturation, kBlock policy: waits for the budget and gets served.
  auto blocked = server.submit(wait_s, Request{.bytes = data});
  const Response blocked_res = blocked.wait();
  EXPECT_TRUE(blocked_res.ok());
  EXPECT_EQ(blocked_res.analysis.blocks.size(), 32u);

  EXPECT_TRUE(first.wait().ok());
  server.drain();
  const StreamStats shed_st = server.stream_stats(shed_s);
  EXPECT_EQ(shed_st.requests, 2u) << "rejected submits still count as requests";
  EXPECT_EQ(shed_st.rejected, 1u);
  EXPECT_EQ(shed_st.commit.blocks, 32u) << "only the served request commits";
  EXPECT_EQ(shed_st.latency.count(), 1u) << "rejected requests record no latency sample";
  const StreamStats wait_st = server.stream_stats(wait_s);
  EXPECT_EQ(wait_st.rejected, 0u);
  EXPECT_EQ(wait_st.commit.blocks, 32u);
  EXPECT_EQ(server.aggregate_stats().rejected, 1u) << "merge() carries rejected";
}

// Full payload serving: server compress responses must be byte-identical to
// the direct codec path for every registry scheme, at 1 and N engine
// threads, and the payloads must decompress correctly (exact bytes for
// lossless schemes, scalar-path-identical bytes for the lossy ones).
TEST(CodecServer, CompressPayloadsMatchDirectCodecPathAllSchemes) {
  const auto training = quantized_walk(31, 256);
  const std::vector<Block> blocks = to_blocks(quantized_walk(53, 8));

  for (const unsigned threads : {1u, 4u}) {
    CodecServer::Config cfg;
    cfg.engine = std::make_shared<CodecEngine>(threads);
    cfg.batch_blocks = 4;  // the 8 blocks split across batches
    CodecServer server(cfg);

    for (const std::string& name : CodecRegistry::instance().names()) {
      if (name.rfind("TEST-", 0) == 0) continue;  // fixtures registered above
      const CodecInfo& info = CodecRegistry::instance().at(name);
      if (!info.make) continue;  // RAW has no Compressor form
      StreamConfig sc;
      sc.name = name;
      sc.codec = name;
      sc.options = test_options(training);
      const StreamId s = server.open_stream(sc);

      // Two requests that coalesce into shared batches.
      auto t1 = server.submit(s, Request{.kind = RequestKind::kCompress,
                                         .blocks = std::span<const Block>(blocks).subspan(0, 5)});
      auto t2 = server.submit(s, Request{.kind = RequestKind::kCompress,
                                         .blocks = std::span<const Block>(blocks).subspan(5)});
      Response r1 = t1.wait();
      Response r2 = t2.wait();
      ASSERT_TRUE(r1.ok()) << name;
      ASSERT_TRUE(r2.ok()) << name;
      ASSERT_EQ(r1.payloads.size(), 5u) << name;
      ASSERT_EQ(r2.payloads.size(), 3u) << name;
      EXPECT_TRUE(r1.analysis.blocks.empty()) << "compress responses carry payloads, not analyses";

      std::vector<CompressedBlock> got = std::move(r1.payloads);
      got.insert(got.end(), std::make_move_iterator(r2.payloads.begin()),
                 std::make_move_iterator(r2.payloads.end()));

      const auto comp = CodecRegistry::instance().create(name, test_options(training));
      const std::vector<CompressedBlock> want = comp->compress_batch(blocks);
      ASSERT_EQ(got.size(), want.size()) << name;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].payload, want[i].payload)
            << name << " block " << i << " threads " << threads;
        EXPECT_EQ(got[i].bit_size, want[i].bit_size) << name << " block " << i;
        EXPECT_EQ(got[i].is_compressed, want[i].is_compressed) << name << " block " << i;
        const Block decoded = comp->decompress(got[i], kBlockBytes);
        EXPECT_EQ(decoded, comp->decompress(want[i], kBlockBytes)) << name << " block " << i;
        if (!info.lossy) {
          EXPECT_EQ(decoded, blocks[i]) << name << " block " << i;
        }
      }
    }
  }
}

// Batches are kind-homogeneous: a kind switch dispatches the pending batch
// instead of mixing analyses and payloads in one engine job.
TEST(CodecServer, KindSwitchFlushesPendingBatch) {
  const auto training = quantized_walk(31, 256);
  CodecServer::Config cfg;
  cfg.batch_blocks = 256;
  cfg.max_coalesce_delay = std::chrono::microseconds(0);
  CodecServer server(cfg);
  const StreamId s = server.open_stream(e2mc_stream("kinds", training));

  const auto data = quantized_walk(54, 2);
  auto ta = server.submit(s, Request{.bytes = data});
  auto tc = server.submit(s, Request{.kind = RequestKind::kCompress, .bytes = data});
  const Response ra = ta.wait();
  const Response rc = tc.wait();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(ra.analysis.blocks.size(), 2u);
  EXPECT_EQ(rc.payloads.size(), 2u);
  server.drain();
  EXPECT_EQ(server.stream_stats(s).batches, 2u) << "one batch per kind";
}

// kDecide is the cheap tier: the same deterministic aggregates as kAnalyze
// with no per-block vector materialized.
TEST(CodecServer, DecideKindReturnsAggregatesOnly) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  const StreamId s = server.open_stream(e2mc_stream("decide", training));

  const auto data = quantized_walk(55, 6);
  const Response analyzed = server.submit(s, Request{.bytes = data}).wait();
  const Response decided =
      server.submit(s, Request{.kind = RequestKind::kDecide, .bytes = data}).wait();
  ASSERT_TRUE(analyzed.ok());
  ASSERT_TRUE(decided.ok());
  EXPECT_EQ(analyzed.analysis.blocks.size(), 6u);
  EXPECT_TRUE(decided.analysis.blocks.empty());
  EXPECT_EQ(decided.analysis.ratios.raw_ratio(), analyzed.analysis.ratios.raw_ratio());
  EXPECT_EQ(decided.analysis.ratios.effective_ratio(),
            analyzed.analysis.ratios.effective_ratio());
  EXPECT_EQ(decided.analysis.lossy_blocks, analyzed.analysis.lossy_blocks);
  EXPECT_EQ(decided.analysis.truncated_symbols, analyzed.analysis.truncated_symbols);
}

// A served-late response says so: deadline_missed on the response, the
// stream's deadline_misses counter, and the tag round-trip.
TEST(CodecServer, DeadlineMissSurfacedInResponseAndStats) {
  const auto training = quantized_walk(31, 256);
  CodecServer::Config cfg;
  cfg.batch_blocks = 4;
  CodecServer server(cfg);
  const StreamId s = server.open_stream(e2mc_stream("miss", training));

  const auto data = quantized_walk(56, 4);
  // 1 ns deadline: dispatches inline (batch full) and always completes late.
  auto ticket = server.submit(
      s, Request{.bytes = data, .deadline = std::chrono::nanoseconds(1), .tag = 0xfeed});
  const Response res = ticket.wait();
  EXPECT_TRUE(res.ok()) << "deadlines are advisory: a late response is still served";
  EXPECT_TRUE(res.deadline_missed);
  EXPECT_EQ(res.tag, 0xfeedu);
  server.drain();
  EXPECT_EQ(server.stream_stats(s).deadline_misses, 1u);
  EXPECT_EQ(server.aggregate_stats().deadline_misses, 1u) << "merge() carries misses";
}

TEST(CodecServer, StreamStatsMergeAddsNewCounters) {
  StreamStats a;
  a.requests = 5;
  a.rejected = 2;
  a.deadline_misses = 1;
  StreamStats b;
  b.requests = 7;
  b.rejected = 3;
  b.deadline_misses = 4;
  a.merge(b);
  EXPECT_EQ(a.requests, 12u);
  EXPECT_EQ(a.rejected, 5u);
  EXPECT_EQ(a.deadline_misses, 5u);
}

// CacheMode precedence: an explicitly pre-set options.fingerprint_cache
// always wins over the mode; kOff streams generate no cache traffic.
TEST(CodecServer, CacheModeExplicitCacheWinsAndOffStaysCold) {
  if (!FingerprintCache::runtime_enabled()) GTEST_SKIP() << "cache force-disabled";
  const auto training = quantized_walk(31, 256);
  auto explicit_cache = std::make_shared<FingerprintCache>();

  CodecServer::Config cfg;
  cfg.engine = std::make_shared<CodecEngine>(2);
  CodecServer server(cfg);
  StreamConfig sc;
  sc.name = "explicit";
  sc.codec = "TSLC-OPT";
  sc.options = test_options(training);
  sc.options.fingerprint_cache = explicit_cache;
  sc.cache_mode = CacheMode::kShared;  // must lose to the explicit cache
  const StreamId s = server.open_stream(sc);

  StreamConfig off;
  off.name = "off";
  off.codec = "TSLC-OPT";
  off.options = test_options(training);
  const StreamId so = server.open_stream(off);

  const auto data = quantized_walk(57, 8);
  const Response cached_res = server.submit(s, Request{.bytes = data}).wait();
  const Response cold_res = server.submit(so, Request{.bytes = data}).wait();
  ASSERT_TRUE(cached_res.ok());
  ASSERT_TRUE(cold_res.ok());
  EXPECT_GT(explicit_cache->size(), 0u) << "traffic must land in the explicit cache";
  EXPECT_GT(cached_res.analysis.cache.probes(), 0u);
  EXPECT_EQ(cold_res.analysis.cache.probes(), 0u) << "CacheMode::kOff generates no probes";
  EXPECT_EQ(server.engine().fingerprint_cache()->size(), 0u)
      << "the shared engine cache must not have been wired in";
}

// CacheMode::kPrivate isolation: two private streams do not share entries,
// while two kShared streams hit each other's.
TEST(CodecServer, CacheModePrivateIsolatesSharedDedups) {
  if (!FingerprintCache::runtime_enabled()) GTEST_SKIP() << "cache force-disabled";
  const auto training = quantized_walk(31, 256);
  const auto data = quantized_walk(58, 8);
  // One trained model for both streams: the cache keys on codec identity
  // (trained-model id, MAG, threshold), so per-stream training would make
  // the entries invisible across streams and hide the sharing under test.
  CodecOptions opts = test_options(training);
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  auto run = [&](CacheMode mode) {
    CodecServer::Config cfg;
    cfg.engine = std::make_shared<CodecEngine>(2);
    CodecServer server(cfg);
    StreamConfig a;
    a.name = "a";
    a.codec = "TSLC-OPT";
    a.options = opts;
    a.cache_mode = mode;
    StreamConfig b = a;
    b.name = "b";
    const StreamId sa = server.open_stream(a);
    const StreamId sb = server.open_stream(b);
    server.submit(sa, Request{.bytes = data}).wait();
    const Response second = server.submit(sb, Request{.bytes = data}).wait();
    return second.analysis.cache.hits;
  };

  EXPECT_GT(run(CacheMode::kShared), 0u) << "shared mode dedups across streams";
  EXPECT_EQ(run(CacheMode::kPrivate), 0u) << "private caches must not leak across streams";
}

// The deprecated submit(span) wrappers still serve through the typed path.
TEST(CodecServer, LegacySubmitWrappersStillServe) {
  const auto training = quantized_walk(31, 256);
  CodecServer server;
  const StreamId s = server.open_stream(e2mc_stream("legacy", training));
  const auto data = quantized_walk(59, 3);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  auto ticket = server.submit(s, std::span<const uint8_t>(data));
#pragma GCC diagnostic pop
  const Response res = ticket.wait();
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.analysis.blocks.size(), 3u);
}

}  // namespace
}  // namespace slc

// GDDR5 channel: FR-FCFS, row hits, bus occupancy in beats.
#include <gtest/gtest.h>

#include "sim/dram.h"

namespace slc {
namespace {

struct DramFixture : ::testing::Test {
  GpuSimConfig cfg;
  SimStats stats;

  // Runs the channel until all completions appear or `limit` cycles pass.
  std::vector<DramCompletion> drain(DramChannel& ch, size_t expect, uint64_t limit = 100000) {
    std::vector<DramCompletion> out;
    for (uint64_t cycle = 0; cycle < limit && out.size() < expect; ++cycle) {
      ch.tick(cycle);
      auto& comps = ch.completions();
      while (!comps.empty() && comps.front().finish_cycle <= cycle) {
        out.push_back(comps.front());
        comps.pop_front();
      }
    }
    return out;
  }
};

TEST_F(DramFixture, SingleReadCompletes) {
  DramChannel ch(cfg, stats);
  DramRequest r;
  r.addr = 0x1000;
  r.bursts = 4;
  r.tag = 7;
  ch.push_read(r);
  const auto done = drain(ch, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 7u);
  // First access: activate (tRCD) + CAS (tCL) + 2 cycles data (4 bursts,
  // 8 beats, 2/cycle).
  EXPECT_GE(done[0].finish_cycle, cfg.t_rcd + cfg.t_cl + 2u);
  EXPECT_EQ(stats.dram_read_bursts, 4u);
  EXPECT_EQ(stats.row_misses, 1u);
}

TEST_F(DramFixture, RowHitsForSequentialBlocks) {
  DramChannel ch(cfg, stats);
  for (int i = 0; i < 8; ++i) {
    DramRequest r;
    r.addr = 0x1000 + static_cast<uint64_t>(i) * 128;  // same 2 KB row
    r.bursts = 4;
    r.tag = static_cast<uint64_t>(i);
    ch.push_read(r);
  }
  drain(ch, 8);
  EXPECT_EQ(stats.row_misses, 1u);
  EXPECT_EQ(stats.row_hits, 7u);
}

TEST_F(DramFixture, FewerBurstsFinishFaster) {
  SimStats s1, s2;
  DramChannel full(cfg, s1), comp(cfg, s2);
  DramRequest a;
  a.addr = 0;
  a.bursts = 4;
  a.tag = 0;
  DramRequest b = a;
  b.bursts = 1;
  full.push_read(a);
  comp.push_read(b);
  const auto d1 = drain(full, 1);
  const auto d2 = drain(comp, 1);
  EXPECT_LT(d2[0].finish_cycle, d1[0].finish_cycle);
}

TEST_F(DramFixture, BusSerializesBackToBackTransfers) {
  DramChannel ch(cfg, stats);
  for (int i = 0; i < 16; ++i) {
    DramRequest r;
    r.addr = 0x2000 + static_cast<uint64_t>(i) * 128;
    r.bursts = 4;
    r.tag = static_cast<uint64_t>(i);
    ch.push_read(r);
  }
  const auto done = drain(ch, 16);
  ASSERT_EQ(done.size(), 16u);
  // 16 blocks x 4 bursts x 2 beats/burst... = 128 beats / 2 per cycle = 64
  // data cycles minimum spread.
  uint64_t last = 0;
  for (const auto& d : done) last = std::max(last, d.finish_cycle);
  EXPECT_GE(last, 64u);
}

TEST_F(DramFixture, WritesDrainWhenNoReads) {
  DramChannel ch(cfg, stats);
  DramRequest w;
  w.addr = 0x3000;
  w.bursts = 4;
  w.write = true;
  w.tag = 1;
  ch.push_write(w);
  const auto done = drain(ch, 1);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].write);
  EXPECT_EQ(stats.dram_write_bursts, 4u);
}

TEST_F(DramFixture, ReadsHavePriorityOverWrites) {
  DramChannel ch(cfg, stats);
  for (int i = 0; i < 4; ++i) {
    DramRequest w;
    w.addr = 0x8000 + static_cast<uint64_t>(i) * 128;
    w.bursts = 4;
    w.write = true;
    w.tag = 100 + static_cast<uint64_t>(i);
    ch.push_write(w);
  }
  DramRequest r;
  r.addr = 0x100;
  r.bursts = 4;
  r.tag = 1;
  ch.push_read(r);
  const auto done = drain(ch, 5);
  ASSERT_EQ(done.size(), 5u);
  EXPECT_EQ(done[0].tag, 1u) << "the read must finish before the writes";
}

TEST_F(DramFixture, MetadataCountsSeparately) {
  DramChannel ch(cfg, stats);
  DramRequest m;
  m.addr = 0x9000;
  m.bursts = 1;
  m.metadata = true;
  m.tag = 2;
  ch.push_read(m);
  drain(ch, 1);
  EXPECT_EQ(stats.metadata_bursts, 1u);
  EXPECT_EQ(stats.dram_read_bursts, 0u);
}

TEST_F(DramFixture, MagScalesBeatCount) {
  GpuSimConfig cfg64 = cfg;
  cfg64.mag_bytes = 64;
  SimStats s64;
  DramChannel ch(cfg64, s64);
  DramRequest r;
  r.addr = 0;
  r.bursts = 2;  // 2 x 64 B = 8 beats = 4 cycles
  r.tag = 0;
  ch.push_read(r);
  const auto done = drain(ch, 1);
  EXPECT_GE(done[0].finish_cycle, cfg.t_rcd + cfg.t_cl + 4u);
}

// Regression: next_event_cycle used to min over *every* bank, and idle banks
// sit at ready_cycle 0 — so a busy channel could never fast-forward past
// now + 1. The next event must come from the banks queued requests actually
// target (and the bus), letting a quiet channel skip ahead.
TEST_F(DramFixture, NextEventSkipsAheadWhileTargetBankBusy) {
  DramChannel ch(cfg, stats);
  for (int i = 0; i < 2; ++i) {
    DramRequest r;
    r.addr = 0x1000 + static_cast<uint64_t>(i) * 128;  // same row, same bank
    r.bursts = 4;
    r.tag = static_cast<uint64_t>(i);
    ch.push_read(r);
  }
  ch.tick(0);  // issues the first request; its bank is busy until the data phase ends
  const uint64_t nxt = ch.next_event_cycle(0);
  // First access: tRCD + tCL + 4 transfer cycles (4 bursts, 8 beats, 2/cycle).
  const uint64_t busy_until = cfg.t_rcd + cfg.t_cl + 4u;
  EXPECT_GT(nxt, 1u) << "a quiet channel must skip more than one cycle";
  EXPECT_EQ(nxt, busy_until);
  // The skip must not overshoot: the channel still completes both requests.
  const auto done = drain(ch, 2);
  EXPECT_EQ(done.size(), 2u);
}

TEST_F(DramFixture, NextEventIdleChannelHasNoEvent) {
  DramChannel ch(cfg, stats);
  EXPECT_EQ(ch.next_event_cycle(0), UINT64_MAX);
  EXPECT_EQ(ch.next_event_cycle(12345), UINT64_MAX);
}

TEST_F(DramFixture, NextEventImmediateWhenTargetBankReady) {
  DramChannel ch(cfg, stats);
  DramRequest r;
  r.addr = 0x1000;
  r.bursts = 4;
  ch.push_read(r);
  // Nothing issued yet and the target bank is idle: the next event is the
  // very next cycle.
  EXPECT_EQ(ch.next_event_cycle(7), 8u);
}

TEST_F(DramFixture, BankConflictSlowerThanParallelBanks) {
  // Same bank, different rows -> serialized precharge/activate.
  SimStats s_conflict;
  DramChannel conflict(cfg, s_conflict);
  const uint64_t bank_stride = cfg.row_bytes * cfg.banks_per_mc;
  for (int i = 0; i < 4; ++i) {
    DramRequest r;
    r.addr = static_cast<uint64_t>(i) * bank_stride;  // same bank, new row
    r.bursts = 1;
    r.tag = static_cast<uint64_t>(i);
    conflict.push_read(r);
  }
  SimStats s_par;
  DramChannel parallel(cfg, s_par);
  for (int i = 0; i < 4; ++i) {
    DramRequest r;
    r.addr = static_cast<uint64_t>(i) * cfg.row_bytes;  // different banks
    r.bursts = 1;
    r.tag = static_cast<uint64_t>(i);
    parallel.push_read(r);
  }
  uint64_t t_conflict = 0, t_par = 0;
  for (const auto& d : drain(conflict, 4)) t_conflict = std::max(t_conflict, d.finish_cycle);
  for (const auto& d : drain(parallel, 4)) t_par = std::max(t_par, d.finish_cycle);
  EXPECT_GT(t_conflict, t_par);
  EXPECT_EQ(s_conflict.row_misses, 4u);
}

}  // namespace
}  // namespace slc

// Batch-kernel equivalence: for every registry-listed codec, the
// analyze_batch/compress_batch kernels must be byte-identical to the
// per-block scalar loop — on random, all-zero, denormal-heavy, value-similar
// and repeat/delta data, for any batch split. This is the contract that lets
// the CodecEngine and CodecServer route every shard through the batch entry
// points without a correctness fallback; it runs under the ASan+UBSan CI job
// like the rest of this binary.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/block_codec.h"
#include "compress/codec_registry.h"
#include "compress/simd_dispatch.h"
#include "test_util.h"

namespace slc {
namespace {

std::vector<Block> blocks_from_bytes(const std::vector<uint8_t>& data) {
  return to_blocks(data);
}

std::vector<Block> random_blocks(size_t n) {
  Rng rng(0xB10CB10Cull);
  std::vector<uint8_t> data(n * kBlockBytes);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next_below(256));
  return blocks_from_bytes(data);
}

std::vector<Block> zero_blocks(size_t n) {
  return blocks_from_bytes(std::vector<uint8_t>(n * kBlockBytes, 0));
}

// Mostly denormal floats (zero exponent, random mantissa) with zeros mixed
// in: the data shape that stresses FPC's sign-extension classes and BDI's
// near-zero immediates.
std::vector<Block> denormal_blocks(size_t n) {
  Rng rng(0xDE40A11ull);
  std::vector<uint8_t> data;
  data.reserve(n * kBlockBytes);
  for (size_t i = 0; i < n * kBlockBytes / 4; ++i) {
    uint32_t bits = 0;
    if (!rng.chance(0.25)) {
      bits = static_cast<uint32_t>(rng.next()) & 0x007FFFFFu;  // denormal mantissa
      if (rng.chance(0.5)) bits |= 0x80000000u;                // random sign
    }
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return blocks_from_bytes(data);
}

// Repeated 64-bit values and small-delta integer runs (BDI's and C-PACK's
// sweet spots), including blocks that alternate the two.
std::vector<Block> repeat_delta_blocks(size_t n) {
  Rng rng(0x4E9EA7ull);
  std::vector<uint8_t> data;
  data.reserve(n * kBlockBytes);
  uint64_t base = 0x1122334455667788ull;
  for (size_t i = 0; i < n * kBlockBytes / 8; ++i) {
    if (i % 16 == 0) base = rng.next();
    const uint64_t v = rng.chance(0.5) ? base : base + rng.next_below(200);
    for (int k = 0; k < 8; ++k) data.push_back(static_cast<uint8_t>(v >> (8 * k)));
  }
  return blocks_from_bytes(data);
}

void expect_analysis_eq(const BlockAnalysis& scalar, const BlockAnalysis& batch,
                        const std::string& what) {
  EXPECT_EQ(scalar.bit_size, batch.bit_size) << what;
  EXPECT_EQ(scalar.is_compressed, batch.is_compressed) << what;
  EXPECT_EQ(scalar.lossy, batch.lossy) << what;
  EXPECT_EQ(scalar.lossless_bits, batch.lossless_bits) << what;
  EXPECT_EQ(scalar.truncated_symbols, batch.truncated_symbols) << what;
}

void expect_payload_eq(const CompressedBlock& scalar, const CompressedBlock& batch,
                       const std::string& what) {
  EXPECT_EQ(scalar.bit_size, batch.bit_size) << what;
  EXPECT_EQ(scalar.is_compressed, batch.is_compressed) << what;
  EXPECT_EQ(scalar.payload, batch.payload) << what;
}

// Runs one codec over one data set through every batch split and compares
// against the per-block scalar loop.
void check_codec(const Compressor& comp, const std::vector<Block>& blocks,
                 const std::string& label) {
  const std::vector<BlockView> views = to_views(blocks);

  // The scalar oracle: exactly the loop Compressor's defaults run.
  std::vector<BlockAnalysis> scalar_a(blocks.size());
  std::vector<CompressedBlock> scalar_c(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    scalar_a[i] = comp.analyze(views[i]);
    scalar_c[i] = comp.compress(views[i]);
  }

  // View-based kernels at several split sizes (1 = degenerate batches,
  // 5 = shard boundaries that do not divide the stream, all = one batch).
  for (const size_t split : {size_t{1}, size_t{5}, blocks.size()}) {
    std::vector<BlockAnalysis> batch_a(blocks.size());
    std::vector<CompressedBlock> batch_c(blocks.size());
    for (size_t begin = 0; begin < blocks.size(); begin += split) {
      const size_t len = std::min(split, blocks.size() - begin);
      const std::span<const BlockView> part(views.data() + begin, len);
      comp.analyze_batch(part, batch_a.data() + begin);
      comp.compress_batch(part, batch_c.data() + begin);
    }
    for (size_t i = 0; i < blocks.size(); ++i) {
      const std::string what =
          comp.name() + "/" + label + " block " + std::to_string(i) + " split " +
          std::to_string(split);
      expect_analysis_eq(scalar_a[i], batch_a[i], what);
      expect_payload_eq(scalar_c[i], batch_c[i], what);
    }
  }

  // The owned-block convenience overloads forward to the same kernels.
  const std::vector<BlockAnalysis> conv_a = comp.analyze_batch(blocks);
  const std::vector<CompressedBlock> conv_c = comp.compress_batch(blocks);
  ASSERT_EQ(conv_a.size(), blocks.size());
  ASSERT_EQ(conv_c.size(), blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const std::string what = comp.name() + "/" + label + " block " + std::to_string(i) + " conv";
    expect_analysis_eq(scalar_a[i], conv_a[i], what);
    expect_payload_eq(scalar_c[i], conv_c[i], what);
  }
}

TEST(BatchKernels, ByteIdenticalToScalarLoopForEveryRegistryCodec) {
  const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  CodecOptions opts = test::test_options(training);
  // Train the shared E2MC model once; the E2MC and TSLC-* factories reuse it.
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  const std::map<std::string, std::vector<Block>> datasets = {
      {"random", random_blocks(48)},
      {"all-zero", zero_blocks(16)},
      {"denormal", denormal_blocks(48)},
      {"value-similar", to_blocks(test::quantized_walk(21, 48))},
      {"repeat-delta", repeat_delta_blocks(48)},
  };

  size_t tested = 0;
  for (const CodecInfo* info : CodecRegistry::instance().entries()) {
    if (!info->make) continue;  // RAW has no Compressor form
    const auto comp = CodecRegistry::instance().create(info->name, opts);
    for (const auto& [label, blocks] : datasets) check_codec(*comp, blocks, label);
    ++tested;
  }
  // The registry must have yielded the four schemes with real batch kernels
  // (plus Huffman and the TSLC variants on the default loop).
  EXPECT_GE(tested, 7u);
}

// --- BlockCodec::process_batch ----------------------------------------------
// The memory-controller policies' batch kernel must match the per-block
// scalar process() loop field for field — including the decoded bytes lossy
// SLC blocks mutate — for every registry policy, every (safe, threshold)
// region annotation, and any batch split. This is the contract that lets
// ApproxMemory's commit kernel hand whole engine shards to process_batch.

void expect_result_eq(const BlockCodecResult& scalar, const BlockCodecResult& batch,
                      const std::string& what) {
  EXPECT_EQ(scalar.bursts, batch.bursts) << what;
  EXPECT_EQ(scalar.lossless_bits, batch.lossless_bits) << what;
  EXPECT_EQ(scalar.final_bits, batch.final_bits) << what;
  EXPECT_EQ(scalar.lossy, batch.lossy) << what;
  EXPECT_EQ(scalar.stored_uncompressed, batch.stored_uncompressed) << what;
  EXPECT_EQ(scalar.truncated_symbols, batch.truncated_symbols) << what;
  EXPECT_EQ(scalar.decoded, batch.decoded) << what;
}

void check_block_codec(const BlockCodec& codec, const std::vector<Block>& blocks,
                       bool safe, size_t threshold, const std::string& label) {
  const std::vector<BlockView> views = to_views(blocks);

  // The scalar oracle: exactly the loop BlockCodec's default runs.
  std::vector<BlockCodecResult> scalar(blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) scalar[i] = codec.process(views[i], safe, threshold);

  for (const size_t split : {size_t{1}, size_t{5}, blocks.size()}) {
    std::vector<BlockCodecResult> batch(blocks.size());
    for (size_t begin = 0; begin < blocks.size(); begin += split) {
      const size_t len = std::min(split, blocks.size() - begin);
      codec.process_batch(std::span<const BlockView>(views.data() + begin, len), safe, threshold,
                          batch.data() + begin);
    }
    for (size_t i = 0; i < blocks.size(); ++i) {
      expect_result_eq(scalar[i], batch[i],
                       codec.name() + "/" + label + " safe=" + std::to_string(safe) +
                           " threshold=" + std::to_string(threshold) + " block " +
                           std::to_string(i) + " split " + std::to_string(split));
    }
  }
}

TEST(BatchKernels, ProcessBatchMatchesScalarForEveryRegistryPolicy) {
  const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  CodecOptions opts = test::test_options(training);
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  const std::map<std::string, std::vector<Block>> datasets = {
      {"random", random_blocks(24)},
      {"all-zero", zero_blocks(8)},
      {"value-similar", to_blocks(test::quantized_walk(21, 48))},
  };
  // Region annotations covering every policy branch: unsafe, safe at the
  // config threshold, tighter than config (the cached-codec path), looser
  // than config, and a zero threshold (never lossy even when safe).
  const std::vector<std::pair<bool, size_t>> annotations = {
      {false, 16}, {true, 16}, {true, 4}, {true, 64}, {true, 0}};

  size_t lossy_seen = 0;
  for (const CodecInfo* info : CodecRegistry::instance().entries()) {
    const auto codec = CodecRegistry::instance().create_block_codec(info->name, opts);
    for (const auto& [label, blocks] : datasets) {
      for (const auto& [safe, threshold] : annotations) {
        check_block_codec(*codec, blocks, safe, threshold, label);
        if (info->lossy && safe && threshold > 0) {
          for (const Block& b : blocks)
            lossy_seen += codec->process(b.view(), safe, threshold).lossy ? 1 : 0;
        }
      }
    }
  }
  // The sweep must have exercised the lossy materialization path.
  EXPECT_GT(lossy_seen, 0u);
}

// --- SIMD dispatch -----------------------------------------------------------
// The vector kernels behind slc::simd are an implementation detail: pinning
// the scalar sub-kernels (simd::force_scalar, same switch the SLC_FORCE_SCALAR
// env var throws) must not change a single output byte of any codec. On hosts
// without AVX2 both runs take the scalar path and the comparison is trivially
// true — CI also runs this whole binary once with SLC_FORCE_SCALAR=1 so the
// scalar oracle itself stays covered everywhere.

// Restores runtime dispatch even when an ASSERT bails out of the test body.
struct ForceScalarGuard {
  ~ForceScalarGuard() { simd::force_scalar(false); }
};

TEST(BatchKernels, ForceScalarTogglePreservesEveryByte) {
  ForceScalarGuard guard;
  const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  CodecOptions opts = test::test_options(training);
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  const std::map<std::string, std::vector<Block>> datasets = {
      {"random", random_blocks(33)},
      {"value-similar", to_blocks(test::quantized_walk(21, 48))},
      {"repeat-delta", repeat_delta_blocks(31)},
  };

  for (const CodecInfo* info : CodecRegistry::instance().entries()) {
    if (!info->make) continue;
    const auto comp = CodecRegistry::instance().create(info->name, opts);
    for (const auto& [label, blocks] : datasets) {
      const std::vector<BlockView> views = to_views(blocks);
      std::vector<BlockAnalysis> a_scalar(blocks.size()), a_simd(blocks.size());
      std::vector<CompressedBlock> c_scalar(blocks.size()), c_simd(blocks.size());

      simd::force_scalar(true);
      ASSERT_EQ(simd::active_level(), simd::Level::kScalar);
      comp->analyze_batch(views, a_scalar.data());
      comp->compress_batch(views, c_scalar.data());

      simd::force_scalar(false);  // back to this host's probed default
      comp->analyze_batch(views, a_simd.data());
      comp->compress_batch(views, c_simd.data());

      for (size_t i = 0; i < blocks.size(); ++i) {
        const std::string what = comp->name() + "/" + label + " block " + std::to_string(i) +
                                 " force-scalar toggle (active=" +
                                 std::string(simd::active_level_name()) + ")";
        expect_analysis_eq(a_scalar[i], a_simd[i], what);
        expect_payload_eq(c_scalar[i], c_simd[i], what);
      }
    }
  }
}

// Batch splits around the kernels' tile widths — 1 (degenerate), 7/9 (around
// the E2MC 8-symbol gather), 15/17 (around BDI's 16-word tiles), 31/33
// (around FPC's 32-words-per-iteration pack) — on a stream whose length
// divides none of them. Any even-division assumption in the staging, the
// prefix-sum scatter, or a vector tail loop shows up here.
TEST(BatchKernels, OddBatchSplitsMatchScalar) {
  const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  CodecOptions opts = test::test_options(training);
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  const std::vector<Block> blocks = repeat_delta_blocks(35);
  const std::vector<BlockView> views = to_views(blocks);

  for (const CodecInfo* info : CodecRegistry::instance().entries()) {
    if (!info->make) continue;
    const auto comp = CodecRegistry::instance().create(info->name, opts);

    std::vector<BlockAnalysis> scalar_a(blocks.size());
    std::vector<CompressedBlock> scalar_c(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
      scalar_a[i] = comp->analyze(views[i]);
      scalar_c[i] = comp->compress(views[i]);
    }

    for (const size_t split : {1, 7, 9, 15, 17, 31, 33}) {
      std::vector<BlockAnalysis> batch_a(blocks.size());
      std::vector<CompressedBlock> batch_c(blocks.size());
      for (size_t begin = 0; begin < blocks.size(); begin += split) {
        const size_t len = std::min(split, blocks.size() - begin);
        const std::span<const BlockView> part(views.data() + begin, len);
        comp->analyze_batch(part, batch_a.data() + begin);
        comp->compress_batch(part, batch_c.data() + begin);
      }
      for (size_t i = 0; i < blocks.size(); ++i) {
        const std::string what = comp->name() + " odd split " + std::to_string(split) +
                                 " block " + std::to_string(i);
        expect_analysis_eq(scalar_a[i], batch_a[i], what);
        expect_payload_eq(scalar_c[i], batch_c[i], what);
      }
    }
  }
}

// Misaligned block pointers: the same stream viewed at byte offsets 0, 1 and
// 3 from the backing allocation, so every 32-byte vector load in the kernels
// is genuinely unaligned (block *sizes* stay kBlockBytes — only the pointers
// shift). Batch results must match the scalar loop over the same shifted
// views, and shifting must not perturb a kernel into reading outside its
// block (ASan in CI would catch an over-read).
TEST(BatchKernels, MisalignedBlockPointersMatchScalar) {
  const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  CodecOptions opts = test::test_options(training);
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  constexpr size_t kBlocks = 24;
  // Compressible content (repeated values + small deltas) so the vector
  // probe/classify/gather paths actually engage instead of bailing to raw.
  std::vector<uint8_t> pattern;
  pattern.reserve(kBlocks * kBlockBytes);
  {
    Rng rng(0xA11E5ull);
    uint64_t base = 0x0807060504030201ull;
    for (size_t i = 0; i < kBlocks * kBlockBytes / 8; ++i) {
      if (i % 16 == 0) base = rng.next();
      const uint64_t v = rng.chance(0.5) ? base : base + rng.next_below(120);
      for (int k = 0; k < 8; ++k) pattern.push_back(static_cast<uint8_t>(v >> (8 * k)));
    }
  }

  for (const size_t offset : {size_t{0}, size_t{1}, size_t{3}}) {
    std::vector<uint8_t> arena(offset + pattern.size());
    std::memcpy(arena.data() + offset, pattern.data(), pattern.size());
    std::vector<BlockView> views;
    views.reserve(kBlocks);
    for (size_t b = 0; b < kBlocks; ++b)
      views.push_back(BlockView(
          std::span<const uint8_t>(arena.data() + offset + b * kBlockBytes, kBlockBytes)));

    for (const CodecInfo* info : CodecRegistry::instance().entries()) {
      if (!info->make) continue;
      const auto comp = CodecRegistry::instance().create(info->name, opts);

      std::vector<BlockAnalysis> batch_a(kBlocks);
      std::vector<CompressedBlock> batch_c(kBlocks);
      comp->analyze_batch(views, batch_a.data());
      comp->compress_batch(views, batch_c.data());

      for (size_t i = 0; i < kBlocks; ++i) {
        const std::string what = comp->name() + " offset " + std::to_string(offset) +
                                 " block " + std::to_string(i);
        expect_analysis_eq(comp->analyze(views[i]), batch_a[i], what);
        expect_payload_eq(comp->compress(views[i]), batch_c[i], what);
      }
    }
  }
}

// Lossless schemes must still roundtrip from the batch-produced payloads.
TEST(BatchKernels, BatchPayloadsRoundtripLossless) {
  const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  CodecOptions opts = test::test_options(training);
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  const std::vector<Block> blocks = random_blocks(32);
  for (const std::string& name : CodecRegistry::instance().lossless_names()) {
    const CodecInfo& info = CodecRegistry::instance().at(name);
    if (!info.make) continue;
    const auto comp = CodecRegistry::instance().create(name, opts);
    const std::vector<CompressedBlock> payloads = comp->compress_batch(blocks);
    for (size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(comp->decompress(payloads[i], kBlockBytes), blocks[i])
          << name << " block " << i;
    }
  }
}

TEST(BatchKernels, BatchPayloadsDecompressForEveryScheme) {
  // Closes the decompress gap over the batch paths: every scheme's
  // compress_batch payloads must decode to exactly what the scalar
  // compress()+decompress() path yields — for lossless schemes that is the
  // input itself; for the lossy TSLC variants the approximation is part of
  // the contract, and batch/scalar drift in the decoded bytes is a bug.
  const std::vector<uint8_t> training = test::quantized_walk(7, 64);
  CodecOptions opts = test::test_options(training);
  opts.trained_e2mc = E2mcCompressor::train(training, opts.e2mc);

  const std::vector<std::vector<Block>> corpora = {random_blocks(24), zero_blocks(8),
                                                   repeat_delta_blocks(16), denormal_blocks(8)};
  for (const auto& blocks : corpora) {
    for (const std::string& name : CodecRegistry::instance().names()) {
      const CodecInfo& info = CodecRegistry::instance().at(name);
      if (!info.make) continue;  // RAW has no Compressor form
      const auto comp = CodecRegistry::instance().create(name, opts);
      const std::vector<CompressedBlock> payloads = comp->compress_batch(blocks);
      for (size_t i = 0; i < blocks.size(); ++i) {
        const Block batch_decoded = comp->decompress(payloads[i], kBlockBytes);
        const Block scalar_decoded =
            comp->decompress(comp->compress(blocks[i].view()), kBlockBytes);
        EXPECT_EQ(batch_decoded, scalar_decoded) << name << " block " << i;
        if (!info.lossy) {
          EXPECT_EQ(batch_decoded, blocks[i]) << name << " block " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace slc

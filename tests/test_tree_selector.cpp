// TSLC tree selector: hardware-faithful window selection (Sec. III-D/F).
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "core/tree_selector.h"

namespace slc {
namespace {

std::vector<uint16_t> uniform_lens(uint16_t len, size_t n = 64) {
  return std::vector<uint16_t>(n, len);
}

TEST(TreeSelector, CompSizeIsSum) {
  auto lens = uniform_lens(7);
  EXPECT_EQ(TreeSlcSelector::comp_size_bits(lens), 7u * 64u);
}

TEST(TreeSelector, ZeroExtraBitsSelectsNothing) {
  const TreeSlcSelector sel(false);
  auto lens = uniform_lens(8);
  EXPECT_FALSE(sel.select(lens, 0).has_value());
}

TEST(TreeSelector, SingleSymbolWindowWhenEnough) {
  const TreeSlcSelector sel(false);
  auto lens = uniform_lens(4);
  lens[10] = 15;  // one long symbol
  const auto c = sel.select(lens, 12);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->count, 1u);
  EXPECT_EQ(c->start, 10u);
  EXPECT_EQ(c->sum_bits, 15u);
}

TEST(TreeSelector, PriorityEncoderPicksFirstWindow) {
  const TreeSlcSelector sel(false);
  auto lens = uniform_lens(4);
  lens[20] = 14;
  lens[40] = 15;  // later window also qualifies but must not win
  const auto c = sel.select(lens, 13);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->start, 20u);
}

TEST(TreeSelector, EscalatesToLargerWindows) {
  const TreeSlcSelector sel(false);
  auto lens = uniform_lens(4);  // windows: 1->4, 2->8, 4->16, 8->32, 16->64
  const auto c = sel.select(lens, 20);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->count, 8u);      // smallest power-of-two window with sum >= 20
  EXPECT_EQ(c->sum_bits, 32u);
}

TEST(TreeSelector, AlignedStarts) {
  const TreeSlcSelector sel(false);
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint16_t> lens(64);
    for (auto& l : lens) l = static_cast<uint16_t>(1 + rng.next_below(16));
    const size_t extra = 1 + rng.next_below(128);
    const auto c = sel.select(lens, extra);
    if (!c) continue;
    EXPECT_EQ(c->start % c->count, 0u) << "power-of-two windows are self-aligned";
    EXPECT_GE(c->sum_bits, extra);
    EXPECT_LE(c->count, kMaxApproxSymbols);
  }
}

TEST(TreeSelector, NoWindowMeansLossless) {
  const TreeSlcSelector sel(false);
  auto lens = uniform_lens(1);  // 16-symbol window sums to only 16
  EXPECT_FALSE(sel.select(lens, 64).has_value());
}

TEST(TreeSelector, OptUsesIntermediateWindows) {
  // extra_bits between the 4-window and 8-window sums: OPT's 6-symbol window
  // (sum 24) must beat the base selector's 8-symbol window (sum 32).
  auto lens = uniform_lens(4);
  const size_t extra = 20;
  const TreeSlcSelector base(false), opt(true);
  const auto cb = base.select(lens, extra);
  const auto co = opt.select(lens, extra);
  ASSERT_TRUE(cb && co);
  EXPECT_EQ(cb->count, 8u);
  EXPECT_EQ(co->count, 6u);
  EXPECT_LT(co->sum_bits, cb->sum_bits);
}

TEST(TreeSelector, OptTwelveSymbolWindow) {
  auto lens = uniform_lens(4);
  const size_t extra = 36;  // 8-window sum 32 < 36 <= 12-window sum 48
  const TreeSlcSelector base(false), opt(true);
  const auto cb = base.select(lens, extra);
  const auto co = opt.select(lens, extra);
  ASSERT_TRUE(cb && co);
  EXPECT_EQ(cb->count, 16u);
  EXPECT_EQ(co->count, 12u);
}

TEST(TreeSelector, OptNeverTruncatesMoreSymbols) {
  // The hardware policy minimizes approximated SYMBOLS (lowest level wins,
  // Sec. III-D); OPT's extra sizes (6, 12) slot between the power-of-two
  // sizes, so its selection size never exceeds the base selector's.
  Rng rng(2);
  const TreeSlcSelector base(false), opt(true);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint16_t> lens(64);
    for (auto& l : lens) l = static_cast<uint16_t>(1 + rng.next_below(16));
    const size_t extra = 1 + rng.next_below(128);
    const auto cb = base.select(lens, extra);
    const auto co = opt.select(lens, extra);
    if (cb) {
      ASSERT_TRUE(co.has_value()) << "OPT has a superset of windows";
      EXPECT_LE(co->count, cb->count);
    }
  }
}

TEST(TreeSelector, WindowsStayInsideOneWay) {
  // All selectable windows must sit inside one 16-symbol decoding way —
  // truncation never splits across pdp boundaries.
  const TreeSlcSelector opt(true);
  auto lens = uniform_lens(5);
  for (const TreeCandidate& w : opt.windows(lens)) {
    const size_t way_first = w.start / 16;
    const size_t way_last = (w.start + w.count - 1) / 16;
    EXPECT_EQ(way_first, way_last) << "window " << w.start << "+" << w.count;
  }
}

TEST(TreeSelector, WindowCounts) {
  auto lens = uniform_lens(1);
  const TreeSlcSelector base(false), opt(true);
  // Base: 64 + 32 + 16 + 8 + 4 windows (sizes 1,2,4,8,16).
  EXPECT_EQ(base.windows(lens).size(), 64u + 32u + 16u + 8u + 4u);
  // OPT adds 8 six-symbol and 4 twelve-symbol windows (Sec. III-F).
  EXPECT_EQ(opt.windows(lens).size(), base.windows(lens).size() + 8u + 4u);
}

TEST(TreeSelector, OvershootBits) {
  TreeCandidate c{0, 4, 30};
  EXPECT_EQ(TreeSlcSelector::overshoot_bits(c, 20), 10u);
  EXPECT_EQ(TreeSlcSelector::overshoot_bits(c, 30), 0u);
  EXPECT_EQ(TreeSlcSelector::overshoot_bits(c, 40), 0u);
}

// Property: the returned window always covers extra_bits with the smallest
// participating window size (selection order is by size).
TEST(TreeSelectorProperty, SmallestQualifyingSize) {
  Rng rng(3);
  const TreeSlcSelector sel(true);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint16_t> lens(64);
    for (auto& l : lens) l = static_cast<uint16_t>(1 + rng.next_below(16));
    const size_t extra = 1 + rng.next_below(160);
    const auto c = sel.select(lens, extra);
    if (!c) continue;
    // No window of a strictly smaller size may qualify.
    for (const TreeCandidate& w : sel.windows(lens)) {
      if (w.count < c->count) {
        EXPECT_LT(w.sum_bits, extra);
      }
    }
  }
}

}  // namespace
}  // namespace slc

// Race-hunting stress suite for the concurrent stack, written for the TSan
// CI tier (the plain tier runs it too; the race detector gives it teeth).
// Three families:
//   * engine lifetime vs outstanding futures — the stored-exception
//     contract: shutting down or destroying the engine with futures alive
//     must deliver every result or a std::runtime_error, never a hang, leak
//     or racy read;
//   * server submits racing engine shutdown — every ticket completes, the
//     job abandon hook fails batches the pool will never run, and
//     drain()/~CodecServer return instead of waiting on a counter that can
//     no longer move;
//   * shared fingerprint-cache traffic — concurrent analyze jobs through one
//     engine-owned cache stay byte-identical to the uncached oracle;
//   * TraceStream producer/consumer traffic — a slow producer against fast
//     consumers, backpressure under a tiny budget, and mid-stream
//     destruction (cancel) must neither hang, drop, nor double-deliver a
//     chunk.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "server/codec_server.h"
#include "sim/trace_stream.h"
#include "test_util.h"

namespace slc {
namespace {

using test::quantized_walk;
using test::test_options;

const std::vector<uint8_t>& training() {
  static const std::vector<uint8_t> data = quantized_walk(31, 256);
  return data;
}

StreamConfig e2mc_stream(const char* name) {
  StreamConfig cfg;
  cfg.name = name;
  cfg.codec = "E2MC";
  cfg.options = test_options(training());
  return cfg;
}

// --- engine lifetime vs futures ---------------------------------------------

// Destroying the engine with futures still outstanding: each future must
// resolve afterwards — normally (the job drained before the stop) or with
// the stored std::runtime_error (abandoned in the queue) — at 1 worker and
// at N workers.
TEST(ConcurrencyStress, EngineDestroyedWithOutstandingFutures) {
  for (const unsigned threads : {1u, 4u}) {
    constexpr size_t kJobs = 32, kItems = 4;
    std::vector<CodecFuture<void>> futs;
    futs.reserve(kJobs);
    std::atomic<size_t> ran{0};
    {
      CodecEngine engine(threads);
      for (size_t j = 0; j < kJobs; ++j)
        futs.push_back(engine.submit(kItems, [&ran](size_t b, size_t e, unsigned) {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          ran.fetch_add(e - b);
        }));
    }  // ~CodecEngine: shuts down; jobs still queued are abandoned
    size_t ok = 0, abandoned = 0;
    for (auto& f : futs) {
      try {
        f.wait();
        ++ok;
      } catch (const std::runtime_error&) {
        ++abandoned;
      }
    }
    EXPECT_EQ(ok + abandoned, kJobs) << "threads=" << threads;
    // A job that resolved normally ran every item (abandoned jobs may have
    // run the shards claimed before the stop, hence >=, not ==).
    EXPECT_GE(ran.load(), kItems * ok) << "threads=" << threads;
  }
}

// wait() racing shutdown() from concurrent waiter threads: every waiter
// returns (result or stored exception); none deadlocks on a condvar whose
// notifier is gone.
TEST(ConcurrencyStress, FutureWaitRacesEngineShutdown) {
  for (const unsigned threads : {1u, 4u}) {
    CodecEngine engine(threads);
    constexpr size_t kJobs = 48, kWaiters = 4;
    std::vector<CodecFuture<void>> futs;
    futs.reserve(kJobs);
    for (size_t j = 0; j < kJobs; ++j)
      futs.push_back(engine.submit(4, [](size_t, size_t, unsigned) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }));
    std::atomic<size_t> ok{0}, abandoned{0};
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (size_t w = 0; w < kWaiters; ++w)
      waiters.emplace_back([&futs, &ok, &abandoned, w] {
        for (size_t j = w; j < kJobs; j += kWaiters) {
          try {
            futs[j].wait();
            ok.fetch_add(1);
          } catch (const std::runtime_error&) {
            abandoned.fetch_add(1);
          }
        }
      });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    engine.shutdown();
    for (auto& w : waiters) w.join();
    EXPECT_EQ(ok.load() + abandoned.load(), kJobs) << "threads=" << threads;
  }
}

// --- server vs engine shutdown ----------------------------------------------

// Deterministic reproduction of the stranded-batch deadlock: a single-worker
// engine is pinned on a blocker job while the server dispatches a batch, so
// the batch is accepted at enqueue but its shards are never claimed. The
// shutdown abandons it; the abandon hook must fail the ticket and retire the
// batch — before the hook existed, ticket.wait(), drain() and ~CodecServer
// all hung here.
TEST(ConcurrencyStress, EngineShutdownFailsEnqueuedServerBatch) {
  auto engine = std::make_shared<CodecEngine>(1);
  std::atomic<bool> started{false}, release{false};
  auto blocker = engine->submit(1, [&started, &release](size_t, size_t, unsigned) {
    started = true;
    while (!release) std::this_thread::sleep_for(std::chrono::microseconds(100));
  });
  while (!started) std::this_thread::sleep_for(std::chrono::microseconds(100));

  CodecServer::Config cfg;
  cfg.engine = engine;
  cfg.batch_blocks = 1;  // dispatch at once: the batch queues behind the blocker
  CodecServer server(cfg);
  const StreamId s = server.open_stream(e2mc_stream("stuck"));
  const auto data = quantized_walk(32, 2);
  auto ticket = server.submit(s, Request{.bytes = data});

  std::thread stopper([&engine] { engine->shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  release = true;  // worker finishes the blocker, sees stop_, never claims the batch
  const Response res = ticket.wait();
  EXPECT_EQ(res.status, ResponseStatus::kError);
  EXPECT_THROW(res.throw_if_failed(), std::runtime_error);
  stopper.join();
  server.drain();  // regression: returned only because the hook retired the batch
  EXPECT_EQ(server.inflight_blocks(), 0u);
  blocker.wait();  // the blocker itself drained normally
}

// Free-running submitters racing an engine shutdown, with backpressure
// enabled so parked submitters must also be released. Every ticket resolves,
// and the server drains cleanly afterwards.
TEST(ConcurrencyStress, ServerSubmitsRaceEngineShutdown) {
  auto engine = std::make_shared<CodecEngine>(4);
  CodecServer::Config cfg;
  cfg.engine = engine;
  cfg.batch_blocks = 4;
  cfg.max_inflight_blocks = 16;
  CodecServer server(cfg);
  const StreamId s = server.open_stream(e2mc_stream("race"));

  constexpr size_t kSubmitters = 3, kIters = 40;
  std::atomic<size_t> ok{0}, failed{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (size_t t = 0; t < kSubmitters; ++t)
    submitters.emplace_back([&server, &ok, &failed, s, t] {
      const auto data = quantized_walk(100 + t, 2);
      for (size_t i = 0; i < kIters; ++i) {
        const Response res = server.submit(s, Request{.bytes = data}).wait();
        if (res.ok())
          ok.fetch_add(1);
        else
          failed.fetch_add(1);  // abandoned by the engine shutdown
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  engine->shutdown();
  for (auto& th : submitters) th.join();
  EXPECT_EQ(ok.load() + failed.load(), kSubmitters * kIters);
  server.drain();  // no batch may be stranded by the shutdown
  EXPECT_EQ(server.inflight_blocks(), 0u);
}

// --- shared fingerprint cache -----------------------------------------------

// Concurrent client threads pushing overlapping analyze jobs through one
// engine and its shared fingerprint cache: every result must equal the
// single-threaded uncached oracle, no matter how probes interleave. (The
// decisions are the contract; hit/miss tallies are not.)
TEST(ConcurrencyStress, SharedCacheConcurrentAnalyzeJobs) {
  const auto blocks = test::dedup_corpus({.blocks = 96,
                                          .dup_fraction = 0.5,
                                          .flip_fraction = 0.2,
                                          .zero_fraction = 0.1,
                                          .seed = 91});
  auto engine = std::make_shared<CodecEngine>(4);
  CodecOptions cached_opts = test_options(training());
  cached_opts.fingerprint_cache = engine->fingerprint_cache();
  const auto cached = CodecRegistry::instance().create("TSLC-OPT", cached_opts);
  const auto uncached = CodecRegistry::instance().create("TSLC-OPT", test_options(training()));
  CodecEngine reference(1);
  const auto want = reference.analyze_stream(*uncached, blocks, 32);

  constexpr size_t kClients = 3, kIters = 4;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c)
    clients.emplace_back([&engine, &cached, &blocks, &want, &mismatches] {
      for (size_t i = 0; i < kIters; ++i) {
        const auto got = engine->analyze_stream(*cached, blocks, 32);
        if (got.blocks.size() != want.blocks.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t b = 0; b < want.blocks.size(); ++b) {
          if (got.blocks[b].bit_size != want.blocks[b].bit_size ||
              got.blocks[b].lossy != want.blocks[b].lossy ||
              got.blocks[b].truncated_symbols != want.blocks[b].truncated_symbols)
            mismatches.fetch_add(1);
        }
      }
    });
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---- TraceStream producer/consumer stress ---------------------------------

KernelTrace tagged_kernel(uint64_t tag) {
  KernelTrace k;
  k.name = "k" + std::to_string(tag);
  k.compute_per_access = 1.0;
  TraceAccess a;
  a.addr = tag * kBlockBytes;  // tag smuggled through the address
  a.bursts = 1;
  k.accesses.push_back(a);
  return k;
}

// Slow producer, fast consumers, a one-chunk budget: every kernel is
// delivered to exactly one consumer and nobody hangs. (Strict FIFO order is
// a single-consumer property and is pinned in test_trace_stream.cpp.)
TEST(ConcurrencyStress, TraceStreamSlowProducerFastConsumers) {
  constexpr uint64_t kKernels = 200;
  TraceStream stream(1);  // tightest budget: every push waits for a pop
  std::mutex seen_m;
  std::vector<uint64_t> seen;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c)
    consumers.emplace_back([&] {
      while (auto chunk = stream.pop()) {
        const uint64_t tag = chunk->accesses.front().addr / kBlockBytes;
        {
          std::lock_guard<std::mutex> lk(seen_m);
          seen.push_back(tag);
        }
        std::this_thread::yield();
      }
    });

  for (uint64_t i = 1; i <= kKernels; ++i) {
    ASSERT_TRUE(stream.push(tagged_kernel(i)));
    if (i % 16 == 0) std::this_thread::yield();  // slow producer
  }
  stream.close();
  for (auto& c : consumers) c.join();
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), kKernels) << "every chunk exactly once";
  for (uint64_t i = 1; i <= kKernels; ++i) EXPECT_EQ(seen[i - 1], i);
  EXPECT_LE(stream.chunk_high_water(), 1u) << "budget must bound the queue";
}

// Mid-stream destruction: consumers cancel while the producer is blocked on
// backpressure. The producer must observe the rejection (push -> false) and
// both sides must unwind without a hang.
TEST(ConcurrencyStress, TraceStreamCancelWhileProducerBlocked) {
  for (int round = 0; round < 20; ++round) {
    auto stream = std::make_shared<TraceStream>(2);
    std::atomic<bool> rejected{false};
    std::thread producer([&] {
      for (uint64_t i = 1;; ++i) {
        if (!stream->push(tagged_kernel(i))) {
          rejected = true;
          return;
        }
      }
    });
    // Drain a few chunks so the producer is mid-flight, then tear down the
    // consumer side the way ~GpuSim-owner code would.
    for (int i = 0; i < 3; ++i) stream->pop();
    stream->cancel();
    producer.join();
    EXPECT_TRUE(rejected.load());
    EXPECT_EQ(stream->pop(), nullptr) << "cancelled stream delivers nothing";
    EXPECT_TRUE(stream->push(tagged_kernel(99)) == false)
        << "pushes after cancel are rejected, not queued";
  }
}

// Producer closes while consumers are mid-drain: all queued chunks arrive,
// then every consumer sees the null terminator.
TEST(ConcurrencyStress, TraceStreamCloseDrainsBeforeTerminating) {
  for (const unsigned consumers_n : {1u, 4u}) {
    TraceStream stream(0);  // unbounded: queue everything up front
    constexpr uint64_t kKernels = 500;
    for (uint64_t i = 1; i <= kKernels; ++i) ASSERT_TRUE(stream.push(tagged_kernel(i)));
    stream.close();

    std::atomic<uint64_t> delivered{0};
    std::vector<std::thread> consumers;
    for (unsigned c = 0; c < consumers_n; ++c)
      consumers.emplace_back([&] {
        while (stream.pop()) delivered.fetch_add(1);
      });
    for (auto& c : consumers) c.join();
    EXPECT_EQ(delivered.load(), kKernels) << consumers_n << " consumers";
    EXPECT_EQ(stream.chunk_high_water(), kKernels);
  }
}

}  // namespace
}  // namespace slc

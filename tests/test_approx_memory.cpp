// ApproxMemory: the extended-cudaMalloc region registry, commits and traces.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "core/slc_block_codec.h"
#include "workloads/approx_memory.h"

namespace slc {
namespace {

// Quantized value-similar floats (grid 0.25): the data shape real benchmark
// inputs have, keeping both float halfwords inside the code table.
std::vector<uint8_t> quantized_walk(uint64_t seed, size_t blocks) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 10.0;
  for (size_t i = 0; i < blocks * kBlockBytes / 4; ++i) {
    walk += rng.uniform(-1.0, 1.0);
    const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
    uint32_t bits;
    __builtin_memcpy(&bits, &v, 4);
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return data;
}

std::shared_ptr<E2mcCompressor> tiny_e2mc() {
  E2mcConfig cfg;
  cfg.sample_fraction = 1.0;
  return E2mcCompressor::train(quantized_walk(11, 64), cfg);
}

TEST(ApproxMemory, AllocPadsToBlocks) {
  ApproxMemory mem;
  const RegionId r = mem.alloc("x", 130, false);
  EXPECT_EQ(mem.region_bytes(r), 2 * kBlockBytes);
  EXPECT_EQ(mem.region_blocks(r), 2u);
}

TEST(ApproxMemory, AddressesAreBlockAlignedAndDisjoint) {
  ApproxMemory mem;
  const RegionId a = mem.alloc("a", 1024, false);
  const RegionId b = mem.alloc("b", 1024, false);
  EXPECT_EQ(mem.region_addr(a) % kBlockBytes, 0u);
  EXPECT_EQ(mem.region_addr(b) % kBlockBytes, 0u);
  EXPECT_GE(mem.region_addr(b), mem.region_addr(a) + 1024);
}

TEST(ApproxMemory, SafeRegionCount) {
  ApproxMemory mem;
  mem.alloc("a", 128, true);
  mem.alloc("b", 128, false);
  mem.alloc("c", 128, true);
  EXPECT_EQ(mem.safe_region_count(), 2u);
}

TEST(ApproxMemory, TypedSpans) {
  ApproxMemory mem;
  const RegionId r = mem.alloc("f", 512, false);
  auto s = mem.span<float>(r);
  EXPECT_EQ(s.size(), 128u);
  s[0] = 3.5f;
  EXPECT_EQ(mem.span<const float>(r)[0], 3.5f);
}

TEST(ApproxMemory, CommitWithoutCodecIsExact) {
  ApproxMemory mem;
  const RegionId r = mem.alloc("f", 512, true);
  auto s = mem.span<float>(r);
  for (size_t i = 0; i < s.size(); ++i) s[i] = static_cast<float>(i);
  mem.commit(r);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], static_cast<float>(i));
}

TEST(ApproxMemory, LosslessCodecRecordsBurstsWithoutMutation) {
  ApproxMemory mem;
  auto codec = std::make_shared<LosslessBlockCodec>(tiny_e2mc(), 32);
  mem.set_codec(codec);
  const RegionId r = mem.alloc("zeros", 4 * kBlockBytes, true);
  mem.commit(r);
  const CommitStats st = mem.region_stats(r);
  EXPECT_EQ(st.blocks, 4u);
  EXPECT_EQ(st.lossy_blocks, 0u);
  // Zero blocks compress far below one burst.
  EXPECT_EQ(st.bursts, 4u);  // one per block
  for (uint8_t byte : mem.span<const uint8_t>(r)) EXPECT_EQ(byte, 0);
}

TEST(ApproxMemory, SlcCodecMutatesOnlySafeRegions) {
  auto e2mc = tiny_e2mc();
  SlcConfig cfg;
  cfg.threshold_bytes = 16;
  cfg.variant = SlcVariant::kSimp;
  auto codec = std::make_shared<SlcBlockCodec>(e2mc, cfg);

  ApproxMemory mem;
  mem.set_codec(codec);
  const RegionId safe = mem.alloc("safe", 64 * kBlockBytes, true);
  const RegionId unsafe = mem.alloc("unsafe", 64 * kBlockBytes, false);

  const auto bytes = quantized_walk(3, 64);
  std::copy(bytes.begin(), bytes.end(), mem.span<uint8_t>(safe).begin());
  const auto unsafe_before = std::vector<uint8_t>(mem.span<const uint8_t>(unsafe).begin(),
                                                  mem.span<const uint8_t>(unsafe).end());
  mem.commit_all();
  // Unsafe region bytes identical.
  const auto unsafe_after = mem.span<const uint8_t>(unsafe);
  EXPECT_TRUE(std::equal(unsafe_before.begin(), unsafe_before.end(), unsafe_after.begin()));
  EXPECT_EQ(mem.region_stats(unsafe).lossy_blocks, 0u);
}

TEST(ApproxMemory, TraceCapturesBursts) {
  ApproxMemory mem;
  auto codec = std::make_shared<RawBlockCodec>(32);
  mem.set_codec(codec);
  const RegionId r = mem.alloc("t", 3 * kBlockBytes, false);
  mem.commit(r);
  mem.begin_kernel("k", 2.0, 4);
  mem.trace_read(r);
  mem.trace_write(r);
  const auto& trace = mem.trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].name, "k");
  EXPECT_EQ(trace[0].compute_per_access, 2.0);
  ASSERT_EQ(trace[0].accesses.size(), 6u);
  EXPECT_FALSE(trace[0].accesses[0].write);
  EXPECT_TRUE(trace[0].accesses[3].write);
  for (const auto& a : trace[0].accesses) {
    EXPECT_EQ(a.bursts, 4u);  // RAW codec: max bursts
    EXPECT_EQ(a.addr % kBlockBytes, 0u);
  }
}

TEST(ApproxMemory, TraceZipInterleaves) {
  ApproxMemory mem;
  const RegionId a = mem.alloc("a", 2 * kBlockBytes, false);
  const RegionId b = mem.alloc("b", 2 * kBlockBytes, false);
  mem.begin_kernel("z", 1.0);
  const RegionId reads[] = {a};
  const RegionId writes[] = {b};
  mem.trace_zip(reads, writes);
  const auto& acc = mem.trace()[0].accesses;
  ASSERT_EQ(acc.size(), 4u);
  EXPECT_EQ(acc[0].addr, mem.region_addr(a));
  EXPECT_EQ(acc[1].addr, mem.region_addr(b));
  EXPECT_TRUE(acc[1].write);
  EXPECT_EQ(acc[2].addr, mem.region_addr(a) + kBlockBytes);
}

TEST(ApproxMemory, UncommittedBlocksCostMaxBursts) {
  ApproxMemory mem;
  auto codec = std::make_shared<LosslessBlockCodec>(tiny_e2mc(), 32);
  mem.set_codec(codec);
  const RegionId r = mem.alloc("u", kBlockBytes, false);
  mem.begin_kernel("k", 1.0);
  mem.trace_read(r);  // never committed
  EXPECT_EQ(mem.trace()[0].accesses[0].bursts, 4u);
}

// --- async commits ----------------------------------------------------------

namespace {

std::shared_ptr<SlcBlockCodec> tiny_slc() {
  SlcConfig cfg;
  cfg.threshold_bytes = 16;
  cfg.variant = SlcVariant::kOpt;
  return std::make_shared<SlcBlockCodec>(tiny_e2mc(), cfg);
}

/// Fills a fresh memory with two value-similar regions and returns their ids.
std::vector<RegionId> fill_two_regions(ApproxMemory& mem) {
  std::vector<RegionId> regions;
  for (uint64_t s = 0; s < 2; ++s) {
    regions.push_back(mem.alloc("r" + std::to_string(s), 48 * kBlockBytes, /*safe=*/true, 16));
    const auto src = quantized_walk(70 + s, 48);
    std::copy(src.begin(), src.end(), mem.span<uint8_t>(regions.back()).begin());
  }
  return regions;
}

}  // namespace

// commit_async + flush must be byte-identical to commit(): same mutated
// contents, same stats, same burst counts in the trace.
TEST(ApproxMemory, CommitAsyncMatchesSyncCommit) {
  auto run = [](bool async) {
    ApproxMemory mem;
    mem.set_codec(tiny_slc());
    const auto regions = fill_two_regions(mem);
    for (const RegionId r : regions) {
      if (async) {
        mem.commit_async(r);
      } else {
        mem.commit(r);
      }
    }
    mem.flush();
    mem.begin_kernel("k", 1.0);
    std::vector<uint8_t> bursts;
    std::vector<uint8_t> contents;
    for (const RegionId r : regions) {
      mem.trace_read(r);
      const auto bytes = mem.span<const uint8_t>(r);
      contents.insert(contents.end(), bytes.begin(), bytes.end());
    }
    for (const TraceAccess& a : mem.trace()[0].accesses) bursts.push_back(a.bursts);
    return std::make_tuple(contents, bursts, mem.stats());
  };

  const auto [sync_data, sync_bursts, sync_stats] = run(false);
  const auto [async_data, async_bursts, async_stats] = run(true);
  EXPECT_EQ(sync_data, async_data);
  EXPECT_EQ(sync_bursts, async_bursts);
  EXPECT_TRUE(sync_stats == async_stats);  // all-field CommitStats equality
}

TEST(ApproxMemory, FlushDrainsAllPendingCommits) {
  ApproxMemory mem;
  mem.set_codec(tiny_slc());
  const auto regions = fill_two_regions(mem);
  for (const RegionId r : regions) {
    mem.commit_async(r);
    EXPECT_TRUE(mem.commit_pending(r));
  }
  mem.flush();
  for (const RegionId r : regions) EXPECT_FALSE(mem.commit_pending(r));
  EXPECT_EQ(mem.stats().blocks, 96u);  // 2 regions x 48 blocks, all settled
}

// Every observation settles: span(), trace and stats see post-commit state
// without an explicit flush().
TEST(ApproxMemory, ObservationsSettlePendingCommit) {
  ApproxMemory reference;
  reference.set_codec(tiny_slc());
  const auto ref_regions = fill_two_regions(reference);
  reference.commit(ref_regions[0]);

  ApproxMemory mem;
  mem.set_codec(tiny_slc());
  const auto regions = fill_two_regions(mem);
  mem.commit_async(regions[0]);

  // span() settles before exposing bytes.
  const auto got = mem.span<const uint8_t>(regions[0]);
  const auto want = reference.span<const uint8_t>(ref_regions[0]);
  EXPECT_FALSE(mem.commit_pending(regions[0]));
  EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));

  // trace_block settles too: bursts reflect the in-flight commit's outcome.
  mem.commit_async(regions[1]);
  reference.commit(ref_regions[1]);
  mem.begin_kernel("k", 1.0);
  reference.begin_kernel("k", 1.0);
  mem.trace_read(regions[1]);
  reference.trace_read(ref_regions[1]);
  ASSERT_EQ(mem.trace()[0].accesses.size(), reference.trace()[0].accesses.size());
  for (size_t i = 0; i < mem.trace()[0].accesses.size(); ++i)
    EXPECT_EQ(mem.trace()[0].accesses[i].bursts, reference.trace()[0].accesses[i].bursts);

  // region_stats settles the one region it reports on.
  EXPECT_EQ(mem.region_stats(regions[1]).blocks, reference.region_stats(ref_regions[1]).blocks);
}

// commit_all queues every region; back-to-back commits of the same region
// serialize through settle, so re-commits stay ordered.
TEST(ApproxMemory, CommitAllPipelinesAndRecommitSerializes) {
  ApproxMemory mem;
  mem.set_codec(tiny_slc());
  const auto regions = fill_two_regions(mem);
  mem.commit_all();
  for (const RegionId r : regions) EXPECT_TRUE(mem.commit_pending(r));
  mem.commit_async(regions[0]);  // settles the first commit, queues a second
  mem.flush();
  EXPECT_EQ(mem.stats().blocks, 144u);  // 3 commits x 48 blocks
}

// Region commits through the batched policy kernel must be byte-identical to
// the scalar per-block loop: same mutated contents, same stats, same burst
// counts — across lossy/threshold-varied regions (tighter and looser than
// the codec config, unsafe, zero-threshold) and across engine batch splits
// (inline, 1-thread, 4-thread shard sizes all differ).
TEST(ApproxMemory, BatchCommitMatchesScalarAcrossThresholds) {
  auto run = [](std::shared_ptr<const BlockCodec> codec, std::shared_ptr<CodecEngine> engine) {
    ApproxMemory mem;
    mem.set_engine(std::move(engine));
    mem.set_codec(std::move(codec));
    struct Spec {
      bool safe;
      size_t threshold;
    };
    const Spec specs[] = {{true, 16}, {true, 4}, {true, 64}, {false, 16}, {true, 0}};
    std::vector<RegionId> regions;
    for (size_t i = 0; i < std::size(specs); ++i) {
      regions.push_back(mem.alloc("r" + std::to_string(i), 48 * kBlockBytes, specs[i].safe,
                                  specs[i].threshold));
      const auto src = quantized_walk(100 + i, 48);
      std::copy(src.begin(), src.end(), mem.span<uint8_t>(regions.back()).begin());
    }
    mem.commit_all();
    mem.flush();
    mem.begin_kernel("k", 1.0);
    std::vector<uint8_t> contents;
    std::vector<uint32_t> bursts;
    for (const RegionId r : regions) {
      mem.trace_read(r);
      const auto bytes = mem.span<const uint8_t>(r);
      contents.insert(contents.end(), bytes.begin(), bytes.end());
    }
    for (const TraceAccess& a : mem.trace()[0].accesses) bursts.push_back(a.bursts);
    return std::make_tuple(contents, bursts, mem.stats());
  };

  // ScalarOnlyBlockCodec (compress/block_codec.h) forces the per-block
  // process() loop: a commit through it is the oracle the batch must match.
  const auto scalar = run(std::make_shared<ScalarOnlyBlockCodec>(tiny_slc()), nullptr);
  size_t lossy_total = 0;
  for (const auto engine_threads : {0u, 1u, 4u}) {
    const auto engine = engine_threads == 0 ? nullptr : std::make_shared<CodecEngine>(engine_threads);
    const auto batch = run(tiny_slc(), engine);
    EXPECT_EQ(std::get<0>(scalar), std::get<0>(batch)) << engine_threads << " threads";
    EXPECT_EQ(std::get<1>(scalar), std::get<1>(batch)) << engine_threads << " threads";
    EXPECT_TRUE(std::get<2>(scalar) == std::get<2>(batch)) << engine_threads << " threads";
    lossy_total += std::get<2>(batch).lossy_blocks;
  }
  EXPECT_GT(lossy_total, 0u);  // the sweep must exercise lossy materialization
}

// Regression for the narrowing fix: the per-block burst store used to be
// uint8_t, silently wrapping any geometry (or codec) whose burst count
// exceeds 255 — and 0 doubled as the "never committed" sentinel.
TEST(ApproxMemory, BurstCountsAbove255SurviveCommitAndTrace) {
  class WideBurstCodec final : public BlockCodec {
   public:
    BlockCodecResult process(BlockView block, bool, size_t) const override {
      BlockCodecResult r;
      r.bursts = 300;  // > uint8_t: e.g. block_bytes / mag_bytes = 300
      r.lossless_bits = block.size() * 8;
      r.final_bits = block.size() * 8;
      r.stored_uncompressed = true;
      r.decoded = Block(block.bytes());
      return r;
    }
    size_t mag_bytes() const override { return kDefaultMagBytes; }
    std::string name() const override { return "WIDE"; }
  };

  ApproxMemory mem;
  mem.set_codec(std::make_shared<WideBurstCodec>());
  const RegionId r = mem.alloc("wide", 3 * kBlockBytes, true);
  mem.commit(r);
  EXPECT_EQ(mem.region_stats(r).bursts, 3u * 300u);
  mem.begin_kernel("k", 1.0);
  mem.trace_read(r);
  for (const TraceAccess& a : mem.trace()[0].accesses) EXPECT_EQ(a.bursts, 300u);
}

TEST(BlockCodec, RawReportsMaxBursts) {
  const RawBlockCodec raw(32);
  Block b;
  const auto r = raw.process(b.view(), true, 16);
  EXPECT_EQ(r.bursts, 4u);
  EXPECT_FALSE(r.lossy);
  EXPECT_EQ(raw.max_bursts(), 4u);
}

TEST(BlockCodec, SlcRespectsRegionThreshold) {
  auto e2mc = tiny_e2mc();
  SlcConfig cfg;
  cfg.threshold_bytes = 16;
  cfg.variant = SlcVariant::kOpt;
  const SlcBlockCodec codec(e2mc, cfg);

  const auto bytes = quantized_walk(17, 64);
  size_t lossy_with = 0, lossy_without = 0;
  for (int i = 0; i < 64; ++i) {
    const Block b(std::span<const uint8_t>(bytes).subspan(
        static_cast<size_t>(i) * kBlockBytes, kBlockBytes));
    if (codec.process(b.view(), true, 16).lossy) ++lossy_with;
    if (codec.process(b.view(), false, 16).lossy) ++lossy_without;
    // threshold 0 region: never lossy even if marked safe
    EXPECT_FALSE(codec.process(b.view(), true, 0).lossy);
  }
  EXPECT_GT(lossy_with, 0u);
  EXPECT_EQ(lossy_without, 0u);
}

}  // namespace
}  // namespace slc

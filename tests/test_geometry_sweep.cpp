// Cross-geometry property sweeps: the codec stack must hold its invariants
// for non-default block sizes, way counts, MAGs and table sizes — the
// configuration space a downstream user can reach through the public API.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/slc_codec.h"

namespace slc {
namespace {

std::vector<uint8_t> quantized_floats(uint64_t seed, size_t bytes) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 20.0;
  for (size_t i = 0; i < bytes / 4; ++i) {
    walk += rng.uniform(-0.8, 0.8);
    if (rng.chance(0.02)) walk = rng.uniform(1.0, 200.0);
    const float v = static_cast<float>(std::round(walk * 8.0) / 8.0);
    uint32_t bits;
    __builtin_memcpy(&bits, &v, 4);
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return data;
}

// (block_bytes, num_ways)
using Geometry = std::tuple<size_t, unsigned>;

class E2mcGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(E2mcGeometryTest, RoundTripAndSizeAccounting) {
  const auto [block_bytes, ways] = GetParam();
  const auto data = quantized_floats(7 + block_bytes + ways, 512 * block_bytes);
  E2mcConfig cfg;
  cfg.num_ways = ways;
  cfg.sample_fraction = 0.2;
  auto comp = E2mcCompressor::train(data, cfg);
  for (size_t i = 0; i < 256; ++i) {
    const Block b(std::span<const uint8_t>(data).subspan(i * block_bytes, block_bytes));
    const auto cb = comp->compress(b.view());
    EXPECT_EQ(comp->compressed_bits(b.view()), cb.bit_size);
    EXPECT_LE(cb.bit_size, block_bytes * 8);
    EXPECT_EQ(comp->decompress(cb, block_bytes), b) << "block " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BlocksAndWays, E2mcGeometryTest,
                         ::testing::Values(Geometry{64, 2}, Geometry{64, 4},
                                           Geometry{128, 2}, Geometry{128, 4},
                                           Geometry{128, 8}, Geometry{256, 4}));

class SlcGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(SlcGeometryTest, InvariantsAcrossBlockGeometry) {
  const auto [block_bytes, ways] = GetParam();
  const size_t n_sym = block_bytes * 8 / kSymbolBits;
  const auto data = quantized_floats(99 + block_bytes + ways, 512 * block_bytes);
  E2mcConfig ecfg;
  ecfg.num_ways = ways;
  ecfg.sample_fraction = 0.2;
  auto e2mc = E2mcCompressor::train(data, ecfg);
  SlcConfig cfg;
  cfg.mag_bytes = 32;
  cfg.threshold_bytes = 16;
  cfg.variant = SlcVariant::kOpt;
  const SlcCodec codec(e2mc, cfg);

  for (size_t i = 0; i < 256; ++i) {
    const Block b(std::span<const uint8_t>(data).subspan(i * block_bytes, block_bytes));
    const auto cb = codec.compress(b.view());
    const Block out = codec.decompress(cb, block_bytes);
    if (!cb.info.lossy) {
      EXPECT_EQ(out, b);
      continue;
    }
    // Lossy: at most kMaxApproxSymbols symbols may differ.
    size_t diff = 0;
    for (size_t s = 0; s < n_sym; ++s)
      if (out.symbol(s) != b.symbol(s)) ++diff;
    EXPECT_LE(diff, kMaxApproxSymbols);
    EXPECT_LE(cb.info.bursts, bursts_for_bits(cb.info.lossless_bits, 32, block_bytes));
  }
}

INSTANTIATE_TEST_SUITE_P(BlocksAndWays, SlcGeometryTest,
                         ::testing::Values(Geometry{128, 2}, Geometry{128, 4},
                                           Geometry{256, 4}));

// analyze() must agree with compress() everywhere — the simulator's fast
// path cannot drift from the functional path.
class AnalyzeConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(AnalyzeConsistencyTest, AnalyzeMatchesCompress) {
  const auto data = quantized_floats(static_cast<uint64_t>(GetParam()), 512 * kBlockBytes);
  E2mcConfig ecfg;
  ecfg.sample_fraction = 0.3;
  auto e2mc = E2mcCompressor::train(data, ecfg);
  SlcConfig cfg;
  cfg.threshold_bytes = 16;
  cfg.variant = static_cast<SlcVariant>(GetParam() % 3);
  const SlcCodec codec(e2mc, cfg);
  for (size_t i = 0; i < 256; ++i) {
    const Block b(std::span<const uint8_t>(data).subspan(i * kBlockBytes, kBlockBytes));
    const SlcEncodeInfo a = codec.analyze(b.view());
    const auto cb = codec.compress(b.view());
    EXPECT_EQ(a.lossy, cb.info.lossy);
    EXPECT_EQ(a.final_bits, cb.info.final_bits);
    EXPECT_EQ(a.bursts, cb.info.bursts);
    EXPECT_EQ(a.lossless_bits, cb.info.lossless_bits);
    EXPECT_EQ(a.truncated_symbols, cb.info.truncated_symbols);
    EXPECT_EQ(a.stored_uncompressed, cb.info.stored_uncompressed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzeConsistencyTest, ::testing::Range(1, 7));

// Table-size sweep: larger tables never increase the compressed size of the
// data they were trained on (more coverage, shorter escapes).
class TableSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TableSweepTest, CompressionImprovesOrHolds) {
  const auto data = quantized_floats(1234, 512 * kBlockBytes);
  E2mcConfig small_cfg;
  small_cfg.table_entries = 64;
  small_cfg.sample_fraction = 0.5;
  E2mcConfig big_cfg = small_cfg;
  big_cfg.table_entries = GetParam();
  auto small = E2mcCompressor::train(data, small_cfg);
  auto big = E2mcCompressor::train(data, big_cfg);
  uint64_t small_bits = 0, big_bits = 0;
  for (size_t i = 0; i < 256; ++i) {
    const Block b(std::span<const uint8_t>(data).subspan(i * kBlockBytes, kBlockBytes));
    small_bits += small->compressed_bits(b.view());
    big_bits += big->compressed_bits(b.view());
  }
  EXPECT_LE(big_bits, small_bits + small_bits / 20)
      << "bigger tables must not cost more than noise";
}

INSTANTIATE_TEST_SUITE_P(Tables, TableSweepTest, ::testing::Values(256, 1024, 4096));

}  // namespace
}  // namespace slc

// SLC compressed-block header (Fig. 6): m + ss + len + 3 pdps = 32 bits.
#include <gtest/gtest.h>

#include "core/slc_header.h"

namespace slc {
namespace {

TEST(SlcHeader, BitsMatchFig6) {
  // 1 (m) + 6 (ss) + 4 (len) + 3*7 (pdp) = 32 bits for 128 B / 4 ways.
  EXPECT_EQ(SlcHeader::bits(128, 4, 64), 32u);
  EXPECT_EQ(SlcHeader::padded_bytes(128, 4, 64), 4u);
}

TEST(SlcHeader, BitsForOtherGeometries) {
  // 64 B block, 2 ways: 1 + 5 (32 symbols) + 4 + 1*6 = 16 bits.
  EXPECT_EQ(SlcHeader::bits(64, 2, 32), 16u);
}

TEST(SlcHeader, RoundTripLossless) {
  SlcHeader h;
  h.lossy = false;
  h.way_offsets[1] = 17;
  h.way_offsets[2] = 43;
  h.way_offsets[3] = 101;
  BitWriter w;
  h.write(w, 128, 4, 64);
  EXPECT_EQ(w.bit_size(), 32u);

  auto bytes = w.bytes();
  BitReader r(bytes);
  const SlcHeader back = SlcHeader::read(r, 128, 4, 64);
  EXPECT_FALSE(back.lossy);
  EXPECT_EQ(back.approx_count, 0);
  EXPECT_EQ(back.way_offsets[1], 17);
  EXPECT_EQ(back.way_offsets[2], 43);
  EXPECT_EQ(back.way_offsets[3], 101);
}

TEST(SlcHeader, RoundTripLossy) {
  SlcHeader h;
  h.lossy = true;
  h.start_symbol = 48;
  h.approx_count = 16;  // max: stored as 15 in the 4-bit field
  BitWriter w;
  h.write(w, 128, 4, 64);
  auto bytes = w.bytes();
  BitReader r(bytes);
  const SlcHeader back = SlcHeader::read(r, 128, 4, 64);
  EXPECT_TRUE(back.lossy);
  EXPECT_EQ(back.start_symbol, 48);
  EXPECT_EQ(back.approx_count, 16);
}

TEST(SlcHeader, AllLenValues) {
  for (uint8_t count = 1; count <= 16; ++count) {
    SlcHeader h;
    h.lossy = true;
    h.start_symbol = static_cast<uint8_t>(count % 64);
    h.approx_count = count;
    BitWriter w;
    h.write(w, 128, 4, 64);
    auto bytes = w.bytes();
    BitReader r(bytes);
    const SlcHeader back = SlcHeader::read(r, 128, 4, 64);
    EXPECT_EQ(back.approx_count, count);
    EXPECT_EQ(back.start_symbol, count % 64);
  }
}

TEST(SlcHeader, ReaderLeavesPositionByteAligned) {
  SlcHeader h;
  BitWriter w;
  h.write(w, 128, 4, 64);
  w.put(0xAB, 8);  // payload byte after the header
  auto bytes = w.bytes();
  BitReader r(bytes);
  SlcHeader::read(r, 128, 4, 64);
  EXPECT_EQ(r.position() % 8, 0u);
  EXPECT_EQ(r.get(8), 0xABu);
}

}  // namespace
}  // namespace slc

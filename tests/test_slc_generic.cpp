// Generic SLC over FPC (Sec. I: "SLC is not limited to E2MC").
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "core/slc_generic.h"

namespace slc {
namespace {

// Narrow-integer blocks: FPC's sweet spot, with enough spread that sizes
// land around burst boundaries.
Block narrow_int_block(Rng& rng) {
  Block b;
  for (size_t i = 0; i < 32; ++i) {
    switch (rng.next_below(4)) {
      case 0: b.set_word32(i, 0); break;
      case 1: b.set_word32(i, static_cast<uint32_t>(rng.next_below(256))); break;
      case 2: b.set_word32(i, static_cast<uint32_t>(rng.next_below(65536))); break;
      default: b.set_word32(i, static_cast<uint32_t>(rng.next())); break;
    }
  }
  return b;
}

TEST(SlcFpc, WordCostsMatchFpcTotal) {
  Rng rng(1);
  const SlcFpcCodec codec;
  const FpcCompressor fpc;
  for (int t = 0; t < 200; ++t) {
    const Block b = narrow_int_block(rng);
    const auto costs = codec.word_costs(b.view());
    const size_t total = std::accumulate(costs.begin(), costs.end(), size_t{0});
    const auto cb = fpc.compress(b.view());
    if (cb.is_compressed) {
      EXPECT_EQ(total, cb.bit_size) << "per-word costs must sum to the FPC size";
    }
  }
}

TEST(SlcFpc, LosslessWhenBelowOneBurst) {
  Block b;  // zeros
  const SlcFpcCodec codec;
  const auto info = codec.analyze(b.view());
  EXPECT_FALSE(info.lossy);
  EXPECT_EQ(info.bursts, 1u);
  EXPECT_EQ(codec.roundtrip(b.view()), b);
}

TEST(SlcFpc, LossyBlocksSaveBursts) {
  Rng rng(2);
  const SlcFpcCodec codec;
  size_t lossy = 0;
  for (int t = 0; t < 2000; ++t) {
    const Block b = narrow_int_block(rng);
    const auto info = codec.analyze(b.view());
    if (info.lossy) {
      ++lossy;
      EXPECT_LT(info.bursts, bursts_for_bits(info.lossless_bits, 32));
      EXPECT_LE(info.truncated_words, kMaxApproxSymbols);
    }
  }
  EXPECT_GT(lossy, 0u) << "mixed-width integer data must exercise the lossy path";
}

TEST(SlcFpc, RoundtripOnlyChangesTruncatedWords) {
  Rng rng(3);
  const SlcFpcCodec codec;
  for (int t = 0; t < 2000; ++t) {
    const Block b = narrow_int_block(rng);
    const auto info = codec.analyze(b.view());
    const Block out = codec.roundtrip(b.view());
    if (!info.lossy) {
      EXPECT_EQ(out, b);
      continue;
    }
    size_t diff = 0;
    for (size_t w = 0; w < 32; ++w)
      if (out.view().word32(w) != b.view().word32(w)) ++diff;
    EXPECT_LE(diff, info.truncated_words);
  }
}

TEST(SlcFpc, PredictionUsesNeighbourWord) {
  Rng rng(4);
  GenericSlcConfig cfg;
  cfg.predict = true;
  const SlcFpcCodec pred(cfg);
  cfg.predict = false;
  const SlcFpcCodec zero(cfg);
  for (int t = 0; t < 5000; ++t) {
    const Block b = narrow_int_block(rng);
    const auto info = pred.analyze(b.view());
    if (!info.lossy) continue;
    const Block p = pred.roundtrip(b.view());
    const Block z = zero.roundtrip(b.view());
    // Find the truncated window via the zero-fill variant (first changed
    // word is the window start; the predictor is the word before it).
    size_t start = 32;
    for (size_t w = 0; w < 32; ++w) {
      if (z.view().word32(w) != b.view().word32(w)) {
        EXPECT_EQ(z.view().word32(w), 0u);
        if (start == 32) start = w;
      }
    }
    if (start == 32 || start == 0) continue;  // need a predecessor predictor
    const uint32_t predictor = b.view().word32(start - 1);
    for (size_t w = 0; w < 32; ++w) {
      if (z.view().word32(w) != b.view().word32(w)) {
        EXPECT_EQ(p.view().word32(w), predictor);
      }
    }
    return;
  }
}

TEST(SlcFpc, ThresholdZeroDisablesLossy) {
  Rng rng(5);
  GenericSlcConfig cfg;
  cfg.threshold_bytes = 0;
  const SlcFpcCodec codec(cfg);
  for (int t = 0; t < 500; ++t) {
    const Block b = narrow_int_block(rng);
    EXPECT_FALSE(codec.analyze(b.view()).lossy);
    EXPECT_EQ(codec.roundtrip(b.view()), b);
  }
}

class SlcFpcMagTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SlcFpcMagTest, BurstAccountingAcrossMags) {
  Rng rng(6);
  GenericSlcConfig cfg;
  cfg.mag_bytes = GetParam();
  cfg.threshold_bytes = GetParam() / 2;
  const SlcFpcCodec codec(cfg);
  for (int t = 0; t < 1000; ++t) {
    const Block b = narrow_int_block(rng);
    const auto info = codec.analyze(b.view());
    EXPECT_GE(info.bursts, 1u);
    EXPECT_LE(info.bursts, kBlockBytes / GetParam());
    EXPECT_LE(info.final_bits, kBlockBytes * 8);
  }
}

INSTANTIATE_TEST_SUITE_P(Mags, SlcFpcMagTest, ::testing::Values<size_t>(16, 32, 64));

}  // namespace
}  // namespace slc

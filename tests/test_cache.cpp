// Set-associative cache model used by L1 / L2 / MDC.
#include <gtest/gtest.h>

#include "sim/cache.h"

namespace slc {
namespace {

TEST(Cache, MissThenHit) {
  Cache c(1024, 2, 128);
  EXPECT_FALSE(c.lookup(0));
  c.fill(0, false, 4);
  EXPECT_TRUE(c.lookup(0));
}

TEST(Cache, Geometry) {
  Cache c(16 * 1024, 4, 128);
  EXPECT_EQ(c.num_sets(), 32u);
  EXPECT_EQ(c.ways(), 4u);
}

TEST(Cache, DistinctLines) {
  Cache c(1024, 2, 128);
  c.fill(0, false, 4);
  EXPECT_FALSE(c.lookup(128));
  EXPECT_TRUE(c.lookup(0));
  // Same line, different offset bits: still a hit.
  EXPECT_TRUE(c.lookup(64));
}

TEST(Cache, LruEviction) {
  Cache c(2 * 128, 2, 128);  // 1 set, 2 ways
  c.fill(0, false, 1);
  c.fill(128, false, 1);
  c.lookup(0);               // 0 is now MRU
  c.fill(256, false, 1);     // evicts 128
  EXPECT_TRUE(c.lookup(0));
  EXPECT_FALSE(c.lookup(128));
  EXPECT_TRUE(c.lookup(256));
}

TEST(Cache, DirtyEvictionReturnsAddrAndBursts) {
  Cache c(2 * 128, 2, 128);
  c.fill(0, true, 3);
  c.fill(128, false, 1);
  const auto ev = c.fill(256, false, 1);  // must evict line 0 (LRU, dirty)
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->addr, 0u);
  EXPECT_EQ(ev->bursts, 3u);
}

TEST(Cache, CleanEvictionSilent) {
  Cache c(2 * 128, 2, 128);
  c.fill(0, false, 1);
  c.fill(128, false, 1);
  EXPECT_FALSE(c.fill(256, false, 1).has_value());
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(1024, 2, 128);
  c.fill(0, false, 4);
  EXPECT_TRUE(c.write_hit(0, 2));
  c.fill(128, false, 1);
  // Force eviction of line 0 within its set.
  const size_t sets = c.num_sets();
  const auto ev = c.fill(sets * 128 * 2, false, 1);  // same set as 0
  if (ev) {
    EXPECT_EQ(ev->addr, 0u);
    EXPECT_EQ(ev->bursts, 2u);  // burst count refreshed by the store
  }
}

TEST(Cache, WriteMissReturnsFalse) {
  Cache c(1024, 2, 128);
  EXPECT_FALSE(c.write_hit(0, 1));
}

TEST(Cache, RefillResidentLineMergesDirty) {
  Cache c(1024, 2, 128);
  c.fill(0, true, 2);
  EXPECT_FALSE(c.fill(0, false, 3).has_value());  // no self-eviction
  // Dirtiness preserved: evicting later yields a writeback.
  c.fill(c.num_sets() * 128, false, 1);
  const auto ev = c.fill(c.num_sets() * 128 * 2, false, 1);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->addr, 0u);
}

TEST(Cache, ClearInvalidatesAll) {
  Cache c(1024, 2, 128);
  c.fill(0, false, 1);
  c.clear();
  EXPECT_FALSE(c.lookup(0));
}

}  // namespace
}  // namespace slc

// Error metrics from Table III.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/error_metrics.h"

namespace slc {
namespace {

TEST(Mre, IdenticalIsZero) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(mean_relative_error_pct(a, a), 0.0);
}

TEST(Mre, KnownValue) {
  const float g[] = {10.0f, 20.0f};
  const float x[] = {11.0f, 18.0f};
  // (0.1 + 0.1) / 2 = 10%
  EXPECT_NEAR(mean_relative_error_pct(g, x), 10.0, 1e-9);
}

TEST(Mre, ZeroGoldenGuarded) {
  const float g[] = {0.0f};
  const float x[] = {1e-7f};
  // Division guarded by eps: finite result.
  const double e = mean_relative_error_pct(g, x);
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 100.0);
}

TEST(Mre, EmptyIsZero) { EXPECT_EQ(mean_relative_error_pct({}, {}), 0.0); }

TEST(Rmse, KnownValue) {
  const float g[] = {0.0f, 0.0f};
  const float x[] = {3.0f, 4.0f};
  EXPECT_NEAR(rmse(g, x), std::sqrt(12.5), 1e-9);
}

TEST(Nrmse, NormalizedByRange) {
  const float g[] = {0.0f, 10.0f};
  const float x[] = {1.0f, 9.0f};
  // rmse = 1, range = 10 -> 10%
  EXPECT_NEAR(nrmse_pct(g, x), 10.0, 1e-9);
}

TEST(Nrmse, ConstantGoldenEdgeCases) {
  const float g[] = {5.0f, 5.0f};
  const float same[] = {5.0f, 5.0f};
  const float diff[] = {5.0f, 6.0f};
  EXPECT_EQ(nrmse_pct(g, same), 0.0);
  EXPECT_EQ(nrmse_pct(g, diff), 100.0);  // undefined range convention
}

TEST(ImageDiff, MatchesNrmse) {
  const float g[] = {0.0f, 255.0f, 128.0f};
  const float x[] = {2.0f, 250.0f, 127.0f};
  EXPECT_DOUBLE_EQ(image_diff_pct(g, x), nrmse_pct(g, x));
}

TEST(MissRate, CountsFlips) {
  const uint8_t g[] = {1, 0, 1, 1};
  const uint8_t x[] = {1, 1, 1, 0};
  EXPECT_NEAR(miss_rate_pct(g, x), 50.0, 1e-9);
}

TEST(MissRate, NonzeroTreatedAsTrue) {
  const uint8_t g[] = {2, 0};
  const uint8_t x[] = {1, 0};
  EXPECT_EQ(miss_rate_pct(g, x), 0.0);
}

TEST(Psnr, IdenticalIsCapped) {
  const float a[] = {0.5f};
  EXPECT_EQ(psnr_db(a, a), 99.0);
}

TEST(Psnr, KnownValue) {
  const float g[] = {1.0f, 0.0f};
  const float x[] = {0.9f, 0.1f};
  // rmse = 0.1 -> 20*log10(1/0.1) = 20 dB (float rounding widens the bound)
  EXPECT_NEAR(psnr_db(g, x, 1.0), 20.0, 1e-4);
}

TEST(MetricNames, ToString) {
  EXPECT_STREQ(to_string(ErrorMetric::kMissRate), "Miss rate");
  EXPECT_STREQ(to_string(ErrorMetric::kMre), "MRE");
  EXPECT_STREQ(to_string(ErrorMetric::kImageDiff), "Image diff");
  EXPECT_STREQ(to_string(ErrorMetric::kNrmse), "NRMSE");
}

}  // namespace
}  // namespace slc

// C-PACK: dictionary behaviour, pattern codes, round trip.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/cpack.h"

namespace slc {
namespace {

TEST(Cpack, CodeBits) {
  const CpackCompressor c(16);
  EXPECT_EQ(c.code_bits(CpackCode::kZZZZ), 2u);
  EXPECT_EQ(c.code_bits(CpackCode::kXXXX), 34u);
  EXPECT_EQ(c.code_bits(CpackCode::kMMMM), 6u);
  EXPECT_EQ(c.code_bits(CpackCode::kMMXX), 24u);
  EXPECT_EQ(c.code_bits(CpackCode::kZZZX), 12u);
  EXPECT_EQ(c.code_bits(CpackCode::kMMMX), 16u);
}

TEST(Cpack, AllZeros) {
  Block b;
  const CpackCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_TRUE(cb.is_compressed);
  EXPECT_EQ(cb.bit_size, 32u * 2u);  // 32 zzzz codes
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Cpack, RepeatedWordUsesDictionary) {
  Block b;
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, 0xCAFEBABE);
  const CpackCompressor c;
  const auto cb = c.compress(b.view());
  // First word xxxx (34), remaining 31 mmmm (6).
  EXPECT_EQ(cb.bit_size, 34u + 31u * 6u);
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Cpack, PartialMatchUpperBytes) {
  Block b;
  b.set_word32(0, 0x11223344);
  b.set_word32(1, 0x11223399);  // mmmx: upper 3 bytes match
  b.set_word32(2, 0x1122AABB);  // mmxx: upper 2 bytes match
  const CpackCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Cpack, LowByteOnlyPattern) {
  Block b;
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, static_cast<uint32_t>(i + 1));
  const CpackCompressor c;
  const auto cb = c.compress(b.view());
  // zzzx codes: 12 bits each (values 1..32 all fit one byte).
  EXPECT_EQ(cb.bit_size, 32u * 12u);
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Cpack, DictionaryEvictionFifo) {
  // 20 distinct words overflow the 16-entry FIFO; re-referencing the first
  // word afterwards must re-insert (xxxx), not match.
  Block b;
  for (size_t i = 0; i < 20; ++i)
    b.set_word32(i, 0xA0000000u + static_cast<uint32_t>(i) * 0x01010101u);
  b.set_word32(20, 0xA0000000u);  // evicted by now
  const CpackCompressor c;
  EXPECT_EQ(c.decompress(c.compress(b.view()), kBlockBytes), b);
}

TEST(Cpack, SmallDictionary) {
  const CpackCompressor c(4);  // 2-bit indices
  EXPECT_EQ(c.code_bits(CpackCode::kMMMM), 4u);
  Block b;
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, 0xBEEF0000u + static_cast<uint32_t>(i % 3));
  EXPECT_EQ(c.decompress(c.compress(b.view()), kBlockBytes), b);
}

TEST(Cpack, RandomDataFallsBackOrRoundTrips) {
  Rng rng(55);
  const CpackCompressor c;
  Block b;
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, static_cast<uint32_t>(rng.next()));
  const auto cb = c.compress(b.view());
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
  EXPECT_LE(cb.bit_size, kBlockBytes * 8);
}

TEST(CpackProperty, RoundTripValueLocality) {
  Rng rng(66);
  const CpackCompressor c;
  for (int trial = 0; trial < 500; ++trial) {
    Block b;
    uint32_t base = static_cast<uint32_t>(rng.next());
    for (size_t i = 0; i < 32; ++i) {
      if (rng.chance(0.2)) base = static_cast<uint32_t>(rng.next());
      const uint32_t jitter = static_cast<uint32_t>(rng.next_below(1 << (8 * rng.next_below(3))));
      b.set_word32(i, base + jitter);
    }
    const auto cb = c.compress(b.view());
    EXPECT_EQ(c.decompress(cb, kBlockBytes), b) << "trial " << trial;
  }
}

}  // namespace
}  // namespace slc

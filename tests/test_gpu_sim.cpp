// Full memory-subsystem simulator: progress, conservation laws, and the
// bandwidth behaviours the paper's speedups rest on.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "compress/block_codec.h"
#include "sim/gpu_sim.h"
#include "sim/trace_stream.h"

namespace slc {
namespace {

KernelTrace streaming_kernel(size_t blocks, uint8_t bursts, double compute = 1.0,
                             uint64_t base = 0x1000'0000, bool writes = false) {
  KernelTrace k;
  k.name = "stream";
  k.compute_per_access = compute;
  k.accesses_per_cta = 8;
  for (size_t i = 0; i < blocks; ++i) {
    TraceAccess a;
    a.addr = base + i * kBlockBytes;
    a.bursts = bursts;
    a.write = writes && (i % 2 == 1);
    k.accesses.push_back(a);
  }
  return k;
}

TEST(GpuSim, EmptyTraceFinishes) {
  GpuSim sim(GpuSimConfig{});
  const SimStats s = sim.run({});
  EXPECT_EQ(s.accesses, 0u);
}

TEST(GpuSim, AllAccessesAccounted) {
  GpuSim sim(GpuSimConfig{});
  const SimStats s = sim.run({streaming_kernel(5000, 4, 1.0, 0x1000'0000, true)});
  EXPECT_EQ(s.accesses, 5000u);
  EXPECT_EQ(s.reads + s.writes, 5000u);
  EXPECT_GT(s.cycles, 0u);
}

// run(ApproxMemory&) is the pipelined-run entry point: it must flush the
// in-flight async commits before replaying, so the replayed trace matches a
// replay of the explicitly flushed trace exactly.
TEST(GpuSim, RunFromMemoryFlushesPendingCommitsBeforeReplay) {
  auto build = [] {
    ApproxMemory mem;
    mem.set_codec(std::make_shared<RawBlockCodec>(32));
    const RegionId r = mem.alloc("x", 64 * kBlockBytes, /*safe=*/true, 16);
    mem.commit_async(r);
    mem.begin_kernel("k", 1.0);
    mem.trace_read(r);
    mem.commit_async(r);  // left in flight on purpose
    return mem;
  };

  ApproxMemory via_trace = build();
  via_trace.flush();
  GpuSim ref_sim(GpuSimConfig{});
  const SimStats want = ref_sim.run(via_trace.trace());

  ApproxMemory mem = build();
  GpuSim sim(GpuSimConfig{});
  const SimStats got = sim.run(mem);  // flushes, then replays
  EXPECT_FALSE(mem.commit_pending(0));
  EXPECT_EQ(got.accesses, want.accesses);
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.dram_read_bursts, want.dram_read_bursts);
}

TEST(GpuSim, ReadsMissCachesOnFirstTouch) {
  GpuSim sim(GpuSimConfig{});
  const SimStats s = sim.run({streaming_kernel(4000, 4)});
  // Unique streaming addresses: everything misses, every block fetched once.
  EXPECT_EQ(s.l1_misses, 4000u);
  EXPECT_EQ(s.l2_misses, 4000u);
  EXPECT_EQ(s.dram_read_bursts, 4000u * 4u);
}

TEST(GpuSim, RepeatedBlocksHitL2) {
  GpuSimConfig cfg;
  GpuSim sim(cfg);
  // Two kernels over the same small footprint (fits 768 KB L2).
  auto k1 = streaming_kernel(1000, 4);
  auto k2 = streaming_kernel(1000, 4);
  const SimStats s = sim.run({k1, k2});
  EXPECT_GT(s.l2_hits, 900u) << "second pass must hit in L2";
  EXPECT_LT(s.dram_read_bursts, 2u * 1000u * 4u);
}

TEST(GpuSim, CompressedTrafficFasterWhenMemoryBound) {
  GpuSimConfig cfg;
  cfg.decompress_latency = 20;
  GpuSim sim_full(cfg), sim_comp(cfg);
  const SimStats full = sim_full.run({streaming_kernel(20000, 4, 0.5)});
  const SimStats comp = sim_comp.run({streaming_kernel(20000, 2, 0.5)});
  EXPECT_LT(comp.cycles, full.cycles)
      << "half the bursts must run faster under bandwidth bound";
  const double speedup =
      static_cast<double>(full.cycles) / static_cast<double>(comp.cycles);
  EXPECT_GT(speedup, 1.3);
}

TEST(GpuSim, ComputeBoundInsensitiveToBursts) {
  GpuSimConfig cfg;
  GpuSim a(cfg), b(cfg);
  // 200 compute cycles per access: DRAM is idle most of the time.
  const SimStats full = a.run({streaming_kernel(3000, 4, 200.0)});
  const SimStats comp = b.run({streaming_kernel(3000, 1, 200.0)});
  const double speedup =
      static_cast<double>(full.cycles) / static_cast<double>(comp.cycles);
  EXPECT_LT(speedup, 1.05) << "compute-bound kernels gain little from compression";
}

TEST(GpuSim, DecompressionLatencyCosts) {
  GpuSimConfig no_lat;
  no_lat.decompress_latency = 0;
  GpuSimConfig with_lat = no_lat;
  with_lat.decompress_latency = 100;
  GpuSim a(no_lat), b(with_lat);
  const SimStats fast = a.run({streaming_kernel(2000, 2, 4.0)});
  const SimStats slow = b.run({streaming_kernel(2000, 2, 4.0)});
  EXPECT_GT(slow.cycles, fast.cycles);
}

TEST(GpuSim, WritesProduceWritebacks) {
  GpuSimConfig cfg;
  GpuSim sim(cfg);
  // Write-heavy streaming over a footprint far beyond L2 forces evictions.
  const SimStats s = sim.run({streaming_kernel(20000, 4, 1.0, 0x1000'0000, true)});
  EXPECT_GT(s.writes, 0u);
  EXPECT_GT(s.l2_writebacks, 1000u);
  EXPECT_GT(s.dram_write_bursts, 0u);
}

TEST(GpuSim, MdcMissesChargeMetadataTraffic) {
  GpuSimConfig cfg;
  GpuSim sim(cfg);
  const SimStats s = sim.run({streaming_kernel(30000, 2, 1.0)});
  EXPECT_GT(s.mdc_misses, 0u);
  EXPECT_GT(s.mdc_hits, s.mdc_misses) << "streaming metadata mostly hits";
  EXPECT_EQ(s.metadata_bursts, s.mdc_misses);
}

TEST(GpuSim, AchievedBandwidthBounded) {
  GpuSimConfig cfg;
  GpuSim sim(cfg);
  const SimStats s = sim.run({streaming_kernel(50000, 4, 0.1)});
  const double bw = s.achieved_bandwidth_gbps(cfg);
  EXPECT_GT(bw, 0.3 * cfg.bandwidth_gbps()) << "memory-bound stream should load DRAM";
  EXPECT_LE(bw, cfg.bandwidth_gbps() * 1.001) << "cannot exceed the pin bandwidth";
}

TEST(GpuSim, KernelsSerialize) {
  GpuSimConfig cfg;
  GpuSim one(cfg), two(cfg);
  auto k = streaming_kernel(5000, 4);
  const SimStats s1 = one.run({k});
  // Different footprints so the second kernel cannot hit in L2.
  auto k2 = streaming_kernel(5000, 4, 1.0, 0x9000'0000);
  const SimStats s2 = two.run({k, k2});
  EXPECT_GT(s2.cycles, static_cast<uint64_t>(1.8 * static_cast<double>(s1.cycles)));
}

TEST(GpuSim, MoreSmsDrainFasterWhenLatencyBound) {
  GpuSimConfig few;
  few.num_sms = 2;
  GpuSimConfig many;
  many.num_sms = 16;
  GpuSim a(few), b(many);
  auto k = streaming_kernel(8000, 1, 2.0);  // light traffic -> latency bound
  const SimStats s_few = a.run({k});
  const SimStats s_many = b.run({k});
  EXPECT_LT(s_many.cycles, s_few.cycles);
}

// Parameterized conservation checks across MAGs.
class GpuSimMagTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GpuSimMagTest, BurstAccountingMatchesTrace) {
  GpuSimConfig cfg;
  cfg.mag_bytes = GetParam();
  const auto maxb = static_cast<uint8_t>(cfg.max_bursts());
  GpuSim sim(cfg);
  const SimStats s = sim.run({streaming_kernel(3000, maxb)});
  EXPECT_EQ(s.dram_read_bursts, 3000u * maxb);
}

INSTANTIATE_TEST_SUITE_P(Mags, GpuSimMagTest, ::testing::Values<size_t>(16, 32, 64));

// ---- SimStats::merge() algebra -------------------------------------------

TEST(SimStats, MergeWithDefaultConstructedIsIdentity) {
  GpuSim sim(GpuSimConfig{});
  const SimStats s = sim.run({streaming_kernel(500, 4, 1.0, 0x1000'0000, true)});

  SimStats left = s;
  left.merge(SimStats{});  // right identity
  EXPECT_EQ(left, s);

  SimStats right;  // left identity
  right.merge(s);
  EXPECT_EQ(right, s);
}

TEST(SimStats, MergeIsAssociativeAndCommutesOnCounters) {
  GpuSim sa(GpuSimConfig{}), sb(GpuSimConfig{}), sc(GpuSimConfig{});
  const SimStats a = sa.run({streaming_kernel(300, 2)});
  const SimStats b = sb.run({streaming_kernel(700, 4, 1.0, 0x2000'0000, true)});
  const SimStats c = sc.run({streaming_kernel(100, 1, 8.0, 0x3000'0000)});

  SimStats ab = a;
  ab.merge(b);
  SimStats ab_c = ab;
  ab_c.merge(c);

  SimStats bc = b;
  bc.merge(c);
  SimStats a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);

  SimStats ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

// ---- Streaming entry point ------------------------------------------------

TEST(GpuSim, EmptyStreamReturnsCleanly) {
  TraceStream stream(4);
  stream.close();  // producer finishes without ever publishing a kernel
  GpuSim sim(GpuSimConfig{});
  const SimStats s = sim.run(stream);
  EXPECT_EQ(s.accesses, 0u);
  EXPECT_EQ(s.kernels, 0u);
  EXPECT_EQ(s.stream_chunk_hwm, 0u);
}

TEST(GpuSim, StreamingMatchesMaterializedRun) {
  std::vector<KernelTrace> trace;
  trace.push_back(streaming_kernel(2000, 4, 1.0, 0x1000'0000, true));
  trace.push_back(streaming_kernel(500, 2, 4.0, 0x2000'0000));
  trace.push_back(streaming_kernel(1200, 8, 0.5, 0x3000'0000, true));

  GpuSim ref(GpuSimConfig{});
  const SimStats want = ref.run(trace);

  for (const unsigned workers : {1u, 4u}) {
    GpuSimConfig cfg;
    cfg.sim_workers = workers;
    GpuSim sim(cfg);
    TraceStream stream(2);
    SimStats got;
    std::thread consumer([&] { got = sim.run(stream); });
    for (const auto& k : trace) ASSERT_TRUE(stream.push(k));
    stream.close();
    consumer.join();
    EXPECT_TRUE(want.same_counters(got)) << "workers=" << workers;
    EXPECT_EQ(got.kernels, 3u);
  }
}

TEST(GpuSim, ShardedRunMatchesSingleWorkerBitExactly) {
  std::vector<KernelTrace> trace;
  trace.push_back(streaming_kernel(3000, 4, 0.5, 0x1000'0000, true));
  trace.push_back(streaming_kernel(900, 2, 2.0, 0x5000'0000));

  GpuSimConfig one;
  one.sim_workers = 1;
  GpuSimConfig many;
  many.sim_workers = 0;  // 0 = hardware concurrency, clamped to num_mcs
  GpuSim a(one), b(many);
  const SimStats sa = a.run(trace);
  const SimStats sb = b.run(trace);
  EXPECT_EQ(sa, sb);  // full equality, high-water marks included
}

TEST(GpuSim, StreamHighWaterMarkBoundedByBudget) {
  GpuSimConfig cfg;
  GpuSim sim(cfg);
  TraceStream stream(cfg.stream_chunk_budget);
  SimStats got;
  std::thread consumer([&] { got = sim.run(stream); });
  // Push far more kernels than the budget: backpressure must cap the queue.
  for (int i = 0; i < 64; ++i)
    ASSERT_TRUE(stream.push(streaming_kernel(64, 2, 1.0, 0x1000'0000 + i * 0x10000)));
  stream.close();
  consumer.join();
  EXPECT_EQ(got.kernels, 64u);
  EXPECT_GT(got.stream_chunk_hwm, 0u);
  EXPECT_LE(got.stream_chunk_hwm, cfg.stream_chunk_budget);
  EXPECT_GT(got.stream_access_hwm, 0u);
}

}  // namespace
}  // namespace slc

// Hardware-cost model vs Table I.
#include <gtest/gtest.h>

#include "hw/hw_model.h"

namespace slc {
namespace {

TEST(HwModel, TreeGeometry) {
  HwModelConfig cfg;
  cfg.extra_nodes = false;
  const HwModel base(cfg);
  EXPECT_EQ(base.tree_adder_nodes(), 63u);  // 64 leaves -> 63 internal adders
  EXPECT_EQ(base.priority_encoder_count(), 5u);  // window sizes 1,2,4,8,16

  const HwModel opt;  // extra_nodes default true
  EXPECT_EQ(opt.tree_adder_nodes(), 63u + 12u);  // +8 at level 3, +4 at level 4
  EXPECT_EQ(opt.priority_encoder_count(), 7u);
}

TEST(HwModel, ComparatorCounts) {
  HwModelConfig cfg;
  cfg.extra_nodes = false;
  const HwModel base(cfg);
  // Sizes 1,2,4,8,16 -> 64+32+16+8+4 = 124 comparators.
  EXPECT_EQ(base.comparator_count(), 124u);
  const HwModel opt;
  EXPECT_EQ(opt.comparator_count(), 136u);
}

TEST(HwModel, CompressorWithinTableIOrder) {
  const HwModel m;
  const HwCost c = m.compressor();
  // Paper: 0.0083 mm^2, 1.62 mW. The analytic model must land within 2x.
  EXPECT_GT(c.area_mm2, 0.0083 / 2);
  EXPECT_LT(c.area_mm2, 0.0083 * 2);
  EXPECT_GT(c.power_mw, 1.62 / 2);
  EXPECT_LT(c.power_mw, 1.62 * 2);
  EXPECT_DOUBLE_EQ(c.freq_ghz, 1.43);
}

TEST(HwModel, DecompressorMuchSmaller) {
  const HwModel m;
  const HwCost c = m.compressor();
  const HwCost d = m.decompressor();
  EXPECT_LT(d.area_mm2, c.area_mm2 / 5);
  EXPECT_LT(d.power_mw, c.power_mw / 3);
  EXPECT_DOUBLE_EQ(d.freq_ghz, 0.80);
}

TEST(HwModel, OverheadNegligible) {
  const HwModel m;
  // Paper: 0.0015% area, 0.0008% power of GTX580.
  EXPECT_LT(m.area_overhead_pct(), 0.01);
  EXPECT_LT(m.power_overhead_pct(), 0.01);
  EXPECT_GT(m.area_overhead_pct(), 0.0);
}

TEST(HwModel, ExtraNodesCostLittle) {
  HwModelConfig base_cfg;
  base_cfg.extra_nodes = false;
  const HwModel base(base_cfg);
  const HwModel opt;
  const double ratio = opt.compressor().area_mm2 / base.compressor().area_mm2;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.25) << "OPT extra nodes must stay cheap (Sec. III-F)";
}

TEST(HwModel, ScalesWithSymbolCount) {
  HwModelConfig small;
  small.num_symbols = 32;
  HwModelConfig big;
  big.num_symbols = 128;
  EXPECT_LT(HwModel(small).compressor().area_mm2, HwModel(big).compressor().area_mm2);
}

}  // namespace
}  // namespace slc

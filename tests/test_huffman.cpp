// Huffman machinery: package-merge optimality/limits, canonical codes,
// escape coding, decode LUT.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "compress/huffman.h"

namespace slc {
namespace {

double kraft_sum(std::span<const unsigned> lens) {
  double k = 0;
  for (unsigned l : lens) k += std::pow(2.0, -static_cast<double>(l));
  return k;
}

TEST(PackageMerge, TwoSymbols) {
  const uint64_t w[] = {1, 100};
  const auto lens = package_merge_lengths(w, 16);
  EXPECT_EQ(lens[0], 1u);
  EXPECT_EQ(lens[1], 1u);
}

TEST(PackageMerge, KraftEquality) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint64_t> w(2 + rng.next_below(64));
    for (auto& x : w) x = 1 + rng.next_below(10000);
    const auto lens = package_merge_lengths(w, 16);
    EXPECT_NEAR(kraft_sum(lens), 1.0, 1e-9) << "trial " << trial;
  }
}

TEST(PackageMerge, RespectsLengthLimit) {
  // Fibonacci-like weights force deep unconstrained Huffman trees.
  std::vector<uint64_t> w = {1, 1};
  while (w.size() < 32) w.push_back(w[w.size() - 1] + w[w.size() - 2]);
  for (unsigned limit : {6u, 8u, 12u}) {
    const auto lens = package_merge_lengths(w, limit);
    for (unsigned l : lens) EXPECT_LE(l, limit);
    EXPECT_NEAR(kraft_sum(lens), 1.0, 1e-9);
  }
}

TEST(PackageMerge, MatchesHuffmanWhenUnconstrained) {
  // With a generous limit, total weighted length must equal a classic
  // Huffman construction's.
  const uint64_t w[] = {5, 9, 12, 13, 16, 45};
  const auto lens = package_merge_lengths(w, 16);
  uint64_t cost = 0;
  for (size_t i = 0; i < 6; ++i) cost += w[i] * lens[i];
  EXPECT_EQ(cost, 224u);  // textbook value for this weight set
}

TEST(PackageMerge, SingleSymbol) {
  const uint64_t w[] = {7};
  const auto lens = package_merge_lengths(w, 16);
  EXPECT_EQ(lens[0], 1u);
}

TEST(PackageMerge, ThrowsWhenImpossible) {
  std::vector<uint64_t> w(32, 1);
  EXPECT_THROW(package_merge_lengths(w, 4), std::invalid_argument);  // 2^4 < 32
  EXPECT_NO_THROW(package_merge_lengths(w, 5));
}

TEST(SymbolFrequencies, CountsLittleEndianSymbols) {
  SymbolFrequencies f;
  const uint8_t data[] = {0x34, 0x12, 0x34, 0x12, 0x78, 0x56};
  f.add_data(data);
  EXPECT_EQ(f.count(0x1234), 2u);
  EXPECT_EQ(f.count(0x5678), 1u);
  EXPECT_EQ(f.total(), 3u);
  EXPECT_EQ(f.distinct(), 2u);
}

TEST(HuffmanCode, FrequentSymbolsGetShortCodes) {
  SymbolFrequencies f;
  f.add_symbol(0xAAAA, 1000);
  f.add_symbol(0xBBBB, 10);
  f.add_symbol(0xCCCC, 1);
  const auto code = HuffmanCode::build(f, 1024, 16);
  EXPECT_LE(code.codeword_len(0xAAAA), code.codeword_len(0xBBBB));
  EXPECT_LE(code.codeword_len(0xBBBB), code.codeword_len(0xCCCC));
}

TEST(HuffmanCode, EscapeForUncoveredSymbols) {
  SymbolFrequencies f;
  f.add_symbol(1, 100);
  f.add_symbol(2, 100);
  const auto code = HuffmanCode::build(f, 1024, 16);
  EXPECT_FALSE(code.in_table(999));
  EXPECT_EQ(code.encoded_bits(999), code.esc_len() + 16u);
  EXPECT_GT(code.esc_len(), 0u);
}

TEST(HuffmanCode, TableEntryLimit) {
  SymbolFrequencies f;
  for (uint32_t s = 0; s < 3000; ++s) f.add_symbol(static_cast<uint16_t>(s), 3000 - s);
  const auto code = HuffmanCode::build(f, 256, 16);
  EXPECT_EQ(code.table_entries(), 256u);
  EXPECT_TRUE(code.in_table(0));       // most frequent kept
  EXPECT_FALSE(code.in_table(2999));   // least frequent escaped
}

TEST(HuffmanCode, CanonicalPrefixFree) {
  SymbolFrequencies f;
  Rng rng(7);
  for (int i = 0; i < 200; ++i)
    f.add_symbol(static_cast<uint16_t>(rng.next_below(500)), 1 + rng.next_below(1000));
  const auto code = HuffmanCode::build(f, 1024, 16);
  // Prefix-freeness: decoding any codeword via the LUT returns the symbol.
  for (uint32_t s = 0; s < 500; ++s) {
    if (!code.in_table(static_cast<uint16_t>(s))) continue;
    const unsigned len = code.codeword_len(static_cast<uint16_t>(s));
    const uint16_t peek = static_cast<uint16_t>(code.codeword(static_cast<uint16_t>(s))
                                                << (16 - len));
    const auto step = code.decode(peek);
    EXPECT_FALSE(step.is_escape);
    EXPECT_EQ(step.symbol, s);
    EXPECT_EQ(step.bits, len);
  }
}

TEST(HuffmanCode, DecodeLutEscape) {
  SymbolFrequencies f;
  f.add_symbol(42, 1000);
  const auto code = HuffmanCode::build(f, 8, 16);
  const uint16_t peek = static_cast<uint16_t>(code.esc_code() << (16 - code.esc_len()));
  const auto step = code.decode(peek);
  EXPECT_TRUE(step.is_escape);
  EXPECT_EQ(step.bits, code.esc_len());
}

TEST(HuffmanCode, MaxLenRespected) {
  SymbolFrequencies f;
  uint64_t w = 1;
  for (uint32_t s = 0; s < 40; ++s) {
    f.add_symbol(static_cast<uint16_t>(s), w);
    w = w * 3 / 2 + 1;  // strongly skewed
  }
  const auto code = HuffmanCode::build(f, 1024, 12);
  for (uint32_t s = 0; s < 40; ++s)
    if (code.in_table(static_cast<uint16_t>(s))) {
      EXPECT_LE(code.codeword_len(static_cast<uint16_t>(s)), 12u);
    }
  EXPECT_LE(code.esc_len(), 12u);
}

}  // namespace
}  // namespace slc

// CodecRegistry: every registered scheme constructs by name, compresses and
// decompresses a reference block set, and reports sizes consistently across
// the compress/analyze paths.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "test_util.h"
#include "compress/block_codec.h"
#include "compress/codec_registry.h"
#include "core/slc_compressor.h"

namespace slc {
namespace {

using test::quantized_walk;
using test::test_options;

// Reference block set: value-similar floats plus degenerate shapes every
// scheme has special cases for.
std::vector<Block> reference_blocks() {
  std::vector<Block> blocks = to_blocks(quantized_walk(23, 32));
  blocks.emplace_back();  // all zeros
  Block repeat;
  for (size_t i = 0; i < kBlockBytes / 8; ++i) repeat.set_word64(i, 0x0102030405060708ull);
  blocks.push_back(repeat);
  Block noise;  // incompressible
  Rng rng(7);
  for (size_t i = 0; i < kBlockBytes / 8; ++i) noise.set_word64(i, rng.next());
  blocks.push_back(noise);
  return blocks;
}

TEST(CodecRegistry, AllExpectedSchemesRegistered) {
  const auto& reg = CodecRegistry::instance();
  for (const char* name :
       {"RAW", "BDI", "FPC", "C-PACK", "E2MC", "Huffman", "TSLC-SIMP", "TSLC-PRED", "TSLC-OPT"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  // Display order puts RAW first and the TSLC variants last.
  const auto names = reg.names();
  ASSERT_GE(names.size(), 9u);
  EXPECT_EQ(names.front(), "RAW");
  EXPECT_EQ(names.back(), "TSLC-OPT");
}

TEST(CodecRegistry, LosslessAndLossySplits) {
  const auto& reg = CodecRegistry::instance();
  const auto lossless = reg.lossless_names();
  const auto lossy = reg.lossy_names();
  EXPECT_EQ(lossless, (std::vector<std::string>{"BDI", "FPC", "C-PACK", "E2MC", "Huffman"}));
  EXPECT_EQ(lossy, (std::vector<std::string>{"TSLC-SIMP", "TSLC-PRED", "TSLC-OPT"}));
}

TEST(CodecRegistry, UnknownNameThrowsWithKnownList) {
  const auto& reg = CodecRegistry::instance();
  EXPECT_FALSE(reg.contains("LZ4"));
  try {
    reg.at("LZ4");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("E2MC"), std::string::npos);
  }
}

TEST(CodecRegistry, TrainingSchemesRejectEmptyOptions) {
  const auto& reg = CodecRegistry::instance();
  const CodecOptions empty;
  EXPECT_THROW(reg.create("E2MC", empty), std::invalid_argument);
  EXPECT_THROW(reg.create("TSLC-OPT", empty), std::invalid_argument);
  EXPECT_THROW(reg.create("RAW", empty), std::invalid_argument);  // no Compressor form
  EXPECT_NO_THROW(reg.create("BDI", empty));
}

// Every registered compressor: name round-trip, compress/decompress
// consistency, and analyze() agreeing with compress() on every block.
TEST(CodecRegistry, RoundTripAndAnalyzeConsistency) {
  const auto& reg = CodecRegistry::instance();
  const auto training = quantized_walk(23, 256);
  const auto blocks = reference_blocks();

  for (const auto* info : reg.entries()) {
    if (!info->make) continue;  // RAW
    const auto comp = reg.create(info->name, test_options(training));
    EXPECT_EQ(comp->name(), info->name);
    for (size_t i = 0; i < blocks.size(); ++i) {
      const Block& b = blocks[i];
      const CompressedBlock cb = comp->compress(b.view());
      const BlockAnalysis a = comp->analyze(b.view());
      EXPECT_EQ(a.bit_size, cb.bit_size) << info->name << " block " << i;
      EXPECT_EQ(a.is_compressed, cb.is_compressed) << info->name << " block " << i;
      EXPECT_EQ(comp->compressed_bits(b.view()), cb.bit_size) << info->name;
      EXPECT_LE(cb.bit_size, kBlockBytes * 8) << info->name;

      const Block out = comp->decompress(cb, kBlockBytes);
      if (info->lossy) {
        // Lossy schemes must still reproduce non-truncated blocks exactly.
        if (!a.lossy) {
          EXPECT_EQ(out, b) << info->name << " block " << i;
        }
      } else {
        EXPECT_EQ(out, b) << info->name << " block " << i;
      }
    }
  }
}

TEST(CodecRegistry, BlockCodecConstructibleForEveryScheme) {
  const auto& reg = CodecRegistry::instance();
  const auto training = quantized_walk(23, 256);
  const auto blocks = reference_blocks();

  for (const auto* info : reg.entries()) {
    const auto codec = reg.create_block_codec(info->name, test_options(training));
    ASSERT_NE(codec, nullptr) << info->name;
    EXPECT_EQ(codec->mag_bytes(), 32u) << info->name;
    for (const Block& b : blocks) {
      const BlockCodecResult r = codec->process(b.view(), /*safe=*/true, /*threshold=*/16);
      EXPECT_GE(r.bursts, 1u) << info->name;
      EXPECT_LE(r.bursts, kBlockBytes / 32) << info->name;
      if (!info->lossy) {
        EXPECT_EQ(r.decoded, b) << info->name;
      }
    }
  }
}

TEST(CodecRegistry, TrainedModelReuseMatchesRetraining) {
  const auto& reg = CodecRegistry::instance();
  const auto training = quantized_walk(23, 256);
  const auto blocks = reference_blocks();

  CodecOptions opts = test_options(training);
  const auto fresh = reg.create("TSLC-OPT", opts);

  opts.trained_e2mc =
      std::dynamic_pointer_cast<const E2mcCompressor>(reg.create("E2MC", opts));
  ASSERT_NE(opts.trained_e2mc, nullptr);
  opts.training_data = {};  // model reuse must suffice
  const auto reused = reg.create("TSLC-OPT", opts);

  // The E2MC factory must hand back the supplied model, not retrain.
  EXPECT_EQ(reg.create("E2MC", opts).get(), opts.trained_e2mc.get());

  for (const Block& b : blocks) {
    EXPECT_EQ(fresh->compressed_bits(b.view()), reused->compressed_bits(b.view()));
  }
}

TEST(CodecRegistry, SlcAdapterExposesEncodeInfo) {
  const auto& reg = CodecRegistry::instance();
  const auto training = quantized_walk(23, 256);
  const auto comp = std::dynamic_pointer_cast<const SlcCompressor>(
      reg.create("TSLC-OPT", test_options(training)));
  ASSERT_NE(comp, nullptr);
  const auto blocks = reference_blocks();
  for (const Block& b : blocks) {
    const SlcEncodeInfo info = comp->codec().analyze(b.view());
    const BlockAnalysis a = comp->analyze(b.view());
    EXPECT_EQ(a.bit_size, info.final_bits);
    EXPECT_EQ(a.lossy, info.lossy);
    EXPECT_EQ(a.lossless_bits, info.lossless_bits);
    EXPECT_EQ(a.truncated_symbols, info.truncated_symbols);
  }
}

}  // namespace
}  // namespace slc

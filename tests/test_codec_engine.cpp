// CodecEngine: parallel-for coverage, and the determinism guarantee — a
// 1-thread and an N-thread run produce identical per-block results, payloads
// and merged stats/ratios.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "test_util.h"
#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "workloads/approx_memory.h"

namespace slc {
namespace {

using test::quantized_walk;
using test::test_options;

TEST(CodecEngine, ParallelForCoversEveryIndexExactlyOnce) {
  CodecEngine engine(4);
  EXPECT_EQ(engine.num_threads(), 4u);
  for (const size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    engine.parallel_for(count, [&](size_t begin, size_t end, unsigned worker) {
      EXPECT_LT(worker, engine.num_threads());
      EXPECT_LE(begin, end);
      EXPECT_LE(end, count);
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(CodecEngine, ParallelForRethrowsBodyExceptions) {
  CodecEngine engine(2);
  EXPECT_THROW(engine.parallel_for(100,
                                   [&](size_t begin, size_t, unsigned) {
                                     if (begin == 0) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // The pool must stay usable afterwards.
  std::atomic<size_t> total{0};
  engine.parallel_for(10, [&](size_t begin, size_t end, unsigned) { total += end - begin; });
  EXPECT_EQ(total.load(), 10u);
}

// The tier-1 determinism property: identical per-block decisions, payload
// bytes and merged stats for 1 worker vs N workers.
TEST(CodecEngine, ThreadCountInvariantResults) {
  const auto training = quantized_walk(31, 256);
  const auto blocks = to_blocks(quantized_walk(32, 300));

  for (const char* scheme : {"E2MC", "TSLC-OPT"}) {
    const auto comp = CodecRegistry::instance().create(scheme, test_options(training));
    CodecEngine one(1);
    CodecEngine four(4);

    const auto a1 = one.analyze_stream(*comp, blocks, 32);
    const auto a4 = four.analyze_stream(*comp, blocks, 32);
    ASSERT_EQ(a1.blocks.size(), a4.blocks.size());
    for (size_t i = 0; i < a1.blocks.size(); ++i) {
      EXPECT_EQ(a1.blocks[i].bit_size, a4.blocks[i].bit_size) << scheme << " block " << i;
      EXPECT_EQ(a1.blocks[i].lossy, a4.blocks[i].lossy) << scheme << " block " << i;
    }
    EXPECT_EQ(a1.ratios.blocks(), a4.ratios.blocks());
    EXPECT_EQ(a1.ratios.raw_ratio(), a4.ratios.raw_ratio()) << scheme;
    EXPECT_EQ(a1.ratios.effective_ratio(), a4.ratios.effective_ratio()) << scheme;
    EXPECT_EQ(a1.lossy_blocks, a4.lossy_blocks) << scheme;
    EXPECT_EQ(a1.truncated_symbols, a4.truncated_symbols) << scheme;

    const auto c1 = one.compress_stream(*comp, blocks);
    const auto c4 = four.compress_stream(*comp, blocks);
    ASSERT_EQ(c1.size(), c4.size());
    for (size_t i = 0; i < c1.size(); ++i) {
      EXPECT_EQ(c1[i].bit_size, c4[i].bit_size) << scheme << " block " << i;
      EXPECT_EQ(c1[i].payload, c4[i].payload) << scheme << " block " << i;
    }
  }
}

TEST(CodecEngine, AnalyzeBytesMatchesAnalyzeStream) {
  const auto training = quantized_walk(31, 256);
  const auto data = quantized_walk(33, 64);
  const auto blocks = to_blocks(data);
  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));

  CodecEngine engine(2);
  const auto from_blocks = engine.analyze_stream(*comp, blocks, 32);
  const auto from_bytes = engine.analyze_bytes(*comp, data, 32);
  ASSERT_EQ(from_bytes.blocks.size(), from_blocks.blocks.size());
  for (size_t i = 0; i < from_bytes.blocks.size(); ++i)
    EXPECT_EQ(from_bytes.blocks[i].bit_size, from_blocks.blocks[i].bit_size);
  EXPECT_EQ(from_bytes.ratios.raw_ratio(), from_blocks.ratios.raw_ratio());
}

TEST(CodecEngine, AnalyzeBytesPadsTail) {
  const auto training = quantized_walk(31, 256);
  auto data = quantized_walk(34, 3);
  data.resize(data.size() - 40);  // ragged tail
  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));

  CodecEngine engine(2);
  const auto res = engine.analyze_bytes(*comp, data, 32);
  EXPECT_EQ(res.blocks.size(), 3u);  // tail zero-padded into a full block
  const auto blocks = to_blocks(data);
  ASSERT_EQ(blocks.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(res.blocks[i].bit_size, comp->compressed_bits(blocks[i].view()));
}

// ApproxMemory::commit shards through the engine; stats and mutated contents
// must not depend on the worker count.
TEST(CodecEngine, CommitInvariantAcrossEngines) {
  const auto training = quantized_walk(31, 256);
  CodecOptions opts = test_options(training);
  const auto codec = CodecRegistry::instance().create_block_codec("TSLC-OPT", opts);

  auto run_commit = [&](std::shared_ptr<CodecEngine> engine) {
    ApproxMemory mem;
    mem.set_engine(std::move(engine));
    mem.set_codec(codec);
    const RegionId r = mem.alloc("x", 300 * kBlockBytes, /*safe=*/true, 16);
    auto dst = mem.span<uint8_t>(r);
    const auto src = quantized_walk(35, 300);
    std::copy(src.begin(), src.end(), dst.begin());
    mem.commit(r);
    return std::make_pair(mem.stats(), std::vector<uint8_t>(dst.begin(), dst.end()));
  };

  const auto [stats_seq, data_seq] = run_commit(nullptr);  // inline path
  const auto [stats_one, data_one] = run_commit(std::make_shared<CodecEngine>(1));
  const auto [stats_four, data_four] = run_commit(std::make_shared<CodecEngine>(4));

  EXPECT_EQ(data_seq, data_one);
  EXPECT_EQ(data_seq, data_four);
  for (const auto* s : {&stats_one, &stats_four}) {
    EXPECT_EQ(stats_seq.blocks, s->blocks);
    EXPECT_EQ(stats_seq.lossy_blocks, s->lossy_blocks);
    EXPECT_EQ(stats_seq.bursts, s->bursts);
    EXPECT_EQ(stats_seq.final_bits, s->final_bits);
    EXPECT_EQ(stats_seq.truncated_symbols, s->truncated_symbols);
  }
}

}  // namespace
}  // namespace slc

// CodecEngine: parallel-for coverage, and the determinism guarantee — a
// 1-thread and an N-thread run produce identical per-block results, payloads
// and merged stats/ratios.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/rng.h"
#include "test_util.h"
#include "compress/codec_registry.h"
#include "engine/codec_engine.h"
#include "workloads/approx_memory.h"

namespace slc {
namespace {

using test::quantized_walk;
using test::test_options;

TEST(CodecEngine, ParallelForCoversEveryIndexExactlyOnce) {
  CodecEngine engine(4);
  EXPECT_EQ(engine.num_threads(), 4u);
  for (const size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(count);
    engine.parallel_for(count, [&](size_t begin, size_t end, unsigned worker) {
      EXPECT_LT(worker, engine.num_threads());
      EXPECT_LE(begin, end);
      EXPECT_LE(end, count);
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(CodecEngine, ParallelForRethrowsBodyExceptions) {
  CodecEngine engine(2);
  EXPECT_THROW(engine.parallel_for(100,
                                   [&](size_t begin, size_t, unsigned) {
                                     if (begin == 0) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // The pool must stay usable afterwards.
  std::atomic<size_t> total{0};
  engine.parallel_for(10, [&](size_t begin, size_t end, unsigned) { total += end - begin; });
  EXPECT_EQ(total.load(), 10u);
}

// The tier-1 determinism property: identical per-block decisions, payload
// bytes and merged stats for 1 worker vs N workers.
TEST(CodecEngine, ThreadCountInvariantResults) {
  const auto training = quantized_walk(31, 256);
  const auto blocks = to_blocks(quantized_walk(32, 300));

  for (const char* scheme : {"E2MC", "TSLC-OPT"}) {
    const auto comp = CodecRegistry::instance().create(scheme, test_options(training));
    CodecEngine one(1);
    CodecEngine four(4);

    const auto a1 = one.analyze_stream(*comp, blocks, 32);
    const auto a4 = four.analyze_stream(*comp, blocks, 32);
    ASSERT_EQ(a1.blocks.size(), a4.blocks.size());
    for (size_t i = 0; i < a1.blocks.size(); ++i) {
      EXPECT_EQ(a1.blocks[i].bit_size, a4.blocks[i].bit_size) << scheme << " block " << i;
      EXPECT_EQ(a1.blocks[i].lossy, a4.blocks[i].lossy) << scheme << " block " << i;
    }
    EXPECT_EQ(a1.ratios.blocks(), a4.ratios.blocks());
    EXPECT_EQ(a1.ratios.raw_ratio(), a4.ratios.raw_ratio()) << scheme;
    EXPECT_EQ(a1.ratios.effective_ratio(), a4.ratios.effective_ratio()) << scheme;
    EXPECT_EQ(a1.lossy_blocks, a4.lossy_blocks) << scheme;
    EXPECT_EQ(a1.truncated_symbols, a4.truncated_symbols) << scheme;

    const auto c1 = one.compress_stream(*comp, blocks);
    const auto c4 = four.compress_stream(*comp, blocks);
    ASSERT_EQ(c1.size(), c4.size());
    for (size_t i = 0; i < c1.size(); ++i) {
      EXPECT_EQ(c1[i].bit_size, c4[i].bit_size) << scheme << " block " << i;
      EXPECT_EQ(c1[i].payload, c4[i].payload) << scheme << " block " << i;
    }
  }
}

TEST(CodecEngine, AnalyzeBytesMatchesAnalyzeStream) {
  const auto training = quantized_walk(31, 256);
  const auto data = quantized_walk(33, 64);
  const auto blocks = to_blocks(data);
  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));

  CodecEngine engine(2);
  const auto from_blocks = engine.analyze_stream(*comp, blocks, 32);
  const auto from_bytes = engine.analyze_bytes(*comp, data, 32);
  ASSERT_EQ(from_bytes.blocks.size(), from_blocks.blocks.size());
  for (size_t i = 0; i < from_bytes.blocks.size(); ++i)
    EXPECT_EQ(from_bytes.blocks[i].bit_size, from_blocks.blocks[i].bit_size);
  EXPECT_EQ(from_bytes.ratios.raw_ratio(), from_blocks.ratios.raw_ratio());
}

// Satellite regression: analyze_bytes' zero-padded tail must be
// byte-identical to to_blocks(pad_tail = true) + analyze_stream for every
// ragged size, including empty input.
TEST(CodecEngine, AnalyzeBytesTailPaddingMatchesToBlocks) {
  const auto training = quantized_walk(31, 256);
  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));
  const auto base = quantized_walk(36, 6);

  CodecEngine engine(3);
  for (const size_t bytes :
       {size_t{0}, size_t{1}, size_t{40}, kBlockBytes - 1, kBlockBytes, kBlockBytes + 1,
        5 * kBlockBytes + 17, 6 * kBlockBytes}) {
    ASSERT_LE(bytes, base.size());
    const std::span<const uint8_t> data(base.data(), bytes);
    const auto blocks = to_blocks(data, kBlockBytes, /*pad_tail=*/true);

    const auto from_bytes = engine.analyze_bytes(*comp, data, 32);
    const auto from_blocks = engine.analyze_stream(*comp, blocks, 32);

    ASSERT_EQ(from_bytes.blocks.size(), from_blocks.blocks.size()) << bytes << " bytes";
    for (size_t i = 0; i < from_bytes.blocks.size(); ++i) {
      const BlockAnalysis& a = from_bytes.blocks[i];
      const BlockAnalysis& b = from_blocks.blocks[i];
      EXPECT_EQ(a.bit_size, b.bit_size) << bytes << " bytes, block " << i;
      EXPECT_EQ(a.is_compressed, b.is_compressed) << bytes << " bytes, block " << i;
      EXPECT_EQ(a.lossy, b.lossy) << bytes << " bytes, block " << i;
      EXPECT_EQ(a.lossless_bits, b.lossless_bits) << bytes << " bytes, block " << i;
      EXPECT_EQ(a.truncated_symbols, b.truncated_symbols) << bytes << " bytes, block " << i;
    }
    EXPECT_EQ(from_bytes.ratios.blocks(), from_blocks.ratios.blocks()) << bytes;
    EXPECT_EQ(from_bytes.ratios.raw_ratio(), from_blocks.ratios.raw_ratio()) << bytes;
    EXPECT_EQ(from_bytes.ratios.effective_ratio(), from_blocks.ratios.effective_ratio()) << bytes;
    EXPECT_EQ(from_bytes.lossy_blocks, from_blocks.lossy_blocks) << bytes;
    EXPECT_EQ(from_bytes.truncated_symbols, from_blocks.truncated_symbols) << bytes;
  }
}

TEST(CodecEngine, AnalyzeBytesPadsTail) {
  const auto training = quantized_walk(31, 256);
  auto data = quantized_walk(34, 3);
  data.resize(data.size() - 40);  // ragged tail
  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));

  CodecEngine engine(2);
  const auto res = engine.analyze_bytes(*comp, data, 32);
  EXPECT_EQ(res.blocks.size(), 3u);  // tail zero-padded into a full block
  const auto blocks = to_blocks(data);
  ASSERT_EQ(blocks.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_EQ(res.blocks[i].bit_size, comp->compressed_bits(blocks[i].view()));
}

// --- async submission API ---------------------------------------------------

TEST(CodecEngine, FutureBasics) {
  CodecFuture<void> empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.ready());
  EXPECT_THROW(empty.wait(), std::logic_error);

  CodecEngine engine(2);
  // count == 0: ready immediately, wait returns without touching the pool.
  auto zero = engine.submit(0, [](size_t, size_t, unsigned) { FAIL() << "must not run"; });
  EXPECT_TRUE(zero.valid());
  EXPECT_TRUE(zero.ready());
  zero.wait();
  EXPECT_FALSE(zero.valid());  // one-shot

  std::atomic<size_t> total{0};
  auto fut = engine.submit(100, [&](size_t begin, size_t end, unsigned) { total += end - begin; });
  fut.wait();
  EXPECT_EQ(total.load(), 100u);
}

// Multiple jobs in flight on one pool: each job's result must be identical
// to a solo sequential analyze/compress of the same stream.
TEST(CodecEngine, ConcurrentSubmitsMatchSequentialAnalyze) {
  const auto training = quantized_walk(31, 256);
  const auto comp = CodecRegistry::instance().create("E2MC", test_options(training));
  std::vector<std::vector<Block>> streams;
  for (uint64_t s = 0; s < 4; ++s) streams.push_back(to_blocks(quantized_walk(40 + s, 150)));

  CodecEngine engine(4);
  std::vector<CodecFuture<CodecEngine::StreamAnalysis>> analyses;
  std::vector<CodecFuture<std::vector<CompressedBlock>>> payloads;
  for (const auto& stream : streams) {
    analyses.push_back(engine.submit_analyze(*comp, stream, 32));
    payloads.push_back(engine.submit_compress(*comp, stream));
  }

  CodecEngine reference(1);
  for (size_t s = 0; s < streams.size(); ++s) {
    const auto got = analyses[s].wait();
    const auto want = reference.analyze_stream(*comp, streams[s], 32);
    ASSERT_EQ(got.blocks.size(), want.blocks.size());
    for (size_t i = 0; i < got.blocks.size(); ++i)
      EXPECT_EQ(got.blocks[i].bit_size, want.blocks[i].bit_size) << "stream " << s << " block " << i;
    EXPECT_EQ(got.ratios.raw_ratio(), want.ratios.raw_ratio()) << "stream " << s;
    EXPECT_EQ(got.ratios.effective_ratio(), want.ratios.effective_ratio()) << "stream " << s;
    EXPECT_EQ(got.lossy_blocks, want.lossy_blocks);
    EXPECT_EQ(got.truncated_symbols, want.truncated_symbols);

    const auto got_payloads = payloads[s].wait();
    const auto want_payloads = reference.compress_stream(*comp, streams[s]);
    ASSERT_EQ(got_payloads.size(), want_payloads.size());
    for (size_t i = 0; i < got_payloads.size(); ++i)
      EXPECT_EQ(got_payloads[i].payload, want_payloads[i].payload) << "stream " << s;
  }
}

// An exception is confined to its job: concurrent jobs complete normally,
// the failed future rethrows, and the pool stays usable.
TEST(CodecEngine, ExceptionInOneJobDoesNotPoisonOthers) {
  CodecEngine engine(2);
  std::atomic<size_t> good_total{0};
  auto bad = engine.submit(64, [&](size_t begin, size_t, unsigned) {
    if (begin == 0) throw std::runtime_error("boom");
  });
  auto good =
      engine.submit(64, [&](size_t begin, size_t end, unsigned) { good_total += end - begin; });

  good.wait();
  EXPECT_EQ(good_total.load(), 64u);
  EXPECT_THROW(bad.wait(), std::runtime_error);

  // The pool must stay usable afterwards.
  std::atomic<size_t> total{0};
  engine.parallel_for(10, [&](size_t begin, size_t end, unsigned) { total += end - begin; });
  EXPECT_EQ(total.load(), 10u);
}

// submit_job's finalize runs once, on the waiting thread, after the drain —
// the merge point the determinism contract hangs on.
TEST(CodecEngine, SubmitJobFinalizeMergesPerWorkerState) {
  CodecEngine engine(4);
  auto per_worker = std::make_shared<std::vector<uint64_t>>(engine.num_threads(), 0);
  auto fut = engine.submit_job<uint64_t>(
      1000,
      [per_worker](size_t begin, size_t end, unsigned worker) {
        for (size_t i = begin; i < end; ++i) (*per_worker)[worker] += i;
      },
      [per_worker]() {
        uint64_t total = 0;
        for (const uint64_t w : *per_worker) total += w;
        return total;
      });
  EXPECT_EQ(fut.wait(), 1000u * 999u / 2);
}

// ApproxMemory::commit shards through the engine; stats and mutated contents
// must not depend on the worker count.
TEST(CodecEngine, CommitInvariantAcrossEngines) {
  const auto training = quantized_walk(31, 256);
  CodecOptions opts = test_options(training);
  const auto codec = CodecRegistry::instance().create_block_codec("TSLC-OPT", opts);

  auto run_commit = [&](std::shared_ptr<CodecEngine> engine) {
    ApproxMemory mem;
    mem.set_engine(std::move(engine));
    mem.set_codec(codec);
    const RegionId r = mem.alloc("x", 300 * kBlockBytes, /*safe=*/true, 16);
    auto dst = mem.span<uint8_t>(r);
    const auto src = quantized_walk(35, 300);
    std::copy(src.begin(), src.end(), dst.begin());
    mem.commit(r);
    return std::make_pair(mem.stats(), std::vector<uint8_t>(dst.begin(), dst.end()));
  };

  const auto [stats_seq, data_seq] = run_commit(nullptr);  // inline path
  const auto [stats_one, data_one] = run_commit(std::make_shared<CodecEngine>(1));
  const auto [stats_four, data_four] = run_commit(std::make_shared<CodecEngine>(4));

  EXPECT_EQ(data_seq, data_one);
  EXPECT_EQ(data_seq, data_four);
  for (const auto* s : {&stats_one, &stats_four}) {
    EXPECT_EQ(stats_seq.blocks, s->blocks);
    EXPECT_EQ(stats_seq.lossy_blocks, s->lossy_blocks);
    EXPECT_EQ(stats_seq.bursts, s->bursts);
    EXPECT_EQ(stats_seq.final_bits, s->final_bits);
    EXPECT_EQ(stats_seq.truncated_symbols, s->truncated_symbols);
  }
}

// --- shutdown + priority ----------------------------------------------------

// A job still queued when the engine shuts down must be marked finished with
// a stored exception: a future that outlives the engine throws from wait()
// instead of deadlocking.
TEST(CodecEngine, ShutdownAbandonsQueuedJobsAndFutureOutlivesEngine) {
  auto engine = std::make_unique<CodecEngine>(1);
  std::atomic<bool> started{false}, release{false};

  // The gate job occupies the only worker, so everything submitted behind it
  // stays on the queue for as long as we hold the gate closed.
  auto gate = engine->submit(1, [&](size_t, size_t, unsigned) {
    started = true;
    while (!release) std::this_thread::yield();
  });
  auto orphan = engine->submit(1, [](size_t, size_t, unsigned) {});
  while (!started) std::this_thread::yield();

  std::thread stopper([&] { engine->shutdown(); });
  // Wait until the stop is visible: once it is, a fresh submit is abandoned
  // at enqueue (ready immediately, wait() throws). Probes queued before the
  // stop are abandoned by shutdown; dropping their futures is fine.
  for (;;) {
    auto probe = engine->submit(1, [](size_t, size_t, unsigned) {});
    if (probe.ready()) {
      EXPECT_THROW(probe.wait(), std::runtime_error);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  release = true;
  stopper.join();

  gate.wait();  // fully claimed before the stop: drains normally
  engine.reset();
  // The future outlives the engine; its job was abandoned, so wait() throws.
  EXPECT_TRUE(orphan.ready());
  EXPECT_THROW(orphan.wait(), std::runtime_error);
}

// With one worker held by a gate job, the claim loop must pick the
// higher-priority job first once the gate opens, FIFO among equals.
TEST(CodecEngine, PriorityClaimsBeforeFifo) {
  CodecEngine engine(1);
  std::atomic<bool> started{false}, release{false};
  auto gate = engine.submit(1, [&](size_t, size_t, unsigned) {
    started = true;
    while (!release) std::this_thread::yield();
  });
  while (!started) std::this_thread::yield();

  std::mutex order_m;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lk(order_m);
    order.push_back(tag);
  };
  auto bulk_a = engine.submit(1, [&](size_t, size_t, unsigned) { record(0); },
                              CodecEngine::kPriorityBulk);
  auto bulk_b = engine.submit(1, [&](size_t, size_t, unsigned) { record(1); },
                              CodecEngine::kPriorityBulk);
  auto urgent = engine.submit(1, [&](size_t, size_t, unsigned) { record(2); },
                              CodecEngine::kPriorityLatency);

  release = true;
  gate.wait();
  bulk_a.wait();
  bulk_b.wait();
  urgent.wait();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2) << "the latency job must be claimed first";
  EXPECT_EQ(order[1], 0) << "equal priorities drain FIFO";
  EXPECT_EQ(order[2], 1);
}

// EDF within a priority band: two deadline-priority batches submitted
// later-deadline-first must still dispatch in deadline order once the gate
// opens, and a dated job beats an undated one of the same priority.
TEST(CodecEngine, EarliestDeadlineClaimsFirstWithinBand) {
  CodecEngine engine(1);
  std::atomic<bool> started{false}, release{false};
  auto gate = engine.submit(1, [&](size_t, size_t, unsigned) {
    started = true;
    while (!release) std::this_thread::yield();
  });
  while (!started) std::this_thread::yield();

  std::mutex order_m;
  std::vector<int> order;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lk(order_m);
    order.push_back(tag);
  };
  const auto now = std::chrono::steady_clock::now();
  // Submission order: undated, late, early — claim order must invert to
  // early, late, undated.
  auto undated = engine.submit(1, [&](size_t, size_t, unsigned) { record(0); },
                               CodecEngine::kPriorityDeadline);
  auto late = engine.submit(1, [&](size_t, size_t, unsigned) { record(1); },
                            CodecEngine::kPriorityDeadline, now + std::chrono::seconds(60));
  auto early = engine.submit(1, [&](size_t, size_t, unsigned) { record(2); },
                             CodecEngine::kPriorityDeadline, now + std::chrono::seconds(1));
  // Band still outranks deadline: a bulk job with the earliest date loses to
  // every deadline-band job above.
  auto bulk = engine.submit(1, [&](size_t, size_t, unsigned) { record(3); },
                            CodecEngine::kPriorityBulk, now - std::chrono::seconds(1));

  release = true;
  gate.wait();
  undated.wait();
  late.wait();
  early.wait();
  bulk.wait();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 2) << "earliest deadline in the band claims first";
  EXPECT_EQ(order[1], 1) << "later deadline second";
  EXPECT_EQ(order[2], 0) << "undated (kNoDeadline) drains last in its band";
  EXPECT_EQ(order[3], 3) << "priority still dominates the deadline tiebreak";
}

// A multi-shard deadline batch drains completely before a same-band batch
// with a later deadline starts: shard claims follow the job-level EDF order.
TEST(CodecEngine, DeadlineBatchesDispatchInDeadlineOrder) {
  CodecEngine engine(1);
  std::atomic<bool> started{false}, release{false};
  auto gate = engine.submit(1, [&](size_t, size_t, unsigned) {
    started = true;
    while (!release) std::this_thread::yield();
  });
  while (!started) std::this_thread::yield();

  std::mutex order_m;
  std::vector<int> order;
  const auto now = std::chrono::steady_clock::now();
  auto batch = [&](int tag, std::chrono::seconds deadline) {
    return engine.submit(
        64,
        [&order, &order_m, tag](size_t, size_t, unsigned) {
          std::lock_guard<std::mutex> lk(order_m);
          order.push_back(tag);
        },
        CodecEngine::kPriorityDeadline, now + deadline);
  };
  auto late = batch(1, std::chrono::seconds(60));
  auto early = batch(0, std::chrono::seconds(1));

  release = true;
  gate.wait();
  late.wait();
  early.wait();
  ASSERT_FALSE(order.empty());
  const auto first_late = std::find(order.begin(), order.end(), 1);
  const auto last_early = std::find(order.rbegin(), order.rend(), 0);
  ASSERT_NE(first_late, order.end());
  ASSERT_NE(last_early, order.rend());
  // Every early-deadline shard ran before the first late-deadline shard.
  EXPECT_LT(last_early.base() - order.begin(), first_late - order.begin() + 1)
      << "the earlier-deadline batch must drain before the later one starts";
}

}  // namespace
}  // namespace slc

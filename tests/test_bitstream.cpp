// BitWriter/BitReader: the foundation every codec builds on.
#include <gtest/gtest.h>

#include "common/bitstream.h"
#include "common/rng.h"

namespace slc {
namespace {

TEST(BitWriter, EmptyStream) {
  BitWriter w;
  EXPECT_EQ(w.bit_size(), 0u);
  EXPECT_EQ(w.byte_size(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitWriter, SingleBits) {
  BitWriter w;
  w.put_bit(true);
  w.put_bit(false);
  w.put_bit(true);
  EXPECT_EQ(w.bit_size(), 3u);
  const auto bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);  // MSB-first
}

TEST(BitWriter, MultiBitMsbFirst) {
  BitWriter w;
  w.put(0b1011, 4);
  w.put(0b0110, 4);
  const auto bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110110);
}

TEST(BitWriter, CrossesByteBoundary) {
  BitWriter w;
  w.put(0x3FF, 10);  // 10 ones
  w.put(0, 6);
  const auto bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0xC0);
}

TEST(BitWriter, MasksValueToWidth) {
  BitWriter w;
  w.put(0xFFFF, 4);  // only the low 4 bits count
  EXPECT_EQ(w.bit_size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0xF0);
}

TEST(BitWriter, ZeroWidthIsNoop) {
  BitWriter w;
  w.put(123, 0);
  EXPECT_EQ(w.bit_size(), 0u);
}

TEST(BitWriter, SixtyFourBitValue) {
  BitWriter w;
  const uint64_t v = 0xDEADBEEFCAFEBABEull;
  w.put(v, 64);
  const auto bytes = w.bytes();
  BitReader r(bytes);
  EXPECT_EQ(r.get(64), v);
}

TEST(BitWriter, PatchRewritesBits) {
  BitWriter w;
  w.put(0, 8);
  w.put(0xAB, 8);
  w.patch(0, 0xFF, 8);
  const auto bytes = w.bytes();
  EXPECT_EQ(bytes[0], 0xFF);
  EXPECT_EQ(bytes[1], 0xAB);
}

TEST(BitWriter, PatchUnaligned) {
  BitWriter w;
  w.put(0, 16);
  w.patch(3, 0b101, 3);
  const auto bytes = w.bytes();
  BitReader r(bytes);
  r.skip(3);
  EXPECT_EQ(r.get(3), 0b101u);
}

TEST(BitWriter, ClearResets) {
  BitWriter w;
  w.put(0xFF, 8);
  w.clear();
  EXPECT_EQ(w.bit_size(), 0u);
  w.put(1, 1);
  EXPECT_EQ(w.bytes()[0], 0x80);
}

TEST(BitReader, ReadsBackWrittenValues) {
  BitWriter w;
  w.put(5, 3);
  w.put(1000, 12);
  w.put(1, 1);
  const auto bytes = w.bytes();
  BitReader r(bytes);
  EXPECT_EQ(r.get(3), 5u);
  EXPECT_EQ(r.get(12), 1000u);
  EXPECT_TRUE(r.get_bit());
}

TEST(BitReader, PeekDoesNotConsume) {
  BitWriter w;
  w.put(0b1010, 4);
  const auto bytes = w.bytes();
  BitReader r(bytes);
  EXPECT_EQ(r.peek(4), 0b1010u);
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.get(4), 0b1010u);
  EXPECT_EQ(r.position(), 4u);
}

TEST(BitReader, OverrunReturnsZerosAndFlags) {
  BitWriter w;
  w.put(0xFF, 8);
  const auto bytes = w.bytes();
  BitReader r(bytes);
  r.skip(8);
  EXPECT_EQ(r.get(8), 0u);
  EXPECT_TRUE(r.overrun());
}

TEST(BitReader, SeekRepositions) {
  BitWriter w;
  w.put(0xAB, 8);
  w.put(0xCD, 8);
  const auto bytes = w.bytes();
  BitReader r(bytes);
  r.seek(8);
  EXPECT_EQ(r.get(8), 0xCDu);
  r.seek(0);
  EXPECT_EQ(r.get(8), 0xABu);
}

// Property: any sequence of (value, width) pairs round-trips.
TEST(BitStreamProperty, RandomRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    BitWriter w;
    std::vector<std::pair<uint64_t, unsigned>> items;
    for (int i = 0; i < 50; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.next_below(64));
      const uint64_t value =
          width == 64 ? rng.next() : rng.next() & ((uint64_t{1} << width) - 1);
      items.emplace_back(value, width);
      w.put(value, width);
    }
    const auto bytes = w.bytes();
    BitReader r(bytes);
    for (const auto& [value, width] : items) {
      EXPECT_EQ(r.get(width), value) << "trial " << trial;
    }
    EXPECT_FALSE(r.overrun());
  }
}

}  // namespace
}  // namespace slc

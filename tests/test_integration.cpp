// End-to-end integration: the paper's qualitative results at tiny scale.
// These are the invariants the figures rest on — if any fails, the benches
// cannot reproduce the paper.
#include <gtest/gtest.h>

#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/fpc.h"
#include "core/slc_block_codec.h"
#include "sim/energy.h"
#include "sim/gpu_sim.h"
#include "workloads/workload.h"

namespace slc {
namespace {

std::shared_ptr<const E2mcCompressor> train_for(const std::string& name) {
  static std::map<std::string, std::shared_ptr<const E2mcCompressor>> cache;
  auto it = cache.find(name);
  if (it != cache.end()) return it->second;
  const auto image = workload_memory_image(name, WorkloadScale::kTiny);
  auto c = E2mcCompressor::train(image, E2mcConfig{});
  cache[name] = c;
  return c;
}

TEST(Integration, EffectiveRatioBelowRawForAllSchemes) {
  // Fig. 1's core claim, checked on one float-heavy benchmark.
  const auto image = workload_memory_image("SRAD2", WorkloadScale::kTiny);
  const auto blocks = to_blocks(image);
  const BdiCompressor bdi;
  const FpcCompressor fpc;
  const CpackCompressor cpack;
  const auto e2mc = train_for("SRAD2");
  const Compressor* schemes[] = {&bdi, &fpc, &cpack, e2mc.get()};
  for (const Compressor* c : schemes) {
    RatioAccumulator acc(32);
    for (const Block& b : blocks) acc.add(b.size() * 8, c->compressed_bits(b.view()));
    EXPECT_LE(acc.effective_ratio(), acc.raw_ratio() + 1e-12) << c->name();
  }
}

TEST(Integration, E2mcBeatsPatternSchemesOnFloats) {
  // The paper picks E2MC as baseline because it compresses best (Sec. I).
  const auto image = workload_memory_image("BS", WorkloadScale::kTiny);
  const auto blocks = to_blocks(image);
  const auto e2mc = train_for("BS");
  const FpcCompressor fpc;
  RatioAccumulator acc_e(32), acc_f(32);
  for (const Block& b : blocks) {
    acc_e.add(b.size() * 8, e2mc->compressed_bits(b.view()));
    acc_f.add(b.size() * 8, fpc.compressed_bits(b.view()));
  }
  EXPECT_GT(acc_e.raw_ratio(), acc_f.raw_ratio());
}

TEST(Integration, SlcReducesTrafficVsE2mc) {
  // The heart of the paper: TSLC must save bursts over lossless E2MC.
  for (const std::string name : {"BS", "NN", "SRAD2"}) {
    auto e2mc = train_for(name);
    auto base = std::make_shared<LosslessBlockCodec>(e2mc, 32);
    SlcConfig cfg;
    cfg.threshold_bytes = 16;
    cfg.variant = SlcVariant::kOpt;
    auto slc = std::make_shared<SlcBlockCodec>(e2mc, cfg);
    const auto rb = run_workload(name, base, WorkloadScale::kTiny);
    const auto rs = run_workload(name, slc, WorkloadScale::kTiny);
    EXPECT_LE(rs.stats.bursts, rb.stats.bursts) << name;
    EXPECT_GT(rs.stats.lossy_blocks, 0u) << name << " must exercise the lossy path";
  }
}

TEST(Integration, LosslessBaselineHasZeroError) {
  for (const std::string name : {"BS", "TP", "SRAD2"}) {
    auto base = std::make_shared<LosslessBlockCodec>(train_for(name), 32);
    const auto r = run_workload(name, base, WorkloadScale::kTiny);
    EXPECT_EQ(r.error_pct, 0.0) << name;
  }
}

TEST(Integration, PredictionReducesErrorVsTruncation) {
  // Fig. 7b's ordering: SIMP >= PRED on every float workload.
  for (const std::string name : {"BS", "NN", "SRAD2", "TP"}) {
    auto e2mc = train_for(name);
    SlcConfig cfg;
    cfg.threshold_bytes = 16;
    cfg.variant = SlcVariant::kSimp;
    const auto simp =
        run_workload(name, std::make_shared<SlcBlockCodec>(e2mc, cfg), WorkloadScale::kTiny);
    cfg.variant = SlcVariant::kPred;
    const auto pred =
        run_workload(name, std::make_shared<SlcBlockCodec>(e2mc, cfg), WorkloadScale::kTiny);
    if (simp.stats.lossy_blocks == 0) continue;  // nothing approximated
    EXPECT_LE(pred.error_pct, simp.error_pct * 1.5 + 1e-9) << name;
  }
}

TEST(Integration, ErrorBoundedAtDefaultThreshold) {
  // Fig. 7b: errors are small single-digit percentages at threshold 16 B.
  for (const std::string& name : workload_names()) {
    auto e2mc = train_for(name);
    SlcConfig cfg;
    cfg.threshold_bytes = 16;
    cfg.variant = SlcVariant::kOpt;
    const auto r =
        run_workload(name, std::make_shared<SlcBlockCodec>(e2mc, cfg), WorkloadScale::kTiny);
    EXPECT_LT(r.error_pct, 25.0) << name << " error out of the paper's regime";
  }
}

TEST(Integration, FullPipelineSpeedupOnMemoryBoundWorkload) {
  const std::string name = "NN";
  auto e2mc = train_for(name);
  auto base_codec = std::make_shared<LosslessBlockCodec>(e2mc, 32);
  SlcConfig cfg;
  cfg.threshold_bytes = 16;
  cfg.variant = SlcVariant::kOpt;
  auto slc_codec = std::make_shared<SlcBlockCodec>(e2mc, cfg);

  const auto rb = run_workload(name, base_codec, WorkloadScale::kTiny);
  const auto rs = run_workload(name, slc_codec, WorkloadScale::kTiny);

  GpuSimConfig scfg;
  scfg.compress_latency = E2mcCompressor::kCompressLatency;
  scfg.decompress_latency = E2mcCompressor::kDecompressLatency;
  GpuSim sim_base(scfg);
  const SimStats sb = sim_base.run(rb.trace);
  scfg.compress_latency = SlcCodec::kCompressLatency;
  GpuSim sim_slc(scfg);
  const SimStats ss = sim_slc.run(rs.trace);

  EXPECT_LE(ss.dram_bursts_total(), sb.dram_bursts_total());
  // Timing must not regress (tiny scale may mute the gain, but TSLC can't
  // be slower than E2MC by more than noise).
  EXPECT_LT(static_cast<double>(ss.cycles), static_cast<double>(sb.cycles) * 1.02);

  const auto eb = compute_energy(sb, scfg);
  const auto es = compute_energy(ss, scfg);
  EXPECT_LT(es.total_j(), eb.total_j() * 1.02);
}

TEST(Integration, RawSlowerThanCompressed) {
  // Compression must pay off at all on memory-bound kernels — sanity for
  // the whole premise.
  const std::string name = "NN";
  auto e2mc = train_for(name);
  const auto rr =
      run_workload(name, std::make_shared<RawBlockCodec>(32), WorkloadScale::kTiny);
  const auto re = run_workload(name, std::make_shared<LosslessBlockCodec>(e2mc, 32),
                               WorkloadScale::kTiny);
  GpuSimConfig raw_cfg;
  GpuSim sim_raw(raw_cfg);
  const SimStats sr = sim_raw.run(rr.trace);
  GpuSimConfig e_cfg;
  e_cfg.compress_latency = E2mcCompressor::kCompressLatency;
  e_cfg.decompress_latency = E2mcCompressor::kDecompressLatency;
  GpuSim sim_e2mc(e_cfg);
  const SimStats se = sim_e2mc.run(re.trace);
  EXPECT_LT(se.dram_bursts_total(), sr.dram_bursts_total());
}

}  // namespace
}  // namespace slc

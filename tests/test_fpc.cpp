// FPC: pattern classification, zero runs, and the round-trip property.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/fpc.h"

namespace slc {
namespace {

TEST(Fpc, ClassifyPatterns) {
  EXPECT_EQ(FpcCompressor::classify(0x00000003), FpcPattern::kSignExt4);
  EXPECT_EQ(FpcCompressor::classify(0xFFFFFFFD), FpcPattern::kSignExt4);  // -3
  EXPECT_EQ(FpcCompressor::classify(0x0000007F), FpcPattern::kSignExt8);
  EXPECT_EQ(FpcCompressor::classify(0xFFFFFF80), FpcPattern::kSignExt8);
  EXPECT_EQ(FpcCompressor::classify(0x00001234), FpcPattern::kSignExt16);
  EXPECT_EQ(FpcCompressor::classify(0x12340000), FpcPattern::kHalfwordPadded);
  EXPECT_EQ(FpcCompressor::classify(0x007F0071), FpcPattern::kTwoHalfwordsSE);
  EXPECT_EQ(FpcCompressor::classify(0xABABABAB), FpcPattern::kRepeatedBytes);
  EXPECT_EQ(FpcCompressor::classify(0x12345678), FpcPattern::kUncompressed);
}

TEST(Fpc, PayloadBits) {
  EXPECT_EQ(FpcCompressor::payload_bits(FpcPattern::kZeroRun), 3u);
  EXPECT_EQ(FpcCompressor::payload_bits(FpcPattern::kSignExt4), 4u);
  EXPECT_EQ(FpcCompressor::payload_bits(FpcPattern::kUncompressed), 32u);
}

TEST(Fpc, AllZerosUsesRuns) {
  Block b;  // 32 zero words -> 4 runs of 8 -> 4 * 6 bits
  const FpcCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_TRUE(cb.is_compressed);
  EXPECT_EQ(cb.bit_size, 4u * 6u);
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Fpc, ZeroRunSplitByValue) {
  Block b;
  b.set_word32(3, 0x12345678);  // splits the zero run
  const FpcCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Fpc, SmallIntegerBlockCompressesWell) {
  Block b;
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, static_cast<uint32_t>(i % 7));
  const FpcCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_TRUE(cb.is_compressed);
  // All words fit kSignExt4 (3+4 bits) or zero runs: far below 30 bytes.
  EXPECT_LT(cb.byte_size(), 30u);
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Fpc, NegativeValuesSignExtend) {
  Block b;
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, static_cast<uint32_t>(-static_cast<int>(i)));
  const FpcCompressor c;
  EXPECT_EQ(c.decompress(c.compress(b.view()), kBlockBytes), b);
}

TEST(Fpc, RandomDataFallsBack) {
  Rng rng(33);
  Block b;
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, static_cast<uint32_t>(rng.next()));
  const FpcCompressor c;
  const auto cb = c.compress(b.view());
  // Either fell back or stayed compressed; round trip must hold regardless.
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(FpcProperty, RoundTripMixed) {
  Rng rng(44);
  const FpcCompressor c;
  for (int trial = 0; trial < 500; ++trial) {
    Block b;
    for (size_t i = 0; i < 32; ++i) {
      switch (rng.next_below(6)) {
        case 0: b.set_word32(i, 0); break;
        case 1: b.set_word32(i, static_cast<uint32_t>(rng.next_below(16)) - 8u); break;
        case 2: b.set_word32(i, static_cast<uint32_t>(rng.next_below(65536))); break;
        case 3: b.set_word32(i, static_cast<uint32_t>(rng.next_below(256)) * 0x01010101u); break;
        case 4: b.set_word32(i, static_cast<uint32_t>(rng.next_below(65536)) << 16); break;
        default: b.set_word32(i, static_cast<uint32_t>(rng.next())); break;
      }
    }
    const auto cb = c.compress(b.view());
    EXPECT_EQ(c.decompress(cb, kBlockBytes), b) << "trial " << trial;
    EXPECT_LE(cb.bit_size, kBlockBytes * 8);
  }
}

}  // namespace
}  // namespace slc

// Energy model: monotonicity and the two saving channels the paper reports
// (fewer bursts, shorter runtime).
#include <gtest/gtest.h>

#include "sim/energy.h"

namespace slc {
namespace {

SimStats base_stats() {
  SimStats s;
  s.cycles = 1'000'000;
  s.dram_read_bursts = 400'000;
  s.dram_write_bursts = 100'000;
  s.metadata_bursts = 5'000;
  s.row_hits = 300'000;
  s.row_misses = 50'000;
  s.l1_hits = 100'000;
  s.l1_misses = 500'000;
  s.l2_hits = 100'000;
  s.l2_misses = 400'000;
  s.l2_writebacks = 100'000;
  s.writes = 100'000;
  s.compressions = 100'000;
  s.decompressions = 300'000;
  return s;
}

TEST(Energy, AllComponentsPositive) {
  const GpuSimConfig cfg;
  const EnergyBreakdown e = compute_energy(base_stats(), cfg);
  EXPECT_GT(e.dram_j, 0.0);
  EXPECT_GT(e.cache_j, 0.0);
  EXPECT_GT(e.icnt_j, 0.0);
  EXPECT_GT(e.codec_j, 0.0);
  EXPECT_GT(e.static_j, 0.0);
  EXPECT_GT(e.sm_j, 0.0);
  EXPECT_NEAR(e.total_j(),
              e.dram_j + e.cache_j + e.icnt_j + e.codec_j + e.static_j + e.sm_j, 1e-12);
}

TEST(Energy, FewerBurstsLessEnergy) {
  const GpuSimConfig cfg;
  SimStats a = base_stats();
  SimStats b = base_stats();
  b.dram_read_bursts /= 2;
  EXPECT_LT(compute_energy(b, cfg).total_j(), compute_energy(a, cfg).total_j());
}

TEST(Energy, ShorterRuntimeLessStaticEnergy) {
  const GpuSimConfig cfg;
  SimStats a = base_stats();
  SimStats b = base_stats();
  b.cycles = a.cycles * 9 / 10;
  const auto ea = compute_energy(a, cfg);
  const auto eb = compute_energy(b, cfg);
  EXPECT_LT(eb.static_j, ea.static_j);
  EXPECT_LT(eb.total_j(), ea.total_j());
}

TEST(Energy, EdpCompoundsTimeAndEnergy) {
  const GpuSimConfig cfg;
  SimStats a = base_stats();
  SimStats b = base_stats();
  b.cycles = a.cycles * 9 / 10;
  b.dram_read_bursts = a.dram_read_bursts * 8 / 10;
  const double ta = a.exec_seconds(cfg);
  const double tb = b.exec_seconds(cfg);
  const double edp_a = compute_energy(a, cfg).edp(ta);
  const double edp_b = compute_energy(b, cfg).edp(tb);
  // EDP improvement must exceed the energy improvement alone.
  const double e_ratio = compute_energy(b, cfg).total_j() / compute_energy(a, cfg).total_j();
  EXPECT_LT(edp_b / edp_a, e_ratio);
}

TEST(Energy, CodecEnergyTiny) {
  // Table I: the codec is negligible against DRAM (paper: "very cheap").
  const GpuSimConfig cfg;
  const EnergyBreakdown e = compute_energy(base_stats(), cfg);
  EXPECT_LT(e.codec_j, e.dram_j / 100.0);
}

TEST(Energy, MagScalesBurstEnergy) {
  GpuSimConfig cfg16;
  cfg16.mag_bytes = 16;
  GpuSimConfig cfg64;
  cfg64.mag_bytes = 64;
  const SimStats s = base_stats();
  EXPECT_LT(compute_energy(s, cfg16).dram_j, compute_energy(s, cfg64).dram_j);
}

TEST(Energy, ExecSecondsUsesMemClock) {
  GpuSimConfig cfg;
  SimStats s;
  s.cycles = static_cast<uint64_t>(cfg.mem_clock_ghz * 1e9);
  EXPECT_NEAR(s.exec_seconds(cfg), 1.0, 1e-9);
}

}  // namespace
}  // namespace slc

// Streaming-vs-materialized equivalence: for every Table III workload the
// TraceStream pipeline (ApproxMemory publishing kernels into a bounded
// stream while GpuSim consumes them) must produce bit-identical timing
// counters to the materialize-then-replay path, at one sim worker and at
// many. This is the determinism contract the sharded simulator rests on.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/gpu_sim.h"
#include "sim/trace_stream.h"
#include "workloads/workload.h"

namespace slc {
namespace {

std::vector<KernelTrace> materialized_trace(const std::string& name) {
  auto wl = make_workload(name, WorkloadScale::kTiny);
  ApproxMemory mem;
  wl->init(mem);
  mem.commit_all();
  wl->run(mem);
  mem.flush();
  return mem.take_trace();
}

// Runs `name` with its trace flowing through a bounded TraceStream into a
// concurrently-draining GpuSim with `workers` shards.
SimStats streamed_run(const std::string& name, const GpuSimConfig& cfg) {
  GpuSim sim(cfg);
  auto stream = std::make_shared<TraceStream>(cfg.stream_chunk_budget);
  SimStats got;
  std::thread consumer([&] { got = sim.run(*stream); });

  auto wl = make_workload(name, WorkloadScale::kTiny);
  ApproxMemory mem;
  mem.set_trace_sink(stream);
  wl->init(mem);
  mem.commit_all();
  wl->run(mem);
  mem.flush();
  mem.end_trace();
  consumer.join();
  return got;
}

class StreamingSimTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StreamingSimTest, StreamingMatchesMaterializedAtOneAndManyWorkers) {
  const std::vector<KernelTrace> trace = materialized_trace(GetParam());
  ASSERT_FALSE(trace.empty());
  GpuSim ref(GpuSimConfig{});
  const SimStats want = ref.run(trace);

  for (const unsigned workers : {1u, 4u}) {
    GpuSimConfig cfg;
    cfg.sim_workers = workers;
    const SimStats got = streamed_run(GetParam(), cfg);
    EXPECT_TRUE(want.same_counters(got))
        << GetParam() << " at sim_workers=" << workers
        << ": streaming replay diverged from the materialized replay";
    EXPECT_EQ(got.kernels, trace.size());
    // Backpressure contract: the bounded stream never held more than its
    // chunk budget.
    ASSERT_GT(cfg.stream_chunk_budget, 0u);
    EXPECT_LE(got.stream_chunk_hwm, cfg.stream_chunk_budget);
  }
}

TEST_P(StreamingSimTest, WorkerCountInvariant) {
  // Two streaming runs of the same workload differing only in shard count
  // must agree on every timing/traffic counter. (Stream watermarks are
  // excluded: peak queue depth depends on producer/consumer scheduling.)
  GpuSimConfig one;
  one.sim_workers = 1;
  GpuSimConfig many;
  many.sim_workers = 4;
  const SimStats a = streamed_run(GetParam(), one);
  const SimStats b = streamed_run(GetParam(), many);
  EXPECT_TRUE(a.same_counters(b)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, StreamingSimTest,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace slc

// Deterministic RNG: reproducibility is what makes the paper tables
// regenerate bit-identically.
#include <gtest/gtest.h>

#include "common/rng.h"

namespace slc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(6);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroBound) {
  Rng r(6);
  EXPECT_EQ(r.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(8);
  bool seen[8] = {};
  for (int i = 0; i < 1000; ++i) seen[r.next_below(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, NormalMoments) {
  Rng r(9);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ChanceProbability) {
  Rng r(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

}  // namespace
}  // namespace slc

// Synthetic input generators: determinism, ranges, and the value-locality
// properties compressibility depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "workloads/data_gen.h"

namespace slc {
namespace {

TEST(DataGen, SmoothImageDeterministic) {
  const auto a = make_smooth_image(64, 64, 1);
  const auto b = make_smooth_image(64, 64, 1);
  EXPECT_EQ(a, b);
  const auto c = make_smooth_image(64, 64, 2);
  EXPECT_NE(a, c);
}

TEST(DataGen, SmoothImageRange) {
  const auto img = make_smooth_image(64, 64, 3);
  ASSERT_EQ(img.size(), 64u * 64u);
  for (float p : img) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 255.0f);
  }
}

TEST(DataGen, SmoothImageIsLocallySimilar) {
  const auto img = make_smooth_image(128, 128, 4);
  double total_step = 0;
  for (size_t i = 1; i < 128; ++i)
    total_step += std::abs(img[i] - img[i - 1]);
  // Smooth: neighbouring pixels differ by a few grey levels on average.
  EXPECT_LT(total_step / 127.0, 12.0);
}

TEST(DataGen, SpeckleImageNoisierThanSmooth) {
  const auto smooth = make_smooth_image(128, 128, 5);
  const auto speckle = make_speckle_image(128, 128, 5);
  double ds = 0, dn = 0;
  for (size_t i = 1; i < smooth.size(); ++i) {
    ds += std::abs(smooth[i] - smooth[i - 1]);
    dn += std::abs(speckle[i] - speckle[i - 1]);
  }
  EXPECT_GT(dn, ds * 2) << "speckle must add high-frequency noise";
}

TEST(DataGen, GisRecordsRanges) {
  std::vector<float> lat, lon;
  make_gis_records(10000, 6, &lat, &lon);
  ASSERT_EQ(lat.size(), 10000u);
  for (size_t i = 0; i < lat.size(); ++i) {
    EXPECT_GE(lat[i], 0.0f);
    EXPECT_LE(lat[i], 90.0f);
    EXPECT_GE(lon[i], 0.0f);
    EXPECT_LE(lon[i], 180.0f);
  }
}

TEST(DataGen, OptionParamsSdkRanges) {
  std::vector<float> s, x, t;
  make_option_params(10000, 7, &s, &x, &t);
  for (size_t i = 0; i < s.size(); ++i) {
    // Grid quantization can round onto the upper bound, hence <=.
    EXPECT_GE(s[i], 5.0f);
    EXPECT_LE(s[i], 30.0f);
    EXPECT_GE(x[i], 1.0f);
    EXPECT_LE(x[i], 100.0f);
    EXPECT_GE(t[i], 0.25f);
    EXPECT_LE(t[i], 10.0f);
  }
}

TEST(DataGen, OptionParamsOnMarketGrids) {
  // Prices tick in cents, strikes on a 0.50 grid, expiries quarterly.
  std::vector<float> s, x, t;
  make_option_params(1000, 7, &s, &x, &t);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(std::round(s[i] * 100.0f) / 100.0f, s[i], 1e-5f);
    EXPECT_NEAR(std::round(x[i] * 2.0f) / 2.0f, x[i], 1e-5f);
    EXPECT_NEAR(std::round(t[i] * 4.0f) / 4.0f, t[i], 1e-5f);
  }
}

TEST(DataGen, TrianglePairsLocal) {
  std::vector<float> a, b;
  make_triangle_pairs(1000, 8, &a, &b);
  ASSERT_EQ(a.size(), 9000u);
  ASSERT_EQ(b.size(), 9000u);
  // Vertices of a pair stay within the shared cell (max spread ~2 units).
  for (size_t i = 0; i < 1000; ++i) {
    for (int c = 0; c < 3; ++c) {
      float mn = 1e9f, mx = -1e9f;
      for (int v = 0; v < 3; ++v) {
        const float va = a[i * 9 + static_cast<size_t>(v) * 3 + static_cast<size_t>(c)];
        const float vb = b[i * 9 + static_cast<size_t>(v) * 3 + static_cast<size_t>(c)];
        mn = std::min({mn, va, vb});
        mx = std::max({mx, va, vb});
      }
      EXPECT_LE(mx - mn, 2.01f);
    }
  }
}

TEST(DataGen, Deterministic) {
  std::vector<float> a1, b1, a2, b2;
  make_triangle_pairs(100, 9, &a1, &b1);
  make_triangle_pairs(100, 9, &a2, &b2);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
}

}  // namespace
}  // namespace slc

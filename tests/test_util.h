// Shared fixtures for the registry/engine tests: deterministic
// value-similar test data and default codec options.
#pragma once

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "compress/codec_registry.h"

namespace slc::test {

// Quantized value-similar floats (grid 0.25): the data shape real benchmark
// inputs have, keeping both float halfwords inside the code table.
inline std::vector<uint8_t> quantized_walk(uint64_t seed, size_t blocks) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 10.0;
  for (size_t i = 0; i < blocks * kBlockBytes / 4; ++i) {
    walk += rng.uniform(-1.0, 1.0);
    const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
    uint32_t bits;
    __builtin_memcpy(&bits, &v, 4);
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return data;
}

inline CodecOptions test_options(std::span<const uint8_t> training) {
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.threshold_bytes = 16;
  opts.training_data = training;
  return opts;
}

}  // namespace slc::test

// Shared fixtures for the registry/engine tests: deterministic
// value-similar test data, the fingerprint-cache fuzz corpus generator, and
// default codec options.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "common/block.h"
#include "common/rng.h"
#include "compress/codec_registry.h"

namespace slc::test {

// Quantized value-similar floats (grid 0.25): the data shape real benchmark
// inputs have, keeping both float halfwords inside the code table.
inline std::vector<uint8_t> quantized_walk(uint64_t seed, size_t blocks) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 10.0;
  for (size_t i = 0; i < blocks * kBlockBytes / 4; ++i) {
    walk += rng.uniform(-1.0, 1.0);
    const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
    uint32_t bits;
    __builtin_memcpy(&bits, &v, 4);
    for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
  }
  return data;
}

// --- fuzz corpus ------------------------------------------------------------

/// Shape of one dedup_corpus() stream. Per block the generator draws, in
/// order: duplicate (verbatim repeat of an earlier block), near-duplicate
/// (an earlier block with exactly one byte changed), zero page; whatever
/// remains becomes fresh content.
struct CorpusConfig {
  size_t blocks = 256;
  double dup_fraction = 0.0;   ///< verbatim repeats of earlier blocks
  double flip_fraction = 0.0;  ///< earlier blocks with exactly one byte changed
  double zero_fraction = 0.0;  ///< all-zero pages (cleared memory)
  uint64_t seed = 1;
};

/// Seeded block stream with controlled repetition — the fingerprint-cache
/// differential suite's input. Fresh blocks alternate raw random bytes and
/// quantized value-similar floats (the two decision-path-relevant shapes);
/// duplicates exercise the hit path, one-byte near-duplicates pin that
/// adjacent contents never alias a fingerprint, zero pages model the
/// most-repeated real-world block.
inline std::vector<Block> dedup_corpus(const CorpusConfig& cfg) {
  Rng rng(cfg.seed);
  std::vector<Block> out;
  out.reserve(cfg.blocks);
  double walk = 10.0;
  for (size_t i = 0; i < cfg.blocks; ++i) {
    if (!out.empty() && rng.chance(cfg.dup_fraction)) {
      out.push_back(out[rng.next_below(out.size())]);
      continue;
    }
    if (!out.empty() && rng.chance(cfg.flip_fraction)) {
      Block b = out[rng.next_below(out.size())];
      auto bytes = b.mutable_bytes();
      bytes[rng.next_below(bytes.size())] ^= static_cast<uint8_t>(1 + rng.next_below(255));
      out.push_back(std::move(b));
      continue;
    }
    if (rng.chance(cfg.zero_fraction)) {
      out.emplace_back();
      continue;
    }
    Block b;
    if (i % 2 == 0) {
      for (uint8_t& byte : b.mutable_bytes()) byte = static_cast<uint8_t>(rng.next());
    } else {
      for (size_t w = 0; w < kBlockBytes / 4; ++w) {
        walk += rng.uniform(-1.0, 1.0);
        const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
        uint32_t bits;
        __builtin_memcpy(&bits, &v, 4);
        b.set_word32(w, bits);
      }
    }
    out.push_back(std::move(b));
  }
  return out;
}

/// Flattens a block stream into one byte buffer (region images, server
/// submits).
inline std::vector<uint8_t> corpus_bytes(std::span<const Block> blocks) {
  std::vector<uint8_t> out;
  out.reserve(blocks.size() * kBlockBytes);
  for (const Block& b : blocks) out.insert(out.end(), b.bytes().begin(), b.bytes().end());
  return out;
}

inline CodecOptions test_options(std::span<const uint8_t> training) {
  CodecOptions opts;
  opts.mag_bytes = 32;
  opts.threshold_bytes = 16;
  opts.training_data = training;
  return opts;
}

}  // namespace slc::test

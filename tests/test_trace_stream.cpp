// TraceStream semantics: FIFO delivery, close/cancel lifecycle, backpressure
// blocking, and the footprint watermarks the sim exports. Cross-thread
// races are exercised separately in test_concurrency_stress.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/trace_stream.h"

namespace slc {
namespace {

KernelTrace named_kernel(const std::string& name, size_t accesses = 1) {
  KernelTrace k;
  k.name = name;
  k.compute_per_access = 1.0;
  for (size_t i = 0; i < accesses; ++i) {
    TraceAccess a;
    a.addr = i * kBlockBytes;
    a.bursts = 1;
    k.accesses.push_back(a);
  }
  return k;
}

TEST(TraceStream, DeliversFifo) {
  TraceStream s(0);
  ASSERT_TRUE(s.push(named_kernel("a")));
  ASSERT_TRUE(s.push(named_kernel("b")));
  ASSERT_TRUE(s.push(named_kernel("c")));
  s.close();
  EXPECT_EQ(s.pop()->name, "a");
  EXPECT_EQ(s.pop()->name, "b");
  EXPECT_EQ(s.pop()->name, "c");
  EXPECT_EQ(s.pop(), nullptr) << "closed and drained";
  EXPECT_EQ(s.pop(), nullptr) << "null terminator is sticky";
}

TEST(TraceStream, PushAfterCloseThrows) {
  TraceStream s(0);
  s.close();
  EXPECT_THROW(s.push(named_kernel("late")), std::logic_error);
}

TEST(TraceStream, CancelDiscardsQueuedChunksAndRejectsPushes) {
  TraceStream s(0);
  ASSERT_TRUE(s.push(named_kernel("doomed")));
  s.cancel();
  EXPECT_EQ(s.pop(), nullptr);
  EXPECT_FALSE(s.push(named_kernel("rejected")));
  EXPECT_EQ(s.queued(), 0u);
  EXPECT_TRUE(s.cancelled());
}

TEST(TraceStream, BudgetBlocksPushUntilPop) {
  TraceStream s(1);
  ASSERT_TRUE(s.push(named_kernel("first")));
  std::atomic<bool> second_landed{false};
  std::thread producer([&] {
    ASSERT_TRUE(s.push(named_kernel("second")));  // must block: queue full
    second_landed = true;
  });
  // The producer cannot complete until we drain a slot. Give it a moment to
  // park on the condvar, then assert it is still parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_landed.load()) << "push must wait at the budget";
  EXPECT_EQ(s.pop()->name, "first");
  producer.join();
  EXPECT_TRUE(second_landed.load());
  EXPECT_EQ(s.pop()->name, "second");
  EXPECT_EQ(s.chunk_high_water(), 1u) << "queue never exceeded the budget";
}

TEST(TraceStream, WatermarksTrackPeakFootprint) {
  TraceStream s(0);
  ASSERT_TRUE(s.push(named_kernel("a", 10)));
  ASSERT_TRUE(s.push(named_kernel("b", 30)));
  EXPECT_EQ(s.chunk_high_water(), 2u);
  EXPECT_EQ(s.access_high_water(), 40u);
  s.pop();
  // Draining never lowers a high-water mark.
  ASSERT_TRUE(s.push(named_kernel("c", 1)));
  EXPECT_EQ(s.chunk_high_water(), 2u);
  EXPECT_EQ(s.access_high_water(), 40u);
  s.close();
}

TEST(TraceStream, SharedPtrPushBorrowsWithoutCopy) {
  // The materialized adapter aliases caller-owned kernels; the chunk the
  // consumer sees must be the same object, not a copy.
  const KernelTrace owned = named_kernel("borrowed", 5);
  TraceStream s(0);
  ASSERT_TRUE(s.push(std::shared_ptr<const KernelTrace>(std::shared_ptr<const void>(), &owned)));
  s.close();
  EXPECT_EQ(s.pop().get(), &owned);
}

}  // namespace
}  // namespace slc

// BDI: per-encoding behaviour plus the lossless round-trip property.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/bdi.h"

namespace slc {
namespace {

TEST(Bdi, ZeroBlock) {
  Block b;
  EXPECT_EQ(BdiCompressor::best_encoding(b.view()), BdiEncoding::kZeros);
  const BdiCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_TRUE(cb.is_compressed);
  EXPECT_EQ(cb.bit_size, 4u);  // tag only
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Bdi, RepeatedValue) {
  Block b;
  for (size_t i = 0; i < 16; ++i) b.set_word64(i, 0x1122334455667788ull);
  EXPECT_EQ(BdiCompressor::best_encoding(b.view()), BdiEncoding::kRepeat64);
  const BdiCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_EQ(cb.bit_size, 68u);
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Bdi, Base8Delta1) {
  Block b;
  for (size_t i = 0; i < 16; ++i) b.set_word64(i, 0x1000000000ull + i);
  EXPECT_EQ(BdiCompressor::best_encoding(b.view()), BdiEncoding::kBase8Delta1);
  const BdiCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_EQ(cb.bit_size, BdiCompressor::encoding_bits(BdiEncoding::kBase8Delta1, kBlockBytes));
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Bdi, Base8Delta1WithZeroImmediates) {
  // Mix of small values (zero base) and big values (explicit base): the
  // dual-base scheme must still encode with 1-byte deltas.
  Block b;
  for (size_t i = 0; i < 16; ++i)
    b.set_word64(i, (i % 2) ? 0x2000000000ull + i : i);  // small evens
  EXPECT_EQ(BdiCompressor::best_encoding(b.view()), BdiEncoding::kBase8Delta1);
  const BdiCompressor c;
  EXPECT_EQ(c.decompress(c.compress(b.view()), kBlockBytes), b);
}

TEST(Bdi, Base4Delta1) {
  Block b;
  // 32-bit words near a large base: as 64-bit pairs the deltas span the
  // upper word, so only the 4-byte-base encoding fits 1-byte deltas.
  for (size_t i = 0; i < 32; ++i) b.set_word32(i, 0x40000000u + static_cast<uint32_t>(i * 3));
  const auto enc = BdiCompressor::best_encoding(b.view());
  EXPECT_EQ(enc, BdiEncoding::kBase4Delta1);
  const BdiCompressor c;
  EXPECT_EQ(c.decompress(c.compress(b.view()), kBlockBytes), b);
}

TEST(Bdi, NegativeDeltas) {
  Block b;
  for (size_t i = 0; i < 16; ++i)
    b.set_word64(i, 0x5000000000ull - i * 7);
  const BdiCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_TRUE(cb.is_compressed);
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Bdi, IncompressibleFallsBack) {
  Rng rng(11);
  Block b;
  for (size_t i = 0; i < 16; ++i) b.set_word64(i, rng.next());
  const BdiCompressor c;
  const auto cb = c.compress(b.view());
  EXPECT_FALSE(cb.is_compressed);
  EXPECT_EQ(cb.bit_size, kBlockBytes * 8);
  EXPECT_EQ(c.decompress(cb, kBlockBytes), b);
}

TEST(Bdi, EncodingBitsTable) {
  EXPECT_EQ(BdiCompressor::encoding_bits(BdiEncoding::kZeros, 128), 4u);
  EXPECT_EQ(BdiCompressor::encoding_bits(BdiEncoding::kRepeat64, 128), 68u);
  // B8D1: 4 + 64 + 16 mask + 16*8 deltas = 212.
  EXPECT_EQ(BdiCompressor::encoding_bits(BdiEncoding::kBase8Delta1, 128), 212u);
  // B4D1: 4 + 32 + 32 + 32*8 = 324.
  EXPECT_EQ(BdiCompressor::encoding_bits(BdiEncoding::kBase4Delta1, 128), 324u);
  EXPECT_EQ(BdiCompressor::encoding_bits(BdiEncoding::kUncompressed, 128), 1024u);
}

TEST(Bdi, PicksSmallestValidEncoding) {
  // Values within +-127 of a base: B8D1 (212 bits) must win over B8D2.
  Block b;
  for (size_t i = 0; i < 16; ++i) b.set_word64(i, 0x7777777700ull + i * 5);
  EXPECT_EQ(BdiCompressor::best_encoding(b.view()), BdiEncoding::kBase8Delta1);
}

// Property: round trip is the identity for random structured blocks.
TEST(BdiProperty, RoundTripStructured) {
  Rng rng(22);
  const BdiCompressor c;
  for (int trial = 0; trial < 500; ++trial) {
    Block b;
    const uint64_t base = rng.next();
    const int spread = 1 << rng.next_below(20);
    for (size_t i = 0; i < 16; ++i) {
      b.set_word64(i, base + rng.next_below(static_cast<uint64_t>(spread)));
    }
    const auto cb = c.compress(b.view());
    EXPECT_EQ(c.decompress(cb, kBlockBytes), b) << "trial " << trial;
    EXPECT_LE(cb.bit_size, kBlockBytes * 8);
  }
}

}  // namespace
}  // namespace slc

// Block geometry and MAG rounding helpers.
#include <gtest/gtest.h>

#include "common/block.h"

namespace slc {
namespace {

TEST(Block, DefaultIsZeroed128) {
  Block b;
  EXPECT_EQ(b.size(), kBlockBytes);
  for (uint8_t byte : b.bytes()) EXPECT_EQ(byte, 0);
}

TEST(Block, SymbolLittleEndian) {
  Block b;
  b.mutable_bytes()[0] = 0x34;
  b.mutable_bytes()[1] = 0x12;
  EXPECT_EQ(b.symbol(0), 0x1234);
}

TEST(Block, SetSymbolRoundTrip) {
  Block b;
  for (size_t i = 0; i < kSymbolsPerBlock; ++i)
    b.set_symbol(i, static_cast<uint16_t>(i * 257));
  for (size_t i = 0; i < kSymbolsPerBlock; ++i)
    EXPECT_EQ(b.symbol(i), static_cast<uint16_t>(i * 257));
}

TEST(Block, Word32AndSymbolsAgree) {
  Block b;
  b.set_word32(0, 0xAABBCCDD);
  EXPECT_EQ(b.symbol(0), 0xCCDD);  // low half first (little endian)
  EXPECT_EQ(b.symbol(1), 0xAABB);
}

TEST(Block, Word64RoundTrip) {
  Block b;
  b.set_word64(3, 0x0123456789ABCDEFull);
  EXPECT_EQ(b.view().word64(3), 0x0123456789ABCDEFull);
}

TEST(Geometry, SymbolsPerBlock) {
  EXPECT_EQ(kSymbolsPerBlock, 64u);
  EXPECT_EQ(kBlockBytes, 128u);
  EXPECT_EQ(kSymbolBits, 16u);
}

TEST(MagRounding, RoundUpToMagBits) {
  EXPECT_EQ(round_up_to_mag_bits(0, 32), 0u);
  EXPECT_EQ(round_up_to_mag_bits(1, 32), 256u);
  EXPECT_EQ(round_up_to_mag_bits(256, 32), 256u);
  EXPECT_EQ(round_up_to_mag_bits(257, 32), 512u);
  EXPECT_EQ(round_up_to_mag_bits(513, 32), 768u);
}

TEST(MagRounding, BurstsForBits) {
  // The paper's example: a 36 B block fetches 64 B (2 bursts) at MAG 32 B.
  EXPECT_EQ(bursts_for_bits(36 * 8, 32), 2u);
  EXPECT_EQ(bursts_for_bits(0, 32), 1u);    // minimum one burst
  EXPECT_EQ(bursts_for_bits(32 * 8, 32), 1u);
  EXPECT_EQ(bursts_for_bits(33 * 8, 32), 2u);
  EXPECT_EQ(bursts_for_bits(1024, 32), 4u);
  EXPECT_EQ(bursts_for_bits(2000, 32), 4u);  // capped at block size
}

TEST(MagRounding, BurstsAtOtherMags) {
  EXPECT_EQ(bursts_for_bits(100 * 8, 16), 7u);
  EXPECT_EQ(bursts_for_bits(100 * 8, 64), 2u);
  EXPECT_EQ(bursts_for_bits(129 * 8, 64), 2u);  // capped
}

TEST(MagRounding, BytesAboveMag) {
  EXPECT_EQ(bytes_above_mag(36, 32), 4u);
  EXPECT_EQ(bytes_above_mag(64, 32), 0u);
  EXPECT_EQ(bytes_above_mag(95, 32), 31u);
  EXPECT_EQ(bytes_above_mag(5, 16), 5u);
}

TEST(ToBlocks, ExactMultiple) {
  std::vector<uint8_t> data(256, 0xAB);
  const auto blocks = to_blocks(data);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].size(), kBlockBytes);
}

TEST(ToBlocks, PadsTail) {
  std::vector<uint8_t> data(130, 0xCD);
  const auto blocks = to_blocks(data);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[1].bytes()[0], 0xCD);
  EXPECT_EQ(blocks[1].bytes()[1], 0xCD);
  EXPECT_EQ(blocks[1].bytes()[2], 0x00);
}

TEST(ToBlocks, NoPadWhenDisabled) {
  std::vector<uint8_t> data(130, 0xCD);
  const auto blocks = to_blocks(data, kBlockBytes, /*pad_tail=*/false);
  ASSERT_EQ(blocks.size(), 1u);
}

}  // namespace
}  // namespace slc

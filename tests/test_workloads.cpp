// The nine Table III workloads: construction, #AR counts, golden-run
// determinism, exactness under lossless codecs, and error under SLC.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workloads/workload.h"

namespace slc {
namespace {

// Table III #AR column.
struct ArExpectation {
  const char* name;
  size_t ar;
};
constexpr ArExpectation kAr[] = {{"JM", 6},  {"BS", 4},    {"DCT", 2},
                                 {"FWT", 2}, {"TP", 2},    {"BP", 6},
                                 {"NN", 2},  {"SRAD1", 8}, {"SRAD2", 6}};

TEST(Workloads, NamesCoverTableIII) {
  const auto names = workload_names();
  ASSERT_EQ(names.size(), 9u);
  for (const auto& e : kAr)
    EXPECT_NE(std::find(names.begin(), names.end(), e.name), names.end());
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(make_workload("NOPE"), std::invalid_argument);
}

class WorkloadParamTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadParamTest, ApproxRegionCountMatchesTableIII) {
  auto wl = make_workload(GetParam(), WorkloadScale::kTiny);
  ApproxMemory mem;
  wl->init(mem);
  for (const auto& e : kAr) {
    if (e.name == GetParam()) {
      EXPECT_EQ(mem.safe_region_count(), e.ar);
    }
  }
}

TEST_P(WorkloadParamTest, GoldenRunDeterministic) {
  auto run_once = [&] {
    auto wl = make_workload(GetParam(), WorkloadScale::kTiny);
    ApproxMemory mem;
    wl->init(mem);
    mem.commit_all();
    wl->run(mem);
    return wl->output(mem);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(WorkloadParamTest, GoldenOutputsFinite) {
  auto wl = make_workload(GetParam(), WorkloadScale::kTiny);
  ApproxMemory mem;
  wl->init(mem);
  mem.commit_all();
  wl->run(mem);
  for (float v : wl->output(mem)) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(WorkloadParamTest, RawCodecGivesZeroError) {
  auto codec = std::make_shared<RawBlockCodec>(32);
  const WorkloadRunResult r = run_workload(GetParam(), codec, WorkloadScale::kTiny);
  EXPECT_EQ(r.error_pct, 0.0) << "uncompressed memory must be exact";
  EXPECT_FALSE(r.trace.empty());
}

TEST_P(WorkloadParamTest, TraceAccessesHaveValidBursts) {
  auto codec = std::make_shared<RawBlockCodec>(32);
  const WorkloadRunResult r = run_workload(GetParam(), codec, WorkloadScale::kTiny);
  for (const KernelTrace& k : r.trace) {
    EXPECT_GT(k.compute_per_access, 0.0);
    for (const TraceAccess& a : k.accesses) {
      EXPECT_GE(a.bursts, 1u);
      EXPECT_LE(a.bursts, 4u);
      EXPECT_EQ(a.addr % kBlockBytes, 0u);
    }
  }
}

TEST_P(WorkloadParamTest, MemoryImageNonEmptyAndDeterministic) {
  const auto a = workload_memory_image(GetParam(), WorkloadScale::kTiny);
  const auto b = workload_memory_image(GetParam(), WorkloadScale::kTiny);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size() % kBlockBytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WorkloadParamTest,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

TEST(WorkloadMetrics, MatchTableIII) {
  EXPECT_EQ(make_workload("JM", WorkloadScale::kTiny)->metric(), ErrorMetric::kMissRate);
  EXPECT_EQ(make_workload("BS", WorkloadScale::kTiny)->metric(), ErrorMetric::kMre);
  EXPECT_EQ(make_workload("DCT", WorkloadScale::kTiny)->metric(), ErrorMetric::kImageDiff);
  EXPECT_EQ(make_workload("FWT", WorkloadScale::kTiny)->metric(), ErrorMetric::kNrmse);
  EXPECT_EQ(make_workload("TP", WorkloadScale::kTiny)->metric(), ErrorMetric::kNrmse);
  EXPECT_EQ(make_workload("BP", WorkloadScale::kTiny)->metric(), ErrorMetric::kMre);
  EXPECT_EQ(make_workload("NN", WorkloadScale::kTiny)->metric(), ErrorMetric::kMre);
  EXPECT_EQ(make_workload("SRAD1", WorkloadScale::kTiny)->metric(), ErrorMetric::kImageDiff);
  EXPECT_EQ(make_workload("SRAD2", WorkloadScale::kTiny)->metric(), ErrorMetric::kImageDiff);
}

TEST(WorkloadTranspose, GoldenIsExactTranspose) {
  auto wl = make_workload("TP", WorkloadScale::kTiny);
  ApproxMemory mem;
  wl->init(mem);
  mem.commit_all();
  wl->run(mem);
  const auto in = mem.span<const float>(0);
  const auto out = wl->output(mem);
  const size_t d = 64;  // tiny scale dimension
  for (size_t y = 0; y < d; y += 7)
    for (size_t x = 0; x < d; x += 5) EXPECT_EQ(out[x * d + y], in[y * d + x]);
}

TEST(WorkloadJm, ProducesBothOutcomes) {
  auto wl = make_workload("JM", WorkloadScale::kTiny);
  ApproxMemory mem;
  wl->init(mem);
  mem.commit_all();
  wl->run(mem);
  const auto out = wl->bool_output(mem);
  const size_t hits = static_cast<size_t>(std::count(out.begin(), out.end(), 1));
  EXPECT_GT(hits, out.size() / 20) << "some pairs must intersect";
  EXPECT_LT(hits, out.size() * 19 / 20) << "some pairs must miss";
}

}  // namespace
}  // namespace slc

// SLC codec: the Fig. 4 mode decision, truncation semantics, prediction,
// and the MAG-multiple guarantee — the paper's core invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/slc_codec.h"

namespace slc {
namespace {

// Training data of value-similar floats on a 0.25 grid — quantized values
// (integer pixels, fixed-precision records) are what GPU benchmarks move,
// and they keep both float halfwords inside the code table so compressed
// sizes land in the SLC window.
std::vector<uint8_t> training_data(uint64_t seed, size_t blocks = 1024) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  double walk = 50.0;
  for (size_t b = 0; b < blocks; ++b) {
    for (size_t i = 0; i < kBlockBytes / 4; ++i) {
      walk += rng.uniform(-1.0, 1.0);
      if (rng.chance(0.01)) walk = rng.uniform(1.0, 100.0);
      const float v = static_cast<float>(std::round(walk * 4.0) / 4.0);
      uint32_t bits;
      __builtin_memcpy(&bits, &v, 4);
      for (int k = 0; k < 4; ++k) data.push_back(static_cast<uint8_t>(bits >> (8 * k)));
    }
  }
  return data;
}

class SlcCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = training_data(2024);
    E2mcConfig cfg;
    cfg.sample_fraction = 0.25;
    e2mc_ = E2mcCompressor::train(data_, cfg);
  }

  SlcCodec make(SlcVariant v, size_t threshold = 16, size_t mag = 32) const {
    SlcConfig cfg;
    cfg.mag_bytes = mag;
    cfg.threshold_bytes = threshold;
    cfg.variant = v;
    return SlcCodec(e2mc_, cfg);
  }

  Block block(size_t i) const {
    return Block(std::span<const uint8_t>(data_).subspan(i * kBlockBytes, kBlockBytes));
  }

  std::vector<uint8_t> data_;
  std::shared_ptr<E2mcCompressor> e2mc_;
};

TEST_F(SlcCodecTest, HeaderIs32Bits) {
  const SlcCodec codec = make(SlcVariant::kOpt);
  EXPECT_EQ(codec.header_bits(kBlockBytes), 32u);  // Fig. 6
}

TEST_F(SlcCodecTest, LatencyConstants) {
  // Sec. IV-A: 46 + 12 + 2 = 60 compress; decompress same as E2MC.
  EXPECT_EQ(SlcCodec::kCompressLatency, 60u);
  EXPECT_EQ(SlcCodec::kDecompressLatency, 20u);
}

TEST_F(SlcCodecTest, LossyBlocksFitBudget) {
  const SlcCodec codec = make(SlcVariant::kOpt);
  size_t lossy_count = 0;
  for (size_t i = 0; i < 512; ++i) {
    const Block b = block(i);
    const auto cb = codec.compress(b.view());
    if (cb.info.lossy) {
      ++lossy_count;
      // The paper's core promise: a lossy block occupies the bit budget —
      // the multiple of MAG below the lossless size (floored at one MAG).
      const size_t budget =
          std::max(cb.info.lossless_bits / (32 * 8) * (32 * 8), size_t{32 * 8});
      EXPECT_LE(cb.info.final_bits, budget) << "block " << i;
      EXPECT_LE(cb.info.bursts, budget / (32 * 8));
      // Fewer bursts than lossless would have needed.
      EXPECT_LT(cb.info.bursts, bursts_for_bits(cb.info.lossless_bits, 32));
    }
  }
  EXPECT_GT(lossy_count, 0u) << "test data must exercise the lossy path";
}

TEST_F(SlcCodecTest, ThresholdZeroMeansAlwaysLossless) {
  const SlcCodec codec = make(SlcVariant::kOpt, /*threshold=*/0);
  for (size_t i = 0; i < 256; ++i) {
    const auto cb = codec.compress(block(i).view());
    EXPECT_FALSE(cb.info.lossy);
  }
}

TEST_F(SlcCodecTest, LosslessRoundTripIsExact) {
  const SlcCodec codec = make(SlcVariant::kOpt, /*threshold=*/0);
  for (size_t i = 0; i < 256; ++i) {
    const Block b = block(i);
    EXPECT_EQ(codec.roundtrip(b.view()), b) << "block " << i;
  }
}

TEST_F(SlcCodecTest, LossyOnlyChangesTruncatedSymbols) {
  const SlcCodec codec = make(SlcVariant::kPred);
  for (size_t i = 0; i < 512; ++i) {
    const Block b = block(i);
    const auto cb = codec.compress(b.view());
    if (!cb.info.lossy) continue;
    const Block out = codec.decompress(cb, kBlockBytes);
    // Decode the header to learn the truncated range.
    BitReader r(cb.data.payload);
    const SlcHeader h = SlcHeader::read(r, kBlockBytes, 4, 64);
    ASSERT_TRUE(h.lossy);
    for (size_t s = 0; s < kSymbolsPerBlock; ++s) {
      const bool truncated =
          s >= h.start_symbol && s < size_t{h.start_symbol} + h.approx_count;
      if (!truncated) {
        EXPECT_EQ(out.symbol(s), b.symbol(s)) << "intact symbol " << s << " changed";
      }
    }
  }
}

TEST_F(SlcCodecTest, SimpFillsZeros) {
  const SlcCodec codec = make(SlcVariant::kSimp);
  for (size_t i = 0; i < 512; ++i) {
    const Block b = block(i);
    const auto cb = codec.compress(b.view());
    if (!cb.info.lossy) continue;
    const Block out = codec.decompress(cb, kBlockBytes);
    BitReader r(cb.data.payload);
    const SlcHeader h = SlcHeader::read(r, kBlockBytes, 4, 64);
    for (size_t s = h.start_symbol; s < size_t{h.start_symbol} + h.approx_count; ++s)
      EXPECT_EQ(out.symbol(s), 0u);
    return;  // one lossy block suffices
  }
}

TEST_F(SlcCodecTest, PredFillsParityMatchedNeighbour) {
  // Value-similarity prediction must respect the halfword lane: a truncated
  // low half is predicted by the nearest intact low half, a high half by the
  // nearest intact high half (see Sec. III-E; a single cross-lane predictor
  // would fabricate NaN/Inf floats).
  const SlcCodec codec = make(SlcVariant::kPred);
  size_t checked = 0;
  for (size_t i = 0; i < 512 && checked < 10; ++i) {
    const Block b = block(i);
    const auto cb = codec.compress(b.view());
    if (!cb.info.lossy) continue;
    ++checked;
    const Block out = codec.decompress(cb, kBlockBytes);
    BitReader r(cb.data.payload);
    const SlcHeader h = SlcHeader::read(r, kBlockBytes, 4, 64);
    uint16_t expected[2];
    for (size_t parity = 0; parity < 2; ++parity) {
      size_t idx = kSymbolsPerBlock;
      for (size_t s = h.start_symbol; s-- > 0;) {
        if (s % 2 == parity) {
          idx = s;
          break;
        }
      }
      if (idx == kSymbolsPerBlock) {
        for (size_t s = h.start_symbol + h.approx_count; s < kSymbolsPerBlock; ++s) {
          if (s % 2 == parity) {
            idx = s;
            break;
          }
        }
      }
      expected[parity] = out.symbol(idx);
    }
    for (size_t s = h.start_symbol; s < size_t{h.start_symbol} + h.approx_count; ++s)
      EXPECT_EQ(out.symbol(s), expected[s % 2]);
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(SlcCodecTest, UncompressibleStoredRaw) {
  Rng rng(5);
  Block b;
  for (size_t i = 0; i < 16; ++i) b.set_word64(i, rng.next());
  const SlcCodec codec = make(SlcVariant::kOpt);
  const auto cb = codec.compress(b.view());
  EXPECT_TRUE(cb.info.stored_uncompressed);
  EXPECT_EQ(cb.info.bursts, 4u);
  EXPECT_EQ(codec.decompress(cb, kBlockBytes), b);
}

TEST_F(SlcCodecTest, HighlyCompressibleUsesOneBurst) {
  Block b;  // zeros -> far below 32 B -> lossless, one burst (Sec. III-B)
  const SlcCodec codec = make(SlcVariant::kOpt);
  const auto cb = codec.compress(b.view());
  EXPECT_FALSE(cb.info.lossy);
  EXPECT_EQ(cb.info.bursts, 1u);
  EXPECT_EQ(codec.decompress(cb, kBlockBytes), b);
}

TEST_F(SlcCodecTest, BurstsNeverExceedLossless) {
  const SlcCodec codec = make(SlcVariant::kOpt);
  for (size_t i = 0; i < 512; ++i) {
    const auto cb = codec.compress(block(i).view());
    const size_t lossless_bursts = bursts_for_bits(cb.info.lossless_bits, 32);
    EXPECT_LE(cb.info.bursts, lossless_bursts);
  }
}

TEST_F(SlcCodecTest, TruncatedBitsCoverExtraBits) {
  const SlcCodec codec = make(SlcVariant::kOpt);
  for (size_t i = 0; i < 512; ++i) {
    const auto cb = codec.compress(block(i).view());
    if (cb.info.lossy) {
      EXPECT_GE(cb.info.truncated_bits, cb.info.extra_bits);
      EXPECT_LE(cb.info.truncated_symbols, kMaxApproxSymbols);
    }
  }
}

TEST_F(SlcCodecTest, VariantNames) {
  EXPECT_STREQ(to_string(SlcVariant::kSimp), "TSLC-SIMP");
  EXPECT_STREQ(to_string(SlcVariant::kPred), "TSLC-PRED");
  EXPECT_STREQ(to_string(SlcVariant::kOpt), "TSLC-OPT");
}

// Parameterized sweep: the MAG-multiple invariant holds for every
// (variant, mag, threshold) combination.
using SweepParam = std::tuple<int, size_t, size_t>;
class SlcSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SlcSweepTest, LossyAlwaysMagMultiple) {
  const auto [variant, mag, threshold] = GetParam();
  const auto data = training_data(777);
  E2mcConfig ecfg;
  ecfg.sample_fraction = 0.25;
  auto e2mc = E2mcCompressor::train(data, ecfg);
  SlcConfig cfg;
  cfg.mag_bytes = mag;
  cfg.threshold_bytes = threshold;
  cfg.variant = static_cast<SlcVariant>(variant);
  const SlcCodec codec(e2mc, cfg);

  for (size_t i = 0; i < 256; ++i) {
    const Block b(std::span<const uint8_t>(data).subspan(i * kBlockBytes, kBlockBytes));
    const auto cb = codec.compress(b.view());
    if (cb.info.lossy) {
      const size_t budget =
          std::max(cb.info.lossless_bits / (mag * 8) * (mag * 8), mag * 8);
      EXPECT_LE(cb.info.final_bits, budget);
      EXPECT_LE(cb.info.bursts, budget / (mag * 8));
      EXPECT_LE(cb.info.extra_bits, threshold * 8);
      EXPECT_LT(cb.info.bursts, bursts_for_bits(cb.info.lossless_bits, mag));
    }
    // Decompression must always succeed and leave intact symbols intact.
    const Block out = codec.decompress(cb, kBlockBytes);
    if (!cb.info.lossy) {
      EXPECT_EQ(out, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsMagsThresholds, SlcSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2),          // SIMP, PRED, OPT
                       ::testing::Values<size_t>(16, 32, 64),  // MAG
                       ::testing::Values<size_t>(8, 16, 32))); // threshold

}  // namespace
}  // namespace slc

// Statistics helpers: geometric means drive every paper GM bar.
#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace slc {
namespace {

TEST(RunningStats, Basic) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValueVarianceZero) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(GeometricMean, KnownValues) {
  const double xs[] = {1.0, 4.0};
  EXPECT_NEAR(geometric_mean(xs), 2.0, 1e-12);
  const double ys[] = {2.0, 2.0, 2.0};
  EXPECT_NEAR(geometric_mean(ys), 2.0, 1e-12);
}

TEST(GeometricMean, EmptyIsZero) { EXPECT_EQ(geometric_mean({}), 0.0); }

TEST(GeometricMean, FlooredAtZero) {
  const double xs[] = {0.0, 1.0};
  // With the default floor the zero does not collapse the GM to 0.
  EXPECT_GT(geometric_mean(xs, 1e-6), 0.0);
  EXPECT_NEAR(geometric_mean(xs, 1e-6), std::sqrt(1e-6), 1e-9);
}

TEST(GeometricMean, LessThanArithmeticMean) {
  const double xs[] = {1.0, 2.0, 3.0, 10.0};
  EXPECT_LT(geometric_mean(xs), 4.0);
}

TEST(Histogram, CountsAndFractions) {
  Histogram h;
  h.add(0, 3);
  h.add(4);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.at(0), 3u);
  EXPECT_EQ(h.at(4), 1u);
  EXPECT_EQ(h.at(99), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
  EXPECT_DOUBLE_EQ(h.fraction(99), 0.0);
}

TEST(Histogram, EmptyFractionIsZero) {
  Histogram h;
  EXPECT_EQ(h.fraction(0), 0.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"A", "Bench"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("A       Bench"), std::string::npos);
  EXPECT_NE(s.find("longer  2"), std::string::npos);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(1.0, 0), "1");
}

// Regression: rows wider than the header used to have their extra cells
// silently dropped and their widths ignored; every cell must render, at a
// width measured over the widest row.
TEST(TextTable, RowsWiderThanHeaderRenderEveryCell) {
  TextTable t({"A"});
  t.add_row({"x", "yy"});
  t.add_row({"zzz", "w", "tail"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("yy"), std::string::npos) << s;
  EXPECT_NE(s.find("tail"), std::string::npos) << s;
  // Column 0 is sized by "zzz" (3), not by the 1-char header.
  EXPECT_NE(s.find("x    yy"), std::string::npos) << s;
  EXPECT_NE(s.find("zzz  w"), std::string::npos) << s;
}

TEST(PercentileTracker, NearestRankPercentiles) {
  PercentileTracker t;
  for (int i = 100; i >= 1; --i) t.record(i);  // unsorted insert order
  EXPECT_EQ(t.count(), 100u);
  EXPECT_DOUBLE_EQ(t.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(t.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(t.max(), 100.0);
  EXPECT_DOUBLE_EQ(t.mean(), 50.5);
}

TEST(PercentileTracker, EmptyAndMerge) {
  PercentileTracker empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.percentile(50), 0.0);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.max(), 0.0);

  PercentileTracker a, b;
  a.record(1.0);
  a.record(2.0);
  b.record(10.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(a.percentile(34), 2.0);
}

}  // namespace
}  // namespace slc

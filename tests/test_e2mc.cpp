// E2MC: training, layout (ways + pdp header), compressed sizes, round trip.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/e2mc.h"

namespace slc {
namespace {

// Builds a training buffer of blocks with GPU-like value locality.
std::vector<uint8_t> training_data(uint64_t seed, size_t blocks = 512) {
  Rng rng(seed);
  std::vector<uint8_t> data;
  data.reserve(blocks * kBlockBytes);
  float base = 100.0f;
  for (size_t b = 0; b < blocks; ++b) {
    for (size_t i = 0; i < kBlockBytes / 4; ++i) {
      base += rng.uniform_f(-0.01f, 0.01f);
      uint32_t bits;
      __builtin_memcpy(&bits, &base, 4);
      data.push_back(static_cast<uint8_t>(bits));
      data.push_back(static_cast<uint8_t>(bits >> 8));
      data.push_back(static_cast<uint8_t>(bits >> 16));
      data.push_back(static_cast<uint8_t>(bits >> 24));
    }
  }
  return data;
}

Block block_from(const std::vector<uint8_t>& data, size_t i) {
  return Block(std::span<const uint8_t>(data).subspan(i * kBlockBytes, kBlockBytes));
}

class E2mcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = training_data(123);
    E2mcConfig cfg;
    cfg.sample_fraction = 0.5;
    comp_ = E2mcCompressor::train(data_, cfg);
  }
  std::vector<uint8_t> data_;
  std::shared_ptr<E2mcCompressor> comp_;
};

TEST_F(E2mcTest, PdpBits) {
  EXPECT_EQ(E2mcCompressor::pdp_bits(128), 7u);  // 2^7 = 128 (Fig. 6)
  EXPECT_EQ(E2mcCompressor::pdp_bits(64), 6u);
  EXPECT_EQ(E2mcCompressor::pdp_bits(256), 8u);
}

TEST_F(E2mcTest, HeaderIsThreePdps) {
  EXPECT_EQ(comp_->header_bits(kBlockBytes), 3u * 7u);  // baseline E2MC header
}

TEST_F(E2mcTest, CodeLengthsMatchCode) {
  const Block b = block_from(data_, 3);
  const auto lens = comp_->code_lengths(b.view());
  ASSERT_EQ(lens.size(), kSymbolsPerBlock);
  for (size_t s = 0; s < kSymbolsPerBlock; ++s)
    EXPECT_EQ(lens[s], comp_->code().encoded_bits(b.symbol(s)));
}

TEST_F(E2mcTest, LayoutSumsWays) {
  const Block b = block_from(data_, 5);
  const auto lens = comp_->code_lengths(b.view());
  const WayLayout lo = comp_->layout(lens, comp_->header_bits(kBlockBytes));
  size_t total_bits = 0;
  for (unsigned w = 0; w < 4; ++w) {
    size_t expect = 0;
    for (size_t s = w * 16; s < (w + 1) * 16; ++s) expect += lens[s];
    EXPECT_EQ(lo.way_bits[w], expect);
    EXPECT_EQ(lo.way_bytes[w], (expect + 7) / 8);
    total_bits += lo.way_bytes[w] * 8;
  }
  EXPECT_EQ(lo.total_bits, total_bits + 8 * ((comp_->header_bits(kBlockBytes) + 7) / 8));
}

TEST_F(E2mcTest, LayoutWithSkipRemovesSymbolBits) {
  const Block b = block_from(data_, 7);
  const auto lens = comp_->code_lengths(b.view());
  const WayLayout full = comp_->layout(lens, 21);
  const WayLayout cut = comp_->layout(lens, 21, 4, 8);  // skip symbols 4..11
  size_t removed = 0;
  for (size_t s = 4; s < 12; ++s) removed += lens[s];
  EXPECT_EQ(cut.way_bits[0] + removed, full.way_bits[0]);
  EXPECT_LE(cut.total_bits, full.total_bits);
}

TEST_F(E2mcTest, CompressedBitsEqualsCompressSize) {
  for (size_t i = 0; i < 64; ++i) {
    const Block b = block_from(data_, i);
    const auto cb = comp_->compress(b.view());
    EXPECT_EQ(comp_->compressed_bits(b.view()), cb.bit_size);
  }
}

TEST_F(E2mcTest, RoundTripTrainedData) {
  for (size_t i = 0; i < 128; ++i) {
    const Block b = block_from(data_, i);
    const auto cb = comp_->compress(b.view());
    EXPECT_EQ(comp_->decompress(cb, kBlockBytes), b) << "block " << i;
  }
}

TEST_F(E2mcTest, RoundTripUnseenDataViaEscapes) {
  // Random data the table never saw: every symbol escapes, and the block
  // falls back to uncompressed — still a perfect round trip.
  Rng rng(99);
  Block b;
  for (size_t i = 0; i < 16; ++i) b.set_word64(i, rng.next());
  const auto cb = comp_->compress(b.view());
  EXPECT_EQ(comp_->decompress(cb, kBlockBytes), b);
}

TEST_F(E2mcTest, TrainedDataCompresses) {
  // Value-similar floats share upper halfwords -> real compression.
  size_t compressed = 0;
  for (size_t i = 0; i < 128; ++i) {
    const Block b = block_from(data_, i);
    if (comp_->compress(b.view()).is_compressed) ++compressed;
  }
  EXPECT_GT(compressed, 100u);
}

TEST_F(E2mcTest, IncompressibleFallsBackToRaw) {
  Rng rng(7);
  Block b;
  for (size_t i = 0; i < 16; ++i) b.set_word64(i, rng.next());
  const auto cb = comp_->compress(b.view());
  EXPECT_FALSE(cb.is_compressed);
  EXPECT_EQ(cb.bit_size, kBlockBytes * 8);
}

TEST_F(E2mcTest, LatencyConstants) {
  // Sec. IV-A: 46 cycles compress, 20 decompress.
  EXPECT_EQ(E2mcCompressor::kCompressLatency, 46u);
  EXPECT_EQ(E2mcCompressor::kDecompressLatency, 20u);
}

// Property sweep over table sizes: round trip must hold for any config.
class E2mcParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(E2mcParamTest, RoundTripAcrossTableSizes) {
  const auto data = training_data(500 + GetParam());
  E2mcConfig cfg;
  cfg.table_entries = GetParam();
  cfg.sample_fraction = 0.3;
  auto comp = E2mcCompressor::train(data, cfg);
  for (size_t i = 0; i < 64; ++i) {
    const Block b = block_from(data, i);
    EXPECT_EQ(comp->decompress(comp->compress(b.view()), kBlockBytes), b);
  }
}

INSTANTIATE_TEST_SUITE_P(TableSizes, E2mcParamTest,
                         ::testing::Values(16, 64, 256, 1024, 4096));

}  // namespace
}  // namespace slc
